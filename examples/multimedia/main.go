// Multimedia: Section 5's first scenario. "A practicable approach to
// facilitate information retrieval from images or other multimedia
// data in documents ... is having the text fragments as IRS
// documents that reference the image. The method getText for image
// objects would return exactly this text."
//
// FIGURE elements are EMPTY (they carry only a SRC attribute); the
// collection's TextFunc returns the sibling CAPTION's text, making
// images retrievable by caption vocabulary.
package main

import (
	"fmt"
	"log"

	docirs "repro"
)

const dtd = `
<!ELEMENT REPORT  - - (TITLE, (PARA | FIGBLOCK)+)>
<!ELEMENT TITLE   - O (#PCDATA)>
<!ELEMENT PARA    - O (#PCDATA)>
<!ELEMENT FIGBLOCK - - (FIGURE, CAPTION)>
<!ELEMENT FIGURE  - O EMPTY>
<!ELEMENT CAPTION - O (#PCDATA)>
<!ATTLIST FIGURE SRC CDATA #REQUIRED>
`

const doc = `<REPORT><TITLE>Sensor survey
<PARA>this report surveys deployed sensors and their failure modes
<FIGBLOCK><FIGURE SRC="thermal-map.gif"><CAPTION>thermal map of the reactor cooling loop</CAPTION></FIGBLOCK>
<PARA>temperatures were sampled hourly during the experiment
<FIGBLOCK><FIGURE SRC="spectrum.gif"><CAPTION>frequency spectrum of the vibration sensor</CAPTION></FIGBLOCK>
</REPORT>`

func main() {
	sys, err := docirs.Open("")
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	d, err := sys.LoadDTD(dtd)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.LoadDocument(d, doc); err != nil {
		log.Fatal(err)
	}

	store := sys.Store()
	db := sys.DB()

	// getText for image objects: the caption text that references
	// the image (the FIGBLOCK groups them).
	captionText := func(oid docirs.OID, mode int) string {
		parent := store.Parent(oid) // the FIGBLOCK
		for _, sib := range store.Children(parent) {
			if store.TypeOf(sib) == "CAPTION" {
				return store.Text(sib, docirs.ModeFullText)
			}
		}
		return ""
	}

	coll, err := sys.CreateCollection("collImages", "ACCESS f FROM f IN FIGURE;",
		docirs.CollectionOptions{TextFunc: captionText})
	if err != nil {
		log.Fatal(err)
	}
	n, err := coll.IndexObjects()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d images by their captions\n\n", n)

	for _, query := range []string{"thermal reactor", "vibration", "sensors"} {
		hits, err := sys.Search("collImages", query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("image query %-16q ->", query)
		for _, h := range hits {
			img := docirs.MustOID(h.ExtID)
			src, _ := db.Attr(img, "@SRC")
			fmt.Printf("  %s (%.3f)", src.Str, h.Score)
		}
		fmt.Println()
	}

	// Mixed query: the image's retrieval value is available on the
	// FIGURE object itself, so structure and content combine as
	// usual.
	rs, err := sys.Query(`ACCESS f -> getAttributeValue('SRC')
FROM f IN FIGURE
WHERE f -> getIRSValue(collImages, 'thermal') > 0.5;`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nimages with getIRSValue(collImages,'thermal') > 0.5:")
	for _, row := range rs.Rows {
		fmt.Printf("  %s\n", row[0])
	}
}
