// Feedback: Section 6 lists relevance feedback among the open
// "application independent facets". This example runs a query, lets
// the "user" mark two results relevant, expands the query from their
// vocabulary (Rocchio-style, irs.Collection.ExpandQuery) and re-runs
// it — pulling in a document the original query missed entirely.
package main

import (
	"fmt"
	"log"

	docirs "repro"
)

const dtd = `
<!ELEMENT MMFDOC   - -  (LOGBOOK, DOCTITLE, ABSTRACT, PARA+)>
<!ELEMENT LOGBOOK  - O  (#PCDATA)>
<!ELEMENT DOCTITLE - O  (#PCDATA)>
<!ELEMENT ABSTRACT - O  (#PCDATA)>
<!ELEMENT PARA     - O  (#PCDATA)>
`

var issues = []string{
	// Documents about the web: the first two say "www", the third
	// only uses related vocabulary ("browser", "mosaic", "hypertext").
	`<MMFDOC><LOGBOOK>l<DOCTITLE>a<ABSTRACT>x<PARA>the www grows and browsers like mosaic render hypertext</MMFDOC>`,
	`<MMFDOC><LOGBOOK>l<DOCTITLE>b<ABSTRACT>x<PARA>www servers deliver hypertext to the mosaic browser</MMFDOC>`,
	`<MMFDOC><LOGBOOK>l<DOCTITLE>c<ABSTRACT>x<PARA>a browser such as mosaic fetches hypertext pages for readers</MMFDOC>`,
	// Distractors.
	`<MMFDOC><LOGBOOK>l<DOCTITLE>d<ABSTRACT>x<PARA>soup recipes need fresh vegetables and slow patient cooking</MMFDOC>`,
	`<MMFDOC><LOGBOOK>l<DOCTITLE>e<ABSTRACT>x<PARA>bread baking wants flour water salt and a warm afternoon</MMFDOC>`,
}

func main() {
	sys, err := docirs.Open("")
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	d, err := sys.LoadDTD(dtd)
	if err != nil {
		log.Fatal(err)
	}
	for _, src := range issues {
		if _, err := sys.LoadDocument(d, src); err != nil {
			log.Fatal(err)
		}
	}
	coll, err := sys.CreateCollection("collPara", "ACCESS p FROM p IN PARA;", docirs.CollectionOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := coll.IndexObjects(); err != nil {
		log.Fatal(err)
	}

	show := func(title, query string) []docirs.SearchResult {
		hits, err := sys.Search("collPara", query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s %q:\n", title, query)
		for _, h := range hits {
			fmt.Printf("  %.3f  %s\n", h.Score, sys.Text(docirs.MustOID(h.ExtID), docirs.ModeFullText))
		}
		fmt.Println()
		return hits
	}

	// Initial query: misses document c (it never says "www").
	hits := show("initial query", "www")

	// The user marks the top two hits relevant; the query expands
	// with their co-occurring vocabulary.
	relevant := []string{hits[0].ExtID, hits[1].ExtID}
	expanded, err := coll.IRS().ExpandQuery("www", relevant,
		docirs.FeedbackOptions{AddTerms: 3, OriginalWeight: 2})
	if err != nil {
		log.Fatal(err)
	}
	show("after feedback", expanded)
}
