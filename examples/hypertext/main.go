// Hypertext: Section 5's second scenario. A hypertext document type
// carries a binary link type `implies`; "the text corresponding to a
// node shall not only be the physical text of the node. Rather, also
// the fragments within other nodes' text from which there exists an
// implies-link to that node shall be in the corresponding IRS
// document. Again, getText would identify this particular text."
//
// The example installs a TextFunc (the application-defined getText)
// that augments each node's text with the text of every node whose
// implies link targets it, and shows a node becoming retrievable for
// vocabulary it never mentions itself.
package main

import (
	"fmt"
	"log"
	"strings"

	docirs "repro"
)

const dtd = `
<!ELEMENT HYPERDOC - - (NODE+)>
<!ELEMENT NODE     - O (#PCDATA)>
<!ATTLIST NODE
    ID      NAME #REQUIRED
    IMPLIES NAME #IMPLIED>
`

const doc = `<HYPERDOC>
<NODE ID="caching" IMPLIES="performance">caching keeps hot data near the processor
<NODE ID="indexing" IMPLIES="performance">inverted indexing accelerates text search dramatically
<NODE ID="performance">systems feel fast when latency stays low
<NODE ID="logging">write ahead logging makes recovery possible
</HYPERDOC>`

func main() {
	sys, err := docirs.Open("")
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	d, err := sys.LoadDTD(dtd)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.LoadDocument(d, doc); err != nil {
		log.Fatal(err)
	}

	store := sys.Store()
	db := sys.DB()

	// Resolve the implies graph: target node id -> source node OIDs.
	incoming := map[string][]docirs.OID{}
	idOf := map[docirs.OID]string{}
	for _, node := range db.Extent("NODE", false) {
		id, _ := db.Attr(node, "@ID")
		idOf[node] = id.Str
		if target, ok := db.Attr(node, "@IMPLIES"); ok && target.Str != "" {
			incoming[strings.ToUpper(target.Str)] = append(incoming[strings.ToUpper(target.Str)], node)
		}
	}

	// The application-defined getText of Section 5: own text plus
	// the fragments of nodes that imply this one.
	linkText := func(oid docirs.OID, mode int) string {
		parts := []string{store.Text(oid, docirs.ModeFullText)}
		for _, src := range incoming[strings.ToUpper(idOf[oid])] {
			parts = append(parts, store.Text(src, docirs.ModeFullText))
		}
		return strings.Join(parts, " ")
	}

	coll, err := sys.CreateCollection("collNode", "ACCESS n FROM n IN NODE;",
		docirs.CollectionOptions{TextFunc: linkText})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := coll.IndexObjects(); err != nil {
		log.Fatal(err)
	}

	// "indexing" appears only in the indexing node's physical text —
	// but the performance node receives it through the implies link.
	for _, query := range []string{"indexing", "caching", "latency"} {
		hits, err := sys.Search("collNode", query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %-9q ->", query)
		for _, h := range hits {
			fmt.Printf("  %s(%.3f)", idOf[docirs.MustOID(h.ExtID)], h.Score)
		}
		fmt.Println()
	}

	// Without the link-aware getText the performance node would miss
	// the "indexing" vocabulary entirely:
	plain, err := sys.CreateCollection("collPlain", "ACCESS n FROM n IN NODE;",
		docirs.CollectionOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := plain.IndexObjects(); err != nil {
		log.Fatal(err)
	}
	hits, _ := sys.Search("collPlain", "indexing")
	fmt.Printf("\nsame query on the plain collection ->")
	for _, h := range hits {
		fmt.Printf("  %s(%.3f)", idOf[docirs.MustOID(h.ExtID)], h.Score)
	}
	fmt.Println()
}
