// Quickstart: load the paper's MMF fragment, index paragraphs, and
// run the paper's first sample query —
//
//	"Select all paragraphs and their length having an IRS value
//	 greater than 0.6 according to 'WWW'" (Section 4.4)
//
// against a small three-document journal.
package main

import (
	"fmt"
	"log"

	docirs "repro"
)

const dtd = `
<!ELEMENT MMFDOC   - -  (LOGBOOK, DOCTITLE, ABSTRACT, PARA+)>
<!ELEMENT LOGBOOK  - O  (#PCDATA)>
<!ELEMENT DOCTITLE - O  (#PCDATA)>
<!ELEMENT ABSTRACT - O  (#PCDATA)>
<!ELEMENT PARA     - O  (#PCDATA)>
<!ATTLIST MMFDOC YEAR NUMBER #IMPLIED>
`

// The first document is the paper's own fragment (Section 4.3); note
// the omitted end tags, which the SGML parser infers from the DTD.
var documents = []string{
	`<MMFDOC YEAR="1994">
<LOGBOOK> ... </LOGBOOK>
<DOCTITLE>Telnet</DOCTITLE>
<ABSTRACT></ABSTRACT>
<PARA>Telnet is a protocol for remote terminal access across the network</PARA>
<PARA>Telnet enables interactive sessions on remote hosts</PARA>
</MMFDOC>`,
	`<MMFDOC YEAR="1994">
<LOGBOOK>created 1994
<DOCTITLE>The WWW
<ABSTRACT>about the world wide web
<PARA>the www www www www is a hypertext system spanning the internet
<PARA>browsers fetch documents from www servers
</MMFDOC>`,
	`<MMFDOC YEAR="1995">
<LOGBOOK>created 1995
<DOCTITLE>Gopher
<ABSTRACT>menus before the web
<PARA>gopher organizes documents into menus
<PARA>graphical browsers displaced gopher almost everywhere
</MMFDOC>`,
}

func main() {
	sys, err := docirs.Open("") // memory-only; pass a directory to persist
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	d, err := sys.LoadDTD(dtd)
	if err != nil {
		log.Fatal(err)
	}
	for i, src := range documents {
		oid, err := sys.LoadDocument(d, src)
		if err != nil {
			log.Fatalf("document %d: %v", i+1, err)
		}
		fmt.Printf("loaded document %d as %s\n", i+1, oid)
	}

	// The paragraph collection: which objects are represented is
	// decided by a specification query (Section 4.3.2).
	coll, err := sys.CreateCollection("collPara", "ACCESS p FROM p IN PARA;", docirs.CollectionOptions{})
	if err != nil {
		log.Fatal(err)
	}
	n, err := coll.IndexObjects()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d paragraphs into collPara\n\n", n)

	// The paper's first sample query, verbatim.
	rs, err := sys.Query(`ACCESS p, p -> length() FROM p IN PARA
WHERE p -> getIRSValue (collPara, 'WWW') > 0.6;`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("paragraphs with IRS value > 0.6 for 'WWW':")
	for _, row := range rs.Rows {
		fmt.Printf("  %s  (length %s)\n", row[0], row[1])
	}

	// Mixed query: structure (year) and content (www) combined;
	// DISTINCT gives set semantics over the joined paragraphs.
	rs, err = sys.Query(`ACCESS DISTINCT d FROM d IN MMFDOC, p IN PARA
WHERE d -> getAttributeValue('YEAR') = '1994' AND
p -> getContaining('MMFDOC') == d AND
p -> getIRSValue(collPara, 'www') > 0.5;`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n1994 documents containing a www-relevant paragraph:")
	for _, row := range rs.Rows {
		fmt.Printf("  %s  title %q\n", row[0], sys.Text(row[0].Ref, docirs.ModeAbstract))
	}
}
