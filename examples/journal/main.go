// Journal: the MultiMedia Forum scenario from the paper's
// introduction. An interactive online journal is stored as SGML in
// the database; readers reach documents three ways — through an
// issue's table of contents (structural queries), by following the
// structure, and by content-based retrieval with "a certain degree
// of vagueness". Meanwhile "the editorial team may add or modify
// documents or document components at any time"; the example edits a
// paragraph and shows the update propagating to the IRS under the
// on-query policy.
package main

import (
	"fmt"
	"log"

	docirs "repro"
	"repro/internal/workload"
)

func main() {
	sys, err := docirs.Open("")
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	dtd, err := sys.LoadDTD(workload.MMFDTD)
	if err != nil {
		log.Fatal(err)
	}

	// Generate a small journal: 12 articles across 1994/1995.
	cfg := workload.DefaultConfig()
	cfg.Docs = 12
	cfg.Seed = 3
	corpus := workload.Generate(cfg)
	type article struct {
		oid  docirs.OID
		name string
		year int
	}
	var articles []article
	for i := range corpus.Docs {
		oid, err := sys.LoadDocument(dtd, corpus.Docs[i].SGML)
		if err != nil {
			log.Fatal(err)
		}
		articles = append(articles, article{oid, corpus.Docs[i].Name, corpus.Docs[i].Year})
	}

	coll, err := sys.CreateCollection("collPara", "ACCESS p FROM p IN PARA;",
		docirs.CollectionOptions{Policy: docirs.PropagateOnQuery})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := coll.IndexObjects(); err != nil {
		log.Fatal(err)
	}

	// --- Access path 1: the issue's table of contents. ---
	fmt.Println("table of contents, 1994 issue:")
	rs, err := sys.Query(`ACCESS d FROM d IN MMFDOC WHERE d -> getAttributeValue('YEAR') = '1994';`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range rs.Rows {
		fmt.Printf("  %s — %s\n", row[0], sys.Text(row[0].Ref, docirs.ModeAbstract))
	}

	// --- Access path 2: content-based retrieval with vagueness. ---
	fmt.Println("\nreader asks: articles about the web (ranked):")
	hits, err := sys.Search("collPara", "www web")
	if err != nil {
		log.Fatal(err)
	}
	for i, h := range hits {
		if i >= 5 {
			break
		}
		para := docirs.MustOID(h.ExtID)
		fmt.Printf("  %.3f  %s…\n", h.Score, clip(sys.Text(para, docirs.ModeFullText), 48))
	}

	// --- Access path 3: mixed query (the paper's flagship). ---
	fmt.Println("\n1994 articles with a web-relevant paragraph:")
	rs, err = sys.Query(`ACCESS DISTINCT d FROM d IN MMFDOC, p IN PARA
WHERE d -> getAttributeValue('YEAR') = '1994' AND
p -> getContaining('MMFDOC') == d AND
p -> getIRSValue(collPara, 'www') > 0.45;`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range rs.Rows {
		fmt.Printf("  %s\n", row[0])
	}

	// --- The editorial team edits a paragraph. ---
	first := articles[0]
	paras := paragraphLeaves(sys, first.oid)
	if len(paras) == 0 {
		log.Fatal("article has no text leaves")
	}
	fmt.Printf("\neditor rewrites a paragraph of %s (%s)…\n", first.name, first.oid)
	if err := sys.SetText(paras[0], "errata the editors replaced this text with xanadu material"); err != nil {
		log.Fatal(err)
	}
	s := coll.Stats().Snapshot()
	fmt.Printf("pending IRS propagation: %d logged ops (policy %s defers them)\n",
		coll.PendingOps(), coll.Policy())

	// The next information-need query forces propagation.
	hits, err = sys.Search("collPara", "xanadu")
	if err != nil {
		log.Fatal(err)
	}
	s2 := coll.Stats().Snapshot()
	fmt.Printf("query for 'xanadu' found %d paragraph(s); forced flushes %d -> %d, ops applied %d -> %d\n",
		len(hits), s.ForcedFlushes, s2.ForcedFlushes, s.OpsApplied, s2.OpsApplied)
}

// paragraphLeaves returns the text-leaf OIDs of the article's
// paragraphs.
func paragraphLeaves(sys *docirs.System, article docirs.OID) []docirs.OID {
	var out []docirs.OID
	var walk func(oid docirs.OID)
	walk = func(oid docirs.OID) {
		if sys.Store().TypeOf(oid) == "PARA" {
			out = append(out, sys.Store().Children(oid)...)
			return
		}
		for _, k := range sys.Store().Children(oid) {
			walk(k)
		}
	}
	walk(article)
	return out
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
