package docirs

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example binary end to end and
// checks a signature line of its output, so the documentation
// programs cannot rot. Skipped with -short (each run compiles a
// binary).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples need go run; skipped in -short mode")
	}
	cases := []struct {
		dir  string
		want string
	}{
		{"quickstart", "1994 documents containing a www-relevant paragraph"},
		{"journal", "forced flushes 0 -> 1"},
		{"hypertext", "performance("},
		{"multimedia", "thermal-map.gif"},
		{"feedback", "after feedback"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+tc.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", tc.dir, err, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Errorf("example %s output missing %q:\n%s", tc.dir, tc.want, out)
			}
		})
	}
}
