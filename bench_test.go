package docirs

// Benchmark harness: one benchmark per reproduced figure/table (see
// DESIGN.md's per-experiment index) plus micro-benchmarks for the
// substrate layers. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benches measure the comparison each figure/table
// makes (architectures, buffer on/off, strategies, placements,
// policies, paradigms); cmd/mmfbench prints the corresponding
// tables.
//
// Serving-layer throughput benchmarks (BenchmarkServerQueryParallel,
// BenchmarkServerSearchParallel) live in bench_server_test.go in the
// external test package: internal/server imports this package, so
// they cannot live here without an import cycle.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/archcmp"
	"repro/internal/core"
	"repro/internal/derive"
	"repro/internal/docmodel"
	"repro/internal/irs"
	"repro/internal/oodb"
	"repro/internal/sgml"
	"repro/internal/vql"
	"repro/internal/workload"
)

// benchSystem builds a loaded system over the default corpus.
type benchSystem struct {
	db       *oodb.DB
	store    *docmodel.Store
	engine   *irs.Engine
	coupling *core.Coupling
	dtd      *sgml.DTD
	corpus   *workload.Corpus
	docs     []oodb.OID
}

func newBenchSystem(b *testing.B, cfg workload.Config) *benchSystem {
	b.Helper()
	db, err := oodb.Open("", oodb.Options{})
	if err != nil {
		b.Fatal(err)
	}
	store, err := docmodel.Open(db)
	if err != nil {
		b.Fatal(err)
	}
	engine := irs.NewEngine()
	coupling, err := core.New(store, engine)
	if err != nil {
		b.Fatal(err)
	}
	dtd, err := sgml.ParseDTD(workload.MMFDTD)
	if err != nil {
		b.Fatal(err)
	}
	if err := store.LoadDTD(dtd); err != nil {
		b.Fatal(err)
	}
	corpus := workload.Generate(cfg)
	s := &benchSystem{db: db, store: store, engine: engine, coupling: coupling, dtd: dtd, corpus: corpus}
	for i := range corpus.Docs {
		tree, err := sgml.ParseDocument(dtd, corpus.Docs[i].SGML, sgml.ParseOptions{Strict: true})
		if err != nil {
			b.Fatal(err)
		}
		oid, err := store.InsertDocument(dtd, tree)
		if err != nil {
			b.Fatal(err)
		}
		s.docs = append(s.docs, oid)
	}
	return s
}

func (s *benchSystem) paraCollection(b *testing.B, opts core.Options) *core.Collection {
	b.Helper()
	col, err := s.coupling.CreateCollection("collPara", "ACCESS p FROM p IN PARA;", opts)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := col.IndexObjects(); err != nil {
		b.Fatal(err)
	}
	return col
}

// --- EXP-F1: Figure 1, coupling architectures ---------------------

func BenchmarkArchitectures(b *testing.B) {
	s := newBenchSystem(b, workload.DefaultConfig())
	coll := s.paraCollection(b, core.Options{})
	archs := []archcmp.Architecture{
		&archcmp.DBMSControl{Coupling: s.coupling, CollectionName: "collPara", Strategy: vql.StrategyAuto},
		&archcmp.ControlModule{DB: s.db, Store: s.store, IRSColl: coll.IRS()},
		&archcmp.IRSControl{DB: s.db, IRSColl: coll.IRS()},
	}
	q := archcmp.MixedQuery{Year: "1994", IRSQuery: "www", Threshold: 0.45}
	for _, a := range archs {
		b.Run(a.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := a.Run(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- EXP-F2: Figure 2, collection granularities coexist -----------

func BenchmarkOverlappingCollections(b *testing.B) {
	s := newBenchSystem(b, workload.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		para, err := s.coupling.CreateCollection(fmt.Sprintf("p%d", i), "ACCESS p FROM p IN PARA;", core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := para.IndexObjects(); err != nil {
			b.Fatal(err)
		}
		doc, err := s.coupling.CreateCollection(fmt.Sprintf("d%d", i), "ACCESS d FROM d IN MMFDOC;",
			core.Options{TextMode: docmodel.ModeAbstract})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := doc.IndexObjects(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		s.coupling.DropCollection(para.Name())
		s.coupling.DropCollection(doc.Name())
		b.StartTimer()
	}
}

// --- EXP-F3: Figure 3, persistent result buffer --------------------

func BenchmarkResultBuffer(b *testing.B) {
	for _, buffered := range []bool{true, false} {
		name := "buffered"
		if !buffered {
			name = "unbuffered"
		}
		b.Run(name, func(b *testing.B) {
			s := newBenchSystem(b, workload.DefaultConfig())
			coll := s.paraCollection(b, core.Options{})
			coll.SetBufferEnabled(buffered)
			if _, err := coll.GetIRSResult("www"); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coll.GetIRSResult("www"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- EXP-F4: Figure 4, derivation schemes --------------------------

func BenchmarkDeriveSchemes(b *testing.B) {
	schemes := []derive.Scheme{
		derive.Max{}, derive.Avg{}, derive.LengthWeighted{}, derive.QueryAware{},
	}
	for _, scheme := range schemes {
		b.Run(scheme.Name(), func(b *testing.B) {
			s := newBenchSystem(b, workload.DefaultConfig())
			coll := s.paraCollection(b, core.Options{Deriver: scheme})
			doc := s.docs[0]
			q := "#and(www nii)"
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coll.FindIRSValue(q, doc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- EXP-T1: granularity -------------------------------------------

func BenchmarkGranularityIndexing(b *testing.B) {
	grans := []struct {
		name string
		spec string
	}{
		{"document", "ACCESS d FROM d IN MMFDOC;"},
		{"section", "ACCESS s FROM s IN SECTION;"},
		{"paragraph", "ACCESS p FROM p IN PARA;"},
		{"leaf", "ACCESS t FROM t IN Text;"},
	}
	for _, g := range grans {
		b.Run(g.name, func(b *testing.B) {
			s := newBenchSystem(b, workload.DefaultConfig())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				col, err := s.coupling.CreateCollection(fmt.Sprintf("g%d", i), g.spec, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := col.IndexObjects(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				s.coupling.DropCollection(col.Name())
				b.StartTimer()
			}
		})
	}
}

// --- EXP-T2: mixed-query strategies --------------------------------

func BenchmarkMixedStrategies(b *testing.B) {
	src := `ACCESS d FROM d IN MMFDOC, p IN PARA WHERE d -> getAttributeValue('YEAR') = '1994' AND p -> getContaining('MMFDOC') == d AND p -> getIRSValue(collPara, 'www') > 0.45;`
	for _, strat := range []vql.Strategy{vql.StrategyIndependent, vql.StrategyIRSFirst} {
		b.Run(strat.String(), func(b *testing.B) {
			s := newBenchSystem(b, workload.DefaultConfig())
			s.paraCollection(b, core.Options{})
			ev := s.coupling.Evaluator()
			if _, err := ev.RunWithStrategy(src, strat); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ev.RunWithStrategy(src, strat); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- EXP-T3: operator placement ------------------------------------

func BenchmarkOperatorPlacement(b *testing.B) {
	b.Run("irs-composite", func(b *testing.B) {
		s := newBenchSystem(b, workload.DefaultConfig())
		coll := s.paraCollection(b, core.Options{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := coll.IRS().Search("#and(www nii)"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("oodbms-and-warm", func(b *testing.B) {
		s := newBenchSystem(b, workload.DefaultConfig())
		coll := s.paraCollection(b, core.Options{})
		// Warm the operand buffers.
		if _, err := coll.GetIRSResult("www"); err != nil {
			b.Fatal(err)
		}
		if _, err := coll.GetIRSResult("nii"); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := coll.IRSOperatorAND("www", "nii"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- EXP-T4: update propagation ------------------------------------

func BenchmarkUpdatePropagation(b *testing.B) {
	for _, policy := range []core.PropagationPolicy{
		core.PropagateImmediately, core.PropagateOnQuery, core.PropagateManually,
	} {
		b.Run(policy.String(), func(b *testing.B) {
			s := newBenchSystem(b, workload.DefaultConfig())
			coll := s.paraCollection(b, core.Options{Policy: policy})
			var leaves []oodb.OID
			for _, doc := range s.docs {
				var walk func(oid oodb.OID)
				walk = func(oid oodb.OID) {
					if class, _ := s.db.ClassOf(oid); class == docmodel.ClassText {
						leaves = append(leaves, oid)
						return
					}
					for _, k := range s.store.Children(oid) {
						walk(k)
					}
				}
				walk(doc)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Burst of 10 edits, then one query.
				for u := 0; u < 10; u++ {
					leaf := leaves[(i*10+u)%len(leaves)]
					if err := s.store.SetText(leaf, fmt.Sprintf("edit %d-%d www", i, u)); err != nil {
						b.Fatal(err)
					}
				}
				if policy == core.PropagateManually {
					if err := coll.Flush(); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := coll.GetIRSResult("www"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- EXP-S2: sync vs async ingest pipeline -------------------------

// BenchmarkIngestAsync measures the update-propagation pipeline under
// bursts of text edits: "sync" propagates every edit inside the
// mutator (PropagateImmediately), "async" logs and returns, letting
// the background flusher group-commit, with a Drain as the visibility
// barrier at the end of each burst. CI logs this benchmark alongside
// BenchmarkServerQueryParallel.
func BenchmarkIngestAsync(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts core.Options
	}{
		{"sync", core.Options{Policy: core.PropagateImmediately}},
		{"async", core.Options{Policy: core.PropagateAsync, AsyncCoalesce: time.Millisecond}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			s := newBenchSystem(b, workload.DefaultConfig())
			coll := s.paraCollection(b, mode.opts)
			var leaves []oodb.OID
			for _, doc := range s.docs {
				var walk func(oid oodb.OID)
				walk = func(oid oodb.OID) {
					if class, _ := s.db.ClassOf(oid); class == docmodel.ClassText {
						leaves = append(leaves, oid)
						return
					}
					for _, k := range s.store.Children(oid) {
						walk(k)
					}
				}
				walk(doc)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for u := 0; u < 32; u++ {
					leaf := leaves[(i*32+u)%len(leaves)]
					if err := s.store.SetText(leaf, fmt.Sprintf("edit %d-%d www", i, u)); err != nil {
						b.Fatal(err)
					}
				}
				if err := coll.Drain(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := coll.Stats().Snapshot()
			if st.FlushErrors != 0 {
				b.Fatalf("flush errors: %d", st.FlushErrors)
			}
			if st.GroupCommits > 0 {
				b.ReportMetric(float64(st.GroupedOps)/float64(st.GroupCommits), "ops/group")
			}
		})
	}
}

// --- EXP-T5: redundancy avoidance ----------------------------------

func BenchmarkRedundancy(b *testing.B) {
	b.Run("derive", func(b *testing.B) {
		s := newBenchSystem(b, workload.DefaultConfig())
		coll := s.paraCollection(b, core.Options{Deriver: derive.QueryAware{}})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			doc := s.docs[i%len(s.docs)]
			if _, err := coll.FindIRSValue("www", doc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dual-index", func(b *testing.B) {
		s := newBenchSystem(b, workload.DefaultConfig())
		collDoc, err := s.coupling.CreateCollection("collDoc", "ACCESS d FROM d IN MMFDOC;", core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := collDoc.IndexObjects(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			doc := s.docs[i%len(s.docs)]
			if _, err := collDoc.FindIRSValue("www", doc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- EXP-T6: result exchange ---------------------------------------

func BenchmarkResultExchange(b *testing.B) {
	b.Run("file", func(b *testing.B) {
		s := newBenchSystem(b, workload.DefaultConfig())
		coll := s.paraCollection(b, core.Options{})
		dir := b.TempDir()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			path := filepath.Join(dir, "r.txt")
			if err := coll.IRS().SearchToFile("www", path); err != nil {
				b.Fatal(err)
			}
			if _, err := irs.ParseResultFile(path); err != nil {
				b.Fatal(err)
			}
			os.Remove(path)
		}
	})
	b.Run("api", func(b *testing.B) {
		s := newBenchSystem(b, workload.DefaultConfig())
		coll := s.paraCollection(b, core.Options{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := coll.IRS().Search("www"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- EXP-T7: retrieval paradigms ------------------------------------

func BenchmarkRetrievalModels(b *testing.B) {
	models := []irs.Model{irs.InferenceNet{}, irs.NewVectorSpace(), irs.Boolean{}}
	for _, model := range models {
		b.Run(model.Name(), func(b *testing.B) {
			s := newBenchSystem(b, workload.DefaultConfig())
			coll := s.paraCollection(b, core.Options{Model: model})
			coll.SetBufferEnabled(false) // measure the model, not the buffer
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coll.GetIRSResult("#and(www nii)"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- substrate micro-benchmarks -------------------------------------

func BenchmarkSGMLParse(b *testing.B) {
	dtd, err := sgml.ParseDTD(workload.MMFDTD)
	if err != nil {
		b.Fatal(err)
	}
	corpus := workload.Generate(workload.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc := corpus.Docs[i%len(corpus.Docs)]
		if _, err := sgml.ParseDocument(dtd, doc.SGML, sgml.ParseOptions{Strict: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIRSIndexing(b *testing.B) {
	corpus := workload.Generate(workload.DefaultConfig())
	texts := make([]string, 0, 256)
	for i := range corpus.Docs {
		texts = append(texts, corpus.Docs[i].SGML)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ix := irs.NewIndex(nil)
		b.StartTimer()
		for j, t := range texts {
			if _, err := ix.Add(fmt.Sprintf("d%d", j), t, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkIRSQueryEval(b *testing.B) {
	s := newBenchSystem(b, workload.DefaultConfig())
	coll := s.paraCollection(b, core.Options{})
	ix := coll.IRS()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search("#and(www #or(nii sgml))"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVQLStructuralQuery(b *testing.B) {
	s := newBenchSystem(b, workload.DefaultConfig())
	ev := s.coupling.Evaluator()
	src := `ACCESS d FROM d IN MMFDOC WHERE d -> getAttributeValue('YEAR') = '1994';`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Run(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOODBCommit(b *testing.B) {
	db, err := oodb.Open("", oodb.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := db.DefineClass("Node", "", nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		oid, err := tx.NewObject("Node", map[string]oodb.Value{"n": oodb.I(int64(i))})
		if err != nil {
			b.Fatal(err)
		}
		if err := tx.SetAttr(oid, "peer", oodb.Ref(oid)); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALDurableCommit(b *testing.B) {
	db, err := oodb.Open(b.TempDir(), oodb.Options{SyncWAL: false})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if err := db.DefineClass("Node", "", nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.NewObject("Node", map[string]oodb.Value{"n": oodb.I(int64(i))}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetIRSValueThroughVQL(b *testing.B) {
	s := newBenchSystem(b, workload.DefaultConfig())
	s.paraCollection(b, core.Options{})
	ev := s.coupling.Evaluator()
	src := `ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'www') > 0.45;`
	if _, err := ev.Run(src); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Run(src); err != nil {
			b.Fatal(err)
		}
	}
}
