package docirs_test

// Serving-layer benchmarks (external test package: internal/server
// imports the root package, so these cannot live in bench_test.go's
// package docirs without an import cycle).

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"

	docirs "repro"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/workload"
)

// serveFixture builds an HTTP frontend over a loaded system. shards
// partitions the collection's inverted index (0: one shard, the
// pre-sharding layout).
func serveFixture(b testing.TB, cfg server.Config, shards int) *httptest.Server {
	b.Helper()
	sys, err := docirs.Open("")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { sys.Close() })
	dtd, err := sys.LoadDTD(workload.MMFDTD)
	if err != nil {
		b.Fatal(err)
	}
	corpus := workload.Generate(workload.DefaultConfig())
	for i := range corpus.Docs {
		if _, err := sys.LoadDocument(dtd, corpus.Docs[i].SGML); err != nil {
			b.Fatal(err)
		}
	}
	coll, err := sys.CreateCollection("collPara", "ACCESS p FROM p IN PARA;",
		docirs.CollectionOptions{Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := coll.IndexObjects(); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(server.New(sys, cfg).Handler())
	b.Cleanup(ts.Close)
	return ts
}

// benchShards is the sharded configuration under benchmark: one
// shard per processor (so single-CPU environments measure the
// no-parallelism baseline honestly).
func benchShards() int { return runtime.GOMAXPROCS(0) }

// BenchmarkServerQueryParallel measures serving throughput of the
// mixed VQL query under parallel clients — cold (cache disabled, so
// every request evaluates) against warm (epoch-keyed cache on; every
// repeat is a hit), the warm variant under both cache policies since
// a single-key hit loop is the fast path both must serve equally
// well. CI logs QPS for the cold/warm gap and the policy trajectory.
func BenchmarkServerQueryParallel(b *testing.B) {
	body, _ := json.Marshal(map[string]string{
		"query": `ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'www') > 0.45;`,
	})
	run := func(b *testing.B, cfg server.Config, shards int) {
		ts := serveFixture(b, cfg, shards)
		// Warm once so both variants measure steady state (the cold
		// variant still evaluates every request; its steady state is
		// the coupling's own buffered path).
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				var out struct {
					Count *int   `json:"count"`
					Error string `json:"error"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if out.Count == nil {
					b.Fatalf("query failed: %s", out.Error)
				}
			}
		})
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
	}
	b.Run("cold", func(b *testing.B) { run(b, server.Config{CacheSize: -1}, benchShards()) })
	b.Run("warm-2q", func(b *testing.B) {
		run(b, server.Config{CacheSize: 1024, CachePolicy: server.CachePolicy2Q}, benchShards())
	})
	b.Run("warm-lru", func(b *testing.B) {
		run(b, server.Config{CacheSize: 1024, CachePolicy: server.CachePolicyLRU}, benchShards())
	})
	b.Run("cold-1shard", func(b *testing.B) { run(b, server.Config{CacheSize: -1}, 1) })
	// The obs-off variant of cold: the A/B counterpart for measuring
	// what the always-on histograms/traces cost on the serving path
	// (TestObsOverheadBudget asserts the comparison; this subbenchmark
	// makes it visible in ordinary `go test -bench` output too).
	b.Run("cold-obs-off", func(b *testing.B) {
		obs.SetEnabled(false)
		defer obs.SetEnabled(true)
		run(b, server.Config{CacheSize: -1}, benchShards())
	})
}

// TestObsOverheadBudget measures what the observability layer costs
// on the serving query path: interleaved min-of-3 A/B of the cold
// query loop with obs recording on vs off. The budget is 3%; the
// assertion allows generous slack because single-run CI timings are
// noisy — the logged number is the trajectory's signal, the assert is
// a tripwire for accidentally making recording expensive (e.g. a
// lock on the hot path).
func TestObsOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison; skipped in -short")
	}
	body, _ := json.Marshal(map[string]string{
		"query": `ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'www') > 0.45;`,
	})
	ts := serveFixture(t, server.Config{CacheSize: -1}, benchShards())
	post := func(tb testing.TB) {
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			tb.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			tb.Fatalf("query status %d", resp.StatusCode)
		}
	}
	post(t) // warm the coupling's buffered path before timing
	measure := func() float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				post(b)
			}
		})
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	on, off := -1.0, -1.0
	defer obs.SetEnabled(true)
	for i := 0; i < 3; i++ {
		obs.SetEnabled(true)
		if v := measure(); on < 0 || v < on {
			on = v
		}
		obs.SetEnabled(false)
		if v := measure(); off < 0 || v < off {
			off = v
		}
	}
	obs.SetEnabled(true)
	pct := (on - off) / off * 100
	t.Logf("obs overhead on server query path: on=%.0f ns/op off=%.0f ns/op -> %+.2f%% (target <= 3%%)", on, off, pct)
	if pct > 25 {
		t.Errorf("obs overhead %.1f%% is far beyond the 3%% budget; recording is on a hot path", pct)
	}
}

// BenchmarkServerSearchParallel measures the raw IRS search endpoint
// under parallel clients with the cache on, single-shard against
// sharded.
func BenchmarkServerSearchParallel(b *testing.B) {
	run := func(b *testing.B, shards int) {
		ts := serveFixture(b, server.Config{}, shards)
		url := ts.URL + "/collections/collPara/search?q=www"
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				resp, err := http.Get(url)
				if err != nil {
					b.Fatal(err)
				}
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("search status %d", resp.StatusCode)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		})
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
	}
	b.Run("1shard", func(b *testing.B) { run(b, 1) })
	b.Run("sharded", func(b *testing.B) { run(b, benchShards()) })
}
