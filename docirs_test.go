package docirs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/workload"
)

const quickDTD = `
<!ELEMENT MMFDOC   - -  (LOGBOOK, DOCTITLE, ABSTRACT, PARA+)>
<!ELEMENT LOGBOOK  - O  (#PCDATA)>
<!ELEMENT DOCTITLE - O  (#PCDATA)>
<!ELEMENT ABSTRACT - O  (#PCDATA)>
<!ELEMENT PARA     - O  (#PCDATA)>
<!ATTLIST MMFDOC YEAR NUMBER #IMPLIED>
`

func TestSystemEndToEnd(t *testing.T) {
	sys, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	dtd, err := sys.LoadDTD(quickDTD)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := sys.LoadDocument(dtd, `<MMFDOC YEAR="1994"><LOGBOOK>l<DOCTITLE>t<ABSTRACT>a
<PARA>the www www www paragraph
<PARA>the nii nii nii paragraph
</MMFDOC>`)
	if err != nil {
		t.Fatal(err)
	}
	coll, err := sys.CreateCollection("collPara", "ACCESS p FROM p IN PARA;", CollectionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coll.IndexObjects(); err != nil {
		t.Fatal(err)
	}
	rs, err := sys.Query(`ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'www') > 0.5;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	hits, err := sys.Search("collPara", "nii")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("hits = %v", hits)
	}
	if got := sys.Text(doc, ModeFullText); !strings.Contains(got, "www") {
		t.Errorf("Text = %q", got)
	}
	if MustOID(hits[0].ExtID) == 0 {
		t.Error("MustOID failed")
	}
}

func TestSystemPersistentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sys, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	dtd, err := sys.LoadDTD(workload.MMFDTD)
	if err != nil {
		t.Fatal(err)
	}
	corpus := workload.Generate(workload.Config{
		Docs: 4, SectionsRange: [2]int{1, 2}, ParasRange: [2]int{1, 3},
		WordsRange: [2]int{5, 10}, Vocabulary: 50,
		Topics: workload.DefaultTopics(), TopicDocShare: 0.9,
		TopicParaShare: 0.8, TopicDensity: 3, Seed: 7,
		YearRange: [2]int{1994, 1995},
	})
	for i := range corpus.Docs {
		if _, err := sys.LoadDocument(dtd, corpus.Docs[i].SGML); err != nil {
			t.Fatal(err)
		}
	}
	coll, err := sys.CreateCollection("collPara", "ACCESS p FROM p IN PARA;", CollectionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := coll.IndexObjects()
	if err != nil {
		t.Fatal(err)
	}
	hitsBefore, err := sys.Search("collPara", "www")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	sys2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	coll2, err := sys2.Collection("collPara")
	if err != nil {
		t.Fatal(err)
	}
	if coll2.DocCount() != n {
		t.Errorf("DocCount after restart = %d, want %d", coll2.DocCount(), n)
	}
	hitsAfter, err := sys2.Search("collPara", "www")
	if err != nil {
		t.Fatal(err)
	}
	if len(hitsAfter) != len(hitsBefore) {
		t.Errorf("hits after restart = %d, want %d", len(hitsAfter), len(hitsBefore))
	}
	// Everything still queryable end to end.
	rs, err := sys2.Query(`ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'www') > 0.45;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) == 0 {
		t.Error("mixed query empty after restart")
	}
}

func TestFacadeAccessorsAndStrategies(t *testing.T) {
	sys, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.Engine() == nil || sys.Coupling() == nil || sys.DB() == nil || sys.Store() == nil {
		t.Fatal("nil subsystem accessor")
	}
	dtd, err := sys.LoadDTD(quickDTD)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := sys.LoadDocument(dtd, `<MMFDOC><LOGBOOK>l<DOCTITLE>t<ABSTRACT>a<PARA>the www www www paragraph<PARA>another paragraph</MMFDOC>`)
	if err != nil {
		t.Fatal(err)
	}
	coll, err := sys.CreateCollection("collPara", "ACCESS p FROM p IN PARA;", CollectionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coll.IndexObjects(); err != nil {
		t.Fatal(err)
	}
	src := `ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'www') > 0.5;`
	// Both explicit strategies agree.
	a, err := sys.QueryWithStrategy(src, StrategyIndependent)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.QueryWithStrategy(src, StrategyIRSFirst)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 1 || len(b.Rows) != 1 {
		t.Errorf("strategy rows: %d vs %d", len(a.Rows), len(b.Rows))
	}
	// ExplainQuery renders a plan for each strategy.
	for _, strat := range []Strategy{StrategyAuto, StrategyIndependent, StrategyIRSFirst} {
		plan, err := sys.ExplainQuery(src, strat)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(plan, "scan p IN PARA") {
			t.Errorf("plan (%v) = %q", strat, plan)
		}
	}
	if _, err := sys.ExplainQuery("garbage", StrategyAuto); err == nil {
		t.Error("ExplainQuery(garbage) succeeded")
	}
	// DeleteDocument removes the whole tree and the collection
	// resynchronizes.
	if err := sys.DeleteDocument(doc); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Search("collPara", "www"); err != nil {
		t.Fatal(err)
	}
	if coll.DocCount() != 0 {
		t.Errorf("DocCount after document delete = %d", coll.DocCount())
	}
	if sys.DB().ObjectCount() == 0 {
		t.Error("bookkeeping objects should remain") // COLLECTION + buffer entries
	}
}

func TestOpenFailsOnBadDirectory(t *testing.T) {
	// A file where the directory should be.
	dir := t.TempDir()
	path := filepath.Join(dir, "occupied")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Error("Open over a plain file succeeded")
	}
}
