// Package derive implements the deriveIRSValue computation schemes
// of Section 4.5.2: how to obtain a retrieval value for an object
// that is NOT represented in an IRS collection from the values of
// its components. The paper leaves the computation "open to the
// application" and reports having "run tests with an implementation
// of deriveIRSValue iterating through the elements components and
// determining the maximal IRS value" — scheme Max here. The schemes
// beyond Max realize the improvements the paper argues for:
// combining ALL components' values (Avg, LengthWeighted), weighting
// element types ([Wil94]; WeightedByType) and exploiting per-
// subquery evidence so that a document containing one paragraph per
// query term beats a document with two paragraphs about the same
// term (QueryAware — the Figure 4 discussion).
package derive

import (
	"repro/internal/irs"
)

// Component carries one component object's retrieval evidence to a
// scheme. Value is the component's value for the full query; PerSub
// holds its values per top-level subquery (parallel to
// q.Subqueries()), populated only when the scheme asks for it.
type Component struct {
	// Type is the element-type (class) name of the component.
	Type string
	// Length is the component's indexed text length in terms.
	Length int
	// Value is the component's IRS value for the full query.
	Value float64
	// PerSub are the component's IRS values per subquery.
	PerSub []float64
}

// Scheme computes a derived IRS value.
type Scheme interface {
	// Name identifies the scheme in experiment output.
	Name() string
	// NeedsSubqueries reports whether components must carry PerSub
	// values (one extra IRS/buffer probe per subquery).
	NeedsSubqueries() bool
	// Derive combines component evidence for query q. dflt is the
	// collection's default value for absent evidence (0.4 under the
	// inference-net model, 0 otherwise). Empty comps yield dflt.
	Derive(q *irs.Node, comps []Component, dflt float64) float64
}

// Max is the authors' tested scheme: the maximum component value.
type Max struct{}

// Name implements Scheme.
func (Max) Name() string { return "max" }

// NeedsSubqueries implements Scheme.
func (Max) NeedsSubqueries() bool { return false }

// Derive implements Scheme.
func (Max) Derive(_ *irs.Node, comps []Component, dflt float64) float64 {
	if len(comps) == 0 {
		return dflt
	}
	best := comps[0].Value
	for _, c := range comps[1:] {
		if c.Value > best {
			best = c.Value
		}
	}
	return best
}

// Avg is the arithmetic mean of component values ([CST92] mentions
// average and maximum as candidate combinations).
type Avg struct{}

// Name implements Scheme.
func (Avg) Name() string { return "avg" }

// NeedsSubqueries implements Scheme.
func (Avg) NeedsSubqueries() bool { return false }

// Derive implements Scheme.
func (Avg) Derive(_ *irs.Node, comps []Component, dflt float64) float64 {
	if len(comps) == 0 {
		return dflt
	}
	s := 0.0
	for _, c := range comps {
		s += c.Value
	}
	return s / float64(len(comps))
}

// LengthWeighted is the mean of component values weighted by
// component text length — the paper's observation that "both the
// component's and the composite's length would be arguments of the
// derivation scheme".
type LengthWeighted struct{}

// Name implements Scheme.
func (LengthWeighted) Name() string { return "length-weighted" }

// NeedsSubqueries implements Scheme.
func (LengthWeighted) NeedsSubqueries() bool { return false }

// Derive implements Scheme.
func (LengthWeighted) Derive(_ *irs.Node, comps []Component, dflt float64) float64 {
	if len(comps) == 0 {
		return dflt
	}
	var sum, weight float64
	for _, c := range comps {
		w := float64(c.Length)
		if w <= 0 {
			w = 1
		}
		sum += w * c.Value
		weight += w
	}
	return sum / weight
}

// WeightedByType weights component values by their element type
// ([Wil94]: "take into consideration the type of the parts, e.g., by
// weighting the types"). Types without an entry get DefaultWeight.
type WeightedByType struct {
	Weights map[string]float64
	// DefaultWeight applies to types absent from Weights; zero means
	// weight 1.
	DefaultWeight float64
}

// Name implements Scheme.
func (WeightedByType) Name() string { return "type-weighted" }

// NeedsSubqueries implements Scheme.
func (WeightedByType) NeedsSubqueries() bool { return false }

// Derive implements Scheme.
func (s WeightedByType) Derive(_ *irs.Node, comps []Component, dflt float64) float64 {
	if len(comps) == 0 {
		return dflt
	}
	def := s.DefaultWeight
	if def == 0 {
		def = 1
	}
	var sum, weight float64
	for _, c := range comps {
		w, ok := s.Weights[c.Type]
		if !ok {
			w = def
		}
		sum += w * c.Value
		weight += w
	}
	if weight == 0 {
		return dflt
	}
	return sum / weight
}

// QueryAware implements the derivation the Figure 4 discussion calls
// for: "the information how relevant elements are to the subqueries
// must be exploited. Hence, first of all, the subqueries need to be
// identified." For every top-level subquery the best component value
// is taken, and the per-subquery maxima are combined with the
// semantics of the query's top operator (product for #and, mean for
// #sum, ...). The combined dispersed evidence is discounted by
// DispersionPenalty and the final value is the maximum of that and
// the best single component's full-query value. Consequences, in
// Figure 4 terms: M3 (one paragraph per term) outranks M4 (two
// paragraphs about the same term), which Max and Avg conflate; and
// M2 (one paragraph matching both terms) still outranks M3, because
// co-occurring evidence inside one component is not discounted.
type QueryAware struct {
	// DispersionPenalty in (0,1] discounts evidence assembled from
	// different components relative to the same evidence inside one
	// component (a composite is longer than its parts; cf. the
	// paper's remark that INQUERY normalizes by document length).
	// Zero selects the default 0.9.
	DispersionPenalty float64
}

// Name implements Scheme.
func (QueryAware) Name() string { return "query-aware" }

// NeedsSubqueries implements Scheme.
func (QueryAware) NeedsSubqueries() bool { return true }

// Derive implements Scheme.
func (s QueryAware) Derive(q *irs.Node, comps []Component, dflt float64) float64 {
	if len(comps) == 0 {
		return dflt
	}
	subs := q.Subqueries()
	if len(subs) <= 1 {
		return Max{}.Derive(q, comps, dflt)
	}
	maxima := make([]float64, len(subs))
	for i := range subs {
		best := dflt
		for _, c := range comps {
			if i < len(c.PerSub) && c.PerSub[i] > best {
				best = c.PerSub[i]
			}
		}
		maxima[i] = best
	}
	pen := s.DispersionPenalty
	if pen == 0 {
		pen = 0.9
	}
	dispersed := pen * combineSubqueryMaxima(q, maxima, dflt)
	cohesive := Max{}.Derive(q, comps, dflt)
	if cohesive > dispersed {
		return cohesive
	}
	return dispersed
}

// combineSubqueryMaxima merges per-subquery maxima under the query's
// top-level operator semantics.
func combineSubqueryMaxima(q *irs.Node, maxima []float64, dflt float64) float64 {
	switch q.Kind {
	case irs.NodeAnd:
		p := 1.0
		for _, m := range maxima {
			p *= m
		}
		return p
	case irs.NodeOr:
		p := 1.0
		for _, m := range maxima {
			p *= 1 - m
		}
		return 1 - p
	case irs.NodeMax:
		best := maxima[0]
		for _, m := range maxima[1:] {
			if m > best {
				best = m
			}
		}
		return best
	case irs.NodeWSum:
		var sum, weight float64
		for i, m := range maxima {
			w := 1.0
			if i < len(q.Weights) {
				w = q.Weights[i]
			}
			sum += w * m
			weight += w
		}
		if weight == 0 {
			return dflt
		}
		return sum / weight
	default: // NodeSum and anything else combining evenly
		s := 0.0
		for _, m := range maxima {
			s += m
		}
		return s / float64(len(maxima))
	}
}

// ByName returns a scheme from its experiment-output name.
func ByName(name string) (Scheme, bool) {
	switch name {
	case "max", "":
		return Max{}, true
	case "avg":
		return Avg{}, true
	case "length-weighted":
		return LengthWeighted{}, true
	case "type-weighted":
		return WeightedByType{}, true
	case "query-aware":
		return QueryAware{}, true
	}
	return nil, false
}
