package derive

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/irs"
)

func q(t *testing.T, src string) *irs.Node {
	t.Helper()
	n, err := irs.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestMaxAndAvg(t *testing.T) {
	query := q(t, "#and(www nii)")
	comps := []Component{{Value: 0.2}, {Value: 0.8}, {Value: 0.5}}
	if got := (Max{}).Derive(query, comps, 0.4); got != 0.8 {
		t.Errorf("Max = %v", got)
	}
	if got := (Avg{}).Derive(query, comps, 0.4); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Avg = %v", got)
	}
	// Empty components yield the default.
	if got := (Max{}).Derive(query, nil, 0.4); got != 0.4 {
		t.Errorf("Max(empty) = %v", got)
	}
	if got := (Avg{}).Derive(query, nil, 0.4); got != 0.4 {
		t.Errorf("Avg(empty) = %v", got)
	}
}

func TestLengthWeighted(t *testing.T) {
	query := q(t, "www")
	comps := []Component{
		{Value: 1.0, Length: 10},
		{Value: 0.0, Length: 90},
	}
	got := (LengthWeighted{}).Derive(query, comps, 0)
	if math.Abs(got-0.1) > 1e-12 {
		t.Errorf("LengthWeighted = %v, want 0.1", got)
	}
	// Zero lengths fall back to weight 1.
	comps = []Component{{Value: 0.6}, {Value: 0.2}}
	got = (LengthWeighted{}).Derive(query, comps, 0)
	if math.Abs(got-0.4) > 1e-12 {
		t.Errorf("LengthWeighted(zero len) = %v, want 0.4", got)
	}
}

func TestWeightedByType(t *testing.T) {
	query := q(t, "www")
	s := WeightedByType{Weights: map[string]float64{"DOCTITLE": 3}}
	comps := []Component{
		{Type: "DOCTITLE", Value: 1.0},
		{Type: "PARA", Value: 0.0},
	}
	got := s.Derive(query, comps, 0)
	if math.Abs(got-0.75) > 1e-12 {
		t.Errorf("WeightedByType = %v, want 0.75", got)
	}
}

// TestQueryAwareSeparatesM3FromM4 reproduces the core of the
// Figure 4 argument in isolation: M3 has one WWW paragraph and one
// NII paragraph; M4 has two WWW paragraphs. Max and Avg tie them;
// QueryAware must rank M3 above M4.
func TestQueryAwareSeparatesM3FromM4(t *testing.T) {
	query := q(t, "#and(WWW NII)")
	const dflt = 0.4
	// Component values for the FULL #and query: a WWW-only para has
	// belief ~ high*0.4, same as a NII-only para.
	wwwOnly := Component{Value: 0.9 * dflt, PerSub: []float64{0.9, dflt}}
	niiOnly := Component{Value: 0.9 * dflt, PerSub: []float64{dflt, 0.9}}
	m3 := []Component{wwwOnly, niiOnly}
	m4 := []Component{wwwOnly, wwwOnly}

	for _, s := range []Scheme{Max{}, Avg{}} {
		v3 := s.Derive(query, m3, dflt)
		v4 := s.Derive(query, m4, dflt)
		if math.Abs(v3-v4) > 1e-9 {
			t.Errorf("%s should conflate M3 and M4: %v vs %v", s.Name(), v3, v4)
		}
	}
	qa := QueryAware{}
	v3 := qa.Derive(query, m3, dflt)
	v4 := qa.Derive(query, m4, dflt)
	if v3 <= v4 {
		t.Errorf("query-aware: M3 %v <= M4 %v", v3, v4)
	}
	// And M2 (one paragraph strong for both) still wins.
	both := Component{Value: 0.85, PerSub: []float64{0.9, 0.9}}
	v2 := qa.Derive(query, []Component{both}, dflt)
	if v2 <= v3 {
		t.Errorf("query-aware: M2 %v <= M3 %v", v2, v3)
	}
}

func TestQueryAwareOperatorSemantics(t *testing.T) {
	// Full-query values are 0 so the dispersed-evidence term (with
	// its 0.9 default penalty) always dominates and the operator
	// combination is observable directly.
	comps := []Component{
		{Value: 0, PerSub: []float64{0.8, 0.2}},
		{Value: 0, PerSub: []float64{0.1, 0.6}},
	}
	// Maxima per subquery: 0.8, 0.6.
	const pen = 0.9
	cases := []struct {
		query string
		want  float64
	}{
		{"#and(a b)", pen * (0.8 * 0.6)},
		{"#or(a b)", pen * (1 - 0.2*0.4)},
		{"#sum(a b)", pen * 0.7},
		{"#max(a b)", pen * 0.8},
		{"#wsum(3 a 1 b)", pen * (3*0.8 + 0.6) / 4},
	}
	for _, tt := range cases {
		query := q(t, tt.query)
		got := (QueryAware{}).Derive(query, comps, 0)
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("%s: got %v, want %v", tt.query, got, tt.want)
		}
	}
	// Single-subquery degenerates to Max over full values.
	single := q(t, "alpha")
	got := (QueryAware{}).Derive(single, []Component{{Value: 0.5}, {Value: 0.3}}, 0.4)
	if got != 0.5 {
		t.Errorf("single subquery = %v, want 0.5", got)
	}
	// A custom penalty is honored.
	half := QueryAware{DispersionPenalty: 0.5}
	got = half.Derive(q(t, "#max(a b)"), comps, 0)
	if math.Abs(got-0.4) > 1e-9 {
		t.Errorf("custom penalty = %v, want 0.4", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"max", "avg", "length-weighted", "type-weighted", "query-aware"} {
		s, ok := ByName(name)
		if !ok || s.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, s, ok)
		}
	}
	if s, ok := ByName(""); !ok || s.Name() != "max" {
		t.Error("default scheme should be max (the authors' tested scheme)")
	}
	if _, ok := ByName("quantum"); ok {
		t.Error("unknown scheme resolved")
	}
}

// Property: for monotone schemes the derived value lies within
// [min, max] of the component values (or equals dflt for empty
// input).
func TestSchemesBoundedProperty(t *testing.T) {
	query := q(t, "#and(a b)")
	schemes := []Scheme{Max{}, Avg{}, LengthWeighted{}, WeightedByType{Weights: map[string]float64{"X": 2}}}
	f := func(raw []uint8) bool {
		comps := make([]Component, 0, len(raw))
		lo, hi := 1.0, 0.0
		for i, r := range raw {
			v := float64(r) / 255
			typ := "PARA"
			if i%3 == 0 {
				typ = "X"
			}
			comps = append(comps, Component{Value: v, Length: i, Type: typ})
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		for _, s := range schemes {
			got := s.Derive(query, comps, 0.4)
			if len(comps) == 0 {
				if got != 0.4 {
					return false
				}
				continue
			}
			if got < lo-1e-9 || got > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: QueryAware output is within [0,1] when component values
// are, for all operator kinds.
func TestQueryAwareRangeProperty(t *testing.T) {
	queries := []string{"#and(a b c)", "#or(a b c)", "#sum(a b c)", "#max(a b c)", "#wsum(1 a 2 b 3 c)"}
	f := func(raw []uint8, which uint8) bool {
		src := queries[int(which)%len(queries)]
		node, err := irs.ParseQuery(src)
		if err != nil {
			return false
		}
		comps := make([]Component, 0, len(raw)/3)
		for i := 0; i+2 < len(raw); i += 3 {
			comps = append(comps, Component{
				Value:  float64(raw[i]) / 255,
				PerSub: []float64{float64(raw[i]) / 255, float64(raw[i+1]) / 255, float64(raw[i+2]) / 255},
			})
		}
		got := (QueryAware{}).Derive(node, comps, 0.4)
		return got >= 0 && got <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
