package vql

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/oodb"
)

// Plan is a prepared execution plan: one binding domain per FROM
// variable (in FROM order) with the conjuncts of the WHERE clause
// attached to the earliest domain at which all their variables are
// bound, ordered cheapest-first within a domain. With the IRS-first
// strategy, domains of variables carrying an IRS predicate are
// pre-restricted through the set-at-a-time IRS interface.
type Plan struct {
	query    *Query
	domains  []domain
	Strategy Strategy
	// IRSPrefilters counts how many IRS predicates were folded into
	// binding domains (diagnostics for EXP-T2).
	IRSPrefilters int
	seenRows      map[string]bool // DISTINCT bookkeeping per Execute
}

type domain struct {
	binding Binding
	oids    []oodb.OID
	preds   []planPred
}

type planPred struct {
	expr Expr
	cost float64
}

// Describe renders the plan for diagnostics and tests.
func (p *Plan) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "strategy=%s prefilters=%d\n", p.Strategy, p.IRSPrefilters)
	for _, d := range p.domains {
		fmt.Fprintf(&sb, "scan %s IN %s (%d candidates)\n", d.binding.Var, d.binding.Class, len(d.oids))
		for _, pr := range d.preds {
			fmt.Fprintf(&sb, "  filter [cost %.0f] %s\n", pr.cost, pr.expr.String())
		}
	}
	return sb.String()
}

// PlanQuery prepares an execution plan for q under strategy s.
func (ev *Evaluator) PlanQuery(q *Query, s Strategy) (*Plan, error) {
	p := &Plan{query: q}
	for _, b := range q.From {
		if _, ok := ev.db.Class(b.Class); !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownClass, b.Class)
		}
		p.domains = append(p.domains, domain{
			binding: b,
			oids:    ev.db.Extent(b.Class, true),
		})
	}
	conjuncts := splitConjuncts(q.Where)

	// Resolve strategy.
	resolved := s
	if resolved == StrategyAuto {
		resolved = StrategyIndependent
		if ev.provider != nil {
			for _, c := range conjuncts {
				if pred, ok := ev.matchIRSPredicate(c); ok && pred != nil {
					resolved = StrategyIRSFirst
					break
				}
			}
		}
	}
	p.Strategy = resolved

	// IRS-first: fold eligible IRS predicates into their variable's
	// binding domain.
	remaining := conjuncts[:0]
	for _, c := range conjuncts {
		if resolved == StrategyIRSFirst && ev.provider != nil {
			if pred, ok := ev.matchIRSPredicate(c); ok {
				scores, err := ev.provider.IRSResult(pred.coll, pred.query)
				if err != nil {
					return nil, err
				}
				di := p.domainIndex(pred.variable)
				if di >= 0 {
					p.domains[di].oids = filterByScore(p.domains[di].oids, scores, pred)
					p.IRSPrefilters++
					continue // conjunct fully absorbed by the prefilter
				}
			}
		}
		remaining = append(remaining, c)
	}

	// Attach remaining conjuncts at the earliest depth where all
	// their variables are bound; order by estimated cost within a
	// depth (cheap structural predicates run before expensive
	// content predicates — the method-based optimization the paper
	// cites from [AbF95]).
	boundAt := make(map[string]int, len(q.From))
	classOf := make(map[string]string, len(q.From))
	for i, b := range q.From {
		boundAt[b.Var] = i
		classOf[b.Var] = b.Class
	}
	for _, c := range remaining {
		depth := 0
		for _, v := range FreeVars(c) {
			if d, ok := boundAt[v]; ok && d > depth {
				depth = d
			}
		}
		p.domains[depth].preds = append(p.domains[depth].preds, planPred{
			expr: c,
			cost: ev.estimateCost(c, classOf),
		})
	}
	for i := range p.domains {
		preds := p.domains[i].preds
		sort.SliceStable(preds, func(a, b int) bool { return preds[a].cost < preds[b].cost })
	}
	return p, nil
}

func (p *Plan) domainIndex(variable string) int {
	for i := range p.domains {
		if p.domains[i].binding.Var == variable {
			return i
		}
	}
	return -1
}

// splitConjuncts flattens the AND tree of the WHERE clause.
func splitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// irsPredicate is a recognized conjunct of the form
//
//	v -> getIRSValue(coll, 'query') <cmp> threshold
//
// with coll and threshold free of query variables.
type irsPredicate struct {
	variable  string
	coll      oodb.Value
	query     string
	op        BinOp
	threshold float64
}

// matchIRSPredicate recognizes the IRS predicate pattern. The bool
// result reports a match; errors in evaluating the collection
// expression surface as a nil predicate with ok=false.
func (ev *Evaluator) matchIRSPredicate(e Expr) (*irsPredicate, bool) {
	b, ok := e.(*Binary)
	if !ok {
		return nil, false
	}
	call, lit, op := (*Call)(nil), (*Lit)(nil), b.Op
	if c, okc := b.L.(*Call); okc {
		if l, okl := b.R.(*Lit); okl {
			call, lit = c, l
		}
	}
	if call == nil {
		if c, okc := b.R.(*Call); okc {
			if l, okl := b.L.(*Lit); okl {
				call, lit = c, l
				op = flipCmp(op)
			}
		}
	}
	if call == nil || call.IsAttr || call.Name != "getIRSValue" || len(call.Args) != 2 {
		return nil, false
	}
	recv, ok := call.Recv.(*Ident)
	if !ok || !recv.bound {
		return nil, false
	}
	qlit, ok := call.Args[1].(*Lit)
	if !ok || qlit.Val.Kind != oodb.KindString {
		return nil, false
	}
	threshold, ok := lit.Val.AsFloat()
	if !ok {
		return nil, false
	}
	switch op {
	case OpGt, OpGe, OpLt, OpLe, OpEq:
	default:
		return nil, false
	}
	// The collection expression must be evaluable without bindings.
	coll, err := ev.eval(call.Args[0], nil)
	if err != nil || coll.Kind != oodb.KindOID {
		return nil, false
	}
	return &irsPredicate{
		variable:  recv.Name,
		coll:      coll,
		query:     qlit.Val.Str,
		op:        op,
		threshold: threshold,
	}, true
}

func flipCmp(op BinOp) BinOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	}
	return op
}

func filterByScore(oids []oodb.OID, scores map[oodb.OID]float64, pred *irsPredicate) []oodb.OID {
	var out []oodb.OID
	for _, oid := range oids {
		score, ok := scores[oid]
		if !ok {
			continue
		}
		keep := false
		switch pred.op {
		case OpGt:
			keep = score > pred.threshold
		case OpGe:
			keep = score >= pred.threshold
		case OpLt:
			keep = score < pred.threshold
		case OpLe:
			keep = score <= pred.threshold
		case OpEq:
			keep = score == pred.threshold
		}
		if keep {
			out = append(out, oid)
		}
	}
	return out
}

// estimateCost scores an expression by summing the costs of the
// methods it invokes (attribute accesses and literals cost ~0).
// classOf maps query variables to their FROM classes so annotated
// method costs ([AbF95]) resolve along the right class chain.
func (ev *Evaluator) estimateCost(e Expr, classOf map[string]string) float64 {
	switch n := e.(type) {
	case *Lit:
		return 0
	case *Ident:
		return 0
	case *Not:
		return ev.estimateCost(n.X, classOf)
	case *Binary:
		return ev.estimateCost(n.L, classOf) + ev.estimateCost(n.R, classOf)
	case *Call:
		cost := ev.estimateCost(n.Recv, classOf)
		for _, a := range n.Args {
			cost += ev.estimateCost(a, classOf)
		}
		if n.IsAttr {
			return cost + 0.1
		}
		if id, ok := n.Recv.(*Ident); ok && id.bound {
			if class, ok := classOf[id.Name]; ok {
				return cost + ev.db.MethodCost(class, n.Name)
			}
		}
		return cost + 1
	}
	return 1
}
