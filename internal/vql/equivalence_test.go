package vql

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/oodb"
)

// Property: the evaluator (with predicate pushdown and cost
// ordering) returns exactly the rows a brute-force cross-product
// reference produces, for randomly generated two-variable queries.
func TestEvaluatorMatchesBruteForceProperty(t *testing.T) {
	db, err := oodb.Open("", oodb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ name, super string }{
		{"Obj", ""}, {"A", "Obj"}, {"B", "Obj"},
	} {
		if err := db.DefineClass(c.name, c.super, nil); err != nil {
			t.Fatal(err)
		}
	}
	db.RegisterMethod("Obj", "score", func(db *oodb.DB, self oodb.OID, args []oodb.Value) (oodb.Value, error) {
		v, _ := db.Attr(self, "n")
		return oodb.I(v.Int * 2), nil
	})
	var as, bs []oodb.OID
	for i := 0; i < 5; i++ {
		a, _ := db.NewObject("A", map[string]oodb.Value{
			"n": oodb.I(int64(i)), "tag": oodb.S(fmt.Sprint("t", i%3)),
		})
		as = append(as, a)
		b, _ := db.NewObject("B", map[string]oodb.Value{
			"n": oodb.I(int64(i * 2)), "tag": oodb.S(fmt.Sprint("t", i%2)),
		})
		bs = append(bs, b)
	}
	ev := NewEvaluator(db, nil)

	attrInt := func(oid oodb.OID, name string) int64 {
		v, _ := db.Attr(oid, name)
		return v.Int
	}
	attrStr := func(oid oodb.OID, name string) string {
		v, _ := db.Attr(oid, name)
		return v.Str
	}

	// Predicate pool: VQL source plus its Go reference.
	preds := []struct {
		src string
		ref func(a, b oodb.OID) bool
	}{
		{"x -> n > 2", func(a, b oodb.OID) bool { return attrInt(a, "n") > 2 }},
		{"y -> n <= 4", func(a, b oodb.OID) bool { return attrInt(b, "n") <= 4 }},
		{"x -> tag = y -> tag", func(a, b oodb.OID) bool { return attrStr(a, "tag") == attrStr(b, "tag") }},
		{"x -> score() >= y -> n", func(a, b oodb.OID) bool { return attrInt(a, "n")*2 >= attrInt(b, "n") }},
		{"NOT (x -> n = 0)", func(a, b oodb.OID) bool { return attrInt(a, "n") != 0 }},
		{"x -> n = 1 OR y -> n = 0", func(a, b oodb.OID) bool {
			return attrInt(a, "n") == 1 || attrInt(b, "n") == 0
		}},
	}

	f := func(mask uint8) bool {
		chosen := []int{}
		for i := range preds {
			if mask&(1<<i) != 0 {
				chosen = append(chosen, i)
			}
		}
		src := "ACCESS x, y FROM x IN A, y IN B"
		if len(chosen) > 0 {
			src += " WHERE "
			for i, idx := range chosen {
				if i > 0 {
					src += " AND "
				}
				// Parenthesized so OR inside a predicate cannot
				// rebind against the surrounding conjunction.
				src += "(" + preds[idx].src + ")"
			}
		}
		src += ";"
		rs, err := ev.Run(src)
		if err != nil {
			t.Logf("query %q: %v", src, err)
			return false
		}
		got := make(map[[2]oodb.OID]bool, len(rs.Rows))
		for _, row := range rs.Rows {
			got[[2]oodb.OID{row[0].Ref, row[1].Ref}] = true
		}
		want := 0
		for _, a := range as {
			for _, b := range bs {
				ok := true
				for _, idx := range chosen {
					if !preds[idx].ref(a, b) {
						ok = false
						break
					}
				}
				if ok {
					want++
					if !got[[2]oodb.OID{a, b}] {
						t.Logf("query %q: missing row (%v,%v)", src, a, b)
						return false
					}
				}
			}
		}
		if len(got) != want {
			t.Logf("query %q: %d rows, want %d", src, len(got), want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 128}); err != nil {
		t.Error(err)
	}
}
