package vql

import (
	"strings"
	"testing"

	"repro/internal/oodb"
)

func TestMethodChaining(t *testing.T) {
	fx := newFixture(t)
	// Chained calls: paragraph -> containing document -> attribute.
	rs, err := fx.ev.Run(`ACCESS p FROM p IN PARA WHERE p -> getContaining('MMFDOC') -> getAttributeValue('YEAR') = '1994';`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 {
		t.Errorf("chained rows = %d, want 2 (paras of the 1994 doc)", len(rs.Rows))
	}
}

func TestAttributeAccessWithoutParens(t *testing.T) {
	fx := newFixture(t)
	rs, err := fx.ev.Run(`ACCESS p -> text FROM p IN PARA;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 4 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	for _, row := range rs.Rows {
		if row[0].Kind != oodb.KindString {
			t.Errorf("attr access returned %v", row[0])
		}
	}
}

func TestPredicatePushdownDepth(t *testing.T) {
	fx := newFixture(t)
	q, err := Parse(`ACCESS d FROM d IN MMFDOC, p IN PARA WHERE d -> getAttributeValue('YEAR') = '1994' AND p -> getContaining('MMFDOC') == d;`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fx.ev.PlanQuery(q, StrategyIndependent)
	if err != nil {
		t.Fatal(err)
	}
	desc := plan.Describe()
	// The year predicate references only d and must sit at the d
	// scan, before the p scan line.
	lines := strings.Split(desc, "\n")
	yearLine, joinLine, pScanLine := -1, -1, -1
	for i, l := range lines {
		switch {
		case strings.Contains(l, "YEAR"):
			yearLine = i
		case strings.Contains(l, "getContaining"):
			joinLine = i
		case strings.Contains(l, "scan p IN PARA"):
			pScanLine = i
		}
	}
	if yearLine == -1 || joinLine == -1 || pScanLine == -1 {
		t.Fatalf("plan missing expected lines:\n%s", desc)
	}
	if !(yearLine < pScanLine && pScanLine < joinLine) {
		t.Errorf("pushdown wrong: year@%d pScan@%d join@%d\n%s", yearLine, pScanLine, joinLine, desc)
	}
}

func TestOrPredicateNotSplit(t *testing.T) {
	fx := newFixture(t)
	// OR must stay one predicate (only AND conjuncts split).
	q, err := Parse(`ACCESS p FROM p IN PARA WHERE p -> length() > 100 OR p -> length() < 30;`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fx.ev.PlanQuery(q, StrategyIndependent)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(plan.Describe(), "filter ["); n != 1 {
		t.Errorf("OR split into %d filters:\n%s", n, plan.Describe())
	}
	if _, err := fx.ev.Execute(plan); err != nil {
		t.Fatal(err)
	}
}

func TestIRSFirstSkipsNonMatchingPatterns(t *testing.T) {
	fx := newFixture(t)
	fx.ev.SetIRSProvider(irsProviderFunc(func(coll oodb.Value, q string) (map[oodb.OID]float64, error) {
		return fx.irs[q], nil
	}))
	// Threshold is not a literal comparison against getIRSValue:
	// patterns with method calls on both sides must not be folded.
	q, err := Parse(`ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'WWW') > p -> length();`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fx.ev.PlanQuery(q, StrategyIRSFirst)
	if err != nil {
		t.Fatal(err)
	}
	if plan.IRSPrefilters != 0 {
		t.Errorf("non-literal comparison folded: %s", plan.Describe())
	}
	// Flipped comparison IS folded (literal on the left).
	fx.irs["WWW"] = map[oodb.OID]float64{fx.paras[0]: 0.9}
	q2, _ := Parse(`ACCESS p FROM p IN PARA WHERE 0.5 < p -> getIRSValue(collPara, 'WWW');`)
	plan2, err := fx.ev.PlanQuery(q2, StrategyIRSFirst)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.IRSPrefilters != 1 {
		t.Errorf("flipped literal comparison not folded: %s", plan2.Describe())
	}
	rs, err := fx.ev.Execute(plan2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Errorf("flipped-comparison rows = %v", rs.Rows)
	}
}

func TestEnvironmentBindings(t *testing.T) {
	fx := newFixture(t)
	fx.ev.SetEnv("threshold", oodb.F(0.5))
	fx.irs["WWW"] = map[oodb.OID]float64{fx.paras[0]: 0.9}
	rs, err := fx.ev.Run(`ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'WWW') > threshold;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Errorf("env threshold rows = %v", rs.Rows)
	}
}

func TestStringEscapesAndLiterals(t *testing.T) {
	q, err := Parse(`ACCESS p FROM p IN PARA WHERE p -> getAttributeValue('TITLE') = 'O''Brien''s';`)
	if err != nil {
		t.Fatal(err)
	}
	bin, ok := q.Where.(*Binary)
	if !ok {
		t.Fatalf("where = %T", q.Where)
	}
	lit, ok := bin.R.(*Lit)
	if !ok || lit.Val.Str != "O'Brien's" {
		t.Errorf("escaped string = %v", bin.R)
	}
	// Float and negative handling: numbers are unsigned in the
	// lexer; comparisons use literals.
	q2, err := Parse(`ACCESS p FROM p IN PARA WHERE p -> length() >= 0.25;`)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Where == nil {
		t.Error("float literal lost")
	}
}

func TestResultSetColumnsNamed(t *testing.T) {
	fx := newFixture(t)
	rs, err := fx.ev.Run(`ACCESS p, p -> length() FROM p IN PARA;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Columns) != 2 || rs.Columns[0] != "p" || !strings.Contains(rs.Columns[1], "length") {
		t.Errorf("columns = %v", rs.Columns)
	}
}
