// Package vql implements the OODBMS query language of the coupling —
// the role VODAK's VQL plays in the paper. Queries have the form
//
//	ACCESS [DISTINCT] <expr>, ... FROM v1 IN Class1, v2 IN Class2, ...
//	WHERE <condition>;
//
// and may mix structural predicates (attribute access, method calls
// like getNext or getContaining) with content predicates
// (getIRSValue against a collection) exactly as in the paper's
// Section 4.4 examples, which parse verbatim.
//
// The evaluator performs nested-loop binding over class extents with
// predicate pushdown; the optimizer additionally orders predicates
// by method cost ([AbF95]-style method-based optimization) and can
// rewrite IRS predicates into a set-at-a-time prefilter (the
// "IRS-first" evaluation strategy of Section 4.5.3).
package vql

import (
	"fmt"
	"strings"

	"repro/internal/oodb"
)

// Query is a parsed ACCESS...FROM...WHERE statement.
type Query struct {
	// Distinct suppresses duplicate result rows (set semantics, as
	// in the paper's sample queries where a document qualifying via
	// several paragraphs is still one answer).
	Distinct bool
	Access   []Expr
	From     []Binding
	Where    Expr // nil when absent
}

// Binding is one FROM clause entry: variable IN Class.
type Binding struct {
	Var   string
	Class string
}

// String renders the query in canonical syntax.
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("ACCESS ")
	if q.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, e := range q.Access {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(e.String())
	}
	sb.WriteString(" FROM ")
	for i, b := range q.From {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(b.Var + " IN " + b.Class)
	}
	if q.Where != nil {
		sb.WriteString(" WHERE " + q.Where.String())
	}
	sb.WriteByte(';')
	return sb.String()
}

// Expr is a VQL expression node.
type Expr interface {
	String() string
	// vars reports the free query variables of the expression.
	vars(set map[string]bool)
}

// Lit is a literal constant.
type Lit struct {
	Val oodb.Value
}

func (l *Lit) String() string {
	if l.Val.Kind == oodb.KindString {
		return "'" + strings.ReplaceAll(l.Val.Str, "'", "''") + "'"
	}
	return l.Val.String()
}

func (l *Lit) vars(map[string]bool) {}

// Ident references either a FROM variable or an application-supplied
// environment name (e.g. collPara, "the OID of a paragraph-
// collection" in the paper's examples).
type Ident struct {
	Name string
	// bound is set by the parser when the name matches a FROM
	// variable; unbound idents resolve through the environment.
	bound bool
}

func (v *Ident) String() string { return v.Name }

func (v *Ident) vars(set map[string]bool) {
	if v.bound {
		set[v.Name] = true
	}
}

// Call is a method invocation (recv -> name(args...)) or attribute
// access (recv -> name).
type Call struct {
	Recv   Expr
	Name   string
	Args   []Expr
	IsAttr bool // no parentheses: attribute access
}

func (c *Call) String() string {
	var sb strings.Builder
	sb.WriteString(c.Recv.String())
	sb.WriteString(" -> ")
	sb.WriteString(c.Name)
	if !c.IsAttr {
		sb.WriteByte('(')
		for i, a := range c.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(a.String())
		}
		sb.WriteByte(')')
	}
	return sb.String()
}

func (c *Call) vars(set map[string]bool) {
	c.Recv.vars(set)
	for _, a := range c.Args {
		a.vars(set)
	}
}

// BinOp enumerates binary operators.
type BinOp string

// Binary operators.
const (
	OpEq  BinOp = "=="
	OpNe  BinOp = "!="
	OpLt  BinOp = "<"
	OpLe  BinOp = "<="
	OpGt  BinOp = ">"
	OpGe  BinOp = ">="
	OpAnd BinOp = "AND"
	OpOr  BinOp = "OR"
)

// Binary is a binary operation.
type Binary struct {
	Op   BinOp
	L, R Expr
}

func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L.String(), b.Op, b.R.String())
}

func (b *Binary) vars(set map[string]bool) {
	b.L.vars(set)
	b.R.vars(set)
}

// Not is logical negation.
type Not struct {
	X Expr
}

func (n *Not) String() string { return "NOT " + n.X.String() }

func (n *Not) vars(set map[string]bool) { n.X.vars(set) }

// FreeVars returns the FROM variables referenced by e, sorted.
func FreeVars(e Expr) []string {
	set := make(map[string]bool)
	e.vars(set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
