package vql

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/oodb"
)

// fixture builds a two-document database shaped like the paper's MMF
// example: MMFDOC objects containing PARA objects, with structural
// methods (getNext, getContaining, getAttributeValue, length) and a
// table-driven getIRSValue standing in for the coupling.
type fixture struct {
	db    *oodb.DB
	ev    *Evaluator
	docs  []oodb.OID
	paras []oodb.OID
	// irs maps "query" -> oid -> value, consulted by getIRSValue.
	irs map[string]map[oodb.OID]float64
	// irsCalls counts getIRSValue invocations (optimizer tests).
	irsCalls int
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	db, err := oodb.Open("", oodb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fx := &fixture{db: db, irs: make(map[string]map[oodb.OID]float64)}
	for _, c := range []struct{ name, super string }{
		{"IRSObject", ""}, {"Element", "IRSObject"},
		{"MMFDOC", "Element"}, {"PARA", "Element"},
	} {
		if err := db.DefineClass(c.name, c.super, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Two documents, two paragraphs each.
	for d := 0; d < 2; d++ {
		doc, _ := db.NewObject("MMFDOC", map[string]oodb.Value{
			"@YEAR":  oodb.S([]string{"1994", "1995"}[d]),
			"@TITLE": oodb.S([]string{"Telnet", "Gopher"}[d]),
		})
		var kids []oodb.OID
		for p := 0; p < 2; p++ {
			para, _ := db.NewObject("PARA", map[string]oodb.Value{
				"parent": oodb.Ref(doc),
				"text":   oodb.S(strings.Repeat("w ", 10*(p+1))),
			})
			kids = append(kids, para)
			fx.paras = append(fx.paras, para)
		}
		db.SetAttr(doc, "children", oodb.RefList(kids))
		fx.docs = append(fx.docs, doc)
	}

	db.RegisterMethod("Element", "getAttributeValue", func(db *oodb.DB, self oodb.OID, args []oodb.Value) (oodb.Value, error) {
		if len(args) != 1 || args[0].Kind != oodb.KindString {
			return oodb.Null(), errors.New("getAttributeValue wants one string")
		}
		v, _ := db.Attr(self, "@"+args[0].Str)
		return v, nil
	})
	db.RegisterMethod("Element", "length", func(db *oodb.DB, self oodb.OID, args []oodb.Value) (oodb.Value, error) {
		v, _ := db.Attr(self, "text")
		return oodb.I(int64(len(v.Str))), nil
	})
	db.RegisterMethod("Element", "getContaining", func(db *oodb.DB, self oodb.OID, args []oodb.Value) (oodb.Value, error) {
		v, _ := db.Attr(self, "parent")
		return v, nil
	})
	db.RegisterMethod("Element", "getNext", func(db *oodb.DB, self oodb.OID, args []oodb.Value) (oodb.Value, error) {
		parent, ok := db.Attr(self, "parent")
		if !ok {
			return oodb.Null(), nil
		}
		kidsV, _ := db.Attr(parent.Ref, "children")
		kids := kidsV.OIDList()
		for i, k := range kids {
			if k == self && i+1 < len(kids) {
				return oodb.Ref(kids[i+1]), nil
			}
		}
		return oodb.Null(), nil
	})
	db.RegisterMethod("IRSObject", "getIRSValue", func(db *oodb.DB, self oodb.OID, args []oodb.Value) (oodb.Value, error) {
		fx.irsCalls++
		if len(args) != 2 {
			return oodb.Null(), errors.New("getIRSValue wants (coll, query)")
		}
		if m := fx.irs[args[1].Str]; m != nil {
			return oodb.F(m[self]), nil
		}
		return oodb.F(0), nil
	})
	db.SetMethodCost("IRSObject", "getIRSValue", 1000)

	fx.ev = NewEvaluator(db, map[string]oodb.Value{
		"collPara": oodb.Ref(oodb.OID(9001)), // a pseudo collection object
	})
	return fx
}

// irsProviderFunc adapts a function to IRSPredicateProvider.
type irsProviderFunc func(coll oodb.Value, q string) (map[oodb.OID]float64, error)

func (f irsProviderFunc) IRSResult(coll oodb.Value, q string) (map[oodb.OID]float64, error) {
	return f(coll, q)
}

func TestParsePaperQueries(t *testing.T) {
	// Both sample queries from Section 4.4, verbatim (modulo the
	// Figure's line breaks).
	q1 := `ACCESS p, p -> length() FROM p IN PARA
WHERE p -> getIRSValue (collPara, 'WWW') > 0.6;`
	q2 := `ACCESS d -> getAttributeValue ('TITLE'),
FROM d IN MMFDOC, p1 IN PARA, p2 IN PARA
WHERE d -> getAttributeValue ('YEAR') = '1994' AND
p1 -> getNext() == p2 AND
p1 -> getContaining ('MMFDOC') == d AND
p1 -> getIRSValue (collPara, 'WWW') > 0.4 AND
p2 -> getIRSValue (collPara, 'NII') > 0.4;`
	for i, src := range []string{q1, q2} {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("paper query %d: %v", i+1, err)
		}
		if q.Where == nil {
			t.Errorf("paper query %d: WHERE lost", i+1)
		}
	}
	q, _ := Parse(q2)
	if len(q.From) != 3 || q.From[0].Var != "d" || q.From[2].Class != "PARA" {
		t.Errorf("FROM parse: %+v", q.From)
	}
	if len(q.Access) != 1 {
		t.Errorf("ACCESS parse (trailing comma): %d exprs", len(q.Access))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT x FROM y IN Z",
		"ACCESS FROM p IN PARA",
		"ACCESS p FROM p",
		"ACCESS p FROM p IN",
		"ACCESS p FROM p IN PARA, p IN PARA",
		"ACCESS p FROM p IN PARA WHERE",
		"ACCESS p FROM p IN PARA extra",
		"ACCESS p -> FROM p IN PARA",
		"ACCESS p -> f( FROM p IN PARA",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	src := `ACCESS p, p -> length() FROM p IN PARA WHERE p -> getIRSValue(collPara, 'WWW') > 0.6 AND NOT p -> flag;`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse of %q: %v", q.String(), err)
	}
	if q.String() != q2.String() {
		t.Errorf("round trip: %q != %q", q.String(), q2.String())
	}
}

func TestSimpleScanAndProjection(t *testing.T) {
	fx := newFixture(t)
	rs, err := fx.ev.Run(`ACCESS p, p -> length() FROM p IN PARA;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rs.Rows))
	}
	if len(rs.Columns) != 2 {
		t.Fatalf("columns = %v", rs.Columns)
	}
	for _, row := range rs.Rows {
		if row[0].Kind != oodb.KindOID || row[1].Kind != oodb.KindInt {
			t.Errorf("row types: %v", row)
		}
	}
}

func TestWhereAttributeAndMethod(t *testing.T) {
	fx := newFixture(t)
	rs, err := fx.ev.Run(`ACCESS d -> getAttributeValue('TITLE') FROM d IN MMFDOC WHERE d -> getAttributeValue('YEAR') = '1994';`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].Str != "Telnet" {
		t.Errorf("rows = %v", rs.Rows)
	}
}

func TestIRSValuePredicate(t *testing.T) {
	fx := newFixture(t)
	fx.irs["WWW"] = map[oodb.OID]float64{
		fx.paras[0]: 0.9, fx.paras[1]: 0.5, fx.paras[2]: 0.7,
	}
	rs, err := fx.ev.Run(`ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'WWW') > 0.6;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %v", rs.Rows)
	}
}

func TestPaperJoinQuery(t *testing.T) {
	fx := newFixture(t)
	// p0 relevant to WWW, its next sibling p1 relevant to NII, both
	// in the 1994 document.
	fx.irs["WWW"] = map[oodb.OID]float64{fx.paras[0]: 0.8}
	fx.irs["NII"] = map[oodb.OID]float64{fx.paras[1]: 0.8}
	rs, err := fx.ev.Run(`
ACCESS d -> getAttributeValue('TITLE')
FROM d IN MMFDOC, p1 IN PARA, p2 IN PARA
WHERE d -> getAttributeValue('YEAR') = '1994' AND
p1 -> getNext() == p2 AND
p1 -> getContaining('MMFDOC') == d AND
p1 -> getIRSValue(collPara, 'WWW') > 0.4 AND
p2 -> getIRSValue(collPara, 'NII') > 0.4;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].Str != "Telnet" {
		t.Errorf("join rows = %v", rs.Rows)
	}
	// Moving the NII relevance to a paragraph of the other document
	// must empty the result.
	fx.irs["NII"] = map[oodb.OID]float64{fx.paras[3]: 0.8}
	rs, err = fx.ev.Run(`
ACCESS d FROM d IN MMFDOC, p1 IN PARA, p2 IN PARA
WHERE p1 -> getNext() == p2 AND
p1 -> getContaining('MMFDOC') == d AND
p1 -> getIRSValue(collPara, 'WWW') > 0.4 AND
p2 -> getIRSValue(collPara, 'NII') > 0.4;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 0 {
		t.Errorf("expected empty result, got %v", rs.Rows)
	}
}

func TestBooleanOperatorsAndNot(t *testing.T) {
	fx := newFixture(t)
	rs, err := fx.ev.Run(`ACCESS d FROM d IN MMFDOC WHERE d -> getAttributeValue('YEAR') = '1994' OR d -> getAttributeValue('YEAR') = '1995';`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 {
		t.Errorf("OR rows = %d", len(rs.Rows))
	}
	rs, err = fx.ev.Run(`ACCESS d FROM d IN MMFDOC WHERE NOT (d -> getAttributeValue('YEAR') = '1994');`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Errorf("NOT rows = %d", len(rs.Rows))
	}
}

func TestDeepExtentPolymorphicScan(t *testing.T) {
	fx := newFixture(t)
	rs, err := fx.ev.Run(`ACCESS o FROM o IN IRSObject;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 6 { // 2 docs + 4 paras
		t.Errorf("deep extent rows = %d, want 6", len(rs.Rows))
	}
}

func TestEvalErrors(t *testing.T) {
	fx := newFixture(t)
	if _, err := fx.ev.Run(`ACCESS x FROM x IN Ghost;`); !errors.Is(err, ErrUnknownClass) {
		t.Errorf("unknown class: %v", err)
	}
	if _, err := fx.ev.Run(`ACCESS unknownName FROM p IN PARA;`); !errors.Is(err, ErrUnknownName) {
		t.Errorf("unknown name: %v", err)
	}
	if _, err := fx.ev.Run(`ACCESS p -> ghostMethod() FROM p IN PARA;`); err == nil {
		t.Error("missing method tolerated")
	}
	if _, err := fx.ev.Run(`ACCESS p FROM p IN PARA WHERE p -> length() > 'abc';`); err == nil {
		t.Error("type-confused comparison tolerated")
	}
}

func TestPlanPredicateOrdering(t *testing.T) {
	fx := newFixture(t)
	q, err := Parse(`ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'WWW') > 0.1 AND p -> length() > 0;`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fx.ev.PlanQuery(q, StrategyIndependent)
	if err != nil {
		t.Fatal(err)
	}
	desc := plan.Describe()
	iLen := strings.Index(desc, "length")
	iIRS := strings.Index(desc, "getIRSValue")
	if iLen < 0 || iIRS < 0 || iLen > iIRS {
		t.Errorf("cheap predicate not ordered first:\n%s", desc)
	}
	// Cheap predicate filters everything; the expensive IRS method
	// must then never be called... but length()>0 passes all, so IRS
	// runs for each candidate. Flip: length() > 100000 filters all.
	fx.irsCalls = 0
	_, err = fx.ev.RunWithStrategy(`ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'WWW') > 0.1 AND p -> length() > 100000;`, StrategyIndependent)
	if err != nil {
		t.Fatal(err)
	}
	if fx.irsCalls != 0 {
		t.Errorf("expensive method called %d times despite failing cheap filter", fx.irsCalls)
	}
}

func TestIRSFirstStrategyPrefilters(t *testing.T) {
	fx := newFixture(t)
	fx.irs["WWW"] = map[oodb.OID]float64{fx.paras[0]: 0.9, fx.paras[2]: 0.3}
	fx.ev.SetIRSProvider(irsProviderFunc(func(coll oodb.Value, q string) (map[oodb.OID]float64, error) {
		return fx.irs[q], nil
	}))
	q, err := Parse(`ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'WWW') > 0.6;`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fx.ev.PlanQuery(q, StrategyIRSFirst)
	if err != nil {
		t.Fatal(err)
	}
	if plan.IRSPrefilters != 1 {
		t.Fatalf("prefilters = %d\n%s", plan.IRSPrefilters, plan.Describe())
	}
	fx.irsCalls = 0
	rs, err := fx.ev.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].Ref != fx.paras[0] {
		t.Errorf("irs-first rows = %v", rs.Rows)
	}
	if fx.irsCalls != 0 {
		t.Errorf("per-object getIRSValue still called %d times under IRS-first", fx.irsCalls)
	}
	// Auto selects IRS-first when a provider is present.
	planAuto, _ := fx.ev.PlanQuery(q, StrategyAuto)
	if planAuto.Strategy != StrategyIRSFirst {
		t.Errorf("auto strategy = %v", planAuto.Strategy)
	}
	// And stays independent for pure structural queries.
	q2, _ := Parse(`ACCESS p FROM p IN PARA WHERE p -> length() > 0;`)
	planStruct, _ := fx.ev.PlanQuery(q2, StrategyAuto)
	if planStruct.Strategy != StrategyIndependent {
		t.Errorf("auto strategy for structural query = %v", planStruct.Strategy)
	}
}

// Property-style check: both strategies agree on results whenever
// the queried variable's objects are all represented in the IRS
// result (the containment condition under which the two strategies
// coincide, Section 4.5.3).
func TestStrategiesAgreeWhenFullyRepresented(t *testing.T) {
	fx := newFixture(t)
	scores := map[oodb.OID]float64{}
	for i, p := range fx.paras {
		scores[p] = float64(i+1) / 10 // 0.1 .. 0.4
	}
	fx.irs["WWW"] = scores
	fx.ev.SetIRSProvider(irsProviderFunc(func(coll oodb.Value, q string) (map[oodb.OID]float64, error) {
		return fx.irs[q], nil
	}))
	for _, threshold := range []string{"0.05", "0.15", "0.25", "0.35", "0.45"} {
		src := `ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'WWW') > ` + threshold + `;`
		a, err := fx.ev.RunWithStrategy(src, StrategyIndependent)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fx.ev.RunWithStrategy(src, StrategyIRSFirst)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Rows) != len(b.Rows) {
			t.Errorf("threshold %s: independent %d rows vs irs-first %d rows",
				threshold, len(a.Rows), len(b.Rows))
		}
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	fx := newFixture(t)
	rs, err := fx.ev.Run(`access p from p in PARA where p -> length() >= 0;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 4 {
		t.Errorf("lowercase keywords rows = %d", len(rs.Rows))
	}
	// Mixed case in operators too.
	rs, err = fx.ev.Run(`ACCESS p FROM p IN PARA WHERE p -> length() > 0 And Not (p -> length() = 0);`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 4 {
		t.Errorf("mixed-case operators rows = %d", len(rs.Rows))
	}
}

func TestEqualityOperatorVariants(t *testing.T) {
	fx := newFixture(t)
	for _, op := range []string{"=", "=="} {
		rs, err := fx.ev.Run(`ACCESS d FROM d IN MMFDOC WHERE d -> getAttributeValue('YEAR') ` + op + ` '1994';`)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs.Rows) != 1 {
			t.Errorf("op %s rows = %d", op, len(rs.Rows))
		}
	}
	for _, op := range []string{"!=", "<>"} {
		rs, err := fx.ev.Run(`ACCESS d FROM d IN MMFDOC WHERE d -> getAttributeValue('YEAR') ` + op + ` '1994';`)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs.Rows) != 1 {
			t.Errorf("op %s rows = %d", op, len(rs.Rows))
		}
	}
}

func TestDistinct(t *testing.T) {
	fx := newFixture(t)
	// Without DISTINCT: the join yields d once per paragraph pair.
	rs, err := fx.ev.Run(`ACCESS d FROM d IN MMFDOC, p IN PARA WHERE p -> getContaining('MMFDOC') == d;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 4 { // 2 docs x 2 own paras
		t.Fatalf("plain rows = %d, want 4", len(rs.Rows))
	}
	rs, err = fx.ev.Run(`ACCESS DISTINCT d FROM d IN MMFDOC, p IN PARA WHERE p -> getContaining('MMFDOC') == d;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 {
		t.Fatalf("distinct rows = %d, want 2", len(rs.Rows))
	}
	// Round trip keeps the keyword.
	q, err := Parse(`ACCESS DISTINCT d FROM d IN MMFDOC;`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Distinct || !strings.Contains(q.String(), "DISTINCT") {
		t.Errorf("distinct lost: %q", q.String())
	}
	// Multi-column distinctness is per full row.
	rs, err = fx.ev.Run(`ACCESS DISTINCT d, p FROM d IN MMFDOC, p IN PARA WHERE p -> getContaining('MMFDOC') == d;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 4 {
		t.Errorf("distinct (d,p) rows = %d, want 4", len(rs.Rows))
	}
}
