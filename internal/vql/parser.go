package vql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/oodb"
)

// ParseError reports a VQL syntax error.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("vql: parse error at %d: %s", e.Pos, e.Msg)
}

// Parse parses one VQL statement.
func Parse(src string) (*Query, error) {
	p := &parser{toks: lex(src)}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

// token kinds
type tokKind uint8

const (
	tkEOF tokKind = iota
	tkIdent
	tkString
	tkNumber
	tkArrow // ->
	tkOp    // punctuation/operators
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(src string) []token {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'' || c == '"':
			q := c
			j := i + 1
			var sb strings.Builder
			for j < len(src) {
				if src[j] == q {
					// doubled quote = escaped quote
					if j+1 < len(src) && src[j+1] == q {
						sb.WriteByte(q)
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(src[j])
				j++
			}
			toks = append(toks, token{kind: tkString, text: sb.String(), pos: i})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '.' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9'):
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			toks = append(toks, token{kind: tkNumber, text: src[i:j], pos: i})
			i = j
		case isIdentByte(c):
			j := i
			for j < len(src) && isIdentByte(src[j]) {
				j++
			}
			toks = append(toks, token{kind: tkIdent, text: src[i:j], pos: i})
			i = j
		case c == '-' && i+1 < len(src) && src[i+1] == '>':
			toks = append(toks, token{kind: tkArrow, text: "->", pos: i})
			i += 2
		default:
			// multi-char operators
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<>", ">=", "<=":
				toks = append(toks, token{kind: tkOp, text: two, pos: i})
				i += 2
				continue
			}
			toks = append(toks, token{kind: tkOp, text: string(c), pos: i})
			i++
		}
	}
	toks = append(toks, token{kind: tkEOF, pos: len(src)})
	return toks
}

func isIdentByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
		(c >= '0' && c <= '9')
}

type parser struct {
	toks []token
	pos  int
	vars map[string]bool
}

func (p *parser) cur() token { return p.toks[p.pos] }

// next returns the current token and advances, but never moves past
// the EOF sentinel.
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tkEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &ParseError{Pos: p.cur().pos, Msg: fmt.Sprintf(format, args...)}
}

// keyword matches a case-insensitive keyword identifier.
func (p *parser) keyword(kw string) bool {
	t := p.cur()
	if t.kind == tkIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) op(text string) bool {
	t := p.cur()
	if t.kind == tkOp && t.text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseQuery() (*Query, error) {
	if !p.keyword("ACCESS") {
		return nil, p.errf("query must start with ACCESS")
	}
	q := &Query{}
	if p.keyword("DISTINCT") {
		q.Distinct = true
	}
	// FROM bindings are needed to classify identifiers, so scan
	// ahead for them first.
	p.vars = scanBindings(p.toks)
	for {
		// Tolerate the trailing comma before FROM that appears in
		// the paper's second example.
		if p.cur().kind == tkIdent && strings.EqualFold(p.cur().text, "FROM") {
			break
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Access = append(q.Access, e)
		if p.op(",") {
			continue
		}
		break
	}
	if len(q.Access) == 0 {
		return nil, p.errf("ACCESS clause is empty")
	}
	if !p.keyword("FROM") {
		return nil, p.errf("expected FROM")
	}
	for {
		v := p.next()
		if v.kind != tkIdent {
			return nil, p.errf("expected binding variable")
		}
		if !p.keyword("IN") {
			return nil, p.errf("expected IN after %s", v.text)
		}
		cls := p.next()
		if cls.kind != tkIdent {
			return nil, p.errf("expected class name after IN")
		}
		for _, b := range q.From {
			if b.Var == v.text {
				return nil, p.errf("duplicate binding variable %s", v.text)
			}
		}
		q.From = append(q.From, Binding{Var: v.text, Class: cls.text})
		if p.op(",") {
			continue
		}
		break
	}
	if p.keyword("WHERE") {
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = w
	}
	p.op(";")
	if p.cur().kind != tkEOF {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return q, nil
}

// scanBindings pre-scans FROM ... [WHERE|;|EOF] to find bound
// variable names (the grammar needs them while parsing ACCESS).
func scanBindings(toks []token) map[string]bool {
	vars := make(map[string]bool)
	for i := 0; i < len(toks); i++ {
		if toks[i].kind == tkIdent && strings.EqualFold(toks[i].text, "FROM") {
			for j := i + 1; j+2 < len(toks); j += 4 {
				if toks[j].kind != tkIdent ||
					toks[j+1].kind != tkIdent || !strings.EqualFold(toks[j+1].text, "IN") ||
					toks[j+2].kind != tkIdent {
					break
				}
				vars[toks[j].text] = true
				if !(toks[j+3].kind == tkOp && toks[j+3].text == ",") {
					break
				}
			}
			break
		}
	}
	return vars
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.keyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.keyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Not{X: x}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind != tkOp {
		return l, nil
	}
	var op BinOp
	switch t.text {
	case "==", "=":
		op = OpEq
	case "!=", "<>":
		op = OpNe
	case "<":
		op = OpLt
	case "<=":
		op = OpLe
	case ">":
		op = OpGt
	case ">=":
		op = OpGe
	default:
		return l, nil
	}
	p.pos++
	r, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Binary{Op: op, L: l, R: r}, nil
}

// parseExpr parses a primary expression with method-call chains.
func (p *parser) parseExpr() (Expr, error) {
	var e Expr
	t := p.cur()
	switch {
	case t.kind == tkString:
		p.pos++
		e = &Lit{Val: oodb.S(t.text)}
	case t.kind == tkNumber:
		p.pos++
		if strings.ContainsRune(t.text, '.') {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			e = &Lit{Val: oodb.F(f)}
		} else {
			n, err := strconv.ParseInt(t.text, 10, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			e = &Lit{Val: oodb.I(n)}
		}
	case t.kind == tkIdent && strings.EqualFold(t.text, "TRUE"):
		p.pos++
		e = &Lit{Val: oodb.B(true)}
	case t.kind == tkIdent && strings.EqualFold(t.text, "FALSE"):
		p.pos++
		e = &Lit{Val: oodb.B(false)}
	case t.kind == tkIdent && strings.EqualFold(t.text, "NULL"):
		p.pos++
		e = &Lit{Val: oodb.Null()}
	case t.kind == tkIdent:
		p.pos++
		e = &Ident{Name: t.text, bound: p.vars[t.text]}
	case t.kind == tkOp && t.text == "(":
		p.pos++
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.op(")") {
			return nil, p.errf("missing )")
		}
		e = inner
	default:
		return nil, p.errf("unexpected token %q", t.text)
	}
	// Method-call / attribute-access chain.
	for p.cur().kind == tkArrow {
		p.pos++
		name := p.next()
		if name.kind != tkIdent {
			return nil, p.errf("expected method name after ->")
		}
		call := &Call{Recv: e, Name: name.text}
		if p.op("(") {
			for !p.op(")") {
				arg, err := p.parseOr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if p.op(",") {
					continue
				}
				if !p.op(")") {
					return nil, p.errf("missing ) in argument list of %s", name.text)
				}
				break
			}
		} else {
			call.IsAttr = true
		}
		e = call
	}
	return e, nil
}
