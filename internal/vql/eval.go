package vql

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/oodb"
)

// Evaluation errors.
var (
	ErrUnknownName  = errors.New("vql: unknown name")
	ErrNotAnObject  = errors.New("vql: receiver is not an object")
	ErrUnknownClass = errors.New("vql: unknown class in FROM")
)

// IRSPredicateProvider evaluates an IRS content predicate
// set-at-a-time. The coupling layer implements it; the optimizer
// uses it for the IRS-first strategy of Section 4.5.3: "The IRS
// selects all IRS documents fulfilling the conditions on the
// content. The structure conditions are only verified for the text
// objects identified in this first step."
type IRSPredicateProvider interface {
	// IRSResult returns the retrieval values of all objects
	// REPRESENTED in the collection denoted by coll for irsQuery.
	// Objects that would only obtain a value via derivation are not
	// included — the documented semantic difference between the two
	// strategies.
	IRSResult(coll oodb.Value, irsQuery string) (map[oodb.OID]float64, error)
}

// Strategy selects how mixed queries are evaluated (Section 4.5.3).
type Strategy uint8

// Evaluation strategies.
const (
	// StrategyIndependent evaluates every predicate per candidate
	// binding through method calls (alternative 1; IRS results are
	// still buffered by the coupling).
	StrategyIndependent Strategy = iota
	// StrategyIRSFirst restricts a variable's binding domain to the
	// objects returned by the IRS before verifying structural
	// conditions (alternative 2).
	StrategyIRSFirst
	// StrategyAuto lets the optimizer choose per query: IRS-first
	// when an IRS predicate exists and a provider is registered,
	// independent otherwise.
	StrategyAuto
)

func (s Strategy) String() string {
	switch s {
	case StrategyIndependent:
		return "independent"
	case StrategyIRSFirst:
		return "irs-first"
	case StrategyAuto:
		return "auto"
	}
	return "?"
}

// ResultSet is the output of a query.
type ResultSet struct {
	Columns []string
	Rows    [][]oodb.Value
}

// Evaluator runs VQL queries against a database.
type Evaluator struct {
	db       *oodb.DB
	env      map[string]oodb.Value
	provider IRSPredicateProvider
}

// NewEvaluator returns an evaluator over db. env supplies values for
// free identifiers (e.g. collection OIDs like collPara).
func NewEvaluator(db *oodb.DB, env map[string]oodb.Value) *Evaluator {
	if env == nil {
		env = map[string]oodb.Value{}
	}
	return &Evaluator{db: db, env: env}
}

// SetEnv binds a free identifier.
func (ev *Evaluator) SetEnv(name string, v oodb.Value) { ev.env[name] = v }

// SetIRSProvider registers the coupling's set-at-a-time IRS
// interface, enabling the IRS-first strategy.
func (ev *Evaluator) SetIRSProvider(p IRSPredicateProvider) { ev.provider = p }

// Run parses, plans and executes a statement with StrategyAuto.
func (ev *Evaluator) Run(src string) (*ResultSet, error) {
	return ev.RunWithStrategy(src, StrategyAuto)
}

// RunWithStrategy parses, plans and executes a statement under an
// explicit evaluation strategy.
func (ev *Evaluator) RunWithStrategy(src string, s Strategy) (*ResultSet, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	plan, err := ev.PlanQuery(q, s)
	if err != nil {
		return nil, err
	}
	return ev.Execute(plan)
}

// bindings is the runtime variable environment of one candidate row.
type bindings map[string]oodb.OID

// eval evaluates an expression under the current bindings.
func (ev *Evaluator) eval(e Expr, b bindings) (oodb.Value, error) {
	switch n := e.(type) {
	case *Lit:
		return n.Val, nil
	case *Ident:
		if n.bound {
			return oodb.Ref(b[n.Name]), nil
		}
		if v, ok := ev.env[n.Name]; ok {
			return v, nil
		}
		return oodb.Null(), fmt.Errorf("%w: %q", ErrUnknownName, n.Name)
	case *Call:
		recv, err := ev.eval(n.Recv, b)
		if err != nil {
			return oodb.Null(), err
		}
		if recv.Kind != oodb.KindOID {
			return oodb.Null(), fmt.Errorf("%w: %s -> %s", ErrNotAnObject, recv, n.Name)
		}
		if n.IsAttr {
			v, _ := ev.db.Attr(recv.Ref, n.Name)
			return v, nil
		}
		args := make([]oodb.Value, len(n.Args))
		for i, a := range n.Args {
			if args[i], err = ev.eval(a, b); err != nil {
				return oodb.Null(), err
			}
		}
		return ev.db.Call(recv.Ref, n.Name, args...)
	case *Not:
		v, err := ev.eval(n.X, b)
		if err != nil {
			return oodb.Null(), err
		}
		return oodb.B(!v.Truthy()), nil
	case *Binary:
		return ev.evalBinary(n, b)
	}
	return oodb.Null(), fmt.Errorf("vql: unhandled expression %T", e)
}

func (ev *Evaluator) evalBinary(n *Binary, b bindings) (oodb.Value, error) {
	switch n.Op {
	case OpAnd:
		l, err := ev.eval(n.L, b)
		if err != nil {
			return oodb.Null(), err
		}
		if !l.Truthy() {
			return oodb.B(false), nil
		}
		r, err := ev.eval(n.R, b)
		if err != nil {
			return oodb.Null(), err
		}
		return oodb.B(r.Truthy()), nil
	case OpOr:
		l, err := ev.eval(n.L, b)
		if err != nil {
			return oodb.Null(), err
		}
		if l.Truthy() {
			return oodb.B(true), nil
		}
		r, err := ev.eval(n.R, b)
		if err != nil {
			return oodb.Null(), err
		}
		return oodb.B(r.Truthy()), nil
	}
	l, err := ev.eval(n.L, b)
	if err != nil {
		return oodb.Null(), err
	}
	r, err := ev.eval(n.R, b)
	if err != nil {
		return oodb.Null(), err
	}
	switch n.Op {
	case OpEq:
		return oodb.B(l.Equal(r)), nil
	case OpNe:
		return oodb.B(!l.Equal(r)), nil
	}
	c, err := l.Compare(r)
	if err != nil {
		return oodb.Null(), err
	}
	switch n.Op {
	case OpLt:
		return oodb.B(c < 0), nil
	case OpLe:
		return oodb.B(c <= 0), nil
	case OpGt:
		return oodb.B(c > 0), nil
	case OpGe:
		return oodb.B(c >= 0), nil
	}
	return oodb.Null(), fmt.Errorf("vql: unhandled operator %s", n.Op)
}

// rowKey renders a row for duplicate elimination.
func rowKey(row []oodb.Value) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = v.String()
	}
	return strings.Join(parts, "\x1f")
}

// Execute runs a prepared plan.
func (ev *Evaluator) Execute(p *Plan) (*ResultSet, error) {
	if p.query.Distinct {
		p.seenRows = make(map[string]bool)
	}
	rs := &ResultSet{}
	for _, e := range p.query.Access {
		rs.Columns = append(rs.Columns, e.String())
	}
	b := make(bindings, len(p.domains))
	if err := ev.loop(p, 0, b, rs); err != nil {
		return nil, err
	}
	return rs, nil
}

// loop is the nested-loop join over binding domains with predicates
// applied at the earliest depth where their variables are bound.
func (ev *Evaluator) loop(p *Plan, depth int, b bindings, rs *ResultSet) error {
	if depth == len(p.domains) {
		row := make([]oodb.Value, len(p.query.Access))
		for i, e := range p.query.Access {
			v, err := ev.eval(e, b)
			if err != nil {
				return err
			}
			row[i] = v
		}
		if p.query.Distinct {
			key := rowKey(row)
			if p.seenRows[key] {
				return nil
			}
			p.seenRows[key] = true
		}
		rs.Rows = append(rs.Rows, row)
		return nil
	}
	d := p.domains[depth]
	for _, oid := range d.oids {
		b[d.binding.Var] = oid
		ok := true
		for _, pred := range d.preds {
			v, err := ev.eval(pred.expr, b)
			if err != nil {
				return err
			}
			if !v.Truthy() {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if err := ev.loop(p, depth+1, b, rs); err != nil {
			return err
		}
	}
	delete(b, d.binding.Var)
	return nil
}
