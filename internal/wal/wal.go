// Package wal implements the per-collection write-ahead log behind
// the IRS engine's durability story: a sequenced, CRC-checksummed
// record stream of analyzed index operations, group-commit fsync, and
// torn-tail recovery. A collection's durable state is its last .irsc
// snapshot plus the committed prefix of its log; Save rotates the log
// behind a barrier record so the log only ever covers the tail since
// the last snapshot.
//
// Record framing (little-endian):
//
//	len   u32   body length
//	crc   u32   CRC-32C (Castagnoli) over the body
//	body:
//	  seq       u64   strictly increasing per log
//	  epoch     u64   bumped by every barrier (rotation)
//	  watermark u64   coupling ingest watermark the record belongs to
//	  type      u8    add | update | delete | commit | barrier
//	  payload   ...   type-specific (encoded analyzed doc, ext id)
//
// A flush appends its operation records followed by one commit record
// carrying the drained watermark; Open discards both torn bytes and
// any valid-but-uncommitted suffix, so replay always reconstructs an
// exact flush boundary. The epoch + watermark pair in every record is
// deliberately the shape a replica-streaming feed needs: epoch bumps
// tell a follower its snapshot went stale, watermarks give it
// read-your-writes barriers.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Type tags one record.
type Type uint8

// Record types. Add/Update/Delete carry index operations; Commit
// closes one flush batch; Barrier opens a fresh log epoch after a
// snapshot (rotation) and is its own commit boundary.
const (
	TypeAdd Type = iota + 1
	TypeUpdate
	TypeDelete
	TypeCommit
	TypeBarrier
)

// String names a record type for reports and logs.
func (t Type) String() string {
	switch t {
	case TypeAdd:
		return "add"
	case TypeUpdate:
		return "update"
	case TypeDelete:
		return "delete"
	case TypeCommit:
		return "commit"
	case TypeBarrier:
		return "barrier"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Record is one log entry. Append assigns Seq and Epoch; callers fill
// Type, Watermark and Payload.
type Record struct {
	Seq       uint64
	Epoch     uint64
	Watermark uint64
	Type      Type
	Payload   []byte
}

// SyncPolicy selects when appended records reach the disk.
type SyncPolicy uint8

const (
	// SyncGroup batches fsyncs: an append arms a timer for the group
	// window (the adaptive commit-coalescing window when the collection
	// provides one) and one fsync covers every append inside it.
	SyncGroup SyncPolicy = iota
	// SyncAlways fsyncs inside every Append.
	SyncAlways
	// SyncOff never fsyncs on its own; only explicit Sync/Rotate/Close
	// reach the disk (the OS still writes back eventually).
	SyncOff
)

// String renders the policy the way flags and /stats spell it.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	}
	return "group"
}

// ParseSyncPolicy is String's inverse; "" selects SyncGroup.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "group":
		return SyncGroup, nil
	case "always":
		return SyncAlways, nil
	case "off":
		return SyncOff, nil
	}
	return SyncGroup, fmt.Errorf("unknown wal fsync policy %q (want always, group or off)", s)
}

const (
	frameHeader = 8             // len u32 + crc u32
	bodyFixed   = 8 + 8 + 8 + 1 // seq + epoch + watermark + type
	// maxBody bounds one record body; a longer length prefix is treated
	// as a torn tail rather than an attempted 4GiB allocation.
	maxBody = 1 << 28
	// defaultGroupWindow is the fsync batching window when no provider
	// is wired (standalone logs, tests).
	defaultGroupWindow = 2 * time.Millisecond
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// appendRecord frames one record onto buf.
func appendRecord(buf []byte, r Record) []byte {
	body := make([]byte, bodyFixed+len(r.Payload))
	binary.LittleEndian.PutUint64(body[0:], r.Seq)
	binary.LittleEndian.PutUint64(body[8:], r.Epoch)
	binary.LittleEndian.PutUint64(body[16:], r.Watermark)
	body[24] = byte(r.Type)
	copy(body[25:], r.Payload)
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(body, castagnoli))
	return append(append(buf, hdr[:]...), body...)
}

// decodeRecord parses the record at the head of data, returning it
// and the framed size. Any inconsistency — short frame, implausible
// length, checksum mismatch, unknown type — reads as a torn tail.
func decodeRecord(data []byte) (Record, int, bool) {
	if len(data) < frameHeader {
		return Record{}, 0, false
	}
	n := binary.LittleEndian.Uint32(data[0:])
	if n < bodyFixed || n > maxBody || len(data) < frameHeader+int(n) {
		return Record{}, 0, false
	}
	body := data[frameHeader : frameHeader+int(n)]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(data[4:]) {
		return Record{}, 0, false
	}
	r := Record{
		Seq:       binary.LittleEndian.Uint64(body[0:]),
		Epoch:     binary.LittleEndian.Uint64(body[8:]),
		Watermark: binary.LittleEndian.Uint64(body[16:]),
		Type:      Type(body[24]),
	}
	if r.Type < TypeAdd || r.Type > TypeBarrier {
		return Record{}, 0, false
	}
	if n := int(n) - bodyFixed; n > 0 {
		r.Payload = append([]byte(nil), body[bodyFixed:]...)
	}
	return r, frameHeader + int(n), true
}

// scanResult is what Open learns from the bytes on disk.
type scanResult struct {
	committed    []Record // records up to and including the last commit/barrier
	committedLen int64    // byte length of that prefix
	uncommitted  int      // valid records past it (discarded with the torn tail)
	tornBytes    int64    // bytes past the last valid record
}

// scan walks data, validating frames and sequence continuity, and
// splits it into the committed prefix, a valid-but-uncommitted middle
// and the torn tail.
func scan(data []byte) scanResult {
	var (
		res  scanResult
		off  int64
		recs []Record
		last uint64
		seen bool
	)
	for int(off) < len(data) {
		r, n, ok := decodeRecord(data[off:])
		if !ok {
			break
		}
		if seen && r.Seq != last+1 {
			break
		}
		seen, last = true, r.Seq
		off += int64(n)
		recs = append(recs, r)
		if r.Type == TypeCommit || r.Type == TypeBarrier {
			res.committed = recs[:len(recs):len(recs)]
			res.committedLen = off
		}
	}
	res.uncommitted = len(recs) - len(res.committed)
	res.tornBytes = int64(len(data)) - off
	return res
}

// Recovery reports what Open found and discarded.
type Recovery struct {
	// Records is the committed prefix, in append order; replay these.
	Records []Record
	// TornBytes counts bytes dropped from the tail (partial frame,
	// checksum mismatch, garbage).
	TornBytes int64
	// Uncommitted counts intact records dropped because no commit or
	// barrier followed them — a flush that never finished appending.
	Uncommitted int
	// Watermark and Epoch are the recovered positions (zero on a fresh
	// or empty log).
	Watermark uint64
	Epoch     uint64
}

// Options configures Open.
type Options struct {
	// Name labels the log's metrics series (defaults to the file name).
	Name string
	// Sync is the fsync policy.
	Sync SyncPolicy
	// Window provides the group-fsync batching window; the core layer
	// wires the collection's adaptive coalescing window here. Nil or
	// non-positive values fall back to 2ms.
	Window func() time.Duration
	// OnSyncError observes a failed background group fsync (called
	// without the log lock). Appends after such a failure also fail.
	OnSyncError func(error)
}

// Log is an append-only record log bound to one file.
type Log struct {
	mu          sync.Mutex
	f           *os.File
	path        string
	policy      SyncPolicy
	window      func() time.Duration
	onSyncError func(error)

	seq       uint64
	epoch     uint64
	watermark uint64
	size      int64
	appends   int64
	syncs     int64
	lastSync  time.Time
	dirty     bool
	timerOn   bool
	closed    bool
	// failed is the sticky write/fsync error: once a write tears or a
	// sync fails, the tail is suspect and further appends are refused
	// until Rotate lays down a fresh log.
	failed error

	fsyncHist *obs.Histogram
	bytesCtr  *obs.Counter
}

// Open opens (creating if absent) the log at path, recovering the
// committed record prefix and truncating everything after it.
func Open(path string, opts Options) (*Log, Recovery, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, Recovery{}, fmt.Errorf("wal: read %s: %w", path, err)
	}
	res := scan(data)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, Recovery{}, fmt.Errorf("wal: open %s: %w", path, err)
	}
	if int64(len(data)) > res.committedLen {
		if err := f.Truncate(res.committedLen); err != nil {
			f.Close()
			return nil, Recovery{}, fmt.Errorf("wal: truncate %s: %w", path, err)
		}
	}
	if _, err := f.Seek(res.committedLen, 0); err != nil {
		f.Close()
		return nil, Recovery{}, err
	}
	name := opts.Name
	if name == "" {
		name = filepath.Base(path)
	}
	l := &Log{
		f:           f,
		path:        path,
		policy:      opts.Sync,
		window:      opts.Window,
		onSyncError: opts.OnSyncError,
		size:        res.committedLen,
		fsyncHist:   obs.Default.Histogram("mmf_wal_fsync_seconds", "collection", name),
		bytesCtr:    obs.Default.Counter("mmf_wal_bytes_total", "collection", name),
	}
	rec := Recovery{
		Records:     res.committed,
		TornBytes:   res.tornBytes,
		Uncommitted: res.uncommitted,
	}
	for _, r := range res.committed {
		l.seq, l.epoch = r.Seq, r.Epoch
		if r.Type == TypeCommit || r.Type == TypeBarrier {
			l.watermark = r.Watermark
		}
	}
	rec.Watermark, rec.Epoch = l.watermark, l.epoch
	return l, rec, nil
}

// SetWindow installs the group-fsync window provider (the core layer
// binds the collection's adaptive coalescing window after attach).
func (l *Log) SetWindow(fn func() time.Duration) {
	l.mu.Lock()
	l.window = fn
	l.mu.Unlock()
}

// SetOnSyncError installs the background-fsync failure observer.
func (l *Log) SetOnSyncError(fn func(error)) {
	l.mu.Lock()
	l.onSyncError = fn
	l.mu.Unlock()
}

// Append frames recs onto the log in one write, assigning sequence
// numbers and the current epoch in place, and applies the fsync
// policy. The batch should end with a commit record: recovery
// discards appended records that no commit covers.
func (l *Log) Append(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.failed != nil {
		return fmt.Errorf("wal: log failed: %w", l.failed)
	}
	var buf []byte
	for i := range recs {
		l.seq++
		recs[i].Seq = l.seq
		recs[i].Epoch = l.epoch
		buf = appendRecord(buf, recs[i])
	}
	if err := l.write(buf); err != nil {
		l.failed = err
		return err
	}
	for i := range recs {
		if t := recs[i].Type; (t == TypeCommit || t == TypeBarrier) && recs[i].Watermark > l.watermark {
			l.watermark = recs[i].Watermark
		}
	}
	l.appends++
	l.dirty = true
	l.bytesCtr.Add(int64(len(buf)))
	switch l.policy {
	case SyncAlways:
		if err := l.syncLocked(); err != nil {
			l.failed = err
			return err
		}
	case SyncGroup:
		l.armTimer()
	}
	return Fire("wal.append.post")
}

// write lands buf at the tail. With a fault hook installed the write
// is split in half around a hook event, so kill-point tests capture
// genuinely torn records; without one it is a single write.
func (l *Log) write(buf []byte) error {
	if hookInstalled() && len(buf) > 1 {
		half := len(buf) / 2
		if _, err := l.f.Write(buf[:half]); err != nil {
			return err
		}
		if err := Fire("wal.append.mid"); err != nil {
			return err
		}
		if _, err := l.f.Write(buf[half:]); err != nil {
			return err
		}
	} else if _, err := l.f.Write(buf); err != nil {
		return err
	}
	l.size += int64(len(buf))
	return nil
}

func (l *Log) armTimer() {
	if l.timerOn {
		return
	}
	l.timerOn = true
	d := defaultGroupWindow
	if l.window != nil {
		if w := l.window(); w > 0 {
			d = w
		}
	}
	time.AfterFunc(d, l.groupSync)
}

// groupSync is the deferred fsync closing one group window.
func (l *Log) groupSync() {
	l.mu.Lock()
	l.timerOn = false
	if l.closed || !l.dirty || l.failed != nil {
		l.mu.Unlock()
		return
	}
	err := l.syncLocked()
	var cb func(error)
	if err != nil {
		l.failed = err
		cb = l.onSyncError
	}
	l.mu.Unlock()
	if err != nil && cb != nil {
		cb(err)
	}
}

func (l *Log) syncLocked() error {
	start := time.Now()
	err := l.f.Sync()
	l.fsyncHist.Since(start)
	if err == nil {
		err = Fire("wal.sync.post")
	}
	if err != nil {
		return err
	}
	l.dirty = false
	l.syncs++
	l.lastSync = time.Now()
	return nil
}

// Sync forces any unsynced appends to disk (drain barriers, shutdown).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.failed != nil {
		return fmt.Errorf("wal: log failed: %w", l.failed)
	}
	if !l.dirty {
		return nil
	}
	if err := l.syncLocked(); err != nil {
		l.failed = err
		return err
	}
	return nil
}

// Rotate atomically replaces the log with a fresh one holding a
// single barrier record at the next epoch, carrying watermark. Called
// after the covered state was snapshotted durably; the barrier is the
// signal a future replica stream uses to re-seed from the snapshot.
// A successful rotation also clears a sticky write failure — the
// suspect tail is gone.
func (l *Log) Rotate(watermark uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	tmp, err := os.CreateTemp(filepath.Dir(l.path), ".wal-*")
	if err != nil {
		return err
	}
	rec := Record{Seq: l.seq + 1, Epoch: l.epoch + 1, Watermark: watermark, Type: TypeBarrier}
	buf := appendRecord(nil, rec)
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if _, err := tmp.Write(buf); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := Fire("wal.rotate.tmp"); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp.Name(), l.path); err != nil {
		return fail(err)
	}
	// tmp's handle now refers to the file living at path; it becomes
	// the append handle, positioned at its end.
	old := l.f
	l.f = tmp
	old.Close()
	l.seq, l.epoch, l.watermark = rec.Seq, rec.Epoch, watermark
	l.size = int64(len(buf))
	l.dirty = false
	l.failed = nil
	return Fire("wal.rotate.renamed")
}

// Close syncs outstanding appends (unless the log already failed) and
// closes the file. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if l.dirty && l.failed == nil {
		err = l.syncLocked()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats is a point-in-time snapshot of the log's position and I/O
// counters.
type Stats struct {
	Seq       uint64
	Epoch     uint64
	Watermark uint64
	Bytes     int64 // current file size
	Appends   int64
	Syncs     int64
	LastSync  time.Time // zero until the first fsync
	Policy    string
	Failed    string // sticky failure, "" when healthy
}

// Stats snapshots the log.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Seq:       l.seq,
		Epoch:     l.epoch,
		Watermark: l.watermark,
		Bytes:     l.size,
		Appends:   l.appends,
		Syncs:     l.syncs,
		LastSync:  l.lastSync,
		Policy:    l.policy.String(),
	}
	if l.failed != nil {
		st.Failed = l.failed.Error()
	}
	return st
}

// Watermark returns the last committed watermark.
func (l *Log) Watermark() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.watermark
}

// hook is the process-wide fault-injection point for crash-recovery
// tests: it fires at every durability boundary (mid/post append, post
// fsync, rotate and snapshot steps) and a non-nil return aborts the
// operation. Nil in production; atomic so tests can install and clear
// it race-free around live logs.
var hook atomic.Pointer[func(string) error]

// SetHook installs (or, with nil, clears) the fault-injection hook.
func SetHook(fn func(event string) error) {
	if fn == nil {
		hook.Store(nil)
		return
	}
	hook.Store(&fn)
}

func hookInstalled() bool { return hook.Load() != nil }

// Fire invokes the fault hook with event; a no-op returning nil when
// no hook is installed. The irs persistence layer fires it around
// snapshot writes so kill-point tests cover mid-Save states too.
func Fire(event string) error {
	if fn := hook.Load(); fn != nil {
		return (*fn)(event)
	}
	return nil
}
