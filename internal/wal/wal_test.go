package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openT(t *testing.T, path string, opts Options) (*Log, Recovery) {
	t.Helper()
	l, rec, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return l, rec
}

// batch builds one flush-shaped record group: ops then a commit.
func batch(watermark uint64, payloads ...string) []Record {
	recs := make([]Record, 0, len(payloads)+1)
	for _, p := range payloads {
		recs = append(recs, Record{Type: TypeAdd, Watermark: watermark, Payload: []byte(p)})
	}
	return append(recs, Record{Type: TypeCommit, Watermark: watermark})
}

func TestAppendReopenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.wal")
	l, rec := openT(t, path, Options{Sync: SyncAlways})
	if len(rec.Records) != 0 || rec.Watermark != 0 {
		t.Fatalf("fresh log recovered %+v", rec)
	}
	if err := l.Append(batch(3, "alpha", "beta")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(batch(5, "gamma")); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Seq != 5 || st.Watermark != 5 || st.Syncs != 2 {
		t.Fatalf("stats %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2 := openT(t, path, Options{})
	defer l2.Close()
	if len(rec2.Records) != 5 || rec2.Watermark != 5 || rec2.TornBytes != 0 || rec2.Uncommitted != 0 {
		t.Fatalf("recovered %+v", rec2)
	}
	wantTypes := []Type{TypeAdd, TypeAdd, TypeCommit, TypeAdd, TypeCommit}
	for i, r := range rec2.Records {
		if r.Type != wantTypes[i] || r.Seq != uint64(i+1) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	if got := string(rec2.Records[3].Payload); got != "gamma" {
		t.Fatalf("payload = %q", got)
	}
}

// TestTornTailRecovery is the core property by construction: every
// possible truncation of a valid log recovers the longest committed
// prefix, never a torn or uncommitted record.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.wal")
	l, _ := openT(t, path, Options{Sync: SyncAlways})
	for i := uint64(1); i <= 4; i++ {
		if err := l.Append(batch(i, fmt.Sprintf("doc-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Committed boundaries of the full file, to check recovery lands
	// exactly on one.
	res := scan(full)
	if len(res.committed) != 8 || res.committedLen != int64(len(full)) {
		t.Fatalf("scan of full file: %d records, %d/%d bytes", len(res.committed), res.committedLen, len(full))
	}

	for cut := 0; cut <= len(full); cut++ {
		p := filepath.Join(dir, "cut.wal")
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, rec := openT(t, p, Options{})
		// Recovered records must be a prefix of the originals ending in
		// a commit.
		if n := len(rec.Records); n > 0 {
			if rec.Records[n-1].Type != TypeCommit && rec.Records[n-1].Type != TypeBarrier {
				t.Fatalf("cut %d: recovery ends in %v", cut, rec.Records[n-1].Type)
			}
			if n%2 != 0 {
				t.Fatalf("cut %d: %d records is not a whole batch", cut, n)
			}
		}
		// The file must have been truncated to the committed prefix and
		// stay appendable.
		if err := l2.Append(batch(99, "after")); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		l3, rec3 := openT(t, p, Options{})
		if got := len(rec3.Records) - len(rec.Records); got != 2 {
			t.Fatalf("cut %d: reopen lost the post-recovery batch (%d vs %d records)", cut, len(rec3.Records), len(rec.Records))
		}
		if rec3.Watermark != 99 {
			t.Fatalf("cut %d: watermark %d", cut, rec3.Watermark)
		}
		l3.Close()
	}
}

func TestUncommittedSuffixDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.wal")
	l, _ := openT(t, path, Options{Sync: SyncAlways})
	if err := l.Append(batch(1, "kept")); err != nil {
		t.Fatal(err)
	}
	// An op record with no commit after it: a flush that died between
	// its op and commit appends.
	if err := l.Append([]Record{{Type: TypeAdd, Watermark: 2, Payload: []byte("dropped")}}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, rec := openT(t, path, Options{})
	defer l2.Close()
	if len(rec.Records) != 2 || rec.Uncommitted != 1 || rec.Watermark != 1 {
		t.Fatalf("recovered %+v", rec)
	}
	if st := l2.Stats(); st.Seq != 2 {
		t.Fatalf("seq after recovery = %d, want 2 (uncommitted record truncated)", st.Seq)
	}
}

func TestCorruptMiddleStopsScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.wal")
	l, _ := openT(t, path, Options{Sync: SyncAlways})
	for i := uint64(1); i <= 3; i++ {
		if err := l.Append(batch(i, "x")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	data, _ := os.ReadFile(path)
	// Flip one payload byte in the second batch.
	mid := len(data) / 2
	data[mid] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec := openT(t, path, Options{})
	defer l2.Close()
	if rec.Watermark >= 3 {
		t.Fatalf("corruption at byte %d survived: %+v", mid, rec)
	}
	if n := len(rec.Records); n > 0 {
		last := rec.Records[n-1]
		if last.Type != TypeCommit && last.Type != TypeBarrier {
			t.Fatalf("recovery ends in %v", last.Type)
		}
	}
}

func TestRotateBumpsEpochAndTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.wal")
	l, _ := openT(t, path, Options{Sync: SyncAlways})
	if err := l.Append(batch(7, "a", "b", "c")); err != nil {
		t.Fatal(err)
	}
	grew := l.Stats().Bytes
	if err := l.Rotate(7); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Epoch != 1 || st.Watermark != 7 || st.Bytes >= grew {
		t.Fatalf("after rotate: %+v (was %d bytes)", st, grew)
	}
	// The log stays appendable after rotation and reopen sees barrier +
	// the new batch only.
	if err := l.Append(batch(9, "d")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, rec := openT(t, path, Options{})
	defer l2.Close()
	if len(rec.Records) != 3 || rec.Records[0].Type != TypeBarrier || rec.Epoch != 1 || rec.Watermark != 9 {
		t.Fatalf("recovered %+v", rec)
	}
}

func TestGroupSyncCoversWindow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.wal")
	l, _ := openT(t, path, Options{Sync: SyncGroup, Window: func() time.Duration { return time.Millisecond }})
	defer l.Close()
	for i := uint64(1); i <= 8; i++ {
		if err := l.Append(batch(i, "x")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := l.Stats()
		if st.Syncs > 0 {
			if st.Syncs >= st.Appends {
				t.Fatalf("group sync did not batch: %d syncs for %d appends", st.Syncs, st.Appends)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("group sync never fired")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAppendFailureIsStickyUntilRotate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.wal")
	l, _ := openT(t, path, Options{Sync: SyncAlways})
	defer l.Close()
	if err := l.Append(batch(1, "ok")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	SetHook(func(event string) error {
		if event == "wal.append.mid" {
			return boom
		}
		return nil
	})
	defer SetHook(nil)
	if err := l.Append(batch(2, "torn")); !errors.Is(err, boom) {
		t.Fatalf("append error = %v", err)
	}
	if st := l.Stats(); st.Failed == "" {
		t.Fatal("failure not sticky in stats")
	}
	SetHook(nil)
	if err := l.Append(batch(3, "refused")); err == nil {
		t.Fatal("append after failure succeeded")
	}
	// Rotation lays down a fresh log and clears the failure.
	if err := l.Rotate(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(batch(4, "healed")); err != nil {
		t.Fatalf("append after rotate: %v", err)
	}
	if st := l.Stats(); st.Failed != "" {
		t.Fatalf("failure survived rotate: %q", st.Failed)
	}
}

func TestRecordEncodeDecode(t *testing.T) {
	in := Record{Seq: 42, Epoch: 3, Watermark: 40, Type: TypeUpdate, Payload: []byte("payload bytes")}
	buf := appendRecord(nil, in)
	out, n, ok := decodeRecord(buf)
	if !ok || n != len(buf) {
		t.Fatalf("decode: ok=%v n=%d/%d", ok, n, len(buf))
	}
	if out.Seq != in.Seq || out.Epoch != in.Epoch || out.Watermark != in.Watermark ||
		out.Type != in.Type || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}
