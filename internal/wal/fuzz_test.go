package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALRecord feeds arbitrary bytes to the recovery scan and checks
// the durability invariants hold for any file content: the committed
// prefix re-encodes to exactly the bytes scan accepted, always ends
// on a commit/barrier boundary, keeps sequence continuity, and Open
// truncates to it such that a reopened log round-trips and stays
// appendable. The seed corpus plants valid logs so mutation explores
// the interesting boundary: mostly-valid streams with torn tails.
func FuzzWALRecord(f *testing.F) {
	var valid []byte
	seq := uint64(0)
	add := func(t Type, watermark uint64, payload string) {
		seq++
		valid = appendRecord(valid, Record{Seq: seq, Epoch: 1, Watermark: watermark, Type: t, Payload: []byte(payload)})
	}
	add(TypeBarrier, 0, "")
	add(TypeAdd, 2, "hello world")
	add(TypeCommit, 2, "")
	add(TypeDelete, 3, "oid9")
	add(TypeUpdate, 3, "doc bytes")
	add(TypeCommit, 3, "")
	f.Add(valid)
	f.Add(valid[:len(valid)-7])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		res := scan(data)

		// The committed prefix must re-encode byte-for-byte to the
		// prefix scan claims, and never include a non-terminated batch.
		var enc []byte
		for _, r := range res.committed {
			enc = appendRecord(enc, r)
		}
		if int64(len(enc)) != res.committedLen || !bytes.Equal(enc, data[:res.committedLen]) {
			t.Fatalf("committed prefix does not round-trip: %d records, %d bytes claimed", len(res.committed), res.committedLen)
		}
		if n := len(res.committed); n > 0 {
			if last := res.committed[n-1].Type; last != TypeCommit && last != TypeBarrier {
				t.Fatalf("committed prefix ends in %v", last)
			}
		}
		for i := 1; i < len(res.committed); i++ {
			if res.committed[i].Seq != res.committed[i-1].Seq+1 {
				t.Fatalf("sequence gap at record %d", i)
			}
		}

		// Open on the same bytes must recover that prefix and leave an
		// appendable log behind.
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, rec, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if len(rec.Records) != len(res.committed) {
			t.Fatalf("Open recovered %d records, scan %d", len(rec.Records), len(res.committed))
		}
		wm := rec.Watermark
		if err := l.Append([]Record{
			{Type: TypeAdd, Watermark: wm + 1, Payload: []byte("post-recovery")},
			{Type: TypeCommit, Watermark: wm + 1},
		}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		l2, rec2, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer l2.Close()
		if len(rec2.Records) != len(rec.Records)+2 || rec2.Watermark != wm+1 || rec2.TornBytes != 0 {
			t.Fatalf("reopen lost data: %d -> %d records, watermark %d, torn %d",
				len(rec.Records), len(rec2.Records), rec2.Watermark, rec2.TornBytes)
		}
	})
}
