package eval

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/derive"
	"repro/internal/oodb"
	"repro/internal/workload"
)

// EXP-F4 — Figure 4 / Section 4.5.2: derivation schemes on the
// paper's exact 4-document / 11-paragraph example with the query
// #and(WWW NII), only paragraphs represented in the collection.
//
// Paper claims reproduced:
//
//	(1) "the IRS will assign the highest value to P4, because this
//	    is the only IRS document relevant to both terms";
//	(2) an intuitive max-style combination answers M2 "although M3
//	    is relevant, too";
//	(3) max/avg cannot separate M3 from M4 ("their IRS values,
//	    however, should be different"), the query-aware scheme can.

// F4Result is the outcome of EXP-F4.
type F4Result struct {
	// ParaScores holds the IRS values of the paragraphs (paragraph
	// collection, full query).
	ParaScores map[string]float64
	TopPara    string
	// DocValues: scheme name -> document name -> derived value.
	DocValues map[string]map[string]float64
	// Rankings: scheme name -> document names best-first.
	Rankings map[string][]string
}

// fig4Setup loads the fixture and returns the paragraph collection
// plus name maps.
func fig4Setup() (*core.Collection, map[string]oodb.OID, map[string]oodb.OID, error) {
	corpus := &workload.Corpus{}
	s, err := newSetupWithDTD(workload.Fig4DTD, corpus)
	if err != nil {
		return nil, nil, nil, err
	}
	// Background documents give the example corpus realistic term
	// statistics (see workload.Fig4Filler).
	for _, f := range workload.Fig4Filler(20) {
		if _, err := parseFixture(s, f.SGML); err != nil {
			return nil, nil, nil, fmt.Errorf("fig4 filler %s: %w", f.Name, err)
		}
	}
	docs := workload.Fig4Docs()
	docOID := make(map[string]oodb.OID)
	paraOID := make(map[string]oodb.OID)
	for _, d := range docs {
		tree, err := parseFixture(s, d.SGML)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("fig4 %s: %w", d.Name, err)
		}
		docOID[d.Name] = tree
		paras := s.ParasOf(tree)
		if len(paras) != len(d.Paras) {
			return nil, nil, nil, fmt.Errorf("fig4 %s: %d paras, want %d", d.Name, len(paras), len(d.Paras))
		}
		for i, pname := range d.Paras {
			paraOID[pname] = paras[i]
		}
	}
	coll, err := s.NewCollection("collPara", "ACCESS p FROM p IN PARA;", core.Options{})
	if err != nil {
		return nil, nil, nil, err
	}
	return coll, docOID, paraOID, nil
}

// RunF4 executes EXP-F4.
func RunF4(w io.Writer) (*F4Result, error) {
	coll, docOID, paraOID, err := fig4Setup()
	if err != nil {
		return nil, err
	}
	res := &F4Result{
		ParaScores: make(map[string]float64),
		DocValues:  make(map[string]map[string]float64),
		Rankings:   make(map[string][]string),
	}
	// Paragraph-level result for the full query.
	scores, err := coll.GetIRSResult(workload.Fig4Query)
	if err != nil {
		return nil, err
	}
	best, bestV := "", -1.0
	for pname, oid := range paraOID {
		v := scores[oid]
		if v == 0 {
			v = 0.4 * 0.4 // unscored: default belief under #and of two terms
		}
		res.ParaScores[pname] = v
		if v > bestV {
			best, bestV = pname, v
		}
	}
	res.TopPara = best

	schemes := []derive.Scheme{
		derive.Max{}, derive.Avg{}, derive.LengthWeighted{}, derive.QueryAware{},
	}
	docNames := []string{"M1", "M2", "M3", "M4"}
	for _, scheme := range schemes {
		coll.SetDeriver(scheme)
		vals := make(map[string]float64, len(docNames))
		for _, dn := range docNames {
			v, err := coll.FindIRSValue(workload.Fig4Query, docOID[dn])
			if err != nil {
				return nil, err
			}
			vals[dn] = v
		}
		res.DocValues[scheme.Name()] = vals
		ranked := append([]string(nil), docNames...)
		// Ties break by document name so the reported ranking is stable
		// (the same canonical order every ranked output uses).
		sort.SliceStable(ranked, func(i, j int) bool {
			if vals[ranked[i]] != vals[ranked[j]] {
				return vals[ranked[i]] > vals[ranked[j]]
			}
			return ranked[i] < ranked[j]
		})
		res.Rankings[scheme.Name()] = ranked
	}

	paraTab := &Table{
		Title:  "EXP-F4 (Figure 4): paragraph IRS values for " + workload.Fig4Query,
		Header: []string{"paragraph", "relevant to", "IRS value"},
	}
	relevance := map[string]string{
		"P1": "WWW", "P2": "-", "P3": "-", "P4": "WWW+NII", "P5": "-",
		"P6": "WWW", "P7": "NII", "P8": "-", "P9": "WWW", "P10": "WWW", "P11": "-",
	}
	for _, pname := range []string{"P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8", "P9", "P10", "P11"} {
		paraTab.AddRow(pname, relevance[pname], fnum(res.ParaScores[pname]))
	}
	paraTab.Fprint(w)

	docTab := &Table{
		Title:  "EXP-F4 (Figure 4): derived document values per scheme",
		Header: []string{"scheme", "M1", "M2", "M3", "M4", "ranking"},
	}
	for _, scheme := range schemes {
		vals := res.DocValues[scheme.Name()]
		docTab.AddRow(scheme.Name(),
			fnum(vals["M1"]), fnum(vals["M2"]), fnum(vals["M3"]), fnum(vals["M4"]),
			fmt.Sprint(res.Rankings[scheme.Name()]))
	}
	docTab.Fprint(w)
	return res, nil
}
