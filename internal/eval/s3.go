package eval

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/irs"
	"repro/internal/workload"
)

// EXP-S3 — streaming top-k vs exhaustive query evaluation. The
// paper's loose coupling returns ranked IRS values, but a serving
// layer only ever shows the best few; scoring the whole corpus to
// keep ten results is wasted work. The top-k engine streams each
// shard's candidates through a bounded heap and skips candidates
// whose score upper bound (derived from the index's per-term max-tf
// and per-shard min-length bounds, MaxScore-style) cannot reach the
// current k-th score. This experiment verifies on the synthetic MMF
// corpus that the top-k rankings are bit-identical to the exhaustive
// prefix for every model, and measures the latency gain at k = 10
// and k = 100 along with the fraction of candidates pruned.

// S3Result is the outcome of EXP-S3.
type S3Result struct {
	Shards            int
	Docs              int
	Queries           int
	RankingsIdentical bool
	Exhaustive        time.Duration // inference net, all queries × rounds
	Top10             time.Duration
	Top100            time.Duration
	Speedup10         float64
	Speedup100        float64
	PassageExhaustive time.Duration // passage model (scoring-dominated)
	PassageTop10      time.Duration
	PassageSpeedup10  float64
	Scored            int64
	Pruned            int64
	PruneRate         float64
}

// s3Queries mix planted-topic terms (discriminative, high idf) with
// operator structure over them — the profile the serving layer's
// /search endpoint receives.
var s3Queries = []string{
	"www",
	"www web hypertext",
	"#sum(www nii sgml video codec highway)",
	"#wsum(3 www 1 infrastructure 0.5 #phrase(digital library))",
	"#and(www #not(nii))",
	"#or(nii #and(sgml markup))",
	"#max(www nii video)",
	"#sum(web stream dtd markup codec)",
}

// RunS3 executes EXP-S3. shards <= 0 selects GOMAXPROCS (min 2), as
// in EXP-S1.
func RunS3(w io.Writer, shards int) (*S3Result, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
		if shards < 2 {
			shards = 2
		}
	}
	cfg := workload.DefaultConfig()
	cfg.Docs = 1200
	corpus := workload.Generate(cfg)
	res := &S3Result{Shards: shards, Queries: len(s3Queries), RankingsIdentical: true}

	engine := irs.NewEngine()
	coll, err := engine.CreateCollectionShards("topk", nil, shards)
	if err != nil {
		return nil, err
	}
	for i := range corpus.Docs {
		if err := coll.AddDocument(corpus.Docs[i].Name, corpus.Docs[i].SGML, nil); err != nil {
			return nil, err
		}
	}
	res.Docs = coll.DocCount()

	// Correctness first: for every model and query, the top-k result
	// must be exactly the first k entries of the exhaustive ranking
	// (deterministic tie-break included), bit-equal scores.
	models := []irs.Model{irs.InferenceNet{}, irs.NewVectorSpace(), irs.Boolean{}, irs.PassageModel{}}
	for _, m := range models {
		coll.SetModel(m)
		for _, q := range s3Queries {
			full, err := coll.Search(q)
			if err != nil {
				return nil, err
			}
			for _, k := range []int{10, 100} {
				topk, err := coll.SearchTopK(q, k)
				if err != nil {
					return nil, err
				}
				want := full
				if len(want) > k {
					want = want[:k]
				}
				if len(topk) != len(want) {
					res.RankingsIdentical = false
					continue
				}
				for i := range want {
					if topk[i] != want[i] {
						res.RankingsIdentical = false
						break
					}
				}
			}
		}
	}

	// Latency: exhaustive vs top-k under the default inference net.
	coll.SetModel(irs.InferenceNet{})
	const rounds = 30
	tk0 := coll.TopKStats()
	if res.Exhaustive, err = timeIt(func() error {
		for r := 0; r < rounds; r++ {
			for _, q := range s3Queries {
				if _, err := coll.Search(q); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	topkLoad := func(k int) (time.Duration, error) {
		return timeIt(func() error {
			for r := 0; r < rounds; r++ {
				for _, q := range s3Queries {
					if _, err := coll.SearchTopK(q, k); err != nil {
						return err
					}
				}
			}
			return nil
		})
	}
	if res.Top10, err = topkLoad(10); err != nil {
		return nil, err
	}
	if res.Top100, err = topkLoad(100); err != nil {
		return nil, err
	}
	tk1 := coll.TopKStats()
	res.Scored = tk1.Scored - tk0.Scored
	res.Pruned = tk1.Pruned - tk0.Pruned
	if res.Scored+res.Pruned > 0 {
		res.PruneRate = float64(res.Pruned) / float64(res.Scored+res.Pruned)
	}
	if res.Top10 > 0 {
		res.Speedup10 = float64(res.Exhaustive) / float64(res.Top10)
	}
	if res.Top100 > 0 {
		res.Speedup100 = float64(res.Exhaustive) / float64(res.Top100)
	}

	// The passage model scores with a sliding window per candidate —
	// the scoring-dominated profile where skipping candidates pays the
	// most (fewer rounds: each exhaustive pass slides windows over
	// every candidate document).
	coll.SetModel(irs.PassageModel{})
	const passageRounds = 4
	passageLoad := func(k int) (time.Duration, error) {
		return timeIt(func() error {
			for r := 0; r < passageRounds; r++ {
				for _, q := range s3Queries {
					var err error
					if k > 0 {
						_, err = coll.SearchTopK(q, k)
					} else {
						_, err = coll.Search(q)
					}
					if err != nil {
						return err
					}
				}
			}
			return nil
		})
	}
	if res.PassageExhaustive, err = passageLoad(0); err != nil {
		return nil, err
	}
	if res.PassageTop10, err = passageLoad(10); err != nil {
		return nil, err
	}
	if res.PassageTop10 > 0 {
		res.PassageSpeedup10 = float64(res.PassageExhaustive) / float64(res.PassageTop10)
	}

	tab := &Table{
		Title: fmt.Sprintf("EXP-S3: streaming top-k vs exhaustive evaluation, %d docs, %d shards, %d queries × %d rounds",
			res.Docs, res.Shards, res.Queries, rounds),
		Header: []string{"evaluation", "total time", "speedup"},
	}
	tab.AddRow("inference net, exhaustive (score all, sort, truncate)", fms(float64(res.Exhaustive.Microseconds())/1000), "1.00x")
	tab.AddRow("inference net, top-10 streaming (MaxScore pruning)", fms(float64(res.Top10.Microseconds())/1000), fmt.Sprintf("%.2fx", res.Speedup10))
	tab.AddRow("inference net, top-100 streaming", fms(float64(res.Top100.Microseconds())/1000), fmt.Sprintf("%.2fx", res.Speedup100))
	tab.AddRow(fmt.Sprintf("passage model, exhaustive (%d rounds)", passageRounds), fms(float64(res.PassageExhaustive.Microseconds())/1000), "1.00x")
	tab.AddRow("passage model, top-10 streaming", fms(float64(res.PassageTop10.Microseconds())/1000), fmt.Sprintf("%.2fx", res.PassageSpeedup10))
	tab.Fprint(w)
	fmt.Fprintf(w, "top-k rankings bit-identical to exhaustive prefix (all 4 models, k in {10,100}): %v\n",
		res.RankingsIdentical)
	fmt.Fprintf(w, "candidates scored %d, pruned %d (prune rate %.1f%%) over %d top-k queries\n\n",
		res.Scored, res.Pruned, 100*res.PruneRate, tk1.Queries-tk0.Queries)
	return res, nil
}
