package eval

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	docirs "repro"
	"repro/internal/server"
	"repro/internal/workload"
)

// EXP-S7 — adaptive serving: the cost-aware 2Q query cache and the
// load-adaptive ingest coalescing window, A/B'd against their fixed
// baselines at the HTTP layer (the whole serving stack in the loop,
// like production traffic would see it).
//
// Part 1 (cache): the same zipfian query stream is replayed against
// two servers that differ only in cache policy at an equal, small
// entry budget. The skewed head re-references a few queries
// constantly while the long tail arrives as one-shot scans — exactly
// the mix a recency LRU handles worst (every tail query evicts a hot
// entry it will never earn back). The 2Q policy's probationary queue
// absorbs the tail and its frequency × rebuild-cost eviction keeps
// the head resident, so it must answer the stream with at least 20%
// fewer candidates scored (TopKStats deltas over /stats) than the
// LRU — and, being a cache, with bit-identical rankings.
//
// Part 2 (coalescing): the same bursty async-ingest workload runs
// against a fixed 2ms group-commit window and against the adaptive
// controller (AsyncCoalesce 0). The controller widens toward max
// during bursts (bigger group commits, less per-commit overhead) and
// narrows when idle, so adaptive ingest-to-drain throughput must be
// at least the fixed window's (with slack for timer noise), reads
// probed during ingest must not regress at the tail, and the drained
// index must serve bit-identical rankings in both modes — group
// commits may batch updates, never lose or reorder them.

// S7Result is the outcome of EXP-S7.
type S7Result struct {
	// Cache A/B (equal entry budget, identical zipfian stream).
	CacheBudget       int
	QueryPool         int
	Requests          int
	ScoredLRU         int64
	Scored2Q          int64
	ScoredRatio       float64 // Scored2Q / ScoredLRU; gate <= 0.8
	HitRateLRU        float64
	HitRate2Q         float64
	EvictedCost2Q     float64 // measured rebuild seconds discarded by the 2Q main segment
	CacheRankingsSame bool
	// Coalescing A/B (identical bursty ingest, async policy).
	IngestDocs           int
	FixedElapsed         time.Duration
	AdaptiveElapsed      time.Duration
	ThroughputRatio      float64 // fixed/adaptive elapsed; gate >= 1/s7ThroughputSlack
	ReadP99Fixed         time.Duration
	ReadP99Adaptive      time.Duration
	CoalesceRankingsSame bool
}

const (
	s7CacheBudget = 32   // cache entries per policy — far below the pool
	s7QueryPool   = 1024 // distinct queries the zipfian stream draws from
	s7Requests    = 8000 // stream length per policy
	s7ZipfS       = 1.3  // skew: a hot head plus a heavy one-shot tail
	s7K           = 10

	s7Bursts     = 10 // ingest bursts per coalescing variant
	s7BurstPosts = 3  // async posts back-to-back within a burst
	s7BurstBatch = 40 // documents per post
	s7IdleGap    = 3 * time.Millisecond

	// Gate slacks: the scored gate is deterministic (counter deltas),
	// the throughput gate is wall-clock and runs on shared CI, so it
	// gets headroom; the p99 gate guards against order-of-magnitude
	// regressions, not scheduler noise.
	s7ScoredGate      = 0.8
	s7ThroughputSlack = 1.15
	s7P99Slack        = 3.0
	s7P99Floor        = 5 * time.Millisecond
)

// s7System is one server under test with its HTTP frontend.
type s7System struct {
	sys *docirs.System
	srv *server.Server
	ts  *httptest.Server
}

func s7Open(cfg server.Config) (*s7System, error) {
	sys, err := docirs.Open("")
	if err != nil {
		return nil, err
	}
	srv := server.New(sys, cfg)
	return &s7System{sys: sys, srv: srv, ts: httptest.NewServer(srv.Handler())}, nil
}

func (s *s7System) close() {
	s.ts.Close()
	s.sys.Close()
}

// s7Call issues one JSON request and decodes the response, failing on
// non-2xx statuses.
func s7Call(ts *httptest.Server, method, path string, body any) (map[string]any, error) {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out := map[string]any{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("%s %s: %w", method, path, err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, fmt.Errorf("%s %s: status %d: %v", method, path, resp.StatusCode, out["error"])
	}
	return out, nil
}

// s7Seed loads the workload DTD and corpus into a server and creates
// the paragraph collection. One batch per call keeps the request
// history identical across variants (OID allocation is
// history-dependent, and the ranking gates compare external ids).
func s7Seed(s *s7System, corpus *workload.Corpus, policy string) error {
	if _, err := s7Call(s.ts, "POST", "/dtds", map[string]any{"name": "mmf", "dtd": workload.MMFDTD}); err != nil {
		return err
	}
	docs := make([]string, len(corpus.Docs))
	for i := range corpus.Docs {
		docs[i] = corpus.Docs[i].SGML
	}
	if _, err := s7Call(s.ts, "POST", "/documents", map[string]any{"dtd": "mmf", "documents": docs}); err != nil {
		return err
	}
	req := map[string]any{"name": "collPara", "spec": "ACCESS p FROM p IN PARA;"}
	if policy != "" {
		req["policy"] = policy
	}
	_, err := s7Call(s.ts, "POST", "/collections", req)
	return err
}

func s7SearchPath(q string, limit int) string {
	return fmt.Sprintf("/collections/collPara/search?q=%s&limit=%d", url.QueryEscape(q), limit)
}

// s7Scored reads the collection's cumulative candidates-scored
// counter from /stats — the serving-layer view of evaluation work.
func s7Scored(s *s7System) (int64, error) {
	out, err := s7Call(s.ts, "GET", "/stats", nil)
	if err != nil {
		return 0, err
	}
	colls, _ := out["collections"].(map[string]any)
	coll, _ := colls["collPara"].(map[string]any)
	topk, _ := coll["topk"].(map[string]any)
	scored, ok := topk["candidates_scored"].(float64)
	if !ok {
		return 0, fmt.Errorf("/stats missing collections.collPara.topk.candidates_scored")
	}
	return int64(scored), nil
}

// s7QueryPoolGen builds the distinct-query pool, deliberately
// heterogeneous in rebuild cost: even slots carry every topic term
// (dense posting lists — a miss scores nearly every paragraph), odd
// slots pair two background-vocabulary words (sparse — a miss scores
// a handful). Recency is blind to that 50x spread; the 2Q policy's
// freq × measured-cost eviction is exactly the mechanism that keeps
// the expensive entries resident and takes its misses on the cheap
// ones. The trailing w-term makes every pool entry a distinct cache
// key.
func s7QueryPoolGen(vocab int) []string {
	var terms []string
	for _, t := range workload.DefaultTopics() {
		terms = append(terms, t.Terms...)
	}
	dense := strings.Join(terms, " ")
	pool := make([]string, s7QueryPool)
	for i := range pool {
		if i%2 == 0 {
			pool[i] = fmt.Sprintf("#sum(%s w%03d)", dense, (i*37)%vocab)
		} else {
			pool[i] = fmt.Sprintf("#sum(w%03d w%03d)", (i*31+200)%vocab, (i*53+400)%vocab)
		}
	}
	return pool
}

// s7CachePhase replays one pre-drawn zipfian request stream against a
// fresh server with the given cache policy and returns the
// candidates-scored delta plus the comparison responses (one per pool
// query, issued in pool order after the stream).
func s7CachePhase(corpus *workload.Corpus, policy string, pool []string, stream []int) (scored int64, hitRate float64, evictedCost float64, compare []any, err error) {
	s, err := s7Open(server.Config{CacheSize: s7CacheBudget, CachePolicy: policy})
	if err != nil {
		return 0, 0, 0, nil, err
	}
	defer s.close()
	if err := s7Seed(s, corpus, ""); err != nil {
		return 0, 0, 0, nil, err
	}
	before, err := s7Scored(s)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	for _, idx := range stream {
		if _, err := s7Call(s.ts, "GET", s7SearchPath(pool[idx], s7K), nil); err != nil {
			return 0, 0, 0, nil, err
		}
	}
	after, err := s7Scored(s)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	cm := s.srv.CacheMetrics()
	hits := cm.HitsMain + cm.HitsProbation
	if total := hits + cm.MissesCold + cm.MissesExpired; total > 0 {
		hitRate = float64(hits) / float64(total)
	}
	// Comparison pass in pool order: identical request histories mean
	// identical OID allocation, so rankings must match bit for bit.
	for _, q := range pool {
		out, err := s7Call(s.ts, "GET", s7SearchPath(q, s7K), nil)
		if err != nil {
			return 0, 0, 0, nil, err
		}
		compare = append(compare, out["results"])
	}
	return after - before, hitRate, cm.EvictedCost, compare, nil
}

// s7IngestPhase runs the bursty async-ingest workload under one
// coalescing configuration: wall clock covers first post to drained
// watermark, a concurrent prober samples read latency, and the
// returned comparison responses capture the drained index's rankings.
func s7IngestPhase(cfg server.Config, corpus *workload.Corpus, probeQ string, compareQs []string) (elapsed time.Duration, p99 time.Duration, compare []any, err error) {
	s, err := s7Open(cfg)
	if err != nil {
		return 0, 0, nil, err
	}
	defer s.close()
	// Seed only the DTD and the (empty) async collection; the corpus
	// itself is the timed workload.
	if _, err := s7Call(s.ts, "POST", "/dtds", map[string]any{"name": "mmf", "dtd": workload.MMFDTD}); err != nil {
		return 0, 0, nil, err
	}
	if _, err := s7Call(s.ts, "POST", "/collections", map[string]any{
		"name": "collPara", "spec": "ACCESS p FROM p IN PARA;", "policy": "async",
	}); err != nil {
		return 0, 0, nil, err
	}

	// Read prober: top-k searches only (the streaming path does not
	// persist result buffers, so probing allocates no OIDs and the
	// ingest allocation history stays identical across variants).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var lat []time.Duration
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			t0 := time.Now()
			if _, err := s7Call(s.ts, "GET", s7SearchPath(probeQ, s7K), nil); err == nil {
				mu.Lock()
				lat = append(lat, time.Since(t0))
				mu.Unlock()
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	next := 0
	start := time.Now()
	for b := 0; b < s7Bursts; b++ {
		for p := 0; p < s7BurstPosts; p++ {
			batch := make([]string, 0, s7BurstBatch)
			for i := 0; i < s7BurstBatch && next < len(corpus.Docs); i++ {
				batch = append(batch, corpus.Docs[next].SGML)
				next++
			}
			if len(batch) == 0 {
				break
			}
			if _, err := s7Call(s.ts, "POST", "/documents", map[string]any{
				"dtd": "mmf", "documents": batch, "mode": "async",
			}); err != nil {
				close(stop)
				wg.Wait()
				return 0, 0, nil, err
			}
		}
		time.Sleep(s7IdleGap)
	}
	if _, err := s7Call(s.ts, "POST", "/collections/collPara/drain", nil); err != nil {
		close(stop)
		wg.Wait()
		return 0, 0, nil, err
	}
	elapsed = time.Since(start)
	close(stop)
	wg.Wait()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if n := len(lat); n > 0 {
		p99 = lat[n*99/100]
	}
	// Drained-state rankings, exhaustive and top-k: group commits may
	// batch propagation, never change what the index serves.
	for _, q := range compareQs {
		for _, limit := range []int{0, s7K} {
			out, err := s7Call(s.ts, "GET", s7SearchPath(q, limit), nil)
			if err != nil {
				return 0, 0, nil, err
			}
			compare = append(compare, out["results"])
		}
	}
	return elapsed, p99, compare, nil
}

// s7Same compares two decoded result lists exactly.
func s7Same(a, b []any) bool {
	raw := func(v []any) string {
		buf, _ := json.Marshal(v)
		return string(buf)
	}
	return raw(a) == raw(b)
}

// RunS7 executes EXP-S7.
func RunS7(w io.Writer) (*S7Result, error) {
	res := &S7Result{
		CacheBudget: s7CacheBudget,
		QueryPool:   s7QueryPool,
		Requests:    s7Requests,
	}

	// --- Part 1: cache policy A/B under zipfian skew ---------------
	cfg := workload.DefaultConfig()
	cfg.Docs = 60
	corpus := workload.Generate(cfg)
	pool := s7QueryPoolGen(cfg.Vocabulary)
	// One pre-drawn stream, replayed verbatim against both policies.
	rng := rand.New(rand.NewSource(97))
	zipf := rand.NewZipf(rng, s7ZipfS, 1.0, uint64(len(pool)-1))
	stream := make([]int, s7Requests)
	for i := range stream {
		stream[i] = int(zipf.Uint64())
	}

	scoredLRU, hitLRU, _, cmpLRU, err := s7CachePhase(corpus, server.CachePolicyLRU, pool, stream)
	if err != nil {
		return nil, err
	}
	scored2Q, hit2Q, evicted2Q, cmp2Q, err := s7CachePhase(corpus, server.CachePolicy2Q, pool, stream)
	if err != nil {
		return nil, err
	}
	res.ScoredLRU, res.Scored2Q = scoredLRU, scored2Q
	res.HitRateLRU, res.HitRate2Q = hitLRU, hit2Q
	res.EvictedCost2Q = evicted2Q
	if scoredLRU > 0 {
		res.ScoredRatio = float64(scored2Q) / float64(scoredLRU)
	}
	res.CacheRankingsSame = s7Same(cmpLRU, cmp2Q)

	// --- Part 2: fixed vs adaptive coalescing under bursty ingest --
	icfg := workload.DefaultConfig()
	icfg.Docs = s7Bursts * s7BurstPosts * s7BurstBatch
	icfg.WordsRange = [2]int{10, 20}
	icfg.Seed = 43
	ingestCorpus := workload.Generate(icfg)
	res.IngestDocs = len(ingestCorpus.Docs)
	probeQ := "#sum(www nii highway)"
	compareQs := []string{"www", "nii", "sgml markup", "#and(www video)"}

	fixedCfg := server.Config{AsyncCoalesce: 2 * time.Millisecond}
	adaptCfg := server.Config{} // AsyncCoalesce 0: adaptive inside the defaults
	var cmpFixed, cmpAdapt []any
	if res.FixedElapsed, res.ReadP99Fixed, cmpFixed, err = s7IngestPhase(fixedCfg, ingestCorpus, probeQ, compareQs); err != nil {
		return nil, err
	}
	if res.AdaptiveElapsed, res.ReadP99Adaptive, cmpAdapt, err = s7IngestPhase(adaptCfg, ingestCorpus, probeQ, compareQs); err != nil {
		return nil, err
	}
	if res.AdaptiveElapsed > 0 {
		res.ThroughputRatio = float64(res.FixedElapsed) / float64(res.AdaptiveElapsed)
	}
	res.CoalesceRankingsSame = s7Same(cmpFixed, cmpAdapt)

	tab := &Table{
		Title: fmt.Sprintf("EXP-S7: adaptive serving — cache A/B (%d-entry budget, %d-query pool, %d zipf(%.1f) requests) + coalesce A/B (%d docs, %d bursts)",
			s7CacheBudget, s7QueryPool, s7Requests, s7ZipfS, res.IngestDocs, s7Bursts),
		Header: []string{"variant", "scored", "hit rate", "ingest", "read p99"},
	}
	tab.AddRow("lru / fixed 2ms",
		fmt.Sprintf("%d", res.ScoredLRU), fmt.Sprintf("%.1f%%", 100*res.HitRateLRU),
		fms(float64(res.FixedElapsed.Microseconds())/1000), fms(float64(res.ReadP99Fixed.Microseconds())/1000))
	tab.AddRow("2q / adaptive",
		fmt.Sprintf("%d", res.Scored2Q), fmt.Sprintf("%.1f%%", 100*res.HitRate2Q),
		fms(float64(res.AdaptiveElapsed.Microseconds())/1000), fms(float64(res.ReadP99Adaptive.Microseconds())/1000))
	tab.Fprint(w)
	fmt.Fprintf(w, "cache: 2q scored %.1f%% of lru's candidates (gate <= %.0f%%), evicted-cost %.4fs, rankings identical: %v\n",
		100*res.ScoredRatio, 100*s7ScoredGate, res.EvictedCost2Q, res.CacheRankingsSame)
	fmt.Fprintf(w, "coalesce: adaptive/fixed throughput %.2fx (gate >= %.2fx), rankings identical: %v\n\n",
		res.ThroughputRatio, 1/s7ThroughputSlack, res.CoalesceRankingsSame)

	if !res.CacheRankingsSame {
		return res, fmt.Errorf("EXP-S7 cache gate tripped: rankings differ between cache policies")
	}
	if res.ScoredRatio > s7ScoredGate {
		return res, fmt.Errorf("EXP-S7 cache gate tripped: 2q scored %.1f%% of lru's candidates (gate: <= %.0f%%)",
			100*res.ScoredRatio, 100*s7ScoredGate)
	}
	if !res.CoalesceRankingsSame {
		return res, fmt.Errorf("EXP-S7 coalesce gate tripped: rankings differ between fixed and adaptive windows")
	}
	if res.AdaptiveElapsed > time.Duration(float64(res.FixedElapsed)*s7ThroughputSlack) {
		return res, fmt.Errorf("EXP-S7 coalesce gate tripped: adaptive ingest %v vs fixed %v (gate: adaptive <= fixed x %.2f)",
			res.AdaptiveElapsed, res.FixedElapsed, s7ThroughputSlack)
	}
	if limit := time.Duration(float64(res.ReadP99Fixed)*s7P99Slack) + s7P99Floor; res.ReadP99Adaptive > limit {
		return res, fmt.Errorf("EXP-S7 coalesce gate tripped: read p99 %v under adaptive vs %v fixed (limit %v)",
			res.ReadP99Adaptive, res.ReadP99Fixed, limit)
	}
	return res, nil
}
