// Package eval contains the experiment harness: one runner per
// figure/table of the reproduction (EXP-F1..F4, EXP-T1..T7 in
// DESIGN.md). Every runner builds its own system, executes the
// workload, prints a text table to the supplied writer and returns a
// result struct whose fields carry the numbers the smoke tests (and
// EXPERIMENTS.md) assert on.
package eval

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/docmodel"
	"repro/internal/irs"
	"repro/internal/oodb"
	"repro/internal/sgml"
	"repro/internal/workload"
)

// Setup is a fully-loaded system over a synthetic corpus.
type Setup struct {
	DB       *oodb.DB
	Store    *docmodel.Store
	Engine   *irs.Engine
	Coupling *core.Coupling
	DTD      *sgml.DTD
	Corpus   *workload.Corpus
	// Docs maps corpus document names (D001...) to root OIDs.
	Docs map[string]oodb.OID
	// DocOIDs lists root OIDs in corpus order.
	DocOIDs []oodb.OID
}

// NewSetup generates a corpus and loads it into a fresh memory
// system.
func NewSetup(cfg workload.Config) (*Setup, error) {
	return newSetupWithDTD(workload.MMFDTD, workload.Generate(cfg))
}

func newSetupWithDTD(dtdSrc string, corpus *workload.Corpus) (*Setup, error) {
	db, err := oodb.Open("", oodb.Options{})
	if err != nil {
		return nil, err
	}
	store, err := docmodel.Open(db)
	if err != nil {
		return nil, err
	}
	engine := irs.NewEngine()
	coupling, err := core.New(store, engine)
	if err != nil {
		return nil, err
	}
	dtd, err := sgml.ParseDTD(dtdSrc)
	if err != nil {
		return nil, err
	}
	if err := store.LoadDTD(dtd); err != nil {
		return nil, err
	}
	s := &Setup{
		DB: db, Store: store, Engine: engine, Coupling: coupling,
		DTD: dtd, Corpus: corpus, Docs: make(map[string]oodb.OID),
	}
	for i := range corpus.Docs {
		tree, err := sgml.ParseDocument(dtd, corpus.Docs[i].SGML, sgml.ParseOptions{Strict: true})
		if err != nil {
			return nil, fmt.Errorf("eval: corpus doc %s: %w", corpus.Docs[i].Name, err)
		}
		oid, err := store.InsertDocument(dtd, tree)
		if err != nil {
			return nil, err
		}
		s.Docs[corpus.Docs[i].Name] = oid
		s.DocOIDs = append(s.DocOIDs, oid)
	}
	return s, nil
}

// NewCollection creates and indexes a collection.
func (s *Setup) NewCollection(name, specQuery string, opts core.Options) (*core.Collection, error) {
	col, err := s.Coupling.CreateCollection(name, specQuery, opts)
	if err != nil {
		return nil, err
	}
	if _, err := col.IndexObjects(); err != nil {
		return nil, err
	}
	return col, nil
}

// DocName resolves a root OID back to its corpus name.
func (s *Setup) DocName(oid oodb.OID) string {
	for name, o := range s.Docs {
		if o == oid {
			return name
		}
	}
	return oid.String()
}

// RelevantDocOIDs returns the OIDs of documents relevant to topic.
func (s *Setup) RelevantDocOIDs(topic string) map[oodb.OID]bool {
	out := make(map[oodb.OID]bool)
	for _, name := range s.Corpus.RelevantDocs(topic) {
		out[s.Docs[name]] = true
	}
	return out
}

// RelevantParaOIDs returns the OIDs of paragraphs relevant to topic.
func (s *Setup) RelevantParaOIDs(topic string) map[oodb.OID]bool {
	out := make(map[oodb.OID]bool)
	for i := range s.Corpus.Docs {
		doc := &s.Corpus.Docs[i]
		idxs := doc.RelevantParas[topic]
		if len(idxs) == 0 {
			continue
		}
		paras := s.ParasOf(s.Docs[doc.Name])
		for _, idx := range idxs {
			if idx < len(paras) {
				out[paras[idx]] = true
			}
		}
	}
	return out
}

// ParasOf returns the paragraph OIDs of a document in document
// order.
func (s *Setup) ParasOf(doc oodb.OID) []oodb.OID {
	var out []oodb.OID
	var walk func(oid oodb.OID)
	walk = func(oid oodb.OID) {
		if s.Store.TypeOf(oid) == "PARA" {
			out = append(out, oid)
			return
		}
		for _, k := range s.Store.Children(oid) {
			walk(k)
		}
	}
	walk(doc)
	return out
}

// rankOIDs orders score maps descending (ties by OID for
// determinism).
func rankOIDs(scores map[oodb.OID]float64) []oodb.OID {
	out := make([]oodb.OID, 0, len(scores))
	for oid := range scores {
		out = append(out, oid)
	}
	sort.Slice(out, func(i, j int) bool {
		if scores[out[i]] != scores[out[j]] {
			return scores[out[i]] > scores[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// timeIt measures f.
func timeIt(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}

// parseOID wraps oodb.ParseOID for the experiment files.
func parseOID(s string) (oodb.OID, error) { return oodb.ParseOID(s) }

// irsParseResultFile wraps irs.ParseResultFile for the experiment
// files.
func irsParseResultFile(path string) ([]irs.Result, error) {
	return irs.ParseResultFile(path)
}

// parseFixture inserts one SGML document into the setup and returns
// its root OID.
func parseFixture(s *Setup, sgmlText string) (oodb.OID, error) {
	tree, err := sgml.ParseDocument(s.DTD, sgmlText, sgml.ParseOptions{Strict: true})
	if err != nil {
		return 0, err
	}
	return s.Store.InsertDocument(s.DTD, tree)
}
