package eval

import (
	"fmt"
	"io"

	"repro/internal/derive"
	"repro/internal/workload"
)

// EXP-A1 — ablation of the query-aware scheme's dispersion penalty
// (the one free parameter our concretization of Section 4.5.2
// introduces; see DESIGN.md). The Figure 4 fixture is evaluated
// under a sweep of penalty values; the reproduction's headline
// ordering M2 > M3 > M4 holds on an interval whose bounds the table
// makes visible:
//
//	upper bound  penalty < cohesive(M2)/dispersed(M3): above it the
//	             assembled evidence of M3 overtakes the genuinely
//	             co-occurring P4 of M2;
//	lower bound  penalty > default/dispersed(M3): below it M3's
//	             dispersed evidence sinks into the default-belief
//	             floor and ties M4 again (the Max deficiency
//	             returns).

// A1Row is one penalty setting's outcome.
type A1Row struct {
	Penalty           float64
	M1, M2, M3, M4    float64
	StrictOrder       bool // M2 > M3 > M4
	M3SeparatedFromM4 bool
}

// A1Result is the outcome of EXP-A1.
type A1Result struct {
	Rows []A1Row
}

// RunA1 executes EXP-A1.
func RunA1(w io.Writer) (*A1Result, error) {
	coll, docOID, _, err := fig4Setup()
	if err != nil {
		return nil, err
	}
	res := &A1Result{}
	for _, penalty := range []float64{0.5, 0.7, 0.8, 0.85, 0.9, 0.95, 0.99} {
		coll.SetDeriver(derive.QueryAware{DispersionPenalty: penalty})
		row := A1Row{Penalty: penalty}
		vals := map[string]*float64{"M1": &row.M1, "M2": &row.M2, "M3": &row.M3, "M4": &row.M4}
		for name, dst := range vals {
			v, err := coll.FindIRSValue(workload.Fig4Query, docOID[name])
			if err != nil {
				return nil, err
			}
			*dst = v
		}
		row.StrictOrder = row.M2 > row.M3 && row.M3 > row.M4
		row.M3SeparatedFromM4 = row.M3 > row.M4+1e-9
		res.Rows = append(res.Rows, row)
	}

	tab := &Table{
		Title:  "EXP-A1 (ablation): query-aware dispersion penalty on the Figure 4 fixture",
		Header: []string{"penalty", "M1", "M2", "M3", "M4", "M2>M3>M4", "M3 vs M4 separated"},
	}
	for _, r := range res.Rows {
		tab.AddRow(fmt.Sprintf("%.2f", r.Penalty),
			fnum(r.M1), fnum(r.M2), fnum(r.M3), fnum(r.M4),
			yn(r.StrictOrder), yn(r.M3SeparatedFromM4))
	}
	tab.Fprint(w)
	return res, nil
}
