package eval

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/irs"
	"repro/internal/workload"
)

// EXP-S6 — zero-copy mmap serving of the .irsc v5 layout vs the heap
// load path. A heap open materializes every posting block (full varint
// decode to validate streams and rebuild statistics), so cold-start
// cost grows with corpus size; the v5 page-aligned layout stores the
// derived statistics in its section tables, and the mapped open
// (irs.OpenMapped / Options{Mapped: true}) parses only those tables
// while posting blocks stay in the read-only file mapping, decoded on
// demand straight from mapped bytes.
//
// The experiment builds one persistent corpus and gates four
// properties in-run: the mapped cold open is at least 10x faster than
// the heap open of the very same file, steady-state top-k search over
// the mapping stays within 15% of the heap path, rankings are
// bit-identical between the two residencies for all four retrieval
// models — including after identical mutations are overlaid on both
// and after a save/reopen folds the mapped collection's overlay back
// into a fresh file — and the mapped collection actually serves
// posting bytes from the mapping (MappedBytes > 0).

// S6Result is the outcome of EXP-S6.
type S6Result struct {
	Shards    int
	Docs      int
	FileBytes int64 // size of the .irsc v5 file under test
	// Cold open of the same file, min of s6OpenRounds attempts each.
	HeapOpen    time.Duration
	MappedOpen  time.Duration
	OpenSpeedup float64
	// Steady-state SearchTopK(k=10) over all queries, min of
	// s6SearchRounds interleaved rounds each.
	HeapSearch     time.Duration
	MappedSearch   time.Duration
	SearchOverhead float64 // MappedSearch/HeapSearch - 1
	// Residency split of the mapped collection (satellite accounting).
	MappedBytes int64
	HeapBytes   int64
	// Bit-identical rankings, all models x queries x {Search, TopK},
	// checked before mutations, after mutations, after Compact and
	// after a save/reopen of the mapped engine.
	RankingsIdentical bool
}

// s6Queries mix term, weighted, phrase and boolean-structured shapes
// so every model's evaluation path crosses the mapped decode route.
var s6Queries = []string{
	"www nii codec",
	"#sum(www nii codec video highway)",
	"#wsum(3 www 2 nii 1 codec)",
	"www web hypertext",
	"#wsum(3 www 1 infrastructure 0.5 #phrase(digital library))",
	"#or(nii #and(sgml markup))",
	"#and(www #not(video))",
}

// s6Models are the four retrieval models the equality gate covers.
var s6Models = []string{"inference-net", "vector", "boolean", "passage"}

const (
	s6K            = 10
	s6HotDocs      = 256
	s6OpenRounds   = 5
	s6SearchRounds = 3
	s6SearchIters  = 20
)

// s6SameResults compares two rankings exactly — struct equality, so
// scores must match bit for bit, not just ordering.
func s6SameResults(a, b []irs.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// s6CheckEqual runs every model over every query on both collections
// (exhaustive and top-k) and fails on the first divergence.
func s6CheckEqual(hc, mc *irs.Collection, stage string) error {
	for _, mn := range s6Models {
		hm, err := irs.ModelByName(mn)
		if err != nil {
			return err
		}
		mm, err := irs.ModelByName(mn)
		if err != nil {
			return err
		}
		hc.SetModel(hm)
		mc.SetModel(mm)
		for _, q := range s6Queries {
			hf, err := hc.Search(q)
			if err != nil {
				return err
			}
			mf, err := mc.Search(q)
			if err != nil {
				return err
			}
			if !s6SameResults(hf, mf) {
				return fmt.Errorf("%s: model %s query %q: exhaustive rankings diverge (heap %d vs mapped %d results)",
					stage, mn, q, len(hf), len(mf))
			}
			ht, err := hc.SearchTopK(q, s6K)
			if err != nil {
				return err
			}
			mt, err := mc.SearchTopK(q, s6K)
			if err != nil {
				return err
			}
			if !s6SameResults(ht, mt) {
				return fmt.Errorf("%s: model %s query %q: top-%d rankings diverge", stage, mn, q, s6K)
			}
		}
	}
	return nil
}

// s6Mutate applies one deterministic add/update/delete workload to a
// collection; applied to both residencies, the mapped overlay must
// keep matching the heap state exactly.
func s6Mutate(c *irs.Collection, corpus *workload.Corpus) error {
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("mut%04d", i)
		text := strings.Repeat("www nii overlay ", 4+i%7) + fmt.Sprintf("mutterm%02d", i%13)
		if err := c.AddDocument(name, text, nil); err != nil {
			return err
		}
	}
	for i := 10; i < len(corpus.Docs); i += 101 {
		d := &corpus.Docs[i]
		if err := c.UpdateDocument(d.Name, d.SGML+" www updated overlay", nil); err != nil {
			return err
		}
	}
	for i := 30; i < len(corpus.Docs); i += 97 {
		if err := c.DeleteDocument(corpus.Docs[i].Name); err != nil {
			return err
		}
	}
	return nil
}

// RunS6 executes EXP-S6. shards <= 0 selects GOMAXPROCS, floored at 4
// like the other serving-shaped experiments.
func RunS6(w io.Writer, shards int) (*S6Result, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
		if shards < 4 {
			shards = 4
		}
	}
	res := &S6Result{Shards: shards}

	dir, err := os.MkdirTemp("", "exp-s6-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Build the corpus once, persisted as a v5 file. Deeper than
	// EXP-S5's: the cold-open gap being measured is exactly the
	// O(postings) decode the heap path performs per open, so postings
	// must dominate the file. The hot block (pinned to shard 0 as in
	// S4/S5) adds dense high-tf lists without growing the vocabulary.
	cfg := workload.DefaultConfig()
	cfg.Docs = 4000
	// Longer paragraphs raise postings (and positions) per document
	// while the section tables the mapped open parses stay the same
	// size — the gap under test is decode work, so keep decode work
	// dominant over table parse with headroom beyond the 10x gate.
	cfg.WordsRange = [2]int{40, 80}
	corpus := workload.Generate(cfg)
	{
		build, err := irs.NewEngineAt(dir)
		if err != nil {
			return nil, err
		}
		coll, err := build.CreateCollectionShards("s6coll", nil, shards)
		if err != nil {
			return nil, err
		}
		for i := range corpus.Docs {
			if err := coll.AddDocument(corpus.Docs[i].Name, corpus.Docs[i].SGML, nil); err != nil {
				return nil, err
			}
		}
		var pad strings.Builder
		for i := 0; i < 250; i++ {
			fmt.Fprintf(&pad, "pad%02d ", i%50)
		}
		for i, added := 0, 0; added < s6HotDocs; i++ {
			name := fmt.Sprintf("hot%05d", i)
			if irs.ShardForExtID(name, shards) != 0 {
				continue
			}
			hotText := strings.Repeat("www nii codec video highway ", 16+added%17) + pad.String()
			if err := coll.AddDocument(name, hotText, nil); err != nil {
				return nil, err
			}
			added++
		}
		// Compact so the file is sealed blocks end to end — the form a
		// long-lived collection converges to and the one the mapped
		// path serves zero-copy.
		coll.Index().Compact()
		res.Docs = coll.DocCount()
		if err := build.Save(); err != nil {
			return nil, err
		}
	}
	path := filepath.Join(dir, "s6coll.irsc")
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	res.FileBytes = st.Size()

	// Cold-open A/B over the same file: min of s6OpenRounds attempts
	// per residency (the OS page cache warms on the first round for
	// both, so the minima compare parse work, not disk).
	minOpen := func(mapped bool) (time.Duration, error) {
		best := time.Duration(-1)
		for r := 0; r < s6OpenRounds; r++ {
			start := time.Now()
			e, err := irs.NewEngineAt(dir, irs.Options{Mapped: mapped})
			el := time.Since(start)
			if err != nil {
				return 0, err
			}
			if err := e.Close(); err != nil {
				return 0, err
			}
			if best < 0 || el < best {
				best = el
			}
		}
		return best, nil
	}
	if res.HeapOpen, err = minOpen(false); err != nil {
		return nil, err
	}
	if res.MappedOpen, err = minOpen(true); err != nil {
		return nil, err
	}
	if res.MappedOpen > 0 {
		res.OpenSpeedup = float64(res.HeapOpen) / float64(res.MappedOpen)
	}

	// One engine per residency for everything below.
	heapEng, err := irs.NewEngineAt(dir)
	if err != nil {
		return nil, err
	}
	mapEng, err := irs.NewEngineAt(dir, irs.Options{Mapped: true})
	if err != nil {
		return nil, err
	}
	defer mapEng.Close()
	hc, err := heapEng.Collection("s6coll")
	if err != nil {
		return nil, err
	}
	mc, err := mapEng.Collection("s6coll")
	if err != nil {
		return nil, err
	}

	res.MappedBytes = mc.Index().MappedBytes()
	res.HeapBytes = mc.Index().HeapBytes()

	// Equality pass 1: the freshly loaded file, all models (this also
	// touches every queried page before the timing below).
	res.RankingsIdentical = true
	var gateErr error
	if err := s6CheckEqual(hc, mc, "fresh load"); err != nil {
		res.RankingsIdentical = false
		gateErr = err
	}

	// Steady-state A/B at k = 10 under the default inference net:
	// measured on the FRESH load — posting blocks still resident in the
	// mapping, so this times the zero-copy decode path against heap
	// blocks (after Compact both residencies would be heap and the A/B
	// would measure nothing). Interleaved rounds with alternating
	// order, min of each side.
	for _, c := range []*irs.Collection{hc, mc} {
		m, err := irs.ModelByName("inference-net")
		if err != nil {
			return nil, err
		}
		c.SetModel(m)
	}
	searchLoad := func(c *irs.Collection) (time.Duration, error) {
		return timeIt(func() error {
			for i := 0; i < s6SearchIters; i++ {
				for _, q := range s6Queries {
					if _, err := c.SearchTopK(q, s6K); err != nil {
						return err
					}
				}
			}
			return nil
		})
	}
	res.HeapSearch, res.MappedSearch = time.Duration(-1), time.Duration(-1)
	for r := 0; r < s6SearchRounds; r++ {
		order := []*irs.Collection{hc, mc}
		if r%2 == 1 {
			order[0], order[1] = mc, hc
		}
		for _, c := range order {
			el, err := searchLoad(c)
			if err != nil {
				return nil, err
			}
			best := &res.HeapSearch
			if c == mc {
				best = &res.MappedSearch
			}
			if *best < 0 || el < *best {
				*best = el
			}
		}
	}
	if res.HeapSearch > 0 {
		res.SearchOverhead = float64(res.MappedSearch)/float64(res.HeapSearch) - 1
	}

	// Equality passes 2 and 3: identical mutations overlaid on both
	// residencies (the mapped collection layers tails and tombstones
	// over mapped blocks), then Compact folding the mapping out of the
	// live index.
	if gateErr == nil {
		if err := s6Mutate(hc, corpus); err != nil {
			return nil, err
		}
		if err := s6Mutate(mc, corpus); err != nil {
			return nil, err
		}
		if err := s6CheckEqual(hc, mc, "mutation overlay"); err != nil {
			res.RankingsIdentical = false
			gateErr = err
		}
	}
	if gateErr == nil {
		hc.Index().Compact()
		mc.Index().Compact()
		if err := s6CheckEqual(hc, mc, "post-compact"); err != nil {
			res.RankingsIdentical = false
			gateErr = err
		}
	}

	// Save/reopen fold: persisting the mapped collection (overlay plus
	// mapped base written into one fresh v5 file) and reopening it
	// mapped must reproduce the heap engine's live state exactly.
	if gateErr == nil {
		if err := mapEng.Save(); err != nil {
			return nil, err
		}
		reEng, err := irs.NewEngineAt(dir, irs.Options{Mapped: true})
		if err != nil {
			return nil, err
		}
		rc, err := reEng.Collection("s6coll")
		if err != nil {
			reEng.Close()
			return nil, err
		}
		if err := s6CheckEqual(hc, rc, "save/reopen fold"); err != nil {
			res.RankingsIdentical = false
			gateErr = err
		}
		if err := reEng.Close(); err != nil {
			return nil, err
		}
	}

	tab := &Table{
		Title: fmt.Sprintf("EXP-S6: mmap vs heap serving, %d docs, %d shards, %d-byte v5 file, k=%d",
			res.Docs, res.Shards, res.FileBytes, s6K),
		Header: []string{"residency", "cold open", fmt.Sprintf("search x%d", s6SearchIters*len(s6Queries)), "open speedup"},
	}
	tab.AddRow("heap (decode all blocks)",
		fms(float64(res.HeapOpen.Microseconds())/1000), fms(float64(res.HeapSearch.Microseconds())/1000), "1.00x")
	tab.AddRow("mapped (tables only, zero-copy blocks)",
		fms(float64(res.MappedOpen.Microseconds())/1000), fms(float64(res.MappedSearch.Microseconds())/1000),
		fmt.Sprintf("%.1fx", res.OpenSpeedup))
	tab.Fprint(w)
	fmt.Fprintf(w, "rankings bit-identical heap vs mapped (%d models x %d queries, incl. overlay/compact/reopen): %v\n",
		len(s6Models), len(s6Queries), res.RankingsIdentical)
	fmt.Fprintf(w, "mapped residency: %d bytes served from the mapping, %d on heap; steady-state overhead %+.1f%%\n\n",
		res.MappedBytes, res.HeapBytes, 100*res.SearchOverhead)

	if gateErr != nil {
		return res, fmt.Errorf("EXP-S6 ranking-equality gate tripped: %w", gateErr)
	}
	if res.MappedBytes <= 0 {
		return res, fmt.Errorf("EXP-S6 residency gate tripped: mapped collection reports no mapped bytes")
	}
	if res.OpenSpeedup < 10 {
		return res, fmt.Errorf("EXP-S6 cold-open gate tripped: mapped open only %.1fx faster than heap (gate: >= 10x)", res.OpenSpeedup)
	}
	if res.SearchOverhead > 0.15 {
		return res, fmt.Errorf("EXP-S6 steady-state gate tripped: mapped search %.1f%% over heap (gate: <= 15%%)", 100*res.SearchOverhead)
	}
	return res, nil
}
