package eval

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"repro/internal/irs"
	"repro/internal/workload"
)

// EXP-S4 — global (cross-shard) top-k threshold sharing vs the
// per-shard-only baseline. EXP-S3 established that MaxScore pruning
// against each shard's *local* k-th score beats exhaustive
// evaluation; this experiment closes the documented gap: all shard
// scans of one evaluation now share a threshold (the best k-th score
// reached anywhere, raised by monotone CAS), and a two-phase
// scheduler seeds every shard before finishing the scans in
// descending shard-upper-bound order, skipping shards whose best
// remaining bound cannot reach the shared threshold.
//
// The experiment gates exactness — with sharing on, every top-k
// ranking must remain bit-identical to the exhaustive prefix — and
// measures the work saved: candidates scored under sharing must be
// strictly below the per-shard-only baseline at k = 10, with whole
// shards skipped once the shard count gives the threshold someone to
// help.

// S4Result is the outcome of EXP-S4.
type S4Result struct {
	Shards            int
	Docs              int
	Queries           int
	RankingsIdentical bool
	// Candidate documents scored across all queries at k = 10.
	BaselineScored int64 // per-shard-only thresholds (the EXP-S3 engine)
	SharedScored   int64 // cross-shard threshold + two-phase scheduling
	ScoredSaved    float64
	ShardsSkipped  int64
	BaselineTime   time.Duration
	SharedTime     time.Duration
	Speedup        float64
}

// s4Queries mix hot-topic-centric queries (where the skewed shard's
// k-th score retires the cold shards' tails) with the generic EXP-S3
// profile (where the per-shard baseline is already near-optimal and
// sharing must not cost anything).
var s4Queries = []string{
	"www nii codec",
	"#sum(www nii codec video highway)",
	"#wsum(3 www 2 nii 1 codec)",
	"#sum(www nii sgml video codec highway)",
	"www web hypertext",
	"#wsum(3 www 1 infrastructure 0.5 #phrase(digital library))",
	"#or(nii #and(sgml markup))",
}

const (
	s4K = 10
	// s4HotDocs is the size of the hot-topic block pinned to shard 0.
	s4HotDocs = 48
)

// RunS4 executes EXP-S4. shards <= 0 selects GOMAXPROCS, floored at 4
// so the cross-shard scheduler has enough shards to skip.
func RunS4(w io.Writer, shards int) (*S4Result, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
		if shards < 4 {
			shards = 4
		}
	}
	cfg := workload.DefaultConfig()
	cfg.Docs = 1200
	corpus := workload.Generate(cfg)
	res := &S4Result{Shards: shards, Queries: len(s4Queries), RankingsIdentical: true}

	engine := irs.NewEngine()
	coll, err := engine.CreateCollectionShards("topkglobal", nil, shards)
	if err != nil {
		return nil, err
	}
	for i := range corpus.Docs {
		if err := coll.AddDocument(corpus.Docs[i].Name, corpus.Docs[i].SGML, nil); err != nil {
			return nil, err
		}
	}
	// Shard skew is what cross-shard sharing exploits, so the corpus
	// plants some: a hot-topic block whose external ids all hash into
	// shard 0 (document placement is a pure function of the id —
	// irs.ShardForExtID — so the skew is constructed, not sampled).
	// Real collections develop exactly this shape when one topic
	// cluster dominates: the hot shard's k-th score quickly exceeds
	// anything the cold shards' weak candidates can reach, and the
	// per-shard-only baseline keeps scoring them anyway.
	hotText := strings.Repeat("www nii codec video highway ", 8)
	for i, added := 0, 0; added < s4HotDocs; i++ {
		name := fmt.Sprintf("hot%05d", i)
		if irs.ShardForExtID(name, shards) != 0 {
			continue
		}
		if err := coll.AddDocument(name, hotText, nil); err != nil {
			return nil, err
		}
		added++
	}
	res.Docs = coll.DocCount()

	defer irs.SetTopKThresholdSharing(true)
	// Work accounting and the exactness gate, per mode. The exhaustive
	// ranking is the single source of truth for both.
	for _, q := range s4Queries {
		full, err := coll.Search(q)
		if err != nil {
			return nil, err
		}
		if len(full) > s4K {
			full = full[:s4K]
		}
		for _, sharing := range []bool{false, true} {
			irs.SetTopKThresholdSharing(sharing)
			before := coll.TopKStats()
			topk, err := coll.SearchTopK(q, s4K)
			if err != nil {
				return nil, err
			}
			delta := coll.TopKStats()
			scored := delta.Scored - before.Scored
			if sharing {
				res.SharedScored += scored
				res.ShardsSkipped += delta.ShardsSkipped - before.ShardsSkipped
			} else {
				res.BaselineScored += scored
			}
			if len(topk) != len(full) {
				res.RankingsIdentical = false
				continue
			}
			for i := range full {
				if topk[i] != full[i] {
					res.RankingsIdentical = false
					break
				}
			}
		}
	}
	if res.BaselineScored > 0 {
		res.ScoredSaved = 1 - float64(res.SharedScored)/float64(res.BaselineScored)
	}

	// Latency A/B under the default inference net at k = 10.
	const rounds = 30
	load := func() (time.Duration, error) {
		return timeIt(func() error {
			for r := 0; r < rounds; r++ {
				for _, q := range s4Queries {
					if _, err := coll.SearchTopK(q, s4K); err != nil {
						return err
					}
				}
			}
			return nil
		})
	}
	irs.SetTopKThresholdSharing(false)
	if res.BaselineTime, err = load(); err != nil {
		return nil, err
	}
	irs.SetTopKThresholdSharing(true)
	if res.SharedTime, err = load(); err != nil {
		return nil, err
	}
	if res.SharedTime > 0 {
		res.Speedup = float64(res.BaselineTime) / float64(res.SharedTime)
	}

	tab := &Table{
		Title: fmt.Sprintf("EXP-S4: cross-shard top-k threshold sharing, %d docs, %d shards, %d queries, k=%d",
			res.Docs, res.Shards, res.Queries, s4K),
		Header: []string{"engine", "candidates scored", fmt.Sprintf("time (x%d rounds)", rounds), "speedup"},
	}
	tab.AddRow("per-shard thresholds only (EXP-S3 baseline)",
		fmt.Sprintf("%d", res.BaselineScored), fms(float64(res.BaselineTime.Microseconds())/1000), "1.00x")
	tab.AddRow("shared threshold + two-phase scheduling",
		fmt.Sprintf("%d", res.SharedScored), fms(float64(res.SharedTime.Microseconds())/1000), fmt.Sprintf("%.2fx", res.Speedup))
	tab.Fprint(w)
	fmt.Fprintf(w, "top-k rankings bit-identical to exhaustive prefix (both modes, k=%d): %v\n",
		s4K, res.RankingsIdentical)
	fmt.Fprintf(w, "candidates scored down %.1f%% (%d -> %d); shard scans skipped wholesale by the shared threshold: %d\n\n",
		100*res.ScoredSaved, res.BaselineScored, res.SharedScored, res.ShardsSkipped)
	if !res.RankingsIdentical {
		return res, fmt.Errorf("EXP-S4 ranking-equality gate tripped: top-k diverged from the exhaustive prefix")
	}
	return res, nil
}
