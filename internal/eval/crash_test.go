package eval

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	docirs "repro"
	"repro/internal/irs"
	"repro/internal/wal"
	"repro/internal/workload"
)

// TestCrashRecoveryKillPoints simulates a crash at every WAL and
// snapshot write boundary and verifies the recovered index is
// bit-identical to a never-crashed reference at the same flush
// boundary.
//
// Mechanics: a reference run executes an ingest script (loads, edits,
// deletes, a mid-run engine.Save) over a WAL-carrying persistent
// system and fingerprints the rankings — four retrieval models times
// a set of probe queries, scores compared by exact float bits — at
// every commit watermark. A second, identical run installs the wal
// fault hook and copies the entire live directory at each fired
// event: mid-append (a genuinely torn record — the log write is split
// around the hook), post-append, post-fsync, between snapshot write
// and rename, and around log rotation. Each copy is then opened like
// a restarted server — heap and memory-mapped — and must recover to
// exactly one of the reference fingerprints, keyed by the watermark
// its log replay restored.
func TestCrashRecoveryKillPoints(t *testing.T) {
	base := t.TempDir()

	// Reference: the fingerprints a crash-free system exhibits at each
	// flush boundary.
	refs := runCrashScript(t, filepath.Join(base, "ref"), nil)

	// Capture run: same script, copying the live state at every
	// fault-hook event.
	live := filepath.Join(base, "live")
	capRoot := filepath.Join(base, "captures")
	if err := os.MkdirAll(capRoot, 0o755); err != nil {
		t.Fatal(err)
	}
	var captures []string
	seen := map[string]int{}
	wal.SetHook(func(event string) error {
		seen[event]++
		dst := filepath.Join(capRoot, fmt.Sprintf("%s-%02d", strings.ReplaceAll(event, ".", "_"), seen[event]))
		copyTree(t, live, dst)
		captures = append(captures, dst)
		return nil
	})
	defer wal.SetHook(nil)
	liveRefs := runCrashScript(t, live, nil)
	wal.SetHook(nil)

	// Both runs are deterministic: their reference fingerprints agree.
	if len(liveRefs) != len(refs) {
		t.Fatalf("runs diverged: %d vs %d flush boundaries", len(liveRefs), len(refs))
	}
	for w, fp := range refs {
		if liveRefs[w] != fp {
			t.Fatalf("runs diverged at watermark %d", w)
		}
	}
	if len(captures) == 0 {
		t.Fatal("fault hook never fired")
	}
	for _, event := range []string{
		"wal.append.mid", "wal.append.post", "wal.sync.post",
		"wal.rotate.tmp", "wal.rotate.renamed",
		"snapshot.written", "snapshot.renamed",
	} {
		if seen[event] == 0 {
			t.Errorf("kill point %q never exercised", event)
		}
	}

	// Every capture recovers — heap and mapped — onto a reference
	// flush boundary, bit for bit.
	tornSeen := false
	for _, dir := range captures {
		mappedDir := dir + "-m"
		copyTree(t, dir, mappedDir)
		if verifyCrashCapture(t, dir, refs, false) {
			tornSeen = true
		}
		verifyCrashCapture(t, mappedDir, refs, true)
	}
	// The mid-append kill points must have produced at least one
	// genuinely torn log tail — otherwise the injection is not testing
	// what it claims to.
	if !tornSeen {
		t.Error("no capture recovered through a torn WAL tail")
	}
}

// runCrashScript executes the deterministic ingest script against a
// persistent system at dir (WAL on, fsync=always so every append is
// its own durability point) and returns the ranking fingerprint at
// every commit watermark, 0 included (the empty collection a crash
// before the first commit recovers to).
func runCrashScript(t *testing.T, dir string, _ any) map[uint64]string {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Docs = 12
	corpus := workload.Generate(cfg)

	sys, err := docirs.OpenWith(dir, docirs.OpenOptions{WALFsync: "always"})
	if err != nil {
		t.Fatal(err)
	}
	dtd, err := sys.LoadDTD(workload.MMFDTD)
	if err != nil {
		t.Fatal(err)
	}
	col, err := sys.CreateCollection("collPara", "ACCESS p FROM p IN PARA;",
		docirs.CollectionOptions{Policy: docirs.PropagateManually})
	if err != nil {
		t.Fatal(err)
	}
	refs := map[uint64]string{0: crashFingerprint(t, col.IRS())}
	mark := func() {
		t.Helper()
		if err := col.Flush(); err != nil {
			t.Fatal(err)
		}
		refs[col.Watermark()] = crashFingerprint(t, col.IRS())
	}

	var docs []docirs.OID
	next := 0
	for batch := 0; batch < 4; batch++ {
		for k := 0; k < 3; k++ {
			oid, err := sys.LoadDocument(dtd, corpus.Docs[next].SGML)
			if err != nil {
				t.Fatal(err)
			}
			docs = append(docs, oid)
			next++
		}
		mark()
		if batch == 1 {
			// Mid-script snapshot: exercises the snapshot write/rename
			// and log-rotation kill points with live data on both sides.
			if err := sys.Engine().Save(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Edit two paragraphs of the first document.
	paras := crashParas(t, sys, docs[0])
	if len(paras) < 2 {
		t.Fatalf("document has %d paragraphs, want >= 2", len(paras))
	}
	for i, text := range []string{"the revised www crash paragraph", "an internet recovery paragraph"} {
		// SetText targets the paragraph's text leaf, not the element.
		kids := sys.Store().Children(paras[i])
		if len(kids) == 0 {
			t.Fatalf("paragraph %v has no text leaf", paras[i])
		}
		if err := sys.SetText(kids[0], text); err != nil {
			t.Fatal(err)
		}
	}
	mark()
	// Delete a whole document.
	if err := sys.DeleteDocument(docs[5]); err != nil {
		t.Fatal(err)
	}
	mark()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	return refs
}

// verifyCrashCapture restarts a captured directory and checks the
// recovered rankings match the reference at the recovered watermark.
// Reports whether recovery went through a torn log tail.
func verifyCrashCapture(t *testing.T, dir string, refs map[uint64]string, mapped bool) bool {
	t.Helper()
	sys, err := docirs.OpenWith(dir, docirs.OpenOptions{MappedIRS: mapped})
	if err != nil {
		t.Fatalf("%s (mapped=%v): reopen: %v", filepath.Base(dir), mapped, err)
	}
	defer sys.Close()
	col, err := sys.Collection("collPara")
	if err != nil {
		t.Fatalf("%s (mapped=%v): collection lost: %v", filepath.Base(dir), mapped, err)
	}
	w := col.IRS().WALWatermark()
	want, ok := refs[w]
	if !ok {
		t.Fatalf("%s (mapped=%v): recovered watermark %d is not a flush boundary", filepath.Base(dir), mapped, w)
	}
	if got := crashFingerprint(t, col.IRS()); got != want {
		t.Errorf("%s (mapped=%v): recovered rankings diverge from reference at watermark %d", filepath.Base(dir), mapped, w)
	}
	torn := false
	for _, rep := range sys.RecoveryReports() {
		if rep.TornBytes > 0 {
			torn = true
		}
	}
	return torn
}

// crashFingerprint is EXP-S8's ranking fingerprint (every model ×
// every probe query, exact score bits) with test-failure plumbing.
func crashFingerprint(t *testing.T, col *irs.Collection) string {
	t.Helper()
	fp, err := s8Fingerprint(col)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// crashParas walks a document tree for its PARA objects.
func crashParas(t *testing.T, sys *docirs.System, doc docirs.OID) []docirs.OID {
	t.Helper()
	var out []docirs.OID
	var walk func(oid docirs.OID)
	walk = func(oid docirs.OID) {
		if sys.Store().TypeOf(oid) == "PARA" {
			out = append(out, oid)
			return
		}
		for _, k := range sys.Store().Children(oid) {
			walk(k)
		}
	}
	walk(doc)
	return out
}

// copyTree clones a directory of plain files (the shape both the
// oodb and irs persistence layers write).
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	if err := copyDirAll(src, dst); err != nil {
		t.Fatal(err)
	}
}
