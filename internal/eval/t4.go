package eval

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/docmodel"
	"repro/internal/oodb"
	"repro/internal/sgml"
	"repro/internal/workload"
)

// EXP-T4 — Section 4.6: update propagation. An editorial workload
// (text edits, document creations, and create-then-delete "draft"
// sequences) interleaves with information-need queries at varying
// update:query ratios, under the three propagation policies. The
// paper's claims:
//
//   - immediate propagation "is costly if the number of updates is
//     high as compared to the number of information-need queries";
//   - deferring to query time amortizes bursts of updates;
//   - the operation log avoids "rebuilding the IRS index structures
//     even though they will not change after all" (create+delete
//     cancellation, modify collapsing).

// T4Row is one (ratio, policy) measurement.
type T4Row struct {
	Ratio        string
	Policy       string
	Total        time.Duration
	OpsLogged    int64
	OpsCancelled int64
	OpsApplied   int64
	Flushes      int64
}

// T4Result is the outcome of EXP-T4.
type T4Result struct {
	Rows []T4Row
}

// Row finds a measurement.
func (r *T4Result) Row(ratio, policy string) *T4Row {
	for i := range r.Rows {
		if r.Rows[i].Ratio == ratio && r.Rows[i].Policy == policy {
			return &r.Rows[i]
		}
	}
	return nil
}

// RunT4 executes EXP-T4.
func RunT4(w io.Writer) (*T4Result, error) {
	ratios := []struct {
		name             string
		updates, queries int
		rounds           int
	}{
		{"50:1", 50, 1, 4},
		{"10:1", 10, 1, 10},
		{"1:1", 4, 4, 10},
		{"1:10", 1, 10, 10},
	}
	policies := []core.PropagationPolicy{
		core.PropagateImmediately, core.PropagateOnQuery, core.PropagateManually,
	}
	res := &T4Result{}
	for _, ratio := range ratios {
		for _, policy := range policies {
			cfg := workload.DefaultConfig()
			cfg.Docs = 24
			s, err := NewSetup(cfg)
			if err != nil {
				return nil, err
			}
			coll, err := s.NewCollection("collPara", "ACCESS p FROM p IN PARA;",
				core.Options{Policy: policy})
			if err != nil {
				return nil, err
			}
			// Gather editable text leaves.
			var leaves []oodb.OID
			for _, docOID := range s.DocOIDs {
				for _, para := range s.ParasOf(docOID) {
					for _, k := range s.Store.Children(para) {
						if class, _ := s.DB.ClassOf(k); class == docmodel.ClassText {
							leaves = append(leaves, k)
						}
					}
				}
			}
			rng := rand.New(rand.NewSource(11))
			queryPool := []string{"www", "nii", "sgml", "video", "#and(www nii)"}
			base := coll.Stats().Snapshot()
			total, err := timeIt(func() error {
				for round := 0; round < ratio.rounds; round++ {
					for u := 0; u < ratio.updates; u++ {
						switch rng.Intn(10) {
						case 0:
							// Draft document: created and deleted in the
							// same burst (the paper's cancellation case).
							tree, err := sgml.ParseDocument(s.DTD,
								fmt.Sprintf(`<MMFDOC YEAR="1994"><LOGBOOK>l<DOCTITLE>draft<ABSTRACT>a<SECTION><STITLE>s<PARA>draft text %d</MMFDOC>`, round),
								sgml.ParseOptions{Strict: true})
							if err != nil {
								return err
							}
							oid, err := s.Store.InsertDocument(s.DTD, tree)
							if err != nil {
								return err
							}
							if err := s.Store.DeleteDocument(oid); err != nil {
								return err
							}
						default:
							leaf := leaves[rng.Intn(len(leaves))]
							if err := s.Store.SetText(leaf,
								fmt.Sprintf("edited content %d about %s", round, queryPool[rng.Intn(len(queryPool))])); err != nil {
								return err
							}
						}
					}
					if policy == core.PropagateManually {
						// Application flushes in a "low load period"
						// at the end of the editing burst.
						if err := coll.Flush(); err != nil {
							return err
						}
					}
					for q := 0; q < ratio.queries; q++ {
						if _, err := coll.GetIRSResult(queryPool[rng.Intn(len(queryPool))]); err != nil {
							return err
						}
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			after := coll.Stats().Snapshot()
			res.Rows = append(res.Rows, T4Row{
				Ratio:        ratio.name,
				Policy:       policy.String(),
				Total:        total,
				OpsLogged:    after.OpsLogged - base.OpsLogged,
				OpsCancelled: after.OpsCancelled - base.OpsCancelled,
				OpsApplied:   after.OpsApplied - base.OpsApplied,
				Flushes:      after.Flushes - base.Flushes,
			})
		}
	}

	tab := &Table{
		Title:  "EXP-T4 (Section 4.6): update propagation policies",
		Header: []string{"update:query", "policy", "total", "ops logged", "cancelled", "applied", "flushes"},
	}
	for _, r := range res.Rows {
		tab.AddRow(r.Ratio, r.Policy, fms(float64(r.Total.Microseconds())/1000),
			fmt.Sprint(r.OpsLogged), fmt.Sprint(r.OpsCancelled),
			fmt.Sprint(r.OpsApplied), fmt.Sprint(r.Flushes))
	}
	tab.Fprint(w)
	return res, nil
}
