package eval

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/irs"
	"repro/internal/oodb"
	"repro/internal/workload"
)

// EXP-S2 — synchronous vs asynchronous ingest pipeline. PR 2 left
// analysis (text derivation + tokenization) inside the flush path and
// every flush synchronous with the caller; the staged pipeline splits
// flushing into a parallel analyze stage that runs outside any lock
// and a short commit stage that only merges pre-built postings, and
// PropagateAsync hands the whole pipeline to a per-collection
// background flusher with group-commit coalescing. This experiment
// drives the same concurrent update workload through both
// configurations — PropagateImmediately (every committed update
// propagates synchronously inside the mutator) and PropagateAsync
// (mutators return immediately; the flusher group-commits) — then
// drains and verifies the rankings are bit-identical, so the
// throughput gain has no retrieval-quality cost. It also reports
// where flush time went: the commit lock is now held only for the
// commit stage, where the pre-refactor flush held it for analysis
// too.

// S2Result is the outcome of EXP-S2.
type S2Result struct {
	GOMAXPROCS int
	Writers    int
	Rounds     int
	Paras      int
	TotalOps   int

	SyncElapsed    time.Duration
	AsyncElapsed   time.Duration // includes the final drain
	SyncOpsPerSec  float64
	AsyncOpsPerSec float64
	Speedup        float64

	RankingsIdentical bool

	// Pipeline shape of the async run.
	SyncFlushes       int64
	AsyncGroupCommits int64
	AsyncAvgGroup     float64

	// Where the async run's flush time went (pipeline stats): the
	// commit stage is what holds the index's commit lock, the analyze
	// stage runs outside it.
	AnalyzeMS float64
	CommitMS  float64

	// Measured commit-lock hold A/B: the same documents committed as
	// one batch through the pre-refactor path (analysis inside the
	// batch, i.e. under the commit lock) and through the staged path
	// (Analyze first, merge pre-built postings inside). Best of
	// holdReps runs each.
	LegacyHoldMS      float64
	StagedHoldMS      float64
	CommitHoldReduced bool

	FlushErrors int64
}

// s2Queries cover the operator families over the planted topics.
var s2Queries = []string{
	"www",
	"#and(www nii)",
	"#or(nii #and(sgml markup))",
	"#wsum(2 www 1 video)",
	"#sum(www nii sgml video audio)",
	"#phrase(digital library)",
}

// s2Topics are planted into updated paragraph texts so the query set
// keeps discriminating after the update storm.
var s2Topics = []string{
	"www", "nii", "sgml markup", "video", "audio", "digital library",
}

// s2Text is the deterministic final-state function: paragraph i's
// text after round r is identical no matter which configuration (or
// writer interleaving) produced it.
func s2Text(i, r int) string {
	return fmt.Sprintf("revision %d the %s paragraph number %d", r, s2Topics[i%len(s2Topics)], i)
}

// RunS2 executes EXP-S2.
func RunS2(w io.Writer) (*S2Result, error) {
	cfg := workload.DefaultConfig()
	cfg.Docs = 16
	corpus := workload.Generate(cfg)
	res := &S2Result{
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Rounds:            6,
		RankingsIdentical: true,
	}
	res.Writers = res.GOMAXPROCS
	if res.Writers < 2 {
		res.Writers = 2
	}

	type config struct {
		name string
		opts core.Options
	}
	configs := []config{
		{"sync-immediate", core.Options{Policy: core.PropagateImmediately}},
		{"async-pipeline", core.Options{Policy: core.PropagateAsync, AsyncCoalesce: time.Millisecond}},
	}
	type outcome struct {
		col     *core.Collection
		setup   *Setup
		elapsed time.Duration
		scores  []map[oodb.OID]float64
	}
	outcomes := make([]outcome, len(configs))
	for ci, c := range configs {
		s, err := newSetupWithDTD(workload.MMFDTD, corpus)
		if err != nil {
			return nil, err
		}
		col, err := s.NewCollection("collPara", "ACCESS p FROM p IN PARA;", c.opts)
		if err != nil {
			return nil, err
		}
		// Text leaves of every paragraph, in deterministic corpus
		// order: the update workload's targets.
		var leaves []oodb.OID
		for _, doc := range s.DocOIDs {
			for _, para := range s.ParasOf(doc) {
				kids := s.Store.Children(para)
				if len(kids) > 0 {
					leaves = append(leaves, kids[0])
				}
			}
		}
		res.Paras = len(leaves)
		elapsed, err := timeIt(func() error {
			var wg sync.WaitGroup
			errc := make(chan error, res.Writers)
			for wr := 0; wr < res.Writers; wr++ {
				wg.Add(1)
				go func(wr int) {
					defer wg.Done()
					for r := 0; r < res.Rounds; r++ {
						for i := wr; i < len(leaves); i += res.Writers {
							if err := s.Store.SetText(leaves[i], s2Text(i, r)); err != nil {
								errc <- err
								return
							}
						}
					}
				}(wr)
			}
			wg.Wait()
			close(errc)
			if err := <-errc; err != nil {
				return err
			}
			// The async configuration pays its visibility barrier
			// inside the measured window — the comparison stays fair.
			return col.Drain()
		})
		if err != nil {
			return nil, err
		}
		var scores []map[oodb.OID]float64
		for _, q := range s2Queries {
			sc, err := col.GetIRSResult(q)
			if err != nil {
				return nil, err
			}
			scores = append(scores, sc)
		}
		outcomes[ci] = outcome{col: col, setup: s, elapsed: elapsed, scores: scores}
	}

	res.TotalOps = res.Paras * res.Rounds
	res.SyncElapsed = outcomes[0].elapsed
	res.AsyncElapsed = outcomes[1].elapsed
	if s := res.SyncElapsed.Seconds(); s > 0 {
		res.SyncOpsPerSec = float64(res.TotalOps) / s
	}
	if s := res.AsyncElapsed.Seconds(); s > 0 {
		res.AsyncOpsPerSec = float64(res.TotalOps) / s
	}
	if res.AsyncElapsed > 0 {
		res.Speedup = float64(res.SyncElapsed) / float64(res.AsyncElapsed)
	}

	// Ranking equality: same OIDs (the two systems load the corpus
	// identically, so OIDs coincide), same order, bit-equal scores.
	for qi := range s2Queries {
		a, b := outcomes[0].scores[qi], outcomes[1].scores[qi]
		if len(a) != len(b) {
			res.RankingsIdentical = false
			continue
		}
		ra, rb := rankOIDs(a), rankOIDs(b)
		for i := range ra {
			if ra[i] != rb[i] || a[ra[i]] != b[rb[i]] {
				res.RankingsIdentical = false
				break
			}
		}
	}

	syncStats := outcomes[0].col.Stats().Snapshot()
	asyncStats := outcomes[1].col.Stats().Snapshot()
	res.SyncFlushes = syncStats.Flushes
	res.AsyncGroupCommits = asyncStats.GroupCommits
	if asyncStats.GroupCommits > 0 {
		res.AsyncAvgGroup = float64(asyncStats.GroupedOps) / float64(asyncStats.GroupCommits)
	}
	res.AnalyzeMS = float64(asyncStats.AnalyzeNanos) / 1e6
	res.CommitMS = float64(asyncStats.CommitNanos) / 1e6
	res.FlushErrors = syncStats.FlushErrors + asyncStats.FlushErrors

	if err := res.measureCommitHold(); err != nil {
		return nil, err
	}

	// Stop background machinery before the setups go out of scope.
	for _, o := range outcomes {
		if err := o.setup.Coupling.Close(); err != nil {
			return nil, err
		}
	}

	tab := &Table{
		Title: fmt.Sprintf("EXP-S2: sync vs async ingest pipeline, %d paras × %d rounds, %d writers (GOMAXPROCS %d)",
			res.Paras, res.Rounds, res.Writers, res.GOMAXPROCS),
		Header: []string{"configuration", "elapsed", "ops/s", "flushes/groups", "avg group"},
	}
	tab.AddRow("sync (immediate)",
		fms(float64(res.SyncElapsed.Microseconds())/1000),
		fmt.Sprintf("%.0f", res.SyncOpsPerSec),
		fmt.Sprintf("%d", res.SyncFlushes), "1.0")
	tab.AddRow("async (pipeline)",
		fms(float64(res.AsyncElapsed.Microseconds())/1000),
		fmt.Sprintf("%.0f", res.AsyncOpsPerSec),
		fmt.Sprintf("%d", res.AsyncGroupCommits),
		fmt.Sprintf("%.1f", res.AsyncAvgGroup))
	tab.AddRow("speedup", fmt.Sprintf("%.2fx", res.Speedup), "-", "-", "-")
	tab.Fprint(w)
	fmt.Fprintf(w, "commit-lock hold, same %d docs as one batch (best of %d): staged %.2fms vs pre-refactor analyze-under-lock %.2fms (reduced: %v)\n",
		res.Paras, holdReps, res.StagedHoldMS, res.LegacyHoldMS, res.CommitHoldReduced)
	fmt.Fprintf(w, "async-run pipeline split: analyze %.2fms outside the lock, commit %.2fms inside\n", res.AnalyzeMS, res.CommitMS)
	fmt.Fprintf(w, "rankings identical across pipelines: %v; flush errors: %d\n\n",
		res.RankingsIdentical, res.FlushErrors)
	return res, nil
}

// holdReps is how many times each commit-hold variant runs; the best
// (minimum) time is kept, damping scheduler noise.
const holdReps = 5

// measureCommitHold measures — rather than derives — the commit-lock
// hold reduction: the identical final-state documents are committed
// as one irs.Batch through the legacy path (Batch.Add, which analyzes
// under the commit lock exactly as the pre-refactor Flush did) and
// through the staged path (Analyze outside, Batch.AddAnalyzed
// inside). Only the time inside the batch — the window during which
// no snapshot can be acquired — is measured.
func (res *S2Result) measureCommitHold() error {
	engine := irs.NewEngine()
	type variant struct {
		name   string
		staged bool
		best   *float64
	}
	variants := []variant{
		{"legacy", false, &res.LegacyHoldMS},
		{"staged", true, &res.StagedHoldMS},
	}
	for _, v := range variants {
		best := 0.0
		for rep := 0; rep < holdReps; rep++ {
			c, err := engine.CreateCollection(fmt.Sprintf("hold-%s-%d", v.name, rep), nil)
			if err != nil {
				return err
			}
			var analyzed []*irs.AnalyzedDoc
			if v.staged {
				for i := 0; i < res.Paras; i++ {
					analyzed = append(analyzed,
						c.Analyze(fmt.Sprintf("p%04d", i), s2Text(i, res.Rounds-1), nil))
				}
			}
			hold, err := timeIt(func() error {
				return c.Batch(func(b *irs.Batch) error {
					for i := 0; i < res.Paras; i++ {
						if v.staged {
							if _, err := b.AddAnalyzed(analyzed[i]); err != nil {
								return err
							}
						} else if _, err := b.Add(fmt.Sprintf("p%04d", i), s2Text(i, res.Rounds-1), nil); err != nil {
							return err
						}
					}
					return nil
				})
			})
			if err != nil {
				return err
			}
			ms := float64(hold.Microseconds()) / 1000
			if rep == 0 || ms < best {
				best = ms
			}
		}
		*v.best = best
	}
	res.CommitHoldReduced = res.StagedHoldMS < res.LegacyHoldMS
	return nil
}
