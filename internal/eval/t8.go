package eval

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/irs"
	"repro/internal/oodb"
	"repro/internal/workload"
)

// EXP-T8 — Section 6 open issue, explored: "bringing together the
// different assumptions ('Open World' vs 'Closed World') is far from
// trivial. Negation, for example, has a different meaning in both
// worlds." The experiment materializes the difference on one corpus
// with three readings of "paragraphs NOT about www":
//
//	VQL NOT      closed world: complement over the class extent —
//	             paragraphs whose IRS value fails the threshold,
//	             including ones the IRS never saw evidence for;
//	IRS #not     open world: the inference net only scores candidate
//	             documents, and the candidates of #not(www) are
//	             exactly the documents CONTAINING www — so the
//	             result set is a subset of the www documents, the
//	             opposite of the intuitive complement;
//	boolean #not the boolean model complements over all live IRS
//	             documents (closed world inside the IRS).

// T8Result is the outcome of EXP-T8.
type T8Result struct {
	TotalParas  int
	WWWParas    int // paragraphs the IRS scores for "www"
	VQLNotRows  int
	IRSNotRows  int
	BoolNotRows int
	// IRSNotSubset: every #not(www) result contains www — the
	// open-world paradox.
	IRSNotSubset bool
	// Disjoint: VQL NOT result and the www candidate set are
	// disjoint at the chosen threshold.
	Disjoint bool
}

// RunT8 executes EXP-T8.
func RunT8(w io.Writer) (*T8Result, error) {
	cfg := workload.DefaultConfig()
	s, err := NewSetup(cfg)
	if err != nil {
		return nil, err
	}
	coll, err := s.NewCollection("collPara", "ACCESS p FROM p IN PARA;", core.Options{})
	if err != nil {
		return nil, err
	}
	res := &T8Result{TotalParas: coll.DocCount(), IRSNotSubset: true, Disjoint: true}

	wwwScores, err := coll.GetIRSResult("www")
	if err != nil {
		return nil, err
	}
	res.WWWParas = len(wwwScores)

	// Closed world: VQL NOT over the extent.
	const threshold = "0.45"
	ev := s.Coupling.Evaluator()
	rs, err := ev.Run(`ACCESS p FROM p IN PARA WHERE NOT (p -> getIRSValue(collPara, 'www') > ` + threshold + `);`)
	if err != nil {
		return nil, err
	}
	res.VQLNotRows = len(rs.Rows)
	vqlSet := make(map[oodb.OID]bool, len(rs.Rows))
	for _, row := range rs.Rows {
		vqlSet[row[0].Ref] = true
	}
	for oid, v := range wwwScores {
		if v > 0.45 && vqlSet[oid] {
			res.Disjoint = false
		}
	}

	// Open world: the IRS's own #not.
	notScores, err := coll.GetIRSResult("#not(www)")
	if err != nil {
		return nil, err
	}
	res.IRSNotRows = len(notScores)
	for oid := range notScores {
		if _, containsWWW := wwwScores[oid]; !containsWWW {
			res.IRSNotSubset = false
		}
	}

	// Boolean closed world inside the IRS.
	boolColl, err := s.NewCollection("collBool", "ACCESS p FROM p IN PARA;",
		core.Options{Model: irs.Boolean{}})
	if err != nil {
		return nil, err
	}
	boolNot, err := boolColl.GetIRSResult("#not(www)")
	if err != nil {
		return nil, err
	}
	res.BoolNotRows = len(boolNot)

	tab := &Table{
		Title:  "EXP-T8 (Section 6, open issue): negation across the world assumptions",
		Header: []string{"reading", "world", "result size", fmt.Sprintf("(corpus: %d paras, %d scored for www)", res.TotalParas, res.WWWParas)},
	}
	tab.AddRow("VQL NOT (value <= 0.45)", "closed (extent)", fmt.Sprint(res.VQLNotRows), "")
	tab.AddRow("inference-net #not(www)", "open (candidates)", fmt.Sprint(res.IRSNotRows), "subset of www docs!")
	tab.AddRow("boolean #not(www)", "closed (IRS docs)", fmt.Sprint(res.BoolNotRows), "")
	tab.Fprint(w)
	fmt.Fprintf(w, "open-world #not returned only www-containing paragraphs: %v; closed-world NOT disjoint from matches: %v\n\n",
		res.IRSNotSubset, res.Disjoint)
	return res, nil
}
