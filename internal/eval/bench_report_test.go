package eval

import (
	"path/filepath"
	"strings"
	"testing"
)

func syntheticReport(pr int, topkNs float64) *BenchReport {
	return &BenchReport{
		PR: pr, GoVersion: "go1.24.0", GOMAXPROCS: 4,
		Benchmarks: map[string]BenchResult{
			"search_topk10":   {N: 1000, NsPerOp: topkNs, BytesPerOp: 100, AllocsPerOp: 3},
			"search_buffered": {N: 100000, NsPerOp: 2000, BytesPerOp: 1328, AllocsPerOp: 6},
		},
		TopK: TopKRates{Queries: 1000, Scored: 5000, Pruned: 5000, PruneRate: 0.5},
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	want := syntheticReport(6, 50_000)
	if err := WriteBenchReport(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.PR != 6 || got.Benchmarks["search_topk10"].NsPerOp != 50_000 {
		t.Fatalf("round trip mangled the report: %+v", got)
	}
	if err := ValidateBenchReport(got); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
}

func TestBenchReportValidation(t *testing.T) {
	rep := syntheticReport(6, 1000)
	rep.PR = 0
	if err := ValidateBenchReport(rep); err == nil {
		t.Error("accepted pr=0")
	}
	rep = syntheticReport(6, 1000)
	rep.Benchmarks = nil
	if err := ValidateBenchReport(rep); err == nil {
		t.Error("accepted empty benchmark set")
	}
	rep = syntheticReport(6, 0)
	if err := ValidateBenchReport(rep); err == nil {
		t.Error("accepted zero ns/op")
	}
	rep = syntheticReport(6, 1000)
	rep.TopK.Queries = 0
	if err := ValidateBenchReport(rep); err == nil {
		t.Error("accepted empty topk rates")
	}
}

func TestDiffBenchReportsFlagsRegressions(t *testing.T) {
	old := syntheticReport(5, 50_000)
	var buf strings.Builder

	// Within tolerance: +20% is noise, not a regression.
	if regs := DiffBenchReports(&buf, old, syntheticReport(6, 60_000), 0); len(regs) != 0 {
		t.Fatalf("+20%% flagged as regression: %v", regs)
	}
	// Beyond tolerance: +100% must trip.
	regs := DiffBenchReports(&buf, old, syntheticReport(6, 100_000), 0)
	if len(regs) != 1 || !strings.Contains(regs[0], "search_topk10") {
		t.Fatalf("+100%% not flagged: %v", regs)
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Fatalf("diff output does not mark the regression:\n%s", buf.String())
	}
	// A benchmark that is new in this PR is reported, never flagged.
	newRep := syntheticReport(6, 50_000)
	newRep.Benchmarks["brand_new"] = BenchResult{N: 10, NsPerOp: 1}
	if regs := DiffBenchReports(&buf, old, newRep, 0); len(regs) != 0 {
		t.Fatalf("new benchmark flagged: %v", regs)
	}
}

// TestCommittedBenchReportValid keeps the committed perf snapshot
// loadable: the next PR's regression gate diffs against this file, so
// a malformed or empty BENCH_6.json would silently disable the gate.
func TestCommittedBenchReportValid(t *testing.T) {
	rep, err := LoadBenchReport("../../BENCH_6.json")
	if err != nil {
		t.Fatalf("committed bench report unreadable: %v", err)
	}
	if err := ValidateBenchReport(rep); err != nil {
		t.Fatal(err)
	}
	if rep.PR != 6 {
		t.Fatalf("committed report carries pr=%d, want 6", rep.PR)
	}
	if len(rep.StageLatency) == 0 {
		t.Fatal("committed report has no stage latency summaries")
	}
	if rep.TopK.PruneRate <= 0 {
		t.Fatal("committed report shows no MaxScore pruning; the benchmark query stopped engaging the pruning path")
	}
}
