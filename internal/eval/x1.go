package eval

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/irs"
	"repro/internal/oodb"
	"repro/internal/workload"
)

// EXP-X1 — Section 6, explored extension: passage retrieval.
// The paper closes the derivation discussion with "passage retrieval
// as introduced in [SAB93] seems to be an interesting candidate" and
// earlier asks for schemes that distinguish documents "in which a
// certain term is mentioned at one point" from those where the topic
// is actually discussed. The experiment builds document-granularity
// collections under the whole-document inference net and under the
// passage model, and asks for documents where two topics are
// discussed TOGETHER: ground truth marks documents whose topic
// plants share one paragraph, while distractors carry both topics
// far apart.

// X1Result is the outcome of EXP-X1.
type X1Result struct {
	Relevant          int
	WholeP, PassageP  float64 // P@|relevant|
	WholeAP, PassAP   float64 // average precision
	WholeGap, PassGap float64 // mean score margin colocated - dispersed
}

// x1Corpus builds the purpose-made corpus: colocated docs (both
// topics in one paragraph), dispersed docs (topics ~8 paragraphs
// apart) and background docs.
func x1Corpus() []workload.Document {
	var docs []workload.Document
	pad := func(tag string, n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			fmt.Fprintf(&sb, "bg%s%02d ", tag, i%17)
			sb.WriteString(" ")
		}
		return sb.String()
	}
	build := func(name, kind string, idx int) workload.Document {
		var sb strings.Builder
		sb.WriteString(`<MMFDOC YEAR="1994"><LOGBOOK>log<DOCTITLE>` + name + `<ABSTRACT>abs`)
		sb.WriteString("<SECTION><STITLE>s1\n")
		switch kind {
		case "colocated":
			sb.WriteString("<PARA>" + pad("a"+name, 10) + "\n")
			sb.WriteString("<PARA>www www nii nii discussed together here\n")
			for i := 0; i < 8; i++ {
				sb.WriteString("<PARA>" + pad(fmt.Sprint("c", name, i), 25) + "\n")
			}
		case "dispersed":
			sb.WriteString("<PARA>www www mentioned at one point " + pad("d"+name, 20) + "\n")
			for i := 0; i < 8; i++ {
				sb.WriteString("<PARA>" + pad(fmt.Sprint("e", name, i), 25) + "\n")
			}
			sb.WriteString("<PARA>nii nii mentioned far away " + pad("f"+name, 20) + "\n")
		default:
			for i := 0; i < 10; i++ {
				sb.WriteString("<PARA>" + pad(fmt.Sprint("g", name, i), 25) + "\n")
			}
		}
		sb.WriteString("</SECTION></MMFDOC>")
		return workload.Document{Name: name, SGML: sb.String()}
	}
	for i := 0; i < 6; i++ {
		docs = append(docs, build(fmt.Sprintf("CO%d", i), "colocated", i))
	}
	for i := 0; i < 6; i++ {
		docs = append(docs, build(fmt.Sprintf("DI%d", i), "dispersed", i))
	}
	for i := 0; i < 8; i++ {
		docs = append(docs, build(fmt.Sprintf("BG%d", i), "background", i))
	}
	return docs
}

// RunX1 executes EXP-X1.
func RunX1(w io.Writer) (*X1Result, error) {
	corpus := &workload.Corpus{}
	s, err := newSetupWithDTD(workload.MMFDTD, corpus)
	if err != nil {
		return nil, err
	}
	docs := x1Corpus()
	oidOf := make(map[string]oodb.OID, len(docs))
	relevant := make(map[oodb.OID]bool)
	var colocated, dispersed []oodb.OID
	for _, d := range docs {
		oid, err := parseFixture(s, d.SGML)
		if err != nil {
			return nil, fmt.Errorf("x1 %s: %w", d.Name, err)
		}
		oidOf[d.Name] = oid
		switch {
		case strings.HasPrefix(d.Name, "CO"):
			relevant[oid] = true
			colocated = append(colocated, oid)
		case strings.HasPrefix(d.Name, "DI"):
			dispersed = append(dispersed, oid)
		}
	}
	collWhole, err := s.NewCollection("collWhole", "ACCESS d FROM d IN MMFDOC;",
		core.Options{Model: irs.InferenceNet{}})
	if err != nil {
		return nil, err
	}
	collPassage, err := s.NewCollection("collPassage", "ACCESS d FROM d IN MMFDOC;",
		core.Options{Model: irs.PassageModel{Window: 60}})
	if err != nil {
		return nil, err
	}

	const query = "#and(www nii)"
	res := &X1Result{Relevant: len(relevant)}
	measure := func(col *core.Collection) (float64, float64, float64, error) {
		scores, err := col.GetIRSResult(query)
		if err != nil {
			return 0, 0, 0, err
		}
		ranked := rankOIDs(scores)
		p := precisionAtK(ranked, relevant, len(relevant))
		ap := averagePrecision(ranked, relevant)
		var coSum, diSum float64
		for _, oid := range colocated {
			coSum += scores[oid]
		}
		for _, oid := range dispersed {
			diSum += scores[oid]
		}
		gap := coSum/float64(len(colocated)) - diSum/float64(len(dispersed))
		return p, ap, gap, nil
	}
	if res.WholeP, res.WholeAP, res.WholeGap, err = measure(collWhole); err != nil {
		return nil, err
	}
	if res.PassageP, res.PassAP, res.PassGap, err = measure(collPassage); err != nil {
		return nil, err
	}

	tab := &Table{
		Title:  "EXP-X1 (Section 6, extension): passage retrieval for 'discussed together'",
		Header: []string{"model", fmt.Sprintf("P@%d", res.Relevant), "AP", "score gap colocated-dispersed"},
	}
	tab.AddRow("whole-document inference net", fnum(res.WholeP), fnum(res.WholeAP), fnum(res.WholeGap))
	tab.AddRow("passage (window 60)", fnum(res.PassageP), fnum(res.PassAP), fnum(res.PassGap))
	tab.Fprint(w)
	return res, nil
}
