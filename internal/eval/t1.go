package eval

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/docmodel"
	"repro/internal/oodb"
	"repro/internal/workload"
)

// EXP-T1 — Section 4.3: granularity of IRS documents. The same
// corpus is indexed at four granularities realized purely through
// specification queries (document, section, paragraph, leaf) plus a
// document-level abstract variant (alternative (1) of 4.3.1). For
// each choice the experiment reports the footprint (IRS documents,
// index bytes, text volume relative to the corpus, indexing time)
// and the retrieval quality of two tasks:
//
//   - document retrieval (rank documents for a topic; finer
//     granularities answer through deriveIRSValue), and
//   - paragraph retrieval (only granularities at or below the
//     paragraph can answer at all — the paper's point that
//     document-level indexing cannot answer "content-based queries
//     refering to individual paragraphs").

// T1Row is one granularity's measurements.
type T1Row struct {
	Granularity string
	SpecQuery   string
	TextMode    int
	IRSDocs     int
	IndexBytes  int64
	TextRatio   float64 // indexed text volume / corpus text volume
	IndexTime   time.Duration
	// Document-retrieval quality (mean over topics).
	DocP5, DocMAP float64
	// Paragraph-retrieval quality; NaN-like -1 when inexpressible.
	ParaP10 float64
}

// T1Result is the outcome of EXP-T1.
type T1Result struct {
	Rows []T1Row
}

// Row returns the row for a granularity.
func (r *T1Result) Row(name string) *T1Row {
	for i := range r.Rows {
		if r.Rows[i].Granularity == name {
			return &r.Rows[i]
		}
	}
	return nil
}

// RunT1 executes EXP-T1.
func RunT1(w io.Writer) (*T1Result, error) {
	cfg := workload.DefaultConfig()
	s, err := NewSetup(cfg)
	if err != nil {
		return nil, err
	}
	corpusBytes := float64(s.Corpus.TextBytes())
	grans := []struct {
		name string
		spec string
		mode int
		// paraTask: can the granularity answer paragraph queries
		// directly or via derivation from sub-paragraph values?
		paraTask bool
	}{
		{"document", "ACCESS d FROM d IN MMFDOC;", docmodel.ModeFullText, false},
		{"doc-abstract", "ACCESS d FROM d IN MMFDOC;", docmodel.ModeAbstract, false},
		{"section", "ACCESS s FROM s IN SECTION;", docmodel.ModeFullText, false},
		{"paragraph", "ACCESS p FROM p IN PARA;", docmodel.ModeFullText, true},
		{"leaf", "ACCESS t FROM t IN Text;", docmodel.ModeFullText, true},
	}
	res := &T1Result{}
	for i, g := range grans {
		col, err := s.Coupling.CreateCollection(fmt.Sprintf("t1c%d", i), g.spec, core.Options{TextMode: g.mode})
		if err != nil {
			return nil, err
		}
		var n int
		indexTime, err := timeIt(func() error {
			var ierr error
			n, ierr = col.IndexObjects()
			return ierr
		})
		if err != nil {
			return nil, err
		}
		row := T1Row{
			Granularity: g.name, SpecQuery: g.spec, TextMode: g.mode,
			IRSDocs: n, IndexBytes: col.IRS().SizeBytes(), IndexTime: indexTime,
			ParaP10: -1,
		}
		// Indexed text volume.
		var textBytes int64
		ix := col.IRS().Index()
		for _, id := range ix.LiveDocIDs() {
			if ext, ok := ix.ExtID(id); ok {
				if oid, err := parseOID(ext); err == nil {
					textBytes += int64(len(s.Store.Text(oid, g.mode)))
				}
			}
		}
		row.TextRatio = float64(textBytes) / corpusBytes

		// Task 1: document retrieval per topic (derive upward where
		// the document itself is not represented).
		var p5sum, mapSum float64
		for _, topic := range cfg.Topics {
			q := workload.QueryForTopic(topic)
			docScores := make(map[oodb.OID]float64, len(s.DocOIDs))
			for _, docOID := range s.DocOIDs {
				v, err := col.FindIRSValue(q, docOID)
				if err != nil {
					return nil, err
				}
				docScores[docOID] = v
			}
			ranked := rankOIDs(docScores)
			relevant := s.RelevantDocOIDs(topic.Name)
			p5sum += precisionAtK(ranked, relevant, 5)
			mapSum += averagePrecision(ranked, relevant)
		}
		row.DocP5 = p5sum / float64(len(cfg.Topics))
		row.DocMAP = mapSum / float64(len(cfg.Topics))

		// Task 2: paragraph retrieval (only paragraph/leaf).
		if g.paraTask {
			var p10sum float64
			for _, topic := range cfg.Topics {
				q := workload.QueryForTopic(topic)
				relevant := s.RelevantParaOIDs(topic.Name)
				paraScores := make(map[oodb.OID]float64)
				for _, docOID := range s.DocOIDs {
					for _, para := range s.ParasOf(docOID) {
						v, err := col.FindIRSValue(q, para)
						if err != nil {
							return nil, err
						}
						paraScores[para] = v
					}
				}
				p10sum += precisionAtK(rankOIDs(paraScores), relevant, 10)
			}
			row.ParaP10 = p10sum / float64(len(cfg.Topics))
		}
		res.Rows = append(res.Rows, row)
	}

	tab := &Table{
		Title:  "EXP-T1 (Section 4.3): IRS-document granularity",
		Header: []string{"granularity", "IRS docs", "index bytes", "text/corpus", "index time", "doc P@5", "doc MAP", "para P@10"},
	}
	for _, r := range res.Rows {
		para := "n/a"
		if r.ParaP10 >= 0 {
			para = fnum(r.ParaP10)
		}
		tab.AddRow(r.Granularity, fmt.Sprint(r.IRSDocs), fmt.Sprint(r.IndexBytes),
			fnum(r.TextRatio), fms(float64(r.IndexTime.Microseconds())/1000),
			fnum(r.DocP5), fnum(r.DocMAP), para)
	}
	tab.Fprint(w)
	return res, nil
}
