package eval

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	docirs "repro"
	"repro/internal/irs"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/workload"
)

// EXP-S8 — durable ingest: what the per-collection write-ahead log
// costs and what it buys.
//
// Cost: the same corpus is ingested into fresh persistent systems
// under three fsync policies — WAL off entirely, group (the default:
// one fsync rides the commit-coalescing window and covers a batch of
// appends) and always (fsync per append) — twice each: a synchronous
// phase that flushes after every document (each document is its own
// durability point) and an asynchronous phase where the background
// flusher group-commits. The gate holds the default to its design
// point: group-fsync ingest must stay within s8OverheadSlack of the
// WAL-off baseline in both phases. The always policy is reported as
// trajectory, not gated — paying a disk round-trip per append is a
// choice, not a regression.
//
// Benefit: every variant must serve bit-identical rankings (the log
// is write-ahead of the same commits, never a different index), and
// the group variant's directory, copied after Drain acknowledged the
// corpus but before any snapshot was saved, must recover by replay
// alone — thousands of logged operations onto an empty index — to
// exactly the rankings the live system served. The recovered system's
// serving surface is checked in-run too: /stats exposes the wal block
// (seq/bytes/fsync trail) and /metrics the fsync-latency and
// bytes-appended series.

// S8Result is the outcome of EXP-S8.
type S8Result struct {
	Docs int
	// Elapsed wall clock per phase and fsync policy ("off" disables
	// the WAL entirely).
	Sync  map[string]time.Duration
	Async map[string]time.Duration
	// Overhead ratios: group elapsed / off elapsed (gate <= s8OverheadSlack).
	SyncOverhead  float64
	AsyncOverhead float64
	// RankingsSame: all six variants serve bit-identical rankings.
	RankingsSame bool
	// Recovery-by-replay outcome for the crash copy of the sync-group
	// run: operations replayed and ranking equality with the live run.
	RecoveredOps  int
	RecoveredSame bool
	// WAL shape of the sync-group run at drain time.
	WALBytes   int64
	WALAppends int64
	WALFsyncs  int64
	// Serving-surface checks on the recovered system.
	StatsWAL   bool
	MetricsWAL bool
}

const (
	s8Docs = 450 // sized so the replayed log carries >= s8MinOps operations
	// s8MinOps is the floor on operations the recovery check must
	// replay — the experiment is about surviving a real log, not a
	// toy tail.
	s8MinOps = 4000
	// s8OverheadSlack bounds group-fsync ingest against the WAL-off
	// baseline: elapsed(group) <= elapsed(off) × slack, i.e. WAL-on
	// throughput >= WAL-off / 1.25.
	s8OverheadSlack = 1.25
)

// s8Models and s8Queries span the ranking surface the durability
// gates compare: every retrieval model times probes over frequent
// vocabulary, rare vocabulary and topic terms.
var s8Models = []struct {
	Name  string
	Model irs.Model
}{
	{"inference", irs.InferenceNet{}},
	{"vector", irs.NewVectorSpace()},
	{"boolean", irs.Boolean{}},
	{"passage", irs.PassageModel{}},
}

var s8Queries = []string{"w001", "w002 w005", "www internet", "sgml markup dtd", "w017"}

// s8Fingerprint renders a collection's rankings — every model × every
// probe query — with exact score bits, sorted by document so equal
// index states produce equal strings.
func s8Fingerprint(col *irs.Collection) (string, error) {
	var sb strings.Builder
	for _, m := range s8Models {
		col.SetModel(m.Model)
		for _, q := range s8Queries {
			res, err := col.Search(q)
			if err != nil {
				return "", err
			}
			sort.Slice(res, func(i, j int) bool { return res[i].ExtID < res[j].ExtID })
			fmt.Fprintf(&sb, "%s/%q:", m.Name, q)
			for _, r := range res {
				sb.WriteString(" " + r.ExtID + "=" + strconv.FormatUint(math.Float64bits(r.Score), 16))
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String(), nil
}

// s8Out is one ingest variant's outcome.
type s8Out struct {
	elapsed time.Duration
	fp      string
	stats   wal.Stats
	hasWAL  bool
}

// s8Ingest loads the corpus into a fresh persistent system at dir.
// Synchronous mode flushes per document; asynchronous mode lets the
// background flusher group-commit. Drain is the acknowledged-durable
// point; with copyTo != "" the directory is cloned right after it —
// before Close writes any snapshot — as the recovery check's crash
// image.
func s8Ingest(dir string, corpus *workload.Corpus, async, noWAL bool, fsync, copyTo string) (*s8Out, error) {
	sys, err := docirs.OpenWith(dir, docirs.OpenOptions{NoWAL: noWAL, WALFsync: fsync})
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	dtd, err := sys.LoadDTD(workload.MMFDTD)
	if err != nil {
		return nil, err
	}
	policy := docirs.PropagateManually
	if async {
		policy = docirs.PropagateAsync
	}
	col, err := sys.CreateCollection("collPara", "ACCESS p FROM p IN PARA;",
		docirs.CollectionOptions{Policy: policy})
	if err != nil {
		return nil, err
	}
	out := &s8Out{}
	start := time.Now()
	for i := range corpus.Docs {
		if _, err := sys.LoadDocument(dtd, corpus.Docs[i].SGML); err != nil {
			return nil, err
		}
		if !async {
			if err := col.Flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := col.Drain(); err != nil {
		return nil, err
	}
	out.elapsed = time.Since(start)
	if out.fp, err = s8Fingerprint(col.IRS()); err != nil {
		return nil, err
	}
	out.stats, out.hasWAL = col.IRS().WALStats()
	if copyTo != "" {
		if err := copyDirAll(dir, copyTo); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// s8Recover restarts the crash image like a crashed server would —
// replaying the committed log onto the last snapshot (here: onto
// nothing, the image predates the first save) — and checks both the
// recovered rankings and the serving surface over them.
func s8Recover(dir, wantFP string, res *S8Result) error {
	sys, err := docirs.OpenWith(dir, docirs.OpenOptions{})
	if err != nil {
		return err
	}
	defer sys.Close()
	for _, rep := range sys.RecoveryReports() {
		res.RecoveredOps += rep.Replayed
	}
	col, err := sys.Collection("collPara")
	if err != nil {
		return err
	}
	fp, err := s8Fingerprint(col.IRS())
	if err != nil {
		return err
	}
	res.RecoveredSame = fp == wantFP

	// Serving surface: /stats carries the wal block, /metrics the
	// fsync-latency and appended-bytes series.
	srv := server.New(sys, server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	out, err := s7Call(ts, "GET", "/stats", nil)
	if err != nil {
		return err
	}
	colls, _ := out["collections"].(map[string]any)
	coll, _ := colls["collPara"].(map[string]any)
	wb, _ := coll["wal"].(map[string]any)
	enabled, _ := wb["enabled"].(bool)
	seq, _ := wb["seq"].(float64)
	bytes, _ := wb["bytes"].(float64)
	res.StatsWAL = enabled && seq > 0 && bytes > 0
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		return err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	body := string(raw)
	res.MetricsWAL = strings.Contains(body, "mmf_wal_fsync_seconds") &&
		strings.Contains(body, "mmf_wal_bytes_total")
	return nil
}

// copyDirAll clones a directory of plain files.
func copyDirAll(src, dst string) error {
	return filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
}

// RunS8 executes EXP-S8.
func RunS8(w io.Writer) (*S8Result, error) {
	root, err := os.MkdirTemp("", "exp-s8-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	cfg := workload.DefaultConfig()
	cfg.Docs = s8Docs
	corpus := workload.Generate(cfg)
	res := &S8Result{
		Docs:  len(corpus.Docs),
		Sync:  make(map[string]time.Duration),
		Async: make(map[string]time.Duration),
	}
	if paras := corpus.TotalParas(); paras < s8MinOps {
		return nil, fmt.Errorf("EXP-S8 corpus too small: %d paragraphs, want >= %d", paras, s8MinOps)
	}

	crash := filepath.Join(root, "crash")
	variants := []struct {
		phase string
		async bool
		noWAL bool
		fsync string
	}{
		{"sync", false, true, ""},
		{"sync", false, false, "group"},
		{"sync", false, false, "always"},
		{"async", true, true, ""},
		{"async", true, false, "group"},
		{"async", true, false, "always"},
	}
	var fps []string
	var groupStats wal.Stats
	for _, v := range variants {
		name := v.fsync
		if v.noWAL {
			name = "off"
		}
		copyTo := ""
		if v.phase == "sync" && name == "group" {
			copyTo = crash
		}
		out, err := s8Ingest(filepath.Join(root, fmt.Sprintf("%s-%s", v.phase, name)),
			corpus, v.async, v.noWAL, v.fsync, copyTo)
		if err != nil {
			return nil, fmt.Errorf("EXP-S8 %s/%s: %w", v.phase, name, err)
		}
		if v.phase == "sync" {
			res.Sync[name] = out.elapsed
		} else {
			res.Async[name] = out.elapsed
		}
		if copyTo != "" {
			groupStats = out.stats
		}
		fps = append(fps, out.fp)
	}
	res.WALBytes = groupStats.Bytes
	res.WALAppends = groupStats.Appends
	res.WALFsyncs = groupStats.Syncs
	res.RankingsSame = true
	for _, fp := range fps[1:] {
		if fp != fps[0] {
			res.RankingsSame = false
		}
	}
	if res.Sync["off"] > 0 {
		res.SyncOverhead = float64(res.Sync["group"]) / float64(res.Sync["off"])
	}
	if res.Async["off"] > 0 {
		res.AsyncOverhead = float64(res.Async["group"]) / float64(res.Async["off"])
	}

	if err := s8Recover(crash, fps[1], res); err != nil {
		return nil, fmt.Errorf("EXP-S8 recovery: %w", err)
	}

	tab := &Table{
		Title: fmt.Sprintf("EXP-S8: durable ingest — %d docs (%d paragraphs), per-doc commits (sync) and group commits (async) under three fsync policies",
			res.Docs, corpus.TotalParas()),
		Header: []string{"fsync", "sync ingest", "async ingest"},
	}
	for _, name := range []string{"off", "group", "always"} {
		tab.AddRow(name,
			fms(float64(res.Sync[name].Microseconds())/1000),
			fms(float64(res.Async[name].Microseconds())/1000))
	}
	tab.Fprint(w)
	fmt.Fprintf(w, "overhead: group/off sync %.2fx, async %.2fx (gate <= %.2fx); rankings identical across variants: %v\n",
		res.SyncOverhead, res.AsyncOverhead, s8OverheadSlack, res.RankingsSame)
	fmt.Fprintf(w, "wal (sync/group at drain): %d bytes, %d appends, %d fsyncs\n",
		res.WALBytes, res.WALAppends, res.WALFsyncs)
	fmt.Fprintf(w, "recovery: replayed %d ops (floor %d), rankings identical: %v; /stats wal block: %v, /metrics wal series: %v\n\n",
		res.RecoveredOps, s8MinOps, res.RecoveredSame, res.StatsWAL, res.MetricsWAL)

	if !res.RankingsSame {
		return res, fmt.Errorf("EXP-S8 gate tripped: rankings differ across durability variants")
	}
	if !res.RecoveredSame {
		return res, fmt.Errorf("EXP-S8 gate tripped: recovered rankings differ from the live system's")
	}
	if res.RecoveredOps < s8MinOps {
		return res, fmt.Errorf("EXP-S8 gate tripped: recovery replayed %d ops, want >= %d", res.RecoveredOps, s8MinOps)
	}
	if res.SyncOverhead > s8OverheadSlack {
		return res, fmt.Errorf("EXP-S8 gate tripped: sync group-fsync ingest %.2fx the WAL-off baseline (gate <= %.2fx)",
			res.SyncOverhead, s8OverheadSlack)
	}
	if res.AsyncOverhead > s8OverheadSlack {
		return res, fmt.Errorf("EXP-S8 gate tripped: async group-fsync ingest %.2fx the WAL-off baseline (gate <= %.2fx)",
			res.AsyncOverhead, s8OverheadSlack)
	}
	if !res.StatsWAL {
		return res, fmt.Errorf("EXP-S8 gate tripped: /stats wal block missing or empty")
	}
	if !res.MetricsWAL {
		return res, fmt.Errorf("EXP-S8 gate tripped: /metrics missing wal series")
	}
	return res, nil
}
