package eval

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/irs"
	"repro/internal/workload"
)

// EXP-S1 — sharded vs single-shard IRS engine. The paper's coupling
// reasons about update-propagation cost against a monolithic
// file-era inverted index; the sharded engine partitions the posting
// store by document hash so queries score shards in parallel and
// writers contend only on their own shard, while snapshot-isolated
// reads keep rankings consistent. This experiment measures the same
// query workload against a 1-shard and an n-shard collection — under
// parallel read-only clients and under a mixed read/write load — and
// verifies the rankings are identical, so the speedup is a pure
// engineering gain with no retrieval-quality cost.

// S1Result is the outcome of EXP-S1.
type S1Result struct {
	Shards            int
	Docs              int
	Queries           int
	RankingsIdentical bool
	SingleIndex       time.Duration
	ShardedIndex      time.Duration
	SingleRead        time.Duration // parallel read-only clients
	ShardedRead       time.Duration
	SingleMixed       time.Duration // readers racing a writer
	ShardedMixed      time.Duration
	ReadSpeedup       float64
	MixedSpeedup      float64
}

// s1Queries exercise every operator family over the planted topics.
var s1Queries = []string{
	"www",
	"#and(www nii)",
	"#or(nii #and(sgml markup))",
	"#wsum(2 www 1 video)",
	"#sum(www nii sgml video audio)",
	"#phrase(digital library)",
}

// RunS1 executes EXP-S1. shards <= 0 selects GOMAXPROCS (min 2, so
// the default always compares against a genuinely sharded index);
// explicit values, including the degenerate 1, are honored.
func RunS1(w io.Writer, shards int) (*S1Result, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
		if shards < 2 {
			shards = 2
		}
	}
	cfg := workload.DefaultConfig()
	cfg.Docs = 48
	corpus := workload.Generate(cfg)
	res := &S1Result{Shards: shards, Docs: len(corpus.Docs), Queries: len(s1Queries), RankingsIdentical: true}

	engine := irs.NewEngine()
	single, err := engine.CreateCollectionShards("single", nil, 1)
	if err != nil {
		return nil, err
	}
	sharded, err := engine.CreateCollectionShards("sharded", nil, shards)
	if err != nil {
		return nil, err
	}
	index := func(c *irs.Collection) (time.Duration, error) {
		return timeIt(func() error {
			for i := range corpus.Docs {
				if err := c.AddDocument(corpus.Docs[i].Name, corpus.Docs[i].SGML, nil); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if res.SingleIndex, err = index(single); err != nil {
		return nil, err
	}
	if res.ShardedIndex, err = index(sharded); err != nil {
		return nil, err
	}

	// Ranking equivalence: every query must return the identical
	// ranking — same documents, same order, bit-equal scores.
	for _, q := range s1Queries {
		r1, err := single.Search(q)
		if err != nil {
			return nil, err
		}
		rn, err := sharded.Search(q)
		if err != nil {
			return nil, err
		}
		if len(r1) != len(rn) {
			res.RankingsIdentical = false
			continue
		}
		for i := range r1 {
			if r1[i] != rn[i] {
				res.RankingsIdentical = false
				break
			}
		}
	}

	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	const rounds = 12
	readLoad := func(c *irs.Collection) (time.Duration, error) {
		return timeIt(func() error {
			var wg sync.WaitGroup
			errc := make(chan error, workers)
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						for _, q := range s1Queries {
							if _, err := c.Search(q); err != nil {
								errc <- err
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			close(errc)
			return <-errc
		})
	}
	if res.SingleRead, err = readLoad(single); err != nil {
		return nil, err
	}
	if res.ShardedRead, err = readLoad(sharded); err != nil {
		return nil, err
	}

	// Mixed load: the same readers racing one writer that keeps
	// re-indexing documents (snapshot isolation keeps each ranking
	// consistent; per-shard locks keep readers off the writer's
	// back).
	mixedLoad := func(c *irs.Collection) (time.Duration, error) {
		stop := make(chan struct{})
		var werr error
		var wwg sync.WaitGroup
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				doc := &corpus.Docs[i%len(corpus.Docs)]
				if err := c.UpdateDocument(doc.Name, doc.SGML, nil); err != nil {
					werr = err
					return
				}
			}
		}()
		d, err := readLoad(c)
		close(stop)
		wwg.Wait()
		if err == nil {
			err = werr
		}
		return d, err
	}
	if res.SingleMixed, err = mixedLoad(single); err != nil {
		return nil, err
	}
	if res.ShardedMixed, err = mixedLoad(sharded); err != nil {
		return nil, err
	}
	if res.ShardedRead > 0 {
		res.ReadSpeedup = float64(res.SingleRead) / float64(res.ShardedRead)
	}
	if res.ShardedMixed > 0 {
		res.MixedSpeedup = float64(res.SingleMixed) / float64(res.ShardedMixed)
	}

	tab := &Table{
		Title: fmt.Sprintf("EXP-S1: sharded (%d) vs single-shard engine, %d docs, %d queries × %d rounds × %d clients",
			shards, res.Docs, res.Queries, rounds, workers),
		Header: []string{"configuration", "index", "parallel read", "mixed read/write"},
	}
	tab.AddRow("single-shard",
		fms(float64(res.SingleIndex.Microseconds())/1000),
		fms(float64(res.SingleRead.Microseconds())/1000),
		fms(float64(res.SingleMixed.Microseconds())/1000))
	tab.AddRow(fmt.Sprintf("%d shards", shards),
		fms(float64(res.ShardedIndex.Microseconds())/1000),
		fms(float64(res.ShardedRead.Microseconds())/1000),
		fms(float64(res.ShardedMixed.Microseconds())/1000))
	tab.AddRow("speedup", "-",
		fmt.Sprintf("%.2fx", res.ReadSpeedup),
		fmt.Sprintf("%.2fx", res.MixedSpeedup))
	tab.Fprint(w)
	fmt.Fprintf(w, "rankings identical across shard counts: %v\n\n", res.RankingsIdentical)
	return res, nil
}
