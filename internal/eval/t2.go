package eval

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/vql"
	"repro/internal/workload"
)

// EXP-T2 — Section 4.5.3: evaluation strategies for mixed queries.
// The benchmark query restricts documents structurally (by year
// and/or kind, varying selectivity) and paragraphs by content. Both
// strategies are timed cold (buffer flushed) and warm:
//
//	independent — alternative (1): "The query portions are processed
//	independently by the corresponding system, and the results are
//	combined";
//	irs-first   — alternative (2): "The IRS selects all IRS
//	documents fulfilling the conditions on the content. The
//	structure conditions are only verified for the text objects
//	identified in this first step."

// T2Row is one (selectivity, strategy) measurement.
type T2Row struct {
	Filter      string
	Selectivity float64 // fraction of documents passing the filter
	Strategy    string
	Cold, Warm  time.Duration
	Rows        int
	IRSEvals    int64
}

// T2Result is the outcome of EXP-T2.
type T2Result struct {
	Rows []T2Row
}

// RunT2 executes EXP-T2.
func RunT2(w io.Writer) (*T2Result, error) {
	cfg := workload.DefaultConfig()
	cfg.Docs = 60
	s, err := NewSetup(cfg)
	if err != nil {
		return nil, err
	}
	coll, err := s.NewCollection("collPara", "ACCESS p FROM p IN PARA;", core.Options{})
	if err != nil {
		return nil, err
	}
	filters := []struct {
		name string
		cond string // structural condition on d
	}{
		{"none (100%)", ""},
		{"year", `d -> getAttributeValue('YEAR') = '1994'`},
		{"year+kind", `d -> getAttributeValue('YEAR') = '1994' AND d -> getAttributeValue('KIND') = 'report'`},
	}
	content := `p -> getContaining('MMFDOC') == d AND p -> getIRSValue(collPara, 'www') > 0.45`
	res := &T2Result{}
	for _, f := range filters {
		where := content
		if f.cond != "" {
			where = f.cond + " AND " + content
		}
		src := "ACCESS d FROM d IN MMFDOC, p IN PARA WHERE " + where + ";"
		// Structural selectivity measured directly.
		sel := 1.0
		if f.cond != "" {
			rs, err := s.Coupling.Evaluator().Run("ACCESS d FROM d IN MMFDOC WHERE " + f.cond + ";")
			if err != nil {
				return nil, err
			}
			sel = float64(len(rs.Rows)) / float64(len(s.DocOIDs))
		}
		for _, strat := range []vql.Strategy{vql.StrategyIndependent, vql.StrategyIRSFirst} {
			ev := s.Coupling.Evaluator()
			row := T2Row{Filter: f.name, Selectivity: sel, Strategy: strat.String()}
			coll.InvalidateBuffer()
			base := coll.Stats().Snapshot().IRSSearches
			cold, err := timeIt(func() error {
				rs, err := ev.RunWithStrategy(src, strat)
				if err != nil {
					return err
				}
				row.Rows = len(rs.Rows)
				return nil
			})
			if err != nil {
				return nil, err
			}
			row.Cold = cold
			warm, err := timeIt(func() error {
				_, err := ev.RunWithStrategy(src, strat)
				return err
			})
			if err != nil {
				return nil, err
			}
			row.Warm = warm
			row.IRSEvals = coll.Stats().Snapshot().IRSSearches - base
			res.Rows = append(res.Rows, row)
		}
	}

	tab := &Table{
		Title:  "EXP-T2 (Section 4.5.3): mixed-query evaluation strategies",
		Header: []string{"structural filter", "sel", "strategy", "cold", "warm", "rows", "IRS evals"},
	}
	for _, r := range res.Rows {
		tab.AddRow(r.Filter, fnum(r.Selectivity), r.Strategy,
			fms(float64(r.Cold.Microseconds())/1000),
			fms(float64(r.Warm.Microseconds())/1000),
			fmt.Sprint(r.Rows), fmt.Sprint(r.IRSEvals))
	}
	tab.Fprint(w)
	return res, nil
}
