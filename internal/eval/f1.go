package eval

import (
	"fmt"
	"io"
	"time"

	"repro/internal/archcmp"
	"repro/internal/core"
	"repro/internal/vql"
	"repro/internal/workload"
)

// EXP-F1 — Figure 1 / Section 3: the three loose-coupling
// architectures on the same corpus and mixed-query workload.
//
// Paper claims reproduced: all three can answer the benchmark query
// family identically; the DBMS-as-control architecture keeps full
// declarative expressiveness, reuses buffered IRS results across
// queries, and gets DBMS features "for free", while the control
// module's expressiveness "depends on the capacity of the control
// module" and the IRS-as-control architecture needs per-object
// callbacks.

// F1ArchResult carries one architecture's measurements.
type F1ArchResult struct {
	Name         string
	ColdTotal    time.Duration
	WarmTotal    time.Duration
	Results      int
	IRSSearches  int64
	Capabilities archcmp.Capabilities
}

// F1Result is the outcome of EXP-F1.
type F1Result struct {
	Arch    []F1ArchResult
	Queries int
}

// ByName returns an architecture's result row.
func (r *F1Result) ByName(name string) *F1ArchResult {
	for i := range r.Arch {
		if r.Arch[i].Name == name {
			return &r.Arch[i]
		}
	}
	return nil
}

// RunF1 executes EXP-F1.
func RunF1(w io.Writer) (*F1Result, error) {
	cfg := workload.DefaultConfig()
	s, err := NewSetup(cfg)
	if err != nil {
		return nil, err
	}
	coll, err := s.NewCollection("collPara", "ACCESS p FROM p IN PARA;", core.Options{})
	if err != nil {
		return nil, err
	}
	archs := []archcmp.Architecture{
		&archcmp.DBMSControl{Coupling: s.Coupling, CollectionName: "collPara", Strategy: vql.StrategyAuto},
		&archcmp.ControlModule{DB: s.DB, Store: s.Store, IRSColl: coll.IRS()},
		&archcmp.IRSControl{DB: s.DB, IRSColl: coll.IRS()},
	}
	var queries []archcmp.MixedQuery
	for _, year := range []string{"1992", "1993", "1994", "1995"} {
		for _, t := range cfg.Topics {
			queries = append(queries, archcmp.MixedQuery{
				Year: year, IRSQuery: workload.QueryForTopic(t), Threshold: 0.45,
			})
		}
	}
	res := &F1Result{Queries: len(queries)}
	for _, a := range archs {
		coll.InvalidateBuffer()
		base := coll.Stats().Snapshot().IRSSearches
		ar := F1ArchResult{Name: a.Name(), Capabilities: a.Capabilities()}
		cold, err := timeIt(func() error {
			for _, q := range queries {
				got, err := a.Run(q)
				if err != nil {
					return err
				}
				ar.Results += len(got)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		ar.ColdTotal = cold
		warm, err := timeIt(func() error {
			for _, q := range queries {
				if _, err := a.Run(q); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		ar.WarmTotal = warm
		if a.Name() == "dbms-control" {
			// Coupling-routed searches are counted by the stats.
			ar.IRSSearches = coll.Stats().Snapshot().IRSSearches - base
		} else {
			// The other architectures bypass the coupling and ask
			// the IRS once per Run by construction.
			ar.IRSSearches = int64(2 * len(queries))
		}
		res.Arch = append(res.Arch, ar)
	}

	tab := &Table{
		Title:  "EXP-F1 (Figure 1): coupling architectures, " + fmt.Sprint(len(queries)) + " mixed queries",
		Header: []string{"architecture", "cold", "warm", "results", "IRS evals", "declarative", "struct-joins", "buffering", "dbms-free", "no-kernel-mods"},
	}
	for _, ar := range res.Arch {
		tab.AddRow(ar.Name,
			fms(float64(ar.ColdTotal.Microseconds())/1000),
			fms(float64(ar.WarmTotal.Microseconds())/1000),
			fmt.Sprint(ar.Results),
			fmt.Sprint(ar.IRSSearches),
			yn(ar.Capabilities.DeclarativeMixedQueries),
			yn(ar.Capabilities.StructuralJoins),
			yn(ar.Capabilities.ResultBuffering),
			yn(ar.Capabilities.DBMSFeaturesForFree),
			yn(ar.Capabilities.NoKernelChanges))
	}
	tab.Fprint(w)
	return res, nil
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
