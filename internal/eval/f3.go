package eval

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/derive"
	"repro/internal/workload"
)

// EXP-F3 — Figure 3 / Section 4.5: the content-query processing flow
// with the persistent IRS-result buffer. A Zipf-repeating query
// stream runs once with the buffer enabled and once without;
// inter-query savings show as a reduced IRS evaluation count. The
// intra-query effect is measured separately: one document-level
// derivation with the query-aware scheme probes the same subquery
// result once per component, which the buffer collapses into a
// single IRS evaluation per subquery.

// F3Result is the outcome of EXP-F3.
type F3Result struct {
	Queries            int
	Distinct           int
	BufferedTotal      time.Duration
	UnbufferedTotal    time.Duration
	BufferedSearches   int64
	UnbufferedSearches int64
	HitRate            float64
	// IntraQuerySearches: IRS evaluations for ONE derived
	// document value under the query-aware scheme (buffer on);
	// equals 1 + number of subqueries when buffering works.
	IntraQuerySearches int64
	IntraQueryProbes   int64 // component probes served
}

// RunF3 executes EXP-F3.
func RunF3(w io.Writer) (*F3Result, error) {
	cfg := workload.DefaultConfig()
	s, err := NewSetup(cfg)
	if err != nil {
		return nil, err
	}
	coll, err := s.NewCollection("collPara", "ACCESS p FROM p IN PARA;", core.Options{})
	if err != nil {
		return nil, err
	}
	// Query pool: topic terms and pairs.
	var pool []string
	for _, t := range cfg.Topics {
		pool = append(pool, t.Terms...)
	}
	for i := 0; i+1 < len(cfg.Topics); i++ {
		pool = append(pool, workload.AndQuery(cfg.Topics[i], cfg.Topics[i+1]))
	}
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.3, 1.0, uint64(len(pool)-1))
	const streamLen = 400
	stream := make([]string, streamLen)
	for i := range stream {
		stream[i] = pool[zipf.Uint64()]
	}

	res := &F3Result{Queries: streamLen, Distinct: len(pool)}
	run := func() error {
		for _, q := range stream {
			if _, err := coll.GetIRSResult(q); err != nil {
				return err
			}
		}
		return nil
	}
	// Buffered pass.
	coll.InvalidateBuffer()
	base := coll.Stats().Snapshot()
	res.BufferedTotal, err = timeIt(run)
	if err != nil {
		return nil, err
	}
	after := coll.Stats().Snapshot()
	res.BufferedSearches = after.IRSSearches - base.IRSSearches
	hits := after.BufferHits - base.BufferHits
	res.HitRate = float64(hits) / float64(streamLen)

	// Unbuffered pass.
	coll.SetBufferEnabled(false)
	base = coll.Stats().Snapshot()
	res.UnbufferedTotal, err = timeIt(run)
	if err != nil {
		return nil, err
	}
	res.UnbufferedSearches = coll.Stats().Snapshot().IRSSearches - base.IRSSearches
	coll.SetBufferEnabled(true)

	// Intra-query effect: derive one document's value with the
	// query-aware scheme; every paragraph probes the same subquery
	// results.
	coll.SetDeriver(derive.QueryAware{})
	coll.InvalidateBuffer()
	base = coll.Stats().Snapshot()
	doc := s.DocOIDs[0]
	if _, err := coll.FindIRSValue(workload.AndQuery(cfg.Topics[0], cfg.Topics[1]), doc); err != nil {
		return nil, err
	}
	after = coll.Stats().Snapshot()
	res.IntraQuerySearches = after.IRSSearches - base.IRSSearches
	res.IntraQueryProbes = (after.BufferHits - base.BufferHits) + (after.BufferMisses - base.BufferMisses)

	tab := &Table{
		Title:  "EXP-F3 (Figure 3): persistent IRS-result buffer",
		Header: []string{"configuration", "queries", "IRS evals", "total", "hit rate"},
	}
	tab.AddRow("buffer on", fmt.Sprint(res.Queries), fmt.Sprint(res.BufferedSearches),
		fms(float64(res.BufferedTotal.Microseconds())/1000), fnum(res.HitRate))
	tab.AddRow("buffer off", fmt.Sprint(res.Queries), fmt.Sprint(res.UnbufferedSearches),
		fms(float64(res.UnbufferedTotal.Microseconds())/1000), "-")
	tab.Fprint(w)
	fmt.Fprintf(w, "intra-query: one query-aware derivation probed the buffer %d times, costing only %d IRS evaluations\n\n",
		res.IntraQueryProbes, res.IntraQuerySearches)
	return res, nil
}
