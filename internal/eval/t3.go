package eval

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// EXP-T3 — Section 4.5.4: IRS operators as collection methods. A
// conjunctive query can be computed (a) by the IRS as a composite
// query, or (b) by the OODBMS combining the operands' buffered
// results with IRSOperatorAND. When the operand buffers are warm the
// OODBMS-side combination avoids the IRS evaluation entirely —
// "particularly appealing" in the paper's words. The experiment also
// verifies the prerequisite: "a precise knowledge of the
// IRS-operators' semantics" makes both placements produce identical
// values.

// T3Result is the outcome of EXP-T3.
type T3Result struct {
	Pairs          int
	IRSSideTotal   time.Duration
	DBSideTotal    time.Duration
	IRSSideEvals   int64
	DBSideEvals    int64 // IRS evaluations during OODBMS-side combination (warm: 0)
	MaxValueDelta  float64
	CandidateMatch bool
}

// RunT3 executes EXP-T3.
func RunT3(w io.Writer) (*T3Result, error) {
	cfg := workload.DefaultConfig()
	s, err := NewSetup(cfg)
	if err != nil {
		return nil, err
	}
	coll, err := s.NewCollection("collPara", "ACCESS p FROM p IN PARA;", core.Options{})
	if err != nil {
		return nil, err
	}
	// Operand pairs from the topic set.
	var pairs [][2]string
	for i := 0; i < len(cfg.Topics); i++ {
		for j := i + 1; j < len(cfg.Topics); j++ {
			pairs = append(pairs, [2]string{
				workload.QueryForTopic(cfg.Topics[i]),
				workload.QueryForTopic(cfg.Topics[j]),
			})
		}
	}
	res := &T3Result{Pairs: len(pairs), CandidateMatch: true}

	// Warm the operand buffers (intermediate results "already known
	// because they have been buffered as the result of previous
	// query evaluations").
	for _, p := range pairs {
		if _, err := coll.GetIRSResult(p[0]); err != nil {
			return nil, err
		}
		if _, err := coll.GetIRSResult(p[1]); err != nil {
			return nil, err
		}
	}

	// (a) IRS-side composite evaluation, bypassing the buffer (the
	// composite is new to the IRS each time).
	irsResults := make([]map[string]float64, len(pairs))
	base := coll.Stats().Snapshot().IRSSearches
	irsTotal, err := timeIt(func() error {
		for i, p := range pairs {
			rs, err := coll.IRS().Search(fmt.Sprintf("#and(%s %s)", p[0], p[1]))
			if err != nil {
				return err
			}
			m := make(map[string]float64, len(rs))
			for _, r := range rs {
				m[r.ExtID] = r.Score
			}
			irsResults[i] = m
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.IRSSideTotal = irsTotal
	res.IRSSideEvals = int64(len(pairs)) // engine-level searches by construction
	_ = base

	// (b) OODBMS-side combination over the warm buffers.
	dbResults := make([]map[string]float64, len(pairs))
	base = coll.Stats().Snapshot().IRSSearches
	dbTotal, err := timeIt(func() error {
		for i, p := range pairs {
			m, err := coll.IRSOperatorAND(p[0], p[1])
			if err != nil {
				return err
			}
			out := make(map[string]float64, len(m))
			for oid, v := range m {
				out[oid.String()] = v
			}
			dbResults[i] = out
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.DBSideTotal = dbTotal
	res.DBSideEvals = coll.Stats().Snapshot().IRSSearches - base

	// Equivalence check.
	for i := range pairs {
		if len(irsResults[i]) != len(dbResults[i]) {
			res.CandidateMatch = false
		}
		for ext, v := range irsResults[i] {
			d := math.Abs(dbResults[i][ext] - v)
			if d > res.MaxValueDelta {
				res.MaxValueDelta = d
			}
		}
	}

	tab := &Table{
		Title:  "EXP-T3 (Section 4.5.4): operator placement for conjunctions",
		Header: []string{"placement", "pairs", "total", "IRS evals", "max value delta"},
	}
	tab.AddRow("IRS composite query", fmt.Sprint(res.Pairs),
		fms(float64(res.IRSSideTotal.Microseconds())/1000),
		fmt.Sprint(res.IRSSideEvals), "-")
	tab.AddRow("OODBMS IRSOperatorAND (warm buffers)", fmt.Sprint(res.Pairs),
		fms(float64(res.DBSideTotal.Microseconds())/1000),
		fmt.Sprint(res.DBSideEvals), fnum(res.MaxValueDelta))
	tab.Fprint(w)
	fmt.Fprintf(w, "candidate sets identical: %v\n\n", res.CandidateMatch)
	return res, nil
}
