package eval

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/docmodel"
	"repro/internal/workload"
)

// EXP-F2 — Figure 2 / Section 4.3: the modeling of COLLECTION
// instances over IRS collections and IRSObject instances over IRS
// documents. Two overlapping collections are created over one
// corpus: a paragraph collection carrying full paragraph text and a
// document collection carrying abstracts (different getText modes of
// the same object base). The experiment verifies the mapping
// restriction "Each IRS document is assigned exactly one object. An
// object can be assigned to more than one IRS document." and
// measures the text volumes each choice stores.

// F2CollResult describes one collection's mapping footprint.
type F2CollResult struct {
	Name        string
	TextMode    int
	IRSDocs     int
	IndexBytes  int64
	TextBytes   int64 // volume of text handed to the IRS
	Granularity string
}

// F2Result is the outcome of EXP-F2.
type F2Result struct {
	Collections []F2CollResult
	// MappingValid: every IRS document maps back to exactly one
	// object OID.
	MappingValid bool
	// SharedQueryDisagrees: the same IRS query returns different
	// granularity objects from the two collections.
	SharedQueryDisagrees bool
	CorpusTextBytes      int64
}

// RunF2 executes EXP-F2.
func RunF2(w io.Writer) (*F2Result, error) {
	cfg := workload.DefaultConfig()
	s, err := NewSetup(cfg)
	if err != nil {
		return nil, err
	}
	collPara, err := s.NewCollection("collPara", "ACCESS p FROM p IN PARA;",
		core.Options{TextMode: docmodel.ModeFullText})
	if err != nil {
		return nil, err
	}
	collDoc, err := s.NewCollection("collDoc", "ACCESS d FROM d IN MMFDOC;",
		core.Options{TextMode: docmodel.ModeAbstract})
	if err != nil {
		return nil, err
	}

	res := &F2Result{MappingValid: true, CorpusTextBytes: s.Corpus.TextBytes()}
	for _, entry := range []struct {
		col   *core.Collection
		gran  string
		class string
	}{
		{collPara, "paragraph", "PARA"},
		{collDoc, "document(abstract)", "MMFDOC"},
	} {
		ix := entry.col.IRS().Index()
		var textBytes int64
		for _, id := range ix.LiveDocIDs() {
			ext, ok := ix.ExtID(id)
			if !ok {
				res.MappingValid = false
				continue
			}
			oid, err := parseOID(ext)
			if err != nil || !s.DB.Exists(oid) {
				res.MappingValid = false
			}
			// Meta carries the owning OID (Section 4.3's restriction
			// implemented by storing the OID with each IRS document).
			if m, ok := ix.Meta(id, "oid"); !ok || m != ext {
				res.MappingValid = false
			}
			textBytes += int64(len(s.Store.Text(oid, entry.col.TextMode())))
		}
		res.Collections = append(res.Collections, F2CollResult{
			Name:        entry.col.Name(),
			TextMode:    entry.col.TextMode(),
			IRSDocs:     entry.col.DocCount(),
			IndexBytes:  entry.col.IRS().SizeBytes(),
			TextBytes:   textBytes,
			Granularity: entry.gran,
		})
	}

	// The same content query against both collections returns
	// objects of different classes (paragraphs vs documents).
	paraRes, err := collPara.GetIRSResult("www")
	if err != nil {
		return nil, err
	}
	docRes, err := collDoc.GetIRSResult("www")
	if err != nil {
		return nil, err
	}
	paraIsPara, docIsDoc := true, true
	for oid := range paraRes {
		if s.Store.TypeOf(oid) != "PARA" {
			paraIsPara = false
		}
	}
	for oid := range docRes {
		if s.Store.TypeOf(oid) != "MMFDOC" {
			docIsDoc = false
		}
	}
	res.SharedQueryDisagrees = paraIsPara && docIsDoc && len(paraRes) != len(docRes)

	tab := &Table{
		Title:  "EXP-F2 (Figure 2): overlapping collections over one object base",
		Header: []string{"collection", "granularity", "IRS docs", "index bytes", "text bytes", "text/corpus"},
	}
	for _, c := range res.Collections {
		tab.AddRow(c.Name, c.Granularity, fmt.Sprint(c.IRSDocs),
			fmt.Sprint(c.IndexBytes), fmt.Sprint(c.TextBytes),
			fnum(float64(c.TextBytes)/float64(res.CorpusTextBytes)))
	}
	tab.Fprint(w)
	fmt.Fprintf(w, "mapping IRSdoc->object valid: %v; same query, different granularity: %v\n\n",
		res.MappingValid, res.SharedQueryDisagrees)
	return res, nil
}
