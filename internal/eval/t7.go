package eval

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/irs"
	"repro/internal/workload"
)

// EXP-T7 — Section 3: exchangeability of the retrieval paradigm.
// "Exchangeability enables us to use any kind of retrieval system:
// e.g. boolean retrieval systems, vector retrieval systems, and
// systems based on probability." The same corpus, collection
// definition and queries run under all three models; nothing in the
// coupling changes except the Model option. The table contrasts
// result-set sizes, ranking quality against planted paragraphs, and
// whether the paradigm ranks at all.

// T7Row is one paradigm's measurements.
type T7Row struct {
	Model        string
	Results      int // total results over the query set
	P10, MAP     float64
	Ranks        bool // produces graded scores (uncertainty)
	DistinctVals int  // distinct score values over the query set
}

// T7Result is the outcome of EXP-T7.
type T7Result struct {
	Rows []T7Row
}

// Row returns a paradigm's measurements.
func (r *T7Result) Row(model string) *T7Row {
	for i := range r.Rows {
		if r.Rows[i].Model == model {
			return &r.Rows[i]
		}
	}
	return nil
}

// RunT7 executes EXP-T7.
func RunT7(w io.Writer) (*T7Result, error) {
	cfg := workload.DefaultConfig()
	res := &T7Result{}
	models := []irs.Model{irs.InferenceNet{}, irs.NewVectorSpace(), irs.Boolean{}}
	for _, model := range models {
		s, err := NewSetup(cfg)
		if err != nil {
			return nil, err
		}
		coll, err := s.NewCollection("collPara", "ACCESS p FROM p IN PARA;",
			core.Options{Model: model})
		if err != nil {
			return nil, err
		}
		row := T7Row{Model: model.Name()}
		distinct := make(map[float64]bool)
		var p10, mapSum float64
		for _, topic := range cfg.Topics {
			q := workload.QueryForTopic(topic)
			scores, err := coll.GetIRSResult(q)
			if err != nil {
				return nil, err
			}
			row.Results += len(scores)
			for _, v := range scores {
				distinct[v] = true
			}
			ranked := rankOIDs(scores)
			rel := s.RelevantParaOIDs(topic.Name)
			p10 += precisionAtK(ranked, rel, 10)
			mapSum += averagePrecision(ranked, rel)
		}
		n := float64(len(cfg.Topics))
		row.P10 = p10 / n
		row.MAP = mapSum / n
		row.DistinctVals = len(distinct)
		row.Ranks = row.DistinctVals > 2
		res.Rows = append(res.Rows, row)
	}

	tab := &Table{
		Title:  "EXP-T7 (Section 3): exchangeable retrieval paradigms",
		Header: []string{"model", "results", "para P@10", "para MAP", "graded scores", "distinct values"},
	}
	for _, r := range res.Rows {
		tab.AddRow(r.Model, fmt.Sprint(r.Results), fnum(r.P10), fnum(r.MAP),
			yn(r.Ranks), fmt.Sprint(r.DistinctVals))
	}
	tab.Fprint(w)
	return res, nil
}
