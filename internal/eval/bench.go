package eval

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	docirs "repro"
	"repro/internal/core"
	"repro/internal/irs"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/workload"
)

// benchHotDocs is the size of the planted hot-shard block in
// RunBench's corpus. Big enough that the hot terms seal at least one
// compressed block per posting list (codec.BlockSize = 128 docs) in
// shard 0.
const benchHotDocs = 150

// BenchReport is the machine-readable perf snapshot one PR commits as
// BENCH_<pr>.json. Successive reports form the repo's perf
// trajectory; CI diffs each new report against the previous one and
// fails on regressions beyond tolerance (warn-only when no previous
// report exists).
type BenchReport struct {
	PR         int    `json:"pr"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Benchmarks holds testing.Benchmark results per micro-benchmark.
	Benchmarks map[string]BenchResult `json:"benchmarks"`
	// TopK carries the pruning effectiveness of the streaming engine
	// measured over the top-k benchmark's evaluations.
	TopK TopKRates `json:"topk"`
	// StageLatency digests the mmf_stage_seconds histogram series
	// (topk_seed/topk_finish/topk_merge, analyze/commit_batch)
	// recorded while the benchmarks ran.
	StageLatency map[string]obs.Summary `json:"stage_latency"`
	// ObsOverheadPct is the measured ns/op cost of leaving the obs
	// layer enabled on the top-k search path, as a percentage
	// (A/B with obs.SetEnabled(false); target ≤ 3).
	ObsOverheadPct float64 `json:"obs_overhead_pct"`
	// Mapped carries the mmap serving numbers (AddMappedBench); nil in
	// reports taken before the v5 zero-copy path existed, so diffs
	// against old snapshots keep working.
	Mapped *MappedBench `json:"mapped,omitempty"`
	// Serving carries the adaptive-serving numbers (AddServingBench):
	// query-cache hit rate per policy and the 2Q cache's discarded
	// rebuild cost over a fixed zipfian stream, plus the adaptive
	// coalescing window observed under an ingest burst. Nil in reports
	// taken before the cost-aware cache existed.
	Serving *ServingBench `json:"serving,omitempty"`
	// Durability carries the write-ahead-log numbers
	// (AddDurabilityBench): synchronous per-document ingest under each
	// fsync policy, the log's size/append/fsync shape, and the cost of
	// recovering by replay. Nil in reports taken before the WAL
	// existed.
	Durability *DurabilityBench `json:"durability,omitempty"`
}

// DurabilityBench is the perf snapshot of the durable ingest path: a
// fixed corpus committed document by document under each WAL fsync
// policy, and a crash image of the group run recovered by replay
// alone. Elapsed numbers carry timing noise — trajectory signal, not
// gates (EXP-S8 gates the overhead with slack).
type DurabilityBench struct {
	Docs          int     `json:"docs"`
	SyncOffMs     float64 `json:"sync_ingest_off_ms"`
	SyncGroupMs   float64 `json:"sync_ingest_group_ms"`
	SyncAlwaysMs  float64 `json:"sync_ingest_always_ms"`
	GroupOverhead float64 `json:"group_overhead"` // group/off elapsed ratio
	WALBytes      int64   `json:"wal_bytes"`
	WALAppends    int64   `json:"wal_appends"`
	WALFsyncs     int64   `json:"wal_fsyncs"`
	RecoveredOps  int     `json:"recovered_ops"`
	RecoveryMs    float64 `json:"recovery_ms"` // crash-image open incl. replay
}

// ServingBench is the perf snapshot of the adaptive serving layer.
// The hit rates are deterministic (fixed stream, fixed corpus); the
// evicted cost is measured rebuild seconds and so carries timing
// noise — it is trajectory signal, not a gate.
type ServingBench struct {
	CacheRequests           int                `json:"cache_requests"`
	CacheHitRate            map[string]float64 `json:"cache_hit_rate"`
	CacheEvictedCostSeconds float64            `json:"cache_evicted_cost_seconds"`
	CoalesceWindowMs        float64            `json:"coalesce_window_ms"`
}

// MappedBench is the perf snapshot of the v5 mmap serving path: cold
// open of one persisted collection on the heap vs mapped, plus the
// residency split the mapped open reports. The steady-state mapped
// search cost rides in Benchmarks["search_topk10_mapped"] so the
// regular diff tolerance applies to it.
type MappedBench struct {
	FileBytes    int64   `json:"file_bytes"`
	OpenHeapNs   float64 `json:"open_heap_ns"`
	OpenMappedNs float64 `json:"open_mapped_ns"`
	OpenSpeedup  float64 `json:"open_speedup"`
	MappedBytes  int64   `json:"mapped_bytes"`
	HeapBytes    int64   `json:"heap_bytes"`
}

// BenchResult is one benchmark's steady-state cost.
type BenchResult struct {
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// TopKRates summarizes MaxScore pruning over a benchmark run.
type TopKRates struct {
	Queries       int64   `json:"queries"`
	Scored        int64   `json:"candidates_scored"`
	Pruned        int64   `json:"candidates_pruned"`
	PruneRate     float64 `json:"prune_rate"`
	ShardsSkipped int64   `json:"shards_skipped"`
	SkippedPerQ   float64 `json:"shards_skipped_per_query"`
	// Block-max counters: compressed posting blocks whose payloads
	// stayed unexpanded through evaluations vs postings whose payloads
	// were decoded for scoring.
	BlocksSkipped   int64 `json:"blocks_skipped"`
	PostingsDecoded int64 `json:"postings_decoded"`
}

func benchResult(r testing.BenchmarkResult) BenchResult {
	return BenchResult{
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// RunBench measures the coupling's hot paths with testing.Benchmark
// and assembles the BenchReport. The benchmarks run at engine/core
// level (no HTTP) so the numbers isolate the reproduction's own code.
func RunBench(w io.Writer, pr int) (*BenchReport, error) {
	// A corpus large enough for MaxScore pruning to engage (the
	// 40-doc default leaves nothing to prune at k=10), sharded like
	// the serving configuration so the seed/finish phases and the
	// cross-shard threshold all run; floor 2 shards on single-CPU
	// machines for the same reason S4 floors its shard count.
	cfg := workload.DefaultConfig()
	cfg.Docs = 400
	shards := runtime.GOMAXPROCS(0)
	if shards < 2 {
		shards = 2
	}
	s, err := NewSetup(cfg)
	if err != nil {
		return nil, err
	}
	s.Engine.SetDefaultShards(shards)
	col, err := s.NewCollection("collPara", "ACCESS p FROM p IN PARA;", core.Options{})
	if err != nil {
		return nil, err
	}
	// Shard skew is what the cross-shard threshold exploits (without
	// it BENCH reports shards_skipped = 0 and the two-phase scheduler
	// idles): plant a hot-topic block whose external ids all hash into
	// shard 0, like EXP-S4/S5. The ids are synthetic OIDs far beyond
	// the corpus range so the result mapping still parses them, and
	// the block is large enough (> codec.BlockSize postings per hot
	// term) for the hot shard's posting lists to seal compressed
	// blocks, exercising block-max skipping too.
	hotText := strings.Repeat("www nii codec video highway ", 8)
	for i, added := uint64(0), 0; added < benchHotDocs; i++ {
		name := fmt.Sprintf("oid%d", 1<<40+i)
		if irs.ShardForExtID(name, shards) != 0 {
			continue
		}
		if err := col.IRS().AddDocument(name, hotText, nil); err != nil {
			return nil, err
		}
		added++
	}

	rep := &BenchReport{
		PR:         pr,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: make(map[string]BenchResult),
	}
	// benchErr carries op failures out of the measured closures:
	// b.Fatal cannot be used here — testing.Benchmark outside a test
	// binary has no harness to log through.
	var benchErr error

	// Streaming top-k (k never buffers, so every iteration evaluates).
	tk0 := col.IRS().TopKStats()
	rep.Benchmarks["search_topk10"] = benchResult(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := col.GetIRSResultTopK("#sum(www nii sgml video codec highway)", 10); err != nil {
				benchErr = err
				return
			}
		}
	}))
	if benchErr != nil {
		return nil, benchErr
	}
	tk1 := col.IRS().TopKStats()
	rep.TopK = TopKRates{
		Queries:         tk1.Queries - tk0.Queries,
		Scored:          tk1.Scored - tk0.Scored,
		Pruned:          tk1.Pruned - tk0.Pruned,
		ShardsSkipped:   tk1.ShardsSkipped - tk0.ShardsSkipped,
		BlocksSkipped:   tk1.BlocksSkipped - tk0.BlocksSkipped,
		PostingsDecoded: tk1.PostingsDecoded - tk0.PostingsDecoded,
	}
	if n := rep.TopK.Scored + rep.TopK.Pruned; n > 0 {
		rep.TopK.PruneRate = float64(rep.TopK.Pruned) / float64(n)
	}
	if rep.TopK.Queries > 0 {
		rep.TopK.SkippedPerQ = float64(rep.TopK.ShardsSkipped) / float64(rep.TopK.Queries)
	}

	// Buffered exhaustive search: steady state of the paper's
	// persistent result buffer (first call evaluates and buffers, the
	// measured iterations hit the buffer).
	if _, err := col.GetIRSResult("www"); err != nil {
		return nil, err
	}
	rep.Benchmarks["search_buffered"] = benchResult(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := col.GetIRSResult("www"); err != nil {
				benchErr = err
				return
			}
		}
	}))
	if benchErr != nil {
		return nil, benchErr
	}

	// Ingest: one document through parse, store, propagation and
	// flush (the analyze/commit_batch stage histograms fill here).
	doc := 0
	rep.Benchmarks["ingest_flush"] = benchResult(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			doc++
			sgmlText := fmt.Sprintf(`<MMFDOC><LOGBOOK>bench log<DOCTITLE>bench %d<ABSTRACT>bench abstract<SECTION><STITLE>bench section<PARA>the www bench paragraph %d</MMFDOC>`, doc, doc)
			if _, err := parseFixture(s, sgmlText); err != nil {
				benchErr = err
				return
			}
			if err := col.Flush(); err != nil {
				benchErr = err
				return
			}
		}
	}))
	if benchErr != nil {
		return nil, benchErr
	}

	// Observability overhead A/B on the top-k path: interleaved
	// min-of-3 with obs recording on vs off. Min (not mean) because
	// scheduling noise only ever adds time.
	onNs, offNs := measureObsOverhead(col)
	if offNs > 0 {
		rep.ObsOverheadPct = (onNs - offNs) / offNs * 100
	}

	rep.StageLatency = stageSummaries()

	fmt.Fprintf(w, "EXP-BENCH perf snapshot (PR %d, %s, GOMAXPROCS=%d)\n",
		pr, rep.GoVersion, rep.GOMAXPROCS)
	names := make([]string, 0, len(rep.Benchmarks))
	for name := range rep.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := rep.Benchmarks[name]
		fmt.Fprintf(w, "  %-18s %12.0f ns/op %10d B/op %8d allocs/op\n",
			name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	fmt.Fprintf(w, "  topk: prune_rate=%.3f shards_skipped/query=%.2f (%d queries)\n",
		rep.TopK.PruneRate, rep.TopK.SkippedPerQ, rep.TopK.Queries)
	fmt.Fprintf(w, "  blockmax: blocks_skipped=%d postings_decoded=%d\n",
		rep.TopK.BlocksSkipped, rep.TopK.PostingsDecoded)
	fmt.Fprintf(w, "  obs overhead on topk path: %+.2f%% (target <= 3%%)\n", rep.ObsOverheadPct)
	return rep, nil
}

// AddMappedBench extends a report with the mmap serving numbers: it
// persists one sharded collection (same hot-block shape as RunBench's
// corpus, sealed by Compact), A/Bs the cold open heap vs mapped with
// testing.Benchmark, and measures steady-state top-k search over the
// mapping as Benchmarks["search_topk10_mapped"] so the regular
// regression tolerance covers the zero-copy decode path.
func AddMappedBench(w io.Writer, rep *BenchReport) error {
	dir, err := os.MkdirTemp("", "bench-mapped-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	shards := runtime.GOMAXPROCS(0)
	if shards < 2 {
		shards = 2
	}
	cfg := workload.DefaultConfig()
	cfg.Docs = 400
	corpus := workload.Generate(cfg)
	build, err := irs.NewEngineAt(dir)
	if err != nil {
		return err
	}
	coll, err := build.CreateCollectionShards("bench", nil, shards)
	if err != nil {
		return err
	}
	for i := range corpus.Docs {
		if err := coll.AddDocument(corpus.Docs[i].Name, corpus.Docs[i].SGML, nil); err != nil {
			return err
		}
	}
	hotText := strings.Repeat("www nii codec video highway ", 8)
	for i, added := uint64(0), 0; added < benchHotDocs; i++ {
		name := fmt.Sprintf("oid%d", 1<<40+i)
		if irs.ShardForExtID(name, shards) != 0 {
			continue
		}
		if err := coll.AddDocument(name, hotText, nil); err != nil {
			return err
		}
		added++
	}
	coll.Index().Compact()
	if err := build.Save(); err != nil {
		return err
	}
	st, err := os.Stat(dir + "/bench.irsc")
	if err != nil {
		return err
	}

	// Cold open A/B. Each iteration opens and closes the engine; the
	// OS page cache is warm after the first, so the numbers compare
	// parse work (full posting decode vs section tables only).
	var benchErr error
	openBench := func(mapped bool) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := irs.NewEngineAt(dir, irs.Options{Mapped: mapped})
				if err != nil {
					benchErr = err
					return
				}
				if err := e.Close(); err != nil {
					benchErr = err
					return
				}
			}
		})
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	mb := &MappedBench{FileBytes: st.Size()}
	mb.OpenHeapNs = openBench(false)
	mb.OpenMappedNs = openBench(true)
	if benchErr != nil {
		return benchErr
	}
	if mb.OpenMappedNs > 0 {
		mb.OpenSpeedup = mb.OpenHeapNs / mb.OpenMappedNs
	}

	eng, err := irs.NewEngineAt(dir, irs.Options{Mapped: true})
	if err != nil {
		return err
	}
	defer eng.Close()
	mc, err := eng.Collection("bench")
	if err != nil {
		return err
	}
	mb.MappedBytes = mc.Index().MappedBytes()
	mb.HeapBytes = mc.Index().HeapBytes()
	rep.Benchmarks["search_topk10_mapped"] = benchResult(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mc.SearchTopK("#sum(www nii sgml video codec highway)", 10); err != nil {
				benchErr = err
				return
			}
		}
	}))
	if benchErr != nil {
		return benchErr
	}
	rep.Mapped = mb

	r := rep.Benchmarks["search_topk10_mapped"]
	fmt.Fprintf(w, "  %-18s %12.0f ns/op %10d B/op %8d allocs/op\n",
		"search_topk10_mapped", r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	fmt.Fprintf(w, "  mapped: open heap=%.0fns mapped=%.0fns (%.1fx), %d/%d bytes mapped/heap of a %d-byte file\n",
		mb.OpenHeapNs, mb.OpenMappedNs, mb.OpenSpeedup, mb.MappedBytes, mb.HeapBytes, mb.FileBytes)
	return nil
}

// AddServingBench extends a report with the adaptive-serving numbers:
// one short zipfian query stream against each cache policy at a small
// entry budget (EXP-S7's workload shape, scaled down), and one async
// ingest burst whose adaptive coalescing window is sampled at peak.
func AddServingBench(w io.Writer, rep *BenchReport) error {
	sb := &ServingBench{
		CacheRequests: 2000,
		CacheHitRate:  make(map[string]float64),
	}
	cfg := workload.DefaultConfig()
	corpus := workload.Generate(cfg)
	pool := s7QueryPoolGen(cfg.Vocabulary)
	rng := rand.New(rand.NewSource(97))
	zipf := rand.NewZipf(rng, s7ZipfS, 1.0, uint64(len(pool)-1))
	stream := make([]int, sb.CacheRequests)
	for i := range stream {
		stream[i] = int(zipf.Uint64())
	}
	for _, policy := range []string{server.CachePolicyLRU, server.CachePolicy2Q} {
		s, err := s7Open(server.Config{CacheSize: s7CacheBudget, CachePolicy: policy})
		if err != nil {
			return err
		}
		err = func() error {
			defer s.close()
			if err := s7Seed(s, corpus, ""); err != nil {
				return err
			}
			for _, idx := range stream {
				if _, err := s7Call(s.ts, "GET", s7SearchPath(pool[idx], s7K), nil); err != nil {
					return err
				}
			}
			cm := s.srv.CacheMetrics()
			hits := cm.HitsMain + cm.HitsProbation
			if total := hits + cm.MissesCold + cm.MissesExpired; total > 0 {
				sb.CacheHitRate[policy] = float64(hits) / float64(total)
			}
			if policy == server.CachePolicy2Q {
				sb.CacheEvictedCostSeconds = cm.EvictedCost
			}
			return nil
		}()
		if err != nil {
			return err
		}
	}

	// Adaptive coalescing window at peak: post one async burst and
	// sample /stats before draining (after a drain the controller
	// decays back toward the floor, which would be the boring number).
	s, err := s7Open(server.Config{})
	if err != nil {
		return err
	}
	defer s.close()
	if _, err := s7Call(s.ts, "POST", "/dtds", map[string]any{"name": "mmf", "dtd": workload.MMFDTD}); err != nil {
		return err
	}
	if _, err := s7Call(s.ts, "POST", "/collections", map[string]any{
		"name": "collPara", "spec": "ACCESS p FROM p IN PARA;", "policy": "async",
	}); err != nil {
		return err
	}
	docs := make([]string, len(corpus.Docs))
	for i := range corpus.Docs {
		docs[i] = corpus.Docs[i].SGML
	}
	for i := 0; i < 4; i++ {
		if _, err := s7Call(s.ts, "POST", "/documents", map[string]any{
			"dtd": "mmf", "documents": docs, "mode": "async",
		}); err != nil {
			return err
		}
	}
	out, err := s7Call(s.ts, "GET", "/stats", nil)
	if err != nil {
		return err
	}
	colls, _ := out["collections"].(map[string]any)
	coll, _ := colls["collPara"].(map[string]any)
	pipeline, _ := coll["pipeline"].(map[string]any)
	sb.CoalesceWindowMs, _ = pipeline["coalesce_window_ms"].(float64)
	if _, err := s7Call(s.ts, "POST", "/collections/collPara/drain", nil); err != nil {
		return err
	}

	rep.Serving = sb
	fmt.Fprintf(w, "  serving: cache hit rate lru=%.3f 2q=%.3f (zipfian x%d, %d-entry budget), 2q evicted-cost %.3fs, burst coalesce window %.3fms\n",
		sb.CacheHitRate[server.CachePolicyLRU], sb.CacheHitRate[server.CachePolicy2Q],
		sb.CacheRequests, s7CacheBudget, sb.CacheEvictedCostSeconds, sb.CoalesceWindowMs)
	return nil
}

// AddDurabilityBench extends a report with the durable-ingest
// numbers: EXP-S8's synchronous phase at reduced scale (per-document
// commits under each fsync policy), plus the wall clock of recovering
// the group run's crash image by replaying its log.
func AddDurabilityBench(w io.Writer, rep *BenchReport) error {
	root, err := os.MkdirTemp("", "bench-wal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	cfg := workload.DefaultConfig()
	cfg.Docs = 120
	corpus := workload.Generate(cfg)
	db := &DurabilityBench{Docs: len(corpus.Docs)}
	crash := root + "/crash"

	variants := []struct {
		name   string
		noWAL  bool
		fsync  string
		copyTo string
		out    *float64
	}{
		{"off", true, "", "", &db.SyncOffMs},
		{"group", false, "group", crash, &db.SyncGroupMs},
		{"always", false, "always", "", &db.SyncAlwaysMs},
	}
	for _, v := range variants {
		out, err := s8Ingest(root+"/"+v.name, corpus, false, v.noWAL, v.fsync, v.copyTo)
		if err != nil {
			return err
		}
		*v.out = float64(out.elapsed.Microseconds()) / 1000
		if v.name == "group" {
			db.WALBytes = out.stats.Bytes
			db.WALAppends = out.stats.Appends
			db.WALFsyncs = out.stats.Syncs
		}
	}
	if db.SyncOffMs > 0 {
		db.GroupOverhead = db.SyncGroupMs / db.SyncOffMs
	}

	// Recovery: reopen the crash image like a restarted server —
	// replay is the whole open cost here, the image predates any
	// snapshot.
	start := time.Now()
	sys, err := docirs.OpenWith(crash, docirs.OpenOptions{})
	if err != nil {
		return err
	}
	db.RecoveryMs = float64(time.Since(start).Microseconds()) / 1000
	for _, r := range sys.RecoveryReports() {
		db.RecoveredOps += r.Replayed
	}
	if err := sys.Close(); err != nil {
		return err
	}

	rep.Durability = db
	fmt.Fprintf(w, "  durability: sync ingest off=%.0fms group=%.0fms (%.2fx) always=%.0fms; wal %dB/%d appends/%d fsyncs; recovery replayed %d ops in %.0fms\n",
		db.SyncOffMs, db.SyncGroupMs, db.GroupOverhead, db.SyncAlwaysMs,
		db.WALBytes, db.WALAppends, db.WALFsyncs, db.RecoveredOps, db.RecoveryMs)
	return nil
}

// measureObsOverhead interleaves short obs-on and obs-off runs of the
// top-k search and returns the minimum ns/op of each variant.
func measureObsOverhead(col *core.Collection) (onNs, offNs float64) {
	run := func() float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Errors are impossible here: the same query already ran
				// clean in the measured benchmark above.
				col.GetIRSResultTopK("#sum(www nii sgml video codec highway)", 10)
			}
		})
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	onNs, offNs = -1, -1
	defer obs.SetEnabled(true)
	for i := 0; i < 3; i++ {
		obs.SetEnabled(true)
		if v := run(); onNs < 0 || v < onNs {
			onNs = v
		}
		obs.SetEnabled(false)
		if v := run(); offNs < 0 || v < offNs {
			offNs = v
		}
	}
	return onNs, offNs
}

// stageSummaries digests the pipeline-stage histogram series.
func stageSummaries() map[string]obs.Summary {
	out := make(map[string]obs.Summary)
	for key, sum := range obs.Default.Summaries() {
		if strings.HasPrefix(key, "mmf_stage_seconds") && sum.Count > 0 {
			out[key] = sum
		}
	}
	return out
}

// WriteBenchReport writes the report as indented JSON.
func WriteBenchReport(path string, rep *BenchReport) error {
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// LoadBenchReport reads a BENCH_*.json file.
func LoadBenchReport(path string) (*BenchReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &BenchReport{}
	if err := json.Unmarshal(raw, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// DiffBenchReports compares two reports benchmark by benchmark and
// returns the regressions: benchmarks whose ns/op grew by more than
// tolerance (a fraction; 0 selects the default 0.35 — generous,
// because CI runners are shared and noisy; the trajectory across
// several PRs is the signal, any single diff is a tripwire).
func DiffBenchReports(w io.Writer, old, new *BenchReport, tolerance float64) []string {
	if tolerance <= 0 {
		tolerance = 0.35
	}
	var regressions []string
	names := make([]string, 0, len(new.Benchmarks))
	for name := range new.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "bench diff: PR %d -> PR %d (tolerance %.0f%%)\n", old.PR, new.PR, tolerance*100)
	for _, name := range names {
		n := new.Benchmarks[name]
		o, ok := old.Benchmarks[name]
		if !ok || o.NsPerOp <= 0 {
			fmt.Fprintf(w, "  %-18s %12.0f ns/op   (new benchmark)\n", name, n.NsPerOp)
			continue
		}
		delta := (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		mark := ""
		if n.NsPerOp > o.NsPerOp*(1+tolerance) {
			mark = "  << REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%)", name, o.NsPerOp, n.NsPerOp, delta))
		}
		fmt.Fprintf(w, "  %-18s %12.0f -> %10.0f ns/op (%+.1f%%)%s\n",
			name, o.NsPerOp, n.NsPerOp, delta, mark)
	}
	return regressions
}

// ValidateBenchReport sanity-checks a loaded report (the committed
// BENCH_*.json must stay loadable and meaningful for the next PR's
// diff).
func ValidateBenchReport(rep *BenchReport) error {
	if rep.PR <= 0 {
		return fmt.Errorf("bench report: pr = %d, want > 0", rep.PR)
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("bench report: no benchmarks")
	}
	for name, r := range rep.Benchmarks {
		if r.N <= 0 || r.NsPerOp <= 0 {
			return fmt.Errorf("bench report: %s has empty result (%+v)", name, r)
		}
	}
	if rep.TopK.Queries <= 0 {
		return fmt.Errorf("bench report: topk rates empty")
	}
	return nil
}
