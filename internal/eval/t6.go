package eval

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// EXP-T6 — Section 4.5 remark on result exchange: "Currently the IRS
// writes the result to a file which is parsed afterwards to extract
// the OID-relevance value pairs. This mechanism can be improved by
// using the API of an IRS." The same query stream runs through the
// file-exchange detour and through the direct API; scores must
// agree, latencies differ by the serialization/parsing cost.

// T6Result is the outcome of EXP-T6.
type T6Result struct {
	Queries       int
	FileTotal     time.Duration
	APITotal      time.Duration
	MaxScoreDelta float64
	ResultsEqual  bool
}

// RunT6 executes EXP-T6.
func RunT6(w io.Writer) (*T6Result, error) {
	cfg := workload.DefaultConfig()
	s, err := NewSetup(cfg)
	if err != nil {
		return nil, err
	}
	coll, err := s.NewCollection("collPara", "ACCESS p FROM p IN PARA;", core.Options{})
	if err != nil {
		return nil, err
	}
	var queries []string
	for _, t := range cfg.Topics {
		queries = append(queries, t.Terms...)
	}
	dir, err := os.MkdirTemp("", "exp-t6-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	res := &T6Result{Queries: len(queries) * 4, ResultsEqual: true}
	irsColl := coll.IRS()
	const rounds = 4
	fileScores := make(map[string]map[string]float64)
	fTotal, err := timeIt(func() error {
		for round := 0; round < rounds; round++ {
			for i, q := range queries {
				path := filepath.Join(dir, fmt.Sprintf("result-%d-%d.txt", round, i))
				if err := irsColl.SearchToFile(q, path); err != nil {
					return err
				}
				rs, err := parseResultFile(path)
				if err != nil {
					return err
				}
				fileScores[q] = rs
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.FileTotal = fTotal

	apiScores := make(map[string]map[string]float64)
	aTotal, err := timeIt(func() error {
		for round := 0; round < rounds; round++ {
			for _, q := range queries {
				rs, err := irsColl.Search(q)
				if err != nil {
					return err
				}
				m := make(map[string]float64, len(rs))
				for _, r := range rs {
					m[r.ExtID] = r.Score
				}
				apiScores[q] = m
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.APITotal = aTotal

	for q, fm := range fileScores {
		am := apiScores[q]
		if len(fm) != len(am) {
			res.ResultsEqual = false
			continue
		}
		for ext, v := range fm {
			d := math.Abs(am[ext] - v)
			if d > res.MaxScoreDelta {
				res.MaxScoreDelta = d
			}
			if d > 1e-6 {
				res.ResultsEqual = false
			}
		}
	}

	tab := &Table{
		Title:  "EXP-T6 (Section 4.5): IRS result exchange mechanism",
		Header: []string{"mechanism", "queries", "total", "per query"},
	}
	tab.AddRow("result file + parse", fmt.Sprint(res.Queries),
		fms(float64(res.FileTotal.Microseconds())/1000),
		fms(float64(res.FileTotal.Microseconds())/1000/float64(res.Queries)))
	tab.AddRow("direct API", fmt.Sprint(res.Queries),
		fms(float64(res.APITotal.Microseconds())/1000),
		fms(float64(res.APITotal.Microseconds())/1000/float64(res.Queries)))
	tab.Fprint(w)
	fmt.Fprintf(w, "results identical: %v (max score delta %.2g)\n\n", res.ResultsEqual, res.MaxScoreDelta)
	return res, nil
}

// parseResultFile adapts irs.ParseResultFile into a score map.
func parseResultFile(path string) (map[string]float64, error) {
	rs, err := irsParseResultFile(path)
	if err != nil {
		return nil, err
	}
	m := make(map[string]float64, len(rs))
	for _, r := range rs {
		m[r.ExtID] = r.Score
	}
	return m, nil
}
