package eval

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/derive"
	"repro/internal/oodb"
	"repro/internal/workload"
)

// EXP-T5 — Sections 2/4.3: redundant multi-level indexing vs
// derivation. [SAZ94] reduce the overhead of "multiple indexes on
// the same data, but different document levels, to about 30%" by
// compression; the coupling's alternative (4) avoids the second
// index entirely by deriving document values from paragraph values.
// The experiment compares:
//
//	A  paragraph index only, document queries answered by derivation
//	B  paragraph index + full document index (redundant text)
//
// on footprint, document-retrieval quality and query latency.

// T5Result is the outcome of EXP-T5.
type T5Result struct {
	ParaIndexBytes   int64
	DocIndexBytes    int64
	OverheadPct      float64 // extra bytes of B relative to A
	DeriveP5, DualP5 float64
	DeriveMAP        float64
	DualMAP          float64
	DeriveTime       time.Duration
	DualTime         time.Duration
}

// RunT5 executes EXP-T5.
func RunT5(w io.Writer) (*T5Result, error) {
	cfg := workload.DefaultConfig()
	s, err := NewSetup(cfg)
	if err != nil {
		return nil, err
	}
	collPara, err := s.NewCollection("collPara", "ACCESS p FROM p IN PARA;",
		core.Options{Deriver: derive.QueryAware{}})
	if err != nil {
		return nil, err
	}
	collDoc, err := s.NewCollection("collDoc", "ACCESS d FROM d IN MMFDOC;", core.Options{})
	if err != nil {
		return nil, err
	}
	res := &T5Result{
		ParaIndexBytes: collPara.IRS().SizeBytes(),
		DocIndexBytes:  collDoc.IRS().SizeBytes(),
	}
	res.OverheadPct = 100 * float64(res.DocIndexBytes) / float64(res.ParaIndexBytes)

	// Document retrieval per topic, both ways.
	var deriveP5, dualP5, deriveMAP, dualMAP float64
	dTime, err := timeIt(func() error {
		for _, topic := range cfg.Topics {
			q := workload.QueryForTopic(topic)
			scores := make(map[oodb.OID]float64, len(s.DocOIDs))
			for _, docOID := range s.DocOIDs {
				v, err := collPara.FindIRSValue(q, docOID)
				if err != nil {
					return err
				}
				scores[docOID] = v
			}
			ranked := rankOIDs(scores)
			rel := s.RelevantDocOIDs(topic.Name)
			deriveP5 += precisionAtK(ranked, rel, 5)
			deriveMAP += averagePrecision(ranked, rel)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.DeriveTime = dTime
	uTime, err := timeIt(func() error {
		for _, topic := range cfg.Topics {
			q := workload.QueryForTopic(topic)
			scores := make(map[oodb.OID]float64, len(s.DocOIDs))
			for _, docOID := range s.DocOIDs {
				v, err := collDoc.FindIRSValue(q, docOID)
				if err != nil {
					return err
				}
				scores[docOID] = v
			}
			ranked := rankOIDs(scores)
			rel := s.RelevantDocOIDs(topic.Name)
			dualP5 += precisionAtK(ranked, rel, 5)
			dualMAP += averagePrecision(ranked, rel)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.DualTime = uTime
	n := float64(len(cfg.Topics))
	res.DeriveP5, res.DualP5 = deriveP5/n, dualP5/n
	res.DeriveMAP, res.DualMAP = deriveMAP/n, dualMAP/n

	tab := &Table{
		Title:  "EXP-T5 (Sections 2/4.3): redundancy avoidance via derivation",
		Header: []string{"configuration", "extra index bytes", "overhead", "doc P@5", "doc MAP", "query time"},
	}
	tab.AddRow("A: paragraphs + derive", "0", "0%",
		fnum(res.DeriveP5), fnum(res.DeriveMAP), fms(float64(res.DeriveTime.Microseconds())/1000))
	tab.AddRow("B: paragraphs + doc index", fmt.Sprint(res.DocIndexBytes),
		fmt.Sprintf("%.1f%%", res.OverheadPct),
		fnum(res.DualP5), fnum(res.DualMAP), fms(float64(res.DualTime.Microseconds())/1000))
	tab.Fprint(w)
	fmt.Fprintf(w, "[SAZ94] reduce the same overhead to ~30%% by compression; derivation removes it (at derive-time query cost)\n\n")
	return res, nil
}
