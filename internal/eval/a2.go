package eval

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// EXP-A2 — scaling ablation. The paper's era measured systems at
// journal scale (hundreds of documents); this table shows how the
// coupling's costs move with corpus size so the other experiments'
// numbers can be put in proportion: indexing is linear in text
// volume, cold IRS queries are linear in posting-list length,
// buffered queries are size-independent, and full derivation sweeps
// scale with the number of objects.

// A2Row is one corpus size's measurements.
type A2Row struct {
	Docs        int
	Paras       int
	IndexBytes  int64
	IndexTime   time.Duration
	ColdQuery   time.Duration
	WarmQuery   time.Duration
	DeriveSweep time.Duration // FindIRSValue over every document
}

// A2Result is the outcome of EXP-A2.
type A2Result struct {
	Rows []A2Row
}

// RunA2 executes EXP-A2.
func RunA2(w io.Writer) (*A2Result, error) {
	res := &A2Result{}
	for _, docs := range []int{10, 20, 40, 80} {
		cfg := workload.DefaultConfig()
		cfg.Docs = docs
		s, err := NewSetup(cfg)
		if err != nil {
			return nil, err
		}
		col, err := s.Coupling.CreateCollection("collPara", "ACCESS p FROM p IN PARA;", core.Options{})
		if err != nil {
			return nil, err
		}
		row := A2Row{Docs: docs, Paras: s.Corpus.TotalParas()}
		if row.IndexTime, err = timeIt(func() error {
			_, ierr := col.IndexObjects()
			return ierr
		}); err != nil {
			return nil, err
		}
		row.IndexBytes = col.IRS().SizeBytes()
		if row.ColdQuery, err = timeIt(func() error {
			_, qerr := col.GetIRSResult("www")
			return qerr
		}); err != nil {
			return nil, err
		}
		if row.WarmQuery, err = timeIt(func() error {
			_, qerr := col.GetIRSResult("www")
			return qerr
		}); err != nil {
			return nil, err
		}
		if row.DeriveSweep, err = timeIt(func() error {
			for _, doc := range s.DocOIDs {
				if _, derr := col.FindIRSValue("www", doc); derr != nil {
					return derr
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}

	tab := &Table{
		Title:  "EXP-A2 (ablation): scaling with corpus size",
		Header: []string{"docs", "paras", "index bytes", "index time", "cold query", "warm query", "derive sweep"},
	}
	for _, r := range res.Rows {
		tab.AddRow(fmt.Sprint(r.Docs), fmt.Sprint(r.Paras), fmt.Sprint(r.IndexBytes),
			fms(float64(r.IndexTime.Microseconds())/1000),
			fms(float64(r.ColdQuery.Microseconds())/1000),
			fms(float64(r.WarmQuery.Microseconds())/1000),
			fms(float64(r.DeriveSweep.Microseconds())/1000))
	}
	tab.Fprint(w)
	return res, nil
}
