package eval

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"repro/internal/irs"
	"repro/internal/workload"
)

// EXP-S5 — block-max posting cursors over delta+varint compressed
// storage vs the whole-list-bound baseline. EXP-S4 skips entire shard
// scans whose upper bound cannot reach the shared threshold; inside a
// shard the engine still walked every live posting. Postings now live
// in document-ordered blocks (~128 docs each, doc ids delta+varint,
// tfs varint, positions delta+varint) carrying per-block max-tf, and
// evaluation refines each candidate's bound from the max-tf of the
// blocks it sits in: when that refined bound falls below the shared
// threshold the candidate is pruned without ever decoding the block's
// tf/position payloads.
//
// The experiment gates three properties in-run: rankings stay
// bit-identical to the exhaustive prefix in both modes, block-max
// evaluation leaves at least one compressed block undecoded, and the
// compressed posting footprint is at least 3x smaller than the flat
// arrays it replaced. It also measures the work and time saved at
// k = 10.

// S5Result is the outcome of EXP-S5.
type S5Result struct {
	Shards            int
	Docs              int
	Queries           int
	RankingsIdentical bool
	// Posting payloads decoded across all queries at k = 10.
	BaselineDecoded int64 // whole-list bounds (the EXP-S4 engine)
	BlockMaxDecoded int64 // per-block max-tf bounds
	DecodedSaved    float64
	BlocksSkipped   int64
	// Compressed posting footprint vs the flat []Posting arrays the
	// blocks replaced (irs.Collection.CompressionRatio).
	SizeBytes        int64
	CompressionRatio float64
	BaselineTime     time.Duration
	BlockMaxTime     time.Duration
	Speedup          float64
}

// s5Queries keep the EXP-S4 profile: hot-topic-centric queries whose
// threshold rises fast (so block bounds have something to beat) mixed
// with generic ones where block-max must not cost anything.
var s5Queries = []string{
	"www nii codec",
	"#sum(www nii codec video highway)",
	"#wsum(3 www 2 nii 1 codec)",
	"#sum(www nii sgml video codec highway)",
	"www web hypertext",
	"#wsum(3 www 1 infrastructure 0.5 #phrase(digital library))",
	"#or(nii #and(sgml markup))",
}

const (
	s5K = 10
	// s5HotDocs is the size of the hot-topic block pinned to shard 0 —
	// two full codec blocks per hot term, so sealed blocks exist to
	// skip even in the hot shard itself.
	s5HotDocs = 256
)

// RunS5 executes EXP-S5. shards <= 0 selects GOMAXPROCS, floored at 4
// to match the EXP-S4 serving shape.
func RunS5(w io.Writer, shards int) (*S5Result, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
		if shards < 4 {
			shards = 4
		}
	}
	// Larger than EXP-S4's corpus: posting lists only seal compressed
	// blocks once a term's per-shard df clears codec.BlockSize, so the
	// corpus must be deep enough for the head of the vocabulary to
	// live mostly in sealed blocks (the ≤127-posting tails stay flat).
	cfg := workload.DefaultConfig()
	cfg.Docs = 4000
	corpus := workload.Generate(cfg)
	res := &S5Result{Shards: shards, Queries: len(s5Queries), RankingsIdentical: true}

	engine := irs.NewEngine()
	coll, err := engine.CreateCollectionShards("topkblockmax", nil, shards)
	if err != nil {
		return nil, err
	}
	for i := range corpus.Docs {
		if err := coll.AddDocument(corpus.Docs[i].Name, corpus.Docs[i].SGML, nil); err != nil {
			return nil, err
		}
	}
	// The same constructed skew as EXP-S4 (placement is a pure
	// function of the external id), sized up so the hot terms seal
	// multiple compressed blocks in shard 0, with two twists that
	// separate block bounds from list bounds. The hot documents are
	// padded to corpus-typical length: EXP-S4's short hot documents
	// make even the whole-list bound discriminate through the
	// document-length term, which would hand the baseline the same
	// pruning for free. And their hot-term tf ramps well above
	// anything a corpus document reaches, so the *list* max-tf (what
	// the baseline must assume for every candidate) wildly
	// overestimates the corpus-era blocks whose own max-tf stays low —
	// exactly the gap block-max pruning closes. Appended last, the hot
	// documents cluster in the final blocks of each hot term's shard-0
	// list.
	var pad strings.Builder
	for i := 0; i < 250; i++ {
		fmt.Fprintf(&pad, "pad%02d ", i%50)
	}
	for i, added := 0, 0; added < s5HotDocs; i++ {
		name := fmt.Sprintf("hot%05d", i)
		if irs.ShardForExtID(name, shards) != 0 {
			continue
		}
		hotText := strings.Repeat("www nii codec video highway ", 16+added%17) + pad.String()
		if err := coll.AddDocument(name, hotText, nil); err != nil {
			return nil, err
		}
		added++
	}
	// Serve from compacted storage: compaction reseals every posting
	// run — tails included — so the measured footprint is the fully
	// compressed form a long-lived collection converges to.
	coll.Index().Compact()
	res.Docs = coll.DocCount()
	res.SizeBytes = coll.SizeBytes()
	res.CompressionRatio = coll.CompressionRatio()

	defer irs.SetTopKBlockMax(true)
	// Work accounting and the exactness gate, per mode. The exhaustive
	// ranking is the single source of truth for both.
	for _, q := range s5Queries {
		full, err := coll.Search(q)
		if err != nil {
			return nil, err
		}
		if len(full) > s5K {
			full = full[:s5K]
		}
		for _, blockmax := range []bool{false, true} {
			irs.SetTopKBlockMax(blockmax)
			before := coll.TopKStats()
			topk, err := coll.SearchTopK(q, s5K)
			if err != nil {
				return nil, err
			}
			delta := coll.TopKStats()
			decoded := delta.PostingsDecoded - before.PostingsDecoded
			if blockmax {
				res.BlockMaxDecoded += decoded
				res.BlocksSkipped += delta.BlocksSkipped - before.BlocksSkipped
			} else {
				res.BaselineDecoded += decoded
			}
			if len(topk) != len(full) {
				res.RankingsIdentical = false
				continue
			}
			for i := range full {
				if topk[i] != full[i] {
					res.RankingsIdentical = false
					break
				}
			}
		}
	}
	if res.BaselineDecoded > 0 {
		res.DecodedSaved = 1 - float64(res.BlockMaxDecoded)/float64(res.BaselineDecoded)
	}

	// Latency A/B under the default inference net at k = 10.
	const rounds = 30
	load := func() (time.Duration, error) {
		return timeIt(func() error {
			for r := 0; r < rounds; r++ {
				for _, q := range s5Queries {
					if _, err := coll.SearchTopK(q, s5K); err != nil {
						return err
					}
				}
			}
			return nil
		})
	}
	irs.SetTopKBlockMax(false)
	if res.BaselineTime, err = load(); err != nil {
		return nil, err
	}
	irs.SetTopKBlockMax(true)
	if res.BlockMaxTime, err = load(); err != nil {
		return nil, err
	}
	if res.BlockMaxTime > 0 {
		res.Speedup = float64(res.BaselineTime) / float64(res.BlockMaxTime)
	}

	tab := &Table{
		Title: fmt.Sprintf("EXP-S5: block-max posting cursors, %d docs, %d shards, %d queries, k=%d",
			res.Docs, res.Shards, res.Queries, s5K),
		Header: []string{"engine", "postings decoded", fmt.Sprintf("time (x%d rounds)", rounds), "speedup"},
	}
	tab.AddRow("whole-list bounds (EXP-S4 baseline)",
		fmt.Sprintf("%d", res.BaselineDecoded), fms(float64(res.BaselineTime.Microseconds())/1000), "1.00x")
	tab.AddRow("block-max bounds over compressed blocks",
		fmt.Sprintf("%d", res.BlockMaxDecoded), fms(float64(res.BlockMaxTime.Microseconds())/1000), fmt.Sprintf("%.2fx", res.Speedup))
	tab.Fprint(w)
	fmt.Fprintf(w, "top-k rankings bit-identical to exhaustive prefix (both modes, k=%d): %v\n",
		s5K, res.RankingsIdentical)
	fmt.Fprintf(w, "posting payloads decoded down %.1f%% (%d -> %d); compressed blocks skipped undecoded: %d\n",
		100*res.DecodedSaved, res.BaselineDecoded, res.BlockMaxDecoded, res.BlocksSkipped)
	fmt.Fprintf(w, "posting storage: %d bytes compressed, %.2fx smaller than flat postings\n\n",
		res.SizeBytes, res.CompressionRatio)
	if !res.RankingsIdentical {
		return res, fmt.Errorf("EXP-S5 ranking-equality gate tripped: top-k diverged from the exhaustive prefix")
	}
	if res.BlocksSkipped == 0 {
		return res, fmt.Errorf("EXP-S5 block-skip gate tripped: no compressed block left undecoded at %d shards", res.Shards)
	}
	if res.CompressionRatio < 3 {
		return res, fmt.Errorf("EXP-S5 compression gate tripped: %.2fx < 3x vs flat postings", res.CompressionRatio)
	}
	return res, nil
}
