package eval

import "repro/internal/oodb"

// Ranking-quality metrics against planted ground truth.

// precisionAtK is the fraction of the top k ranked items that are
// relevant.
func precisionAtK(ranked []oodb.OID, relevant map[oodb.OID]bool, k int) float64 {
	if k > len(ranked) {
		k = len(ranked)
	}
	if k == 0 {
		return 0
	}
	hits := 0
	for _, oid := range ranked[:k] {
		if relevant[oid] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// recallAtK is the fraction of relevant items found in the top k.
func recallAtK(ranked []oodb.OID, relevant map[oodb.OID]bool, k int) float64 {
	if len(relevant) == 0 {
		return 0
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	hits := 0
	for _, oid := range ranked[:k] {
		if relevant[oid] {
			hits++
		}
	}
	return float64(hits) / float64(len(relevant))
}

// averagePrecision is the mean of precision values at each relevant
// rank (AP; averaged over queries it yields MAP).
func averagePrecision(ranked []oodb.OID, relevant map[oodb.OID]bool) float64 {
	if len(relevant) == 0 {
		return 0
	}
	hits := 0
	sum := 0.0
	for i, oid := range ranked {
		if relevant[oid] {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	return sum / float64(len(relevant))
}
