package eval

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// Every experiment must run green and reproduce the paper's SHAPE
// claims (who wins, what separates, what ties). Absolute numbers are
// environment-dependent and recorded in EXPERIMENTS.md instead.

func TestRunF1Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunF1(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arch) != 3 {
		t.Fatalf("architectures = %d", len(res.Arch))
	}
	// All architectures answer the workload identically.
	for _, ar := range res.Arch[1:] {
		if ar.Results != res.Arch[0].Results {
			t.Errorf("%s results = %d, want %d", ar.Name, ar.Results, res.Arch[0].Results)
		}
	}
	// DBMS-control reuses buffered IRS results: strictly fewer IRS
	// evaluations than the stateless architectures.
	dbms := res.ByName("dbms-control")
	cm := res.ByName("control-module")
	if dbms == nil || cm == nil {
		t.Fatal("missing architecture rows")
	}
	if dbms.IRSSearches >= cm.IRSSearches {
		t.Errorf("dbms-control IRS evals %d >= control-module %d", dbms.IRSSearches, cm.IRSSearches)
	}
	// Only DBMS-control has the full capability row.
	if !dbms.Capabilities.DeclarativeMixedQueries || cm.Capabilities.DeclarativeMixedQueries {
		t.Error("capability matrix wrong")
	}
	if !strings.Contains(buf.String(), "EXP-F1") {
		t.Error("table missing")
	}
}

func TestRunF2Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunF2(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !res.MappingValid {
		t.Error("IRS-document -> object mapping invalid")
	}
	if !res.SharedQueryDisagrees {
		t.Error("collections did not answer at different granularities")
	}
	if len(res.Collections) != 2 {
		t.Fatalf("collections = %d", len(res.Collections))
	}
	para, doc := res.Collections[0], res.Collections[1]
	if para.IRSDocs <= doc.IRSDocs {
		t.Errorf("paragraph collection (%d docs) should outnumber document collection (%d)",
			para.IRSDocs, doc.IRSDocs)
	}
	// Abstract mode stores far less text than full paragraphs.
	if doc.TextBytes >= para.TextBytes {
		t.Errorf("abstract text %d >= paragraph text %d", doc.TextBytes, para.TextBytes)
	}
}

func TestRunF3Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunF3(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Buffering: IRS evaluated once per distinct query only.
	if res.BufferedSearches > int64(res.Distinct) {
		t.Errorf("buffered searches %d > distinct queries %d", res.BufferedSearches, res.Distinct)
	}
	if res.UnbufferedSearches != int64(res.Queries) {
		t.Errorf("unbuffered searches = %d, want %d", res.UnbufferedSearches, res.Queries)
	}
	if res.HitRate < 0.5 {
		t.Errorf("hit rate = %v, want >= 0.5 under Zipf repetition", res.HitRate)
	}
	// Intra-query: many probes, few IRS evaluations.
	if res.IntraQueryProbes <= res.IntraQuerySearches {
		t.Errorf("intra-query probes %d <= searches %d", res.IntraQueryProbes, res.IntraQuerySearches)
	}
}

func TestRunF4Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunF4(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Claim 1: P4 is the top paragraph for #and(www nii).
	if res.TopPara != "P4" {
		t.Errorf("top paragraph = %s, want P4", res.TopPara)
	}
	// Claim 2: under Max, M2 ranks first...
	if res.Rankings["max"][0] != "M2" {
		t.Errorf("max ranking = %v, want M2 first", res.Rankings["max"])
	}
	// ...but M3 and M4 tie (the deficiency).
	maxVals := res.DocValues["max"]
	if d := maxVals["M3"] - maxVals["M4"]; d > 1e-9 || d < -1e-9 {
		t.Errorf("max should tie M3 (%v) and M4 (%v)", maxVals["M3"], maxVals["M4"])
	}
	// Claim 3: query-aware separates them: M2 > M3 > M4.
	qa := res.DocValues["query-aware"]
	if !(qa["M2"] > qa["M3"] && qa["M3"] > qa["M4"]) {
		t.Errorf("query-aware values M2=%v M3=%v M4=%v, want strictly decreasing",
			qa["M2"], qa["M3"], qa["M4"])
	}
	// And M1 (single semi-relevant paragraph) stays below M3.
	if qa["M1"] >= qa["M3"] {
		t.Errorf("query-aware M1=%v >= M3=%v", qa["M1"], qa["M3"])
	}
}

func TestRunT1Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunT1(&buf)
	if err != nil {
		t.Fatal(err)
	}
	doc := res.Row("document")
	para := res.Row("paragraph")
	leaf := res.Row("leaf")
	abs := res.Row("doc-abstract")
	if doc == nil || para == nil || leaf == nil || abs == nil {
		t.Fatal("missing granularity rows")
	}
	// Finer granularity -> more IRS documents.
	if !(doc.IRSDocs < res.Row("section").IRSDocs &&
		res.Row("section").IRSDocs < para.IRSDocs &&
		para.IRSDocs <= leaf.IRSDocs) {
		t.Errorf("IRS doc counts not monotone: %d %d %d %d",
			doc.IRSDocs, res.Row("section").IRSDocs, para.IRSDocs, leaf.IRSDocs)
	}
	// Document-level cannot answer paragraph queries; paragraph can.
	if doc.ParaP10 >= 0 {
		t.Error("document granularity claims paragraph retrieval")
	}
	if para.ParaP10 < 0.3 {
		t.Errorf("paragraph granularity para P@10 = %v", para.ParaP10)
	}
	// Abstracts store less text than full documents.
	if abs.TextRatio >= doc.TextRatio {
		t.Errorf("abstract ratio %v >= full ratio %v", abs.TextRatio, doc.TextRatio)
	}
	// All granularities keep usable document retrieval.
	for _, row := range res.Rows {
		if row.DocMAP < 0.3 {
			t.Errorf("%s: doc MAP = %v", row.Granularity, row.DocMAP)
		}
	}
}

func TestRunT2Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunT2(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Same filter -> both strategies return the same row count.
	for i := 0; i < len(res.Rows); i += 2 {
		if res.Rows[i].Rows != res.Rows[i+1].Rows {
			t.Errorf("%s: independent %d rows vs irs-first %d rows",
				res.Rows[i].Filter, res.Rows[i].Rows, res.Rows[i+1].Rows)
		}
	}
	// Selectivity decreases across the filter set.
	if !(res.Rows[0].Selectivity > res.Rows[2].Selectivity &&
		res.Rows[2].Selectivity > res.Rows[4].Selectivity) {
		t.Errorf("selectivities not decreasing: %v %v %v",
			res.Rows[0].Selectivity, res.Rows[2].Selectivity, res.Rows[4].Selectivity)
	}
}

func TestRunT3Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunT3(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CandidateMatch {
		t.Error("candidate sets differ between placements")
	}
	if res.MaxValueDelta > 1e-9 {
		t.Errorf("operator semantics drift: max delta %v", res.MaxValueDelta)
	}
	// Warm OODBMS-side combination asks the IRS nothing.
	if res.DBSideEvals != 0 {
		t.Errorf("OODBMS-side combination evaluated %d IRS queries", res.DBSideEvals)
	}
	if res.IRSSideEvals != int64(res.Pairs) {
		t.Errorf("IRS-side evals = %d, want %d", res.IRSSideEvals, res.Pairs)
	}
}

func TestRunT4Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunT4(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// At high update:query ratio the deferred policies apply fewer
	// ops than immediate (collapsing bursts).
	imm := res.Row("50:1", "immediate")
	onq := res.Row("50:1", "on-query")
	man := res.Row("50:1", "manual")
	if imm == nil || onq == nil || man == nil {
		t.Fatal("missing rows")
	}
	if onq.OpsApplied >= imm.OpsApplied {
		t.Errorf("on-query applied %d >= immediate %d at 50:1", onq.OpsApplied, imm.OpsApplied)
	}
	if onq.OpsCancelled == 0 {
		t.Error("no cancellations under deferral at 50:1")
	}
	// Flush counts: immediate flushes per burst, on-query only per
	// query round.
	if imm.Flushes <= onq.Flushes {
		t.Errorf("immediate flushes %d <= on-query flushes %d", imm.Flushes, onq.Flushes)
	}
}

func TestRunT5Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunT5(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The document index costs real extra space ([SAZ94]'s problem).
	if res.OverheadPct < 10 {
		t.Errorf("doc-index overhead = %.1f%%, expected substantial", res.OverheadPct)
	}
	// Derivation keeps document retrieval usable.
	if res.DeriveMAP < 0.3 {
		t.Errorf("derive MAP = %v", res.DeriveMAP)
	}
	if res.DualMAP < 0.3 {
		t.Errorf("dual MAP = %v", res.DualMAP)
	}
}

func TestRunT6Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunT6(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ResultsEqual {
		t.Errorf("file exchange altered results (max delta %v)", res.MaxScoreDelta)
	}
}

func TestRunT7Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunT7(&buf)
	if err != nil {
		t.Fatal(err)
	}
	inf := res.Row("inference-net")
	vec := res.Row("vector")
	boolRow := res.Row("boolean")
	if inf == nil || vec == nil || boolRow == nil {
		t.Fatal("missing model rows")
	}
	// Probabilistic and vector models rank; boolean cannot.
	if !inf.Ranks || !vec.Ranks {
		t.Error("graded models report no ranking")
	}
	if boolRow.Ranks {
		t.Error("boolean model claims graded scores")
	}
	// All paradigms find the planted paragraphs reasonably well.
	for _, r := range res.Rows {
		if r.P10 < 0.3 {
			t.Errorf("%s: P@10 = %v", r.Model, r.P10)
		}
	}
}

func TestRunT8Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunT8(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The open-world paradox: #not(www) only returns www-containing
	// paragraphs.
	if !res.IRSNotSubset {
		t.Error("inference-net #not escaped its candidate set")
	}
	// Closed-world NOT is (near-)complementary and much larger.
	if res.VQLNotRows <= res.IRSNotRows {
		t.Errorf("VQL NOT rows %d <= IRS #not rows %d", res.VQLNotRows, res.IRSNotRows)
	}
	if !res.Disjoint {
		t.Error("VQL NOT overlapped the matching set")
	}
	// Boolean #not complements over all IRS documents.
	if res.BoolNotRows != res.TotalParas-res.WWWParas {
		t.Errorf("boolean #not = %d, want %d", res.BoolNotRows, res.TotalParas-res.WWWParas)
	}
}

func TestRunA1Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunA1(&buf)
	if err != nil {
		t.Fatal(err)
	}
	byPenalty := make(map[float64]A1Row, len(res.Rows))
	for _, r := range res.Rows {
		byPenalty[r.Penalty] = r
	}
	// The default 0.9 sits inside the valid interval.
	if r := byPenalty[0.9]; !r.StrictOrder {
		t.Errorf("default penalty 0.9 lost the ordering: %+v", r)
	}
	// Below the floor bound the M3/M4 separation collapses...
	if r := byPenalty[0.5]; r.M3SeparatedFromM4 {
		t.Errorf("penalty 0.5 should collapse M3 onto the default floor: %+v", r)
	}
	// ...and M2 stays on top throughout the sweep (co-occurrence is
	// never discounted).
	for _, r := range res.Rows {
		if r.M2 < r.M3-1e-9 {
			t.Errorf("penalty %.2f: M2 %v < M3 %v", r.Penalty, r.M2, r.M3)
		}
	}
}

func TestRunX1Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunX1(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Passage retrieval separates colocated discussion from
	// dispersed mention more sharply than whole-document scoring.
	if res.PassGap <= res.WholeGap {
		t.Errorf("passage gap %v <= whole-document gap %v", res.PassGap, res.WholeGap)
	}
	// And its ranking quality on the "discussed together" task is at
	// least as good.
	if res.PassAP < res.WholeAP-1e-9 {
		t.Errorf("passage AP %v < whole-doc AP %v", res.PassAP, res.WholeAP)
	}
	if res.PassageP < 0.8 {
		t.Errorf("passage P@%d = %v", res.Relevant, res.PassageP)
	}
}

func TestRunA2Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunA2(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Corpus and index grow monotonically with size.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Paras <= res.Rows[i-1].Paras {
			t.Errorf("paras not growing: %v", res.Rows)
		}
		if res.Rows[i].IndexBytes <= res.Rows[i-1].IndexBytes {
			t.Errorf("index bytes not growing: %v", res.Rows)
		}
	}
	// Warm queries stay cheap at every size (buffer hit).
	for _, r := range res.Rows {
		if r.WarmQuery > r.ColdQuery*10 {
			t.Errorf("docs=%d: warm %v unreasonably slow vs cold %v", r.Docs, r.WarmQuery, r.ColdQuery)
		}
	}
}

func TestRunS1Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunS1(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The engineering claim: partitioning must not change retrieval
	// results. (Timings are environment-dependent and only logged.)
	if !res.RankingsIdentical {
		t.Error("sharded rankings differ from single-shard rankings")
	}
	if res.Shards != 2 {
		t.Errorf("shards = %d, want 2", res.Shards)
	}
	if res.SingleRead <= 0 || res.ShardedRead <= 0 || res.SingleMixed <= 0 || res.ShardedMixed <= 0 {
		t.Errorf("missing timings: %+v", res)
	}
	if !strings.Contains(buf.String(), "EXP-S1") {
		t.Error("table missing")
	}
}

func TestRunS2Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunS2(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The correctness claims EXP-S2 makes in-repo:
	// 1. The async pipeline must not change retrieval results.
	if !res.RankingsIdentical {
		t.Error("async-ingested rankings differ from sync-ingested rankings")
	}
	// 2. Measured A/B: committing the same documents as one batch
	// must hold the commit lock for less time via the staged path
	// (pre-built postings) than via the pre-refactor path (analysis
	// under the lock).
	if !res.CommitHoldReduced {
		t.Errorf("commit-lock hold not reduced: staged %.3fms vs legacy %.3fms",
			res.StagedHoldMS, res.LegacyHoldMS)
	}
	if res.LegacyHoldMS <= 0 || res.StagedHoldMS <= 0 {
		t.Errorf("hold measurements missing: %+v", res)
	}
	// 3. Group commits actually grouped: the async run must have
	// committed its ops in fewer batches than the sync run flushed.
	if res.AsyncGroupCommits == 0 || res.AsyncGroupCommits >= res.SyncFlushes {
		t.Errorf("no group-commit advantage: %d async groups vs %d sync flushes",
			res.AsyncGroupCommits, res.SyncFlushes)
	}
	// 4. Throughput: at GOMAXPROCS > 1 the async pipeline must be at
	// least as fast as synchronous per-update propagation. (On one
	// CPU the comparison is logged but not gated.)
	if res.GOMAXPROCS > 1 && res.AsyncOpsPerSec < res.SyncOpsPerSec {
		t.Errorf("async ingest slower than sync: %.0f vs %.0f ops/s",
			res.AsyncOpsPerSec, res.SyncOpsPerSec)
	}
	if res.FlushErrors != 0 {
		t.Errorf("flush errors: %d", res.FlushErrors)
	}
	if res.SyncElapsed <= 0 || res.AsyncElapsed <= 0 || res.TotalOps == 0 {
		t.Errorf("missing measurements: %+v", res)
	}
	if !strings.Contains(buf.String(), "EXP-S2") {
		t.Error("table missing")
	}
}

func TestRunS3Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunS3(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance property EXP-S3 gates in-repo: for all four
	// models and k in {10, 100}, the streaming top-k result is exactly
	// the first k entries of the exhaustive ranking, bit-equal scores
	// included. (Timings are environment-dependent and only logged.)
	if !res.RankingsIdentical {
		t.Error("top-k rankings differ from the exhaustive prefix")
	}
	// The pruning machinery must actually engage on the synthetic
	// corpus — a zero pruned count would mean the bounds are vacuous.
	if res.Pruned == 0 {
		t.Error("no candidates pruned")
	}
	if res.Scored == 0 {
		t.Error("no candidates scored")
	}
	if res.Exhaustive <= 0 || res.Top10 <= 0 || res.Top100 <= 0 ||
		res.PassageExhaustive <= 0 || res.PassageTop10 <= 0 {
		t.Errorf("missing timings: %+v", res)
	}
	if !strings.Contains(buf.String(), "EXP-S3") {
		t.Error("table missing")
	}
}

// TestRunS4Shape is the CI gate for cross-shard threshold sharing
// (ISSUE 5 acceptance): rankings bit-identical to the exhaustive
// prefix with sharing on, candidates scored strictly below the
// per-shard-only baseline at k=10, and at least one whole shard scan
// skipped by the shared threshold at >= 4 shards.
func TestRunS4Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunS4(&buf, 4)
	if err != nil {
		t.Fatal(err) // includes the in-run ranking-equality gate
	}
	if !res.RankingsIdentical {
		t.Error("top-k rankings differ from the exhaustive prefix")
	}
	if res.SharedScored >= res.BaselineScored {
		t.Errorf("threshold sharing scored %d candidates, not strictly below the per-shard baseline %d",
			res.SharedScored, res.BaselineScored)
	}
	if res.ShardsSkipped == 0 {
		t.Error("no shard scan skipped by the shared threshold at 4 shards")
	}
	if res.BaselineTime <= 0 || res.SharedTime <= 0 {
		t.Errorf("missing timings: %+v", res)
	}
	if !strings.Contains(buf.String(), "EXP-S4") {
		t.Error("table missing")
	}
}

func TestRunS5Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunS5(&buf, 4)
	if err != nil {
		t.Fatal(err) // includes the exactness, block-skip and compression gates
	}
	if !res.RankingsIdentical {
		t.Error("top-k rankings differ from the exhaustive prefix")
	}
	if res.BlocksSkipped == 0 {
		t.Error("no compressed block left undecoded by block-max bounds")
	}
	if res.BlockMaxDecoded >= res.BaselineDecoded {
		t.Errorf("block-max decoded %d posting payloads, not below the whole-list baseline %d",
			res.BlockMaxDecoded, res.BaselineDecoded)
	}
	if res.CompressionRatio < 3 {
		t.Errorf("compression ratio %.2fx below the 3x gate", res.CompressionRatio)
	}
	if res.BaselineTime <= 0 || res.BlockMaxTime <= 0 {
		t.Errorf("missing timings: %+v", res)
	}
	if !strings.Contains(buf.String(), "EXP-S5") {
		t.Error("table missing")
	}
}

func TestRunS6Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunS6(&buf, 4)
	if err != nil {
		t.Fatal(err) // includes the cold-open, steady-state, equality and residency gates
	}
	if !res.RankingsIdentical {
		t.Error("heap and mapped rankings diverge")
	}
	if res.OpenSpeedup < 10 {
		t.Errorf("mapped cold open only %.1fx faster than heap, want >= 10x", res.OpenSpeedup)
	}
	if res.MappedBytes <= 0 {
		t.Errorf("mapped collection reports %d mapped bytes, want > 0", res.MappedBytes)
	}
	if res.FileBytes <= 4096 {
		t.Errorf("v5 file only %d bytes, smaller than one page", res.FileBytes)
	}
	if res.HeapSearch <= 0 || res.MappedSearch <= 0 {
		t.Errorf("missing timings: %+v", res)
	}
	if !strings.Contains(buf.String(), "EXP-S6") {
		t.Error("table missing")
	}
}

func TestRunS7Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunS7(&buf)
	if err != nil {
		t.Fatal(err) // includes the scored-reduction, throughput and equality gates
	}
	if !res.CacheRankingsSame || !res.CoalesceRankingsSame {
		t.Errorf("rankings diverge: cache same=%v coalesce same=%v",
			res.CacheRankingsSame, res.CoalesceRankingsSame)
	}
	if res.ScoredRatio > 0.8 {
		t.Errorf("2q scored %.1f%% of lru's candidates, want <= 80%%", 100*res.ScoredRatio)
	}
	// 2q may trade raw hit rate for scored reduction (it prefers
	// keeping expensive entries), so only sanity-check the rates.
	if res.HitRateLRU <= 0 || res.HitRate2Q <= 0 || res.HitRateLRU >= 1 || res.HitRate2Q >= 1 {
		t.Errorf("hit rates out of range: lru=%.3f 2q=%.3f", res.HitRateLRU, res.HitRate2Q)
	}
	if res.ScoredLRU <= 0 || res.Scored2Q <= 0 {
		t.Errorf("scored counters empty: %+v", res)
	}
	if res.FixedElapsed <= 0 || res.AdaptiveElapsed <= 0 {
		t.Errorf("missing ingest timings: %+v", res)
	}
	if !strings.Contains(buf.String(), "EXP-S7") {
		t.Error("table missing")
	}
}

func TestRunS8Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunS8(&buf)
	if err != nil {
		t.Fatal(err) // includes the overhead, ranking-equality, replay-floor and serving-surface gates
	}
	if !res.RankingsSame || !res.RecoveredSame {
		t.Errorf("rankings diverge: variants same=%v recovered same=%v",
			res.RankingsSame, res.RecoveredSame)
	}
	if res.RecoveredOps < 4000 {
		t.Errorf("recovery replayed %d ops, want >= 4000", res.RecoveredOps)
	}
	if res.WALBytes <= 0 || res.WALAppends <= 0 || res.WALFsyncs <= 0 {
		t.Errorf("wal counters empty: bytes=%d appends=%d fsyncs=%d",
			res.WALBytes, res.WALAppends, res.WALFsyncs)
	}
	for _, m := range []map[string]time.Duration{res.Sync, res.Async} {
		for _, name := range []string{"off", "group", "always"} {
			if m[name] <= 0 {
				t.Errorf("missing %s ingest timing", name)
			}
		}
	}
	if !res.StatsWAL || !res.MetricsWAL {
		t.Errorf("serving surface incomplete: stats=%v metrics=%v", res.StatsWAL, res.MetricsWAL)
	}
	if !strings.Contains(buf.String(), "EXP-S8") {
		t.Error("table missing")
	}
}
