package eval

import (
	"fmt"
	"io"
	"strings"
)

// Table is a plain-text result table, the output format of every
// experiment runner.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// fnum formats a float compactly for tables.
func fnum(v float64) string { return fmt.Sprintf("%.4f", v) }

// fms formats a duration in milliseconds.
func fms(d float64) string { return fmt.Sprintf("%.2fms", d) }
