package oodb

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openAt(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := Open(dir, Options{SyncWAL: false})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPersistenceWALReplay(t *testing.T) {
	dir := t.TempDir()
	db := openAt(t, dir)
	mustDefine(t, db, "Node", "", map[string]Kind{"label": KindString})
	a, _ := db.NewObject("Node", map[string]Value{"label": S("a")})
	b, _ := db.NewObject("Node", map[string]Value{"label": S("b"), "peer": Ref(a)})
	db.SetAttr(a, "peer", Ref(b))
	c, _ := db.NewObject("Node", nil)
	db.DeleteObject(c)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openAt(t, dir)
	defer db2.Close()
	if got := db2.ObjectCount(); got != 2 {
		t.Fatalf("ObjectCount after replay = %d, want 2", got)
	}
	v, ok := db2.Attr(a, "peer")
	if !ok || v.Ref != b {
		t.Errorf("a.peer = %v, %v", v, ok)
	}
	if db2.Exists(c) {
		t.Error("deleted object resurrected")
	}
	// Classes replayed too.
	if _, ok := db2.Class("Node"); !ok {
		t.Error("class lost")
	}
	// New OIDs don't collide with replayed ones.
	d, _ := db2.NewObject("Node", nil)
	if d == a || d == b || d == c {
		t.Errorf("OID %v reused", d)
	}
}

func TestPersistenceCheckpointAndReplaySuffix(t *testing.T) {
	dir := t.TempDir()
	db := openAt(t, dir)
	mustDefine(t, db, "Node", "", nil)
	a, _ := db.NewObject("Node", map[string]Value{"n": I(1)})
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint mutations land in the fresh WAL.
	db.SetAttr(a, "n", I(2))
	e, _ := db.NewObject("Node", nil)
	db.Close()

	db2 := openAt(t, dir)
	defer db2.Close()
	v, _ := db2.Attr(a, "n")
	if v.Int != 2 {
		t.Errorf("a.n = %v, want 2 (wal suffix lost?)", v)
	}
	if !db2.Exists(e) {
		t.Error("post-checkpoint object lost")
	}
	if got := db2.ObjectCount(); got != 2 {
		t.Errorf("ObjectCount = %d, want 2", got)
	}
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	db := openAt(t, dir)
	mustDefine(t, db, "Node", "", nil)
	for i := 0; i < 50; i++ {
		db.NewObject("Node", map[string]Value{"i": I(int64(i))})
	}
	sizeBefore := fileSize(t, filepath.Join(dir, walFile))
	if sizeBefore == 0 {
		t.Fatal("wal empty before checkpoint")
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := fileSize(t, filepath.Join(dir, walFile)); got != 0 {
		t.Errorf("wal size after checkpoint = %d, want 0", got)
	}
	db.Close()
	db2 := openAt(t, dir)
	defer db2.Close()
	if got := db2.ObjectCount(); got != 50 {
		t.Errorf("ObjectCount = %d, want 50", got)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if os.IsNotExist(err) {
		return 0
	}
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// Property: crashing (truncating the WAL) at ANY byte offset yields
// a database equal to some committed prefix of the transaction
// history — never a half-applied transaction.
func TestWALCrashAtAnyOffsetProperty(t *testing.T) {
	dir := t.TempDir()
	db := openAt(t, dir)
	mustDefine(t, db, "Node", "", nil)
	// Each tx i creates an object AND sets a marker; atomicity means
	// after recovery #objects == #markers.
	const txCount = 8
	oids := make([]OID, txCount)
	for i := 0; i < txCount; i++ {
		tx := db.Begin()
		oid, _ := tx.NewObject("Node", nil)
		tx.SetAttr(oid, "marker", I(int64(i)))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		oids[i] = oid
	}
	db.Close()
	walPath := filepath.Join(dir, walFile)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	f := func(cutRaw uint16) bool {
		cut := int(cutRaw) % (len(full) + 1)
		crashDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(crashDir, walFile), full[:cut], 0o644); err != nil {
			return false
		}
		db2, err := Open(crashDir, Options{})
		if err != nil {
			return false
		}
		defer db2.Close()
		// Prefix property: objects recover in tx order; each present
		// object must have its marker (atomicity).
		n := db2.ObjectCount()
		for i := 0; i < txCount; i++ {
			exists := db2.Exists(oids[i])
			if exists != (i < n) {
				return false // not a prefix
			}
			if exists {
				v, ok := db2.Attr(oids[i], "marker")
				if !ok || v.Int != int64(i) {
					return false // torn transaction
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWALCorruptTailTolerated(t *testing.T) {
	dir := t.TempDir()
	db := openAt(t, dir)
	mustDefine(t, db, "Node", "", nil)
	a, _ := db.NewObject("Node", nil)
	db.Close()
	// Append garbage to the WAL (simulates a torn write).
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01})
	f.Close()

	db2 := openAt(t, dir)
	defer db2.Close()
	if !db2.Exists(a) {
		t.Error("intact prefix lost")
	}
	// The torn tail must have been truncated so appends work.
	b, err := db2.NewObject("Node", nil)
	if err != nil {
		t.Fatal(err)
	}
	db2.Close()
	db3 := openAt(t, dir)
	defer db3.Close()
	if !db3.Exists(b) {
		t.Error("append after torn tail lost")
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	db := openAt(t, dir)
	mustDefine(t, db, "Node", "", nil)
	db.NewObject("Node", nil)
	db.Checkpoint()
	db.Close()
	path := filepath.Join(dir, snapshotFile)
	data, _ := os.ReadFile(path)
	data[len(data)-6] ^= 0xff // flip a payload byte
	os.WriteFile(path, data, 0o644)
	if _, err := Open(dir, Options{}); err == nil {
		t.Error("corrupt snapshot loaded silently")
	}
}

func TestMemoryOnlyDatabaseSkipsFiles(t *testing.T) {
	db, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustDefine(t, db, "Node", "", nil)
	if _, err := db.NewObject("Node", nil); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Errorf("memory checkpoint should be a no-op: %v", err)
	}
}

func TestCloseIsIdempotentAndBlocksWrites(t *testing.T) {
	dir := t.TempDir()
	db := openAt(t, dir)
	mustDefine(t, db, "Node", "", nil)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if _, err := db.NewObject("Node", nil); err == nil {
		t.Error("write to closed db succeeded")
	}
}
