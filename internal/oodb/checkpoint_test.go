package oodb

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// refState is an in-memory reference model of the store used to
// cross-check recovery: object -> attrs.
type refState map[OID]map[string]Value

// applyRandomOps mutates db and ref identically with a deterministic
// op stream, optionally checkpointing mid-stream.
func applyRandomOps(t *testing.T, db *DB, ref refState, rng *rand.Rand, n int, checkpointAt int) {
	t.Helper()
	oids := make([]OID, 0, n)
	for existing := range ref {
		oids = append(oids, existing)
	}
	SortOIDs(oids)
	for i := 0; i < n; i++ {
		if i == checkpointAt {
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		switch {
		case len(oids) == 0 || rng.Intn(3) == 0: // create
			oid, err := db.NewObject("Node", map[string]Value{
				"n": I(int64(i)),
			})
			if err != nil {
				t.Fatal(err)
			}
			ref[oid] = map[string]Value{"n": I(int64(i))}
			oids = append(oids, oid)
		case rng.Intn(3) == 0: // delete
			idx := rng.Intn(len(oids))
			oid := oids[idx]
			if err := db.DeleteObject(oid); err != nil {
				t.Fatal(err)
			}
			delete(ref, oid)
			oids = append(oids[:idx], oids[idx+1:]...)
		default: // modify
			oid := oids[rng.Intn(len(oids))]
			attr := fmt.Sprintf("a%d", rng.Intn(4))
			v := Value{}
			switch rng.Intn(4) {
			case 0:
				v = S(fmt.Sprintf("s%d", i))
			case 1:
				v = F(float64(i) / 3)
			case 2:
				v = L(I(int64(i)), S("x"))
			case 3:
				v = Ref(oid)
			}
			if err := db.SetAttr(oid, attr, v); err != nil {
				t.Fatal(err)
			}
			ref[oid][attr] = v
		}
	}
}

func verifyAgainstRef(t *testing.T, db *DB, ref refState) {
	t.Helper()
	if got := db.ObjectCount(); got != len(ref) {
		t.Fatalf("ObjectCount = %d, want %d", got, len(ref))
	}
	for oid, attrs := range ref {
		got, ok := db.Attrs(oid)
		if !ok {
			t.Fatalf("object %v missing", oid)
		}
		if len(got) != len(attrs) {
			t.Fatalf("object %v attrs = %v, want %v", oid, got, attrs)
		}
		for name, want := range attrs {
			if !got[name].Equal(want) {
				t.Fatalf("object %v attr %s = %v, want %v", oid, name, got[name], want)
			}
		}
	}
}

// Property: for any op stream with a checkpoint at any position,
// reopening the database reproduces the reference state exactly
// (snapshot + WAL-suffix recovery equivalence).
func TestCheckpointRecoveryEquivalenceProperty(t *testing.T) {
	f := func(seed int64, cpRaw uint8) bool {
		dir := t.TempDir()
		db, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.DefineClass("Node", "", nil); err != nil {
			t.Fatal(err)
		}
		const opCount = 40
		rng := rand.New(rand.NewSource(seed))
		ref := make(refState)
		applyRandomOps(t, db, ref, rng, opCount, int(cpRaw)%opCount)
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		db2, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer db2.Close()
		verifyAgainstRef(t, db2, ref)
		// The reopened database accepts further work and another
		// recovery cycle.
		rng2 := rand.New(rand.NewSource(seed + 1))
		applyRandomOps(t, db2, ref, rng2, 10, -1)
		db2.Close()
		db3, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer db3.Close()
		verifyAgainstRef(t, db3, ref)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Double checkpoint and checkpoint-on-empty must be safe.
func TestCheckpointIdempotent(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustDefine(t, db, "Node", "", nil)
	oid, _ := db.NewObject("Node", nil)
	db.Checkpoint()
	db.Checkpoint()
	db.Close()
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if !db2.Exists(oid) {
		t.Error("object lost across double checkpoint")
	}
}
