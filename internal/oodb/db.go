package oodb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Sentinel errors.
var (
	ErrNoSuchObject  = errors.New("oodb: no such object")
	ErrNoSuchClass   = errors.New("oodb: no such class")
	ErrClassExists   = errors.New("oodb: class already defined")
	ErrNoSuchMethod  = errors.New("oodb: no such method")
	ErrTypeMismatch  = errors.New("oodb: attribute type mismatch")
	ErrTxDone        = errors.New("oodb: transaction already finished")
	ErrClosed        = errors.New("oodb: database closed")
	ErrCycleInSchema = errors.New("oodb: inheritance cycle")
)

// Class describes an element of the schema. Classes form a single-
// inheritance hierarchy (VML-style isA). Attrs optionally declares
// typed attributes; writes to declared attributes are kind-checked,
// undeclared attributes are schema-free (VODAK's own-slot
// flexibility).
type Class struct {
	Name  string
	Super string
	Attrs map[string]Kind
}

// object is the stored representation. Attribute values are treated
// as immutable once stored; mutation goes through SetAttr.
type object struct {
	class string
	attrs map[string]Value
}

// Options configures Open.
type Options struct {
	// SyncWAL forces an fsync after every commit. Durable but slow;
	// benchmarks and bulk loads disable it.
	SyncWAL bool
}

// DB is the object store. All exported methods are safe for
// concurrent use; writes are serialized by transaction commit.
type DB struct {
	mu      sync.RWMutex
	dir     string
	wal     *walWriter
	closed  bool
	classes map[string]*Class
	objects map[OID]*object
	extents map[string]map[OID]struct{}
	nextOID atomic.Uint64
	nextTx  atomic.Uint64

	methodMu sync.RWMutex
	methods  map[string]map[string]Method
	costs    map[string]float64

	hookMu sync.RWMutex
	hooks  []UpdateHook
}

// UpdateKind classifies a committed mutation for update hooks.
type UpdateKind uint8

// Update kinds reported to hooks.
const (
	UpdateCreate UpdateKind = iota
	UpdateModify
	UpdateDelete
)

func (k UpdateKind) String() string {
	switch k {
	case UpdateCreate:
		return "create"
	case UpdateModify:
		return "modify"
	case UpdateDelete:
		return "delete"
	}
	return "?"
}

// Update is one committed mutation event.
type Update struct {
	Kind  UpdateKind
	OID   OID
	Class string
	Attr  string // modified attribute; "" for create/delete
}

// UpdateHook observes committed mutations. Hooks run after the
// commit has been applied and the lock released; the coupling layer
// uses them to drive IRS update propagation (Section 4.6).
type UpdateHook func(u Update)

// Method is a database method: executable behaviour attached to a
// class, invoked through Call with dynamic dispatch along the isA
// chain. Methods read the database through db and must not mutate it
// (queries are side-effect free; updates go through transactions).
type Method func(db *DB, self OID, args []Value) (Value, error)

const (
	snapshotFile = "snapshot.odb"
	walFile      = "wal.log"
)

// Open opens (or creates) a database. With dir == "" the database is
// memory-only: no WAL, no snapshot, full speed — used by tests and
// benchmarks that do not exercise durability.
func Open(dir string, opts Options) (*DB, error) {
	db := &DB{
		dir:     dir,
		classes: make(map[string]*Class),
		objects: make(map[OID]*object),
		extents: make(map[string]map[OID]struct{}),
		methods: make(map[string]map[string]Method),
		costs:   make(map[string]float64),
	}
	db.nextOID.Store(1)
	if dir == "" {
		return db, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("oodb: create dir: %w", err)
	}
	if err := db.loadSnapshot(filepath.Join(dir, snapshotFile)); err != nil {
		return nil, err
	}
	walPath := filepath.Join(dir, walFile)
	intact, err := replayWAL(walPath, func(txid uint64, ops []walOp) error {
		db.applyOps(ops)
		if txid >= db.nextTx.Load() {
			db.nextTx.Store(txid + 1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Drop any torn tail so the next append starts on a record
	// boundary.
	if fi, err := os.Stat(walPath); err == nil && fi.Size() > intact {
		if err := os.Truncate(walPath, intact); err != nil {
			return nil, fmt.Errorf("oodb: truncate torn wal: %w", err)
		}
	}
	w, err := openWAL(walPath, opts.SyncWAL)
	if err != nil {
		return nil, err
	}
	db.wal = w
	return db, nil
}

// Close flushes and closes the database.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	if db.wal != nil {
		return db.wal.close()
	}
	return nil
}

// Dir returns the database directory ("" for memory-only).
func (db *DB) Dir() string { return db.dir }

// applyOps installs committed operations into memory. Callers hold
// the write lock (or have exclusive access during recovery).
func (db *DB) applyOps(ops []walOp) []Update {
	updates := make([]Update, 0, len(ops))
	for _, op := range ops {
		switch op.typ {
		case opDefClass:
			attrs := op.attrs
			if attrs == nil {
				attrs = map[string]Kind{}
			}
			db.classes[op.class] = &Class{Name: op.class, Super: op.super, Attrs: attrs}
			if db.extents[op.class] == nil {
				db.extents[op.class] = make(map[OID]struct{})
			}
		case opCreate:
			db.objects[op.oid] = &object{class: op.class, attrs: make(map[string]Value)}
			if db.extents[op.class] == nil {
				db.extents[op.class] = make(map[OID]struct{})
			}
			db.extents[op.class][op.oid] = struct{}{}
			if uint64(op.oid) >= db.nextOID.Load() {
				db.nextOID.Store(uint64(op.oid) + 1)
			}
			updates = append(updates, Update{Kind: UpdateCreate, OID: op.oid, Class: op.class})
		case opSet:
			if obj := db.objects[op.oid]; obj != nil {
				obj.attrs[op.attr] = op.val
				updates = append(updates, Update{Kind: UpdateModify, OID: op.oid, Class: obj.class, Attr: op.attr})
			}
		case opDelete:
			if obj := db.objects[op.oid]; obj != nil {
				delete(db.extents[obj.class], op.oid)
				delete(db.objects, op.oid)
				updates = append(updates, Update{Kind: UpdateDelete, OID: op.oid, Class: obj.class})
			}
		}
	}
	return updates
}

// DefineClass adds a class to the schema. super may be "" for a
// root class and must name an existing class otherwise. The schema
// change is durable (logged like a transaction).
func (db *DB) DefineClass(name, super string, attrs map[string]Kind) error {
	if name == "" {
		return errors.New("oodb: empty class name")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if _, ok := db.classes[name]; ok {
		return fmt.Errorf("%w: %q", ErrClassExists, name)
	}
	if super != "" {
		if _, ok := db.classes[super]; !ok {
			return fmt.Errorf("%w: superclass %q", ErrNoSuchClass, super)
		}
	}
	ops := []walOp{{typ: opDefClass, class: name, super: super, attrs: attrs}}
	if db.wal != nil {
		if err := db.wal.appendTx(db.nextTx.Add(1), ops); err != nil {
			return err
		}
	}
	db.applyOps(ops)
	return nil
}

// Class returns the class descriptor.
func (db *DB) Class(name string) (*Class, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	c, ok := db.classes[name]
	return c, ok
}

// Classes returns all class names, sorted.
func (db *DB) Classes() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.classes))
	for n := range db.classes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// IsA reports whether class equals or transitively inherits from
// ancestor.
func (db *DB) IsA(class, ancestor string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.isALocked(class, ancestor)
}

func (db *DB) isALocked(class, ancestor string) bool {
	for class != "" {
		if class == ancestor {
			return true
		}
		c, ok := db.classes[class]
		if !ok {
			return false
		}
		class = c.Super
	}
	return false
}

// Subclasses returns class and every class transitively inheriting
// from it, sorted.
func (db *DB) Subclasses(class string) []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []string
	for name := range db.classes {
		if db.isALocked(name, class) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Extent returns the OIDs of the direct instances of class; with
// deep, instances of subclasses are included. The result is sorted.
func (db *DB) Extent(class string, deep bool) []OID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []OID
	if !deep {
		for oid := range db.extents[class] {
			out = append(out, oid)
		}
		return SortOIDs(out)
	}
	for name := range db.classes {
		if !db.isALocked(name, class) {
			continue
		}
		for oid := range db.extents[name] {
			out = append(out, oid)
		}
	}
	return SortOIDs(out)
}

// ClassOf returns the class of an object.
func (db *DB) ClassOf(oid OID) (string, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	obj, ok := db.objects[oid]
	if !ok {
		return "", false
	}
	return obj.class, true
}

// Exists reports whether the object is stored.
func (db *DB) Exists(oid OID) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.objects[oid]
	return ok
}

// Attr reads one attribute. The second result is false when the
// object does not exist or the attribute is unset.
func (db *DB) Attr(oid OID, name string) (Value, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	obj, ok := db.objects[oid]
	if !ok {
		return Null(), false
	}
	v, ok := obj.attrs[name]
	return v, ok
}

// Attrs returns a copy of all attributes of an object.
func (db *DB) Attrs(oid OID) (map[string]Value, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	obj, ok := db.objects[oid]
	if !ok {
		return nil, false
	}
	out := make(map[string]Value, len(obj.attrs))
	for k, v := range obj.attrs {
		out[k] = v
	}
	return out, true
}

// ObjectCount returns the number of stored objects.
func (db *DB) ObjectCount() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.objects)
}

// AddUpdateHook registers a committed-mutation observer.
func (db *DB) AddUpdateHook(h UpdateHook) {
	db.hookMu.Lock()
	defer db.hookMu.Unlock()
	db.hooks = append(db.hooks, h)
}

func (db *DB) fireHooks(updates []Update) {
	if len(updates) == 0 {
		return
	}
	db.hookMu.RLock()
	hooks := db.hooks
	db.hookMu.RUnlock()
	for _, h := range hooks {
		for _, u := range updates {
			h(u)
		}
	}
}

// RegisterMethod attaches behaviour to a class. Registration is a
// runtime concern (methods are Go functions), not persisted.
func (db *DB) RegisterMethod(class, name string, fn Method) {
	db.methodMu.Lock()
	defer db.methodMu.Unlock()
	m := db.methods[class]
	if m == nil {
		m = make(map[string]Method)
		db.methods[class] = m
	}
	m[name] = fn
}

// SetMethodCost annotates a method with a relative evaluation cost
// for the VQL optimizer (method-based query optimization, [AbF95]).
// The default cost is 1; IRS-backed methods are orders of magnitude
// more expensive than attribute accessors.
func (db *DB) SetMethodCost(class, name string, cost float64) {
	db.methodMu.Lock()
	defer db.methodMu.Unlock()
	db.costs[class+"->"+name] = cost
}

// MethodCost returns the annotated cost of the method as resolved
// for class (walking the isA chain), defaulting to 1.
func (db *DB) MethodCost(class, name string) float64 {
	db.mu.RLock()
	chain := db.classChain(class)
	db.mu.RUnlock()
	db.methodMu.RLock()
	defer db.methodMu.RUnlock()
	for _, c := range chain {
		if cost, ok := db.costs[c+"->"+name]; ok {
			return cost
		}
	}
	return 1
}

func (db *DB) classChain(class string) []string {
	var chain []string
	for class != "" {
		chain = append(chain, class)
		c, ok := db.classes[class]
		if !ok {
			break
		}
		class = c.Super
	}
	return chain
}

// ResolveMethod finds the method implementation for class, walking
// the inheritance chain (dynamic dispatch).
func (db *DB) ResolveMethod(class, name string) (Method, bool) {
	db.mu.RLock()
	chain := db.classChain(class)
	db.mu.RUnlock()
	db.methodMu.RLock()
	defer db.methodMu.RUnlock()
	for _, c := range chain {
		if fn, ok := db.methods[c][name]; ok {
			return fn, true
		}
	}
	return nil, false
}

// Call invokes a method on an object with dynamic dispatch.
func (db *DB) Call(self OID, name string, args ...Value) (Value, error) {
	class, ok := db.ClassOf(self)
	if !ok {
		return Null(), fmt.Errorf("%w: %s", ErrNoSuchObject, self)
	}
	fn, ok := db.ResolveMethod(class, name)
	if !ok {
		return Null(), fmt.Errorf("%w: %s->%s", ErrNoSuchMethod, class, name)
	}
	return fn(db, self, args)
}

// checkAttrKind validates a write against the declared attribute
// kinds along the inheritance chain. Undeclared attributes are
// schema-free. Null is always allowed.
func (db *DB) checkAttrKind(class, attr string, v Value) error {
	if v.IsNull() {
		return nil
	}
	for _, c := range db.classChain(class) {
		cl, ok := db.classes[c]
		if !ok {
			break
		}
		if want, declared := cl.Attrs[attr]; declared {
			if v.Kind != want {
				return fmt.Errorf("%w: %s.%s wants %s, got %s", ErrTypeMismatch, class, attr, want, v.Kind)
			}
			return nil
		}
	}
	return nil
}

func sortStrings(s []string) { sort.Strings(s) }
