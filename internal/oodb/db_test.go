package oodb

import (
	"errors"
	"sync"
	"testing"
)

// memDB returns a memory-only database with a small schema.
func memDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustDefine(t, db, "IRSObject", "", nil)
	mustDefine(t, db, "Element", "IRSObject", map[string]Kind{
		"type": KindString,
	})
	mustDefine(t, db, "PARA", "Element", nil)
	mustDefine(t, db, "MMFDOC", "Element", nil)
	return db
}

func mustDefine(t *testing.T, db *DB, name, super string, attrs map[string]Kind) {
	t.Helper()
	if err := db.DefineClass(name, super, attrs); err != nil {
		t.Fatalf("DefineClass(%s): %v", name, err)
	}
}

func TestDefineClassValidation(t *testing.T) {
	db := memDB(t)
	if err := db.DefineClass("PARA", "Element", nil); !errors.Is(err, ErrClassExists) {
		t.Errorf("redefine: %v", err)
	}
	if err := db.DefineClass("X", "Ghost", nil); !errors.Is(err, ErrNoSuchClass) {
		t.Errorf("bad super: %v", err)
	}
	if err := db.DefineClass("", "", nil); err == nil {
		t.Error("empty class name accepted")
	}
}

func TestIsAAndSubclasses(t *testing.T) {
	db := memDB(t)
	if !db.IsA("PARA", "IRSObject") {
		t.Error("PARA should be an IRSObject")
	}
	if !db.IsA("PARA", "PARA") {
		t.Error("IsA should be reflexive")
	}
	if db.IsA("IRSObject", "PARA") {
		t.Error("IsA inverted")
	}
	subs := db.Subclasses("Element")
	want := []string{"Element", "MMFDOC", "PARA"}
	if len(subs) != len(want) {
		t.Fatalf("Subclasses = %v, want %v", subs, want)
	}
	for i := range want {
		if subs[i] != want[i] {
			t.Errorf("Subclasses[%d] = %q, want %q", i, subs[i], want[i])
		}
	}
}

func TestNewObjectAndExtent(t *testing.T) {
	db := memDB(t)
	p1, err := db.NewObject("PARA", map[string]Value{"text": S("hello")})
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := db.NewObject("PARA", nil)
	d1, _ := db.NewObject("MMFDOC", nil)
	if p1 == p2 || p1 == NilOID {
		t.Fatalf("bad OIDs %v %v", p1, p2)
	}
	if got := db.Extent("PARA", false); len(got) != 2 {
		t.Errorf("Extent(PARA) = %v", got)
	}
	deep := db.Extent("IRSObject", true)
	if len(deep) != 3 {
		t.Errorf("deep Extent(IRSObject) = %v, want 3 oids", deep)
	}
	if got := db.Extent("IRSObject", false); len(got) != 0 {
		t.Errorf("shallow Extent(IRSObject) = %v, want empty", got)
	}
	class, ok := db.ClassOf(d1)
	if !ok || class != "MMFDOC" {
		t.Errorf("ClassOf(d1) = %q, %v", class, ok)
	}
	if _, err := db.NewObject("Ghost", nil); !errors.Is(err, ErrNoSuchClass) {
		t.Errorf("NewObject(Ghost): %v", err)
	}
}

func TestAttrReadWrite(t *testing.T) {
	db := memDB(t)
	p, _ := db.NewObject("PARA", map[string]Value{"text": S("telnet")})
	v, ok := db.Attr(p, "text")
	if !ok || v.Str != "telnet" {
		t.Fatalf("Attr = %v, %v", v, ok)
	}
	if _, ok := db.Attr(p, "missing"); ok {
		t.Error("missing attr reported present")
	}
	if err := db.SetAttr(p, "text", S("gopher")); err != nil {
		t.Fatal(err)
	}
	v, _ = db.Attr(p, "text")
	if v.Str != "gopher" {
		t.Errorf("after SetAttr: %v", v)
	}
	attrs, ok := db.Attrs(p)
	if !ok || len(attrs) != 1 {
		t.Errorf("Attrs = %v, %v", attrs, ok)
	}
	if err := db.SetAttr(OID(9999), "x", I(1)); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("SetAttr on ghost: %v", err)
	}
}

func TestDeclaredAttrTypeChecking(t *testing.T) {
	db := memDB(t)
	p, _ := db.NewObject("PARA", nil)
	// "type" is declared KindString on Element (inherited by PARA).
	if err := db.SetAttr(p, "type", I(1)); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("kind mismatch: %v", err)
	}
	if err := db.SetAttr(p, "type", S("PARA")); err != nil {
		t.Errorf("valid kind rejected: %v", err)
	}
	// Null always allowed.
	if err := db.SetAttr(p, "type", Null()); err != nil {
		t.Errorf("null rejected: %v", err)
	}
	// Undeclared attributes are schema-free.
	if err := db.SetAttr(p, "whatever", L(I(1), S("x"))); err != nil {
		t.Errorf("undeclared attr rejected: %v", err)
	}
}

func TestDeleteObject(t *testing.T) {
	db := memDB(t)
	p, _ := db.NewObject("PARA", nil)
	if err := db.DeleteObject(p); err != nil {
		t.Fatal(err)
	}
	if db.Exists(p) {
		t.Error("object survives delete")
	}
	if got := db.Extent("PARA", false); len(got) != 0 {
		t.Errorf("extent after delete = %v", got)
	}
	if err := db.DeleteObject(p); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("double delete: %v", err)
	}
}

func TestTxReadYourWritesAndAbort(t *testing.T) {
	db := memDB(t)
	tx := db.Begin()
	p, err := tx.NewObject("PARA", map[string]Value{"text": S("draft")})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := tx.Attr(p, "text"); !ok || v.Str != "draft" {
		t.Errorf("tx.Attr = %v, %v", v, ok)
	}
	// Invisible outside before commit.
	if db.Exists(p) {
		t.Error("uncommitted object visible")
	}
	tx.Abort()
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Errorf("commit after abort: %v", err)
	}
	if db.Exists(p) {
		t.Error("aborted object exists")
	}
}

func TestTxCommitAtomicity(t *testing.T) {
	db := memDB(t)
	tx := db.Begin()
	a, _ := tx.NewObject("PARA", nil)
	b, _ := tx.NewObject("PARA", nil)
	tx.SetAttr(a, "next", Ref(b))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if !db.Exists(a) || !db.Exists(b) {
		t.Error("committed objects missing")
	}
	v, _ := db.Attr(a, "next")
	if v.Ref != b {
		t.Errorf("attr lost: %v", v)
	}
}

func TestTxDeleteVisibility(t *testing.T) {
	db := memDB(t)
	p, _ := db.NewObject("PARA", map[string]Value{"text": S("x")})
	tx := db.Begin()
	if err := tx.DeleteObject(p); err != nil {
		t.Fatal(err)
	}
	if _, ok := tx.Attr(p, "text"); ok {
		t.Error("deleted object readable inside tx")
	}
	if err := tx.SetAttr(p, "text", S("y")); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("write to tx-deleted object: %v", err)
	}
	// Still visible outside until commit.
	if !db.Exists(p) {
		t.Error("delete leaked before commit")
	}
	tx.Commit()
	if db.Exists(p) {
		t.Error("object survives committed delete")
	}
}

func TestTxCommitConflict(t *testing.T) {
	db := memDB(t)
	p, _ := db.NewObject("PARA", nil)
	tx := db.Begin()
	if err := tx.SetAttr(p, "text", S("stale")); err != nil {
		t.Fatal(err)
	}
	// A racing transaction deletes p and commits first.
	if err := db.DeleteObject(p); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Error("conflicting commit succeeded")
	}
}

func TestUpdateHooks(t *testing.T) {
	db := memDB(t)
	var mu sync.Mutex
	var events []Update
	db.AddUpdateHook(func(u Update) {
		mu.Lock()
		events = append(events, u)
		mu.Unlock()
	})
	p, _ := db.NewObject("PARA", map[string]Value{"text": S("a")})
	db.SetAttr(p, "text", S("b"))
	db.DeleteObject(p)
	mu.Lock()
	defer mu.Unlock()
	// create (+1 set from initial attrs), modify, delete
	kinds := make([]UpdateKind, len(events))
	for i, e := range events {
		kinds[i] = e.Kind
	}
	if len(events) != 4 {
		t.Fatalf("events = %v", kinds)
	}
	if events[0].Kind != UpdateCreate || events[3].Kind != UpdateDelete {
		t.Errorf("unexpected hook order: %v", kinds)
	}
	if events[1].Attr != "text" {
		t.Errorf("modify attr = %q", events[1].Attr)
	}
}

func TestMethodDispatchAndInheritance(t *testing.T) {
	db := memDB(t)
	db.RegisterMethod("IRSObject", "greet", func(db *DB, self OID, args []Value) (Value, error) {
		return S("irsobject"), nil
	})
	db.RegisterMethod("PARA", "greet", func(db *DB, self OID, args []Value) (Value, error) {
		return S("para"), nil
	})
	p, _ := db.NewObject("PARA", nil)
	d, _ := db.NewObject("MMFDOC", nil)
	if v, err := db.Call(p, "greet"); err != nil || v.Str != "para" {
		t.Errorf("Call(p) = %v, %v", v, err)
	}
	// MMFDOC has no own greet; inherits from IRSObject.
	if v, err := db.Call(d, "greet"); err != nil || v.Str != "irsobject" {
		t.Errorf("Call(d) = %v, %v", v, err)
	}
	if _, err := db.Call(p, "ghost"); !errors.Is(err, ErrNoSuchMethod) {
		t.Errorf("missing method: %v", err)
	}
	if _, err := db.Call(OID(12345), "greet"); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("missing object: %v", err)
	}
}

func TestMethodCostInheritance(t *testing.T) {
	db := memDB(t)
	db.SetMethodCost("IRSObject", "getIRSValue", 1000)
	if got := db.MethodCost("PARA", "getIRSValue"); got != 1000 {
		t.Errorf("inherited cost = %v, want 1000", got)
	}
	db.SetMethodCost("PARA", "getIRSValue", 500)
	if got := db.MethodCost("PARA", "getIRSValue"); got != 500 {
		t.Errorf("own cost = %v, want 500", got)
	}
	if got := db.MethodCost("PARA", "length"); got != 1 {
		t.Errorf("default cost = %v, want 1", got)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	db := memDB(t)
	seed := make([]OID, 20)
	for i := range seed {
		seed[i], _ = db.NewObject("PARA", map[string]Value{"n": I(int64(i))})
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				db.Extent("IRSObject", true)
				db.Attr(seed[i%len(seed)], "n")
			}
		}()
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				oid, err := db.NewObject("PARA", map[string]Value{"g": I(int64(g))})
				if err != nil {
					t.Error(err)
					return
				}
				db.SetAttr(oid, "g", I(int64(i)))
			}
		}(g)
	}
	wg.Wait()
	if got := db.ObjectCount(); got != 20+4*50 {
		t.Errorf("ObjectCount = %d, want %d", got, 20+4*50)
	}
}

func TestEmptyCommitIsNoop(t *testing.T) {
	db := memDB(t)
	tx := db.Begin()
	if err := tx.Commit(); err != nil {
		t.Errorf("empty commit: %v", err)
	}
}
