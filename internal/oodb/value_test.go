package oodb

import (
	"testing"
	"testing/quick"
)

func TestOIDStringRoundTrip(t *testing.T) {
	for _, oid := range []OID{NilOID, 1, 42, 1 << 40} {
		s := oid.String()
		got, err := ParseOID(s)
		if err != nil {
			t.Errorf("ParseOID(%q): %v", s, err)
		}
		if got != oid {
			t.Errorf("round trip %v -> %q -> %v", oid, s, got)
		}
	}
	for _, bad := range []string{"", "42", "oidx", "oid-3"} {
		if _, err := ParseOID(bad); err == nil {
			t.Errorf("ParseOID(%q) succeeded", bad)
		}
	}
}

func TestValueTruthy(t *testing.T) {
	tests := []struct {
		v    Value
		want bool
	}{
		{Null(), false},
		{B(true), true},
		{B(false), false},
		{I(0), false},
		{I(-1), true},
		{F(0), false},
		{F(0.1), true},
		{S(""), false},
		{S("x"), true},
		{Ref(NilOID), false},
		{Ref(1), true},
		{L(), false},
		{L(I(1)), true},
	}
	for _, tt := range tests {
		if got := tt.v.Truthy(); got != tt.want {
			t.Errorf("Truthy(%s) = %v, want %v", tt.v, got, tt.want)
		}
	}
}

func TestValueEqualCoercion(t *testing.T) {
	if !I(3).Equal(F(3.0)) {
		t.Error("I(3) != F(3.0)")
	}
	if I(3).Equal(S("3")) {
		t.Error("I(3) == S(\"3\")")
	}
	if !L(I(1), S("a")).Equal(L(F(1), S("a"))) {
		t.Error("list equality with coercion failed")
	}
	if L(I(1)).Equal(L(I(1), I(2))) {
		t.Error("lists of different length equal")
	}
	if !Null().Equal(Null()) {
		t.Error("null != null")
	}
}

func TestValueCompare(t *testing.T) {
	if c, err := I(1).Compare(F(2)); err != nil || c != -1 {
		t.Errorf("1 cmp 2.0 = %d, %v", c, err)
	}
	if c, err := S("b").Compare(S("a")); err != nil || c != 1 {
		t.Errorf("b cmp a = %d, %v", c, err)
	}
	if c, err := Ref(5).Compare(Ref(5)); err != nil || c != 0 {
		t.Errorf("oid5 cmp oid5 = %d, %v", c, err)
	}
	if _, err := S("a").Compare(I(1)); err == nil {
		t.Error("string cmp int succeeded")
	}
	if _, err := B(true).Compare(B(false)); err == nil {
		t.Error("bool ordering succeeded")
	}
}

func TestOIDListHelpers(t *testing.T) {
	v := RefList([]OID{3, 1, 2})
	got := v.OIDList()
	if len(got) != 3 || got[0] != 3 || got[2] != 2 {
		t.Errorf("OIDList = %v", got)
	}
	if I(1).OIDList() != nil {
		t.Error("OIDList on non-list should be nil")
	}
	mixed := L(Ref(1), S("x"), Ref(2))
	if got := mixed.OIDList(); len(got) != 2 {
		t.Errorf("OIDList skips non-refs: %v", got)
	}
}

// Property: encode/decode round-trips arbitrary (bounded) values.
func TestValueCodecRoundTripProperty(t *testing.T) {
	var gen func(r *quickSource, depth int) Value
	gen = func(r *quickSource, depth int) Value {
		switch r.intn(7) {
		case 0:
			return Null()
		case 1:
			return B(r.intn(2) == 0)
		case 2:
			return I(int64(r.intn(1<<30)) - (1 << 29))
		case 3:
			return F(float64(r.intn(1000))/7.0 - 50)
		case 4:
			return S(randWord(r))
		case 5:
			return Ref(OID(r.intn(1 << 20)))
		default:
			if depth <= 0 {
				return I(int64(r.intn(10)))
			}
			n := r.intn(4)
			vs := make([]Value, n)
			for i := range vs {
				vs[i] = gen(r, depth-1)
			}
			return Value{Kind: KindList, List: vs}
		}
	}
	f := func(seed int64) bool {
		r := &quickSource{state: uint64(seed)*0x9E3779B97F4A7C15 + 1}
		v := gen(r, 3)
		var e encoder
		e.value(v)
		d := &decoder{data: e.bytes()}
		got, err := d.value()
		if err != nil {
			return false
		}
		return got.Equal(v) && got.Kind == v.Kind
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

type quickSource struct{ state uint64 }

func (r *quickSource) intn(n int) int {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return int((r.state >> 33) % uint64(n))
}

func randWord(r *quickSource) string {
	const letters = "abcdefghij"
	n := r.intn(12)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[r.intn(len(letters))]
	}
	return string(b)
}

func TestDecoderRejectsTruncation(t *testing.T) {
	var e encoder
	e.value(L(S("hello"), I(42), Ref(7)))
	full := e.bytes()
	for cut := 0; cut < len(full); cut++ {
		d := &decoder{data: full[:cut]}
		if _, err := d.value(); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", cut, len(full))
		}
	}
}
