package oodb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// Write-ahead log. Because commits are serialized, each committed
// transaction is framed as ONE log record:
//
//	u32 payload length | payload | u32 crc32(payload)
//
// payload = txid u64 | op count u32 | ops. A torn tail (incomplete
// last record or CRC mismatch) is tolerated on recovery: the intact
// prefix is applied, the tail is discarded and truncated away —
// exactly the all-or-nothing transaction guarantee.

type opType uint8

const (
	opCreate opType = iota + 1
	opSet
	opDelete
	opDefClass
)

// walOp is one logical operation inside a transaction.
type walOp struct {
	typ   opType
	oid   OID
	class string // create: class; defclass: class name
	super string // defclass only
	attrs map[string]Kind
	attr  string // set only
	val   Value  // set only
}

func float64FromBits(u uint64) float64 { return math.Float64frombits(u) }

func encodeTx(txid uint64, ops []walOp) []byte {
	var e encoder
	e.u64(txid)
	e.u32(uint32(len(ops)))
	for _, op := range ops {
		e.u8(uint8(op.typ))
		switch op.typ {
		case opCreate:
			e.u64(uint64(op.oid))
			e.str(op.class)
		case opSet:
			e.u64(uint64(op.oid))
			e.str(op.attr)
			e.value(op.val)
		case opDelete:
			e.u64(uint64(op.oid))
		case opDefClass:
			e.str(op.class)
			e.str(op.super)
			e.u32(uint32(len(op.attrs)))
			for _, name := range sortedAttrNames(op.attrs) {
				e.str(name)
				e.u8(uint8(op.attrs[name]))
			}
		}
	}
	return e.bytes()
}

func sortedAttrNames(m map[string]Kind) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sortStrings(names)
	return names
}

func decodeTx(payload []byte) (uint64, []walOp, error) {
	d := &decoder{data: payload}
	txid, err := d.u64()
	if err != nil {
		return 0, nil, err
	}
	count, err := d.u32()
	if err != nil {
		return 0, nil, err
	}
	ops := make([]walOp, 0, count)
	for i := uint32(0); i < count; i++ {
		t, err := d.u8()
		if err != nil {
			return 0, nil, err
		}
		op := walOp{typ: opType(t)}
		switch op.typ {
		case opCreate:
			u, err := d.u64()
			if err != nil {
				return 0, nil, err
			}
			op.oid = OID(u)
			if op.class, err = d.str(); err != nil {
				return 0, nil, err
			}
		case opSet:
			u, err := d.u64()
			if err != nil {
				return 0, nil, err
			}
			op.oid = OID(u)
			if op.attr, err = d.str(); err != nil {
				return 0, nil, err
			}
			if op.val, err = d.value(); err != nil {
				return 0, nil, err
			}
		case opDelete:
			u, err := d.u64()
			if err != nil {
				return 0, nil, err
			}
			op.oid = OID(u)
		case opDefClass:
			if op.class, err = d.str(); err != nil {
				return 0, nil, err
			}
			if op.super, err = d.str(); err != nil {
				return 0, nil, err
			}
			n, err := d.u32()
			if err != nil {
				return 0, nil, err
			}
			op.attrs = make(map[string]Kind, n)
			for j := uint32(0); j < n; j++ {
				name, err := d.str()
				if err != nil {
					return 0, nil, err
				}
				k, err := d.u8()
				if err != nil {
					return 0, nil, err
				}
				op.attrs[name] = Kind(k)
			}
		default:
			return 0, nil, fmt.Errorf("oodb: unknown wal op %d", t)
		}
		ops = append(ops, op)
	}
	return txid, ops, nil
}

// walWriter appends transaction records to the log file.
type walWriter struct {
	f    *os.File
	sync bool
}

func openWAL(path string, syncEachCommit bool) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("oodb: open wal: %w", err)
	}
	return &walWriter{f: f, sync: syncEachCommit}, nil
}

func (w *walWriter) appendTx(txid uint64, ops []walOp) error {
	payload := encodeTx(txid, ops)
	frame := make([]byte, 4+len(payload)+4)
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	copy(frame[4:], payload)
	binary.LittleEndian.PutUint32(frame[4+len(payload):], crc32.ChecksumIEEE(payload))
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("oodb: wal append: %w", err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("oodb: wal sync: %w", err)
		}
	}
	return nil
}

func (w *walWriter) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// replayWAL reads the log at path and invokes apply for every intact
// committed transaction, in order. It returns the byte offset of the
// intact prefix; callers truncate the file there to drop a torn
// tail.
func replayWAL(path string, apply func(txid uint64, ops []walOp) error) (int64, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("oodb: open wal for replay: %w", err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return 0, fmt.Errorf("oodb: read wal: %w", err)
	}
	off := 0
	for {
		if off+4 > len(data) {
			break
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if off+4+n+4 > len(data) {
			break // torn tail
		}
		payload := data[off+4 : off+4+n]
		crc := binary.LittleEndian.Uint32(data[off+4+n:])
		if crc32.ChecksumIEEE(payload) != crc {
			break // corrupt tail
		}
		txid, ops, err := decodeTx(payload)
		if err != nil {
			break // undecodable tail treated as torn
		}
		if err := apply(txid, ops); err != nil {
			return 0, err
		}
		off += 4 + n + 4
	}
	return int64(off), nil
}
