package oodb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Snapshot format:
//
//	magic "OSNP" | version u32 | payload | crc32(payload) u32
//	payload = nextOID u64 | nextTx u64 |
//	          class count u32 | (name, super, attr count, (attr, kind)*)* |
//	          object count u64 | (oid u64, class, attr count u32, (name, value)*)*
//
// Checkpoint writes the snapshot atomically (temp + rename) and then
// truncates the WAL: recovery = load snapshot + replay WAL suffix.

const (
	snapMagic   = "OSNP"
	snapVersion = 1
)

// Checkpoint writes a snapshot of the current state and truncates
// the WAL. A no-op for memory-only databases.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.dir == "" {
		return nil
	}
	if db.closed {
		return ErrClosed
	}
	var e encoder
	e.u64(db.nextOID.Load())
	e.u64(db.nextTx.Load())
	classNames := make([]string, 0, len(db.classes))
	for n := range db.classes {
		classNames = append(classNames, n)
	}
	sort.Strings(classNames)
	e.u32(uint32(len(classNames)))
	for _, n := range classNames {
		c := db.classes[n]
		e.str(c.Name)
		e.str(c.Super)
		e.u32(uint32(len(c.Attrs)))
		for _, a := range sortedAttrNames(c.Attrs) {
			e.str(a)
			e.u8(uint8(c.Attrs[a]))
		}
	}
	oids := make([]OID, 0, len(db.objects))
	for o := range db.objects {
		oids = append(oids, o)
	}
	SortOIDs(oids)
	e.u64(uint64(len(oids)))
	for _, oid := range oids {
		obj := db.objects[oid]
		e.u64(uint64(oid))
		e.str(obj.class)
		e.u32(uint32(len(obj.attrs)))
		for _, a := range sortedValueAttrs(obj.attrs) {
			e.str(a)
			e.value(obj.attrs[a])
		}
	}
	payload := e.bytes()

	path := filepath.Join(db.dir, snapshotFile)
	tmp, err := os.CreateTemp(db.dir, ".snap-*")
	if err != nil {
		return fmt.Errorf("oodb: checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	write := func() error {
		if _, err := io.WriteString(tmp, snapMagic); err != nil {
			return err
		}
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], snapVersion)
		if _, err := tmp.Write(hdr[:]); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
		if _, err := tmp.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := tmp.Write(payload); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(hdr[:], crc32.ChecksumIEEE(payload))
		if _, err := tmp.Write(hdr[:]); err != nil {
			return err
		}
		return tmp.Sync()
	}
	err = write()
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("oodb: checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("oodb: checkpoint: %w", err)
	}
	// Snapshot durable; restart the WAL.
	if db.wal != nil {
		if err := db.wal.close(); err != nil {
			return fmt.Errorf("oodb: checkpoint: close wal: %w", err)
		}
	}
	walPath := filepath.Join(db.dir, walFile)
	if err := os.Remove(walPath); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("oodb: checkpoint: reset wal: %w", err)
	}
	w, err := openWAL(walPath, db.wal == nil || db.wal.sync)
	if err != nil {
		return err
	}
	db.wal = w
	return nil
}

// loadSnapshot restores state from the snapshot file if present.
func (db *DB) loadSnapshot(path string) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("oodb: load snapshot: %w", err)
	}
	if len(data) < 16 || string(data[:4]) != snapMagic {
		return fmt.Errorf("oodb: snapshot: bad magic")
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != snapVersion {
		return fmt.Errorf("oodb: snapshot: unsupported version %d", v)
	}
	n := int(binary.LittleEndian.Uint32(data[8:]))
	if 12+n+4 > len(data) {
		return fmt.Errorf("oodb: snapshot: truncated")
	}
	payload := data[12 : 12+n]
	crc := binary.LittleEndian.Uint32(data[12+n:])
	if crc32.ChecksumIEEE(payload) != crc {
		return fmt.Errorf("oodb: snapshot: checksum mismatch")
	}
	d := &decoder{data: payload}
	nextOID, err := d.u64()
	if err != nil {
		return err
	}
	nextTx, err := d.u64()
	if err != nil {
		return err
	}
	db.nextOID.Store(nextOID)
	db.nextTx.Store(nextTx)
	classCount, err := d.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < classCount; i++ {
		name, err := d.str()
		if err != nil {
			return err
		}
		super, err := d.str()
		if err != nil {
			return err
		}
		attrCount, err := d.u32()
		if err != nil {
			return err
		}
		attrs := make(map[string]Kind, attrCount)
		for j := uint32(0); j < attrCount; j++ {
			a, err := d.str()
			if err != nil {
				return err
			}
			k, err := d.u8()
			if err != nil {
				return err
			}
			attrs[a] = Kind(k)
		}
		db.classes[name] = &Class{Name: name, Super: super, Attrs: attrs}
		db.extents[name] = make(map[OID]struct{})
	}
	objCount, err := d.u64()
	if err != nil {
		return err
	}
	for i := uint64(0); i < objCount; i++ {
		oidU, err := d.u64()
		if err != nil {
			return err
		}
		class, err := d.str()
		if err != nil {
			return err
		}
		attrCount, err := d.u32()
		if err != nil {
			return err
		}
		obj := &object{class: class, attrs: make(map[string]Value, attrCount)}
		for j := uint32(0); j < attrCount; j++ {
			a, err := d.str()
			if err != nil {
				return err
			}
			v, err := d.value()
			if err != nil {
				return err
			}
			obj.attrs[a] = v
		}
		oid := OID(oidU)
		db.objects[oid] = obj
		if db.extents[class] == nil {
			db.extents[class] = make(map[OID]struct{})
		}
		db.extents[class][oid] = struct{}{}
	}
	return nil
}
