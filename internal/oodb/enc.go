package oodb

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Binary codec shared by the WAL and the snapshot. All integers are
// little endian; strings and lists are length-prefixed with u32.

type encoder struct {
	buf bytes.Buffer
}

func (e *encoder) u8(v uint8)   { e.buf.WriteByte(v) }
func (e *encoder) u32(v uint32) { binary.Write(&e.buf, binary.LittleEndian, v) }
func (e *encoder) u64(v uint64) { binary.Write(&e.buf, binary.LittleEndian, v) }
func (e *encoder) f64(v float64) {
	binary.Write(&e.buf, binary.LittleEndian, v)
}

func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf.WriteString(s)
}

func (e *encoder) value(v Value) {
	e.u8(uint8(v.Kind))
	switch v.Kind {
	case KindNull:
	case KindBool:
		if v.Bool {
			e.u8(1)
		} else {
			e.u8(0)
		}
	case KindInt:
		e.u64(uint64(v.Int))
	case KindFloat:
		e.f64(v.Float)
	case KindString:
		e.str(v.Str)
	case KindOID:
		e.u64(uint64(v.Ref))
	case KindList:
		e.u32(uint32(len(v.List)))
		for _, c := range v.List {
			e.value(c)
		}
	}
}

func (e *encoder) bytes() []byte { return e.buf.Bytes() }

type decoder struct {
	data []byte
	pos  int
}

var errShortDecode = fmt.Errorf("oodb: truncated record")

func (d *decoder) need(n int) error {
	if d.pos+n > len(d.data) {
		return errShortDecode
	}
	return nil
}

func (d *decoder) u8() (uint8, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	v := d.data[d.pos]
	d.pos++
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(d.data[d.pos:])
	d.pos += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(d.data[d.pos:])
	d.pos += 8
	return v, nil
}

func (d *decoder) f64() (float64, error) {
	u, err := d.u64()
	if err != nil {
		return 0, err
	}
	return float64FromBits(u), nil
}

func (d *decoder) str() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	if err := d.need(int(n)); err != nil {
		return "", err
	}
	s := string(d.data[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s, nil
}

func (d *decoder) value() (Value, error) {
	k, err := d.u8()
	if err != nil {
		return Value{}, err
	}
	switch Kind(k) {
	case KindNull:
		return Null(), nil
	case KindBool:
		b, err := d.u8()
		if err != nil {
			return Value{}, err
		}
		return B(b != 0), nil
	case KindInt:
		u, err := d.u64()
		if err != nil {
			return Value{}, err
		}
		return I(int64(u)), nil
	case KindFloat:
		f, err := d.f64()
		if err != nil {
			return Value{}, err
		}
		return F(f), nil
	case KindString:
		s, err := d.str()
		if err != nil {
			return Value{}, err
		}
		return S(s), nil
	case KindOID:
		u, err := d.u64()
		if err != nil {
			return Value{}, err
		}
		return Ref(OID(u)), nil
	case KindList:
		n, err := d.u32()
		if err != nil {
			return Value{}, err
		}
		if int(n) > len(d.data) {
			return Value{}, errShortDecode
		}
		vs := make([]Value, n)
		for i := range vs {
			if vs[i], err = d.value(); err != nil {
				return Value{}, err
			}
		}
		return Value{Kind: KindList, List: vs}, nil
	}
	return Value{}, fmt.Errorf("oodb: unknown value kind %d", k)
}
