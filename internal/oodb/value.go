// Package oodb implements the object-oriented DBMS substrate of the
// coupling — the role VODAK plays in the paper. It provides the
// OODBMS manifesto features the coupling relies on ([Atk+89],
// Section 1.1): object identity (OIDs), classes with single
// inheritance and extents, complex values, persistence (write-ahead
// log + snapshot), transactions with recovery, and an extensible
// method registry that the VQL evaluator dispatches through.
package oodb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// OID is an object identifier. OIDs are allocated monotonically and
// never reused; the zero OID is the nil reference.
type OID uint64

// NilOID is the null object reference.
const NilOID OID = 0

// String renders the OID in the conventional object notation.
func (o OID) String() string {
	if o == NilOID {
		return "nil"
	}
	return "oid" + strconv.FormatUint(uint64(o), 10)
}

// ParseOID parses the representation produced by OID.String.
func ParseOID(s string) (OID, error) {
	if s == "nil" {
		return NilOID, nil
	}
	if !strings.HasPrefix(s, "oid") {
		return NilOID, fmt.Errorf("oodb: malformed oid %q", s)
	}
	n, err := strconv.ParseUint(s[3:], 10, 64)
	if err != nil {
		return NilOID, fmt.Errorf("oodb: malformed oid %q: %w", s, err)
	}
	return OID(n), nil
}

// Kind tags the dynamic type of a Value.
type Kind uint8

// Value kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindOID
	KindList
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindOID:
		return "oid"
	case KindList:
		return "list"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is the tagged union of attribute values. The zero Value is
// null.
type Value struct {
	Kind  Kind
	Bool  bool
	Int   int64
	Float float64
	Str   string
	Ref   OID
	List  []Value
}

// Constructors.

// Null returns the null value.
func Null() Value { return Value{} }

// B returns a boolean value.
func B(b bool) Value { return Value{Kind: KindBool, Bool: b} }

// I returns an integer value.
func I(i int64) Value { return Value{Kind: KindInt, Int: i} }

// F returns a float value.
func F(f float64) Value { return Value{Kind: KindFloat, Float: f} }

// S returns a string value.
func S(s string) Value { return Value{Kind: KindString, Str: s} }

// Ref returns an object-reference value.
func Ref(o OID) Value { return Value{Kind: KindOID, Ref: o} }

// L returns a list value.
func L(vs ...Value) Value { return Value{Kind: KindList, List: vs} }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Truthy reports the boolean interpretation of v: null, false, 0,
// "", nil-reference and the empty list are false.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KindNull:
		return false
	case KindBool:
		return v.Bool
	case KindInt:
		return v.Int != 0
	case KindFloat:
		return v.Float != 0
	case KindString:
		return v.Str != ""
	case KindOID:
		return v.Ref != NilOID
	case KindList:
		return len(v.List) > 0
	}
	return false
}

// AsFloat coerces numeric values to float64.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.Int), true
	case KindFloat:
		return v.Float, true
	}
	return 0, false
}

// Equal reports deep equality with int/float numeric coercion.
func (v Value) Equal(w Value) bool {
	if vf, ok := v.AsFloat(); ok {
		if wf, wok := w.AsFloat(); wok {
			return vf == wf
		}
		return false
	}
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case KindNull:
		return true
	case KindBool:
		return v.Bool == w.Bool
	case KindString:
		return v.Str == w.Str
	case KindOID:
		return v.Ref == w.Ref
	case KindList:
		if len(v.List) != len(w.List) {
			return false
		}
		for i := range v.List {
			if !v.List[i].Equal(w.List[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Compare orders two values: -1, 0, +1. Numeric values compare with
// coercion; strings lexicographically; OIDs by identifier. Ordering
// across kinds (and for bool/list/null) returns an error.
func (v Value) Compare(w Value) (int, error) {
	if vf, ok := v.AsFloat(); ok {
		if wf, wok := w.AsFloat(); wok {
			switch {
			case vf < wf:
				return -1, nil
			case vf > wf:
				return 1, nil
			}
			return 0, nil
		}
	}
	if v.Kind == KindString && w.Kind == KindString {
		return strings.Compare(v.Str, w.Str), nil
	}
	if v.Kind == KindOID && w.Kind == KindOID {
		switch {
		case v.Ref < w.Ref:
			return -1, nil
		case v.Ref > w.Ref:
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("oodb: cannot order %s against %s", v.Kind, w.Kind)
}

// String renders the value for display and diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "null"
	case KindBool:
		return strconv.FormatBool(v.Bool)
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.Str)
	case KindOID:
		return v.Ref.String()
	case KindList:
		parts := make([]string, len(v.List))
		for i, e := range v.List {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	}
	return "?"
}

// OIDList converts a list value of references into a []OID.
func (v Value) OIDList() []OID {
	if v.Kind != KindList {
		return nil
	}
	out := make([]OID, 0, len(v.List))
	for _, e := range v.List {
		if e.Kind == KindOID {
			out = append(out, e.Ref)
		}
	}
	return out
}

// RefList builds a list value from OIDs.
func RefList(oids []OID) Value {
	vs := make([]Value, len(oids))
	for i, o := range oids {
		vs[i] = Ref(o)
	}
	return Value{Kind: KindList, List: vs}
}

// SortOIDs sorts an OID slice ascending, in place, and returns it.
func SortOIDs(oids []OID) []OID {
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	return oids
}
