package oodb

import (
	"fmt"
)

// Tx is a transaction: mutations are staged locally (with
// read-your-writes visibility) and become visible — and durable —
// atomically at Commit. Validation happens both at staging time
// (against the transaction's view) and again at commit (against the
// then-current database state), so a transaction racing a
// conflicting commit fails as a whole rather than applying halfway.
type Tx struct {
	db      *DB
	ops     []walOp
	created map[OID]string // oid -> class, staged creates
	deleted map[OID]bool
	written map[OID]map[string]Value
	done    bool
}

// Begin starts a transaction.
func (db *DB) Begin() *Tx {
	return &Tx{
		db:      db,
		created: make(map[OID]string),
		deleted: make(map[OID]bool),
		written: make(map[OID]map[string]Value),
	}
}

// NewObject stages creation of an object of class, optionally with
// initial attributes, and returns its pre-allocated OID.
func (tx *Tx) NewObject(class string, attrs map[string]Value) (OID, error) {
	if tx.done {
		return NilOID, ErrTxDone
	}
	tx.db.mu.RLock()
	_, classOK := tx.db.classes[class]
	tx.db.mu.RUnlock()
	if !classOK {
		return NilOID, fmt.Errorf("%w: %q", ErrNoSuchClass, class)
	}
	oid := OID(tx.db.nextOID.Add(1) - 1)
	tx.ops = append(tx.ops, walOp{typ: opCreate, oid: oid, class: class})
	tx.created[oid] = class
	for _, name := range sortedValueAttrs(attrs) {
		if err := tx.SetAttr(oid, name, attrs[name]); err != nil {
			return NilOID, err
		}
	}
	return oid, nil
}

func sortedValueAttrs(m map[string]Value) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sortStrings(names)
	return names
}

// SetAttr stages an attribute write.
func (tx *Tx) SetAttr(oid OID, name string, v Value) error {
	if tx.done {
		return ErrTxDone
	}
	class, ok := tx.classOf(oid)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchObject, oid)
	}
	tx.db.mu.RLock()
	err := tx.db.checkAttrKind(class, name, v)
	tx.db.mu.RUnlock()
	if err != nil {
		return err
	}
	tx.ops = append(tx.ops, walOp{typ: opSet, oid: oid, attr: name, val: v})
	w := tx.written[oid]
	if w == nil {
		w = make(map[string]Value)
		tx.written[oid] = w
	}
	w[name] = v
	return nil
}

// DeleteObject stages deletion of an object.
func (tx *Tx) DeleteObject(oid OID) error {
	if tx.done {
		return ErrTxDone
	}
	if _, ok := tx.classOf(oid); !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchObject, oid)
	}
	tx.ops = append(tx.ops, walOp{typ: opDelete, oid: oid})
	tx.deleted[oid] = true
	return nil
}

// classOf resolves an object's class in the transaction's view.
func (tx *Tx) classOf(oid OID) (string, bool) {
	if tx.deleted[oid] {
		return "", false
	}
	if class, ok := tx.created[oid]; ok {
		return class, true
	}
	return tx.db.ClassOf(oid)
}

// Attr reads an attribute with read-your-writes visibility.
func (tx *Tx) Attr(oid OID, name string) (Value, bool) {
	if tx.deleted[oid] {
		return Null(), false
	}
	if w, ok := tx.written[oid]; ok {
		if v, ok := w[name]; ok {
			return v, true
		}
	}
	if _, created := tx.created[oid]; created {
		return Null(), false
	}
	return tx.db.Attr(oid, name)
}

// Abort discards the transaction. Allocated OIDs are not reused.
func (tx *Tx) Abort() {
	tx.done = true
	tx.ops = nil
}

// Commit validates the staged operations against current state,
// appends them to the WAL as one record and applies them. Update
// hooks fire after the lock is released.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	if len(tx.ops) == 0 {
		return nil
	}
	db := tx.db
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	// Re-validate against committed state: every op must still make
	// sense (objects staged earlier in this tx count as present).
	present := make(map[OID]bool)
	for _, op := range tx.ops {
		switch op.typ {
		case opCreate:
			present[op.oid] = true
		case opSet, opDelete:
			if present[op.oid] {
				continue
			}
			if _, ok := db.objects[op.oid]; !ok {
				db.mu.Unlock()
				return fmt.Errorf("oodb: commit conflict: %w: %s", ErrNoSuchObject, op.oid)
			}
			if op.typ == opDelete {
				present[op.oid] = false
			}
		}
	}
	if db.wal != nil {
		if err := db.wal.appendTx(db.nextTx.Add(1), tx.ops); err != nil {
			db.mu.Unlock()
			return err
		}
	}
	updates := db.applyOps(tx.ops)
	db.mu.Unlock()
	db.fireHooks(updates)
	return nil
}

// Auto-commit conveniences. Each wraps a single operation in its own
// transaction.

// NewObject creates an object of class with initial attributes.
func (db *DB) NewObject(class string, attrs map[string]Value) (OID, error) {
	tx := db.Begin()
	oid, err := tx.NewObject(class, attrs)
	if err != nil {
		tx.Abort()
		return NilOID, err
	}
	if err := tx.Commit(); err != nil {
		return NilOID, err
	}
	return oid, nil
}

// SetAttr writes one attribute.
func (db *DB) SetAttr(oid OID, name string, v Value) error {
	tx := db.Begin()
	if err := tx.SetAttr(oid, name, v); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// DeleteObject removes one object.
func (db *DB) DeleteObject(oid OID) error {
	tx := db.Begin()
	if err := tx.DeleteObject(oid); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}
