package docmodel

import (
	"testing"

	"repro/internal/oodb"
	"repro/internal/sgml"
)

// The framework's headline feature is managing documents of
// arbitrary types side by side ("not to be restricted to a rigid set
// of SGML DTDs", Section 4.1). Two unrelated DTDs share one database
// here, including an element type (TITLE) declared by both.
func TestMultipleDTDsCoexist(t *testing.T) {
	db, err := oodb.Open("", oodb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	store, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	mmf, err := sgml.ParseDTD(`
<!ELEMENT MMFDOC - - (TITLE, PARA+)>
<!ELEMENT (TITLE|PARA) - O (#PCDATA)>
`)
	if err != nil {
		t.Fatal(err)
	}
	report, err := sgml.ParseDTD(`
<!ELEMENT REPORT - - (TITLE, FINDING+)>
<!ELEMENT (TITLE|FINDING) - O (#PCDATA)>
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.LoadDTD(mmf); err != nil {
		t.Fatal(err)
	}
	// TITLE is already a class; LoadDTD must tolerate the overlap.
	if err := store.LoadDTD(report); err != nil {
		t.Fatalf("second DTD with shared element type: %v", err)
	}

	tree1, err := sgml.ParseDocument(mmf, `<MMFDOC><TITLE>journal<PARA>text one</MMFDOC>`, sgml.ParseOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.InsertDocument(mmf, tree1); err != nil {
		t.Fatal(err)
	}
	tree2, err := sgml.ParseDocument(report, `<REPORT><TITLE>audit<FINDING>issue found</REPORT>`, sgml.ParseOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	root2, err := store.InsertDocument(report, tree2)
	if err != nil {
		t.Fatal(err)
	}

	// Shared element class holds instances from both document types.
	titles := db.Extent("TITLE", false)
	if len(titles) != 2 {
		t.Errorf("TITLE extent = %d, want 2", len(titles))
	}
	// Type-specific extents stay separate.
	if got := len(db.Extent("PARA", false)); got != 1 {
		t.Errorf("PARA extent = %d", got)
	}
	if got := len(db.Extent("FINDING", false)); got != 1 {
		t.Errorf("FINDING extent = %d", got)
	}
	// Doctype recorded per root.
	if v, _ := db.Attr(root2, AttrDoctype); v.Str != "REPORT" {
		t.Errorf("doctype = %v", v)
	}
	// Structural navigation works across both.
	finding := db.Extent("FINDING", false)[0]
	if store.Containing(finding, "REPORT") != root2 {
		t.Error("Containing across second DTD broken")
	}
}

func TestInsertDocumentRejectsUnknownTypes(t *testing.T) {
	db, _ := oodb.Open("", oodb.Options{})
	store, _ := Open(db)
	d, err := sgml.ParseDTD(`<!ELEMENT X - - (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := sgml.ParseDocument(d, `<X>text</X>`, sgml.ParseOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	// DTD never loaded: element class missing.
	if _, err := store.InsertDocument(d, tree); err == nil {
		t.Error("insert without LoadDTD succeeded")
	}
	// Text node as root is rejected.
	if _, err := store.InsertDocument(d, &sgml.Node{Type: sgml.TextType, Data: "x"}); err == nil {
		t.Error("text root accepted")
	}
}
