// Package docmodel is the database application framework of
// Section 4.1: SGML documents are fragmented into trees of database
// objects, with one element-type class per DTD element type and a
// Text class for the leaves that carry the raw data. It registers
// the structural methods the paper's example queries use (getNext,
// getContaining, getAttributeValue, length) and the getText method
// with its representation modes.
//
// Class hierarchy created in the database:
//
//	IRSObject                  (coupling supertype, Section 4.2)
//	└── Element                (one object per SGML element)
//	    └── <TYPE> ...         (one class per DTD element type)
//	└── Text                   (leaf objects holding raw text)
//
// Element-type classes are upper-case (SGML name folding), so they
// never collide with the framework's MixedCaps class names.
package docmodel

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/oodb"
	"repro/internal/sgml"
)

// Framework class names.
const (
	ClassIRSObject = "IRSObject"
	ClassElement   = "Element"
	ClassText      = "Text"
)

// Attribute names used on document objects. SGML attributes are
// stored with an "@" prefix ("@YEAR"), keeping them apart from the
// structural attributes.
const (
	AttrType     = "type"     // element-type name
	AttrParent   = "parent"   // Ref to parent element (unset on roots)
	AttrChildren = "children" // List of Refs in document order
	AttrText     = "text"     // raw text (Text objects)
	AttrDoctype  = "doctype"  // root objects: DTD name
	sgmlAttrPfx  = "@"
)

// Text representation modes for getText (Section 4.3: "To provide
// different representations of the same IRSObject in different
// collections, the parameter textMode will be used").
const (
	// ModeFullText returns the concatenated text of all leaves of
	// the subtree — the paper's default SGML implementation
	// ("by inspecting the leaves of the subtree rooted at an
	// element, getText identifies its representation").
	ModeFullText = 0
	// ModeAbstract returns a user-visible abstract: the text below
	// title/abstract-like children if present, otherwise a prefix of
	// the full text (alternative (1) of Section 4.3.1).
	ModeAbstract = 1
	// ModeOwnText returns only the element's direct text children.
	ModeOwnText = 2
)

// abstractTypes are the element types whose subtrees ModeAbstract
// prefers over plain prefix truncation.
var abstractTypes = map[string]bool{
	"DOCTITLE": true, "TITLE": true, "ABSTRACT": true, "HEAD": true,
	"CAPTION": true,
}

// abstractPrefixWords bounds the fallback abstract length.
const abstractPrefixWords = 32

// Errors.
var (
	ErrNotAnElement = errors.New("docmodel: object is not a document element")
)

// Store wraps a database with the document framework.
type Store struct {
	db *oodb.DB
}

// Open attaches the framework to db: base classes are defined if
// absent (idempotent across restarts) and the structural methods are
// registered.
func Open(db *oodb.DB) (*Store, error) {
	s := &Store{db: db}
	for _, c := range []struct{ name, super string }{
		{ClassIRSObject, ""},
		{ClassElement, ClassIRSObject},
		{ClassText, ClassIRSObject},
	} {
		if _, ok := db.Class(c.name); ok {
			continue
		}
		if err := db.DefineClass(c.name, c.super, nil); err != nil {
			return nil, err
		}
	}
	s.registerMethods()
	return s, nil
}

// DB returns the underlying database.
func (s *Store) DB() *oodb.DB { return s.db }

// LoadDTD defines one class per element type declared in the DTD
// (idempotent for already-known types). This is the "element-type
// classes corresponding to the element-type definitions from the
// DTDs" of Section 4.1.
func (s *Store) LoadDTD(d *sgml.DTD) error {
	for _, name := range d.ElementNames() {
		if _, ok := s.db.Class(name); ok {
			continue
		}
		if err := s.db.DefineClass(name, ClassElement, nil); err != nil {
			return fmt.Errorf("docmodel: define element class %s: %w", name, err)
		}
	}
	return nil
}

// InsertDocument stores a parsed document tree as database objects
// in one transaction and returns the root object's OID.
func (s *Store) InsertDocument(d *sgml.DTD, root *sgml.Node) (oodb.OID, error) {
	if root.IsText() {
		return oodb.NilOID, errors.New("docmodel: document root is a text node")
	}
	tx := s.db.Begin()
	oid, err := s.insertNode(tx, root)
	if err != nil {
		tx.Abort()
		return oodb.NilOID, err
	}
	if err := tx.SetAttr(oid, AttrDoctype, oodb.S(d.Name)); err != nil {
		tx.Abort()
		return oodb.NilOID, err
	}
	if err := tx.Commit(); err != nil {
		return oodb.NilOID, err
	}
	return oid, nil
}

func (s *Store) insertNode(tx *oodb.Tx, n *sgml.Node) (oodb.OID, error) {
	if n.IsText() {
		return tx.NewObject(ClassText, map[string]oodb.Value{
			AttrText: oodb.S(n.Data),
		})
	}
	if _, ok := s.db.Class(n.Type); !ok {
		return oodb.NilOID, fmt.Errorf("docmodel: element type %s has no class (LoadDTD first)", n.Type)
	}
	attrs := map[string]oodb.Value{AttrType: oodb.S(n.Type)}
	for name, v := range n.Attrs {
		attrs[sgmlAttrPfx+name] = oodb.S(v)
	}
	oid, err := tx.NewObject(n.Type, attrs)
	if err != nil {
		return oodb.NilOID, err
	}
	kids := make([]oodb.OID, 0, len(n.Children))
	for _, c := range n.Children {
		k, err := s.insertNode(tx, c)
		if err != nil {
			return oodb.NilOID, err
		}
		if err := tx.SetAttr(k, AttrParent, oodb.Ref(oid)); err != nil {
			return oodb.NilOID, err
		}
		kids = append(kids, k)
	}
	if err := tx.SetAttr(oid, AttrChildren, oodb.RefList(kids)); err != nil {
		return oodb.NilOID, err
	}
	return oid, nil
}

// DeleteDocument removes the subtree rooted at oid in one
// transaction (and unlinks it from its parent's child list, if any).
func (s *Store) DeleteDocument(oid oodb.OID) error {
	tx := s.db.Begin()
	if parentV, ok := s.db.Attr(oid, AttrParent); ok && parentV.Kind == oodb.KindOID {
		kidsV, _ := s.db.Attr(parentV.Ref, AttrChildren)
		var remaining []oodb.OID
		for _, k := range kidsV.OIDList() {
			if k != oid {
				remaining = append(remaining, k)
			}
		}
		if err := tx.SetAttr(parentV.Ref, AttrChildren, oodb.RefList(remaining)); err != nil {
			tx.Abort()
			return err
		}
	}
	if err := s.deleteSubtree(tx, oid, make(map[oodb.OID]bool)); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

func (s *Store) deleteSubtree(tx *oodb.Tx, oid oodb.OID, seen map[oodb.OID]bool) error {
	if seen[oid] {
		return nil
	}
	seen[oid] = true
	kidsV, _ := s.db.Attr(oid, AttrChildren)
	for _, k := range kidsV.OIDList() {
		if err := s.deleteSubtree(tx, k, seen); err != nil {
			return err
		}
	}
	return tx.DeleteObject(oid)
}

// Children returns the child OIDs of an element in document order.
func (s *Store) Children(oid oodb.OID) []oodb.OID {
	v, _ := s.db.Attr(oid, AttrChildren)
	return v.OIDList()
}

// Parent returns the parent OID (NilOID for roots).
func (s *Store) Parent(oid oodb.OID) oodb.OID {
	v, ok := s.db.Attr(oid, AttrParent)
	if !ok || v.Kind != oodb.KindOID {
		return oodb.NilOID
	}
	return v.Ref
}

// TypeOf returns the element-type name of an object ("" for text
// leaves and non-document objects).
func (s *Store) TypeOf(oid oodb.OID) string {
	v, _ := s.db.Attr(oid, AttrType)
	return v.Str
}

// SetText replaces the raw text of a Text object (an editorial
// update in MMF terms; triggers the database update hooks that drive
// IRS propagation).
func (s *Store) SetText(oid oodb.OID, text string) error {
	class, ok := s.db.ClassOf(oid)
	if !ok || class != ClassText {
		return fmt.Errorf("%w: %s", ErrNotAnElement, oid)
	}
	return s.db.SetAttr(oid, AttrText, oodb.S(text))
}

// SubtreeText concatenates the text leaves below oid in document
// order (single-space separated, trimmed) — the ModeFullText
// representation. Reference cycles built by direct attribute edits
// (never produced by the SGML loader) are tolerated: every object is
// visited at most once.
func (s *Store) SubtreeText(oid oodb.OID) string {
	var parts []string
	s.walkText(oid, &parts, make(map[oodb.OID]bool))
	return strings.Join(parts, " ")
}

func (s *Store) walkText(oid oodb.OID, parts *[]string, seen map[oodb.OID]bool) {
	if seen[oid] {
		return
	}
	seen[oid] = true
	if class, _ := s.db.ClassOf(oid); class == ClassText {
		if v, ok := s.db.Attr(oid, AttrText); ok {
			if t := strings.TrimSpace(v.Str); t != "" {
				*parts = append(*parts, t)
			}
		}
		return
	}
	for _, k := range s.Children(oid) {
		s.walkText(k, parts, seen)
	}
}

// Text returns an object's representation under the given mode; this
// is the Go-level implementation behind the getText method.
func (s *Store) Text(oid oodb.OID, mode int) string {
	switch mode {
	case ModeOwnText:
		var parts []string
		for _, k := range s.Children(oid) {
			if class, _ := s.db.ClassOf(k); class == ClassText {
				if v, ok := s.db.Attr(k, AttrText); ok {
					if t := strings.TrimSpace(v.Str); t != "" {
						parts = append(parts, t)
					}
				}
			}
		}
		if class, _ := s.db.ClassOf(oid); class == ClassText {
			if v, ok := s.db.Attr(oid, AttrText); ok {
				parts = append(parts, strings.TrimSpace(v.Str))
			}
		}
		return strings.Join(parts, " ")
	case ModeAbstract:
		var parts []string
		for _, k := range s.Children(oid) {
			if abstractTypes[s.TypeOf(k)] {
				if t := s.SubtreeText(k); t != "" {
					parts = append(parts, t)
				}
			}
		}
		if len(parts) > 0 {
			return strings.Join(parts, " ")
		}
		words := strings.Fields(s.SubtreeText(oid))
		if len(words) > abstractPrefixWords {
			words = words[:abstractPrefixWords]
		}
		return strings.Join(words, " ")
	default:
		return s.SubtreeText(oid)
	}
}

// Containing returns the nearest ancestor of oid with the given
// element type, or NilOID — the getContaining method.
func (s *Store) Containing(oid oodb.OID, typeName string) oodb.OID {
	typeName = strings.ToUpper(typeName)
	for p := s.Parent(oid); p != oodb.NilOID; p = s.Parent(p) {
		if s.TypeOf(p) == typeName {
			return p
		}
	}
	return oodb.NilOID
}

// Next returns the next sibling in document order, or NilOID — the
// getNext method of the paper's second example query.
func (s *Store) Next(oid oodb.OID) oodb.OID {
	parent := s.Parent(oid)
	if parent == oodb.NilOID {
		return oodb.NilOID
	}
	kids := s.Children(parent)
	for i, k := range kids {
		if k == oid && i+1 < len(kids) {
			return kids[i+1]
		}
	}
	return oodb.NilOID
}

// registerMethods installs the structural methods on the framework
// classes so VQL queries can call them.
func (s *Store) registerMethods() {
	db := s.db
	db.RegisterMethod(ClassIRSObject, "getText", func(_ *oodb.DB, self oodb.OID, args []oodb.Value) (oodb.Value, error) {
		mode := int64(ModeFullText)
		if len(args) > 0 && args[0].Kind == oodb.KindInt {
			mode = args[0].Int
		}
		return oodb.S(s.Text(self, int(mode))), nil
	})
	db.RegisterMethod(ClassIRSObject, "length", func(_ *oodb.DB, self oodb.OID, args []oodb.Value) (oodb.Value, error) {
		return oodb.I(int64(len(s.SubtreeText(self)))), nil
	})
	db.RegisterMethod(ClassIRSObject, "getContaining", func(_ *oodb.DB, self oodb.OID, args []oodb.Value) (oodb.Value, error) {
		if len(args) != 1 || args[0].Kind != oodb.KindString {
			return oodb.Null(), errors.New("docmodel: getContaining expects a type name")
		}
		return oodb.Ref(s.Containing(self, args[0].Str)), nil
	})
	db.RegisterMethod(ClassIRSObject, "getNext", func(_ *oodb.DB, self oodb.OID, args []oodb.Value) (oodb.Value, error) {
		return oodb.Ref(s.Next(self)), nil
	})
	db.RegisterMethod(ClassIRSObject, "getParent", func(_ *oodb.DB, self oodb.OID, args []oodb.Value) (oodb.Value, error) {
		return oodb.Ref(s.Parent(self)), nil
	})
	db.RegisterMethod(ClassIRSObject, "getChildren", func(_ *oodb.DB, self oodb.OID, args []oodb.Value) (oodb.Value, error) {
		return oodb.RefList(s.Children(self)), nil
	})
	db.RegisterMethod(ClassElement, "getAttributeValue", func(db *oodb.DB, self oodb.OID, args []oodb.Value) (oodb.Value, error) {
		if len(args) != 1 || args[0].Kind != oodb.KindString {
			return oodb.Null(), errors.New("docmodel: getAttributeValue expects an attribute name")
		}
		v, _ := db.Attr(self, sgmlAttrPfx+strings.ToUpper(args[0].Str))
		return v, nil
	})
}
