package docmodel

import (
	"strings"
	"testing"

	"repro/internal/oodb"
	"repro/internal/sgml"
	"repro/internal/vql"
)

const testDTD = `
<!ELEMENT MMFDOC   - -  (LOGBOOK, DOCTITLE, ABSTRACT, PARA+)>
<!ELEMENT LOGBOOK  - O  (#PCDATA)>
<!ELEMENT DOCTITLE - O  (#PCDATA)>
<!ELEMENT ABSTRACT - O  (#PCDATA)>
<!ELEMENT PARA     - O  (#PCDATA | EM)*>
<!ELEMENT EM       - -  (#PCDATA)>
<!ATTLIST MMFDOC YEAR NUMBER #IMPLIED TITLE CDATA #IMPLIED>
`

const testDoc = `<MMFDOC YEAR="1994" TITLE="Telnet">
<LOGBOOK>created 1994
<DOCTITLE>Telnet
<ABSTRACT>the telnet protocol
<PARA>Telnet is a protocol for <EM>remote</EM> login
<PARA>Telnet enables terminal sessions
</MMFDOC>`

type fixture struct {
	store *Store
	dtd   *sgml.DTD
	root  oodb.OID
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	db, err := oodb.Open("", oodb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	store, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sgml.ParseDTD(testDTD)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.LoadDTD(d); err != nil {
		t.Fatal(err)
	}
	tree, err := sgml.ParseDocument(d, testDoc, sgml.ParseOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	root, err := store.InsertDocument(d, tree)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{store: store, dtd: d, root: root}
}

func TestLoadDTDCreatesClasses(t *testing.T) {
	fx := newFixture(t)
	db := fx.store.DB()
	for _, name := range []string{"MMFDOC", "PARA", "EM"} {
		if !db.IsA(name, ClassElement) {
			t.Errorf("%s is not an Element subclass", name)
		}
		if !db.IsA(name, ClassIRSObject) {
			t.Errorf("%s is not an IRSObject", name)
		}
	}
	// Idempotent reload.
	if err := fx.store.LoadDTD(fx.dtd); err != nil {
		t.Errorf("second LoadDTD: %v", err)
	}
}

func TestInsertDocumentTreeShape(t *testing.T) {
	fx := newFixture(t)
	s := fx.store
	if got := s.TypeOf(fx.root); got != "MMFDOC" {
		t.Fatalf("root type = %q", got)
	}
	kids := s.Children(fx.root)
	if len(kids) != 5 {
		t.Fatalf("root children = %d, want 5", len(kids))
	}
	types := make([]string, len(kids))
	for i, k := range kids {
		types[i] = s.TypeOf(k)
	}
	want := "LOGBOOK DOCTITLE ABSTRACT PARA PARA"
	if strings.Join(types, " ") != want {
		t.Errorf("children types = %v", types)
	}
	// Each element of the document corresponds to a database object
	// (Section 4.1: "for each element ... there essentially is a
	// corresponding database object").
	paras := s.DB().Extent("PARA", false)
	if len(paras) != 2 {
		t.Errorf("PARA extent = %d", len(paras))
	}
	// Parent pointers.
	for _, k := range kids {
		if s.Parent(k) != fx.root {
			t.Errorf("parent of %v wrong", k)
		}
	}
	if s.Parent(fx.root) != oodb.NilOID {
		t.Error("root has a parent")
	}
	// SGML attributes stored with prefix.
	if v, ok := s.DB().Attr(fx.root, "@YEAR"); !ok || v.Str != "1994" {
		t.Errorf("@YEAR = %v, %v", v, ok)
	}
	// Doctype recorded.
	if v, _ := s.DB().Attr(fx.root, AttrDoctype); v.Str != "MMFDOC" {
		t.Errorf("doctype = %v", v)
	}
}

func TestSubtreeTextAndModes(t *testing.T) {
	fx := newFixture(t)
	s := fx.store
	full := s.SubtreeText(fx.root)
	for _, want := range []string{"created 1994", "Telnet is a protocol for", "remote", "terminal sessions"} {
		if !strings.Contains(full, want) {
			t.Errorf("full text misses %q: %q", want, full)
		}
	}
	paras := s.DB().Extent("PARA", false)
	p1 := paras[0]
	if got := s.Text(p1, ModeFullText); got != "Telnet is a protocol for remote login" {
		t.Errorf("para full text = %q", got)
	}
	if got := s.Text(p1, ModeOwnText); got != "Telnet is a protocol for login" {
		t.Errorf("para own text = %q", got)
	}
	// ModeAbstract on the document prefers DOCTITLE/ABSTRACT
	// subtrees.
	abs := s.Text(fx.root, ModeAbstract)
	if !strings.Contains(abs, "Telnet") || !strings.Contains(abs, "the telnet protocol") {
		t.Errorf("abstract = %q", abs)
	}
	if strings.Contains(abs, "terminal sessions") {
		t.Errorf("abstract leaked body text: %q", abs)
	}
	// ModeAbstract without title children truncates.
	if got := s.Text(p1, ModeAbstract); got != "Telnet is a protocol for remote login" {
		t.Errorf("para abstract = %q", got)
	}
}

func TestStructuralNavigation(t *testing.T) {
	fx := newFixture(t)
	s := fx.store
	paras := s.DB().Extent("PARA", false)
	if s.Next(paras[0]) != paras[1] {
		t.Error("Next(para1) != para2")
	}
	if s.Next(paras[1]) != oodb.NilOID {
		t.Error("Next(last para) != nil")
	}
	if s.Containing(paras[0], "MMFDOC") != fx.root {
		t.Error("Containing(para, MMFDOC) != root")
	}
	if s.Containing(paras[0], "mmfdoc") != fx.root {
		t.Error("Containing is not case-insensitive")
	}
	if s.Containing(fx.root, "MMFDOC") != oodb.NilOID {
		t.Error("Containing should exclude self")
	}
	em := s.DB().Extent("EM", false)[0]
	if s.Containing(em, "PARA") != paras[0] {
		t.Error("Containing(em, PARA) wrong")
	}
}

func TestMethodsThroughVQL(t *testing.T) {
	fx := newFixture(t)
	ev := vql.NewEvaluator(fx.store.DB(), nil)
	rs, err := ev.Run(`ACCESS d -> getAttributeValue('TITLE') FROM d IN MMFDOC WHERE d -> getAttributeValue('YEAR') = '1994';`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].Str != "Telnet" {
		t.Fatalf("rows = %v", rs.Rows)
	}
	rs, err = ev.Run(`ACCESS p, p -> length() FROM p IN PARA WHERE p -> getNext() == NULL;`)
	if err != nil {
		t.Fatal(err)
	}
	// NULL comparison: getNext returns Ref(NilOID), not Null; use
	// the row count of all paras instead.
	rs, err = ev.Run(`ACCESS p -> getText(0) FROM p IN PARA;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 {
		t.Fatalf("getText rows = %d", len(rs.Rows))
	}
	joined := rs.Rows[0][0].Str + " | " + rs.Rows[1][0].Str
	if !strings.Contains(joined, "remote login") {
		t.Errorf("getText via VQL = %q", joined)
	}
}

func TestSetTextAndHooks(t *testing.T) {
	fx := newFixture(t)
	s := fx.store
	var events []oodb.Update
	s.DB().AddUpdateHook(func(u oodb.Update) { events = append(events, u) })
	paras := s.DB().Extent("PARA", false)
	leaves := s.Children(paras[0])
	var textLeaf oodb.OID
	for _, l := range leaves {
		if c, _ := s.DB().ClassOf(l); c == ClassText {
			textLeaf = l
			break
		}
	}
	if err := s.SetText(textLeaf, "Telnet was replaced by ssh"); err != nil {
		t.Fatal(err)
	}
	if got := s.Text(paras[0], ModeFullText); !strings.Contains(got, "ssh") {
		t.Errorf("text after SetText = %q", got)
	}
	if len(events) != 1 || events[0].Kind != oodb.UpdateModify {
		t.Errorf("hook events = %v", events)
	}
	// SetText on an element is rejected.
	if err := s.SetText(paras[0], "x"); err == nil {
		t.Error("SetText on element succeeded")
	}
}

func TestDeleteDocumentSubtree(t *testing.T) {
	fx := newFixture(t)
	s := fx.store
	before := s.DB().ObjectCount()
	paras := s.DB().Extent("PARA", false)
	// Delete the first paragraph (with its EM child and text leaves).
	if err := s.DeleteDocument(paras[0]); err != nil {
		t.Fatal(err)
	}
	if s.DB().Exists(paras[0]) {
		t.Error("paragraph survives delete")
	}
	if got := len(s.DB().Extent("EM", false)); got != 0 {
		t.Errorf("EM extent = %d after subtree delete", got)
	}
	// Unlinked from parent.
	kids := s.Children(fx.root)
	for _, k := range kids {
		if k == paras[0] {
			t.Error("deleted child still linked")
		}
	}
	if s.DB().ObjectCount() >= before {
		t.Error("object count did not drop")
	}
	// Delete the whole document.
	if err := s.DeleteDocument(fx.root); err != nil {
		t.Fatal(err)
	}
	if got := s.DB().ObjectCount(); got != 0 {
		t.Errorf("objects remaining = %d", got)
	}
}

func TestTextOnTextLeaf(t *testing.T) {
	fx := newFixture(t)
	s := fx.store
	paras := s.DB().Extent("PARA", false)
	for _, l := range s.Children(paras[1]) {
		if c, _ := s.DB().ClassOf(l); c == ClassText {
			if got := s.Text(l, ModeFullText); got != "Telnet enables terminal sessions" {
				t.Errorf("leaf text = %q", got)
			}
			if got := s.Text(l, ModeOwnText); got != "Telnet enables terminal sessions" {
				t.Errorf("leaf own text = %q", got)
			}
		}
	}
}
