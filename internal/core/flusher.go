package core

import (
	"time"

	"repro/internal/obs"
)

// flusher is the per-collection background propagation worker behind
// PropagateAsync. The update hook logs operations and kicks the
// flusher (non-blocking, coalescing); the flusher waits out a short
// group-commit window so consecutive updates land in one flush
// pipeline — the log's cancellation rules (Section 4.6) then collapse
// redundant work and the whole group commits as a single index batch.
//
// The window is either pinned (a positive AsyncCoalesce) or adaptive:
// after every flush the controller re-targets it inside
// [asyncCoalesceMin, asyncCoalesceMax] from the observed arrival rate
// (EWMA of ops logged per second) and the pending-queue depth. An
// idle collection converges on the floor — a lone update waits
// microseconds, not the full window — while a burst drives the window
// toward the ceiling, where each flush amortizes over a larger group
// commit and the log's cancellation rules see more collapsible work.
//
// The flusher owns no data: everything flows through Collection.Flush,
// which serializes with query-forced and manual flushes, so a query
// issued while the flusher lags simply forces the flush itself
// (PropagateOnQuery semantics) and correctness never depends on the
// flusher's pace.
type flusher struct {
	col  *Collection
	kick chan struct{} // capacity 1: pending-work flag
	stop chan struct{}
	done chan struct{}

	// Adaptive-controller state, touched only by the loop goroutine.
	ewmaRate float64 // smoothed ops logged per second
	lastOps  int64   // OpsLogged at the previous adapt step
	lastAt   time.Time
}

func newFlusher(col *Collection) *flusher {
	f := &flusher{
		col:    col,
		kick:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		lastAt: time.Now(),
	}
	f.lastOps = col.stats.OpsLogged.Load()
	go f.loop()
	return f
}

func (f *flusher) loop() {
	defer close(f.done)
	hist := obs.Default.Histogram("mmf_coalesce_window_seconds", "collection", f.col.name)
	for {
		select {
		case <-f.stop:
			return
		case <-f.kick:
		}
		if w := f.col.CoalesceWindow(); w > 0 {
			hist.Observe(w)
			t := time.NewTimer(w)
			select {
			case <-f.stop:
				t.Stop()
				f.flush() // don't strand the updates that woke us
				return
			case <-t.C:
			}
		}
		f.flush()
		f.adapt()
	}
}

// flush runs one group commit, recording failures in the collection's
// stats (there is no caller to return them to; a later query or Drain
// retries by forcing its own flush).
func (f *flusher) flush() {
	f.col.stats.AsyncFlushes.Add(1)
	if err := f.col.Flush(); err != nil {
		f.col.noteFlushError(err)
	}
}

// Adaptive-controller tuning. rateFull is the arrival rate (ops/s)
// at which the window saturates at its ceiling; depth saturates it
// at half the backlog bound (a queue past half full wants the widest
// batches the latency budget allows, well before backpressure).
// rateTau smooths the rate estimate; shorter than a burst, longer
// than one flush interval.
const (
	coalesceRateFull  = 5000.0
	coalesceDepthFrac = 0.5
	coalesceRateTau   = 100 * time.Millisecond
)

// adapt advances the rate estimate and moves the coalescing window
// one controller step after a flush.
func (f *flusher) adapt() {
	col := f.col
	col.mu.RLock()
	adaptive := col.asyncAdaptive
	min, max := col.asyncCoalesceMin, col.asyncCoalesceMax
	depthCap := col.asyncMaxPending
	col.mu.RUnlock()
	if !adaptive {
		return
	}
	now := time.Now()
	dt := now.Sub(f.lastAt)
	if dt <= 0 {
		dt = time.Nanosecond
	}
	ops := col.stats.OpsLogged.Load()
	inst := float64(ops-f.lastOps) / dt.Seconds()
	// EWMA with a time-proportional gain: back-to-back flushes barely
	// move the estimate, a long-idle gap mostly replaces it.
	alpha := float64(dt) / float64(dt+coalesceRateTau)
	f.ewmaRate += alpha * (inst - f.ewmaRate)
	f.lastOps, f.lastAt = ops, now
	next := adaptCoalesceWindow(time.Duration(col.coalesceNanos.Load()),
		f.ewmaRate, col.PendingOps(), depthCap, min, max)
	col.coalesceNanos.Store(int64(next))
}

// adaptCoalesceWindow is one step of the window controller, pure so
// tests can drive it deterministically. Load is the larger of the
// rate and queue-depth signals, each clamped to [0, 1]; the target
// window interpolates [min, max] linearly on load, and the returned
// window moves halfway from prev toward it — geometric convergence
// (under constant load the window reaches the target's neighborhood
// in a handful of flushes) without slamming the window around on a
// single out-of-character flush.
func adaptCoalesceWindow(prev time.Duration, rate float64, depth, depthCap int, min, max time.Duration) time.Duration {
	if max <= min {
		return min
	}
	load := rate / coalesceRateFull
	if depthCap > 0 {
		if d := float64(depth) / (coalesceDepthFrac * float64(depthCap)); d > load {
			load = d
		}
	}
	if load < 0 {
		load = 0
	} else if load > 1 {
		load = 1
	}
	target := float64(min) + load*float64(max-min)
	next := time.Duration(float64(prev) + (target-float64(prev))/2)
	if next < min {
		next = min
	} else if next > max {
		next = max
	}
	return next
}

// shutdown stops the loop and waits for any in-flight flush to
// finish.
func (f *flusher) shutdown() {
	close(f.stop)
	<-f.done
}

// startFlusher launches the background flusher if it is not running.
func (col *Collection) startFlusher() {
	col.mu.Lock()
	defer col.mu.Unlock()
	if col.flusher == nil {
		col.flusher = newFlusher(col)
	}
}

// stopFlusher stops the background flusher (idempotent). Pending
// updates stay in the log; the next query, Drain or policy flush
// propagates them.
func (col *Collection) stopFlusher() {
	col.mu.Lock()
	f := col.flusher
	col.flusher = nil
	col.mu.Unlock()
	if f != nil {
		f.shutdown()
	}
}

// setAsyncTuning normalizes and stores the async-ingest tuning. For
// maxPending, 0 selects the default and negative unbounds the queue.
// For coalesce, 0 selects the adaptive controller (the default),
// positive pins that fixed window, negative flushes immediately. The
// caller holds col.mu, or the collection is not yet published.
func (col *Collection) setAsyncTuning(maxPending int, coalesce time.Duration) {
	switch {
	case maxPending == 0:
		col.asyncMaxPending = defaultAsyncMaxPending
	case maxPending < 0:
		col.asyncMaxPending = 0
	default:
		col.asyncMaxPending = maxPending
	}
	if col.asyncCoalesceMin == 0 {
		col.asyncCoalesceMin = defaultAsyncCoalesceMin
	}
	if col.asyncCoalesceMax == 0 {
		col.asyncCoalesceMax = defaultAsyncCoalesceMax
	}
	switch {
	case coalesce == 0:
		col.asyncAdaptive = true
		col.asyncCoalesce = 0
		col.coalesceNanos.Store(int64(col.asyncCoalesceMin))
	case coalesce < 0:
		col.asyncAdaptive = false
		col.asyncCoalesce = 0
		col.coalesceNanos.Store(0)
	default:
		col.asyncAdaptive = false
		col.asyncCoalesce = coalesce
		col.coalesceNanos.Store(int64(coalesce))
	}
}

// setAsyncBounds normalizes and stores the adaptive window's bounds
// (0 selects the defaults; min is clamped non-negative, max to at
// least min). Caller holds col.mu or owns the unpublished collection.
func (col *Collection) setAsyncBounds(min, max time.Duration) {
	if min <= 0 {
		min = defaultAsyncCoalesceMin
	}
	if max <= 0 {
		max = defaultAsyncCoalesceMax
	}
	if max < min {
		max = min
	}
	col.asyncCoalesceMin, col.asyncCoalesceMax = min, max
	if col.asyncAdaptive {
		// Re-seed inside the new bounds; the controller takes it from
		// there.
		col.coalesceNanos.Store(int64(min))
	}
}

// ConfigureAsync retunes the async-ingest machinery at runtime; a
// running background flusher restarts under the new coalescing
// window. Collection options are not persisted, so serving layers
// call this at startup to give restored collections the configured
// tuning.
func (col *Collection) ConfigureAsync(maxPending int, coalesce time.Duration) {
	col.mu.Lock()
	col.setAsyncTuning(maxPending, coalesce)
	running := col.flusher != nil
	col.mu.Unlock()
	if running {
		col.stopFlusher()
		col.startFlusher()
		col.kickFlusher() // re-cover anything logged across the swap
	}
}

// ConfigureAsyncBounds retunes the adaptive coalescing window's
// [min, max] bounds (0 selects the defaults, 250µs/8ms). No effect
// on a collection pinned to a fixed window until it is switched back
// to adaptive via ConfigureAsync(_, 0).
func (col *Collection) ConfigureAsyncBounds(min, max time.Duration) {
	col.mu.Lock()
	col.setAsyncBounds(min, max)
	col.mu.Unlock()
}

// CoalesceWindow returns the group-commit window the background
// flusher currently waits out: the controller's latest output under
// the adaptive default, the pinned value under a fixed override, 0
// when flushing immediately.
func (col *Collection) CoalesceWindow() time.Duration {
	return time.Duration(col.coalesceNanos.Load())
}

// CoalesceAdaptive reports whether the coalescing window is under
// the adaptive controller (vs pinned or immediate).
func (col *Collection) CoalesceAdaptive() bool {
	col.mu.RLock()
	defer col.mu.RUnlock()
	return col.asyncAdaptive
}

// CoalesceMin returns the adaptive window floor.
func (col *Collection) CoalesceMin() time.Duration {
	col.mu.RLock()
	defer col.mu.RUnlock()
	return col.asyncCoalesceMin
}

// CoalesceMax returns the adaptive window ceiling.
func (col *Collection) CoalesceMax() time.Duration {
	col.mu.RLock()
	defer col.mu.RUnlock()
	return col.asyncCoalesceMax
}

// kickFlusher signals pending work to the background flusher
// (non-blocking; a kick while one is pending folds into it — that is
// the group-commit coalescing).
func (col *Collection) kickFlusher() {
	col.mu.RLock()
	f := col.flusher
	col.mu.RUnlock()
	if f == nil {
		return
	}
	select {
	case f.kick <- struct{}{}:
	default:
	}
}
