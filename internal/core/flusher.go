package core

import "time"

// flusher is the per-collection background propagation worker behind
// PropagateAsync. The update hook logs operations and kicks the
// flusher (non-blocking, coalescing); the flusher waits out a short
// group-commit window so consecutive updates land in one flush
// pipeline — the log's cancellation rules (Section 4.6) then collapse
// redundant work and the whole group commits as a single index batch.
//
// The flusher owns no data: everything flows through Collection.Flush,
// which serializes with query-forced and manual flushes, so a query
// issued while the flusher lags simply forces the flush itself
// (PropagateOnQuery semantics) and correctness never depends on the
// flusher's pace.
type flusher struct {
	col      *Collection
	coalesce time.Duration
	kick     chan struct{} // capacity 1: pending-work flag
	stop     chan struct{}
	done     chan struct{}
}

func newFlusher(col *Collection, coalesce time.Duration) *flusher {
	f := &flusher{
		col:      col,
		coalesce: coalesce,
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go f.loop()
	return f
}

func (f *flusher) loop() {
	defer close(f.done)
	for {
		select {
		case <-f.stop:
			return
		case <-f.kick:
		}
		if f.coalesce > 0 {
			t := time.NewTimer(f.coalesce)
			select {
			case <-f.stop:
				t.Stop()
				f.flush() // don't strand the updates that woke us
				return
			case <-t.C:
			}
		}
		f.flush()
	}
}

// flush runs one group commit, recording failures in the collection's
// stats (there is no caller to return them to; a later query or Drain
// retries by forcing its own flush).
func (f *flusher) flush() {
	f.col.stats.AsyncFlushes.Add(1)
	if err := f.col.Flush(); err != nil {
		f.col.noteFlushError(err)
	}
}

// shutdown stops the loop and waits for any in-flight flush to
// finish.
func (f *flusher) shutdown() {
	close(f.stop)
	<-f.done
}

// startFlusher launches the background flusher if it is not running.
func (col *Collection) startFlusher() {
	col.mu.Lock()
	defer col.mu.Unlock()
	if col.flusher == nil {
		col.flusher = newFlusher(col, col.asyncCoalesce)
	}
}

// stopFlusher stops the background flusher (idempotent). Pending
// updates stay in the log; the next query, Drain or policy flush
// propagates them.
func (col *Collection) stopFlusher() {
	col.mu.Lock()
	f := col.flusher
	col.flusher = nil
	col.mu.Unlock()
	if f != nil {
		f.shutdown()
	}
}

// setAsyncTuning normalizes and stores the async-ingest tuning (0
// selects the defaults; negative disables the bound / window). The
// caller holds col.mu, or the collection is not yet published.
func (col *Collection) setAsyncTuning(maxPending int, coalesce time.Duration) {
	switch {
	case maxPending == 0:
		col.asyncMaxPending = defaultAsyncMaxPending
	case maxPending < 0:
		col.asyncMaxPending = 0
	default:
		col.asyncMaxPending = maxPending
	}
	switch {
	case coalesce == 0:
		col.asyncCoalesce = defaultAsyncCoalesce
	case coalesce < 0:
		col.asyncCoalesce = 0
	default:
		col.asyncCoalesce = coalesce
	}
}

// ConfigureAsync retunes the async-ingest machinery at runtime; a
// running background flusher restarts under the new coalescing
// window. Collection options are not persisted, so serving layers
// call this at startup to give restored collections the configured
// tuning.
func (col *Collection) ConfigureAsync(maxPending int, coalesce time.Duration) {
	col.mu.Lock()
	col.setAsyncTuning(maxPending, coalesce)
	running := col.flusher != nil
	col.mu.Unlock()
	if running {
		col.stopFlusher()
		col.startFlusher()
		col.kickFlusher() // re-cover anything logged across the swap
	}
}

// kickFlusher signals pending work to the background flusher
// (non-blocking; a kick while one is pending folds into it — that is
// the group-commit coalescing).
func (col *Collection) kickFlusher() {
	col.mu.RLock()
	f := col.flusher
	col.mu.RUnlock()
	if f == nil {
		return
	}
	select {
	case f.kick <- struct{}{}:
	default:
	}
}
