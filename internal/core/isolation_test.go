package core

import (
	"sync"
	"testing"
)

// TestFlushSearchSnapshotIsolation runs concurrent Flush/Search on
// one collection: a writer keeps swapping which of two paragraphs
// carries the query topic (two SetText edits per round, propagated
// by one Flush), while readers rank continuously. Because a flush
// commits as one index batch and every search evaluates against a
// snapshot acquired between commits, each ranking must reflect
// either the pre- or the post-flush state — exactly one paragraph
// matching — never a half-propagated blend (zero or two matches).
// Run with -race to check the memory-model claims as well.
func TestFlushSearchSnapshotIsolation(t *testing.T) {
	fx := newFixture(t, "")
	doc := fx.addDoc("1994", "swapdoc", "topic words here", "unrelated filler text")
	col := fx.paraColl(Options{Policy: PropagateManually})
	col.SetBufferEnabled(false)
	paras := fx.paras(doc)
	if len(paras) != 2 {
		t.Fatalf("fixture has %d paragraphs, want 2", len(paras))
	}
	leafA := fx.store.Children(paras[0])[0]
	leafB := fx.store.Children(paras[1])[0]

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		inA := true
		for {
			select {
			case <-stop:
				return
			default:
			}
			var ta, tb string
			if inA {
				ta, tb = "unrelated filler text", "topic words here"
			} else {
				ta, tb = "topic words here", "unrelated filler text"
			}
			if err := fx.store.SetText(leafA, ta); err != nil {
				t.Error(err)
				return
			}
			if err := fx.store.SetText(leafB, tb); err != nil {
				t.Error(err)
				return
			}
			if err := col.Flush(); err != nil {
				t.Error(err)
				return
			}
			inA = !inA
		}
	}()

	// Readers go straight to the IRS collection (GetIRSResult would
	// itself force pending flushes, which is covered elsewhere; here
	// the writer is the only flusher so the race under test is pure
	// Flush vs Search).
	irsColl := col.IRS()
	var rwg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for i := 0; i < 200; i++ {
				rs, err := irsColl.Search("topic")
				if err != nil {
					t.Error(err)
					return
				}
				if len(rs) != 1 {
					t.Errorf("iteration %d: ranking has %d hits (%v), want exactly 1 — half-propagated flush observed", i, len(rs), rs)
					return
				}
			}
		}()
	}
	rwg.Wait()
	close(stop)
	wg.Wait()

	// After the dust settles, a coupling-level query agrees with a
	// final manual flush.
	if err := col.Flush(); err != nil {
		t.Fatal(err)
	}
	scores, err := col.GetIRSResult("topic")
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 1 {
		t.Fatalf("final GetIRSResult has %d hits, want 1", len(scores))
	}
}
