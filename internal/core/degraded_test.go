package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/docmodel"
	"repro/internal/irs"
	"repro/internal/oodb"
	"repro/internal/sgml"
	"repro/internal/wal"
)

// newWALFixture assembles a coupling over a persistent, WAL-carrying
// IRS engine — the configuration where a log failure must flip the
// collection into degraded (read-only) mode instead of silently
// acknowledging undurable writes.
func newWALFixture(t *testing.T) *fixture {
	t.Helper()
	dir := t.TempDir()
	db, err := oodb.Open(filepath.Join(dir, "db"), oodb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	store, err := docmodel.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := irs.NewEngineAt(filepath.Join(dir, "irs"), irs.Options{WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { engine.Close() })
	coupling, err := New(store, engine)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sgml.ParseDTD(testDTD)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.LoadDTD(d); err != nil {
		t.Fatal(err)
	}
	return &fixture{t: t, store: store, engine: engine, coupling: coupling, dtd: d}
}

// TestWALFailureDegradesCollection: a failed WAL append surfaces
// through the flush-error counters and flips the collection to
// serving reads only; Reindex (which rotates the log) recovers it.
func TestWALFailureDegradesCollection(t *testing.T) {
	fx := newWALFixture(t)
	fx.addDoc("1994", "webdoc", "the www paragraph")
	col := fx.paraColl(Options{Policy: PropagateManually})
	if !col.IRS().WALEnabled() {
		t.Fatal("fixture collection carries no WAL")
	}

	// Queries work while healthy.
	if _, err := col.GetIRSResult("www"); err != nil {
		t.Fatal(err)
	}

	// Break the log, then try to flush a pending update through it.
	boom := fmt.Errorf("injected wal failure")
	wal.SetHook(func(event string) error {
		if event == "wal.append.post" {
			return boom
		}
		return nil
	})
	defer wal.SetHook(nil)

	fx.addDoc("1995", "niidoc", "the nii paragraph")
	err := col.Flush()
	if err == nil {
		t.Fatal("flush over a broken WAL succeeded")
	}
	if deg, reason := col.Degraded(); !deg || reason == "" {
		t.Fatalf("collection not degraded after WAL failure (deg=%v reason=%q)", deg, reason)
	}
	s := col.Stats().Snapshot()
	if s.FlushErrors == 0 {
		t.Errorf("FlushErrors = 0, want > 0")
	}
	if col.LastFlushError() == "" {
		t.Error("LastFlushError empty after WAL failure")
	}
	// The degradation is loud, not silent: the drained batch never
	// committed, so a durability barrier must refuse to succeed.
	if err := col.Drain(); err == nil {
		t.Error("drain over a degraded collection succeeded")
	}

	// Updates arriving while degraded accumulate in the log (recovery
	// drains them), but flushing them is refused with the sentinel.
	fx.addDoc("1996", "giidoc", "the gii paragraph")
	if col.PendingOps() == 0 {
		t.Error("updates while degraded not retained in the log")
	}
	if err := col.Flush(); !errors.Is(err, ErrDegraded) {
		t.Errorf("degraded flush error = %v, want ErrDegraded", err)
	}
	// ...but keeps serving reads from the committed state (which does
	// not include the unflushed nii doc).
	res, err := col.GetIRSResult("www")
	if err != nil {
		t.Fatalf("degraded read failed: %v", err)
	}
	if len(res) != 1 {
		t.Errorf("degraded read = %v, want 1 hit", res)
	}
	if res, err := col.GetIRSResult("nii"); err != nil || len(res) != 0 {
		t.Errorf("unflushed doc visible while degraded: %v, %v", res, err)
	}

	// Heal the log and recover via Reindex: it rebuilds the index from
	// the database and rotates the WAL behind a fresh barrier.
	wal.SetHook(nil)
	if _, _, _, err := col.Reindex(); err != nil {
		t.Fatalf("recovery reindex failed: %v", err)
	}
	if deg, _ := col.Degraded(); deg {
		t.Error("collection still degraded after reindex")
	}
	if err := col.Flush(); err != nil {
		t.Errorf("post-recovery flush failed: %v", err)
	}
	for _, term := range []string{"nii", "gii"} {
		res, err := col.GetIRSResult(term)
		if err != nil || len(res) != 1 {
			t.Errorf("post-recovery %s read = %v, %v (want 1 hit)", term, res, err)
		}
	}
}
