package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/derive"
	"repro/internal/irs"
	"repro/internal/obs"
	"repro/internal/oodb"
)

// Stage histograms of the flush pipeline, shared across collections
// (obs.Default is the process registry /metrics scrapes): analyze
// runs outside every lock, commit_batch is the index commit-lock
// hold — the split PR 3 introduced as counters, generalized onto
// latency distributions.
var (
	flushAnalyzeHist = obs.Default.Histogram("mmf_stage_seconds", "stage", "analyze")
	flushCommitHist  = obs.Default.Histogram("mmf_stage_seconds", "stage", "commit_batch")
)

// Collection is the runtime face of one COLLECTION object: the
// database-side encapsulation of exactly one IRS collection
// (Section 4.2). Its methods mirror the paper's interface:
// IndexObjects, GetIRSResult, FindIRSValue, the update methods (fed
// by the database hook) and Flush.
type Collection struct {
	c         *Coupling
	oid       oodb.OID
	name      string
	specQuery string
	textMode  int
	irsColl   *irs.Collection

	// mu guards the exchangeable configuration slots (deriver,
	// policy, textFn); queries read them while applications may
	// exchange them at runtime (Section 6's "different solutions with
	// the same framework in parallel").
	mu      sync.RWMutex
	deriver derive.Scheme
	policy  PropagationPolicy
	textFn  func(oid oodb.OID, mode int) string

	buffer    *resultBuffer
	log       *updateLog
	stats     Stats
	bufferOff atomic.Bool
	// epoch advances whenever a result served from this collection
	// could change: logged updates awaiting propagation, (re)indexing,
	// flushes and configuration exchanges. Serving layers key caches
	// on Epoch so PropagateOnQuery stays correct behind them.
	epoch atomic.Uint64

	// flushMu serializes whole flush pipelines (drain → stage →
	// analyze → commit). Serialization is what makes Drain a plain
	// Flush: once it holds flushMu, every earlier drain has committed.
	flushMu sync.Mutex
	// applied is the watermark of logged operations reflected in the
	// IRS index (monotonic; compared against updateLog.seq).
	applied atomic.Uint64
	// lostOps is set when a flush drained operations and then failed:
	// the batch has no rollback and the log no longer holds them, so
	// those updates are gone until a Reindex resynchronizes. Drain
	// refuses to report success while it is set.
	lostOps atomic.Bool

	// Async-ingest machinery (PropagateAsync): the background flusher
	// and its tuning, all guarded by mu (ConfigureAsync may retune at
	// runtime). asyncCoalesce == 0 selects the adaptive controller:
	// the flusher moves its group-commit window inside
	// [asyncCoalesceMin, asyncCoalesceMax] with observed arrival rate
	// and queue depth. Positive pins a fixed window; adaptive state
	// lives in coalesceNanos (atomic: read by /stats off the lock).
	flusher          *flusher
	asyncMaxPending  int           // backlog bound; <=0 unbounded
	asyncCoalesce    time.Duration // fixed window; 0 = adaptive
	asyncAdaptive    bool          // coalesce window under controller
	asyncCoalesceMin time.Duration // adaptive floor (idle latency)
	asyncCoalesceMax time.Duration // adaptive ceiling (burst batching)
	coalesceNanos    atomic.Int64  // current effective window

	errMu        sync.Mutex
	lastFlushErr string

	// degraded flips when the write-ahead log refuses an append or
	// fsync: the index must not run ahead of the durable log, so the
	// collection stops propagating (reads keep serving the last
	// committed state) until Reindex rotates a fresh log or the process
	// restarts. degradedReason rides under errMu.
	degraded       atomic.Bool
	degradedReason string
}

// Default async-ingest tuning (see Options.AsyncMaxPending /
// Options.AsyncCoalesce). The adaptive window bounds span the old
// fixed 2ms constant: an idle collection flushes after 250µs (8×
// lower added latency than the fixed window), a bursty one widens to
// 8ms for 4× larger group commits.
const (
	defaultAsyncMaxPending  = 4096
	defaultAsyncCoalesceMin = 250 * time.Microsecond
	defaultAsyncCoalesceMax = 8 * time.Millisecond
)

// Stats counts coupling activity; every field is maintained with
// atomic increments and read via Snapshot.
type Stats struct {
	IRSSearches     atomic.Int64 // queries actually evaluated by the IRS
	BufferHits      atomic.Int64
	BufferMisses    atomic.Int64
	Derivations     atomic.Int64 // deriveIRSValue invocations
	DefaultValues   atomic.Int64 // represented but unscored objects
	OpsLogged       atomic.Int64
	OpsCancelled    atomic.Int64 // ops removed by log cancellation
	OpsApplied      atomic.Int64
	Flushes         atomic.Int64
	ForcedFlushes   atomic.Int64 // flushes forced by a pending query
	Indexed         atomic.Int64
	FlushErrors     atomic.Int64 // flushes that failed on a path with no caller to report to
	FlushRecoveries atomic.Int64 // failed commit batches reconverged by WAL reapply
	AsyncFlushes    atomic.Int64 // flushes initiated by the background flusher
	GroupCommits    atomic.Int64 // commit batches that applied at least one op
	GroupedOps      atomic.Int64 // ops across those batches (avg = group size)
	AnalyzeNanos    atomic.Int64 // time in the parallel analyze stage (no locks held)
	CommitNanos     atomic.Int64 // time inside the index commit batch (commit lock held)
}

// StatsSnapshot is a plain-value copy of Stats.
type StatsSnapshot struct {
	IRSSearches, BufferHits, BufferMisses int64
	Derivations, DefaultValues            int64
	OpsLogged, OpsCancelled, OpsApplied   int64
	Flushes, ForcedFlushes, Indexed       int64
	FlushErrors, FlushRecoveries          int64
	AsyncFlushes                          int64
	GroupCommits, GroupedOps              int64
	AnalyzeNanos, CommitNanos             int64
}

// Snapshot returns current counter values.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		IRSSearches: s.IRSSearches.Load(), BufferHits: s.BufferHits.Load(),
		BufferMisses: s.BufferMisses.Load(), Derivations: s.Derivations.Load(),
		DefaultValues: s.DefaultValues.Load(), OpsLogged: s.OpsLogged.Load(),
		OpsCancelled: s.OpsCancelled.Load(), OpsApplied: s.OpsApplied.Load(),
		Flushes: s.Flushes.Load(), ForcedFlushes: s.ForcedFlushes.Load(),
		Indexed: s.Indexed.Load(), FlushErrors: s.FlushErrors.Load(),
		FlushRecoveries: s.FlushRecoveries.Load(),
		AsyncFlushes:    s.AsyncFlushes.Load(), GroupCommits: s.GroupCommits.Load(),
		GroupedOps: s.GroupedOps.Load(), AnalyzeNanos: s.AnalyzeNanos.Load(),
		CommitNanos: s.CommitNanos.Load(),
	}
}

func newCollection(c *Coupling, oid oodb.OID, name, specQuery string, textMode int,
	irsColl *irs.Collection, deriver derive.Scheme, policy PropagationPolicy) *Collection {
	col := &Collection{
		c:         c,
		oid:       oid,
		name:      name,
		specQuery: specQuery,
		textMode:  textMode,
		irsColl:   irsColl,
		deriver:   deriver,
		policy:    policy,
		log:       newUpdateLog(),
	}
	col.setAsyncTuning(0, 0)
	col.buffer = newResultBuffer(col)
	// When the engine attached a write-ahead log, ride the group fsync
	// on this collection's commit-coalescing window and surface failed
	// background fsyncs as degradation (satisfying write-ahead: the
	// index never runs ahead of the durable log).
	irsColl.SetWALGroupWindow(col.CoalesceWindow)
	irsColl.SetWALSyncErrorHook(func(err error) {
		col.setDegraded(fmt.Errorf("core: wal group fsync for %q: %w", name, err))
	})
	return col
}

// OID returns the COLLECTION object's identifier (what VQL queries
// pass as the collection argument).
func (col *Collection) OID() oodb.OID { return col.oid }

// Name returns the collection name.
func (col *Collection) Name() string { return col.name }

// SpecQuery returns the specification query.
func (col *Collection) SpecQuery() string { return col.specQuery }

// TextMode returns the getText mode used for representations.
func (col *Collection) TextMode() int { return col.textMode }

// Deriver returns the derivation scheme.
func (col *Collection) Deriver() derive.Scheme {
	col.mu.RLock()
	defer col.mu.RUnlock()
	return col.deriver
}

// SetDeriver exchanges the derivation scheme ("It is possible to
// realize different solutions with the same framework in parallel
// and to compare the results", Section 6).
func (col *Collection) SetDeriver(s derive.Scheme) {
	col.mu.Lock()
	col.deriver = s
	col.mu.Unlock()
	col.bumpEpoch()
}

// Policy returns the propagation policy.
func (col *Collection) Policy() PropagationPolicy {
	col.mu.RLock()
	defer col.mu.RUnlock()
	return col.policy
}

// SetPolicy changes the propagation policy, starting (or stopping)
// the background flusher as the collection moves into (or out of)
// PropagateAsync.
func (col *Collection) SetPolicy(p PropagationPolicy) {
	col.mu.Lock()
	col.policy = p
	col.mu.Unlock()
	if p == PropagateAsync {
		col.startFlusher()
		col.kickFlusher() // pick up any backlog logged under the old policy
	} else {
		col.stopFlusher()
	}
}

// SetTextFunc installs (or clears, with nil) the application-defined
// getText override; see Options.TextFunc.
func (col *Collection) SetTextFunc(fn func(oid oodb.OID, mode int) string) {
	col.mu.Lock()
	col.textFn = fn
	col.mu.Unlock()
	col.bumpEpoch()
}

// text returns the representation handed to the IRS for oid.
func (col *Collection) text(oid oodb.OID) string {
	col.mu.RLock()
	fn := col.textFn
	col.mu.RUnlock()
	if fn != nil {
		return fn(oid, col.textMode)
	}
	return col.c.store.Text(oid, col.textMode)
}

// bumpEpoch advances the collection's (and the coupling's) change
// counter.
func (col *Collection) bumpEpoch() {
	col.epoch.Add(1)
	col.c.epoch.Add(1)
}

// Epoch returns a counter that advances whenever results served from
// this collection could differ from previously returned ones. It
// folds in the IRS index version and model generation, so direct
// mutations through IRS() (AddDocument, SetModel, …) are covered
// too. Any cache keyed on (query, Epoch) therefore honours the
// propagation policies: a logged update under PropagateOnQuery
// advances the epoch immediately, before the flush that the next
// query will force.
func (col *Collection) Epoch() uint64 {
	return col.epoch.Load() + col.irsColl.Index().Version() + col.irsColl.ModelGeneration()
}

// Stats exposes the activity counters.
func (col *Collection) Stats() *Stats { return &col.stats }

// IRS returns the underlying IRS collection (experiments inspect
// index sizes through it).
func (col *Collection) IRS() *irs.Collection { return col.irsColl }

// DocCount returns the number of IRS documents in the collection.
func (col *Collection) DocCount() int { return col.irsColl.DocCount() }

// Represented reports whether obj has an IRS document in this
// collection.
func (col *Collection) Represented(obj oodb.OID) bool {
	return col.irsColl.HasDoc(obj.String())
}

// defaultValue is the retrieval value of a represented document that
// the IRS did not score for a query: the belief-based paradigms
// (inference net, passage) assign their default belief to absent
// evidence (an explicitly configured 0.0 included — the belief is a
// pointer precisely so zero is expressible), other paradigms zero.
func (col *Collection) defaultValue() float64 {
	switch m := col.irsColl.Model().(type) {
	case irs.InferenceNet:
		if m.DefaultBelief != nil {
			return *m.DefaultBelief
		}
		return 0.4
	case irs.PassageModel:
		if m.DefaultBelief != nil {
			return *m.DefaultBelief
		}
		return 0.4
	}
	return 0
}

// specResult evaluates the specification query and returns the
// selected object OIDs. Every result row must be a single object —
// "The result is a set of IRSObjects" (Section 4.2).
func (col *Collection) specResult() ([]oodb.OID, error) {
	rs, err := col.c.ev.Run(col.specQuery)
	if err != nil {
		return nil, fmt.Errorf("core: specification query of %q: %w", col.name, err)
	}
	var out []oodb.OID
	seen := make(map[oodb.OID]bool)
	for _, row := range rs.Rows {
		if len(row) != 1 || row[0].Kind != oodb.KindOID {
			return nil, fmt.Errorf("%w (collection %q)", ErrBadSpecQuery, col.name)
		}
		if !seen[row[0].Ref] {
			seen[row[0].Ref] = true
			out = append(out, row[0].Ref)
		}
	}
	return out, nil
}

// IndexObjects evaluates the specification query and indexes the
// textual representation of every selected object — the paper's
// indexObjects(specQuery, textMode). Re-invocation refreshes the
// text of already-represented objects. The result buffer is
// invalidated.
func (col *Collection) IndexObjects() (int, error) {
	oids, err := col.specResult()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, oid := range oids {
		text := col.text(oid)
		ext := oid.String()
		meta := map[string]string{"oid": ext, "mode": fmt.Sprint(col.textMode)}
		if col.irsColl.HasDoc(ext) {
			err = col.irsColl.UpdateDocument(ext, text, meta)
		} else {
			err = col.irsColl.AddDocument(ext, text, meta)
		}
		if err != nil {
			return n, err
		}
		n++
		col.stats.Indexed.Add(1)
	}
	col.buffer.invalidate()
	col.bumpEpoch()
	return n, nil
}

// Reindex fully resynchronizes the IRS collection with the current
// specification-query result: missing objects are added, represented
// objects refreshed, and objects no longer selected are removed.
func (col *Collection) Reindex() (added, updated, removed int, err error) {
	oids, err := col.specResult()
	if err != nil {
		return 0, 0, 0, err
	}
	want := make(map[string]oodb.OID, len(oids))
	for _, oid := range oids {
		want[oid.String()] = oid
	}
	for _, ext := range col.representedExtIDs() {
		if _, ok := want[ext]; !ok {
			if err := col.irsColl.DeleteDocument(ext); err != nil {
				return added, updated, removed, err
			}
			removed++
		}
	}
	for ext, oid := range want {
		text := col.text(oid)
		meta := map[string]string{"oid": ext, "mode": fmt.Sprint(col.textMode)}
		if col.irsColl.HasDoc(ext) {
			if err := col.irsColl.UpdateDocument(ext, text, meta); err != nil {
				return added, updated, removed, err
			}
			updated++
		} else {
			if err := col.irsColl.AddDocument(ext, text, meta); err != nil {
				return added, updated, removed, err
			}
			added++
		}
	}
	_, _, seq := col.log.drain() // everything is fresh; pending ops are moot
	col.storeApplied(seq)
	// The rebuilt state bypassed the log (direct index writes), so the
	// old log no longer describes a replayable tail: rotate it behind a
	// barrier at the new watermark. The snapshot that covers this state
	// is the next Save — until then recovery replays an empty tail onto
	// the previous snapshot, which a fresh Reindex reconverges.
	if err := col.irsColl.WALReset(seq); err != nil {
		err = fmt.Errorf("core: wal reset for %q: %w", col.name, err)
		col.setDegraded(err)
		return added, updated, removed, err
	}
	// A full resynchronization recovers anything a failed flush
	// dropped; the drain barrier is sound again, and a successfully
	// rotated log lifts WAL degradation.
	col.lostOps.Store(false)
	col.clearDegraded()
	col.buffer.invalidate()
	col.bumpEpoch()
	return added, updated, removed, nil
}

func (col *Collection) representedExtIDs() []string {
	ix := col.irsColl.Index()
	ids := ix.LiveDocIDs()
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		if ext, ok := ix.ExtID(id); ok {
			out = append(out, ext)
		}
	}
	return out
}

// GetIRSResult submits the query to the IRS — or serves it from the
// persistent result buffer — and returns object OIDs with their
// retrieval values (the paper's getIRSResult dictionary
// ‖IRSObject → REAL‖). Pending update propagation is enforced first
// when the policy defers it (Section 4.6: "If ... an information-
// need query is issued with update propagation pending, propagation
// is enforced").
func (col *Collection) GetIRSResult(irsQuery string) (map[oodb.OID]float64, error) {
	node, err := irs.ParseQuery(irsQuery)
	if err != nil {
		return nil, err
	}
	return col.getIRSResultNode(node)
}

// beginIRSRead is the shared preamble of every buffered IRS read
// path: it enforces pending update propagation first when the policy
// defers it (Section 4.6), then consults the persistent result
// buffer. On a hit the buffered scores are returned (non-nil, hit
// counted). On a miss, scores is nil; when offerBack is set the miss
// is counted (BufferMisses means "a miss the caller will populate"),
// useBuffer reports whether the caller should offer its freshly
// evaluated result back to the buffer, and gen is the buffer
// generation observed *before* the evaluation — put discards results
// computed across an invalidation, so a flush racing the evaluation
// can never resurrect pre-flush scores. Callers that never populate
// the buffer (the top-k prefix path) pass offerBack false and skip
// both the miss count and the generation read. The caller must
// acquire its snapshot only after this returns, so the ranking
// reflects either the fully propagated state or (for flushes racing
// in from elsewhere) the fully unpropagated one — never a
// half-applied blend.
func (col *Collection) beginIRSRead(key string, offerBack bool) (scores map[oodb.OID]float64, useBuffer bool, gen uint64, err error) {
	if col.Policy() != PropagateImmediately && col.log.pending() && !col.degraded.Load() {
		// A degraded collection serves reads from the last committed
		// state instead of failing them — propagation is what the WAL
		// failure forbids, not retrieval.
		col.stats.ForcedFlushes.Add(1)
		if err := col.Flush(); err != nil {
			return nil, false, 0, err
		}
	}
	useBuffer = !col.bufferOff.Load() && offerBack
	if !col.bufferOff.Load() {
		if scores, ok := col.buffer.get(key); ok {
			col.stats.BufferHits.Add(1)
			return scores, true, 0, nil
		}
		if offerBack {
			col.stats.BufferMisses.Add(1)
			gen = col.buffer.generation()
		}
	}
	col.stats.IRSSearches.Add(1)
	return nil, useBuffer, gen, nil
}

func (col *Collection) getIRSResultNode(node *irs.Node) (map[oodb.OID]float64, error) {
	key := node.String()
	buffered, useBuffer, bufGen, err := col.beginIRSRead(key, true)
	if err != nil {
		return nil, err
	}
	if buffered != nil {
		return buffered, nil
	}
	snap := col.irsColl.Snapshot()
	results := col.irsColl.SearchNodeAt(snap, node)
	scores := make(map[oodb.OID]float64, len(results))
	for _, r := range results {
		oid, err := oodb.ParseOID(r.ExtID)
		if err != nil {
			return nil, fmt.Errorf("core: IRS returned foreign document id %q: %w", r.ExtID, err)
		}
		scores[oid] = r.Score
	}
	if useBuffer {
		col.buffer.put(key, scores, bufGen)
	}
	return scores, nil
}

// RankedValue pairs an object with its retrieval value; slices of it
// preserve rank order (value descending, ties by OID string), which a
// plain ‖IRSObject → REAL‖ dictionary cannot.
type RankedValue struct {
	OID   oodb.OID
	Value float64
}

// GetIRSResultTopK is the top-k variant of GetIRSResult: it returns
// only the k highest-ranked (object, value) pairs, in rank order.
// The prefix is exactly the first k entries of the full ranking under
// the deterministic tie-break (value descending, then OID), so
// serving layers can push their limit down instead of truncating a
// fully evaluated result. Like GetIRSResult it enforces pending
// update propagation first when the policy defers it, and it serves
// from the persistent result buffer when the full result is already
// buffered; a fresh top-k evaluation is NOT buffered (a k-prefix
// cannot answer later findIRSValue calls for arbitrary objects).
// k <= 0 ranks the full result.
func (col *Collection) GetIRSResultTopK(irsQuery string, k int) ([]RankedValue, error) {
	return col.GetIRSResultTopKTraced(irsQuery, k, nil)
}

// GetIRSResultTopKTraced is GetIRSResultTopK carrying a per-request
// trace context (nil-safe): it annotates result-buffer hit/miss and
// hands tr down to the IRS evaluator, which records stage spans and
// pruning attrs.
func (col *Collection) GetIRSResultTopKTraced(irsQuery string, k int, tr *obs.Trace) ([]RankedValue, error) {
	node, err := irs.ParseQuery(irsQuery)
	if err != nil {
		return nil, err
	}
	return col.getIRSResultNodeTopK(node, k, tr)
}

func (col *Collection) getIRSResultNodeTopK(node *irs.Node, k int, tr *obs.Trace) ([]RankedValue, error) {
	if k <= 0 {
		// Unlimited: this is the exhaustive result, so it goes through
		// (and populates) the buffered path like GetIRSResult.
		scores, err := col.getIRSResultNode(node)
		if err != nil {
			return nil, err
		}
		return rankScores(scores, 0), nil
	}
	// offerBack false: a k-prefix is never offered to the buffer, so
	// the miss counter and put-back generation are skipped.
	buffered, _, _, err := col.beginIRSRead(node.String(), false)
	if err != nil {
		return nil, err
	}
	if buffered != nil {
		tr.Attr("result_buffer", "hit")
		return rankScores(buffered, k), nil
	}
	tr.Attr("result_buffer", "miss")
	snap := col.irsColl.Snapshot()
	results := col.irsColl.SearchNodeTopKTracedAt(snap, node, k, tr)
	out := make([]RankedValue, 0, len(results))
	for _, r := range results {
		oid, err := oodb.ParseOID(r.ExtID)
		if err != nil {
			return nil, fmt.Errorf("core: IRS returned foreign document id %q: %w", r.ExtID, err)
		}
		out = append(out, RankedValue{OID: oid, Value: r.Score})
	}
	return out, nil
}

// rankScores orders a buffered score map (value descending, ties by
// OID string — the same order the IRS ranks in) and truncates to k
// (k <= 0: no truncation). For k below the result size it keeps a
// bounded best-k slice (O(n log k) comparisons, most candidates
// rejected on a single float compare) instead of sorting the whole
// map — the buffered-hit path must not reintroduce the full-sort
// cost the streaming top-k engine removes.
func rankScores(scores map[oodb.OID]float64, k int) []RankedValue {
	if k <= 0 || k >= len(scores) {
		out := make([]RankedValue, 0, len(scores))
		for oid, v := range scores {
			out = append(out, RankedValue{OID: oid, Value: v})
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Value != out[j].Value {
				return out[i].Value > out[j].Value
			}
			return out[i].OID.String() < out[j].OID.String()
		})
		return out
	}
	type entry struct {
		rv  RankedValue
		ext string
	}
	// worse reports a ranking strictly after b (lower value, or tied
	// with a larger OID string).
	worse := func(a, b entry) bool {
		if a.rv.Value != b.rv.Value {
			return a.rv.Value < b.rv.Value
		}
		return a.ext > b.ext
	}
	best := make([]entry, 0, k) // sorted best-first
	for oid, v := range scores {
		if len(best) == k && v < best[len(best)-1].rv.Value {
			continue
		}
		e := entry{rv: RankedValue{OID: oid, Value: v}, ext: oid.String()}
		// First kept position ranking after e.
		lo, hi := 0, len(best)
		for lo < hi {
			mid := (lo + hi) / 2
			if worse(best[mid], e) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if lo == k {
			continue // tied the k-th on value but lost on OID
		}
		if len(best) < k {
			best = append(best, entry{})
		}
		copy(best[lo+1:], best[lo:len(best)-1])
		best[lo] = e
	}
	out := make([]RankedValue, len(best))
	for i := range best {
		out[i] = best[i].rv
	}
	return out
}

// FindIRSValue returns the IRS value of obj for the query,
// implementing the Figure 3 flow: buffered result → direct value for
// represented objects → deriveIRSValue for unrepresented ones.
func (col *Collection) FindIRSValue(irsQuery string, obj oodb.OID) (float64, error) {
	node, err := irs.ParseQuery(irsQuery)
	if err != nil {
		return 0, err
	}
	return col.findIRSValueNode(node, obj)
}

func (col *Collection) findIRSValueNode(node *irs.Node, obj oodb.OID) (float64, error) {
	return col.findIRSValueDepth(node, obj, 0)
}

// maxDeriveDepth bounds the component recursion. Document trees are
// shallow; the bound only guards against reference cycles an
// application could build by editing children attributes directly.
const maxDeriveDepth = 64

// ErrDeriveDepth is returned when derivation recursion exceeds
// maxDeriveDepth (almost certainly a cycle in component references).
var ErrDeriveDepth = errors.New("core: derivation exceeds depth bound (component cycle?)")

func (col *Collection) findIRSValueDepth(node *irs.Node, obj oodb.OID, depth int) (float64, error) {
	if depth > maxDeriveDepth {
		return 0, fmt.Errorf("%w: %s", ErrDeriveDepth, obj)
	}
	scores, err := col.getIRSResultNode(node)
	if err != nil {
		return 0, err
	}
	if v, ok := scores[obj]; ok {
		return v, nil
	}
	if col.Represented(obj) {
		// "If the object is represented in the IRS collection, the
		// IRS directly calculates the value" — absence from the
		// result means no evidence, i.e. the model's default.
		col.stats.DefaultValues.Add(1)
		return col.defaultValue(), nil
	}
	return col.deriveValueDepth(node, obj, depth)
}

// deriveValue computes the value of an unrepresented object from
// its components' values (Section 4.5.2). Components are the
// object's children in the document tree; their values come from
// the same (buffered) machinery, recursing further down for
// components that are themselves unrepresented.
func (col *Collection) deriveValue(node *irs.Node, obj oodb.OID) (float64, error) {
	return col.deriveValueDepth(node, obj, 0)
}

func (col *Collection) deriveValueDepth(node *irs.Node, obj oodb.OID, depth int) (float64, error) {
	if depth > maxDeriveDepth {
		return 0, fmt.Errorf("%w: %s", ErrDeriveDepth, obj)
	}
	col.stats.Derivations.Add(1)
	deriver := col.Deriver()
	kids := col.c.store.Children(obj)
	if len(kids) == 0 {
		return col.defaultValue(), nil
	}
	needSubs := deriver.NeedsSubqueries()
	subs := node.Subqueries()
	comps := make([]derive.Component, 0, len(kids))
	for _, kid := range kids {
		comp := derive.Component{
			Type:   col.componentType(kid),
			Length: len(strings.Fields(col.c.store.SubtreeText(kid))),
		}
		v, err := col.findIRSValueDepth(node, kid, depth+1)
		if err != nil {
			return 0, err
		}
		comp.Value = v
		if needSubs && len(subs) > 1 {
			comp.PerSub = make([]float64, len(subs))
			for i, sub := range subs {
				sv, err := col.findIRSValueDepth(sub, kid, depth+1)
				if err != nil {
					return 0, err
				}
				comp.PerSub[i] = sv
			}
		}
		comps = append(comps, comp)
	}
	return deriver.Derive(node, comps, col.defaultValue()), nil
}

func (col *Collection) componentType(oid oodb.OID) string {
	if t := col.c.store.TypeOf(oid); t != "" {
		return t
	}
	class, _ := col.c.db.ClassOf(oid)
	return class
}

// onUpdate records a relevant committed database mutation in the
// update log. A text or structure change affects the representation
// of the object itself and of every represented ancestor (their
// getText covers the subtree), so all of them are logged.
func (col *Collection) onUpdate(u oodb.Update) {
	logged := false
	switch u.Kind {
	case oodb.UpdateCreate:
		col.log.add(u.OID, pendingCreate, &col.stats)
		logged = true
	case oodb.UpdateDelete:
		if col.Represented(u.OID) || col.log.hasCreate(u.OID) {
			col.log.add(u.OID, pendingDelete, &col.stats)
			logged = true
		}
	case oodb.UpdateModify:
		for oid := u.OID; oid != oodb.NilOID; oid = col.c.store.Parent(oid) {
			if col.Represented(oid) {
				col.log.add(oid, pendingModify, &col.stats)
				logged = true
			}
		}
	}
	if logged {
		col.bumpEpoch()
	}
	if col.degraded.Load() {
		// Updates keep accumulating in the log for recovery to drain;
		// flushing them is what degradation forbids.
		return
	}
	switch col.Policy() {
	case PropagateImmediately:
		if col.log.pending() {
			// Errors here cannot be returned to the mutator (the hook
			// runs post-commit); count them so they are observable and
			// let the next query surface the retry.
			if err := col.Flush(); err != nil {
				col.noteFlushError(err)
			}
		}
	case PropagateAsync:
		if logged {
			col.kickFlusher()
		}
	}
}

// stagedOp is one flush operation staged between the log drain and
// the commit batch; create/modify ops carry first the extracted text
// and then (after the analyze stage) the commit-ready document.
type stagedOp struct {
	kind     pendingKind
	ext      string
	text     string
	analyzed *irs.AnalyzedDoc
}

// Flush propagates pending updates to the IRS collection through the
// staged write pipeline: modified representations are refreshed,
// deleted objects removed, and — when creations are pending — the
// specification query is re-evaluated to admit new members. The
// result buffer is invalidated ("rebuilding the IRS index structures
// even though they will not change after all" is avoided by the log's
// cancellation, Section 4.6).
//
// The pipeline has three stages. Stage: text extraction and the
// specification re-run consult the database and must not run under
// the index commit lock. Analyze: staged texts are tokenized into
// commit-ready irs.AnalyzedDocs, in parallel across GOMAXPROCS
// workers, still outside every lock. Commit: one short index batch
// merges the pre-built postings, so the commit lock — during which no
// snapshot can be acquired — is held for pointer work only, and a
// concurrent query's snapshot observes either none or all of the
// flush. Whole pipelines are serialized per collection (flushMu),
// which is what lets Drain guarantee completed propagation.
func (col *Collection) Flush() error {
	if err := col.degradedErr(); err != nil {
		// Pending ops stay in the log — nothing is drained while
		// degraded, so recovery (Reindex or restart) still sees them.
		return err
	}
	col.flushMu.Lock()
	defer col.flushMu.Unlock()
	ops, hadCreates, seq := col.log.drain()
	if len(ops) == 0 && !hadCreates {
		col.storeApplied(seq)
		return nil
	}
	col.stats.Flushes.Add(1)
	tr := obs.StartTrace("flush", col.name)
	defer tr.Finish(obs.SharedSlowLog)
	var staged []stagedOp
	for _, op := range ops {
		ext := op.oid.String()
		switch op.kind {
		case pendingModify:
			if !col.irsColl.HasDoc(ext) {
				continue
			}
			staged = append(staged, stagedOp{kind: pendingModify, ext: ext, text: col.text(op.oid)})
		case pendingDelete:
			if !col.irsColl.HasDoc(ext) {
				continue
			}
			staged = append(staged, stagedOp{kind: pendingDelete, ext: ext})
		}
	}
	if hadCreates {
		oids, err := col.specResult()
		if err != nil {
			// The drained operations are gone from the log and were
			// never committed; only Reindex can recover them.
			col.lostOps.Store(true)
			return err
		}
		for _, oid := range oids {
			ext := oid.String()
			if col.irsColl.HasDoc(ext) {
				continue
			}
			staged = append(staged, stagedOp{kind: pendingCreate, ext: ext, text: col.text(oid)})
		}
	}
	if len(staged) == 0 {
		col.storeApplied(seq)
		return nil
	}

	start := time.Now()
	col.analyzeStaged(staged)
	analyzeTook := time.Since(start)
	col.stats.AnalyzeNanos.Add(int64(analyzeTook))
	flushAnalyzeHist.Observe(analyzeTook)
	tr.Span("analyze", analyzeTook)
	tr.Attr("staged", len(staged))

	// Write-ahead: the batch reaches the log (and, under the always
	// policy, the disk) before any of it reaches the index. A refused
	// append degrades the collection instead of committing unlogged
	// state — the drained ops are preserved only in memory then, so
	// the degradation is loud (Drain fails) rather than silent.
	var walOps []irs.WALOp
	if col.irsColl.WALEnabled() {
		walOps = make([]irs.WALOp, 0, len(staged))
		for i := range staged {
			op := &staged[i]
			switch op.kind {
			case pendingCreate:
				walOps = append(walOps, irs.WALOp{Kind: irs.WALAdd, Doc: op.analyzed})
			case pendingModify:
				walOps = append(walOps, irs.WALOp{Kind: irs.WALUpdate, Doc: op.analyzed})
			case pendingDelete:
				walOps = append(walOps, irs.WALOp{Kind: irs.WALDelete, ExtID: op.ext})
			}
		}
		start = time.Now()
		if werr := col.irsColl.WALAppend(walOps, seq); werr != nil {
			werr = fmt.Errorf("core: wal append for %q: %w", col.name, werr)
			col.lostOps.Store(true)
			col.setDegraded(werr)
			return werr
		}
		tr.Span("wal_append", time.Since(start))
	}

	applied := 0
	start = time.Now()
	err := col.irsColl.Batch(func(b *irs.Batch) error {
		for i := range staged {
			op := &staged[i]
			switch op.kind {
			case pendingModify:
				if !b.Has(op.ext) {
					continue // deleted since staging
				}
				if _, err := b.UpdateAnalyzed(op.analyzed); err != nil {
					return err
				}
			case pendingDelete:
				if !b.Has(op.ext) {
					continue
				}
				if err := b.Delete(op.ext); err != nil {
					return err
				}
			case pendingCreate:
				if b.Has(op.ext) {
					continue // appeared since staging
				}
				if _, err := b.AddAnalyzed(op.analyzed); err != nil {
					return err
				}
				col.stats.Indexed.Add(1)
			}
			col.stats.OpsApplied.Add(1)
			applied++
		}
		return nil
	})
	commitTook := time.Since(start)
	col.stats.CommitNanos.Add(int64(commitTook))
	flushCommitHist.Observe(commitTook)
	tr.Span("commit_batch", commitTook)
	tr.Attr("applied", applied)
	if err != nil && walOps != nil {
		// Every op in the failed batch is already durable in the log, so
		// the group is recoverable: reapply it idempotently (ops the
		// batch landed before failing re-apply onto the same state) and
		// the index converges on exactly the state replay would rebuild.
		// This is what turns ErrUpdatesLost from terminal into rare.
		if rerr := col.irsColl.WALReapply(walOps); rerr == nil {
			col.stats.FlushRecoveries.Add(1)
			tr.Attr("wal_reapplied", len(walOps))
			applied = len(walOps)
			err = nil
		}
	}
	// Invalidate even on error: the batch has no rollback, so any
	// operations applied before the failure are committed and buffered
	// results may already be stale.
	if applied > 0 {
		col.stats.GroupCommits.Add(1)
		col.stats.GroupedOps.Add(int64(applied))
		col.buffer.invalidate()
		col.bumpEpoch()
	}
	if err == nil {
		col.storeApplied(seq)
	} else {
		// Part of the drained group may be committed, the rest is
		// lost (no rollback, log already drained): poison the drain
		// barrier until a Reindex resynchronizes.
		col.lostOps.Store(true)
	}
	return err
}

// analyzeStaged runs the analyze stage: every staged create/modify is
// tokenized into a commit-ready document, fanning out across
// GOMAXPROCS workers. No locks are held — this is the work the
// pre-pipeline Flush performed inside the commit batch.
func (col *Collection) analyzeStaged(staged []stagedOp) {
	mode := fmt.Sprint(col.textMode)
	analyzeOne := func(op *stagedOp) {
		if op.kind == pendingDelete {
			return
		}
		op.analyzed = col.irsColl.Analyze(op.ext, op.text,
			map[string]string{"oid": op.ext, "mode": mode})
		op.text = "" // the analyzed form supersedes the raw text
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(staged) {
		workers = len(staged)
	}
	if workers <= 1 {
		for i := range staged {
			analyzeOne(&staged[i])
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(staged) {
					return
				}
				analyzeOne(&staged[i])
			}
		}()
	}
	wg.Wait()
}

// storeApplied advances the applied watermark monotonically.
func (col *Collection) storeApplied(seq uint64) {
	for {
		cur := col.applied.Load()
		if seq <= cur || col.applied.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// Watermark returns the sequence number of the last update accepted
// into this collection's log. Async ingest responses carry it so
// clients can wait for visibility (AppliedWatermark >= their
// watermark, or simply Drain).
func (col *Collection) Watermark() uint64 { return col.log.lastSeq() }

// AppliedWatermark returns the highest watermark whose operations
// have been committed to the IRS index.
func (col *Collection) AppliedWatermark() uint64 { return col.applied.Load() }

// ErrUpdatesLost reports that a flush drained operations from the
// update log and then failed to commit them: there is no rollback and
// the log no longer holds them, so the index is missing updates until
// Reindex resynchronizes it with the database.
var ErrUpdatesLost = errors.New("core: updates dropped by a failed flush; Reindex to resynchronize")

// Drain blocks until every update logged before the call has been
// propagated, regardless of which policy (or background flusher) is
// doing the propagating. Because flush pipelines are serialized, one
// synchronous Flush suffices: any pipeline already in flight holds
// flushMu until its commit lands, and whatever it left behind is
// drained here. If an earlier flush (for example the background
// flusher's, whose error had no caller to land on) dropped drained
// operations, Drain reports ErrUpdatesLost instead of claiming the
// barrier holds.
func (col *Collection) Drain() error {
	if err := col.Flush(); err != nil {
		return err
	}
	// Drain doubles as the durability barrier: under the group fsync
	// policy flushed records may still sit in the OS cache, so force
	// them down before declaring the log drained.
	if err := col.irsColl.WALSync(); err != nil {
		err = fmt.Errorf("core: wal sync for %q: %w", col.name, err)
		col.setDegraded(err)
		return err
	}
	if col.lostOps.Load() {
		return fmt.Errorf("%w (last error: %s)", ErrUpdatesLost, col.LastFlushError())
	}
	return nil
}

// noteFlushError records a flush failure on a path that has no caller
// to return it to (post-commit hooks, the background flusher, close).
func (col *Collection) noteFlushError(err error) {
	if err == nil {
		return
	}
	col.stats.FlushErrors.Add(1)
	col.errMu.Lock()
	col.lastFlushErr = err.Error()
	col.errMu.Unlock()
}

// LastFlushError returns the most recent background flush failure
// ("" if none); /stats surfaces it.
func (col *Collection) LastFlushError() string {
	col.errMu.Lock()
	defer col.errMu.Unlock()
	return col.lastFlushErr
}

// ErrDegraded reports that the collection is read-only because its
// write-ahead log refused an append or fsync: committing unlogged
// operations would break the write-ahead invariant, so propagation is
// parked until Reindex rotates a fresh log or the process restarts.
var ErrDegraded = errors.New("core: collection degraded (wal failure); serving reads only — Reindex or restart to recover")

// Degraded reports whether the collection is in WAL-degraded
// read-only mode, and why.
func (col *Collection) Degraded() (bool, string) {
	if !col.degraded.Load() {
		return false, ""
	}
	col.errMu.Lock()
	defer col.errMu.Unlock()
	return true, col.degradedReason
}

func (col *Collection) degradedErr() error {
	if !col.degraded.Load() {
		return nil
	}
	col.errMu.Lock()
	reason := col.degradedReason
	col.errMu.Unlock()
	return fmt.Errorf("%w: %s", ErrDegraded, reason)
}

// setDegraded parks the collection read-only and records why; the
// failure also lands on the FlushErrors/LastFlushError surface so
// existing monitoring sees it without new wiring.
func (col *Collection) setDegraded(err error) {
	col.noteFlushError(err)
	col.errMu.Lock()
	col.degradedReason = err.Error()
	col.errMu.Unlock()
	col.degraded.Store(true)
}

func (col *Collection) clearDegraded() {
	if !col.degraded.Load() {
		return
	}
	col.degraded.Store(false)
	col.errMu.Lock()
	col.degradedReason = ""
	col.errMu.Unlock()
}

// AsyncMaxPending returns the configured pending-queue bound (<=0:
// unbounded).
func (col *Collection) AsyncMaxPending() int {
	col.mu.RLock()
	defer col.mu.RUnlock()
	return col.asyncMaxPending
}

// AsyncBacklogFull reports whether the collection runs an async
// propagation policy whose pending-update queue has reached its
// bound. Serving layers use it as the backpressure signal: shed
// ingest load (503) instead of letting the backlog grow without
// bound. Updates that do arrive are still logged — correctness never
// depends on the bound.
func (col *Collection) AsyncBacklogFull() bool {
	col.mu.RLock()
	async := col.policy == PropagateAsync
	bound := col.asyncMaxPending
	col.mu.RUnlock()
	return async && bound > 0 && col.log.size() >= bound
}

// PendingOps reports the size of the update log (experiments).
func (col *Collection) PendingOps() int { return col.log.size() }
