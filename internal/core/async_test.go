package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestPropagateAsyncBackground: under PropagateAsync the background
// flusher propagates logged updates on its own — no query has to
// force the flush — and the results match.
func TestPropagateAsyncBackground(t *testing.T) {
	fx := newFixture(t, "")
	fx.addDoc("1994", "webdoc", "the world wide web", "the national infrastructure")
	col := fx.paraColl(Options{Policy: PropagateAsync, AsyncCoalesce: time.Millisecond})
	if got := col.Policy().String(); got != "async" {
		t.Fatalf("policy = %q, want async", got)
	}
	para := fx.paras(fx.docs[0])[1]
	if err := fx.store.SetText(fx.store.Children(para)[0], "games on the world wide web"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "background flush", func() bool {
		return col.PendingOps() == 0 && col.AppliedWatermark() >= col.Watermark()
	})
	if got := col.Stats().AsyncFlushes.Load(); got == 0 {
		t.Error("background flusher never ran")
	}
	scores, err := col.GetIRSResult("web")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := scores[para]; !ok {
		t.Fatalf("updated paragraph missing from result: %v", scores)
	}
	if got := col.Stats().ForcedFlushes.Load(); got != 0 {
		t.Errorf("query forced %d flushes despite drained backlog", got)
	}
	if got := col.Stats().FlushErrors.Load(); got != 0 {
		t.Errorf("flush errors: %d (%s)", got, col.LastFlushError())
	}
}

// TestAsyncDrain: Drain blocks until everything logged before the
// call is committed, even when the flusher's coalescing window is far
// away.
func TestAsyncDrain(t *testing.T) {
	fx := newFixture(t, "")
	fx.addDoc("1994", "webdoc", "the world wide web", "the national infrastructure")
	col := fx.paraColl(Options{Policy: PropagateAsync, AsyncCoalesce: time.Hour})
	para := fx.paras(fx.docs[0])[0]
	if err := fx.store.SetText(fx.store.Children(para)[0], "hypertext on the web"); err != nil {
		t.Fatal(err)
	}
	if col.PendingOps() == 0 {
		t.Fatal("update not logged")
	}
	wm := col.Watermark()
	if err := col.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := col.AppliedWatermark(); got < wm {
		t.Fatalf("AppliedWatermark = %d, want >= %d", got, wm)
	}
	if got := col.PendingOps(); got != 0 {
		t.Fatalf("PendingOps = %d after Drain", got)
	}
	scores, err := col.GetIRSResult("hypertext")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := scores[para]; !ok {
		t.Fatalf("drained update not visible: %v", scores)
	}
	if got := col.Stats().GroupCommits.Load(); got == 0 {
		t.Error("no group commit recorded")
	}
}

// TestAsyncQueryForcesFlush: a query racing ahead of the flusher
// forces propagation itself — PropagateOnQuery semantics are
// preserved under the async policy.
func TestAsyncQueryForcesFlush(t *testing.T) {
	fx := newFixture(t, "")
	fx.addDoc("1994", "webdoc", "the world wide web", "the national infrastructure")
	col := fx.paraColl(Options{Policy: PropagateAsync, AsyncCoalesce: time.Hour})
	para := fx.paras(fx.docs[0])[0]
	if err := fx.store.SetText(fx.store.Children(para)[0], "multimedia frameworks"); err != nil {
		t.Fatal(err)
	}
	scores, err := col.GetIRSResult("multimedia")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := scores[para]; !ok {
		t.Fatalf("forced flush did not propagate: %v", scores)
	}
	if got := col.Stats().ForcedFlushes.Load(); got == 0 {
		t.Error("expected the query to force a flush")
	}
}

// TestAsyncBacklogBound: the bounded pending queue reports
// saturation (the serving layer's 503 signal) and recovers after a
// drain.
func TestAsyncBacklogBound(t *testing.T) {
	fx := newFixture(t, "")
	fx.addDoc("1994", "webdoc", "one paragraph", "two paragraph", "three paragraph")
	col := fx.paraColl(Options{
		Policy: PropagateAsync, AsyncCoalesce: time.Hour, AsyncMaxPending: 2,
	})
	if col.AsyncMaxPending() != 2 {
		t.Fatalf("AsyncMaxPending = %d", col.AsyncMaxPending())
	}
	if col.AsyncBacklogFull() {
		t.Fatal("backlog full before any update")
	}
	paras := fx.paras(fx.docs[0])
	for i, p := range paras[:2] {
		if err := fx.store.SetText(fx.store.Children(p)[0], fmt.Sprintf("fresh text %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if !col.AsyncBacklogFull() {
		t.Fatalf("backlog not full at %d pending (bound 2)", col.PendingOps())
	}
	if err := col.Drain(); err != nil {
		t.Fatal(err)
	}
	if col.AsyncBacklogFull() {
		t.Error("backlog still full after drain")
	}
}

// TestImmediateFlushErrorsObservable: a propagation failure on the
// post-commit hook path (which has no caller to report to) is counted
// and its message retained.
func TestImmediateFlushErrorsObservable(t *testing.T) {
	fx := newFixture(t, "")
	// The spec query parses but fails at evaluation time (unknown
	// class), so the flush's specification re-run errors out.
	col, err := fx.coupling.CreateCollection("broken", `ACCESS p FROM p IN NOSUCHCLASS;`, Options{
		Policy: PropagateImmediately,
	})
	if err != nil {
		t.Fatal(err)
	}
	fx.addDoc("1994", "webdoc", "a paragraph")
	if got := col.Stats().FlushErrors.Load(); got == 0 {
		t.Fatal("flush error on the hook path went uncounted")
	}
	if col.LastFlushError() == "" {
		t.Error("LastFlushError empty")
	}
	// The failed flush drained (and thereby dropped) the logged ops:
	// the drain barrier must refuse to report success, even though
	// the log is empty now.
	if err := col.Drain(); !errors.Is(err, ErrUpdatesLost) {
		t.Fatalf("Drain after dropped ops = %v, want ErrUpdatesLost", err)
	}
}

// TestAsyncPolicySwitch: moving a collection out of PropagateAsync
// stops the flusher (no goroutine leak, subsequent updates only
// propagate on demand); moving back restarts it.
func TestAsyncPolicySwitch(t *testing.T) {
	fx := newFixture(t, "")
	fx.addDoc("1994", "webdoc", "the world wide web")
	col := fx.paraColl(Options{Policy: PropagateAsync, AsyncCoalesce: time.Millisecond})
	col.SetPolicy(PropagateManually)
	para := fx.paras(fx.docs[0])[0]
	if err := fx.store.SetText(fx.store.Children(para)[0], "manual text"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if got := col.PendingOps(); got == 0 {
		t.Fatal("update propagated although policy is manual")
	}
	col.SetPolicy(PropagateAsync)
	waitUntil(t, 5*time.Second, "flusher restart", func() bool {
		return col.PendingOps() == 0
	})
}

// TestAsyncConcurrentMutationsAndQueries exercises the full pipeline
// under the race detector: concurrent writers, readers and a final
// drain. Content correctness is asserted by the deterministic final
// texts.
func TestAsyncConcurrentMutationsAndQueries(t *testing.T) {
	fx := newFixture(t, "")
	fx.addDoc("1994", "webdoc",
		"alpha text", "beta text", "gamma text", "delta text")
	col := fx.paraColl(Options{Policy: PropagateAsync, AsyncCoalesce: time.Millisecond,
		Shards: 4})
	paras := fx.paras(fx.docs[0])
	const rounds = 20
	var wg sync.WaitGroup
	errc := make(chan error, len(paras)+2)
	for w := range paras {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			leaf := fx.store.Children(paras[w])[0]
			for r := 0; r < rounds; r++ {
				if err := fx.store.SetText(leaf, fmt.Sprintf("writer %d round %d retrieval text", w, r)); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := col.GetIRSResult("retrieval"); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if err := col.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := col.PendingOps(); got != 0 {
		t.Fatalf("PendingOps = %d after drain", got)
	}
	if got := col.Stats().FlushErrors.Load(); got != 0 {
		t.Fatalf("flush errors: %d (%s)", got, col.LastFlushError())
	}
	// Every paragraph's final text is deterministic.
	scores, err := col.GetIRSResult("retrieval")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paras {
		if _, ok := scores[p]; !ok {
			t.Errorf("paragraph %v missing from final ranking", p)
		}
	}
}
