// Package core implements the paper's primary contribution: the
// loose OODBMS-IRS coupling with the OODBMS as control component
// (Section 3, architecture (3) of Figure 1), realized through the
// two coupling classes of Section 4.2:
//
//   - COLLECTION — encapsulates exactly one IRS collection;
//     indexObjects(specQuery, textMode), getIRSResult(query) with a
//     persistent result buffer, findIRSValue(query, obj), and the
//     update-propagation machinery of Section 4.6.
//   - IRSObject — the supertype of every document-element class;
//     getText(mode), getIRSValue(coll, query) and
//     deriveIRSValue(coll, query) as database methods, so each
//     object "knows its IRS value, in accordance with the object
//     paradigm".
//
// The coupling-specific part of the database schema (Figure 2) is
// created by New: class COLLECTION holding one object per
// collection, and class IRSBufferEntry persisting the IRS result
// buffer ("the results of IRS calls are buffered persistently",
// Section 4.2).
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/derive"
	"repro/internal/docmodel"
	"repro/internal/irs"
	"repro/internal/oodb"
	"repro/internal/vql"
)

// Bookkeeping class names (the coupling-specific schema part).
const (
	ClassCollection  = "COLLECTION"
	ClassBufferEntry = "IRSBufferEntry"
)

// Errors.
var (
	ErrNoSuchCollection = errors.New("core: no such collection")
	ErrDuplicate        = errors.New("core: collection already exists")
	ErrBadSpecQuery     = errors.New("core: specification query must return objects")
)

// Coupling wires one database to one IRS engine.
type Coupling struct {
	db     *oodb.DB
	store  *docmodel.Store
	engine *irs.Engine
	ev     *vql.Evaluator

	// epoch advances on every committed document mutation and on
	// collection lifecycle changes; serving layers key whole-query
	// caches on it (see Collection.Epoch for the per-collection
	// counter).
	epoch atomic.Uint64

	mu          sync.RWMutex
	byName      map[string]*Collection
	byOID       map[oodb.OID]*Collection
	defaultColl *Collection
}

// Epoch returns a counter that advances whenever the outcome of a
// VQL query could change: any committed non-framework database
// mutation, collection creation/drop, (re)indexing, propagation
// flushes and configuration exchanges all bump it, and every
// collection's own epoch (which folds in direct IRS index mutations
// and model exchanges) is summed in. Results cached under one epoch
// value may be replayed verbatim while the epoch stands still.
func (c *Coupling) Epoch() uint64 {
	sum := c.epoch.Load()
	c.mu.RLock()
	cols := make([]*Collection, 0, len(c.byName))
	for _, col := range c.byName {
		cols = append(cols, col)
	}
	c.mu.RUnlock()
	for _, col := range cols {
		sum += col.Epoch()
	}
	return sum
}

// New attaches a coupling to the document store and IRS engine. It
// defines the coupling-specific schema, registers the IRSObject
// methods, restores persisted collections and buffers, and hooks
// database updates for propagation.
func New(store *docmodel.Store, engine *irs.Engine) (*Coupling, error) {
	db := store.DB()
	c := &Coupling{
		db:     db,
		store:  store,
		engine: engine,
		ev:     vql.NewEvaluator(db, nil),
		byName: make(map[string]*Collection),
		byOID:  make(map[oodb.OID]*Collection),
	}
	for _, cls := range []struct {
		name  string
		attrs map[string]oodb.Kind
	}{
		{ClassCollection, map[string]oodb.Kind{
			"name": oodb.KindString, "specQuery": oodb.KindString,
			"textMode": oodb.KindInt, "model": oodb.KindString,
			"deriver": oodb.KindString, "policy": oodb.KindInt,
		}},
		{ClassBufferEntry, map[string]oodb.Kind{
			"collection": oodb.KindOID, "query": oodb.KindString,
			"oids": oodb.KindList, "values": oodb.KindList,
		}},
	} {
		if _, ok := db.Class(cls.name); ok {
			continue
		}
		if err := db.DefineClass(cls.name, "", cls.attrs); err != nil {
			return nil, err
		}
	}
	c.registerMethods()
	if err := c.restore(); err != nil {
		return nil, err
	}
	db.AddUpdateHook(c.onUpdate)
	return c, nil
}

// Close shuts the coupling's background machinery down in an orderly
// way: every collection's flusher is stopped, a final synchronous
// flush propagates whatever the flushers had not reached yet (so a
// subsequent engine save persists the fully propagated state), and
// in-flight background compactions are waited out. Flush failures
// are joined into the returned error and counted in the collections'
// stats.
func (c *Coupling) Close() error {
	c.mu.RLock()
	cols := make([]*Collection, 0, len(c.byName))
	for _, col := range c.byName {
		cols = append(cols, col)
	}
	c.mu.RUnlock()
	var errs []error
	for _, col := range cols {
		col.stopFlusher()
		if err := col.Flush(); err != nil {
			col.noteFlushError(err)
			errs = append(errs, fmt.Errorf("core: close flush of %q: %w", col.name, err))
		}
		col.irsColl.Index().WaitCompaction()
	}
	return errors.Join(errs...)
}

// DB returns the coupled database.
func (c *Coupling) DB() *oodb.DB { return c.db }

// Store returns the document framework.
func (c *Coupling) Store() *docmodel.Store { return c.store }

// Engine returns the coupled IRS engine.
func (c *Coupling) Engine() *irs.Engine { return c.engine }

// Evaluator returns a VQL evaluator with the coupling registered as
// IRS predicate provider and every collection name bound in the
// environment (so the paper's queries can say collPara directly).
func (c *Coupling) Evaluator() *vql.Evaluator {
	ev := vql.NewEvaluator(c.db, nil)
	ev.SetIRSProvider(c)
	c.mu.RLock()
	defer c.mu.RUnlock()
	for name, col := range c.byName {
		ev.SetEnv(name, oodb.Ref(col.oid))
	}
	return ev
}

// IRSResult implements vql.IRSPredicateProvider: the set-at-a-time
// entry point for the IRS-first evaluation strategy.
func (c *Coupling) IRSResult(coll oodb.Value, irsQuery string) (map[oodb.OID]float64, error) {
	col, err := c.collectionByValue(coll)
	if err != nil {
		return nil, err
	}
	return col.GetIRSResult(irsQuery)
}

// IRSResultTopK is the top-k companion of IRSResult: it returns only
// the k best (object, value) pairs in rank order, evaluated through
// the streaming top-k engine (and, like IRSResult, behind the
// PropagateOnQuery flush and the persistent result buffer). Serving
// layers use it to push a client's limit all the way into the IRS.
func (c *Coupling) IRSResultTopK(coll oodb.Value, irsQuery string, k int) ([]RankedValue, error) {
	col, err := c.collectionByValue(coll)
	if err != nil {
		return nil, err
	}
	return col.GetIRSResultTopK(irsQuery, k)
}

func (c *Coupling) collectionByValue(v oodb.Value) (*Collection, error) {
	if v.Kind != oodb.KindOID {
		return nil, fmt.Errorf("%w: %s is not a collection reference", ErrNoSuchCollection, v)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	col, ok := c.byOID[v.Ref]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchCollection, v.Ref)
	}
	return col, nil
}

// Collection returns a collection by name.
func (c *Coupling) Collection(name string) (*Collection, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	col, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchCollection, name)
	}
	return col, nil
}

// Collections returns all collection names, sorted.
func (c *Coupling) Collections() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.byName))
	for n := range c.byName {
		out = append(out, n)
	}
	sortStrings(out)
	return out
}

// SetDefaultCollection selects the collection used when getIRSValue
// is invoked without a collection argument (choice (1)/(3) of
// Section 4.5.1; passing it as an argument is choice (2)).
func (c *Coupling) SetDefaultCollection(col *Collection) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.defaultColl = col
}

// Options configures CreateCollection.
type Options struct {
	// TextMode selects the getText representation mode
	// (docmodel.ModeFullText, ModeAbstract, ModeOwnText).
	TextMode int
	// Model is the retrieval model of the IRS collection; nil
	// selects the INQUERY-style inference net.
	Model irs.Model
	// Deriver computes values for unrepresented objects; nil selects
	// derive.Max (the authors' tested scheme).
	Deriver derive.Scheme
	// Policy bounds update-propagation time (Section 4.6); the zero
	// value is PropagateOnQuery. PropagateAsync adds a background
	// flusher that group-commits logged updates (see the Async*
	// options below).
	Policy PropagationPolicy
	// AsyncMaxPending bounds the pending-update queue under
	// PropagateAsync: once the log holds this many distinct objects,
	// Collection.AsyncBacklogFull reports true and serving layers
	// shed ingest load (503) until the flusher catches up. 0 selects
	// the default (4096); negative means unbounded.
	AsyncMaxPending int
	// AsyncCoalesce is the background flusher's group-commit window:
	// after the first pending update it waits this long for more
	// before flushing them as one batch. 0 (the default) makes the
	// window adaptive — the flusher moves it inside
	// [AsyncCoalesceMin, AsyncCoalesceMax] with observed arrival rate
	// and queue depth, short when idle for latency, wide under burst
	// for larger group commits. Positive pins a fixed window;
	// negative flushes immediately.
	AsyncCoalesce time.Duration
	// AsyncCoalesceMin/Max bound the adaptive coalescing window. 0
	// selects the defaults (250µs / 8ms). Ignored while AsyncCoalesce
	// pins a fixed window.
	AsyncCoalesceMin time.Duration
	AsyncCoalesceMax time.Duration
	// AutoCompactRatio enables tombstone-ratio-triggered background
	// compaction of the collection's index: when more than this
	// fraction of documents are tombstones, the index rebuilds itself
	// off the write path (irs.Index.SetAutoCompact). 0 disables. Not
	// persisted; reconfigure after restarts.
	AutoCompactRatio float64
	// AutoCompactMin is the tombstone floor below which
	// AutoCompactRatio never triggers (0: default 64).
	AutoCompactMin int
	// Shards is the number of hash partitions of the IRS collection's
	// inverted index; queries score shards in parallel and single-
	// document updates contend only on their own shard. 0 selects the
	// engine's default. Rankings are independent of the shard count.
	Shards int
	// TextFunc overrides the textual representation used for
	// indexing. The paper makes getText the application
	// programmer's responsibility (Section 4.3.2); Section 5 builds
	// image retrieval (captions) and hypertext retrieval
	// (implies-link fragments) on exactly this hook. Nil selects the
	// SGML default: the text of the subtree's leaves under TextMode.
	// TextFunc is not persisted; re-register it after restarts with
	// SetTextFunc.
	TextFunc func(oid oodb.OID, mode int) string
}

// CreateCollection creates a COLLECTION object encapsulating a new
// IRS collection. specQuery is the VQL specification query that
// identifies the IRSObject instances to represent (Section 4.3.2:
// "the granularity is layed down by identifying the IRSObject
// instances ... through a 'specification query'").
func (c *Coupling) CreateCollection(name, specQuery string, opts Options) (*Collection, error) {
	if _, err := vql.Parse(specQuery); err != nil {
		return nil, fmt.Errorf("core: bad specification query: %w", err)
	}
	model := opts.Model
	if model == nil {
		model = irs.InferenceNet{}
	}
	deriver := opts.Deriver
	if deriver == nil {
		deriver = derive.Max{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.byName[name]; exists {
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	irsColl, err := c.engine.CreateCollectionShards(name, model, opts.Shards)
	if err != nil {
		return nil, err
	}
	oid, err := c.db.NewObject(ClassCollection, map[string]oodb.Value{
		"name":      oodb.S(name),
		"specQuery": oodb.S(specQuery),
		"textMode":  oodb.I(int64(opts.TextMode)),
		"model":     oodb.S(model.Name()),
		"deriver":   oodb.S(deriver.Name()),
		"policy":    oodb.I(int64(opts.Policy)),
	})
	if err != nil {
		c.engine.DropCollection(name)
		return nil, err
	}
	col := newCollection(c, oid, name, specQuery, opts.TextMode, irsColl, deriver, opts.Policy)
	col.textFn = opts.TextFunc
	col.setAsyncBounds(opts.AsyncCoalesceMin, opts.AsyncCoalesceMax)
	col.setAsyncTuning(opts.AsyncMaxPending, opts.AsyncCoalesce)
	if opts.AutoCompactRatio > 0 {
		irsColl.SetAutoCompact(opts.AutoCompactRatio, opts.AutoCompactMin)
	}
	if opts.Policy == PropagateAsync {
		col.startFlusher()
	}
	c.byName[name] = col
	c.byOID[oid] = col
	if c.defaultColl == nil {
		c.defaultColl = col
	}
	c.epoch.Add(1)
	return col, nil
}

// DropCollection removes the collection, its IRS collection and its
// persisted buffer entries.
func (c *Coupling) DropCollection(name string) error {
	c.mu.Lock()
	col, ok := c.byName[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoSuchCollection, name)
	}
	delete(c.byName, name)
	delete(c.byOID, col.oid)
	if c.defaultColl == col {
		c.defaultColl = nil
	}
	c.mu.Unlock()
	col.stopFlusher()
	// Fold the dropped collection's final epoch into the base counter
	// so the summed Epoch() stays monotonic when its term disappears.
	c.epoch.Add(col.Epoch() + 1)
	col.buffer.invalidate()
	if err := c.engine.DropCollection(name); err != nil && !errors.Is(err, irs.ErrNoSuchCollection) {
		return err
	}
	return c.db.DeleteObject(col.oid)
}

// restore rebuilds collections (and their buffers) from the
// database after a restart.
func (c *Coupling) restore() error {
	for _, oid := range c.db.Extent(ClassCollection, false) {
		attrs, ok := c.db.Attrs(oid)
		if !ok {
			continue
		}
		name := attrs["name"].Str
		modelName := attrs["model"].Str
		deriver, ok := derive.ByName(attrs["deriver"].Str)
		if !ok {
			deriver = derive.Max{}
		}
		irsColl, err := c.engine.Collection(name)
		if errors.Is(err, irs.ErrNoSuchCollection) {
			// IRS side not persisted (or lost): recreate empty; the
			// application re-runs IndexObjects or Reindex.
			model, merr := irs.ModelByName(modelName)
			if merr != nil {
				model = irs.InferenceNet{}
			}
			if irsColl, err = c.engine.CreateCollection(name, model); err != nil {
				return err
			}
		} else if err != nil {
			return err
		}
		col := newCollection(c, oid, name, attrs["specQuery"].Str,
			int(attrs["textMode"].Int), irsColl, deriver,
			PropagationPolicy(attrs["policy"].Int))
		// Resume the ingest sequence behind the WAL's recovered
		// watermark so post-restart operations log after the replayed
		// ones.
		if w := irsColl.WALWatermark(); w > 0 {
			col.log.seed(w)
			col.applied.Store(w)
		}
		if col.policy == PropagateAsync {
			col.startFlusher()
		}
		c.byName[name] = col
		c.byOID[oid] = col
		if c.defaultColl == nil {
			c.defaultColl = col
		}
	}
	// Reload persisted buffer entries.
	for _, oid := range c.db.Extent(ClassBufferEntry, false) {
		attrs, ok := c.db.Attrs(oid)
		if !ok {
			continue
		}
		col, ok := c.byOID[attrs["collection"].Ref]
		if !ok {
			// Orphaned entry; drop it.
			c.db.DeleteObject(oid)
			continue
		}
		scores := make(map[oodb.OID]float64)
		oids := attrs["oids"].List
		values := attrs["values"].List
		for i := range oids {
			if i < len(values) {
				scores[oids[i].Ref] = values[i].Float
			}
		}
		col.buffer.restore(attrs["query"].Str, scores, oid)
	}
	return nil
}

// frameworkClasses are classes whose mutations must not feed update
// propagation (they ARE the propagation bookkeeping).
var frameworkClasses = map[string]bool{
	ClassCollection:  true,
	ClassBufferEntry: true,
}

// onUpdate is the database update hook: it routes committed
// mutations of document objects into every collection's update log
// (Section 4.6: "One out of three update methods ... has to be
// invoked whenever a relevant update occurs").
func (c *Coupling) onUpdate(u oodb.Update) {
	if frameworkClasses[u.Class] {
		return
	}
	// Every committed document mutation invalidates whole-query
	// caches, even mutations irrelevant to text representations
	// (structural VQL predicates may depend on them).
	c.epoch.Add(1)
	if u.Kind == oodb.UpdateModify &&
		u.Attr != docmodel.AttrText && u.Attr != docmodel.AttrChildren {
		return // attribute irrelevant for text representations
	}
	c.mu.RLock()
	cols := make([]*Collection, 0, len(c.byName))
	for _, col := range c.byName {
		cols = append(cols, col)
	}
	c.mu.RUnlock()
	for _, col := range cols {
		col.onUpdate(u)
	}
}

// registerMethods installs getIRSValue / deriveIRSValue on
// IRSObject. getText, length etc. are registered by docmodel.
func (c *Coupling) registerMethods() {
	db := c.db
	resolve := func(args []oodb.Value) (*Collection, string, error) {
		switch len(args) {
		case 1: // getIRSValue(query): collection chosen by coupling
			if args[0].Kind != oodb.KindString {
				return nil, "", errors.New("core: getIRSValue expects a query string")
			}
			c.mu.RLock()
			col := c.defaultColl
			c.mu.RUnlock()
			if col == nil {
				return nil, "", fmt.Errorf("%w: no default collection", ErrNoSuchCollection)
			}
			return col, args[0].Str, nil
		case 2: // getIRSValue(coll, query)
			col, err := c.collectionByValue(args[0])
			if err != nil {
				return nil, "", err
			}
			if args[1].Kind != oodb.KindString {
				return nil, "", errors.New("core: getIRSValue expects a query string")
			}
			return col, args[1].Str, nil
		}
		return nil, "", errors.New("core: getIRSValue expects (collection, query)")
	}
	db.RegisterMethod(docmodel.ClassIRSObject, "getIRSValue",
		func(_ *oodb.DB, self oodb.OID, args []oodb.Value) (oodb.Value, error) {
			col, q, err := resolve(args)
			if err != nil {
				return oodb.Null(), err
			}
			v, err := col.FindIRSValue(q, self)
			if err != nil {
				return oodb.Null(), err
			}
			return oodb.F(v), nil
		})
	db.RegisterMethod(docmodel.ClassIRSObject, "deriveIRSValue",
		func(_ *oodb.DB, self oodb.OID, args []oodb.Value) (oodb.Value, error) {
			col, q, err := resolve(args)
			if err != nil {
				return oodb.Null(), err
			}
			node, err := irs.ParseQuery(q)
			if err != nil {
				return oodb.Null(), err
			}
			v, err := col.deriveValue(node, self)
			if err != nil {
				return oodb.Null(), err
			}
			return oodb.F(v), nil
		})
	// Content predicates are orders of magnitude more expensive than
	// structural ones; annotate for the optimizer ([AbF95]).
	db.SetMethodCost(docmodel.ClassIRSObject, "getIRSValue", 1000)
	db.SetMethodCost(docmodel.ClassIRSObject, "deriveIRSValue", 1000)
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
