package core

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/derive"
	"repro/internal/oodb"
)

func TestTextFuncOverridesRepresentation(t *testing.T) {
	fx := newFixture(t, "")
	fx.addDoc("1994", "webdoc", "original paragraph text", "second paragraph")
	col, err := fx.coupling.CreateCollection("collCustom", "ACCESS p FROM p IN PARA;",
		Options{TextFunc: func(oid oodb.OID, mode int) string {
			return "custom representation zebra"
		}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.IndexObjects(); err != nil {
		t.Fatal(err)
	}
	// The custom text is indexed, the original is not.
	res, err := col.GetIRSResult("zebra")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Errorf("zebra hits = %v", res)
	}
	res, _ = col.GetIRSResult("original")
	if len(res) != 0 {
		t.Errorf("original text leaked into custom collection: %v", res)
	}
	// Propagation uses the TextFunc too.
	leaf := fx.store.Children(fx.paras(fx.docs[0])[0])[0]
	if err := fx.store.SetText(leaf, "edited"); err != nil {
		t.Fatal(err)
	}
	if err := col.Flush(); err != nil {
		t.Fatal(err)
	}
	res, _ = col.GetIRSResult("zebra")
	if len(res) != 2 {
		t.Errorf("custom text lost after flush: %v", res)
	}
	// SetTextFunc(nil) restores the default (the first paragraph's
	// text is "edited" by now; the second is untouched).
	col.SetTextFunc(nil)
	if _, _, _, err := col.Reindex(); err != nil {
		t.Fatal(err)
	}
	res, _ = col.GetIRSResult("paragraph")
	if len(res) != 1 { // only the untouched second paragraph keeps it
		t.Errorf("default text not restored: %v", res)
	}
}

func TestDefaultCollectionSelection(t *testing.T) {
	fx := newFixture(t, "")
	fx.addDoc("1994", "webdoc", "www paragraph here", "nii paragraph here")
	colA := fx.paraColl(Options{})
	colB, err := fx.coupling.CreateCollection("collB", "ACCESS d FROM d IN MMFDOC;", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := colB.IndexObjects(); err != nil {
		t.Fatal(err)
	}
	// The first-created collection is the default.
	para := fx.paras(fx.docs[0])[0]
	v1, err := fx.coupling.DB().Call(para, "getIRSValue", oodb.S("www"))
	if err != nil {
		t.Fatal(err)
	}
	// Switch the default to colB: the paragraph is NOT represented
	// there, so the value comes from derivation (leaf default).
	fx.coupling.SetDefaultCollection(colB)
	v2, err := fx.coupling.DB().Call(para, "getIRSValue", oodb.S("www"))
	if err != nil {
		t.Fatal(err)
	}
	if v1.Float <= 0.4 {
		t.Errorf("default collection A value = %v", v1)
	}
	if v2.Float != 0.4 {
		t.Errorf("default collection B derived value = %v, want 0.4", v2.Float)
	}
	_ = colA
}

func TestDeriveIRSValueMethodThroughVQL(t *testing.T) {
	fx := newFixture(t, "")
	fx.addDoc("1994", "webdoc", "the www www www paragraph", "padding text")
	fx.paraColl(Options{Deriver: derive.Max{}})
	ev := fx.coupling.Evaluator()
	// deriveIRSValue invoked explicitly on the (unrepresented)
	// document objects.
	rs, err := ev.Run(`ACCESS d, d -> deriveIRSValue(collPara, 'www') FROM d IN MMFDOC;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	if got := rs.Rows[0][1].Float; got <= 0.4 {
		t.Errorf("derived value via VQL = %v", got)
	}
}

func TestOperatorsWithUnknownTerms(t *testing.T) {
	fx := newFixture(t, "")
	fx.addDoc("1994", "webdoc", "www paragraph", "nii paragraph")
	col := fx.paraColl(Options{})
	res, err := col.IRSOperatorAND("www", "zzznotindexed")
	if err != nil {
		t.Fatal(err)
	}
	// Candidates = union; unknown operand contributes default belief.
	if len(res) != 1 {
		t.Fatalf("res = %v", res)
	}
	for _, v := range res {
		if v >= 0.4 {
			t.Errorf("AND with unknown term = %v, want < 0.4 (x * 0.4)", v)
		}
	}
	notRes, err := col.IRSOperatorNOT("www")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range notRes {
		if v < 0 || v > 1 {
			t.Errorf("NOT out of range: %v", v)
		}
	}
	if _, err := col.IRSOperatorOR(); !errors.Is(err, ErrOperatorArity) {
		t.Errorf("empty OR: %v", err)
	}
}

func TestConcurrentCollectionAccess(t *testing.T) {
	fx := newFixture(t, "")
	for i := 0; i < 4; i++ {
		fx.addDoc("1994", "doc", "www content paragraph", "nii content paragraph")
	}
	col := fx.paraColl(Options{Policy: PropagateOnQuery})
	leaves := func() []oodb.OID {
		var out []oodb.OID
		for _, d := range fx.docs {
			for _, p := range fx.paras(d) {
				out = append(out, fx.store.Children(p)...)
			}
		}
		return out
	}()
	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	for g := 0; g < 4; g++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := col.GetIRSResult("www"); err != nil {
					errCh <- err
					return
				}
			}
		}()
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				leaf := leaves[(g*10+i)%len(leaves)]
				if err := fx.store.SetText(leaf, "updated www text"); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := col.IRSOperatorAND("www", "nii"); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

func TestCollectionAccessors(t *testing.T) {
	fx := newFixture(t, "")
	fx.addDoc("1994", "webdoc", "one paragraph")
	col := fx.paraColl(Options{Policy: PropagateManually})
	if col.Name() != "collPara" {
		t.Errorf("Name = %q", col.Name())
	}
	if col.OID() == oodb.NilOID {
		t.Error("OID is nil")
	}
	if col.TextMode() != 0 {
		t.Errorf("TextMode = %d", col.TextMode())
	}
	if col.Policy() != PropagateManually {
		t.Errorf("Policy = %v", col.Policy())
	}
	col.SetPolicy(PropagateImmediately)
	if col.Policy() != PropagateImmediately {
		t.Error("SetPolicy lost")
	}
	if col.Deriver().Name() != "max" {
		t.Errorf("Deriver = %q", col.Deriver().Name())
	}
	if !strings.Contains(col.SpecQuery(), "PARA") {
		t.Errorf("SpecQuery = %q", col.SpecQuery())
	}
	names := fx.coupling.Collections()
	if len(names) != 1 || names[0] != "collPara" {
		t.Errorf("Collections = %v", names)
	}
}

func TestPolicyAndKindStrings(t *testing.T) {
	if PropagateImmediately.String() != "immediate" ||
		PropagateOnQuery.String() != "on-query" ||
		PropagateManually.String() != "manual" {
		t.Error("policy strings wrong")
	}
	if PropagationPolicy(99).String() != "?" {
		t.Error("unknown policy string")
	}
}

func TestWeightedByTypeDerivation(t *testing.T) {
	fx := newFixture(t, "")
	// The DOCTITLE carries the topic; the body paragraphs do not. A
	// DOCTITLE-granularity collection supplies the only non-default
	// component value, so a DOCTITLE-heavy type weighting must raise
	// the derived document value above the flat average ([Wil94]'s
	// type-weighting idea through the coupling).
	doc := fx.addDoc("1994", "www www www overview", "body text one", "body text two")
	colTitle, err := fx.coupling.CreateCollection("collDocTitle",
		"ACCESS x FROM x IN DOCTITLE;", Options{
			Deriver: derive.WeightedByType{Weights: map[string]float64{"DOCTITLE": 5}},
		})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := colTitle.IndexObjects(); err != nil {
		t.Fatal(err)
	}
	weighted, err := colTitle.FindIRSValue("www", doc)
	if err != nil {
		t.Fatal(err)
	}
	colTitle.SetDeriver(derive.Avg{})
	flat, err := colTitle.FindIRSValue("www", doc)
	if err != nil {
		t.Fatal(err)
	}
	if weighted <= flat {
		t.Errorf("DOCTITLE-weighted %v <= flat avg %v", weighted, flat)
	}
}

func TestDeriveCycleGuard(t *testing.T) {
	fx := newFixture(t, "")
	fx.addDoc("1994", "webdoc", "some paragraph")
	col := fx.paraColl(Options{})
	// Build a pathological component cycle directly through the
	// children attribute (nothing the SGML loader would produce).
	a, _ := fx.coupling.DB().NewObject("MMFDOC", nil)
	b, _ := fx.coupling.DB().NewObject("MMFDOC", nil)
	fx.coupling.DB().SetAttr(a, "children", oodb.RefList([]oodb.OID{b}))
	fx.coupling.DB().SetAttr(b, "children", oodb.RefList([]oodb.OID{a}))
	if _, err := col.FindIRSValue("www", a); !errors.Is(err, ErrDeriveDepth) {
		t.Errorf("cycle derivation: %v, want ErrDeriveDepth", err)
	}
}
