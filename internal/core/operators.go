package core

import (
	"errors"

	"repro/internal/oodb"
)

// OODBMS-side IRS operators (Section 4.5.4): "IRS-operators can be
// duplicated as methods of the collection objects. INQUERY's
// AND-operator, to give an example, corresponds to a method
// IRSOperatorAND in our implementation. Its parameters are results
// of IRS queries. Hence, it is possible to calculate conjunction
// both in the IRS or the OODBMS. Consider the case that the
// corresponding collection object already knows intermediate results
// because they have been buffered ... Then the second alternative is
// particularly appealing."
//
// Each operator fetches its operand results through GetIRSResult —
// hitting the persistent buffer when warm — and recombines them with
// the operator's exact semantics (the "precise knowledge of the
// IRS-operators' semantics" prerequisite). For the inference-net
// model the recombination is provably equivalent to asking the IRS
// for the composite query, which TestOperatorPlacementEquivalence
// asserts.

// ErrOperatorArity is returned for operand/weight count mismatches.
var ErrOperatorArity = errors.New("core: operator arity mismatch")

// IRSOperatorAND combines operand query results with INQUERY's #and
// semantics (product of beliefs, default belief for absent
// evidence).
func (col *Collection) IRSOperatorAND(queries ...string) (map[oodb.OID]float64, error) {
	return col.combine(queries, func(vals []float64) float64 {
		p := 1.0
		for _, v := range vals {
			p *= v
		}
		return p
	})
}

// IRSOperatorOR combines with #or semantics (complement product).
func (col *Collection) IRSOperatorOR(queries ...string) (map[oodb.OID]float64, error) {
	return col.combine(queries, func(vals []float64) float64 {
		q := 1.0
		for _, v := range vals {
			q *= 1 - v
		}
		return 1 - q
	})
}

// IRSOperatorSUM combines with #sum semantics (mean).
func (col *Collection) IRSOperatorSUM(queries ...string) (map[oodb.OID]float64, error) {
	return col.combine(queries, func(vals []float64) float64 {
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return s / float64(len(vals))
	})
}

// IRSOperatorMAX combines with #max semantics.
func (col *Collection) IRSOperatorMAX(queries ...string) (map[oodb.OID]float64, error) {
	return col.combine(queries, func(vals []float64) float64 {
		best := vals[0]
		for _, v := range vals[1:] {
			if v > best {
				best = v
			}
		}
		return best
	})
}

// IRSOperatorWSUM combines with #wsum semantics (weighted mean).
func (col *Collection) IRSOperatorWSUM(weights []float64, queries []string) (map[oodb.OID]float64, error) {
	if len(weights) != len(queries) || len(queries) == 0 {
		return nil, ErrOperatorArity
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	if total == 0 {
		return nil, ErrOperatorArity
	}
	return col.combine(queries, func(vals []float64) float64 {
		s := 0.0
		for i, v := range vals {
			s += weights[i] * v
		}
		return s / total
	})
}

// IRSOperatorNOT complements a single operand result over the
// operand's candidate set.
func (col *Collection) IRSOperatorNOT(query string) (map[oodb.OID]float64, error) {
	res, err := col.GetIRSResult(query)
	if err != nil {
		return nil, err
	}
	out := make(map[oodb.OID]float64, len(res))
	for oid, v := range res {
		out[oid] = 1 - v
	}
	return out, nil
}

// combine evaluates all operand queries (buffer-served when warm)
// and merges them over the union of their candidate objects.
func (col *Collection) combine(queries []string, merge func([]float64) float64) (map[oodb.OID]float64, error) {
	if len(queries) == 0 {
		return nil, ErrOperatorArity
	}
	results := make([]map[oodb.OID]float64, len(queries))
	candidates := make(map[oodb.OID]bool)
	for i, q := range queries {
		res, err := col.GetIRSResult(q)
		if err != nil {
			return nil, err
		}
		results[i] = res
		for oid := range res {
			candidates[oid] = true
		}
	}
	dflt := col.defaultValue()
	out := make(map[oodb.OID]float64, len(candidates))
	vals := make([]float64, len(queries))
	for oid := range candidates {
		for i, res := range results {
			if v, ok := res[oid]; ok {
				vals[i] = v
			} else {
				vals[i] = dflt
			}
		}
		out[oid] = merge(vals)
	}
	return out, nil
}
