package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/derive"
	"repro/internal/docmodel"
	"repro/internal/irs"
	"repro/internal/oodb"
	"repro/internal/sgml"
)

const testDTD = `
<!ELEMENT MMFDOC   - -  (LOGBOOK, DOCTITLE, ABSTRACT, PARA+)>
<!ELEMENT LOGBOOK  - O  (#PCDATA)>
<!ELEMENT DOCTITLE - O  (#PCDATA)>
<!ELEMENT ABSTRACT - O  (#PCDATA)>
<!ELEMENT PARA     - O  (#PCDATA)>
<!ATTLIST MMFDOC YEAR NUMBER #IMPLIED>
`

// fixture assembles the full stack on a memory (or disk) database:
// SGML -> docmodel -> coupling -> IRS engine.
type fixture struct {
	t        *testing.T
	store    *docmodel.Store
	engine   *irs.Engine
	coupling *Coupling
	dtd      *sgml.DTD
	docs     []oodb.OID
}

func newFixture(t *testing.T, dir string) *fixture {
	t.Helper()
	db, err := oodb.Open(dir, oodb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	store, err := docmodel.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	engine := irs.NewEngine()
	coupling, err := New(store, engine)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sgml.ParseDTD(testDTD)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.LoadDTD(d); err != nil {
		t.Fatal(err)
	}
	return &fixture{t: t, store: store, engine: engine, coupling: coupling, dtd: d}
}

// addDoc inserts an MMF document whose paragraphs carry the given
// texts.
func (fx *fixture) addDoc(year, title string, paras ...string) oodb.OID {
	fx.t.Helper()
	var sb strings.Builder
	sb.WriteString(`<MMFDOC YEAR="` + year + `"><LOGBOOK>log<DOCTITLE>` + title + `<ABSTRACT>abs`)
	for _, p := range paras {
		sb.WriteString("<PARA>" + p)
	}
	sb.WriteString("</MMFDOC>")
	tree, err := sgml.ParseDocument(fx.dtd, sb.String(), sgml.ParseOptions{Strict: true})
	if err != nil {
		fx.t.Fatal(err)
	}
	oid, err := fx.store.InsertDocument(fx.dtd, tree)
	if err != nil {
		fx.t.Fatal(err)
	}
	fx.docs = append(fx.docs, oid)
	return oid
}

func (fx *fixture) paraColl(opts Options) *Collection {
	fx.t.Helper()
	col, err := fx.coupling.CreateCollection("collPara", `ACCESS p FROM p IN PARA;`, opts)
	if err != nil {
		fx.t.Fatal(err)
	}
	if _, err := col.IndexObjects(); err != nil {
		fx.t.Fatal(err)
	}
	return col
}

func (fx *fixture) paras(doc oodb.OID) []oodb.OID {
	var out []oodb.OID
	for _, k := range fx.store.Children(doc) {
		if fx.store.TypeOf(k) == "PARA" {
			out = append(out, k)
		}
	}
	return out
}

func TestCreateCollectionAndIndexObjects(t *testing.T) {
	fx := newFixture(t, "")
	fx.addDoc("1994", "webdoc", "the world wide web", "the national infrastructure")
	col := fx.paraColl(Options{})
	if got := col.DocCount(); got != 2 {
		t.Fatalf("DocCount = %d, want 2", got)
	}
	paras := fx.paras(fx.docs[0])
	for _, p := range paras {
		if !col.Represented(p) {
			t.Errorf("paragraph %v not represented", p)
		}
	}
	if col.Represented(fx.docs[0]) {
		t.Error("document represented in a paragraph collection")
	}
	// Duplicate name rejected.
	if _, err := fx.coupling.CreateCollection("collPara", "ACCESS p FROM p IN PARA;", Options{}); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate: %v", err)
	}
	// Bad spec queries rejected.
	if _, err := fx.coupling.CreateCollection("x", "NOT A QUERY", Options{}); err == nil {
		t.Error("bad spec query accepted")
	}
	bad, err := fx.coupling.CreateCollection("badspec", "ACCESS p, p -> length() FROM p IN PARA;", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.IndexObjects(); !errors.Is(err, ErrBadSpecQuery) {
		t.Errorf("multi-column spec query: %v", err)
	}
}

func TestGetIRSResultAndBuffering(t *testing.T) {
	fx := newFixture(t, "")
	fx.addDoc("1994", "webdoc", "the world wide web is the www", "something else entirely")
	col := fx.paraColl(Options{})
	res, err := col.GetIRSResult("www")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("result = %v", res)
	}
	s0 := col.Stats().Snapshot()
	if s0.IRSSearches != 1 || s0.BufferMisses != 1 {
		t.Errorf("stats after first query: %+v", s0)
	}
	// Same query again (even written differently) hits the buffer.
	if _, err := col.GetIRSResult("  www "); err != nil {
		t.Fatal(err)
	}
	s1 := col.Stats().Snapshot()
	if s1.IRSSearches != 1 || s1.BufferHits != 1 {
		t.Errorf("stats after repeat: %+v", s1)
	}
	if col.BufferedQueries() != 1 {
		t.Errorf("buffered queries = %d", col.BufferedQueries())
	}
	// Malformed queries error.
	if _, err := col.GetIRSResult("#broken("); err == nil {
		t.Error("bad IRS query accepted")
	}
}

func TestGetIRSResultTopKBuffering(t *testing.T) {
	fx := newFixture(t, "")
	fx.addDoc("1994", "webdoc",
		"the world wide web is the www", "www and more www text",
		"the national information infrastructure", "something else entirely")
	col := fx.paraColl(Options{})

	// k <= 0 is the exhaustive result: it must go through (and
	// populate) the persistent buffer exactly like GetIRSResult.
	full, err := col.GetIRSResultTopK("www", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 2 || col.BufferedQueries() != 1 {
		t.Fatalf("exhaustive top-k: %v (buffered %d)", full, col.BufferedQueries())
	}
	if full[0].Value < full[1].Value {
		t.Fatalf("not rank-ordered: %v", full)
	}
	if _, err := col.GetIRSResultTopK("www", 0); err != nil {
		t.Fatal(err)
	}
	if hits := col.Stats().BufferHits.Load(); hits != 1 {
		t.Errorf("repeat exhaustive top-k did not hit the buffer: hits=%d", hits)
	}

	// A k-prefix served from the buffered full result matches it.
	top1, err := col.GetIRSResultTopK("www", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top1) != 1 || top1[0] != full[0] {
		t.Fatalf("top-1 = %v, want %v", top1, full[0])
	}
	if hits := col.Stats().BufferHits.Load(); hits != 2 {
		t.Errorf("top-1 did not serve from the buffered full result: hits=%d", hits)
	}

	// A fresh top-k evaluation (cold buffer) is NOT buffered — its
	// prefix could not answer later findIRSValue calls.
	col.InvalidateBuffer()
	top2, err := col.GetIRSResultTopK("www", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top2) != 1 || top2[0] != full[0] {
		t.Fatalf("cold top-1 = %v, want %v", top2, full[0])
	}
	if got := col.BufferedQueries(); got != 0 {
		t.Errorf("k-prefix was buffered: %d entries", got)
	}

	if _, err := col.GetIRSResultTopK("#broken(", 1); err == nil {
		t.Error("bad IRS query accepted")
	}
}

// TestRankScoresBoundedSelection: the O(n log k) best-k selection
// must agree exactly with the full sort, ties (broken by OID string)
// included, for every k.
func TestRankScoresBoundedSelection(t *testing.T) {
	scores := make(map[oodb.OID]float64)
	// 60 entries with heavy value ties: values cycle over 6 levels.
	for i := 1; i <= 60; i++ {
		scores[oodb.OID(i)] = float64(i%6) / 10
	}
	full := rankScores(scores, 0)
	if len(full) != 60 {
		t.Fatalf("full ranking has %d entries", len(full))
	}
	for _, k := range []int{1, 2, 5, 6, 7, 13, 59, 60, 100} {
		got := rankScores(scores, k)
		want := full
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d entries, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("k=%d rank %d: got %v, want %v", k, i, got[i], want[i])
			}
		}
	}
}

func TestFindIRSValueFlowchart(t *testing.T) {
	fx := newFixture(t, "")
	doc := fx.addDoc("1994", "webdoc", "the world wide web is the www", "unrelated text here")
	col := fx.paraColl(Options{})
	paras := fx.paras(doc)

	// Path 1: represented and scored -> direct IRS value.
	v, err := col.FindIRSValue("www", paras[0])
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0.4 {
		t.Errorf("scored value = %v, want > default", v)
	}
	// Path 2: represented but unscored -> default belief.
	v, err = col.FindIRSValue("www", paras[1])
	if err != nil {
		t.Fatal(err)
	}
	if v != 0.4 {
		t.Errorf("unscored represented value = %v, want 0.4", v)
	}
	// Path 3: unrepresented (the document) -> derived.
	before := col.Stats().Snapshot().Derivations
	v, err = col.FindIRSValue("www", doc)
	if err != nil {
		t.Fatal(err)
	}
	if col.Stats().Snapshot().Derivations <= before {
		t.Error("derivation path not taken")
	}
	// Default Max scheme: document value = max of component values.
	vp, _ := col.FindIRSValue("www", paras[0])
	if math.Abs(v-vp) > 1e-9 {
		t.Errorf("derived doc value %v != max para value %v", v, vp)
	}
}

func TestGetIRSValueMethodThroughVQL(t *testing.T) {
	fx := newFixture(t, "")
	fx.addDoc("1994", "webdoc", "the world wide web is the www", "irrelevant padding text")
	fx.addDoc("1995", "other", "completely different topic", "more padding")
	col := fx.paraColl(Options{})
	_ = col
	ev := fx.coupling.Evaluator()
	rs, err := ev.Run(`ACCESS p, p -> length() FROM p IN PARA WHERE p -> getIRSValue (collPara, 'www') > 0.45;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	// One-argument form uses the default collection.
	rs2, err := ev.Run(`ACCESS p FROM p IN PARA WHERE p -> getIRSValue('www') > 0.45;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs2.Rows) != 1 {
		t.Errorf("default-collection rows = %v", rs2.Rows)
	}
	// Mixed query combining structure and content (the paper's
	// flagship capability).
	rs3, err := ev.Run(`ACCESS d FROM d IN MMFDOC, p IN PARA WHERE p -> getContaining('MMFDOC') == d AND d -> getAttributeValue('YEAR') = '1994' AND p -> getIRSValue(collPara, 'www') > 0.45;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs3.Rows) != 1 || rs3.Rows[0][0].Ref != fx.docs[0] {
		t.Errorf("mixed rows = %v", rs3.Rows)
	}
}

func TestUpdatePropagationOnQuery(t *testing.T) {
	fx := newFixture(t, "")
	doc := fx.addDoc("1994", "webdoc", "old content about telnet", "second paragraph")
	col := fx.paraColl(Options{Policy: PropagateOnQuery})
	paras := fx.paras(doc)
	// Query once to warm the buffer.
	if _, err := col.GetIRSResult("telnet"); err != nil {
		t.Fatal(err)
	}
	// Edit the paragraph's text leaf.
	leaf := fx.store.Children(paras[0])[0]
	if err := fx.store.SetText(leaf, "new content about gopher"); err != nil {
		t.Fatal(err)
	}
	if col.PendingOps() == 0 {
		t.Fatal("update not logged")
	}
	// The next query forces propagation and sees fresh text.
	res, err := col.GetIRSResult("gopher")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("gopher result = %v (propagation failed)", res)
	}
	res, _ = col.GetIRSResult("telnet")
	if len(res) != 0 {
		t.Errorf("stale telnet result = %v", res)
	}
	s := col.Stats().Snapshot()
	if s.ForcedFlushes == 0 || s.OpsApplied == 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestUpdatePropagationImmediate(t *testing.T) {
	fx := newFixture(t, "")
	doc := fx.addDoc("1994", "webdoc", "old content about telnet", "second paragraph")
	col := fx.paraColl(Options{Policy: PropagateImmediately})
	paras := fx.paras(doc)
	leaf := fx.store.Children(paras[0])[0]
	if err := fx.store.SetText(leaf, "immediate gopher text"); err != nil {
		t.Fatal(err)
	}
	// No query issued: the IRS must already be fresh.
	if col.PendingOps() != 0 {
		t.Errorf("pending ops = %d under immediate policy", col.PendingOps())
	}
	hits, _ := col.IRS().Search("gopher")
	if len(hits) != 1 {
		t.Errorf("direct IRS search = %v", hits)
	}
}

func TestUpdateCancellation(t *testing.T) {
	fx := newFixture(t, "")
	fx.addDoc("1994", "webdoc", "first paragraph text", "second paragraph text")
	col := fx.paraColl(Options{Policy: PropagateManually})
	// Create a document and delete it again before any flush — the
	// paper's canonical cancellation example.
	doc2 := fx.addDoc("1995", "ephemeral", "fleeting paragraph")
	if err := fx.store.DeleteDocument(doc2); err != nil {
		t.Fatal(err)
	}
	s := col.Stats().Snapshot()
	if s.OpsCancelled == 0 {
		t.Errorf("no cancellations recorded: %+v", s)
	}
	applied0 := s.OpsApplied
	if err := col.Flush(); err != nil {
		t.Fatal(err)
	}
	s = col.Stats().Snapshot()
	// The flush may re-run the spec query for the (cancelled-out)
	// creates, but must not have applied ops for the deleted doc's
	// paragraphs beyond re-adds of existing ones (none needed).
	if col.DocCount() != 2 {
		t.Errorf("DocCount after cancelled create+delete = %d, want 2", col.DocCount())
	}
	_ = applied0
	// Modify-modify collapse: two edits of the same leaf.
	paras := fx.paras(fx.docs[0])
	leaf := fx.store.Children(paras[0])[0]
	fx.store.SetText(leaf, "edit one")
	fx.store.SetText(leaf, "edit two")
	if col.PendingOps() != 1 {
		t.Errorf("pending ops = %d, want 1 (collapsed)", col.PendingOps())
	}
	if err := col.Flush(); err != nil {
		t.Fatal(err)
	}
	res, _ := col.GetIRSResult("edit")
	if len(res) != 1 {
		t.Errorf("post-flush search = %v", res)
	}
}

func TestNewDocumentsJoinCollectionOnFlush(t *testing.T) {
	fx := newFixture(t, "")
	fx.addDoc("1994", "webdoc", "seed paragraph")
	col := fx.paraColl(Options{Policy: PropagateOnQuery})
	if col.DocCount() != 1 {
		t.Fatal("seed not indexed")
	}
	fx.addDoc("1995", "newdoc", "fresh paragraph about xanadu")
	// Membership resolved at flush (query time).
	res, err := col.GetIRSResult("xanadu")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Errorf("new paragraph not admitted: %v", res)
	}
	if col.DocCount() != 2 {
		t.Errorf("DocCount = %d, want 2", col.DocCount())
	}
}

func TestBufferInvalidationOnFlush(t *testing.T) {
	fx := newFixture(t, "")
	doc := fx.addDoc("1994", "webdoc", "alpha text", "beta text")
	col := fx.paraColl(Options{Policy: PropagateOnQuery})
	col.GetIRSResult("alpha")
	col.GetIRSResult("beta")
	if col.BufferedQueries() != 2 {
		t.Fatalf("buffered = %d", col.BufferedQueries())
	}
	leaf := fx.store.Children(fx.paras(doc)[0])[0]
	fx.store.SetText(leaf, "gamma text")
	// Query forces flush which invalidates ALL buffered results.
	col.GetIRSResult("gamma")
	if got := col.BufferedQueries(); got != 1 {
		t.Errorf("buffered after invalidation = %d, want 1 (gamma only)", got)
	}
}

func TestReindexResynchronizes(t *testing.T) {
	fx := newFixture(t, "")
	doc := fx.addDoc("1994", "webdoc", "one", "two", "three")
	col, err := fx.coupling.CreateCollection("coll1994",
		`ACCESS p FROM p IN PARA WHERE p -> getContaining('MMFDOC') -> getAttributeValue('YEAR') = '1994';`,
		Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.IndexObjects(); err != nil {
		t.Fatal(err)
	}
	if col.DocCount() != 3 {
		t.Fatalf("DocCount = %d", col.DocCount())
	}
	// Change the year: paragraphs no longer qualify.
	fx.store.DB().SetAttr(doc, "@YEAR", oodb.S("1996"))
	added, updated, removed, err := col.Reindex()
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 || removed != 3 || updated != 0 {
		t.Errorf("reindex = %d added, %d updated, %d removed", added, updated, removed)
	}
	if col.DocCount() != 0 {
		t.Errorf("DocCount after reindex = %d", col.DocCount())
	}
}

func TestDeriveWithQueryAwareScheme(t *testing.T) {
	fx := newFixture(t, "")
	// Figure 4 in miniature: M3 has one www para and one nii para;
	// M4 has two www paras. Filler documents give the corpus enough
	// documents for idf discrimination.
	for i := 0; i < 6; i++ {
		word := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}[i]
		fx.addDoc("1990", "filler",
			word+" filler words everywhere today",
			word+" unrelated matter entirely here")
	}
	m3 := fx.addDoc("1994", "m3", "www www www www coverage", "nii nii nii nii coverage")
	m4 := fx.addDoc("1994", "m4", "www www www www coverage", "www www www www extras")
	// A lower default belief keeps the evidence floor from drowning
	// the per-term signal in this four-paragraph corpus.
	col := fx.paraColl(Options{
		Deriver: derive.QueryAware{},
		Model:   irs.InferenceNet{DefaultBelief: irs.Belief(0.1)},
	})
	v3, err := col.FindIRSValue("#and(www nii)", m3)
	if err != nil {
		t.Fatal(err)
	}
	v4, err := col.FindIRSValue("#and(www nii)", m4)
	if err != nil {
		t.Fatal(err)
	}
	if v3 <= v4 {
		t.Errorf("query-aware: M3 %v <= M4 %v", v3, v4)
	}
	// Under Max they tie (the deficiency the paper identifies).
	col.SetDeriver(derive.Max{})
	m3max, _ := col.FindIRSValue("#and(www nii)", m3)
	m4max, _ := col.FindIRSValue("#and(www nii)", m4)
	if math.Abs(m3max-m4max) > 0.02 {
		t.Errorf("max: M3 %v vs M4 %v should be ~equal", m3max, m4max)
	}
}

func TestOperatorPlacementEquivalence(t *testing.T) {
	fx := newFixture(t, "")
	fx.addDoc("1994", "d1", "the www is growing", "the nii program", "both www and nii here")
	col := fx.paraColl(Options{})
	// IRS-side composite query.
	irsSide, err := col.GetIRSResult("#and(www nii)")
	if err != nil {
		t.Fatal(err)
	}
	// OODBMS-side combination of operand results.
	dbSide, err := col.IRSOperatorAND("www", "nii")
	if err != nil {
		t.Fatal(err)
	}
	if len(irsSide) != len(dbSide) {
		t.Fatalf("candidate sets differ: %d vs %d", len(irsSide), len(dbSide))
	}
	for oid, v := range irsSide {
		if math.Abs(dbSide[oid]-v) > 1e-9 {
			t.Errorf("AND mismatch for %v: irs %v vs oodbms %v", oid, v, dbSide[oid])
		}
	}
	// OR and MAX and SUM likewise.
	for _, tc := range []struct {
		name string
		irs  string
		db   func() (map[oodb.OID]float64, error)
	}{
		{"or", "#or(www nii)", func() (map[oodb.OID]float64, error) { return col.IRSOperatorOR("www", "nii") }},
		{"max", "#max(www nii)", func() (map[oodb.OID]float64, error) { return col.IRSOperatorMAX("www", "nii") }},
		{"sum", "#sum(www nii)", func() (map[oodb.OID]float64, error) { return col.IRSOperatorSUM("www", "nii") }},
		{"wsum", "#wsum(2 www 1 nii)", func() (map[oodb.OID]float64, error) {
			return col.IRSOperatorWSUM([]float64{2, 1}, []string{"www", "nii"})
		}},
	} {
		want, err := col.GetIRSResult(tc.irs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tc.db()
		if err != nil {
			t.Fatal(err)
		}
		for oid, v := range want {
			if math.Abs(got[oid]-v) > 1e-9 {
				t.Errorf("%s mismatch for %v: %v vs %v", tc.name, oid, v, got[oid])
			}
		}
	}
	if _, err := col.IRSOperatorAND(); !errors.Is(err, ErrOperatorArity) {
		t.Errorf("empty AND: %v", err)
	}
	if _, err := col.IRSOperatorWSUM([]float64{1}, []string{"a", "b"}); !errors.Is(err, ErrOperatorArity) {
		t.Errorf("wsum arity: %v", err)
	}
}

func TestOverlappingCollections(t *testing.T) {
	fx := newFixture(t, "")
	fx.addDoc("1994", "d1", "the www paragraph", "another paragraph")
	// Paragraph-level and document-level collections coexist; the
	// document collection uses the abstract mode.
	collPara := fx.paraColl(Options{})
	collDoc, err := fx.coupling.CreateCollection("collDoc", `ACCESS d FROM d IN MMFDOC;`,
		Options{TextMode: docmodel.ModeAbstract})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := collDoc.IndexObjects(); err != nil {
		t.Fatal(err)
	}
	if collPara.DocCount() != 2 || collDoc.DocCount() != 1 {
		t.Errorf("doc counts: para %d, doc %d", collPara.DocCount(), collDoc.DocCount())
	}
	// The same object may appear in several collections with
	// different representations (Section 4.3).
	names := fx.coupling.Collections()
	if len(names) != 2 {
		t.Errorf("collections = %v", names)
	}
	// Drop one; the other is unaffected.
	if err := fx.coupling.DropCollection("collDoc"); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.coupling.Collection("collDoc"); !errors.Is(err, ErrNoSuchCollection) {
		t.Errorf("dropped collection still resolvable: %v", err)
	}
	if collPara.DocCount() != 2 {
		t.Error("sibling collection damaged by drop")
	}
}

func TestCouplingPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	fx := newFixture(t, dir)
	fx.addDoc("1994", "webdoc", "the www paragraph", "the nii paragraph")
	col := fx.paraColl(Options{})
	if _, err := col.GetIRSResult("www"); err != nil {
		t.Fatal(err)
	}
	if err := fx.store.DB().Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: database recovers, coupling restores the collection
	// and its persisted buffer; the IRS index is rebuilt via Reindex
	// (the engine here is memory-only, like a lost INQUERY index).
	db, err := oodb.Open(dir, oodb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	store, err := docmodel.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	coupling, err := New(store, irs.NewEngine())
	if err != nil {
		t.Fatal(err)
	}
	col2, err := coupling.Collection("collPara")
	if err != nil {
		t.Fatalf("collection lost on restart: %v", err)
	}
	if col2.SpecQuery() != `ACCESS p FROM p IN PARA;` {
		t.Errorf("spec query = %q", col2.SpecQuery())
	}
	// The buffered result survived the restart (persistent buffer).
	if col2.BufferedQueries() != 1 {
		t.Errorf("buffered queries after restart = %d, want 1", col2.BufferedQueries())
	}
	res, err := col2.GetIRSResult("www")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Errorf("buffered result after restart = %v", res)
	}
	s := col2.Stats().Snapshot()
	if s.BufferHits != 1 || s.IRSSearches != 0 {
		t.Errorf("restart should serve from buffer: %+v", s)
	}
	// Rebuild the IRS side and verify fresh queries work too.
	if _, _, _, err := col2.Reindex(); err != nil {
		t.Fatal(err)
	}
	res, err = col2.GetIRSResult("nii")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Errorf("post-reindex result = %v", res)
	}
}
