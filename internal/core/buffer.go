package core

import (
	"sync"

	"repro/internal/oodb"
)

// resultBuffer is the persistent IRS-result buffer of Section 4.2:
// "For both intra- and inter-query optimization, the results of IRS
// calls are buffered persistently in a dictionary of type
// ‖STRING → ‖IRSObjects → REAL‖‖. Its keys are IRS queries."
//
// The in-memory map serves lookups; every entry is mirrored as an
// IRSBufferEntry database object so the buffer survives restarts
// (restored by Coupling.restore). Any flush of update propagation
// invalidates the buffer, deleting the mirror objects.
type resultBuffer struct {
	col *Collection

	mu      sync.Mutex
	entries map[string]bufferEntry
	// gen counts invalidations. A query records the generation before
	// it evaluates and hands it back to put, which discards the entry
	// if an invalidation ran in between — otherwise a result computed
	// against a pre-flush snapshot could be installed *after* the
	// flush's invalidate and serve stale scores until the next flush.
	gen uint64
}

type bufferEntry struct {
	scores map[oodb.OID]float64
	dbObj  oodb.OID // mirror object (NilOID while unsaved)
}

func newResultBuffer(col *Collection) *resultBuffer {
	return &resultBuffer{col: col, entries: make(map[string]bufferEntry)}
}

// get returns a copy of the buffered scores for the canonical query
// key.
func (b *resultBuffer) get(key string) (map[oodb.OID]float64, bool) {
	b.mu.Lock()
	e, ok := b.entries[key]
	b.mu.Unlock()
	if !ok {
		return nil, false
	}
	out := make(map[oodb.OID]float64, len(e.scores))
	for k, v := range e.scores {
		out[k] = v
	}
	return out, true
}

// generation returns the current invalidation generation; read it
// before evaluating a result that will be offered to put.
func (b *resultBuffer) generation() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.gen
}

// put stores scores under key and mirrors the entry into the
// database. gen must be the generation observed before the scores
// were computed; if an invalidation ran since, the entry is stale and
// dropped instead of installed.
func (b *resultBuffer) put(key string, scores map[oodb.OID]float64, gen uint64) {
	copied := make(map[oodb.OID]float64, len(scores))
	oids := make([]oodb.OID, 0, len(scores))
	for k, v := range scores {
		copied[k] = v
		oids = append(oids, k)
	}
	oodb.SortOIDs(oids)
	values := make([]oodb.Value, len(oids))
	refs := make([]oodb.Value, len(oids))
	for i, oid := range oids {
		refs[i] = oodb.Ref(oid)
		values[i] = oodb.F(copied[oid])
	}
	dbObj, err := b.col.c.db.NewObject(ClassBufferEntry, map[string]oodb.Value{
		"collection": oodb.Ref(b.col.oid),
		"query":      oodb.S(key),
		"oids":       oodb.Value{Kind: oodb.KindList, List: refs},
		"values":     oodb.Value{Kind: oodb.KindList, List: values},
	})
	if err != nil {
		dbObj = oodb.NilOID // memory-only entry; still correct
	}
	b.mu.Lock()
	if b.gen != gen {
		// Invalidated while the result was being computed: installing
		// it would resurrect pre-flush scores. Drop it (and its
		// freshly created mirror object).
		b.mu.Unlock()
		if dbObj != oodb.NilOID {
			b.col.c.db.DeleteObject(dbObj)
		}
		return
	}
	if old, ok := b.entries[key]; ok && old.dbObj != oodb.NilOID && old.dbObj != dbObj {
		// Racing fill of the same key: drop the older mirror.
		b.col.c.db.DeleteObject(old.dbObj)
	}
	b.entries[key] = bufferEntry{scores: copied, dbObj: dbObj}
	b.mu.Unlock()
}

// restore installs a persisted entry loaded at startup.
func (b *resultBuffer) restore(key string, scores map[oodb.OID]float64, dbObj oodb.OID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.entries[key] = bufferEntry{scores: scores, dbObj: dbObj}
}

// invalidate empties the buffer and deletes the mirror objects
// (required whenever the underlying IRS collection changed).
func (b *resultBuffer) invalidate() {
	b.mu.Lock()
	old := b.entries
	b.entries = make(map[string]bufferEntry)
	b.gen++
	b.mu.Unlock()
	for _, e := range old {
		if e.dbObj != oodb.NilOID {
			b.col.c.db.DeleteObject(e.dbObj)
		}
	}
}

// size returns the number of buffered query results.
func (b *resultBuffer) size() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.entries)
}

// InvalidateBuffer drops all buffered IRS results (exposed for
// experiments that need cold-query measurements).
func (col *Collection) InvalidateBuffer() { col.buffer.invalidate() }

// SetBufferEnabled toggles the result buffer. Disabling it makes
// every GetIRSResult evaluate in the IRS — the configuration the
// buffering experiment (EXP-F3) compares against.
func (col *Collection) SetBufferEnabled(on bool) {
	col.bufferOff.Store(!on)
}

// BufferedQueries reports how many IRS query results are currently
// buffered (experiments).
func (col *Collection) BufferedQueries() int { return col.buffer.size() }
