package core

import (
	"sync"

	"repro/internal/oodb"
)

// PropagationPolicy bounds WHEN database updates are propagated to
// the IRS index structures (Section 4.6): immediately after each
// update, before the next information-need query, or when the
// application says so (with queries still forcing a pending flush).
type PropagationPolicy uint8

// Propagation policies.
const (
	// PropagateOnQuery defers propagation until the next IRS query
	// (alternative (2): "After a query is issued the index
	// structures are updated before the query's evaluation").
	PropagateOnQuery PropagationPolicy = iota
	// PropagateImmediately propagates after every committed update
	// (alternative (1): costly "if the number of updates is high as
	// compared to the number of information-need queries").
	PropagateImmediately
	// PropagateManually leaves propagation to the application
	// (e.g. in low-load periods); a query with propagation pending
	// still forces it.
	PropagateManually
	// PropagateAsync hands propagation to a per-collection background
	// flusher: logged updates are group-committed shortly after they
	// arrive (coalescing within a small window), so callers never wait
	// for index maintenance and queries rarely find a backlog. Like
	// the deferred policies, a query with propagation still pending
	// forces the flush first, so results are always current.
	PropagateAsync
)

func (p PropagationPolicy) String() string {
	switch p {
	case PropagateImmediately:
		return "immediate"
	case PropagateOnQuery:
		return "on-query"
	case PropagateManually:
		return "manual"
	case PropagateAsync:
		return "async"
	}
	return "?"
}

// pendingKind classifies a logged operation.
type pendingKind uint8

const (
	pendingCreate pendingKind = iota + 1
	pendingModify
	pendingDelete
)

// pendingOp is one entry of the drained log.
type pendingOp struct {
	oid  oodb.OID
	kind pendingKind
}

// updateLog records relevant database operations between flushes and
// cancels out operations that annul each other — "with some
// operation sequences, operations cancel out each other's effect.
// For instance, consider the deletion of a text object that has just
// been generated. In our implementation, database operations are
// recorded to avoid unnecessary update propagations" (Section 4.6).
//
// Merge rules per object:
//
//	create + modify  -> create          (fresh text is read anyway)
//	create + delete  -> (nothing)       (the paper's example)
//	modify + modify  -> modify          (collapsed)
//	modify + delete  -> delete
//	delete + create  -> create          (cannot happen: OIDs unique)
type updateLog struct {
	mu          sync.Mutex
	ops         map[oodb.OID]pendingKind
	order       []oodb.OID
	createCount int
	// seq counts accepted operations; drain reports the high-water
	// mark it emptied through, giving the flush pipeline its ingest
	// watermark (an op is "applied" once a drain covering its seq has
	// committed — cancelled ops are applied trivially).
	seq uint64
}

func newUpdateLog() *updateLog {
	return &updateLog{ops: make(map[oodb.OID]pendingKind)}
}

// add merges one operation into the log, updating cancellation
// statistics.
func (l *updateLog) add(oid oodb.OID, kind pendingKind, stats *Stats) {
	l.mu.Lock()
	defer l.mu.Unlock()
	stats.OpsLogged.Add(1)
	l.seq++
	prev, exists := l.ops[oid]
	if !exists {
		l.ops[oid] = kind
		l.order = append(l.order, oid)
		if kind == pendingCreate {
			l.createCount++
		}
		return
	}
	switch {
	case prev == pendingCreate && kind == pendingDelete:
		// Generated then deleted before propagation: both vanish.
		delete(l.ops, oid)
		l.createCount--
		stats.OpsCancelled.Add(2)
	case prev == pendingCreate && kind == pendingModify:
		stats.OpsCancelled.Add(1) // absorbed by the create
	case prev == pendingModify && kind == pendingModify:
		stats.OpsCancelled.Add(1) // collapsed
	case prev == pendingModify && kind == pendingDelete:
		l.ops[oid] = pendingDelete
		stats.OpsCancelled.Add(1) // the modify became moot
	default:
		l.ops[oid] = kind
	}
}

// hasCreate reports whether oid has a pending create entry (used to
// route deletes of never-propagated objects into the log so the
// create+delete pair can cancel).
func (l *updateLog) hasCreate(oid oodb.OID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ops[oid] == pendingCreate
}

// pending reports whether the log holds anything.
func (l *updateLog) pending() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ops) > 0
}

// size returns the number of distinct pending objects.
func (l *updateLog) size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ops)
}

// lastSeq returns the sequence number of the last accepted operation
// — the collection's ingest watermark.
func (l *updateLog) lastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// seed advances the sequence counter to at least seq. The coupling
// calls it on restart with the watermark recovered from the WAL, so
// operations accepted after recovery sequence strictly after the
// replayed ones.
func (l *updateLog) seed(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq > l.seq {
		l.seq = seq
	}
}

// drain atomically empties the log, returning the surviving
// operations in first-logged order, whether creations were among them
// (the flusher re-runs the specification query in that case), and the
// watermark the drain empties through.
func (l *updateLog) drain() ([]pendingOp, bool, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ops := make([]pendingOp, 0, len(l.ops))
	for _, oid := range l.order {
		kind, ok := l.ops[oid]
		if !ok || kind == pendingCreate {
			continue // cancelled, or handled via spec re-run
		}
		ops = append(ops, pendingOp{oid: oid, kind: kind})
	}
	hadCreates := l.createCount > 0
	l.ops = make(map[oodb.OID]pendingKind)
	l.order = nil
	l.createCount = 0
	return ops, hadCreates, l.seq
}
