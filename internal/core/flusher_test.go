package core

import (
	"fmt"
	"testing"
	"time"
)

// TestAdaptCoalesceWindowBounds: the controller's output never
// leaves [min, max], for any mix of rate and depth signals.
func TestAdaptCoalesceWindowBounds(t *testing.T) {
	min, max := 500*time.Microsecond, 8*time.Millisecond
	w := min
	cases := []struct {
		rate  float64
		depth int
	}{
		{0, 0}, {10, 0}, {coalesceRateFull, 0}, {1e9, 0},
		{-5, 0}, {0, 4096}, {0, 1 << 20}, {coalesceRateFull / 3, 300},
	}
	for i := 0; i < 200; i++ {
		c := cases[i%len(cases)]
		w = adaptCoalesceWindow(w, c.rate, c.depth, 4096, min, max)
		if w < min || w > max {
			t.Fatalf("step %d (rate %v depth %d): window %v outside [%v, %v]",
				i, c.rate, c.depth, w, min, max)
		}
	}
	// Degenerate bounds collapse to the floor.
	if got := adaptCoalesceWindow(max, 1e9, 1<<20, 4096, min, min); got != min {
		t.Fatalf("min==max window = %v, want %v", got, min)
	}
}

// TestAdaptCoalesceWindowConvergence: under constant load the window
// converges geometrically to the load-proportional target — the
// floor when idle, the ceiling under saturation, the interpolant in
// between — instead of oscillating.
func TestAdaptCoalesceWindowConvergence(t *testing.T) {
	min, max := time.Millisecond, 9*time.Millisecond
	run := func(start time.Duration, rate float64, depth, depthCap int) time.Duration {
		w := start
		for i := 0; i < 64; i++ {
			w = adaptCoalesceWindow(w, rate, depth, depthCap, min, max)
		}
		return w
	}
	near := func(got, want time.Duration, what string) {
		t.Helper()
		d := got - want
		if d < 0 {
			d = -d
		}
		if d > 10*time.Microsecond {
			t.Fatalf("%s: converged to %v, want %v", what, got, want)
		}
	}
	near(run(max, 0, 0, 4096), min, "idle from ceiling")
	near(run(min, 10*coalesceRateFull, 0, 4096), max, "rate-saturated from floor")
	// Half rateFull → load 0.5 → midpoint of [min, max].
	near(run(min, coalesceRateFull/2, 0, 4096), (min+max)/2, "half load")
	// Queue at half the bound saturates the depth signal.
	near(run(min, 0, 2048, 4096), max, "depth-saturated")
	// Unbounded queue: the depth signal is ignored, rate rules.
	near(run(max, 0, 1<<20, 0), min, "depth ignored when unbounded")
}

// TestAdaptiveCoalesceWindowLive: a collection under the adaptive
// default (AsyncCoalesce 0) keeps its effective window inside the
// configured bounds while real ingest churns, and reports itself
// adaptive; a fixed override pins the window and reports itself
// pinned.
func TestAdaptiveCoalesceWindowLive(t *testing.T) {
	fx := newFixture(t, "")
	for i := 0; i < 4; i++ {
		fx.addDoc("1994", fmt.Sprintf("doc%d", i), "the world wide web", "the national infrastructure")
	}
	min, max := 200*time.Microsecond, 2*time.Millisecond
	col := fx.paraColl(Options{
		Policy:           PropagateAsync,
		AsyncCoalesceMin: min,
		AsyncCoalesceMax: max,
	})
	if !col.CoalesceAdaptive() {
		t.Fatal("AsyncCoalesce 0 did not select the adaptive controller")
	}
	if got, want := col.CoalesceMin(), min; got != want {
		t.Fatalf("CoalesceMin = %v, want %v", got, want)
	}
	if got, want := col.CoalesceMax(), max; got != want {
		t.Fatalf("CoalesceMax = %v, want %v", got, want)
	}
	check := func() {
		t.Helper()
		if w := col.CoalesceWindow(); w < min || w > max {
			t.Fatalf("live window %v outside [%v, %v]", w, min, max)
		}
	}
	check()
	for round := 0; round < 6; round++ {
		for _, doc := range fx.docs {
			para := fx.paras(doc)[0]
			if err := fx.store.SetText(fx.store.Children(para)[0],
				fmt.Sprintf("hypertext burst %d on the web", round)); err != nil {
				t.Fatal(err)
			}
			check()
		}
		waitUntil(t, 5*time.Second, "adaptive flusher drained", func() bool {
			return col.PendingOps() == 0
		})
		check()
	}
	if got := col.Stats().AsyncFlushes.Load(); got == 0 {
		t.Fatal("adaptive flusher never flushed")
	}

	// A fixed override pins the window and leaves adaptive mode.
	col.ConfigureAsync(0, 3*time.Millisecond)
	if col.CoalesceAdaptive() {
		t.Fatal("fixed override still reports adaptive")
	}
	if got := col.CoalesceWindow(); got != 3*time.Millisecond {
		t.Fatalf("pinned window = %v, want 3ms", got)
	}
	// And back: 0 re-enters the adaptive default at the floor.
	col.ConfigureAsync(0, 0)
	if !col.CoalesceAdaptive() {
		t.Fatal("ConfigureAsync(_, 0) did not restore the adaptive controller")
	}
	check()
}
