package core
