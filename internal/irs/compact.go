package irs

import "math"

// Background compaction policy.
//
// Deletions and updates tombstone documents; their postings occupy
// memory until Compact rebuilds the shards. The paper's era solved
// this by periodic re-indexing in low-load windows (Section 4.6's
// cost model); here the index watches its own tombstone ratio and
// rebuilds itself in the background once reclaimable space crosses a
// configured fraction — the serving layer never schedules anything.
//
// The check runs after every mutation that can create a tombstone
// (Delete, Update, Batch) against two atomics (liveCount/deadCount),
// so it costs two loads on the happy path. When the ratio trips, one
// goroutine is started; Compact takes the commit lock exclusively, so
// the rebuild serializes with batches and snapshot acquisitions while
// existing snapshots keep reading the structures they captured. A
// CAS'd running flag ensures at most one background compaction per
// index at a time.

// defaultAutoCompactMin is the tombstone floor below which the policy
// never triggers: compacting a near-empty index buys nothing.
const defaultAutoCompactMin = 64

// SetAutoCompact configures the background compaction policy: when
// more than ratio of the index's documents are tombstones (and at
// least minTombstones are), a background goroutine runs Compact.
// ratio <= 0 disables the policy; minTombstones <= 0 selects the
// default floor (64). Ratios are clamped to at most 1.
func (ix *Index) SetAutoCompact(ratio float64, minTombstones int) {
	if ratio <= 0 {
		ix.autoCompactRatio.Store(0)
		return
	}
	if ratio > 1 {
		ratio = 1
	}
	if minTombstones <= 0 {
		minTombstones = defaultAutoCompactMin
	}
	ix.autoCompactMin.Store(int64(minTombstones))
	ix.autoCompactRatio.Store(math.Float64bits(ratio))
}

// AutoCompact reports the configured policy (ratio 0 when disabled).
func (ix *Index) AutoCompact() (ratio float64, minTombstones int) {
	bits := ix.autoCompactRatio.Load()
	if bits == 0 {
		return 0, 0
	}
	return math.Float64frombits(bits), int(ix.autoCompactMin.Load())
}

// TombstoneStats returns the number of live and tombstoned documents.
func (ix *Index) TombstoneStats() (live, dead int64) {
	return ix.liveCount.Load(), ix.deadCount.Load()
}

// TombstoneRatio returns the fraction of documents that are
// tombstones (0 for an empty index).
func (ix *Index) TombstoneRatio() float64 {
	live, dead := ix.TombstoneStats()
	if live+dead == 0 {
		return 0
	}
	return float64(dead) / float64(live+dead)
}

// Compactions returns how many Compact runs (manual or
// policy-triggered) the index has performed.
func (ix *Index) Compactions() uint64 { return ix.compactions.Load() }

// CompactionRunning reports whether a background compaction is in
// flight.
func (ix *Index) CompactionRunning() bool { return ix.compactRunning.Load() }

// WaitCompaction blocks until any in-flight background compaction has
// finished (tests and orderly shutdown).
func (ix *Index) WaitCompaction() { ix.compactWG.Wait() }

// maybeAutoCompact tests the policy and, when it trips, starts one
// background Compact. Callers must not hold commitMu (Compact takes
// it exclusively) — mutation entry points call this after releasing
// their locks.
func (ix *Index) maybeAutoCompact() {
	bits := ix.autoCompactRatio.Load()
	if bits == 0 {
		return
	}
	dead := ix.deadCount.Load()
	if dead < ix.autoCompactMin.Load() {
		return
	}
	live := ix.liveCount.Load()
	if float64(dead) < math.Float64frombits(bits)*float64(live+dead) {
		return
	}
	if !ix.compactRunning.CompareAndSwap(false, true) {
		return // one at a time
	}
	ix.compactWG.Add(1)
	go func() {
		defer ix.compactWG.Done()
		defer ix.compactRunning.Store(false)
		ix.Compact()
	}()
}
