package irs

import "testing"

// FuzzParseQuery fuzzes the IRS query parser with a seed corpus of
// the paper's operator forms. Two properties are enforced: the parser
// never panics (errors must be returned as *ParseError values), and
// every successfully parsed query's canonical String() form reparses
// to the same canonical string (the result buffer and the serving
// cache both key on it, so canonicalization must be a fixpoint).
func FuzzParseQuery(f *testing.F) {
	for _, seed := range []string{
		"WWW",
		"www nii",
		"#and(WWW NII)",
		"#or(nii #and(sgml markup))",
		"#not(www)",
		"#and(www #not(nii))",
		"#sum(www nii sgml video audio)",
		"#wsum(2 WWW 1 #phrase(digital library))",
		"#wsum(2 www -1 filler 0.5 nii)",
		"#wsum(1e-3 www 4.25 nii)",
		"#max(www nii #phrase(digital library))",
		"#phrase(digital library)",
		"#syn(www w3 web)",
		"#band(a b)",
		"#bnot(a)",
		"#odn(a b)",
		"#1(a b)",
		"#sum(#and(www nii) #or(video audio) retrieval)",
		"#wsum(2 #wsum(1 a 1 b) 1 c)",
		"#and(",
		"#wsum(x www)",
		"#unknown(a)",
		"()",
		"#not(a b)",
		"#phrase(#and(a b))",
		",,, ,",
		"térm #and(über straße)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, q string) {
		n, err := ParseQuery(q)
		if err != nil {
			return // rejected input; the absence of a panic is the property
		}
		s := n.String()
		n2, err := ParseQuery(s)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", s, q, err)
		}
		if got := n2.String(); got != s {
			t.Fatalf("canonicalization not a fixpoint: %q -> %q -> %q", q, s, got)
		}
	})
}
