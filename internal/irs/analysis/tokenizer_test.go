package analysis

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"   ", nil},
		{"Telnet is a protocol", []string{"telnet", "is", "a", "protocol"}},
		{"content-based access", []string{"content", "based", "access"}},
		{"WWW, NII!", []string{"www", "nii"}},
		{"ISO 8879-1986 (E)", []string{"iso", "8879", "1986", "e"}},
		{"O'Brien's", []string{"o", "brien", "s"}},
		{"über-Größe", []string{"über", "größe"}},
	}
	for _, tt := range tests {
		got := Terms(tt.in)
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("Terms(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestTokenizePositionsAndOffsets(t *testing.T) {
	toks := Tokenize("the WWW;  the NII")
	if len(toks) != 4 {
		t.Fatalf("got %d tokens, want 4", len(toks))
	}
	wantPos := []int{0, 1, 2, 3}
	wantOff := []int{0, 4, 10, 14}
	for i, tok := range toks {
		if tok.Position != wantPos[i] {
			t.Errorf("token %d position = %d, want %d", i, tok.Position, wantPos[i])
		}
		if tok.Offset != wantOff[i] {
			t.Errorf("token %d offset = %d, want %d", i, tok.Offset, wantOff[i])
		}
	}
}

func TestAnalyzerStopwordsAndStemming(t *testing.T) {
	a := NewAnalyzer()
	toks := a.Analyze("The retrieval of structured documents")
	got := make([]string, len(toks))
	for i, tok := range toks {
		got[i] = tok.Term
	}
	want := []string{"retriev", "structur", "document"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Analyze = %v, want %v", got, want)
	}
	// Positions must reflect the raw stream (stopwords counted).
	if toks[0].Position != 1 {
		t.Errorf("first kept token position = %d, want 1", toks[0].Position)
	}
}

func TestAnalyzerOptions(t *testing.T) {
	a := NewAnalyzer(WithoutStemming(), WithStopwords([]string{"telnet"}))
	toks := a.Analyze("Telnet is a protocol")
	got := make([]string, len(toks))
	for i, tok := range toks {
		got[i] = tok.Term
	}
	want := []string{"is", "a", "protocol"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Analyze = %v, want %v", got, want)
	}
	if !a.IsStopword("TELNET") {
		t.Error("IsStopword(TELNET) = false, want true")
	}
}

func TestAnalyzeTermSymmetry(t *testing.T) {
	// A query term must normalize to the same form the indexer
	// produced for the matching document token.
	a := NewAnalyzer()
	doc := a.Analyze("databases")
	if len(doc) != 1 {
		t.Fatalf("expected 1 token, got %d", len(doc))
	}
	if q := a.AnalyzeTerm("Databases"); q != doc[0].Term {
		t.Errorf("query term %q != index term %q", q, doc[0].Term)
	}
}

// Property: token positions are strictly increasing and offsets are
// within bounds and non-overlapping.
func TestTokenizeMonotonicProperty(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		prevPos, prevOff := -1, -1
		for _, tok := range toks {
			if tok.Position != prevPos+1 {
				return false
			}
			if tok.Offset <= prevOff || tok.Offset >= len(s) {
				return false
			}
			prevPos = tok.Position
			prevOff = tok.Offset
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Tokenize is insensitive to surrounding whitespace.
func TestTokenizeWhitespaceProperty(t *testing.T) {
	f := func(s string) bool {
		a := Terms(s)
		b := Terms("  " + s + "\n")
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
