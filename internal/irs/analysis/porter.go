package analysis

// Porter stemming algorithm (M.F. Porter, "An algorithm for suffix
// stripping", Program 14(3), 1980). This is a faithful from-scratch
// implementation of the original algorithm — the variant INQUERY and
// its contemporaries used — not the later Porter2/Snowball revision.
//
// The implementation works on a mutable byte buffer and follows the
// step structure of the paper: 1a, 1b (+cleanup), 1c, 2, 3, 4, 5a, 5b.

// Stem returns the Porter stem of word. The input is expected to be
// lowercase; words shorter than 3 letters are returned unchanged (as
// in the reference implementation). Non-ASCII-letter input is
// returned unchanged.
func Stem(word string) string {
	if len(word) < 3 {
		return word
	}
	for i := 0; i < len(word); i++ {
		c := word[i]
		if c < 'a' || c > 'z' {
			return word
		}
	}
	s := stemmer{b: []byte(word)}
	s.step1a()
	s.step1b()
	s.step1c()
	s.step2()
	s.step3()
	s.step4()
	s.step5a()
	s.step5b()
	return string(s.b)
}

type stemmer struct {
	b []byte
}

// cons reports whether b[i] is a consonant under Porter's rules:
// a, e, i, o, u are vowels; y is a consonant when it starts the word
// or follows a vowel, and a vowel when it follows a consonant.
func (s *stemmer) cons(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.cons(i - 1)
	}
	return true
}

// measure computes m for the prefix b[0:end]: the number of VC
// sequences in the canonical form [C](VC)^m[V].
func (s *stemmer) measure(end int) int {
	m := 0
	i := 0
	// Skip initial consonant run.
	for i < end && s.cons(i) {
		i++
	}
	for i < end {
		// Vowel run.
		for i < end && !s.cons(i) {
			i++
		}
		if i >= end {
			break
		}
		// Consonant run => one more VC.
		m++
		for i < end && s.cons(i) {
			i++
		}
	}
	return m
}

// hasVowel reports whether b[0:end] contains a vowel.
func (s *stemmer) hasVowel(end int) bool {
	for i := 0; i < end; i++ {
		if !s.cons(i) {
			return true
		}
	}
	return false
}

// doubleCons reports whether b[0:end] ends with a double consonant.
func (s *stemmer) doubleCons(end int) bool {
	if end < 2 {
		return false
	}
	return s.b[end-1] == s.b[end-2] && s.cons(end-1)
}

// cvc reports whether b[0:end] ends consonant-vowel-consonant where
// the final consonant is not w, x or y ("*o" condition).
func (s *stemmer) cvc(end int) bool {
	if end < 3 {
		return false
	}
	if !s.cons(end-3) || s.cons(end-2) || !s.cons(end-1) {
		return false
	}
	switch s.b[end-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// hasSuffix reports whether the buffer ends with suf.
func (s *stemmer) hasSuffix(suf string) bool {
	n := len(s.b) - len(suf)
	if n < 0 {
		return false
	}
	return string(s.b[n:]) == suf
}

// stemEnd returns the index just before suffix suf (the stem length).
func (s *stemmer) stemEnd(suf string) int {
	return len(s.b) - len(suf)
}

// replace substitutes the trailing suf with rep.
func (s *stemmer) replace(suf, rep string) {
	s.b = append(s.b[:s.stemEnd(suf)], rep...)
}

// replaceIfM substitutes suf with rep when measure(stem) > threshold.
// It reports whether suf matched (regardless of the measure test), so
// callers can stop after the first matching suffix of a rule group.
func (s *stemmer) replaceIfM(suf, rep string, threshold int) bool {
	if !s.hasSuffix(suf) {
		return false
	}
	if s.measure(s.stemEnd(suf)) > threshold {
		s.replace(suf, rep)
	}
	return true
}

// step1a: SSES -> SS, IES -> I, SS -> SS, S -> "".
func (s *stemmer) step1a() {
	switch {
	case s.hasSuffix("sses"):
		s.replace("sses", "ss")
	case s.hasSuffix("ies"):
		s.replace("ies", "i")
	case s.hasSuffix("ss"):
		// unchanged
	case s.hasSuffix("s"):
		s.replace("s", "")
	}
}

// step1b: (m>0) EED -> EE; (*v*) ED -> ""; (*v*) ING -> "" with the
// cleanup rules AT->ATE, BL->BLE, IZ->IZE, undouble, +E after CVC.
func (s *stemmer) step1b() {
	if s.hasSuffix("eed") {
		if s.measure(s.stemEnd("eed")) > 0 {
			s.replace("eed", "ee")
		}
		return
	}
	stripped := false
	if s.hasSuffix("ed") && s.hasVowel(s.stemEnd("ed")) {
		s.replace("ed", "")
		stripped = true
	} else if s.hasSuffix("ing") && s.hasVowel(s.stemEnd("ing")) {
		s.replace("ing", "")
		stripped = true
	}
	if !stripped {
		return
	}
	switch {
	case s.hasSuffix("at"):
		s.replace("at", "ate")
	case s.hasSuffix("bl"):
		s.replace("bl", "ble")
	case s.hasSuffix("iz"):
		s.replace("iz", "ize")
	case s.doubleCons(len(s.b)):
		switch s.b[len(s.b)-1] {
		case 'l', 's', 'z':
			// keep double consonant
		default:
			s.b = s.b[:len(s.b)-1]
		}
	case s.measure(len(s.b)) == 1 && s.cvc(len(s.b)):
		s.b = append(s.b, 'e')
	}
}

// step1c: (*v*) Y -> I.
func (s *stemmer) step1c() {
	if s.hasSuffix("y") && s.hasVowel(s.stemEnd("y")) {
		s.b[len(s.b)-1] = 'i'
	}
}

// step2 maps double suffixes to single ones when m(stem) > 0.
func (s *stemmer) step2() {
	rules := []struct{ suf, rep string }{
		{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
		{"anci", "ance"}, {"izer", "ize"}, {"abli", "able"},
		{"alli", "al"}, {"entli", "ent"}, {"eli", "e"},
		{"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
		{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"},
		{"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
		{"iviti", "ive"}, {"biliti", "ble"},
	}
	for _, r := range rules {
		if s.replaceIfM(r.suf, r.rep, 0) {
			return
		}
	}
}

// step3 handles -ic-, -full, -ness etc. when m(stem) > 0.
func (s *stemmer) step3() {
	rules := []struct{ suf, rep string }{
		{"icate", "ic"}, {"ative", ""}, {"alize", "al"},
		{"iciti", "ic"}, {"ical", "ic"}, {"ful", ""}, {"ness", ""},
	}
	for _, r := range rules {
		if s.replaceIfM(r.suf, r.rep, 0) {
			return
		}
	}
}

// step4 removes residual suffixes when m(stem) > 1.
func (s *stemmer) step4() {
	rules := []string{
		"al", "ance", "ence", "er", "ic", "able", "ible", "ant",
		"ement", "ment", "ent", "ou", "ism", "ate", "iti", "ous",
		"ive", "ize",
	}
	// "ion" is special: stem must end in s or t.
	if s.hasSuffix("ion") {
		end := s.stemEnd("ion")
		if end > 0 && (s.b[end-1] == 's' || s.b[end-1] == 't') && s.measure(end) > 1 {
			s.replace("ion", "")
		}
		// Porter's rule list is scanned for the longest match per
		// step; "ion" cannot co-occur with the other suffixes below
		// except as their tail, so returning here mirrors the
		// reference behaviour.
		if !s.hasSuffix("ion") {
			return
		}
	}
	for _, suf := range rules {
		if s.hasSuffix(suf) {
			if s.measure(s.stemEnd(suf)) > 1 {
				s.replace(suf, "")
			}
			return
		}
	}
}

// step5a: (m>1) E -> ""; (m=1 and not *o) E -> "".
func (s *stemmer) step5a() {
	if !s.hasSuffix("e") {
		return
	}
	end := s.stemEnd("e")
	m := s.measure(end)
	if m > 1 || (m == 1 && !s.cvc(end)) {
		s.replace("e", "")
	}
}

// step5b: (m>1 and *d and *L) single letter (undouble final ll).
func (s *stemmer) step5b() {
	n := len(s.b)
	if n > 1 && s.b[n-1] == 'l' && s.doubleCons(n) && s.measure(n) > 1 {
		s.b = s.b[:n-1]
	}
}
