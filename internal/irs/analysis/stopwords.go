package analysis

// defaultStopwords is a classic English stopword list of the size
// used by 1990s retrieval systems (a van Rijsbergen-style list).
// Stopping is applied at index and query time symmetrically.
var defaultStopwords = func() map[string]bool {
	words := []string{
		"a", "about", "above", "across", "after", "again", "against",
		"all", "almost", "alone", "along", "already", "also",
		"although", "always", "among", "an", "and", "another", "any",
		"anybody", "anyone", "anything", "anywhere", "are", "area",
		"around", "as", "ask", "asked", "at", "away",
		"back", "be", "became", "because", "become", "becomes", "been",
		"before", "began", "behind", "being", "best", "better",
		"between", "both", "but", "by",
		"came", "can", "cannot", "case", "certain", "certainly",
		"clear", "clearly", "come", "could",
		"did", "differ", "different", "do", "does", "done", "down",
		"downed", "during",
		"each", "early", "either", "enough", "even", "evenly", "ever",
		"every", "everybody", "everyone", "everything", "everywhere",
		"far", "few", "find", "finds", "first", "for", "four", "from",
		"full", "fully", "further", "furthered",
		"gave", "general", "generally", "get", "gets", "give", "given",
		"gives", "go", "going", "good", "got", "great", "greater",
		"had", "has", "have", "having", "he", "her", "here", "herself",
		"high", "higher", "him", "himself", "his", "how", "however",
		"if", "important", "in", "interest", "into", "is", "it", "its",
		"itself",
		"just",
		"keep", "kind", "knew", "know", "known",
		"large", "last", "later", "latest", "least", "less", "let",
		"like", "likely", "long", "longer",
		"made", "make", "making", "man", "many", "may", "me", "member",
		"men", "might", "more", "most", "mostly", "mr", "mrs", "much",
		"must", "my", "myself",
		"necessary", "need", "never", "new", "newer", "next", "no",
		"nobody", "non", "noone", "not", "nothing", "now", "nowhere",
		"number",
		"of", "off", "often", "old", "older", "on", "once", "one",
		"only", "open", "opened", "or", "other", "others", "our",
		"out", "over",
		"part", "per", "perhaps", "place", "point", "possible",
		"present", "put",
		"quite",
		"rather", "really", "right", "room",
		"said", "same", "saw", "say", "second", "see", "seem",
		"seemed", "seeming", "seems", "several", "shall", "she",
		"should", "show", "showed", "side", "since", "small", "so",
		"some", "somebody", "someone", "something", "somewhere",
		"state", "still", "such", "sure",
		"take", "taken", "than", "that", "the", "their", "them",
		"then", "there", "therefore", "these", "they", "thing",
		"things", "think", "this", "those", "though", "thought",
		"three", "through", "thus", "to", "today", "together", "too",
		"toward", "turn", "two",
		"under", "until", "up", "upon", "us", "use", "used", "uses",
		"very",
		"want", "wanted", "was", "way", "ways", "we", "well", "went",
		"were", "what", "when", "where", "whether", "which", "while",
		"who", "whole", "whose", "why", "will", "with", "within",
		"without", "work", "worked", "would",
		"year", "years", "yet", "you", "young", "your", "yours",
	}
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[w] = true
	}
	return m
}()

// DefaultStopwords returns a copy of the built-in stopword list,
// sorted order not guaranteed. Useful for applications that want to
// extend the default list via WithStopwords.
func DefaultStopwords() []string {
	out := make([]string, 0, len(defaultStopwords))
	for w := range defaultStopwords {
		out = append(out, w)
	}
	return out
}
