package analysis

import (
	"strings"
	"testing"
	"testing/quick"
)

// porterVectors are drawn from Porter's published examples and the
// standard test vocabulary distributed with the reference
// implementation.
var porterVectors = map[string]string{
	// Step 1a examples.
	"caresses": "caress",
	"ponies":   "poni",
	"ties":     "ti",
	"caress":   "caress",
	"cats":     "cat",
	// Step 1b examples.
	"feed":      "feed",
	"agreed":    "agre",
	"plastered": "plaster",
	"bled":      "bled",
	"motoring":  "motor",
	"sing":      "sing",
	"conflated": "conflat",
	"troubled":  "troubl",
	"sized":     "size",
	"hopping":   "hop",
	"tanned":    "tan",
	"falling":   "fall",
	"hissing":   "hiss",
	"fizzed":    "fizz",
	"failing":   "fail",
	"filing":    "file",
	// Step 1c.
	"happy": "happi",
	"sky":   "sky",
	// Step 2.
	"relational":     "relat",
	"conditional":    "condit",
	"rational":       "ration",
	"valenci":        "valenc",
	"hesitanci":      "hesit",
	"digitizer":      "digit",
	"conformabli":    "conform",
	"radicalli":      "radic",
	"differentli":    "differ",
	"vileli":         "vile",
	"analogousli":    "analog",
	"vietnamization": "vietnam",
	"predication":    "predic",
	"operator":       "oper",
	"feudalism":      "feudal",
	"decisiveness":   "decis",
	"hopefulness":    "hope",
	"callousness":    "callous",
	"formaliti":      "formal",
	"sensitiviti":    "sensit",
	"sensibiliti":    "sensibl",
	// Step 3.
	"triplicate":  "triplic",
	"formative":   "form",
	"formalize":   "formal",
	"electriciti": "electr",
	"electrical":  "electr",
	"hopeful":     "hope",
	"goodness":    "good",
	// Step 4.
	"revival":     "reviv",
	"allowance":   "allow",
	"inference":   "infer",
	"airliner":    "airlin",
	"gyroscopic":  "gyroscop",
	"adjustable":  "adjust",
	"defensible":  "defens",
	"irritant":    "irrit",
	"replacement": "replac",
	"adjustment":  "adjust",
	"dependent":   "depend",
	"adoption":    "adopt",
	"homologou":   "homolog",
	"communism":   "commun",
	"activate":    "activ",
	"angulariti":  "angular",
	"homologous":  "homolog",
	"effective":   "effect",
	"bowdlerize":  "bowdler",
	// Step 5.
	"probate":  "probat",
	"rate":     "rate",
	"cease":    "ceas",
	"controll": "control",
	"roll":     "roll",
	// Application-domain words used throughout the experiments.
	"retrieval":   "retriev",
	"databases":   "databas",
	"documents":   "document",
	"collections": "collect",
	"hypermedia":  "hypermedia",
	"paragraphs":  "paragraph",
	"indexing":    "index",
	"queries":     "queri",
}

func TestPorterVectors(t *testing.T) {
	for in, want := range porterVectors {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortAndNonAlpha(t *testing.T) {
	cases := map[string]string{
		"a": "a", "is": "is", "be": "be",
		"x86": "x86", "r2d2": "r2d2", "": "",
		"über": "über",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestStemIdempotentOnVocabulary checks the practical invariant that
// re-stemming a stem does not shrink words further for the test
// vocabulary. (The Porter algorithm is not idempotent in general,
// but index/query symmetry only requires that both sides stem once;
// this test documents behaviour on the domain vocabulary.)
func TestStemStableOnDomainVocabulary(t *testing.T) {
	for _, w := range []string{
		"retrieval", "document", "structure", "paragraph", "telnet",
		"protocol", "journal", "multimedia", "forum", "object",
		"oriented", "database", "coupling",
	} {
		s1 := Stem(w)
		s2 := Stem(s1)
		if s2 != s1 {
			t.Logf("note: Stem not idempotent for %q: %q -> %q", w, s1, s2)
		}
	}
}

// Property: stemming never lengthens a word beyond +1 byte (the +e
// restoration in step 1b can add one), and output is ASCII lowercase.
func TestStemLengthAndAlphabetProperty(t *testing.T) {
	letters := "abcdefghijklmnopqrstuvwxyz"
	f := func(seed []byte) bool {
		if len(seed) == 0 {
			return true
		}
		n := int(seed[0])%12 + 1
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(letters[int(seed[i%len(seed)])%26])
		}
		w := sb.String()
		s := Stem(w)
		if len(s) > len(w)+1 {
			return false
		}
		for i := 0; i < len(s); i++ {
			if s[i] < 'a' || s[i] > 'z' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: stems share a non-empty prefix with the original word
// for words of length >= 3 (Porter only strips/rewrites suffixes).
func TestStemPrefixProperty(t *testing.T) {
	letters := "aeioubcdfgst"
	f := func(seed []byte) bool {
		if len(seed) < 3 {
			return true
		}
		n := int(seed[0])%10 + 3
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(letters[int(seed[i%len(seed)])%len(letters)])
		}
		w := sb.String()
		s := Stem(w)
		if len(s) == 0 {
			return false
		}
		return s[0] == w[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
