// Package analysis provides the text-analysis pipeline of the IRS
// substrate: tokenization, stopword removal and Porter stemming.
//
// The pipeline mirrors what INQUERY-era retrieval systems applied to
// document text before indexing. It is deliberately deterministic so
// that experiments are reproducible: the same input text always
// yields the same term sequence.
package analysis

import (
	"strings"
	"unicode"
)

// Token is a single term occurrence produced by the Tokenizer.
type Token struct {
	// Term is the (lowercased) surface form of the token.
	Term string
	// Position is the ordinal of the token in the token stream,
	// counting all tokens (including ones later removed as
	// stopwords) so that phrase offsets remain stable.
	Position int
	// Offset is the byte offset of the token start in the input.
	Offset int
}

// Tokenize splits text into lowercase word tokens. A token is a
// maximal run of letters and digits; everything else separates
// tokens. Hyphenated words ("content-based") produce their parts as
// separate tokens, which matches the behaviour of classic IR
// tokenizers and keeps phrase positions meaningful.
func Tokenize(text string) []Token {
	var toks []Token
	pos := 0
	start := -1
	flush := func(end int) {
		if start < 0 {
			return
		}
		toks = append(toks, Token{
			Term:     strings.ToLower(text[start:end]),
			Position: pos,
			Offset:   start,
		})
		pos++
		start = -1
	}
	for i, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		flush(i)
	}
	flush(len(text))
	return toks
}

// Terms is a convenience wrapper returning just the term strings of
// Tokenize(text).
func Terms(text string) []string {
	toks := Tokenize(text)
	if len(toks) == 0 {
		return nil
	}
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Term
	}
	return out
}

// Analyzer turns raw text into index terms. The zero value is not
// useful; construct one with NewAnalyzer.
type Analyzer struct {
	stopwords map[string]bool
	stem      bool
}

// Option configures an Analyzer.
type Option func(*Analyzer)

// WithStopwords replaces the default stopword list. Passing an empty
// slice disables stopping entirely.
func WithStopwords(words []string) Option {
	return func(a *Analyzer) {
		a.stopwords = make(map[string]bool, len(words))
		for _, w := range words {
			a.stopwords[strings.ToLower(w)] = true
		}
	}
}

// WithoutStemming disables the Porter stemmer.
func WithoutStemming() Option {
	return func(a *Analyzer) { a.stem = false }
}

// NewAnalyzer returns an analyzer with the default English stopword
// list and Porter stemming enabled.
func NewAnalyzer(opts ...Option) *Analyzer {
	a := &Analyzer{stopwords: defaultStopwords, stem: true}
	for _, o := range opts {
		o(a)
	}
	return a
}

// Analyze runs the full pipeline on text: tokenize, drop stopwords,
// stem. Positions are preserved from the raw token stream so phrase
// queries can detect adjacency across removed stopwords.
func (a *Analyzer) Analyze(text string) []Token {
	toks := Tokenize(text)
	out := toks[:0]
	for _, t := range toks {
		if a.stopwords[t.Term] {
			continue
		}
		if a.stem {
			t.Term = Stem(t.Term)
		}
		out = append(out, t)
	}
	return out
}

// AnalyzeTerm normalizes a single query term through the same
// pipeline stages (lowercase + stem). It does not apply stopword
// removal: a user explicitly querying for a stopword should still
// get a well-formed (if empty-posting) term.
func (a *Analyzer) AnalyzeTerm(term string) string {
	term = strings.ToLower(strings.TrimSpace(term))
	if a.stem {
		term = Stem(term)
	}
	return term
}

// IsStopword reports whether the analyzer would drop term.
func (a *Analyzer) IsStopword(term string) bool {
	return a.stopwords[strings.ToLower(term)]
}
