// Package irs implements the information-retrieval substrate of the
// coupling: an inverted-file engine with named collections,
// exchangeable retrieval models (INQUERY-style inference network,
// vector space, boolean) and an operator query language
// (#and, #or, #not, #sum, #wsum, #max, #phrase, #syn).
//
// The package stands in for the INQUERY system the paper couples to
// VODAK. Like INQUERY, it administers flat documents grouped into
// collections, stores a small amount of metadata per document (here:
// the owning database object's OID), and answers a query with a set
// of (document, retrieval-status-value) pairs.
package irs

import (
	"errors"
	"fmt"
)

// DocID identifies a document within one Index. DocIDs are dense,
// ascending and never reused (deleted documents leave tombstones
// until Compact).
type DocID uint32

// Result is one retrieval result: the external identifier the
// document was registered under (in the coupling: the object's OID
// rendered as a string) and its retrieval status value.
type Result struct {
	ExtID string
	Score float64
}

// Sentinel errors returned by the engine.
var (
	ErrNoSuchCollection = errors.New("irs: no such collection")
	ErrDuplicateDoc     = errors.New("irs: duplicate document id")
	ErrNoSuchDoc        = errors.New("irs: no such document")
	ErrDuplicateColl    = errors.New("irs: collection already exists")
)

// ParseError reports a syntax error in an IRS query expression.
type ParseError struct {
	Query string
	Pos   int
	Msg   string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("irs: parse error at %d in %q: %s", e.Pos, e.Query, e.Msg)
}
