package irs

import (
	"fmt"
	"strconv"
	"strings"
)

// NodeKind enumerates IRS query operators. The set mirrors the
// INQUERY operators whose "exact semantics" the paper reports to
// know for "half a dozen operators" (Section 4.5.4).
type NodeKind int

const (
	NodeTerm NodeKind = iota
	NodeAnd
	NodeOr
	NodeNot
	NodeSum
	NodeWSum
	NodeMax
	NodePhrase
	NodeSyn
)

func (k NodeKind) String() string {
	switch k {
	case NodeTerm:
		return "term"
	case NodeAnd:
		return "#and"
	case NodeOr:
		return "#or"
	case NodeNot:
		return "#not"
	case NodeSum:
		return "#sum"
	case NodeWSum:
		return "#wsum"
	case NodeMax:
		return "#max"
	case NodePhrase:
		return "#phrase"
	case NodeSyn:
		return "#syn"
	}
	return fmt.Sprintf("NodeKind(%d)", int(k))
}

// Node is one node of a parsed IRS query.
type Node struct {
	Kind     NodeKind
	Term     string    // NodeTerm only (raw, un-normalized)
	Children []*Node   // operator nodes
	Weights  []float64 // NodeWSum: parallel to Children
}

// String renders the node in canonical query syntax. Canonical
// strings serve as keys of the coupling's persistent result buffer,
// so String must be deterministic.
func (n *Node) String() string {
	if n == nil {
		return ""
	}
	if n.Kind == NodeTerm {
		return n.Term
	}
	var sb strings.Builder
	sb.WriteString(n.Kind.String())
	sb.WriteByte('(')
	for i, c := range n.Children {
		if i > 0 {
			sb.WriteByte(' ')
		}
		if n.Kind == NodeWSum {
			fmt.Fprintf(&sb, "%g ", n.Weights[i])
		}
		sb.WriteString(c.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// Terms returns the distinct raw terms occurring in the query, in
// first-occurrence order.
func (n *Node) Terms() []string {
	seen := make(map[string]bool)
	var out []string
	var walk func(*Node)
	walk = func(m *Node) {
		if m == nil {
			return
		}
		if m.Kind == NodeTerm {
			if !seen[m.Term] {
				seen[m.Term] = true
				out = append(out, m.Term)
			}
			return
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}

// Subqueries decomposes the query into the operand subqueries of its
// top-level combining operator. For #and, #or, #sum, #wsum and #max
// these are the children; for a bare term or #phrase the query is
// its own single subquery. The query-aware derivation scheme
// (Section 4.5.2: "first of all, the subqueries need to be
// identified") evaluates components per subquery and recombines.
func (n *Node) Subqueries() []*Node {
	if n == nil {
		return nil
	}
	switch n.Kind {
	case NodeAnd, NodeOr, NodeSum, NodeWSum, NodeMax:
		return n.Children
	default:
		return []*Node{n}
	}
}

// Term constructs a term node.
func Term(t string) *Node { return &Node{Kind: NodeTerm, Term: t} }

// Op constructs an operator node.
func Op(kind NodeKind, children ...*Node) *Node {
	return &Node{Kind: kind, Children: children}
}

// ParseQuery parses an IRS query expression. Syntax:
//
//	query   = node+                      (multiple nodes imply #sum)
//	node    = TERM | '#'OP '(' body ')'
//	body    = node*                      (#wsum: (WEIGHT node)*)
//
// Examples: "WWW", "#and(WWW NII)", "#wsum(2 WWW 1 #phrase(digital library))".
func ParseQuery(q string) (*Node, error) {
	p := &queryParser{src: q}
	p.skipSpace()
	var nodes []*Node
	for !p.eof() {
		n, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, n)
		p.skipSpace()
	}
	switch len(nodes) {
	case 0:
		return nil, &ParseError{Query: q, Pos: 0, Msg: "empty query"}
	case 1:
		return nodes[0], nil
	default:
		return &Node{Kind: NodeSum, Children: nodes}, nil
	}
}

type queryParser struct {
	src string
	pos int
}

func (p *queryParser) eof() bool { return p.pos >= len(p.src) }

func (p *queryParser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r', ',':
			p.pos++
		default:
			return
		}
	}
}

func (p *queryParser) errf(format string, args ...interface{}) error {
	return &ParseError{Query: p.src, Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func isWordByte(c byte) bool {
	return c == '-' || c == '_' || c == '\'' ||
		(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
		(c >= 'A' && c <= 'Z') || c >= 0x80
}

func (p *queryParser) readWord() string {
	start := p.pos
	for p.pos < len(p.src) && isWordByte(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos]
}

// readNumber reads a float token ("2", "0.5", "1e-3", "-4.25").
func (p *queryParser) readNumber() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' ||
			c == 'e' || c == 'E' {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

func (p *queryParser) parseNode() (*Node, error) {
	p.skipSpace()
	if p.eof() {
		return nil, p.errf("unexpected end of query")
	}
	if p.src[p.pos] != '#' {
		w := p.readWord()
		if w == "" {
			return nil, p.errf("unexpected character %q", p.src[p.pos])
		}
		return Term(w), nil
	}
	p.pos++ // consume '#'
	opName := p.readWord()
	var kind NodeKind
	switch strings.ToLower(opName) {
	case "and", "band":
		kind = NodeAnd
	case "or", "bor":
		kind = NodeOr
	case "not", "bnot":
		kind = NodeNot
	case "sum":
		kind = NodeSum
	case "wsum":
		kind = NodeWSum
	case "max":
		kind = NodeMax
	case "phrase", "odn", "1":
		kind = NodePhrase
	case "syn":
		kind = NodeSyn
	default:
		return nil, p.errf("unknown operator #%s", opName)
	}
	p.skipSpace()
	if p.eof() || p.src[p.pos] != '(' {
		return nil, p.errf("expected '(' after #%s", opName)
	}
	p.pos++
	n := &Node{Kind: kind}
	for {
		p.skipSpace()
		if p.eof() {
			return nil, p.errf("unclosed #%s(", opName)
		}
		if p.src[p.pos] == ')' {
			p.pos++
			break
		}
		if kind == NodeWSum {
			wStart := p.pos
			wtok := p.readNumber()
			w, err := strconv.ParseFloat(wtok, 64)
			if err != nil {
				p.pos = wStart
				return nil, p.errf("#wsum expects numeric weight, got %q", wtok)
			}
			child, err := p.parseNode()
			if err != nil {
				return nil, err
			}
			n.Weights = append(n.Weights, w)
			n.Children = append(n.Children, child)
			continue
		}
		child, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, child)
	}
	if len(n.Children) == 0 {
		return nil, p.errf("#%s requires at least one operand", opName)
	}
	if kind == NodeNot && len(n.Children) != 1 {
		return nil, p.errf("#not takes exactly one operand")
	}
	if kind == NodePhrase {
		for _, c := range n.Children {
			if c.Kind != NodeTerm {
				return nil, p.errf("#phrase operands must be terms")
			}
		}
	}
	return n, nil
}
