package irs

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/irs/analysis"
)

// TestSnapshotPointInTime: a snapshot keeps answering from the state
// at acquisition while the live index moves on.
func TestSnapshotPointInTime(t *testing.T) {
	ix := newTestIndex()
	ix.Add("d1", "alpha beta", nil)
	ix.Add("d2", "alpha gamma", nil)
	snap := ix.Snapshot()

	ix.Delete("d1")
	ix.Add("d3", "alpha delta", nil)
	if _, err := ix.Update("d2", "epsilon only", nil); err != nil {
		t.Fatal(err)
	}

	if got := snap.DocCount(); got != 2 {
		t.Errorf("snapshot DocCount = %d, want 2", got)
	}
	if got := snap.DF("alpha"); got != 2 {
		t.Errorf("snapshot DF(alpha) = %d, want 2", got)
	}
	exts := make(map[string]bool)
	for _, p := range snap.Postings("alpha") {
		ext, ok := snap.ExtID(p.Doc)
		if !ok {
			t.Fatalf("snapshot posting for dead doc %d", p.Doc)
		}
		exts[ext] = true
	}
	if !exts["d1"] || !exts["d2"] || len(exts) != 2 {
		t.Errorf("snapshot postings cover %v, want d1+d2", exts)
	}
	// The live index reflects the mutations.
	if got := ix.DF("alpha"); got != 1 {
		t.Errorf("live DF(alpha) = %d, want 1", got)
	}
	// A fresh snapshot sees the new state and a new version.
	snap2 := ix.Snapshot()
	if snap2.Version() == snap.Version() {
		t.Error("snapshot version did not change across mutations")
	}
	if got := snap2.DF("alpha"); got != 1 {
		t.Errorf("fresh snapshot DF(alpha) = %d, want 1", got)
	}
}

// TestSnapshotBatchIsolation: concurrent batches swap two documents'
// contents back and forth; every concurrent ranking must reflect one
// of the two committed states, never a half-applied blend. Run with
// -race to exercise the memory-model claims too.
func TestSnapshotBatchIsolation(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			e := NewEngine(Options{Shards: shards})
			c, err := e.CreateCollection("iso", nil)
			if err != nil {
				t.Fatal(err)
			}
			// State A: docA carries the topic, docB doesn't.
			// State B: the other way round. In both states exactly
			// one document matches "topic".
			c.AddDocument("docA", "topic words here", nil)
			c.AddDocument("docB", "unrelated filler text", nil)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				inA := true
				for {
					select {
					case <-stop:
						return
					default:
					}
					var ta, tb string
					if inA {
						ta, tb = "unrelated filler text", "topic words here"
					} else {
						ta, tb = "topic words here", "unrelated filler text"
					}
					err := c.Batch(func(b *Batch) error {
						if _, err := b.Update("docA", ta, nil); err != nil {
							return err
						}
						_, err := b.Update("docB", tb, nil)
						return err
					})
					if err != nil {
						t.Error(err)
						return
					}
					inA = !inA
				}
			}()
			node, err := ParseQuery("topic")
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 300; i++ {
				rs := c.SearchNode(node)
				if len(rs) != 1 {
					t.Fatalf("iteration %d: ranking has %d hits (%v), want exactly 1 — blended batch state observed", i, len(rs), rs)
				}
				if rs[0].ExtID != "docA" && rs[0].ExtID != "docB" {
					t.Fatalf("iteration %d: unexpected hit %v", i, rs[0])
				}
			}
			close(stop)
			wg.Wait()
		})
	}
}

// equivalenceModels are compared by the sharding property test; the
// vector model gets a fresh instance per index (it caches norms).
func equivalenceModels() []func() Model {
	return []func() Model{
		func() Model { return InferenceNet{} },
		func() Model { return NewVectorSpace() },
		func() Model { return Boolean{} },
		func() Model { return PassageModel{Window: 8} },
	}
}

var equivalenceQueries = []string{
	"t1",
	"#and(t1 t2)",
	"#or(t3 #and(t1 t4))",
	"#wsum(2 t1 1 t5)",
	"#sum(t1 t2 t3 t4 t5)",
	"#max(t2 #syn(t3 t6))",
	"#and(t1 #not(t2))",
	"#phrase(t1 t2)",
}

// Property: a sharded index returns rankings identical — same
// documents, same order, bit-equal scores — to a single-shard index
// over the same document history, for every retrieval model. Global
// statistics (N, df, avgdl) and sorted-term accumulation make the
// arithmetic independent of the partitioning.
func TestShardedEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shards := 2 + rng.Intn(4)
		mk := func(n int) *Index {
			return NewIndexShards(analysis.NewAnalyzer(analysis.WithoutStemming(), analysis.WithStopwords(nil)), n)
		}
		single, sharded := mk(1), mk(shards)
		live := make(map[string]bool)
		for i := 0; i < 60; i++ {
			id := fmt.Sprintf("d%d", rng.Intn(20))
			switch {
			case !live[id]:
				text := ""
				for j := 0; j < 1+rng.Intn(10); j++ {
					text += fmt.Sprintf("t%d ", rng.Intn(8))
				}
				if _, err := single.Add(id, text, nil); err != nil {
					t.Fatal(err)
				}
				if _, err := sharded.Add(id, text, nil); err != nil {
					t.Fatal(err)
				}
				live[id] = true
			case rng.Intn(3) == 0:
				single.Delete(id)
				sharded.Delete(id)
				delete(live, id)
			default:
				text := ""
				for j := 0; j < 1+rng.Intn(10); j++ {
					text += fmt.Sprintf("t%d ", rng.Intn(8))
				}
				single.Update(id, text, nil)
				sharded.Update(id, text, nil)
			}
		}
		if single.DocCount() != sharded.DocCount() {
			t.Logf("seed %d: DocCount %d vs %d", seed, single.DocCount(), sharded.DocCount())
			return false
		}
		if single.AvgDocLen() != sharded.AvgDocLen() {
			t.Logf("seed %d: AvgDocLen %v vs %v", seed, single.AvgDocLen(), sharded.AvgDocLen())
			return false
		}
		for i := 0; i < 8; i++ {
			term := fmt.Sprintf("t%d", i)
			if single.DF(term) != sharded.DF(term) {
				t.Logf("seed %d: DF(%s) %d vs %d", seed, term, single.DF(term), sharded.DF(term))
				return false
			}
		}
		if single.TermCount() != sharded.TermCount() {
			t.Logf("seed %d: TermCount %d vs %d", seed, single.TermCount(), sharded.TermCount())
			return false
		}
		rank := func(ix *Index, m Model, node *Node) []Result {
			snap := ix.Snapshot()
			scores := m.Eval(snap, node)
			out := make([]Result, 0, len(scores))
			for d, s := range scores {
				ext, ok := snap.ExtID(d)
				if !ok {
					t.Fatalf("seed %d: score for dead doc %d", seed, d)
				}
				out = append(out, Result{ExtID: ext, Score: s})
			}
			sortResults(out)
			return out
		}
		for _, mk := range equivalenceModels() {
			m1, mn := mk(), mk()
			for _, q := range equivalenceQueries {
				node, err := ParseQuery(q)
				if err != nil {
					t.Fatal(err)
				}
				r1 := rank(single, m1, node)
				rn := rank(sharded, mn, node)
				if len(r1) != len(rn) {
					t.Logf("seed %d shards %d model %s query %q: %d vs %d results", seed, shards, m1.Name(), q, len(r1), len(rn))
					return false
				}
				for i := range r1 {
					if r1[i] != rn[i] {
						t.Logf("seed %d shards %d model %s query %q rank %d: %v vs %v", seed, shards, m1.Name(), q, i, r1[i], rn[i])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// sortResults orders by descending score, ties by ExtID (the same
// order Collection.SearchNodeAt produces).
func sortResults(rs []Result) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0; j-- {
			if rs[j].Score > rs[j-1].Score ||
				(rs[j].Score == rs[j-1].Score && rs[j].ExtID < rs[j-1].ExtID) {
				rs[j], rs[j-1] = rs[j-1], rs[j]
			} else {
				break
			}
		}
	}
}

// TestReshardPreservesObservables: migrating a single-shard index to
// a sharded one (the v1 file migration path) preserves every
// observable and the rankings.
func TestReshardPreservesObservables(t *testing.T) {
	e := NewEngine()
	c, _ := e.CreateCollection("mig", nil)
	for i := 0; i < 30; i++ {
		c.AddDocument(fmt.Sprintf("d%d", i), fmt.Sprintf("structured documents number%d retrieval", i), nil)
	}
	c.DeleteDocument("d7")
	before, _ := c.Search("structured retrieval")
	ix := c.Index()
	if got := ix.ShardCount(); got != 1 {
		t.Fatalf("ShardCount = %d before reshard", got)
	}
	ix.Reshard(4)
	if got := ix.ShardCount(); got != 4 {
		t.Fatalf("ShardCount = %d after reshard, want 4", got)
	}
	if got := ix.DocCount(); got != 29 {
		t.Errorf("DocCount after reshard = %d, want 29", got)
	}
	after, _ := c.Search("structured retrieval")
	if len(before) != len(after) {
		t.Fatalf("result counts differ: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Errorf("rank %d: %v vs %v", i, before[i], after[i])
		}
	}
}

// TestSnapshotConcurrentSingleDocWrites: heavy single-document write
// traffic against concurrent snapshot readers; every posting a
// snapshot returns must resolve to a live ExtID within that
// snapshot (no torn documents). Run with -race.
func TestSnapshotConcurrentSingleDocWrites(t *testing.T) {
	ix := NewIndexShards(analysis.NewAnalyzer(analysis.WithoutStemming(), analysis.WithStopwords(nil)), 4)
	for i := 0; i < 16; i++ {
		ix.Add(fmt.Sprintf("d%d", i), "shared topic content", nil)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("d%d", rng.Intn(16))
				ix.Update(id, fmt.Sprintf("shared topic content v%d", rng.Intn(100)), nil)
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		snap := ix.Snapshot()
		n := snap.DocCount()
		if n != 16 {
			t.Fatalf("iteration %d: snapshot DocCount = %d, want 16", i, n)
		}
		ps := snap.Postings("shared")
		if len(ps) != 16 {
			t.Fatalf("iteration %d: snapshot sees %d postings for 'shared', want 16", i, len(ps))
		}
		for _, p := range ps {
			if _, ok := snap.ExtID(p.Doc); !ok {
				t.Fatalf("iteration %d: torn posting: doc %d has no ExtID in its own snapshot", i, p.Doc)
			}
		}
		// Live accessors must also be race-free against the writers
		// (they copy metadata out under the shard lock).
		if id, ok := ix.DocID("d3"); ok {
			ix.ExtID(id)
			ix.DocLen(id)
			ix.Meta(id, "k")
		}
	}
	close(stop)
	wg.Wait()
}
