package irs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/irs/codec"
)

// Version 5 collection file layout (little endian) — the mmap-friendly
// page-aligned format. Where v4 is one sequential stream that must be
// parsed (and every block decoded) front to back, v5 splits the file
// into independently addressable sections behind a fixed-offset table,
// each section starting on a page boundary:
//
//	header (offset 0):
//	  magic "IRSC" | version u32 = 5 | section count u32 | page size u32
//	  section table: per section { offset u64, length u64 }
//	sections, in file order, each zero-padded to a pageAlign boundary:
//	  META: model name string | shard count u32 |
//	        auto-compact armed u8 [| ratio f64 bits u64 | min u32]
//	  DOCS: per shard: doc count u32, then per doc
//	        extID string | length u32 | deleted u8 |
//	        meta count u32 | (key string, value string)*  (keys sorted)
//	  FWD:  per shard: doc count u32 | blob length u32 |
//	        (doc count + 1) offsets u32 | blob
//	        (per-doc blob segment: uvarint term count, then uvarint
//	        indexes into the shard's DICT term order)
//	  DICT: per shard: term count u32, then per term
//	        term string | df u32 | max tf u32 | posting count u32 |
//	        position count u64 | block count u32, then per block
//	        { n u32 | first doc u32 | last doc u32 | block max tf u32 |
//	          doc/tf/pos stream lengths u32×3 | blob offset u64 }
//	  BLOB: every block's three streams (docs | tfs | positions),
//	        concatenated in DICT order; DICT offsets are relative to
//	        the section start.
//
// The derived statistics the v4 reader recomputed by decoding every
// block — per-term df, posting and position counts, and the forward
// index (each document's distinct terms) — are stored explicitly, so a
// v5 load parses tables but never touches a posting payload: open time
// is proportional to the dictionary and document tables, not to the
// postings. The per-term max tf is the live upper-bound statistic at
// save time (adds only raise it, and rebuilds recompute it before
// saving), so trusting it without a decode keeps every pruning bound
// sound.
//
// The heap load path (NewEngineAt default) copies each block's streams
// into fresh heap slices and validates them against their metadata,
// exactly as the v4 reader did. The mapped path (OpenMapped /
// Options.Mapped) instead aliases streams and the forward-index blob
// directly into a read-only shared mapping — zero copies, heap
// proportional to the tables — and decodes varints from the mapped
// bytes on demand at query time; the OS page cache decides which
// blocks stay resident. Mutations overlay normally: appends go to the
// in-memory tail and seal into new heap blocks after the mapped
// prefix, deletions flip tombstone bits, and the next Save (or a
// Compact) folds overlay and mapped blocks into ordinary storage.
// Index.Close releases the mapping once the last reader is done.
//
// v1–v4 files load through the legacy stream reader (heap only) and
// migrate to v5 on the next Save.

const (
	// pageAlign is the section alignment: every section begins on a
	// 4 KiB boundary, so mapped posting streams never share a page with
	// mutable-at-rest table bytes and section starts are page-cache
	// friendly.
	pageAlign = 4096

	// v5HeaderSize is the fixed prefix before the section table: magic,
	// version, section count, page size (4 bytes each).
	v5HeaderSize = 16

	// Section-table slots, in file order.
	v5SecMeta = 0
	v5SecDocs = 1
	v5SecFwd  = 2
	v5SecDict = 3
	v5SecBlob = 4

	v5SectionCount = 5
)

var zeroPage [pageAlign]byte

// countingWriter tracks the byte offset of a buffered writer and
// carries a sticky error, so the section writers read linearly instead
// of threading an error through every field.
type countingWriter struct {
	w   *bufio.Writer
	n   int64
	err error
}

func (cw *countingWriter) writeBytes(p []byte) {
	if cw.err != nil {
		return
	}
	m, err := cw.w.Write(p)
	cw.n += int64(m)
	cw.err = err
}

func (cw *countingWriter) u8(v uint8) { cw.writeBytes([]byte{v}) }

func (cw *countingWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	cw.writeBytes(b[:])
}

func (cw *countingWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	cw.writeBytes(b[:])
}

func (cw *countingWriter) str(s string) {
	cw.u32(uint32(len(s)))
	if cw.err != nil {
		return
	}
	m, err := io.WriteString(cw.w, s)
	cw.n += int64(m)
	cw.err = err
}

// padTo writes zeros up to the next multiple of align.
func (cw *countingWriter) padTo(align int64) {
	if cw.err != nil {
		return
	}
	if rem := cw.n % align; rem != 0 {
		cw.writeBytes(zeroPage[:align-rem])
	}
}

// writeCollectionV5 serializes a consistent snapshot of the collection
// in the v5 layout. It takes the temp *os.File directly (not an
// io.Writer) because the section table is back-patched with WriteAt
// once section offsets are known.
func writeCollectionV5(f *os.File, c *Collection) error {
	snap := c.ix.Snapshot()
	nsh := snap.ShardCount()

	// Plan every shard before writing a byte: the horizon-capped
	// dictionary (sealed in-horizon blocks verbatim; a straddling block
	// and the uncompressed tail filtered and re-encoded into trailing
	// spill blocks, as in the v4 writer), the forward index encoded
	// against the sorted term order, and the exact per-term df of the
	// file being written, counted from the live forward lists so the
	// reader never has to decode a block to rebuild it.
	type diskTerm struct {
		term     string
		maxTF    int
		count    int
		posCount int64
		blocks   []codec.Block
	}
	type shardPlan struct {
		terms   []diskTerm
		df      []uint32
		fwdOffs []uint32
		fwdBlob []byte
	}
	plans := make([]shardPlan, nsh)
	var tfbuf []uint32
	for si := 0; si < nsh; si++ {
		ss := &snap.shards[si]
		raws := snap.termsShardRaw(si)
		p := &plans[si]
		p.terms = make([]diskTerm, 0, len(raws))
		tidx := make(map[string]int, len(raws))
		for _, tr := range raws {
			dt := diskTerm{term: tr.term, maxTF: tr.maxTF}
			var spill []Posting // in-horizon postings needing re-encoding
			for bi := range tr.v.blocks {
				bl := &tr.v.blocks[bi]
				if int(bl.FirstDoc) >= ss.docsLen {
					break // doc-ordered: everything after is past the horizon
				}
				if int(bl.LastDoc) < ss.docsLen {
					dt.blocks = append(dt.blocks, *bl)
					// The stored position count must describe the file, not
					// the live list (which may have grown since acquisition);
					// the frequency stream alone sums to it.
					var err error
					if tfbuf, err = bl.DecodeTFs(tfbuf[:0]); err == nil {
						for _, tf := range tfbuf {
							dt.posCount += int64(tf)
						}
					}
					continue
				}
				// Straddling block (sealed after acquisition): keep the
				// in-horizon prefix.
				docs, err := bl.DecodeDocs(nil)
				if err != nil {
					continue
				}
				tfs, err := bl.DecodeTFs(nil)
				if err != nil {
					continue
				}
				poss, err := bl.DecodePositions(tfs)
				if err != nil {
					continue
				}
				for i, local := range docs {
					if int(local) >= ss.docsLen {
						break
					}
					spill = append(spill, Posting{Doc: globalID(local, si, nsh), Positions: poss[i]})
				}
				break
			}
			for _, pp := range tr.v.tail {
				if int(pp.Doc)/nsh < ss.docsLen {
					spill = append(spill, pp)
				}
			}
			for _, pp := range spill {
				dt.posCount += int64(len(pp.Positions))
			}
			for start := 0; start < len(spill); start += codec.BlockSize {
				end := min(start+codec.BlockSize, len(spill))
				chunk := spill[start:end]
				docs := make([]uint32, len(chunk))
				poss := make([][]uint32, len(chunk))
				for i, pp := range chunk {
					docs[i] = uint32(int(pp.Doc) / nsh)
					poss[i] = pp.Positions
				}
				dt.blocks = append(dt.blocks, codec.Encode(docs, poss))
			}
			if len(dt.blocks) == 0 {
				continue
			}
			for bi := range dt.blocks {
				dt.count += dt.blocks[bi].N
			}
			tidx[dt.term] = len(p.terms)
			p.terms = append(p.terms, dt)
		}
		// Forward pass: per-document term indexes into the sorted
		// dictionary above. A term absent from the written dictionary
		// (all postings past the horizon) is dropped from the document's
		// list too, and df counts live in-horizon documents through the
		// same filter, so forward index and stored df always agree with
		// the file's postings.
		p.df = make([]uint32, len(p.terms))
		p.fwdOffs = make([]uint32, 0, ss.docsLen+1)
		for local := 0; local < ss.docsLen; local++ {
			p.fwdOffs = append(p.fwdOffs, uint32(len(p.fwdBlob)))
			terms := ss.docTerms(local)
			live := !ss.isDeleted(local)
			idxs := make([]int, 0, len(terms))
			for _, t := range terms {
				if ti, ok := tidx[t]; ok {
					idxs = append(idxs, ti)
				}
			}
			p.fwdBlob = binary.AppendUvarint(p.fwdBlob, uint64(len(idxs)))
			for _, ti := range idxs {
				p.fwdBlob = binary.AppendUvarint(p.fwdBlob, uint64(ti))
				if live {
					p.df[ti]++
				}
			}
		}
		p.fwdOffs = append(p.fwdOffs, uint32(len(p.fwdBlob)))
		if int64(len(p.fwdBlob)) > math.MaxUint32 {
			return fmt.Errorf("forward index blob too large (%d bytes)", len(p.fwdBlob))
		}
	}

	cw := &countingWriter{w: bufio.NewWriterSize(f, 1<<16)}
	cw.writeBytes([]byte(persistMagic))
	cw.u32(persistVersion)
	cw.u32(v5SectionCount)
	cw.u32(pageAlign)
	cw.writeBytes(make([]byte, v5SectionCount*16)) // table, patched below

	var offs, lens [v5SectionCount]int64
	begin := func(sec int) {
		cw.padTo(pageAlign)
		offs[sec] = cw.n
	}
	end := func(sec int) { lens[sec] = cw.n - offs[sec] }

	begin(v5SecMeta)
	cw.str(c.Model().Name())
	cw.u32(uint32(nsh))
	if ratio, minT := c.ix.AutoCompact(); ratio > 0 {
		cw.u8(1)
		cw.u64(math.Float64bits(ratio))
		cw.u32(uint32(minT))
	} else {
		cw.u8(0)
	}
	end(v5SecMeta)

	begin(v5SecDocs)
	for si := 0; si < nsh; si++ {
		ss := &snap.shards[si]
		cw.u32(uint32(ss.docsLen))
		for local := 0; local < ss.docsLen; local++ {
			d := &ss.docs[local]
			cw.str(d.extID)
			cw.u32(uint32(d.length))
			if ss.isDeleted(local) {
				cw.u8(1)
			} else {
				cw.u8(0)
			}
			cw.u32(uint32(len(d.meta)))
			keys := make([]string, 0, len(d.meta))
			for k := range d.meta {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				cw.str(k)
				cw.str(d.meta[k])
			}
		}
	}
	end(v5SecDocs)

	begin(v5SecFwd)
	for si := range plans {
		p := &plans[si]
		cw.u32(uint32(len(p.fwdOffs) - 1))
		cw.u32(uint32(len(p.fwdBlob)))
		for _, off := range p.fwdOffs {
			cw.u32(off)
		}
		cw.writeBytes(p.fwdBlob)
	}
	end(v5SecFwd)

	begin(v5SecDict)
	var blobOff uint64
	for si := range plans {
		p := &plans[si]
		cw.u32(uint32(len(p.terms)))
		for ti := range p.terms {
			dt := &p.terms[ti]
			cw.str(dt.term)
			cw.u32(p.df[ti])
			cw.u32(uint32(dt.maxTF))
			cw.u32(uint32(dt.count))
			cw.u64(uint64(dt.posCount))
			cw.u32(uint32(len(dt.blocks)))
			for bi := range dt.blocks {
				bl := &dt.blocks[bi]
				cw.u32(uint32(bl.N))
				cw.u32(bl.FirstDoc)
				cw.u32(bl.LastDoc)
				cw.u32(bl.MaxTF)
				cw.u32(uint32(len(bl.Docs)))
				cw.u32(uint32(len(bl.TFs)))
				cw.u32(uint32(len(bl.Pos)))
				cw.u64(blobOff)
				blobOff += uint64(len(bl.Docs) + len(bl.TFs) + len(bl.Pos))
			}
		}
	}
	end(v5SecDict)

	begin(v5SecBlob)
	for si := range plans {
		p := &plans[si]
		for ti := range p.terms {
			for bi := range p.terms[ti].blocks {
				bl := &p.terms[ti].blocks[bi]
				cw.writeBytes(bl.Docs)
				cw.writeBytes(bl.TFs)
				cw.writeBytes(bl.Pos)
			}
		}
	}
	end(v5SecBlob)

	if cw.err != nil {
		return cw.err
	}
	if err := cw.w.Flush(); err != nil {
		return err
	}
	table := make([]byte, v5SectionCount*16)
	for i := range offs {
		binary.LittleEndian.PutUint64(table[i*16:], uint64(offs[i]))
		binary.LittleEndian.PutUint64(table[i*16+8:], uint64(lens[i]))
	}
	_, err := f.WriteAt(table, v5HeaderSize)
	return err
}

// byteCursor is a bounds-checked sequential reader over one section's
// byte slice with a sticky error: a failed read zeroes out and every
// later read no-ops, so parse loops stay linear. Count fields are
// sanity-guarded against the section length before driving loops or
// allocations.
type byteCursor struct {
	data []byte
	off  int
	err  error
}

func (c *byteCursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

// bytes returns the next n bytes as a capacity-clipped subslice (no
// copy — in mapped mode these alias the mapping).
func (c *byteCursor) bytes(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || n > len(c.data)-c.off {
		c.fail("truncated (need %d bytes at offset %d of %d)", n, c.off, len(c.data))
		return nil
	}
	b := c.data[c.off : c.off+n : c.off+n]
	c.off += n
	return b
}

func (c *byteCursor) u8() uint8 {
	b := c.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *byteCursor) u32() uint32 {
	b := c.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *byteCursor) u64() uint64 {
	b := c.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (c *byteCursor) str() string {
	n := c.u32()
	if n > 1<<28 {
		c.fail("string length %d exceeds sanity bound", n)
		return ""
	}
	return string(c.bytes(int(n)))
}

// guardCount rejects a count field that could not possibly fit the
// section (every counted record takes at least one byte), bounding
// allocations and loops on corrupt input.
func (c *byteCursor) guardCount(n int, what string) {
	if n < 0 || n > len(c.data) {
		c.fail("%s count %d exceeds section size %d", what, n, len(c.data))
	}
}

// readCollectionV5 parses a v5 file held in data. With mf == nil
// (heap mode) block streams are copied out and validated and the
// forward index is materialized per document; with mf != nil (mapped
// mode) streams and the forward blob alias data — which then must be
// mf's mapping — validation is deferred to on-demand decode, and the
// index takes ownership of mf (released by Index.Close).
func readCollectionV5(data []byte, name string, mf *mappedFile) (*Collection, error) {
	alias := mf != nil
	if len(data) < v5HeaderSize+v5SectionCount*16 {
		return nil, fmt.Errorf("v5 header truncated (%d bytes)", len(data))
	}
	if string(data[:4]) != persistMagic {
		return nil, fmt.Errorf("bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != persistVersion {
		return nil, fmt.Errorf("unsupported version %d", v)
	}
	if sc := binary.LittleEndian.Uint32(data[8:]); sc < v5SectionCount {
		return nil, fmt.Errorf("section count %d below required %d", sc, v5SectionCount)
	}
	var secs [v5SectionCount][]byte
	for i := range secs {
		off := binary.LittleEndian.Uint64(data[v5HeaderSize+i*16:])
		ln := binary.LittleEndian.Uint64(data[v5HeaderSize+i*16+8:])
		if off > uint64(len(data)) || ln > uint64(len(data))-off {
			return nil, fmt.Errorf("section %d out of bounds (offset %d, length %d)", i, off, ln)
		}
		secs[i] = data[off : off+ln : off+ln]
	}
	if alias {
		// Paging advice for the mapping (no-op off unix): posting
		// blocks are entered at random dictionary-directed offsets, so
		// defeat sequential readahead there; the dictionary and
		// document tables are decoded eagerly below, so start faulting
		// them in now.
		adviseRandom(secs[v5SecBlob])
		adviseWillNeed(secs[v5SecDict])
		adviseWillNeed(secs[v5SecDocs])
	}

	// META.
	meta := &byteCursor{data: secs[v5SecMeta]}
	modelName := meta.str()
	shardCount := int(meta.u32())
	acplArmed := meta.u8()
	var acplRatio float64
	var acplMin int
	if acplArmed == 1 {
		acplRatio = math.Float64frombits(meta.u64())
		acplMin = int(meta.u32())
	} else if acplArmed != 0 && meta.err == nil {
		meta.fail("bad auto-compact flag %d", acplArmed)
	}
	if meta.err != nil {
		return nil, fmt.Errorf("META: %w", meta.err)
	}
	model, err := ModelByName(modelName)
	if err != nil {
		return nil, err
	}
	if shardCount < 1 || shardCount > maxShards {
		return nil, fmt.Errorf("shard count %d exceeds sanity bound", shardCount)
	}
	if acplArmed == 1 && (math.IsNaN(acplRatio) || acplRatio < 0 || acplRatio > 1) {
		return nil, fmt.Errorf("auto-compact ratio %v out of range", acplRatio)
	}
	ix := NewIndexShards(nil, shardCount)

	// DOCS: the document tables, with the same derived-state rebuild
	// (byExt, live counts, min length) as the legacy reader.
	docsC := &byteCursor{data: secs[v5SecDocs]}
	for si := 0; si < shardCount; si++ {
		sh := ix.shards[si]
		docCount := int(docsC.u32())
		docsC.guardCount(docCount, "doc")
		if docsC.err != nil {
			return nil, fmt.Errorf("DOCS: %w", docsC.err)
		}
		sh.docs = make([]docInfo, docCount)
		sh.deleted = make([]uint64, (docCount+63)/64)
		for local := range sh.docs {
			d := &sh.docs[local]
			d.extID = docsC.str()
			d.length = int(docsC.u32())
			del := docsC.u8()
			metaCount := int(docsC.u32())
			docsC.guardCount(metaCount, "meta")
			if docsC.err != nil {
				return nil, fmt.Errorf("DOCS: %w", docsC.err)
			}
			if metaCount > 0 {
				d.meta = make(map[string]string, metaCount)
				for j := 0; j < metaCount; j++ {
					k := docsC.str()
					d.meta[k] = docsC.str()
				}
			}
			if del != 0 {
				sh.setDeleted(uint32(local))
				ix.deadCount.Add(1)
			} else {
				ix.liveCount.Add(1)
				sh.byExt[d.extID] = uint32(local)
				if sh.liveDocs == 0 || d.length < sh.minLen {
					sh.minLen = d.length
				}
				sh.liveDocs++
				sh.totalLen += int64(d.length)
			}
		}
	}
	if docsC.err != nil {
		return nil, fmt.Errorf("DOCS: %w", docsC.err)
	}

	// DICT + BLOB: posting lists with stored statistics — no decode.
	blob := secs[v5SecBlob]
	dictC := &byteCursor{data: secs[v5SecDict]}
	fwdTerms := make([][]string, shardCount)
	for si := 0; si < shardCount; si++ {
		sh := ix.shards[si]
		termCount := int(dictC.u32())
		dictC.guardCount(termCount, "term")
		if dictC.err != nil {
			return nil, fmt.Errorf("DICT: %w", dictC.err)
		}
		names := make([]string, 0, termCount)
		for i := 0; i < termCount; i++ {
			term := dictC.str()
			df := dictC.u32()
			maxTF := dictC.u32()
			count := dictC.u32()
			posCount := dictC.u64()
			blockCount := int(dictC.u32())
			dictC.guardCount(blockCount, "block")
			if dictC.err != nil {
				return nil, fmt.Errorf("DICT: %w", dictC.err)
			}
			pl := &postingList{
				df:       int(df),
				maxTF:    int(maxTF),
				count:    int(count),
				posCount: int64(posCount),
				blocks:   make([]codec.Block, 0, blockCount),
			}
			for bi := 0; bi < blockCount; bi++ {
				n := dictC.u32()
				first := dictC.u32()
				last := dictC.u32()
				bmax := dictC.u32()
				dl := int(dictC.u32())
				tl := int(dictC.u32())
				pln := int(dictC.u32())
				boff := dictC.u64()
				if dictC.err != nil {
					return nil, fmt.Errorf("DICT: %w", dictC.err)
				}
				if n == 0 || n > codec.MaxBlockPostings {
					return nil, fmt.Errorf("term %q block %d: posting count %d exceeds sanity bound", term, bi, n)
				}
				if dl > 1<<28 || tl > 1<<28 || pln > 1<<28 {
					return nil, fmt.Errorf("term %q block %d: stream length exceeds sanity bound", term, bi)
				}
				total := dl + tl + pln
				if boff > uint64(len(blob)) || uint64(total) > uint64(len(blob))-boff {
					return nil, fmt.Errorf("term %q block %d: streams out of bounds", term, bi)
				}
				var streams []byte
				if alias {
					streams = blob[boff : int(boff)+total : int(boff)+total]
				} else {
					streams = make([]byte, total)
					copy(streams, blob[boff:int(boff)+total])
				}
				bl := codec.Block{
					N:        int(n),
					FirstDoc: first,
					LastDoc:  last,
					MaxTF:    bmax,
					Docs:     streams[:dl:dl],
					TFs:      streams[dl : dl+tl : dl+tl],
					Pos:      streams[dl+tl : total : total],
				}
				if !alias {
					if err := bl.Validate(); err != nil {
						return nil, fmt.Errorf("term %q block %d: %w", term, bi, err)
					}
				}
				pl.blocks = append(pl.blocks, bl)
			}
			if alias {
				pl.mapped = len(pl.blocks)
			}
			sh.dict[term] = pl
			names = append(names, term)
		}
		fwdTerms[si] = names
	}
	if dictC.err != nil {
		return nil, fmt.Errorf("DICT: %w", dictC.err)
	}

	// FWD: in heap mode, materialize each document's term list (sharing
	// the dictionary's string objects); in mapped mode, keep the offsets
	// and blob aliased and decode per document on demand (docTerms).
	fwdC := &byteCursor{data: secs[v5SecFwd]}
	for si := 0; si < shardCount; si++ {
		sh := ix.shards[si]
		docCount := int(fwdC.u32())
		blobLen := int(fwdC.u32())
		if fwdC.err == nil && docCount != len(sh.docs) {
			fwdC.fail("forward index covers %d docs, document table has %d", docCount, len(sh.docs))
		}
		offsBytes := fwdC.bytes((docCount + 1) * 4)
		fblob := fwdC.bytes(blobLen)
		if fwdC.err != nil {
			return nil, fmt.Errorf("FWD: %w", fwdC.err)
		}
		if alias {
			sh.fwdTerms = fwdTerms[si]
			sh.fwdOffs = offsBytes
			sh.fwdBlob = fblob
			sh.fwdDocs = docCount
			continue
		}
		names := fwdTerms[si]
		for local := 0; local < docCount; local++ {
			start := int(binary.LittleEndian.Uint32(offsBytes[local*4:]))
			end := int(binary.LittleEndian.Uint32(offsBytes[(local+1)*4:]))
			if start > end || end > len(fblob) {
				return nil, fmt.Errorf("FWD: doc %d segment out of bounds", local)
			}
			terms, err := decodeFwdTermList(fblob[start:end], names)
			if err != nil {
				return nil, fmt.Errorf("FWD: doc %d: %w", local, err)
			}
			sh.docs[local].terms = terms
		}
	}

	if acplArmed == 1 {
		ix.SetAutoCompact(acplRatio, acplMin)
	}
	if alias {
		ix.mapFile = mf
	}
	return &Collection{name: name, ix: ix, model: model}, nil
}

// decodeFwdTermList expands one document's forward-index segment
// (uvarint count + uvarint indexes) against the shard's term names.
func decodeFwdTermList(seg []byte, names []string) ([]string, error) {
	count, n := binary.Uvarint(seg)
	if n <= 0 {
		return nil, fmt.Errorf("bad forward term count")
	}
	seg = seg[n:]
	if count == 0 {
		return nil, nil
	}
	if count > uint64(len(seg)) {
		return nil, fmt.Errorf("forward term count %d exceeds segment", count)
	}
	out := make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		idx, n := binary.Uvarint(seg)
		if n <= 0 || idx >= uint64(len(names)) {
			return nil, fmt.Errorf("bad forward term reference")
		}
		seg = seg[n:]
		out = append(out, names[idx])
	}
	return out, nil
}

// fwdDocTerms decodes one document's term list from the mapped
// forward-index blob. The fwd fields are only ever set while the shard
// is being constructed at load and never mutated afterwards, so this
// needs no lock; malformed segments (impossible on files this code
// wrote) yield nil, which deleteLocked treats as an empty list.
func (sh *shard) fwdDocTerms(local int) []string {
	if local < 0 || local >= sh.fwdDocs {
		return nil
	}
	start := int(binary.LittleEndian.Uint32(sh.fwdOffs[local*4:]))
	end := int(binary.LittleEndian.Uint32(sh.fwdOffs[(local+1)*4:]))
	if start > end || end > len(sh.fwdBlob) {
		return nil
	}
	terms, err := decodeFwdTermList(sh.fwdBlob[start:end], sh.fwdTerms)
	if err != nil {
		return nil
	}
	return terms
}

// loadCollectionMode opens a collection file, dispatching on the
// header: v5 files parse from a byte slice — the whole file in heap,
// or a read-only mapping when mapped is true — while v1–v4 files go
// through the legacy stream reader (always heap; the next Save
// migrates them to v5). A pre-v5 file requested mapped simply loads on
// heap.
func loadCollectionMode(path string, mapped bool) (*Collection, error) {
	name := strings.TrimSuffix(filepath.Base(path), collExt)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("irs: load collection: %w", err)
	}
	var hdr [8]byte
	if n, _ := io.ReadFull(f, hdr[:]); n == 8 &&
		string(hdr[:4]) == persistMagic &&
		binary.LittleEndian.Uint32(hdr[4:]) >= persistVersion {
		f.Close()
		if mapped {
			mf, err := openMappedFile(path)
			if err != nil {
				return nil, fmt.Errorf("irs: load collection %q: %w", name, err)
			}
			c, err := readCollectionV5(mf.data, name, mf)
			if err != nil {
				mf.Close()
				return nil, fmt.Errorf("irs: load collection %q: %w", name, err)
			}
			return c, nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("irs: load collection %q: %w", name, err)
		}
		c, err := readCollectionV5(data, name, nil)
		if err != nil {
			return nil, fmt.Errorf("irs: load collection %q: %w", name, err)
		}
		return c, nil
	}
	defer f.Close()
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("irs: load collection %q: %w", name, err)
	}
	c, err := readCollection(bufio.NewReader(f), name)
	if err != nil {
		return nil, fmt.Errorf("irs: load collection %q: %w", name, err)
	}
	return c, nil
}

// OpenMapped opens a single collection file memory-mapped: posting
// blocks and the forward index serve directly from a read-only shared
// mapping of the file, so open time and heap footprint are
// proportional to the document and dictionary tables, never to the
// postings, and the OS page cache keeps only the working set resident.
// Mutations work normally (in-memory overlay over the mapped sealed
// blocks; the next Save or Compact folds them). Call Close on the
// returned collection after the last query to release the mapping.
// Pre-v5 files load on heap and are mapped from the next Save on.
func OpenMapped(path string) (*Collection, error) {
	return loadCollectionMode(path, true)
}

// Close syncs and closes the collection's write-ahead log (when it
// carries one) and releases the collection file mapping backing a
// mapped collection (no-op for heap collections). See Index.Close.
func (c *Collection) Close() error {
	werr := c.closeWAL()
	if err := c.ix.Close(); err != nil {
		return err
	}
	return werr
}
