package irs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/irs/analysis"
	"repro/internal/irs/codec"
)

// Posting records the occurrences of a term in one document.
type Posting struct {
	Doc       DocID
	Positions []uint32 // raw token positions, ascending
}

// TF returns the within-document term frequency.
func (p Posting) TF() int { return len(p.Positions) }

// postingList is the per-term entry of a shard dictionary: a run of
// sealed, immutable delta+varint blocks (codec.Block, local doc ids
// ascending) followed by an uncompressed tail buffer that absorbs
// appends and is sealed into a block each time it reaches
// codec.BlockSize postings. Postings are kept sorted by DocID across
// blocks and tail; deleted documents are filtered on read.
//
// Snapshot discipline: readers capture the blocks and tail slice
// headers under the shard lock. Sealed blocks are never mutated;
// appends write beyond every captured header's length; and seal()
// replaces the tail with a nil slice (fresh backing array on the next
// append) instead of truncating it, so a captured tail header keeps
// reading the postings it saw. The snapshot's doc-count horizon hides
// post-capture documents either way.
//
// maxTF is the term's score upper-bound statistic: the largest
// within-document frequency any live posting has carried. It is
// maintained incrementally — adds raise it, deletions leave it
// (stale-high is still a sound upper bound, it merely prunes less).
// Compact/Reshard recompute it exactly; a load rebuilds it from the
// file's postings (tombstoned ones included) and keeps a stored v3
// bound when higher, so a reloaded bound can stay stale-high until
// the next compaction. Top-k evaluation derives per-term score caps
// from it — and, per block, from the block's own MaxTF metadata
// (Block-Max-MaxScore-style pruning, see topk.go and cursor.go).
type postingList struct {
	blocks   []codec.Block // sealed runs, local doc ids, immutable
	tail     []Posting     // uncompressed append buffer (global DocIDs)
	count    int           // total postings across blocks + tail
	posCount int64         // total positions across blocks + tail
	df       int           // live document frequency (excludes tombstoned docs)
	maxTF    int           // upper bound on live within-document tf
	// mapped counts the leading blocks whose streams alias the
	// collection's read-only file mapping (v5 mapped load). Appends
	// only ever seal new blocks after them, so the mapped prefix is
	// stable; Compact/Reshard build fresh heap lists (mapped 0), and a
	// Save writes mapped streams back out verbatim — that is the fold
	// of mapped base plus in-memory overlay into one file.
	mapped int
}

// appendPosting adds one posting (ascending DocID order is the
// caller's invariant) and seals the tail into a block when it fills.
// Caller holds the shard write lock.
func (pl *postingList) appendPosting(id DocID, positions []uint32, nsh int) {
	pl.tail = append(pl.tail, Posting{Doc: id, Positions: positions})
	pl.count++
	pl.posCount += int64(len(positions))
	if len(pl.tail) >= codec.BlockSize {
		pl.seal(nsh)
	}
}

// compactSealMin is the smallest tail run Compact/Reshard seal into a
// block: under it, a block's fixed header costs more bytes than
// delta+varint compression saves over the flat form.
const compactSealMin = 4

// seal encodes the tail into a block. The tail is reset to nil — not
// truncated — so slice headers captured by snapshots keep reading the
// backing array they saw.
func (pl *postingList) seal(nsh int) {
	docs := make([]uint32, len(pl.tail))
	poss := make([][]uint32, len(pl.tail))
	for i, p := range pl.tail {
		docs[i] = uint32(int(p.Doc) / nsh)
		poss[i] = p.Positions
	}
	pl.blocks = append(pl.blocks, codec.Encode(docs, poss))
	pl.tail = nil
}

// forEach materializes every posting in order (blocks first, then
// tail), decoding block payloads; fn receives global DocIDs
// reconstructed from si/nsh. Block-decoded position slices are
// freshly allocated; tail positions are the index-owned originals.
// Decode errors cannot occur on engine-built blocks and persisted
// blocks are validated at load, so a corrupt block is skipped.
func (pl *postingList) forEach(si, nsh int, fn func(p Posting)) {
	var docs, tfs []uint32
	for bi := range pl.blocks {
		bl := &pl.blocks[bi]
		var err error
		if docs, err = bl.DecodeDocs(docs[:0]); err != nil {
			continue
		}
		if tfs, err = bl.DecodeTFs(tfs[:0]); err != nil {
			continue
		}
		poss, err := bl.DecodePositions(tfs)
		if err != nil {
			continue
		}
		for i, local := range docs {
			fn(Posting{Doc: globalID(local, si, nsh), Positions: poss[i]})
		}
	}
	for _, p := range pl.tail {
		fn(p)
	}
}

// docInfo is the per-document metadata record. terms is the forward
// index (the document's distinct terms), making Delete proportional
// to the document size instead of the dictionary size. Deletion
// state lives in the shard's tombstone bitmap, not here, so that
// snapshots can copy it cheaply.
type docInfo struct {
	extID  string
	length int // number of indexed terms (post-stopping)
	meta   map[string]string
	terms  []string
}

// shard is one independent partition of the inverted file. Documents
// are assigned to shards by a hash of their external id, so a
// document's postings, metadata and tombstone bit live entirely in
// one shard and every single-document mutation takes exactly one
// shard lock. A term's posting list is thereby partitioned across
// shards by containing document; corpus-level statistics (N, df,
// avgdl) are recombined across shards at read time, which keeps
// rankings independent of the shard count.
type shard struct {
	mu       sync.RWMutex
	dict     map[string]*postingList
	docs     []docInfo
	deleted  []uint64          // tombstone bitmap, parallel to docs
	byExt    map[string]uint32 // live docs only: extID -> local id
	liveDocs int
	totalLen int64  // sum of lengths of live docs
	version  uint64 // per-shard mutation counter (guarded by mu)
	// minLen is a lower bound on the indexed length of the shard's
	// live documents (length-normalized score caps divide by it).
	// Adds lower it, deletions leave it (stale-low is still a sound
	// lower bound); Compact/Reshard and load recompute it exactly.
	minLen int
	// Mapped forward index (v5 mapped load only): instead of
	// materializing every document's term list on the heap, docs loaded
	// from the file keep terms nil and decode their list on demand from
	// the mapped blob via fwdDocTerms. All four fields are set once at
	// load and never mutated, so they are read lock-free; documents
	// added after load carry heap term lists as usual.
	fwdTerms []string // this shard's dictionary terms, sorted (file order)
	fwdOffs  []byte   // (fwdDocs+1) little-endian u32 offsets into fwdBlob
	fwdBlob  []byte   // uvarint term-index lists, one segment per doc
	fwdDocs  int      // number of documents covered by the mapped blob
}

func newShard() *shard {
	return &shard{
		dict:  make(map[string]*postingList),
		byExt: make(map[string]uint32),
	}
}

// docTerms returns a document's distinct terms: the heap forward list
// when the doc carries one, else (docs loaded mapped) a decode from
// the mapped forward-index blob. Caller holds the shard lock for heap
// lists; the mapped fields need none (immutable after load).
func (sh *shard) docTerms(local int) []string {
	if local < 0 || local >= len(sh.docs) {
		return nil
	}
	if t := sh.docs[local].terms; t != nil {
		return t
	}
	return sh.fwdDocTerms(local)
}

func (sh *shard) isDeleted(local uint32) bool {
	return sh.deleted[local/64]&(1<<(local%64)) != 0
}

func (sh *shard) setDeleted(local uint32) {
	sh.deleted[local/64] |= 1 << (local % 64)
}

// fnv32a is FNV-1a over s — a fixed, platform-independent hash so
// document placement is stable across processes (the persistent
// format round-trips shard contents verbatim).
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func shardIndex(extID string, n int) int {
	if n == 1 {
		return 0
	}
	return int(fnv32a(extID) % uint32(n))
}

// ShardForExtID returns the shard a document registered under extID
// is (or would be) placed in by an index of the given shard count.
// Placement is a pure function of the external id, stable across
// processes and persistence cycles; operational tooling and
// experiments use it to reason about (or construct) shard skew.
func ShardForExtID(extID string, shards int) int {
	return shardIndex(extID, clampShards(shards))
}

// globalID composes the externally visible DocID from a shard-local
// id. With one shard this degenerates to the dense ascending ids of
// the unsharded index.
func globalID(local uint32, si, n int) DocID {
	return DocID(local)*DocID(n) + DocID(si)
}

// Index is an in-memory inverted file with positional postings,
// incremental add/delete, hash-sharded storage and snapshot-isolated
// reads. It is safe for concurrent use.
//
// Deletions tombstone the document and decrement df counters;
// postings stay in place until Compact rebuilds the shards. This
// mirrors the behaviour of file-based IR systems of the paper's era,
// where deletion was cheap but space was only reclaimed by
// re-indexing — the cost model the paper's Section 4.6 (update
// propagation) reasons about.
//
// Queries evaluate against a Snapshot (see Snapshot); the live
// accessors below serve administrative and experimental callers.
type Index struct {
	analyzer *analysis.Analyzer

	// commitMu orders multi-document commits against snapshot
	// acquisition: single-document writers, readers and snapshot
	// acquisition share it (RLock) and then take per-shard locks;
	// Batch, Compact, Reshard and Clear hold it exclusively so a
	// snapshot can never observe half of a batch.
	commitMu sync.RWMutex
	shards   []*shard
	// rebuildGen distinguishes states across Compact/Reshard/Clear,
	// whose fresh shards restart their per-shard counters (guarded by
	// commitMu).
	rebuildGen uint64

	version atomic.Uint64 // bumped on every mutation; keys model caches
	snaps   atomic.Uint64 // snapshot acquisitions (serving-layer stats)

	// liveCount/deadCount mirror the per-shard live/tombstone totals
	// as cheap atomics so the auto-compaction policy can test the
	// tombstone ratio after every mutation without touching a lock.
	liveCount atomic.Int64
	deadCount atomic.Int64

	// Background compaction policy (see compact.go). ratio is the
	// tombstone fraction that triggers a compaction (Float64bits; 0
	// disables), minDead the floor below which small indexes are left
	// alone.
	autoCompactRatio atomic.Uint64
	autoCompactMin   atomic.Int64
	compactRunning   atomic.Bool
	compactions      atomic.Uint64
	compactWG        sync.WaitGroup

	// sizeMu/sizeVer/sizeCache memoize ShardSizes (an O(dictionary)
	// walk) so polling /stats does not rescan an unchanged index.
	sizeMu      sync.Mutex
	sizeVer     uint64
	sizeCache   []int64
	flatCache   []int64 // flat-equivalent sizes (CompressionRatio numerator)
	mappedCache int64   // bytes of the total that alias the file mapping

	// mapFile is the read-only file mapping backing a mapped (v5)
	// load; nil for heap-resident indexes. Posting streams and the
	// forward-index blob alias it, so it is released only by Close.
	mapFile *mappedFile

	// staleMu/staleVer/staleCache memoize BoundsStaleness the same way
	// (an O(postings) walk per index version).
	staleMu    sync.Mutex
	staleVer   uint64
	staleCache float64
}

// NewIndex returns an empty single-shard index using the given
// analyzer (nil selects the default analyzer).
func NewIndex(a *analysis.Analyzer) *Index {
	return NewIndexShards(a, 1)
}

// maxShards bounds the shard count; the persistent format rejects
// anything above it on load, so creation clamps symmetrically.
const maxShards = 1 << 16

func clampShards(n int) int {
	if n < 1 {
		return 1
	}
	if n > maxShards {
		return maxShards
	}
	return n
}

// NewIndexShards returns an empty index partitioned into shards
// (clamped to [1, 65536]).
func NewIndexShards(a *analysis.Analyzer, shards int) *Index {
	if a == nil {
		a = analysis.NewAnalyzer()
	}
	shards = clampShards(shards)
	ix := &Index{analyzer: a, shards: make([]*shard, shards)}
	for i := range ix.shards {
		ix.shards[i] = newShard()
	}
	return ix
}

// Analyzer returns the index's analyzer.
func (ix *Index) Analyzer() *analysis.Analyzer { return ix.analyzer }

// ShardCount returns the number of shards.
func (ix *Index) ShardCount() int {
	ix.commitMu.RLock()
	defer ix.commitMu.RUnlock()
	return len(ix.shards)
}

// SnapshotCount returns how many read snapshots have been acquired
// over the index's lifetime (serving-layer statistics).
func (ix *Index) SnapshotCount() uint64 { return ix.snaps.Load() }

// AnalyzedDoc is a commit-ready document: the output of the analyze
// stage of the ingest pipeline. All text work (tokenization, stopping,
// stemming, per-term position grouping, metadata copying) happened at
// Analyze time, outside every index lock, so merging it into the index
// (Batch.AddAnalyzed / Batch.UpdateAnalyzed) only appends pre-built
// postings — the commit lock is held for pointer work, not for text
// analysis. An AnalyzedDoc is consumed by the commit that installs it
// (its position slices and metadata map become index-owned, immutable
// state); build a fresh one per commit.
type AnalyzedDoc struct {
	extID  string
	meta   map[string]string
	length int      // token count (post-stopping)
	terms  []string // distinct terms, first-occurrence order
	// positions[i] are the ascending token positions of terms[i].
	positions [][]uint32
}

// ExtID returns the external id the document will be registered under.
func (d *AnalyzedDoc) ExtID() string { return d.extID }

// Length returns the indexed token count.
func (d *AnalyzedDoc) Length() int { return d.length }

// TermCount returns the number of distinct terms.
func (d *AnalyzedDoc) TermCount() int { return len(d.terms) }

// Analyze runs the analysis pipeline on text and returns a
// commit-ready document. It takes no locks and may run concurrently
// with any index operation — the coupling layer's flush pipeline
// analyzes staged documents in parallel before entering the commit
// batch.
func (ix *Index) Analyze(extID, text string, meta map[string]string) *AnalyzedDoc {
	toks := ix.analyzer.Analyze(text)
	d := &AnalyzedDoc{extID: extID, length: len(toks)}
	idx := make(map[string]int, len(toks))
	for _, t := range toks {
		i, ok := idx[t.Term]
		if !ok {
			i = len(d.terms)
			idx[t.Term] = i
			d.terms = append(d.terms, t.Term)
			d.positions = append(d.positions, nil)
		}
		d.positions[i] = append(d.positions[i], uint32(t.Position))
	}
	if len(meta) > 0 {
		d.meta = make(map[string]string, len(meta))
		for k, v := range meta {
			d.meta[k] = v
		}
	}
	return d
}

// Add indexes text under the external id extID. It fails with
// ErrDuplicateDoc if extID is already present (and not deleted).
// Analysis runs before any lock is taken; only the posting merge
// holds the document's shard lock.
func (ix *Index) Add(extID, text string, meta map[string]string) (DocID, error) {
	return ix.AddAnalyzed(ix.Analyze(extID, text, meta))
}

// AddAnalyzed commits a pre-analyzed document.
func (ix *Index) AddAnalyzed(d *AnalyzedDoc) (DocID, error) {
	ix.commitMu.RLock()
	defer ix.commitMu.RUnlock()
	return ix.addAnalyzedDoc(d)
}

func (ix *Index) addAnalyzedDoc(d *AnalyzedDoc) (DocID, error) {
	si := shardIndex(d.extID, len(ix.shards))
	sh := ix.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.byExt[d.extID]; ok {
		return 0, fmt.Errorf("%w: %q", ErrDuplicateDoc, d.extID)
	}
	return ix.addAnalyzedLocked(sh, si, d), nil
}

func (ix *Index) addAnalyzedLocked(sh *shard, si int, d *AnalyzedDoc) DocID {
	local := uint32(len(sh.docs))
	id := globalID(local, si, len(ix.shards))
	for i, term := range d.terms {
		pl := sh.dict[term]
		if pl == nil {
			pl = &postingList{}
			sh.dict[term] = pl
		}
		pl.appendPosting(id, d.positions[i], len(ix.shards))
		pl.df++
		if tf := len(d.positions[i]); tf > pl.maxTF {
			pl.maxTF = tf
		}
	}
	sh.docs = append(sh.docs, docInfo{extID: d.extID, length: d.length, meta: d.meta, terms: d.terms})
	if int(local/64) >= len(sh.deleted) {
		sh.deleted = append(sh.deleted, 0)
	}
	sh.byExt[d.extID] = local
	if sh.liveDocs == 0 || d.length < sh.minLen {
		sh.minLen = d.length
	}
	sh.liveDocs++
	sh.totalLen += int64(d.length)
	sh.version++
	ix.liveCount.Add(1)
	ix.version.Add(1)
	return id
}

// Delete tombstones the document registered under extID.
func (ix *Index) Delete(extID string) error {
	err := ix.deleteShared(extID)
	ix.maybeAutoCompact()
	return err
}

// deleteShared runs deleteDoc under the shared commit lock; the
// deferred unlock keeps the lock panic-safe, and the caller checks
// the compaction policy once the lock is released.
func (ix *Index) deleteShared(extID string) error {
	ix.commitMu.RLock()
	defer ix.commitMu.RUnlock()
	return ix.deleteDoc(extID)
}

func (ix *Index) deleteDoc(extID string) error {
	sh := ix.shards[shardIndex(extID, len(ix.shards))]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return ix.deleteLocked(sh, extID)
}

func (ix *Index) deleteLocked(sh *shard, extID string) error {
	local, ok := sh.byExt[extID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchDoc, extID)
	}
	sh.setDeleted(local)
	sh.liveDocs--
	sh.totalLen -= int64(sh.docs[local].length)
	delete(sh.byExt, extID)
	// The forward index makes df maintenance proportional to the
	// document's own term count.
	for _, term := range sh.docTerms(int(local)) {
		if pl := sh.dict[term]; pl != nil {
			pl.df--
		}
	}
	sh.version++
	ix.liveCount.Add(-1)
	ix.deadCount.Add(1)
	ix.version.Add(1)
	return nil
}

// Update replaces the text of extID (delete + add under a fresh
// DocID). It fails if extID is unknown. Both steps hit the same
// shard — extID determines the shard — so the exchange is atomic
// under the shard lock. Analysis runs before any lock is taken.
func (ix *Index) Update(extID, text string, meta map[string]string) (DocID, error) {
	return ix.UpdateAnalyzed(ix.Analyze(extID, text, meta))
}

// UpdateAnalyzed replaces a document's text with a pre-analyzed
// replacement.
func (ix *Index) UpdateAnalyzed(d *AnalyzedDoc) (DocID, error) {
	id, err := ix.updateShared(d)
	ix.maybeAutoCompact()
	return id, err
}

// updateShared runs updateAnalyzedDoc under the shared commit lock
// (deferred unlock: panic-safe); compaction is checked by the caller
// after release.
func (ix *Index) updateShared(d *AnalyzedDoc) (DocID, error) {
	ix.commitMu.RLock()
	defer ix.commitMu.RUnlock()
	return ix.updateAnalyzedDoc(d)
}

func (ix *Index) updateAnalyzedDoc(d *AnalyzedDoc) (DocID, error) {
	si := shardIndex(d.extID, len(ix.shards))
	sh := ix.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := ix.deleteLocked(sh, d.extID); err != nil {
		return 0, err
	}
	return ix.addAnalyzedLocked(sh, si, d), nil
}

// Batch groups index mutations into one commit: no snapshot can be
// acquired while the batch runs, so when fn completes successfully a
// concurrent query ranks against either the pre- or the post-batch
// state, never a blend. The coupling layer uses it for
// update-propagation flushes (Section 4.6).
//
// There is no rollback: operations apply as they are issued, and if
// fn returns an error the ones already applied remain committed (each
// individually consistent). Callers must treat an error as having
// possibly changed the index — invalidate derived caches either way.
type Batch struct {
	ix *Index
}

// Batch runs fn holding the index's commit lock. The callback must
// only touch the index through the Batch receiver (calling Index
// methods from inside would self-deadlock) and must not evaluate
// queries. Keep the callback short: analysis belongs in front of the
// batch (Analyze + AddAnalyzed/UpdateAnalyzed), so the commit lock is
// held only while pre-built postings are merged.
func (ix *Index) Batch(fn func(b *Batch) error) error {
	err := ix.batchExclusive(fn)
	ix.maybeAutoCompact()
	return err
}

// batchExclusive runs fn under the exclusive commit lock; the
// deferred unlock keeps a panicking callback from wedging every
// future snapshot and commit, and the caller checks the compaction
// policy once the lock is released (Compact re-takes it).
func (ix *Index) batchExclusive(fn func(b *Batch) error) error {
	ix.commitMu.Lock()
	defer ix.commitMu.Unlock()
	return fn(&Batch{ix: ix})
}

// Add analyzes and indexes a document as part of the batch. The
// analysis runs under the commit lock; prefer Analyze before the
// batch plus AddAnalyzed inside it.
func (b *Batch) Add(extID, text string, meta map[string]string) (DocID, error) {
	return b.ix.addAnalyzedDoc(b.ix.Analyze(extID, text, meta))
}

// AddAnalyzed commits a pre-analyzed document as part of the batch.
func (b *Batch) AddAnalyzed(d *AnalyzedDoc) (DocID, error) {
	return b.ix.addAnalyzedDoc(d)
}

// Delete tombstones a document as part of the batch.
func (b *Batch) Delete(extID string) error { return b.ix.deleteDoc(extID) }

// Update analyzes and replaces a document's text as part of the
// batch; prefer Analyze before the batch plus UpdateAnalyzed inside.
func (b *Batch) Update(extID, text string, meta map[string]string) (DocID, error) {
	return b.ix.updateAnalyzedDoc(b.ix.Analyze(extID, text, meta))
}

// UpdateAnalyzed replaces a document's text with a pre-analyzed
// replacement as part of the batch.
func (b *Batch) UpdateAnalyzed(d *AnalyzedDoc) (DocID, error) {
	return b.ix.updateAnalyzedDoc(d)
}

// Has reports whether a live document is registered under extID.
func (b *Batch) Has(extID string) bool {
	sh := b.ix.shards[shardIndex(extID, len(b.ix.shards))]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.byExt[extID]
	return ok
}

// Postings returns the live postings of term across all shards,
// ascending by DocID. The returned slice is a copy and safe to
// retain. term is passed through the analyzer's term normalization.
func (ix *Index) Postings(term string) []Posting {
	return ix.postingsRaw(ix.analyzer.AnalyzeTerm(term))
}

// postingsRaw returns live postings for an already-normalized
// dictionary term. Internal callers that iterate a dictionary must
// use this instead of Postings to avoid double normalization
// (stemming a stem can change it: "databas" -> "databa").
func (ix *Index) postingsRaw(term string) []Posting {
	ix.commitMu.RLock()
	defer ix.commitMu.RUnlock()
	var out []Posting
	for si, sh := range ix.shards {
		sh.mu.RLock()
		if pl := sh.dict[term]; pl != nil {
			pl.forEach(si, len(ix.shards), func(p Posting) {
				local := uint32(int(p.Doc) / len(ix.shards))
				if !sh.isDeleted(local) {
					out = append(out, p)
				}
			})
		}
		sh.mu.RUnlock()
	}
	if len(ix.shards) > 1 {
		sort.Slice(out, func(i, j int) bool { return out[i].Doc < out[j].Doc })
	}
	return out
}

// DF returns the live document frequency of term (summed across
// shards).
func (ix *Index) DF(term string) int {
	t := ix.analyzer.AnalyzeTerm(term)
	ix.commitMu.RLock()
	defer ix.commitMu.RUnlock()
	df := 0
	for _, sh := range ix.shards {
		sh.mu.RLock()
		if pl := sh.dict[t]; pl != nil {
			df += pl.df
		}
		sh.mu.RUnlock()
	}
	return df
}

// DocCount returns the number of live documents.
func (ix *Index) DocCount() int {
	ix.commitMu.RLock()
	defer ix.commitMu.RUnlock()
	n := 0
	for _, sh := range ix.shards {
		sh.mu.RLock()
		n += sh.liveDocs
		sh.mu.RUnlock()
	}
	return n
}

// AvgDocLen returns the mean indexed length of live documents.
func (ix *Index) AvgDocLen() float64 {
	ix.commitMu.RLock()
	defer ix.commitMu.RUnlock()
	docs, total := 0, int64(0)
	for _, sh := range ix.shards {
		sh.mu.RLock()
		docs += sh.liveDocs
		total += sh.totalLen
		sh.mu.RUnlock()
	}
	if docs == 0 {
		return 0
	}
	return float64(total) / float64(docs)
}

// locate resolves a global DocID to its metadata record, copied out
// under the shard lock (the docs slice header is rewritten by
// concurrent appends, so it must not be dereferenced after the lock
// drops); ok is false when the id is out of range or tombstoned.
// Caller holds commitMu read.
func (ix *Index) locate(id DocID) (d docInfo, ok bool) {
	n := len(ix.shards)
	sh := ix.shards[int(id)%n]
	local := uint32(int(id) / n)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if int(local) >= len(sh.docs) || sh.isDeleted(local) {
		return docInfo{}, false
	}
	return sh.docs[local], true
}

// DocLen returns the indexed length of document id (0 if deleted or
// out of range).
func (ix *Index) DocLen(id DocID) int {
	ix.commitMu.RLock()
	defer ix.commitMu.RUnlock()
	d, ok := ix.locate(id)
	if !ok {
		return 0
	}
	return d.length
}

// ExtID returns the external id of a live document.
func (ix *Index) ExtID(id DocID) (string, bool) {
	ix.commitMu.RLock()
	defer ix.commitMu.RUnlock()
	d, ok := ix.locate(id)
	if !ok {
		return "", false
	}
	return d.extID, true
}

// Meta returns a metadata value of a live document.
func (ix *Index) Meta(id DocID, key string) (string, bool) {
	ix.commitMu.RLock()
	defer ix.commitMu.RUnlock()
	d, ok := ix.locate(id)
	if !ok {
		return "", false
	}
	v, ok := d.meta[key]
	return v, ok
}

// DocID returns the id a live document is registered under.
func (ix *Index) DocID(extID string) (DocID, bool) {
	ix.commitMu.RLock()
	defer ix.commitMu.RUnlock()
	si := shardIndex(extID, len(ix.shards))
	sh := ix.shards[si]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	local, ok := sh.byExt[extID]
	if !ok {
		return 0, false
	}
	return globalID(local, si, len(ix.shards)), true
}

// HasDoc reports whether a live document is registered under extID.
func (ix *Index) HasDoc(extID string) bool {
	_, ok := ix.DocID(extID)
	return ok
}

// LiveDocIDs returns the ids of all live documents, ascending.
func (ix *Index) LiveDocIDs() []DocID {
	ix.commitMu.RLock()
	defer ix.commitMu.RUnlock()
	var out []DocID
	for si, sh := range ix.shards {
		sh.mu.RLock()
		for local := range sh.docs {
			if !sh.isDeleted(uint32(local)) {
				out = append(out, globalID(uint32(local), si, len(ix.shards)))
			}
		}
		sh.mu.RUnlock()
	}
	if len(ix.shards) > 1 {
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	return out
}

// TermCount returns the number of distinct terms with at least one
// live posting (a term partitioned across shards counts once).
func (ix *Index) TermCount() int {
	ix.commitMu.RLock()
	defer ix.commitMu.RUnlock()
	if len(ix.shards) == 1 {
		sh := ix.shards[0]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		n := 0
		for _, pl := range sh.dict {
			if pl.df > 0 {
				n++
			}
		}
		return n
	}
	seen := make(map[string]bool)
	for _, sh := range ix.shards {
		sh.mu.RLock()
		for term, pl := range sh.dict {
			if pl.df > 0 {
				seen[term] = true
			}
		}
		sh.mu.RUnlock()
	}
	return len(seen)
}

// SizeBytes reports the in-memory footprint of the inverted file:
// dictionary strings plus the compressed byte streams of every sealed
// block and the flat representation of the (≤ codec.BlockSize-sized)
// uncompressed tails. Tombstoned postings take space until Compact
// reclaims them, matching in-memory reality.
func (ix *Index) SizeBytes() int64 {
	var n int64
	for _, s := range ix.ShardSizes() {
		n += s
	}
	return n
}

// flatSizeBytes is what SizeBytes would report if every posting were
// stored uncompressed (8 bytes per posting plus 4 per position) — the
// pre-block representation, kept as the numerator of
// CompressionRatio.
func (pl *postingList) flatSizeBytes(term string) int64 {
	return int64(len(term)) + 8 + 8*int64(pl.count) + 4*pl.posCount
}

// sizeBytes reports a posting list's total footprint and, of that,
// the bytes whose streams alias the collection's file mapping rather
// than the Go heap (the leading pl.mapped blocks' streams; their
// 16-byte metadata headers are heap-resident Block structs).
func (pl *postingList) sizeBytes(term string) (total, mapped int64) {
	n := int64(len(term)) + 8
	for bi := range pl.blocks {
		sz := int64(pl.blocks[bi].SizeBytes())
		n += sz
		if bi < pl.mapped {
			mapped += sz - 16
		}
	}
	n += 8 * int64(cap(pl.tail))
	for _, p := range pl.tail {
		n += 4 * int64(cap(p.Positions))
	}
	return n, mapped
}

// ShardSizes returns the SizeBytes contribution of each shard
// (serving-layer statistics). The walk is memoized per index
// version, so repeated polling of an unchanged index is cheap.
func (ix *Index) ShardSizes() []int64 {
	sizes, _, _ := ix.shardSizes()
	return sizes
}

// MappedBytes reports how many of SizeBytes' bytes live in the
// read-only file mapping instead of the Go heap: 0 for heap-resident
// indexes, and shrinking toward 0 on a mapped index as compactions
// fold mapped blocks into heap storage.
func (ix *Index) MappedBytes() int64 {
	_, _, mapped := ix.shardSizes()
	return mapped
}

// HeapBytes is SizeBytes minus MappedBytes: the part of the inverted
// file that actually occupies Go heap. Capacity planning for mapped
// serving should watch this (plus the OS page cache), not SizeBytes.
func (ix *Index) HeapBytes() int64 {
	sizes, _, mapped := ix.shardSizes()
	var n int64
	for _, s := range sizes {
		n += s
	}
	return n - mapped
}

// CompressionRatio reports how much smaller the block-compressed
// posting storage is than the flat Posting representation it
// replaced: flat bytes / actual bytes, ≥ 1 in practice, 1 for an
// empty index.
func (ix *Index) CompressionRatio() float64 {
	sizes, flat, _ := ix.shardSizes()
	var n, f int64
	for si := range sizes {
		n += sizes[si]
		f += flat[si]
	}
	if n == 0 {
		return 1
	}
	return float64(f) / float64(n)
}

func (ix *Index) shardSizes() (sizes, flat []int64, mapped int64) {
	ix.sizeMu.Lock()
	defer ix.sizeMu.Unlock()
	// The version is read before the scan: a mutation racing the scan
	// at worst re-computes on the next call.
	v := ix.version.Load()
	if ix.sizeCache != nil && ix.sizeVer == v {
		return append([]int64(nil), ix.sizeCache...), append([]int64(nil), ix.flatCache...), ix.mappedCache
	}
	ix.commitMu.RLock()
	out := make([]int64, len(ix.shards))
	fout := make([]int64, len(ix.shards))
	var mout int64
	for si, sh := range ix.shards {
		sh.mu.RLock()
		for term, pl := range sh.dict {
			sz, msz := pl.sizeBytes(term)
			out[si] += sz
			mout += msz
			fout[si] += pl.flatSizeBytes(term)
		}
		sh.mu.RUnlock()
	}
	ix.commitMu.RUnlock()
	ix.sizeVer = v
	ix.sizeCache = out
	ix.flatCache = fout
	ix.mappedCache = mout
	return append([]int64(nil), out...), append([]int64(nil), fout...), mout
}

// BoundsStaleness gauges how loose the maintained per-term max-tf
// bounds have become: 0 when every bound equals its term's true live
// maximum within-document frequency, approaching 1 as deletions leave
// stale-high bounds behind (the bounds stay sound — they only prune
// less). Computed as 1 − Σ(true live max tf) / Σ(bound) over terms
// with live postings; 0 for an empty index. Compact, Reshard and
// policy-triggered background compactions reset it to 0 by
// recomputing every bound exactly. The O(postings) walk is memoized
// per index version, so /stats polling of an unchanged index is
// cheap.
func (ix *Index) BoundsStaleness() float64 {
	// Bounds only go stale through deletions: adds maintain maxTF
	// exactly, rebuilds recompute it, and a stale-high bound restored
	// from disk implies the file carried the tombstones that made it
	// stale. So with zero tombstones the gauge is 0 without any walk —
	// the steady-ingest case a polling dashboard hits every second.
	if ix.deadCount.Load() == 0 {
		return 0
	}
	ix.staleMu.Lock()
	defer ix.staleMu.Unlock()
	// As in ShardSizes, the version is read before the scan: a racing
	// mutation at worst re-computes on the next call.
	v := ix.version.Load()
	if ix.staleVer == v {
		return ix.staleCache
	}
	// Capture the shard slice and walk each shard under its own read
	// lock only: holding commitMu across the whole walk would stall
	// batch commits for the scan's duration, and a rebuild racing the
	// walk merely leaves it reading the old generation — fine for a
	// gauge (the version bump makes the next call recompute).
	ix.commitMu.RLock()
	shards := ix.shards
	ix.commitMu.RUnlock()
	var boundSum, liveSum int64
	var docs, tfs []uint32
	for _, sh := range shards {
		sh.mu.RLock()
		for _, pl := range sh.dict {
			if pl.df <= 0 {
				continue
			}
			// The walk needs doc ids and frequencies only, so blocks
			// decode two of their three streams — positions stay
			// compressed.
			liveMax := 0
			for bi := range pl.blocks {
				bl := &pl.blocks[bi]
				var err error
				if docs, err = bl.DecodeDocs(docs[:0]); err != nil {
					continue
				}
				if tfs, err = bl.DecodeTFs(tfs[:0]); err != nil {
					continue
				}
				if int(bl.MaxTF) <= liveMax {
					continue
				}
				for i, local := range docs {
					if tf := int(tfs[i]); tf > liveMax && !sh.isDeleted(local) {
						liveMax = tf
					}
				}
			}
			for _, p := range pl.tail {
				if tf := p.TF(); tf > liveMax && !sh.isDeleted(uint32(int(p.Doc)/len(shards))) {
					liveMax = tf
				}
			}
			boundSum += int64(pl.maxTF)
			liveSum += int64(liveMax)
		}
		sh.mu.RUnlock()
	}
	st := 0.0
	if boundSum > 0 {
		st = 1 - float64(liveSum)/float64(boundSum)
	}
	ix.staleVer = v
	ix.staleCache = st
	return st
}

// Compact rebuilds the index without tombstones, renumbering
// documents densely and sealing every posting run — including the
// sub-block remainder incremental appends leave as a flat tail —
// into compressed blocks (the reseal is where SizeBytes visibly
// drops). External ids are preserved. Both manual
// and policy-triggered compactions run through here and count toward
// Compactions().
func (ix *Index) Compact() {
	ix.rebuild(0)
	ix.compactions.Add(1)
}

// Reshard rebuilds the index into n shards (also compacting; n is
// clamped to [1, 65536]). It is the migration path for v1
// single-shard collection files: load, Reshard, Save. DocIDs are
// renumbered, as with Compact.
func (ix *Index) Reshard(n int) {
	ix.rebuild(clampShards(n))
}

// rebuild redistributes all live documents into n fresh shards
// (n == 0 keeps the current count). Existing snapshots keep reading
// the structures they captured.
func (ix *Index) rebuild(n int) {
	ix.commitMu.Lock()
	defer ix.commitMu.Unlock()
	oldN := len(ix.shards)
	if n == 0 {
		n = oldN
	}
	newShards := make([]*shard, n)
	for i := range newShards {
		newShards[i] = newShard()
	}
	// Pass 1: remap live documents in ascending global-id order so
	// relative document order (and, with one shard, the dense
	// renumbering of the unsharded Compact) is preserved.
	type liveDoc struct {
		global DocID
		si     int
		local  uint32
	}
	var lives []liveDoc
	for si, sh := range ix.shards {
		for local := range sh.docs {
			if !sh.isDeleted(uint32(local)) {
				lives = append(lives, liveDoc{globalID(uint32(local), si, oldN), si, uint32(local)})
			}
		}
	}
	sort.Slice(lives, func(i, j int) bool { return lives[i].global < lives[j].global })
	remap := make(map[DocID]DocID, len(lives))
	for _, ld := range lives {
		d := ix.shards[ld.si].docs[ld.local]
		// Docs loaded mapped carry no heap term list; materialize it
		// from the old shard's mapped forward index now, because the
		// rebuilt shards have no mapped blob for docTerms to fall back
		// on. (The decoded terms are heap strings — nothing in the new
		// shards aliases the mapping.)
		if d.terms == nil {
			d.terms = ix.shards[ld.si].fwdDocTerms(int(ld.local))
		}
		tsi := shardIndex(d.extID, n)
		tsh := newShards[tsi]
		local := uint32(len(tsh.docs))
		remap[ld.global] = globalID(local, tsi, n)
		tsh.docs = append(tsh.docs, d)
		if int(local/64) >= len(tsh.deleted) {
			tsh.deleted = append(tsh.deleted, 0)
		}
		tsh.byExt[d.extID] = local
		if tsh.liveDocs == 0 || d.length < tsh.minLen {
			tsh.minLen = d.length
		}
		tsh.liveDocs++
		tsh.totalLen += int64(d.length)
	}
	// Pass 2: decode and re-bucket live postings per target shard,
	// copying position slices tightly so retained capacity is
	// reclaimed, then re-encode each term's run into fresh blocks.
	collected := make([]map[string][]Posting, n)
	for i := range collected {
		collected[i] = make(map[string][]Posting)
	}
	for si, sh := range ix.shards {
		for term, pl := range sh.dict {
			pl.forEach(si, oldN, func(p Posting) {
				nid, ok := remap[p.Doc]
				if !ok {
					return
				}
				positions := make([]uint32, len(p.Positions))
				copy(positions, p.Positions)
				tsi := int(nid) % n
				collected[tsi][term] = append(collected[tsi][term], Posting{Doc: nid, Positions: positions})
			})
		}
	}
	for tsi, terms := range collected {
		tsh := newShards[tsi]
		for term, ps := range terms {
			sort.Slice(ps, func(i, j int) bool { return ps[i].Doc < ps[j].Doc })
			// Only live postings reach the rebuilt shards, so df is the
			// run length and the bound tightens back to the exact live
			// maximum.
			npl := &postingList{df: len(ps)}
			for _, p := range ps {
				npl.appendPosting(p.Doc, p.Positions, n)
				if tf := len(p.Positions); tf > npl.maxTF {
					npl.maxTF = tf
				}
			}
			// Compaction reseals the remainder incremental appends left
			// as a flat tail into a final short block (the codec accepts
			// any 1..BlockSize run), so a compacted list is delta+varint
			// compressed end to end; later appends simply start a fresh
			// tail after it. Very short runs stay flat — below a few
			// postings the fixed block header outweighs the savings.
			if len(npl.tail) >= compactSealMin {
				npl.seal(n)
			}
			tsh.dict[term] = npl
		}
	}
	ix.shards = newShards
	ix.rebuildGen++
	ix.liveCount.Store(int64(len(lives)))
	ix.deadCount.Store(0)
	ix.version.Add(1)
}

// Clear removes all documents and terms, keeping the shard count.
func (ix *Index) Clear() {
	ix.commitMu.Lock()
	defer ix.commitMu.Unlock()
	newShards := make([]*shard, len(ix.shards))
	for i := range newShards {
		newShards[i] = newShard()
	}
	ix.shards = newShards
	ix.rebuildGen++
	ix.liveCount.Store(0)
	ix.deadCount.Store(0)
	ix.version.Add(1)
}

// Version returns a counter that changes on every mutation of the
// index. Retrieval models use it to invalidate derived caches
// (e.g. document norms).
func (ix *Index) Version() uint64 { return ix.version.Load() }

// Close releases the file mapping behind a mapped (v5) load, first
// waiting out any background compaction. It is a no-op for
// heap-resident indexes and safe to call more than once, but the
// caller must ensure no queries or snapshots are still in flight —
// posting blocks alias the mapping, and touching one after Close
// faults. The serving layer tears down in that order: stop accepting
// requests, drain, then Close.
func (ix *Index) Close() error {
	ix.WaitCompaction()
	mf := ix.mapFile
	ix.mapFile = nil
	return mf.Close()
}
