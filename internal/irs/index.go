package irs

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/irs/analysis"
)

// Posting records the occurrences of a term in one document.
type Posting struct {
	Doc       DocID
	Positions []uint32 // raw token positions, ascending
}

// TF returns the within-document term frequency.
func (p Posting) TF() int { return len(p.Positions) }

// postingList is the per-term entry of the dictionary. Postings are
// kept sorted by DocID; deleted documents are filtered on read.
type postingList struct {
	postings []Posting
	df       int // live document frequency (excludes tombstoned docs)
}

// docInfo is the per-document metadata record. terms is the forward
// index (the document's distinct terms), making Delete proportional
// to the document size instead of the dictionary size.
type docInfo struct {
	extID   string
	length  int // number of indexed terms (post-stopping)
	deleted bool
	meta    map[string]string
	terms   []string
}

// Index is an in-memory inverted file with positional postings and
// incremental add/delete. It is safe for concurrent use.
//
// Deletions tombstone the document and decrement df counters;
// postings stay in place until Compact rebuilds the dictionary.
// This mirrors the behaviour of file-based IR systems of the
// paper's era, where deletion was cheap but space was only
// reclaimed by re-indexing — the cost model the paper's Section 4.6
// (update propagation) reasons about.
type Index struct {
	mu       sync.RWMutex
	analyzer *analysis.Analyzer
	dict     map[string]*postingList
	docs     []docInfo
	byExt    map[string]DocID
	liveDocs int
	totalLen int64  // sum of lengths of live docs
	version  uint64 // bumped on every mutation; used for model caches
}

// NewIndex returns an empty index using the given analyzer (nil
// selects the default analyzer).
func NewIndex(a *analysis.Analyzer) *Index {
	if a == nil {
		a = analysis.NewAnalyzer()
	}
	return &Index{
		analyzer: a,
		dict:     make(map[string]*postingList),
		byExt:    make(map[string]DocID),
	}
}

// Analyzer returns the index's analyzer.
func (ix *Index) Analyzer() *analysis.Analyzer { return ix.analyzer }

// Add indexes text under the external id extID. It fails with
// ErrDuplicateDoc if extID is already present (and not deleted).
func (ix *Index) Add(extID, text string, meta map[string]string) (DocID, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if old, ok := ix.byExt[extID]; ok && !ix.docs[old].deleted {
		return 0, fmt.Errorf("%w: %q", ErrDuplicateDoc, extID)
	}
	return ix.addLocked(extID, text, meta), nil
}

func (ix *Index) addLocked(extID, text string, meta map[string]string) DocID {
	id := DocID(len(ix.docs))
	toks := ix.analyzer.Analyze(text)
	// Group positions per term.
	perTerm := make(map[string][]uint32)
	for _, t := range toks {
		perTerm[t.Term] = append(perTerm[t.Term], uint32(t.Position))
	}
	terms := make([]string, 0, len(perTerm))
	for term, positions := range perTerm {
		pl := ix.dict[term]
		if pl == nil {
			pl = &postingList{}
			ix.dict[term] = pl
		}
		pl.postings = append(pl.postings, Posting{Doc: id, Positions: positions})
		pl.df++
		terms = append(terms, term)
	}
	var metaCopy map[string]string
	if len(meta) > 0 {
		metaCopy = make(map[string]string, len(meta))
		for k, v := range meta {
			metaCopy[k] = v
		}
	}
	ix.docs = append(ix.docs, docInfo{extID: extID, length: len(toks), meta: metaCopy, terms: terms})
	ix.byExt[extID] = id
	ix.liveDocs++
	ix.totalLen += int64(len(toks))
	ix.version++
	return id
}

// Delete tombstones the document registered under extID.
func (ix *Index) Delete(extID string) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.deleteLocked(extID)
}

func (ix *Index) deleteLocked(extID string) error {
	id, ok := ix.byExt[extID]
	if !ok || ix.docs[id].deleted {
		return fmt.Errorf("%w: %q", ErrNoSuchDoc, extID)
	}
	ix.docs[id].deleted = true
	ix.version++
	ix.liveDocs--
	ix.totalLen -= int64(ix.docs[id].length)
	delete(ix.byExt, extID)
	// The forward index makes df maintenance proportional to the
	// document's own term count.
	for _, term := range ix.docs[id].terms {
		if pl := ix.dict[term]; pl != nil {
			pl.df--
		}
	}
	return nil
}

// Update replaces the text of extID (delete + add under a fresh
// DocID). It fails if extID is unknown.
func (ix *Index) Update(extID, text string, meta map[string]string) (DocID, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if err := ix.deleteLocked(extID); err != nil {
		return 0, err
	}
	return ix.addLocked(extID, text, meta), nil
}

// Postings returns the live postings of term (already normalized by
// the caller or not — term is passed through the analyzer's term
// normalization). The returned slice is a copy and safe to retain.
func (ix *Index) Postings(term string) []Posting {
	return ix.postingsRaw(ix.analyzer.AnalyzeTerm(term))
}

// postingsRaw returns live postings for an already-normalized
// dictionary term. Internal callers that iterate the dictionary must
// use this instead of Postings to avoid double normalization
// (stemming a stem can change it: "databas" -> "databa").
func (ix *Index) postingsRaw(term string) []Posting {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	pl := ix.dict[term]
	if pl == nil {
		return nil
	}
	out := make([]Posting, 0, pl.df)
	for _, p := range pl.postings {
		if !ix.docs[p.Doc].deleted {
			out = append(out, p)
		}
	}
	return out
}

// DF returns the live document frequency of term.
func (ix *Index) DF(term string) int {
	t := ix.analyzer.AnalyzeTerm(term)
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if pl := ix.dict[t]; pl != nil {
		return pl.df
	}
	return 0
}

// DocCount returns the number of live documents.
func (ix *Index) DocCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.liveDocs
}

// AvgDocLen returns the mean indexed length of live documents.
func (ix *Index) AvgDocLen() float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.liveDocs == 0 {
		return 0
	}
	return float64(ix.totalLen) / float64(ix.liveDocs)
}

// DocLen returns the indexed length of document id (0 if deleted or
// out of range).
func (ix *Index) DocLen(id DocID) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if int(id) >= len(ix.docs) || ix.docs[id].deleted {
		return 0
	}
	return ix.docs[id].length
}

// ExtID returns the external id of a live document.
func (ix *Index) ExtID(id DocID) (string, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if int(id) >= len(ix.docs) || ix.docs[id].deleted {
		return "", false
	}
	return ix.docs[id].extID, true
}

// Meta returns a metadata value of a live document.
func (ix *Index) Meta(id DocID, key string) (string, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if int(id) >= len(ix.docs) || ix.docs[id].deleted {
		return "", false
	}
	v, ok := ix.docs[id].meta[key]
	return v, ok
}

// HasDoc reports whether a live document is registered under extID.
func (ix *Index) HasDoc(extID string) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	id, ok := ix.byExt[extID]
	return ok && !ix.docs[id].deleted
}

// LiveDocIDs returns the ids of all live documents, ascending.
func (ix *Index) LiveDocIDs() []DocID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]DocID, 0, ix.liveDocs)
	for i := range ix.docs {
		if !ix.docs[i].deleted {
			out = append(out, DocID(i))
		}
	}
	return out
}

// TermCount returns the number of distinct terms with at least one
// live posting.
func (ix *Index) TermCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := 0
	for _, pl := range ix.dict {
		if pl.df > 0 {
			n++
		}
	}
	return n
}

// SizeBytes estimates the size of the inverted file: dictionary
// strings plus one 4-byte doc id and 4 bytes per position per
// posting (the layout persist.go actually writes). Tombstoned
// postings count until Compact, matching on-disk reality.
func (ix *Index) SizeBytes() int64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var n int64
	for term, pl := range ix.dict {
		n += int64(len(term)) + 8
		for _, p := range pl.postings {
			n += 8 + int64(4*len(p.Positions))
		}
	}
	return n
}

// Compact rebuilds the index without tombstones, renumbering
// documents densely. External ids are preserved.
func (ix *Index) Compact() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	remap := make(map[DocID]DocID, ix.liveDocs)
	newDocs := make([]docInfo, 0, ix.liveDocs)
	for i := range ix.docs {
		if ix.docs[i].deleted {
			continue
		}
		remap[DocID(i)] = DocID(len(newDocs))
		newDocs = append(newDocs, ix.docs[i])
	}
	newDict := make(map[string]*postingList, len(ix.dict))
	for term, pl := range ix.dict {
		var np []Posting
		for _, p := range pl.postings {
			if nid, ok := remap[p.Doc]; ok {
				np = append(np, Posting{Doc: nid, Positions: p.Positions})
			}
		}
		if len(np) > 0 {
			sort.Slice(np, func(i, j int) bool { return np[i].Doc < np[j].Doc })
			newDict[term] = &postingList{postings: np, df: len(np)}
		}
	}
	ix.docs = newDocs
	ix.dict = newDict
	ix.byExt = make(map[string]DocID, len(newDocs))
	for i := range newDocs {
		ix.byExt[newDocs[i].extID] = DocID(i)
	}
	ix.version++
}

// Clear removes all documents and terms.
func (ix *Index) Clear() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.dict = make(map[string]*postingList)
	ix.docs = nil
	ix.byExt = make(map[string]DocID)
	ix.liveDocs = 0
	ix.totalLen = 0
	ix.version++
}

// Version returns a counter that changes on every mutation of the
// index. Retrieval models use it to invalidate derived caches
// (e.g. document norms).
func (ix *Index) Version() uint64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.version
}
