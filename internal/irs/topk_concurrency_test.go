package irs

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/irs/analysis"
)

// TestConcurrentSearchTopKUnderMutation is the race-enabled property
// test for cross-shard threshold sharing: many concurrent top-k
// evaluations — each sharing one threshold across its shard scans —
// must return exactly the exhaustive prefix of the snapshot they
// pinned, while adds, deletes, updates, batch commits and
// tombstone-ratio-triggered background compactions churn the index
// underneath. Scoring the exhaustive ranking and the top-k against
// the *same* snapshot makes the comparison exact even mid-mutation.
func TestConcurrentSearchTopKUnderMutation(t *testing.T) {
	c := &Collection{
		name:  "conc",
		ix:    NewIndexShards(analysis.NewAnalyzer(analysis.WithoutStemming(), analysis.WithStopwords(nil)), 4),
		model: InferenceNet{},
	}
	docText := func(r *lcg) string {
		length := 5 + r.intn(40)
		words := make([]string, length)
		for j := range words {
			words[j] = topkVocab[r.intn(len(topkVocab))]
		}
		return strings.Join(words, " ")
	}
	r := &lcg{s: 99}
	const initial = 150
	for i := 0; i < initial; i++ {
		if _, err := c.ix.Add(fmt.Sprintf("doc%05d", i), docText(r), nil); err != nil {
			t.Fatal(err)
		}
	}
	// A tight policy so background compactions actually fire while the
	// readers run (the deletes below push the tombstone ratio over it).
	c.ix.SetAutoCompact(0.1, 8)

	queries := []string{
		"www nii retrieval",
		"#sum(www nii sgml video audio digital)",
		"#wsum(2 www -1 filler)",
		"#max(www nii database)",
	}
	parsed := make([]*Node, len(queries))
	for i, q := range queries {
		n, err := ParseQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		parsed[i] = n
	}

	// Mutator: single-document churn plus periodic multi-document
	// batches (the flush shape the coupling layer commits), running
	// until every reader has finished.
	stop := make(chan struct{})
	var mutWG sync.WaitGroup
	mutWG.Add(1)
	go func() {
		defer mutWG.Done()
		mr := &lcg{s: 7}
		next := initial
		for {
			select {
			case <-stop:
				return
			default:
			}
			switch mr.intn(4) {
			case 0:
				c.ix.Add(fmt.Sprintf("doc%05d", next), docText(mr), nil)
				next++
			case 1:
				c.ix.Delete(fmt.Sprintf("doc%05d", mr.intn(next)))
			case 2:
				c.ix.Update(fmt.Sprintf("doc%05d", mr.intn(next)), docText(mr), nil)
			case 3:
				c.ix.Batch(func(b *Batch) error {
					for j := 0; j < 4; j++ {
						b.Add(fmt.Sprintf("doc%05d", next), docText(mr), nil)
						next++
					}
					b.Delete(fmt.Sprintf("doc%05d", mr.intn(next)))
					return nil
				})
			}
		}
	}()

	const readers, iters = 4, 40
	errs := make(chan error, readers)
	var readWG sync.WaitGroup
	for g := 0; g < readers; g++ {
		readWG.Add(1)
		go func(g int) {
			defer readWG.Done()
			for i := 0; i < iters; i++ {
				n := parsed[(g+i)%len(parsed)]
				k := []int{1, 5, 10}[i%3]
				snap := c.Snapshot()
				full := exhaustiveRanking(snap, c.Model(), n)
				res := c.Model().EvalTopK(snap, n, k)
				want := full
				if len(want) > k {
					want = want[:k]
				}
				if len(res.Hits) != len(want) {
					errs <- fmt.Errorf("reader %d iter %d: %d hits, want %d", g, i, len(res.Hits), len(want))
					return
				}
				for j := range want {
					if res.Hits[j].Ext != want[j].Ext || res.Hits[j].Score != want[j].Score {
						errs <- fmt.Errorf("reader %d iter %d rank %d: (%s,%v) != (%s,%v)",
							g, i, j, res.Hits[j].Ext, res.Hits[j].Score, want[j].Ext, want[j].Score)
						return
					}
				}
			}
		}(g)
	}
	readWG.Wait()
	close(stop)
	mutWG.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	c.ix.WaitCompaction()
	if c.ix.Compactions() == 0 {
		t.Log("no background compaction fired during the run (timing-dependent; correctness still verified)")
	}
}
