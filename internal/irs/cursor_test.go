package irs

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// cursorPostings walks every shard's leaf view for term through the
// block cursor API and merges the hits in global DocID order — the
// cursor-side equivalent of Index.Postings over compressed storage.
func cursorPostings(s *Snapshot, term string) []Posting {
	var out []Posting
	for si := range s.shards {
		lv := s.leafViewShard(si, term)
		for c := lv.newCursor(); c.valid(); c.next() {
			out = append(out, Posting{Doc: c.doc(), Positions: c.positions()})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Doc < out[j].Doc })
	return out
}

// Property: after any interleaving of adds, updates, deletes and
// compactions, cursor iteration over block storage returns exactly
// the flat Postings() view for every term — same documents, same
// frequencies, same positions — regardless of how the postings ended
// up split between sealed blocks and the flat tail.
func TestCursorMatchesPostingsProperty(t *testing.T) {
	vocab := make([]string, 12)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("t%d", i)
	}
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			for seed := int64(0); seed < 12; seed++ {
				rng := rand.New(rand.NewSource(seed))
				ix := NewIndexShards(newTestIndex().analyzer, shards)
				live := map[string]bool{}
				// Bulk preload so the common terms seal full blocks
				// naturally (df > codec.BlockSize per shard), then a
				// random op tape exercising every mutation plus
				// compaction (which reseals tails into short blocks).
				for i := 0; i < 300; i++ {
					doc := fmt.Sprintf("p%03d", i)
					text := fmt.Sprintf("t0 t1 t%d t%d t0", rng.Intn(12), rng.Intn(12))
					if _, err := ix.Add(doc, text, nil); err != nil {
						t.Fatal(err)
					}
					live[doc] = true
				}
				randText := func() string {
					var b strings.Builder
					for j, n := 0, 1+rng.Intn(24); j < n; j++ {
						b.WriteString(vocab[rng.Intn(len(vocab))])
						b.WriteByte(' ')
					}
					return b.String()
				}
				for op := 0; op < 120; op++ {
					doc := fmt.Sprintf("p%03d", rng.Intn(340))
					switch {
					case rng.Intn(20) == 0:
						ix.Compact()
					case live[doc] && rng.Intn(3) == 0:
						if err := ix.Delete(doc); err != nil {
							t.Fatal(err)
						}
						delete(live, doc)
					case live[doc]:
						if _, err := ix.Update(doc, randText(), nil); err != nil {
							t.Fatal(err)
						}
					default:
						if _, err := ix.Add(doc, randText(), nil); err != nil {
							t.Fatal(err)
						}
						live[doc] = true
					}
				}
				snap := ix.Snapshot()
				for _, term := range vocab {
					want := ix.Postings(term)
					got := cursorPostings(snap, term)
					if len(got) != len(want) {
						t.Fatalf("seed %d term %s: cursor %d postings, flat %d", seed, term, len(got), len(want))
					}
					for i := range want {
						if got[i].Doc != want[i].Doc || got[i].TF() != want[i].TF() {
							t.Fatalf("seed %d term %s posting %d: cursor (%d,tf=%d), flat (%d,tf=%d)",
								seed, term, i, got[i].Doc, got[i].TF(), want[i].Doc, want[i].TF())
						}
						for j := range want[i].Positions {
							if got[i].Positions[j] != want[i].Positions[j] {
								t.Fatalf("seed %d term %s doc %d: positions diverge", seed, term, want[i].Doc)
							}
						}
					}
				}
			}
		})
	}
}

// Property: the compiled bound path's merge-join probe agrees with the
// view's binary-search lookup on every live document, probed in the
// ascending order the scheduler uses.
func TestLeafProbeMatchesFind(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ix := NewIndexShards(newTestIndex().analyzer, 2)
	for i := 0; i < 400; i++ {
		text := "probe"
		if rng.Intn(3) == 0 {
			text = "probe probe probe other"
		}
		if rng.Intn(4) == 0 {
			text = "other"
		}
		ix.Add(fmt.Sprintf("d%03d", i), text, nil)
	}
	for i := 0; i < 60; i++ {
		ix.Delete(fmt.Sprintf("d%03d", rng.Intn(400)))
	}
	ix.Compact() // seal tails so probes cross block boundaries
	ix.Add("late1", "probe", nil)
	ix.Add("late2", "probe probe", nil) // fresh flat tail behind the blocks
	snap := ix.Snapshot()
	for si := range snap.shards {
		lv := snap.leafViewShard(si, "probe")
		p := leafProbe{lv: lv}
		for _, d := range snap.liveDocIDsShard(si) {
			local := uint32(int(d) / len(snap.shards))
			gotBI, gotOK := p.blockAt(local)
			wantBI, _, wantOK := lv.find(local)
			if gotOK != wantOK || (gotOK && gotBI != wantBI) {
				t.Fatalf("shard %d doc %d: probe (%d,%v), find (%d,%v)", si, d, gotBI, gotOK, wantBI, wantOK)
			}
		}
	}
}

// TestEvalTopKBlockSkipping drives the inference net over a corpus
// shaped like the block-max benchmark (compacted, hot high-tf tail)
// and asserts the block-max mode actually leaves compressed blocks
// undecoded while returning the identical ranking as the whole-list
// mode and the exhaustive evaluation.
func TestEvalTopKBlockSkipping(t *testing.T) {
	c := benchTopKBlockMaxCollection()
	snap := c.Snapshot()
	n, err := ParseQuery(benchTopKQuery)
	if err != nil {
		t.Fatal(err)
	}
	defer SetTopKBlockMax(true)
	m := InferenceNet{}

	SetTopKBlockMax(false)
	base := m.EvalTopK(snap, n, 10)
	SetTopKBlockMax(true)
	bm := m.EvalTopK(snap, n, 10)

	if bm.BlocksSkipped == 0 {
		t.Error("block-max evaluation decoded every block (BlocksSkipped = 0)")
	}
	if bm.PostingsDecoded == 0 {
		t.Error("block-max evaluation reported zero decoded postings on a scoring query")
	}
	// Decode-count *savings* are corpus-shape dependent (EXP-S5 gates
	// them on a corpus built for it); here we only require that
	// skipping happens and the ranking contract holds.
	if len(bm.Hits) != len(base.Hits) {
		t.Fatalf("hit counts diverge: block-max %d, baseline %d", len(bm.Hits), len(base.Hits))
	}
	full := c.SearchNodeAt(snap, n)
	for i := range bm.Hits {
		if bm.Hits[i] != base.Hits[i] {
			t.Errorf("hit %d diverges between modes: %+v vs %+v", i, bm.Hits[i], base.Hits[i])
		}
		if bm.Hits[i].Ext != full[i].ExtID || bm.Hits[i].Score != full[i].Score {
			t.Errorf("hit %d diverges from exhaustive: %+v vs %+v", i, bm.Hits[i], full[i])
		}
	}
}
