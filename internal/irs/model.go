package irs

import (
	"math"
	"sort"
)

// Model is an exchangeable retrieval paradigm. The paper motivates
// the loose coupling precisely with this exchangeability:
// "Exchangeability enables us to use any kind of retrieval system:
// e.g. boolean retrieval systems, vector retrieval systems, and
// systems based on probability" (Section 3). Eval scores the parsed
// query against a point-in-time snapshot of the index and returns
// retrieval status values for every matching document. Evaluating
// against a Snapshot (instead of the live index) gives every query
// a stable view while propagation proceeds concurrently, and lets
// models fan work out across shards.
type Model interface {
	// Name identifies the paradigm ("inference-net", "vector",
	// "boolean").
	Name() string
	// Eval returns document scores for the query. Documents with no
	// query evidence are omitted.
	Eval(s *Snapshot, root *Node) map[DocID]float64
	// EvalTopK returns exactly the first k entries (bit-identical
	// scores) of the ranking Eval would produce under the canonical
	// order (score descending, external id ascending), without
	// materializing the full result: shards stream candidates through
	// bounded heaps and skip candidates whose score upper bound
	// cannot reach the current k-th score (see topk.go). k <= 0
	// returns an empty result.
	EvalTopK(s *Snapshot, root *Node, k int) TopKResult
}

// InferenceNet is the probabilistic model of INQUERY ([CCH92]):
// Bayesian-inference-network retrieval with tf.idf belief estimation
// and document-length normalization. Term beliefs are
//
//	bel(t,d) = b + (1-b) · T · I
//	T        = tf / (tf + 0.5 + 1.5·(dl/avgdl))
//	I        = log((N+0.5)/df) / log(N+1)
//
// with default belief b = 0.4 for absent evidence. Operators combine
// beliefs: #and is the product, #or the complement-product, #not the
// complement, #sum the mean, #wsum the weighted mean, #max the
// maximum. This reproduces the document-length dependence the paper
// points out in Section 4.5.2 ("INQUERY, for example, takes into
// account the IRS documents' length in order to compute IRS values").
//
// Statistics (N, df, avgdl) are always corpus-global — shard-local
// evidence is combined with global frequencies, so rankings are
// independent of the shard count.
type InferenceNet struct {
	// DefaultBelief is the belief assigned to a document for a term
	// it does not contain; nil selects INQUERY's 0.4. It is a pointer
	// so that an explicit 0.0 belief is expressible (a plain float64
	// zero value is indistinguishable from "unset" and used to be
	// silently replaced by 0.4): InferenceNet{DefaultBelief: irs.Belief(0)}.
	DefaultBelief *float64
}

// Belief returns a pointer to b, for configuring InferenceNet's
// DefaultBelief in a composite literal.
func Belief(b float64) *float64 { return &b }

// Name implements Model.
func (m InferenceNet) Name() string { return "inference-net" }

func (m InferenceNet) defaultBelief() float64 {
	if m.DefaultBelief == nil {
		return 0.4
	}
	return *m.DefaultBelief
}

// Eval implements Model. Candidate documents are scored shard by
// shard in parallel; each shard's candidates carry their evidence
// locally, so no cross-shard synchronization happens during scoring.
func (m InferenceNet) Eval(s *Snapshot, root *Node) map[DocID]float64 {
	if root == nil {
		return nil
	}
	ctx := newEvalContext(s, root)
	b := m.defaultBelief()
	perShard := make([]map[DocID]float64, s.ShardCount())
	s.parShards(func(si int) {
		cands := ctx.candidates[si]
		out := make(map[DocID]float64, len(cands))
		for _, d := range cands {
			out[d] = m.belief(ctx, root, d, b)
		}
		perShard[si] = out
	})
	return mergeShardScores(perShard)
}

// EvalTopK implements Model. Per shard, every candidate's score upper
// bound combines per-leaf belief caps — computed from the shard's
// incrementally maintained max-tf and min-document-length bounds, the
// leaf's exact global df and the corpus statistics — through the
// operator tree by interval arithmetic; runTopK then drives the
// two-phase, threshold-sharing scan over the bounded candidates.
// Survivors are scored by the same belief walk Eval uses, so the
// returned prefix is bit-identical to the exhaustive ranking.
func (m InferenceNet) EvalTopK(s *Snapshot, root *Node, k int) TopKResult {
	if root == nil || k <= 0 {
		return TopKResult{}
	}
	ctx := newEvalContext(s, root)
	b := m.defaultBelief()
	plan := newBoundPlan(root, b)
	return runTopK(s, k, func(si int) shardTask {
		t := shardTask{
			ids:     ctx.candidates[si],
			scoreOf: func(d DocID) float64 { return m.belief(ctx, root, d, b) },
		}
		if len(ctx.candidates[si]) > k {
			sb := newShardBounds(plan, b, func(leaf *Node) interval {
				return m.leafCap(ctx, s, si, leaf, b)
			})
			masks := plan.evidenceMasks(func(leaf *Node, emit func(DocID)) {
				if st := ctx.leafStat(leaf); st != nil {
					for d := range st.tf[si] {
						emit(d)
					}
				}
			})
			t.boundOf = func(d DocID) float64 { return sb.bound(masks[d]) }
		}
		return t
	}, snapExt(s))
}

// leafCap returns the belief interval of one leaf for documents of
// shard si: [b, cap] where cap is the belief of a hypothetical
// document carrying the shard's maximum possible tf at the shard's
// minimum live length — an upper bound because the belief formula is
// increasing in tf and decreasing in dl. Leaves without evidence in
// the shard (or with zero global df) contribute exactly b.
func (m InferenceNet) leafCap(ctx *evalContext, s *Snapshot, si int, leaf *Node, b float64) interval {
	st := ctx.leafStat(leaf)
	capTF := leafMaxTFShard(s, si, leaf)
	if leaf.Kind == NodeSyn {
		// Synonym counts sum over members.
		for _, c := range leaf.Children {
			if c.Kind == NodeTerm {
				capTF += s.termMaxTFShard(si, s.analyzer.AnalyzeTerm(c.Term))
			}
		}
	}
	if st == nil || st.df == 0 || capTF == 0 {
		return pointIv(b)
	}
	dl := float64(s.minDocLenShard(si))
	avg := ctx.avgdl
	if avg == 0 {
		avg = 1
	}
	// Mirrors termBelief exactly, so a document that actually attains
	// (capTF, minLen) computes the identical float value.
	t := float64(capTF) / (float64(capTF) + 0.5 + 1.5*dl/avg)
	i := math.Log((float64(ctx.n)+0.5)/float64(st.df)) / math.Log(float64(ctx.n)+1)
	return interval{b, b + (1-b)*t*i}
}

// leafStat resolves a leaf node to the statistics the context
// gathered for it (nil for a leaf with no entry).
func (ctx *evalContext) leafStat(leaf *Node) *termStat {
	switch leaf.Kind {
	case NodeTerm:
		return ctx.termStats[leaf.Term]
	case NodePhrase:
		return ctx.phraseStats[leaf]
	case NodeSyn:
		return ctx.synStats[leaf]
	}
	return nil
}

func (m InferenceNet) belief(ctx *evalContext, n *Node, d DocID, b float64) float64 {
	switch n.Kind {
	case NodeTerm:
		return m.termBelief(ctx, ctx.termStats[n.Term], d, b)
	case NodePhrase:
		return m.termBelief(ctx, ctx.phraseStats[n], d, b)
	case NodeSyn:
		return m.termBelief(ctx, ctx.synStats[n], d, b)
	case NodeAnd:
		p := 1.0
		for _, c := range n.Children {
			p *= m.belief(ctx, c, d, b)
		}
		return p
	case NodeOr:
		q := 1.0
		for _, c := range n.Children {
			q *= 1 - m.belief(ctx, c, d, b)
		}
		return 1 - q
	case NodeNot:
		return 1 - m.belief(ctx, n.Children[0], d, b)
	case NodeSum:
		s := 0.0
		for _, c := range n.Children {
			s += m.belief(ctx, c, d, b)
		}
		return s / float64(len(n.Children))
	case NodeWSum:
		s, w := 0.0, 0.0
		for i, c := range n.Children {
			s += n.Weights[i] * m.belief(ctx, c, d, b)
			w += n.Weights[i]
		}
		if w == 0 {
			return b
		}
		return s / w
	case NodeMax:
		best := 0.0
		for _, c := range n.Children {
			if v := m.belief(ctx, c, d, b); v > best {
				best = v
			}
		}
		return best
	}
	return b
}

func (m InferenceNet) termBelief(ctx *evalContext, st *termStat, d DocID, b float64) float64 {
	if st == nil || st.df == 0 {
		return b
	}
	tf, ok := st.tfOf(ctx.s, d)
	if !ok {
		return b
	}
	dl := float64(ctx.s.DocLen(d))
	avg := ctx.avgdl
	if avg == 0 {
		avg = 1
	}
	t := float64(tf) / (float64(tf) + 0.5 + 1.5*dl/avg)
	i := math.Log((float64(ctx.n)+0.5)/float64(st.df)) / math.Log(float64(ctx.n)+1)
	return b + (1-b)*t*i
}

// termStat is the evidence a leaf (term, phrase or synonym group)
// contributes: per-shard per-document frequencies and the global
// document frequency.
type termStat struct {
	tf []map[DocID]int // indexed by shard
	df int             // summed across shards
}

func newTermStat(nshards int) *termStat {
	return &termStat{tf: make([]map[DocID]int, nshards)}
}

// tfOf looks up the within-document frequency of d (whose evidence
// lives in d's shard).
func (st *termStat) tfOf(s *Snapshot, d DocID) (int, bool) {
	m := st.tf[s.shardOf(d)]
	if m == nil {
		return 0, false
	}
	v, ok := m[d]
	return v, ok
}

// sumDF folds the per-shard frequencies into the global df.
func (st *termStat) sumDF() {
	st.df = 0
	for _, m := range st.tf {
		st.df += len(m)
	}
}

// evalContext gathers leaf statistics once per query evaluation.
// Gathering fans out across shards; the per-shard candidate lists
// drive the parallel scoring pass.
type evalContext struct {
	s           *Snapshot
	n           int
	avgdl       float64
	candidates  [][]DocID // per shard, ascending
	termStats   map[string]*termStat
	phraseStats map[*Node]*termStat
	synStats    map[*Node]*termStat
}

func newEvalContext(s *Snapshot, root *Node) *evalContext {
	nsh := s.ShardCount()
	ctx := &evalContext{
		s:           s,
		n:           s.DocCount(),
		avgdl:       s.AvgDocLen(),
		candidates:  make([][]DocID, nsh),
		termStats:   make(map[string]*termStat),
		phraseStats: make(map[*Node]*termStat),
		synStats:    make(map[*Node]*termStat),
	}
	// Collect the distinct leaves first so the per-shard gather can
	// fill disjoint slots without synchronization.
	var termLeaves []string
	var phraseLeaves, synLeaves []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		switch n.Kind {
		case NodeTerm:
			if _, ok := ctx.termStats[n.Term]; ok {
				return
			}
			ctx.termStats[n.Term] = newTermStat(nsh)
			termLeaves = append(termLeaves, n.Term)
		case NodePhrase:
			ctx.phraseStats[n] = newTermStat(nsh)
			phraseLeaves = append(phraseLeaves, n)
		case NodeSyn:
			ctx.synStats[n] = newTermStat(nsh)
			synLeaves = append(synLeaves, n)
		default:
			for _, c := range n.Children {
				walk(c)
			}
		}
	}
	walk(root)
	s.parShards(func(si int) {
		cands := make(map[DocID]bool)
		for _, raw := range termLeaves {
			tf := make(map[DocID]int)
			for _, p := range s.postingsShard(si, s.analyzer.AnalyzeTerm(raw)) {
				tf[p.Doc] = p.TF()
				cands[p.Doc] = true
			}
			ctx.termStats[raw].tf[si] = tf
		}
		for _, n := range phraseLeaves {
			tf := phraseStatShard(s, si, n)
			for d := range tf {
				cands[d] = true
			}
			ctx.phraseStats[n].tf[si] = tf
		}
		for _, n := range synLeaves {
			tf := make(map[DocID]int)
			for _, c := range n.Children {
				if c.Kind != NodeTerm {
					continue
				}
				for _, p := range s.postingsShard(si, s.analyzer.AnalyzeTerm(c.Term)) {
					tf[p.Doc] += p.TF()
					cands[p.Doc] = true
				}
			}
			ctx.synStats[n].tf[si] = tf
		}
		ids := make([]DocID, 0, len(cands))
		for d := range cands {
			ids = append(ids, d)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		ctx.candidates[si] = ids
	})
	for _, st := range ctx.termStats {
		st.sumDF()
	}
	for _, st := range ctx.phraseStats {
		st.sumDF()
	}
	for _, st := range ctx.synStats {
		st.sumDF()
	}
	return ctx
}

// phraseStatShard computes per-document frequencies of an
// exact-adjacency phrase within one shard using positional
// intersection (a document's positions live entirely in its shard).
func phraseStatShard(s *Snapshot, si int, n *Node) map[DocID]int {
	tf := make(map[DocID]int)
	if len(n.Children) == 0 {
		return tf
	}
	// Positions per document per term of the phrase.
	perTerm := make([]map[DocID][]uint32, len(n.Children))
	for i, c := range n.Children {
		perTerm[i] = make(map[DocID][]uint32)
		for _, p := range s.postingsShard(si, s.analyzer.AnalyzeTerm(c.Term)) {
			perTerm[i][p.Doc] = p.Positions
		}
	}
	for d, first := range perTerm[0] {
		count := 0
		for _, start := range first {
			ok := true
			for i := 1; i < len(perTerm); i++ {
				if !containsPos(perTerm[i][d], start+uint32(i)) {
					ok = false
					break
				}
			}
			if ok {
				count++
			}
		}
		if count > 0 {
			tf[d] = count
		}
	}
	return tf
}

func containsPos(positions []uint32, want uint32) bool {
	i := sort.Search(len(positions), func(i int) bool { return positions[i] >= want })
	return i < len(positions) && positions[i] == want
}

// mergeShardScores folds per-shard score maps (over disjoint
// document sets) into one result map.
func mergeShardScores(perShard []map[DocID]float64) map[DocID]float64 {
	if len(perShard) == 1 {
		return perShard[0]
	}
	total := 0
	for _, m := range perShard {
		total += len(m)
	}
	out := make(map[DocID]float64, total)
	for _, m := range perShard {
		for d, v := range m {
			out[d] = v
		}
	}
	return out
}
