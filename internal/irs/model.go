package irs

import (
	"math"
	"sort"
)

// Model is an exchangeable retrieval paradigm. The paper motivates
// the loose coupling precisely with this exchangeability:
// "Exchangeability enables us to use any kind of retrieval system:
// e.g. boolean retrieval systems, vector retrieval systems, and
// systems based on probability" (Section 3). Eval scores the parsed
// query against the index and returns retrieval status values for
// every matching document.
type Model interface {
	// Name identifies the paradigm ("inference-net", "vector",
	// "boolean").
	Name() string
	// Eval returns document scores for the query. Documents with no
	// query evidence are omitted.
	Eval(ix *Index, root *Node) map[DocID]float64
}

// InferenceNet is the probabilistic model of INQUERY ([CCH92]):
// Bayesian-inference-network retrieval with tf.idf belief estimation
// and document-length normalization. Term beliefs are
//
//	bel(t,d) = b + (1-b) · T · I
//	T        = tf / (tf + 0.5 + 1.5·(dl/avgdl))
//	I        = log((N+0.5)/df) / log(N+1)
//
// with default belief b = 0.4 for absent evidence. Operators combine
// beliefs: #and is the product, #or the complement-product, #not the
// complement, #sum the mean, #wsum the weighted mean, #max the
// maximum. This reproduces the document-length dependence the paper
// points out in Section 4.5.2 ("INQUERY, for example, takes into
// account the IRS documents' length in order to compute IRS values").
type InferenceNet struct {
	// DefaultBelief is the belief assigned to a document for a term
	// it does not contain. INQUERY used 0.4; the zero value selects
	// 0.4 as well.
	DefaultBelief float64
}

// Name implements Model.
func (m InferenceNet) Name() string { return "inference-net" }

func (m InferenceNet) defaultBelief() float64 {
	if m.DefaultBelief == 0 {
		return 0.4
	}
	return m.DefaultBelief
}

// Eval implements Model.
func (m InferenceNet) Eval(ix *Index, root *Node) map[DocID]float64 {
	if root == nil {
		return nil
	}
	ctx := newEvalContext(ix, root)
	out := make(map[DocID]float64, len(ctx.candidates))
	b := m.defaultBelief()
	for _, d := range ctx.candidates {
		out[d] = m.belief(ctx, root, d, b)
	}
	return out
}

func (m InferenceNet) belief(ctx *evalContext, n *Node, d DocID, b float64) float64 {
	switch n.Kind {
	case NodeTerm:
		return m.termBelief(ctx, ctx.termStats[n.Term], d, b)
	case NodePhrase:
		return m.termBelief(ctx, ctx.phraseStats[n], d, b)
	case NodeSyn:
		return m.termBelief(ctx, ctx.synStats[n], d, b)
	case NodeAnd:
		p := 1.0
		for _, c := range n.Children {
			p *= m.belief(ctx, c, d, b)
		}
		return p
	case NodeOr:
		q := 1.0
		for _, c := range n.Children {
			q *= 1 - m.belief(ctx, c, d, b)
		}
		return 1 - q
	case NodeNot:
		return 1 - m.belief(ctx, n.Children[0], d, b)
	case NodeSum:
		s := 0.0
		for _, c := range n.Children {
			s += m.belief(ctx, c, d, b)
		}
		return s / float64(len(n.Children))
	case NodeWSum:
		s, w := 0.0, 0.0
		for i, c := range n.Children {
			s += n.Weights[i] * m.belief(ctx, c, d, b)
			w += n.Weights[i]
		}
		if w == 0 {
			return b
		}
		return s / w
	case NodeMax:
		best := 0.0
		for _, c := range n.Children {
			if v := m.belief(ctx, c, d, b); v > best {
				best = v
			}
		}
		return best
	}
	return b
}

func (m InferenceNet) termBelief(ctx *evalContext, st *termStat, d DocID, b float64) float64 {
	if st == nil || st.df == 0 {
		return b
	}
	tf, ok := st.tf[d]
	if !ok {
		return b
	}
	dl := float64(ctx.ix.DocLen(d))
	avg := ctx.avgdl
	if avg == 0 {
		avg = 1
	}
	t := float64(tf) / (float64(tf) + 0.5 + 1.5*dl/avg)
	i := math.Log((float64(ctx.n)+0.5)/float64(st.df)) / math.Log(float64(ctx.n)+1)
	return b + (1-b)*t*i
}

// termStat is the evidence a leaf (term, phrase or synonym group)
// contributes: per-document frequency and document frequency.
type termStat struct {
	tf map[DocID]int
	df int
}

// evalContext gathers leaf statistics once per query evaluation.
type evalContext struct {
	ix          *Index
	n           int
	avgdl       float64
	candidates  []DocID
	termStats   map[string]*termStat
	phraseStats map[*Node]*termStat
	synStats    map[*Node]*termStat
}

func newEvalContext(ix *Index, root *Node) *evalContext {
	ctx := &evalContext{
		ix:          ix,
		n:           ix.DocCount(),
		avgdl:       ix.AvgDocLen(),
		termStats:   make(map[string]*termStat),
		phraseStats: make(map[*Node]*termStat),
		synStats:    make(map[*Node]*termStat),
	}
	candidates := make(map[DocID]bool)
	var walk func(n *Node)
	walk = func(n *Node) {
		switch n.Kind {
		case NodeTerm:
			if _, ok := ctx.termStats[n.Term]; ok {
				return
			}
			st := &termStat{tf: make(map[DocID]int)}
			for _, p := range ix.Postings(n.Term) {
				st.tf[p.Doc] = p.TF()
				candidates[p.Doc] = true
			}
			st.df = len(st.tf)
			ctx.termStats[n.Term] = st
		case NodePhrase:
			st := phraseStat(ix, n)
			for d := range st.tf {
				candidates[d] = true
			}
			ctx.phraseStats[n] = st
		case NodeSyn:
			st := &termStat{tf: make(map[DocID]int)}
			for _, c := range n.Children {
				if c.Kind != NodeTerm {
					continue
				}
				for _, p := range ix.Postings(c.Term) {
					st.tf[p.Doc] += p.TF()
					candidates[p.Doc] = true
				}
			}
			st.df = len(st.tf)
			ctx.synStats[n] = st
		default:
			for _, c := range n.Children {
				walk(c)
			}
		}
	}
	walk(root)
	ctx.candidates = make([]DocID, 0, len(candidates))
	for d := range candidates {
		ctx.candidates = append(ctx.candidates, d)
	}
	sort.Slice(ctx.candidates, func(i, j int) bool { return ctx.candidates[i] < ctx.candidates[j] })
	return ctx
}

// phraseStat computes per-document frequencies of an exact-adjacency
// phrase using positional intersection.
func phraseStat(ix *Index, n *Node) *termStat {
	st := &termStat{tf: make(map[DocID]int)}
	if len(n.Children) == 0 {
		return st
	}
	// Positions per document per term of the phrase.
	perTerm := make([]map[DocID][]uint32, len(n.Children))
	for i, c := range n.Children {
		perTerm[i] = make(map[DocID][]uint32)
		for _, p := range ix.Postings(c.Term) {
			perTerm[i][p.Doc] = p.Positions
		}
	}
	for d, first := range perTerm[0] {
		count := 0
		for _, start := range first {
			ok := true
			for i := 1; i < len(perTerm); i++ {
				if !containsPos(perTerm[i][d], start+uint32(i)) {
					ok = false
					break
				}
			}
			if ok {
				count++
			}
		}
		if count > 0 {
			st.tf[d] = count
		}
	}
	st.df = len(st.tf)
	return st
}

func containsPos(positions []uint32, want uint32) bool {
	i := sort.Search(len(positions), func(i int) bool { return positions[i] >= want })
	return i < len(positions) && positions[i] == want
}
