package irs

import (
	"math"
	"sort"
)

// Model is an exchangeable retrieval paradigm. The paper motivates
// the loose coupling precisely with this exchangeability:
// "Exchangeability enables us to use any kind of retrieval system:
// e.g. boolean retrieval systems, vector retrieval systems, and
// systems based on probability" (Section 3). Eval scores the parsed
// query against a point-in-time snapshot of the index and returns
// retrieval status values for every matching document. Evaluating
// against a Snapshot (instead of the live index) gives every query
// a stable view while propagation proceeds concurrently, and lets
// models fan work out across shards.
type Model interface {
	// Name identifies the paradigm ("inference-net", "vector",
	// "boolean").
	Name() string
	// Eval returns document scores for the query. Documents with no
	// query evidence are omitted.
	Eval(s *Snapshot, root *Node) map[DocID]float64
	// EvalTopK returns exactly the first k entries (bit-identical
	// scores) of the ranking Eval would produce under the canonical
	// order (score descending, external id ascending), without
	// materializing the full result: shards stream candidates through
	// bounded heaps and skip candidates whose score upper bound
	// cannot reach the current k-th score (see topk.go). k <= 0
	// returns an empty result.
	EvalTopK(s *Snapshot, root *Node, k int) TopKResult
}

// InferenceNet is the probabilistic model of INQUERY ([CCH92]):
// Bayesian-inference-network retrieval with tf.idf belief estimation
// and document-length normalization. Term beliefs are
//
//	bel(t,d) = b + (1-b) · T · I
//	T        = tf / (tf + 0.5 + 1.5·(dl/avgdl))
//	I        = log((N+0.5)/df) / log(N+1)
//
// with default belief b = 0.4 for absent evidence. Operators combine
// beliefs: #and is the product, #or the complement-product, #not the
// complement, #sum the mean, #wsum the weighted mean, #max the
// maximum. This reproduces the document-length dependence the paper
// points out in Section 4.5.2 ("INQUERY, for example, takes into
// account the IRS documents' length in order to compute IRS values").
//
// Statistics (N, df, avgdl) are always corpus-global — shard-local
// evidence is combined with global frequencies, so rankings are
// independent of the shard count.
type InferenceNet struct {
	// DefaultBelief is the belief assigned to a document for a term
	// it does not contain; nil selects INQUERY's 0.4. It is a pointer
	// so that an explicit 0.0 belief is expressible (a plain float64
	// zero value is indistinguishable from "unset" and used to be
	// silently replaced by 0.4): InferenceNet{DefaultBelief: irs.Belief(0)}.
	DefaultBelief *float64
}

// Belief returns a pointer to b, for configuring InferenceNet's
// DefaultBelief in a composite literal.
func Belief(b float64) *float64 { return &b }

// Name implements Model.
func (m InferenceNet) Name() string { return "inference-net" }

func (m InferenceNet) defaultBelief() float64 {
	if m.DefaultBelief == nil {
		return 0.4
	}
	return *m.DefaultBelief
}

// Eval implements Model. Candidate documents are scored shard by
// shard in parallel; each shard's candidates carry their evidence
// locally, so no cross-shard synchronization happens during scoring.
func (m InferenceNet) Eval(s *Snapshot, root *Node) map[DocID]float64 {
	if root == nil {
		return nil
	}
	ctx := newEvalContext(s, root)
	b := m.defaultBelief()
	perShard := make([]map[DocID]float64, s.ShardCount())
	s.parShards(func(si int) {
		cands := ctx.candidates[si]
		out := make(map[DocID]float64, len(cands))
		for _, d := range cands {
			out[d] = m.belief(ctx, root, d, b)
		}
		perShard[si] = out
	})
	return mergeShardScores(perShard)
}

// EvalTopK implements Model. Per shard, every candidate's score upper
// bound combines per-leaf belief caps through the operator tree by
// interval arithmetic. A leaf's cap for candidate d is computed from
// the max tf of d's *containing block* (Block-Max-MaxScore; pure
// block metadata, no payload decode), the shard's minimum live
// document length, the leaf's exact global df and the corpus
// statistics; leaves without evidence for d contribute exactly the
// default belief. runTopK then drives the two-phase,
// threshold-sharing scan over the bounded candidates — when a
// block's refined bound keeps every one of its documents below the
// shared threshold, the block's frequency and position bytes are
// never expanded. Survivors are scored by the same belief walk Eval
// uses, so the returned prefix is bit-identical to the exhaustive
// ranking.
func (m InferenceNet) EvalTopK(s *Snapshot, root *Node, k int) TopKResult {
	if root == nil || k <= 0 {
		return TopKResult{}
	}
	ctx := newEvalContext(s, root)
	b := m.defaultBelief()
	// idf per leaf stat, hoisted out of the per-candidate bound (the
	// logs are the expensive part of the belief cap).
	idf := make(map[*termStat]float64)
	for _, leaf := range leavesOf(root) {
		if st := ctx.leafStat(leaf); st != nil && st.df > 0 {
			if _, ok := idf[st]; !ok {
				idf[st] = math.Log((float64(ctx.n)+0.5)/float64(st.df)) / math.Log(float64(ctx.n)+1)
			}
		}
	}
	blockmax := TopKBlockMax()
	return runTopK(s, k, func(si int) shardTask {
		t := shardTask{
			ids:     ctx.candidates[si],
			scoreOf: func(d DocID) float64 { return m.belief(ctx, root, d, b) },
		}
		if len(ctx.candidates[si]) > k {
			dl := float64(s.minDocLenShard(si))
			avg := ctx.avgdl
			if avg == 0 {
				avg = 1
			}
			if blockmax {
				// Block-max mode compiles the bound once per shard:
				// per-block intervals are precomputed from block MaxTF
				// metadata and candidates (probed in ascending order by
				// newShardScan) resolve by merge-join instead of binary
				// search. Bit-identical to the closure below with
				// capTFAt(…, true).
				bf := m.compileInfBound(ctx, root, b, si, dl, avg, idf)
				t.boundOf = func(d DocID) float64 { return bf(d).hi }
			} else {
				t.boundOf = func(d DocID) float64 {
					return nodeBoundAt(root, b, d, func(leaf *Node, d DocID) interval {
						st := ctx.leafStat(leaf)
						if st == nil || st.df == 0 {
							return pointIv(b)
						}
						capTF := st.capTFAt(si, d, blockmax)
						if capTF == 0 {
							return pointIv(b)
						}
						// Mirrors termBelief exactly, so a document that
						// actually attains (capTF, minLen) computes the
						// identical float value.
						ti := float64(capTF) / (float64(capTF) + 0.5 + 1.5*dl/avg)
						return interval{b, b + (1-b)*ti*idf[st]}
					}).hi
				}
			}
			t.stats = func() (int64, int64) { return ctx.decodeStats(si) }
		}
		return t
	}, snapExt(s))
}

// leafStat resolves a leaf node to the statistics the context
// gathered for it (nil for a leaf with no entry).
func (ctx *evalContext) leafStat(leaf *Node) *termStat {
	switch leaf.Kind {
	case NodeTerm:
		return ctx.termStats[leaf.Term]
	case NodePhrase:
		return ctx.phraseStats[leaf]
	case NodeSyn:
		return ctx.synStats[leaf]
	}
	return nil
}

func (m InferenceNet) belief(ctx *evalContext, n *Node, d DocID, b float64) float64 {
	switch n.Kind {
	case NodeTerm:
		return m.termBelief(ctx, ctx.termStats[n.Term], d, b)
	case NodePhrase:
		return m.termBelief(ctx, ctx.phraseStats[n], d, b)
	case NodeSyn:
		return m.termBelief(ctx, ctx.synStats[n], d, b)
	case NodeAnd:
		p := 1.0
		for _, c := range n.Children {
			p *= m.belief(ctx, c, d, b)
		}
		return p
	case NodeOr:
		q := 1.0
		for _, c := range n.Children {
			q *= 1 - m.belief(ctx, c, d, b)
		}
		return 1 - q
	case NodeNot:
		return 1 - m.belief(ctx, n.Children[0], d, b)
	case NodeSum:
		s := 0.0
		for _, c := range n.Children {
			s += m.belief(ctx, c, d, b)
		}
		return s / float64(len(n.Children))
	case NodeWSum:
		s, w := 0.0, 0.0
		for i, c := range n.Children {
			s += n.Weights[i] * m.belief(ctx, c, d, b)
			w += n.Weights[i]
		}
		if w == 0 {
			return b
		}
		return s / w
	case NodeMax:
		best := 0.0
		for _, c := range n.Children {
			if v := m.belief(ctx, c, d, b); v > best {
				best = v
			}
		}
		return best
	}
	return b
}

func (m InferenceNet) termBelief(ctx *evalContext, st *termStat, d DocID, b float64) float64 {
	if st == nil || st.df == 0 {
		return b
	}
	tf, ok := st.tfOf(ctx.s, d)
	if !ok {
		return b
	}
	dl := float64(ctx.s.DocLen(d))
	avg := ctx.avgdl
	if avg == 0 {
		avg = 1
	}
	t := float64(tf) / (float64(tf) + 0.5 + 1.5*dl/avg)
	i := math.Log((float64(ctx.n)+0.5)/float64(st.df)) / math.Log(float64(ctx.n)+1)
	return b + (1-b)*t*i
}

// termStat is the evidence a leaf (term, phrase or synonym group)
// contributes. Term leaves are backed by one leafView per shard
// (block storage, payload decode deferred until a document is
// actually scored); synonym groups hold their members' views plus the
// merged live-document union; phrases keep eager per-shard frequency
// maps (positional intersection has to decode positions up front
// anyway, and the exact tf makes a tighter bound than any block
// maximum). Exactly one of views / members / tf is set.
type termStat struct {
	df      int           // live document frequency, summed across shards
	views   []*leafView   // term: per-shard view
	members [][]*leafView // syn: per-shard member views
	union   [][]DocID     // syn: per-shard distinct live docs, ascending
	tf      []map[DocID]int
}

// tfOf looks up the within-document frequency of d (whose evidence
// lives in d's shard), decoding d's block payload on first use.
func (st *termStat) tfOf(s *Snapshot, d DocID) (int, bool) {
	si := s.shardOf(d)
	switch {
	case st.views != nil:
		tf := st.views[si].tfOf(d)
		return tf, tf > 0
	case st.members != nil:
		tf := 0
		for _, lv := range st.members[si] {
			tf += lv.tfOf(d)
		}
		return tf, tf > 0
	default:
		m := st.tf[si]
		if m == nil {
			return 0, false
		}
		v, ok := m[d]
		return v, ok
	}
}

// capTFAt bounds the within-document frequency the leaf can attain at
// document d — 0 when d carries no evidence for it. With blockmax set
// the bound is the max tf of d's containing block (pure metadata, no
// payload decode); otherwise it falls back to the whole-list bound,
// reproducing the flat-posting engine's pruning. Phrases return their
// exact frequency (tighter than either, and already computed).
func (st *termStat) capTFAt(si int, d DocID, blockmax bool) int {
	switch {
	case st.views != nil:
		lv := st.views[si]
		if blockmax {
			return lv.blockMaxTFOf(d)
		}
		if lv.contains(d) {
			return lv.maxTF
		}
		return 0
	case st.members != nil:
		sum := 0
		for _, lv := range st.members[si] {
			if blockmax {
				sum += lv.blockMaxTFOf(d)
			} else if lv.contains(d) {
				sum += lv.maxTF
			}
		}
		return sum
	default:
		if m := st.tf[si]; m != nil {
			return m[d]
		}
		return 0
	}
}

// evalContext gathers leaf statistics once per query evaluation.
// Gathering fans out across shards; the per-shard candidate lists
// drive the parallel scoring pass. Candidate discovery decodes only
// the doc-id streams of the touched posting lists — frequencies and
// positions of term leaves stay compressed until a document is
// scored, which is what TopKResult's BlocksSkipped/PostingsDecoded
// counters measure via the per-shard view registry.
type evalContext struct {
	s           *Snapshot
	n           int
	avgdl       float64
	candidates  [][]DocID // per shard, ascending
	termStats   map[string]*termStat
	phraseStats map[*Node]*termStat
	synStats    map[*Node]*termStat
	views       [][]*leafView // per shard: term + syn-member views
}

func newEvalContext(s *Snapshot, root *Node) *evalContext {
	nsh := s.ShardCount()
	ctx := &evalContext{
		s:           s,
		n:           s.DocCount(),
		avgdl:       s.AvgDocLen(),
		candidates:  make([][]DocID, nsh),
		termStats:   make(map[string]*termStat),
		phraseStats: make(map[*Node]*termStat),
		synStats:    make(map[*Node]*termStat),
		views:       make([][]*leafView, nsh),
	}
	// Collect the distinct leaves first so the per-shard gather can
	// fill disjoint slots without synchronization.
	var termLeaves []string
	var phraseLeaves, synLeaves []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		switch n.Kind {
		case NodeTerm:
			if _, ok := ctx.termStats[n.Term]; ok {
				return
			}
			ctx.termStats[n.Term] = &termStat{views: make([]*leafView, nsh)}
			termLeaves = append(termLeaves, n.Term)
		case NodePhrase:
			ctx.phraseStats[n] = &termStat{tf: make([]map[DocID]int, nsh)}
			phraseLeaves = append(phraseLeaves, n)
		case NodeSyn:
			ctx.synStats[n] = &termStat{
				members: make([][]*leafView, nsh),
				union:   make([][]DocID, nsh),
			}
			synLeaves = append(synLeaves, n)
		default:
			for _, c := range n.Children {
				walk(c)
			}
		}
	}
	walk(root)
	s.parShards(func(si int) {
		cands := make(map[DocID]bool)
		for _, raw := range termLeaves {
			lv := s.leafViewShard(si, s.analyzer.AnalyzeTerm(raw))
			ctx.termStats[raw].views[si] = lv
			ctx.registerView(si, lv)
			for _, d := range lv.live {
				cands[d] = true
			}
		}
		for _, n := range phraseLeaves {
			tf := phraseStatShard(s, si, n)
			for d := range tf {
				cands[d] = true
			}
			ctx.phraseStats[n].tf[si] = tf
		}
		for _, n := range synLeaves {
			st := ctx.synStats[n]
			seen := make(map[DocID]bool)
			for _, c := range n.Children {
				if c.Kind != NodeTerm {
					continue
				}
				lv := s.leafViewShard(si, s.analyzer.AnalyzeTerm(c.Term))
				st.members[si] = append(st.members[si], lv)
				ctx.registerView(si, lv)
				for _, d := range lv.live {
					seen[d] = true
					cands[d] = true
				}
			}
			u := make([]DocID, 0, len(seen))
			for d := range seen {
				u = append(u, d)
			}
			sort.Slice(u, func(i, j int) bool { return u[i] < u[j] })
			st.union[si] = u
		}
		ids := make([]DocID, 0, len(cands))
		for d := range cands {
			ids = append(ids, d)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		ctx.candidates[si] = ids
	})
	for _, st := range ctx.termStats {
		for _, lv := range st.views {
			st.df += len(lv.live)
		}
	}
	for _, st := range ctx.phraseStats {
		for _, m := range st.tf {
			st.df += len(m)
		}
	}
	for _, st := range ctx.synStats {
		for _, u := range st.union {
			st.df += len(u)
		}
	}
	return ctx
}

// registerView records a view in the per-shard decode-stats registry.
// The gather fan-out runs one goroutine per shard and each goroutine
// appends only to its own shard's pre-allocated slot, so no
// synchronization is needed.
func (ctx *evalContext) registerView(si int, lv *leafView) {
	ctx.views[si] = append(ctx.views[si], lv)
}

// decodeStats folds one shard's view decode counters; called by
// runTopK after every scan goroutine has finished.
func (ctx *evalContext) decodeStats(si int) (blocksSkipped, postingsDecoded int64) {
	for _, lv := range ctx.views[si] {
		bs, pd := lv.decodeStats()
		blocksSkipped += bs
		postingsDecoded += pd
	}
	return blocksSkipped, postingsDecoded
}

// phraseStatShard computes per-document frequencies of an
// exact-adjacency phrase within one shard using positional
// intersection (a document's positions live entirely in its shard).
// Member posting lists are walked through block cursors with
// leapfrog skipTo — whole blocks of a rarer member's gaps are skipped
// by metadata — and positions are decoded only for documents that
// survive the doc-level intersection.
func phraseStatShard(s *Snapshot, si int, n *Node) map[DocID]int {
	tf := make(map[DocID]int)
	if len(n.Children) == 0 {
		return tf
	}
	views := make([]*leafView, len(n.Children))
	cursors := make([]*termCursor, len(n.Children))
	for i, c := range n.Children {
		views[i] = s.leafViewShard(si, s.analyzer.AnalyzeTerm(c.Term))
		cursors[i] = views[i].newCursor()
		if !cursors[i].valid() {
			return tf
		}
	}
	for {
		d := cursors[0].doc()
		max := d
		aligned := true
		for i := 1; i < len(cursors); i++ {
			cursors[i].skipTo(d)
			if !cursors[i].valid() {
				return tf
			}
			if cursors[i].doc() > max {
				max = cursors[i].doc()
				aligned = false
			}
		}
		if !aligned {
			cursors[0].skipTo(max)
			if !cursors[0].valid() {
				return tf
			}
			continue
		}
		count := 0
		for _, start := range views[0].positionsOf(d) {
			ok := true
			for i := 1; i < len(views); i++ {
				if !containsPos(views[i].positionsOf(d), start+uint32(i)) {
					ok = false
					break
				}
			}
			if ok {
				count++
			}
		}
		if count > 0 {
			tf[d] = count
		}
		cursors[0].next()
		if !cursors[0].valid() {
			return tf
		}
	}
}

func containsPos(positions []uint32, want uint32) bool {
	i := sort.Search(len(positions), func(i int) bool { return positions[i] >= want })
	return i < len(positions) && positions[i] == want
}

// mergeShardScores folds per-shard score maps (over disjoint
// document sets) into one result map.
func mergeShardScores(perShard []map[DocID]float64) map[DocID]float64 {
	if len(perShard) == 1 {
		return perShard[0]
	}
	total := 0
	for _, m := range perShard {
		total += len(m)
	}
	out := make(map[DocID]float64, total)
	for _, m := range perShard {
		for d, v := range m {
			out[d] = v
		}
	}
	return out
}
