package irs

import (
	"fmt"
	"testing"
)

// pipelineDocs is a tiny deterministic corpus for the ingest-pipeline
// tests: overlapping vocabulary so rankings discriminate.
func pipelineDocs(n int) [][2]string {
	topics := []string{
		"the www grows as a digital library of structured documents",
		"sgml markup describes structured documents and their elements",
		"video and audio objects join text in multimedia frameworks",
		"retrieval models rank documents by belief in the inference net",
		"update propagation defers index maintenance behind a log",
	}
	out := make([][2]string, n)
	for i := range out {
		out[i] = [2]string{
			fmt.Sprintf("doc%03d", i),
			fmt.Sprintf("%s with suffix token t%d", topics[i%len(topics)], i),
		}
	}
	return out
}

var pipelineQueries = []string{
	"www",
	"#and(structured documents)",
	"#or(video #and(sgml markup))",
	"#wsum(2 retrieval 1 index)",
	"#phrase(digital library)",
	"#sum(www sgml video retrieval update)",
}

func sameRankings(t *testing.T, a, b *Collection) {
	t.Helper()
	for _, q := range pipelineQueries {
		ra, err := a.Search(q)
		if err != nil {
			t.Fatalf("search %q: %v", q, err)
		}
		rb, err := b.Search(q)
		if err != nil {
			t.Fatalf("search %q: %v", q, err)
		}
		if len(ra) != len(rb) {
			t.Fatalf("query %q: %d vs %d results", q, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("query %q rank %d: %+v vs %+v", q, i, ra[i], rb[i])
			}
		}
	}
}

// TestAnalyzedCommitEquivalence: committing pre-analyzed documents
// (the staged pipeline's analyze-outside/commit-inside split) yields
// exactly the state the direct text path builds — same doc counts,
// same DFs, bit-identical rankings — including through updates.
func TestAnalyzedCommitEquivalence(t *testing.T) {
	e := NewEngine(Options{Shards: 3})
	direct, err := e.CreateCollection("direct", nil)
	if err != nil {
		t.Fatal(err)
	}
	staged, err := e.CreateCollection("staged", nil)
	if err != nil {
		t.Fatal(err)
	}
	docs := pipelineDocs(24)
	for _, d := range docs {
		if err := direct.AddDocument(d[0], d[1], map[string]string{"oid": d[0]}); err != nil {
			t.Fatal(err)
		}
	}
	// Staged path: analyze everything first (no locks), then one
	// short commit batch merging the pre-built postings.
	analyzed := make([]*AnalyzedDoc, len(docs))
	for i, d := range docs {
		analyzed[i] = staged.Analyze(d[0], d[1], map[string]string{"oid": d[0]})
	}
	err = staged.Batch(func(b *Batch) error {
		for _, ad := range analyzed {
			if _, err := b.AddAnalyzed(ad); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if direct.DocCount() != staged.DocCount() {
		t.Fatalf("doc counts differ: %d vs %d", direct.DocCount(), staged.DocCount())
	}
	sameRankings(t, direct, staged)

	// Updates through both paths stay equivalent too.
	for i := 0; i < len(docs); i += 3 {
		text := docs[i][1] + " refreshed retrieval evidence"
		if err := direct.UpdateDocument(docs[i][0], text, nil); err != nil {
			t.Fatal(err)
		}
		ad := staged.Analyze(docs[i][0], text, nil)
		if err := staged.Batch(func(b *Batch) error {
			_, err := b.UpdateAnalyzed(ad)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	sameRankings(t, direct, staged)

	// The analyzed metadata survives the merge.
	id, ok := staged.Index().DocID("doc001")
	if !ok {
		t.Fatal("doc001 missing")
	}
	if v, ok := staged.Index().Meta(id, "oid"); !ok || v != "doc001" {
		t.Fatalf("meta lost through analyzed commit: %q %v", v, ok)
	}
}

// TestAnalyzedDocShape: the analyze stage reports the token/term
// accounting the commit stage will install.
func TestAnalyzedDocShape(t *testing.T) {
	ix := NewIndex(nil)
	d := ix.Analyze("d1", "structured documents hold structured text", nil)
	if d.ExtID() != "d1" {
		t.Errorf("ExtID = %q", d.ExtID())
	}
	// "hold" survives, "structured" twice, stopwords stay out of the
	// length only if the analyzer stops them — just check consistency
	// against the committed doc.
	id, err := ix.AddAnalyzed(d)
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.DocLen(id); got != d.Length() {
		t.Errorf("DocLen = %d, want analyzed length %d", got, d.Length())
	}
	if d.TermCount() <= 0 {
		t.Errorf("TermCount = %d", d.TermCount())
	}
}

// TestAutoCompact: once the tombstone ratio crosses the configured
// threshold the index compacts itself in the background; rankings are
// unaffected and the reclaim is visible in TombstoneStats/SizeBytes.
func TestAutoCompact(t *testing.T) {
	e := NewEngine(Options{Shards: 2})
	auto, err := e.CreateCollection("auto", nil)
	if err != nil {
		t.Fatal(err)
	}
	control, err := e.CreateCollection("control", nil)
	if err != nil {
		t.Fatal(err)
	}
	auto.SetAutoCompact(0.4, 8)
	if r, m := auto.Index().AutoCompact(); r != 0.4 || m != 8 {
		t.Fatalf("AutoCompact() = %v %v", r, m)
	}
	docs := pipelineDocs(40)
	for _, d := range docs {
		if err := auto.AddDocument(d[0], d[1], nil); err != nil {
			t.Fatal(err)
		}
		if err := control.AddDocument(d[0], d[1], nil); err != nil {
			t.Fatal(err)
		}
	}
	// Delete the second half from auto only; the control keeps them
	// and deletes lazily without a policy.
	for _, d := range docs[20:] {
		if err := auto.DeleteDocument(d[0]); err != nil {
			t.Fatal(err)
		}
		if err := control.DeleteDocument(d[0]); err != nil {
			t.Fatal(err)
		}
	}
	auto.Index().WaitCompaction()
	if got := auto.Index().Compactions(); got == 0 {
		t.Fatal("no background compaction ran")
	}
	if ratio := auto.Index().TombstoneRatio(); ratio >= 0.4 {
		t.Errorf("tombstone ratio still %v after compaction", ratio)
	}
	live, _ := auto.Index().TombstoneStats()
	if live != 20 {
		t.Errorf("live = %d, want 20", live)
	}
	if got := auto.DocCount(); got != 20 {
		t.Errorf("DocCount = %d, want 20", got)
	}
	sameRankings(t, auto, control)
	// The control never compacted.
	if got := control.Index().Compactions(); got != 0 {
		t.Errorf("control compacted %d times", got)
	}
	if _, dead := control.Index().TombstoneStats(); dead != 20 {
		t.Errorf("control dead = %d, want 20", dead)
	}
}

// TestAutoCompactDisabledByDefault: no policy, no background work.
func TestAutoCompactDisabledByDefault(t *testing.T) {
	ix := NewIndex(nil)
	for i := 0; i < 200; i++ {
		if _, err := ix.Add(fmt.Sprintf("d%d", i), "text body", nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		if err := ix.Delete(fmt.Sprintf("d%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	ix.WaitCompaction()
	if got := ix.Compactions(); got != 0 {
		t.Errorf("compactions = %d, want 0", got)
	}
	if _, dead := ix.TombstoneStats(); dead != 200 {
		t.Errorf("dead = %d, want 200", dead)
	}
}
