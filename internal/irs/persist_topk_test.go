package irs

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPersistV3BoundsRoundTrip: saving writes the v3 bounds section
// and loading restores the exact in-memory bound state — including a
// deliberately stale-high max-tf left behind by a deletion.
func TestPersistV3BoundsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e, err := NewEngineAt(dir, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	c, err := e.CreateCollection("tk", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddDocument("heavy", strings.Repeat("www ", 40)+"nii", nil); err != nil {
		t.Fatal(err)
	}
	for _, ext := range []string{"a", "b", "c", "d"} {
		if err := c.AddDocument(ext, "www nii retrieval coupling filler", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.DeleteDocument("heavy"); err != nil {
		t.Fatal(err)
	}
	wantFull, err := c.Search("#sum(www nii)")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Save(); err != nil {
		t.Fatal(err)
	}

	e2, err := NewEngineAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := e2.Collection("tk")
	if err != nil {
		t.Fatal(err)
	}
	snap := c2.Snapshot()
	// The stale bound (40) survives the round trip: the stored value
	// dominates the live postings' maximum of 1.
	found := false
	for si := 0; si < snap.ShardCount(); si++ {
		if snap.termMaxTFShard(si, "www") == 40 {
			found = true
		}
	}
	if !found {
		t.Error("persisted stale max-tf bound lost in v3 round trip")
	}
	// Rankings and top-k exactness are unaffected.
	gotFull, err := c2.Search("#sum(www nii)")
	if err != nil {
		t.Fatal(err)
	}
	if len(gotFull) != len(wantFull) {
		t.Fatalf("reloaded ranking has %d entries, want %d", len(gotFull), len(wantFull))
	}
	for i := range wantFull {
		if gotFull[i] != wantFull[i] {
			t.Fatalf("reloaded ranking diverges at %d: %v vs %v", i, gotFull[i], wantFull[i])
		}
	}
	topk, err := c2.SearchTopK("#sum(www nii)", 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range topk {
		if topk[i] != wantFull[i] {
			t.Fatalf("top-k after reload diverges at %d: %v vs %v", i, topk[i], wantFull[i])
		}
	}
}

// TestLoadV2Format: a sharded v2 file (no bounds section) still loads
// and the bounds are rebuilt from the postings.
func TestLoadV2Format(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v2coll"+collExt)
	var buf bytes.Buffer
	w := func(v any) {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	ws := func(s string) {
		w(uint32(len(s)))
		buf.WriteString(s)
	}
	buf.WriteString(persistMagic)
	w(uint32(persistVersionV2))
	ws("inference-net")
	w(uint32(2)) // shard count
	// shard 0: one live doc with "text" twice at positions 0,1
	w(uint32(1))
	ws("s0doc")
	w(uint32(2))
	w(uint8(0))
	w(uint32(0))
	w(uint32(1)) // term count
	ws("text")
	w(uint32(1)) // posting count (no max-tf field in v2)
	w(uint32(0))
	w(uint32(2))
	w(uint32(0))
	w(uint32(1))
	// shard 1: one live doc with "text" once
	w(uint32(1))
	ws("s1doc")
	w(uint32(1))
	w(uint8(0))
	w(uint32(0))
	w(uint32(1))
	ws("text")
	w(uint32(1))
	w(uint32(0))
	w(uint32(1))
	w(uint32(0))
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	e, err := NewEngineAt(dir)
	if err != nil {
		t.Fatalf("v2 file rejected: %v", err)
	}
	c, err := e.Collection("v2coll")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Index().ShardCount(); got != 2 {
		t.Errorf("v2 load ShardCount = %d, want 2", got)
	}
	snap := c.Snapshot()
	if got := snap.termMaxTFShard(0, "text"); got != 2 {
		t.Errorf("rebuilt max-tf bound shard 0 = %d, want 2", got)
	}
	if got := snap.termMaxTFShard(1, "text"); got != 1 {
		t.Errorf("rebuilt max-tf bound shard 1 = %d, want 1", got)
	}
	if got := snap.minDocLenShard(1); got != 1 {
		t.Errorf("rebuilt min doc length shard 1 = %d, want 1", got)
	}
	rs, err := c.SearchTopK("text", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].ExtID != "s0doc" {
		t.Fatalf("top-1 on v2 load = %v, want s0doc (tf 2 beats tf 1)", rs)
	}
}
