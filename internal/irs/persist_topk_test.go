package irs

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPersistV3BoundsRoundTrip: saving writes the v3 bounds section
// and loading restores the exact in-memory bound state — including a
// deliberately stale-high max-tf left behind by a deletion.
func TestPersistV3BoundsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e, err := NewEngineAt(dir, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	c, err := e.CreateCollection("tk", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddDocument("heavy", strings.Repeat("www ", 40)+"nii", nil); err != nil {
		t.Fatal(err)
	}
	for _, ext := range []string{"a", "b", "c", "d"} {
		if err := c.AddDocument(ext, "www nii retrieval coupling filler", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.DeleteDocument("heavy"); err != nil {
		t.Fatal(err)
	}
	wantFull, err := c.Search("#sum(www nii)")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Save(); err != nil {
		t.Fatal(err)
	}

	e2, err := NewEngineAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := e2.Collection("tk")
	if err != nil {
		t.Fatal(err)
	}
	snap := c2.Snapshot()
	// The stale bound (40) survives the round trip: the stored value
	// dominates the live postings' maximum of 1.
	found := false
	for si := 0; si < snap.ShardCount(); si++ {
		if snap.termMaxTFShard(si, "www") == 40 {
			found = true
		}
	}
	if !found {
		t.Error("persisted stale max-tf bound lost in v3 round trip")
	}
	// Rankings and top-k exactness are unaffected.
	gotFull, err := c2.Search("#sum(www nii)")
	if err != nil {
		t.Fatal(err)
	}
	if len(gotFull) != len(wantFull) {
		t.Fatalf("reloaded ranking has %d entries, want %d", len(gotFull), len(wantFull))
	}
	for i := range wantFull {
		if gotFull[i] != wantFull[i] {
			t.Fatalf("reloaded ranking diverges at %d: %v vs %v", i, gotFull[i], wantFull[i])
		}
	}
	topk, err := c2.SearchTopK("#sum(www nii)", 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range topk {
		if topk[i] != wantFull[i] {
			t.Fatalf("top-k after reload diverges at %d: %v vs %v", i, topk[i], wantFull[i])
		}
	}
}

// TestPersistAutoCompactPolicy: the background compaction policy set
// via SetAutoCompact must survive a save/load cycle (the .irsc
// trailer) and re-arm on load — a restarted engine resumes
// tombstone-ratio-triggered compaction without reconfiguration.
// Policy-off collections write no trailer (bytes identical to the
// pre-trailer format) and load with the policy off.
func TestPersistAutoCompactPolicy(t *testing.T) {
	dir := t.TempDir()
	e, err := NewEngineAt(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	armed, err := e.CreateCollection("armed", nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := e.CreateCollection("plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		ext := fmt.Sprintf("d%02d", i)
		if err := armed.AddDocument(ext, "www nii filler", nil); err != nil {
			t.Fatal(err)
		}
		if err := plain.AddDocument(ext, "www nii filler", nil); err != nil {
			t.Fatal(err)
		}
	}
	armed.SetAutoCompact(0.25, 5)
	if err := e.Save(); err != nil {
		t.Fatal(err)
	}

	e2, err := NewEngineAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	armed2, err := e2.Collection("armed")
	if err != nil {
		t.Fatal(err)
	}
	if ratio, min := armed2.Index().AutoCompact(); ratio != 0.25 || min != 5 {
		t.Fatalf("reloaded policy = (%v, %d), want (0.25, 5)", ratio, min)
	}
	plain2, err := e2.Collection("plain")
	if err != nil {
		t.Fatal(err)
	}
	if ratio, _ := plain2.Index().AutoCompact(); ratio != 0 {
		t.Fatalf("policy-off collection reloaded with ratio %v, want 0 (off)", ratio)
	}

	// The re-armed policy is live, not just reported: pushing the
	// reloaded collection past the ratio fires a background compaction.
	for i := 0; i < 10; i++ {
		if err := armed2.DeleteDocument(fmt.Sprintf("d%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	armed2.Index().WaitCompaction()
	if armed2.Index().Compactions() == 0 {
		t.Fatal("reloaded policy did not trigger a compaction (10/30 tombstones > 0.25, floor 5)")
	}

	// A pre-trailer v3 file is exactly what the policy-off save wrote;
	// double-check by re-reading it byte-for-byte through the loader.
	raw, err := os.ReadFile(filepath.Join(dir, "plain"+collExt))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte(autoCompactTag)) {
		t.Error("policy-off file contains a policy trailer")
	}
}

// TestLoadV2Format: a sharded v2 file (no bounds section) still loads
// and the bounds are rebuilt from the postings.
func TestLoadV2Format(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v2coll"+collExt)
	var buf bytes.Buffer
	w := func(v any) {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	ws := func(s string) {
		w(uint32(len(s)))
		buf.WriteString(s)
	}
	buf.WriteString(persistMagic)
	w(uint32(persistVersionV2))
	ws("inference-net")
	w(uint32(2)) // shard count
	// shard 0: one live doc with "text" twice at positions 0,1
	w(uint32(1))
	ws("s0doc")
	w(uint32(2))
	w(uint8(0))
	w(uint32(0))
	w(uint32(1)) // term count
	ws("text")
	w(uint32(1)) // posting count (no max-tf field in v2)
	w(uint32(0))
	w(uint32(2))
	w(uint32(0))
	w(uint32(1))
	// shard 1: one live doc with "text" once
	w(uint32(1))
	ws("s1doc")
	w(uint32(1))
	w(uint8(0))
	w(uint32(0))
	w(uint32(1))
	ws("text")
	w(uint32(1))
	w(uint32(0))
	w(uint32(1))
	w(uint32(0))
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	e, err := NewEngineAt(dir)
	if err != nil {
		t.Fatalf("v2 file rejected: %v", err)
	}
	c, err := e.Collection("v2coll")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Index().ShardCount(); got != 2 {
		t.Errorf("v2 load ShardCount = %d, want 2", got)
	}
	snap := c.Snapshot()
	if got := snap.termMaxTFShard(0, "text"); got != 2 {
		t.Errorf("rebuilt max-tf bound shard 0 = %d, want 2", got)
	}
	if got := snap.termMaxTFShard(1, "text"); got != 1 {
		t.Errorf("rebuilt max-tf bound shard 1 = %d, want 1", got)
	}
	if got := snap.minDocLenShard(1); got != 1 {
		t.Errorf("rebuilt min doc length shard 1 = %d, want 1", got)
	}
	rs, err := c.SearchTopK("text", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].ExtID != "s0doc" {
		t.Fatalf("top-1 on v2 load = %v, want s0doc (tf 2 beats tf 1)", rs)
	}
}
