package irs

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/irs/analysis"
)

// zipfVocab returns a synthetic vocabulary of n terms; buildZipfIndex
// draws ranks with a strong skew, so low-rank terms are common (low
// idf, fat posting lists) and high-rank terms rare — the distribution
// MaxScore pruning exploits in real corpora.
func zipfVocab(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("w%03d", i)
	}
	return out
}

// buildZipfIndex populates an index with ndocs documents drawn from a
// zipf-skewed vocabulary of the given size.
func buildZipfIndex(shards, ndocs, vocabSize int, seed uint64) *Index {
	vocab := zipfVocab(vocabSize)
	ix := NewIndexShards(analysis.NewAnalyzer(analysis.WithoutStemming(), analysis.WithStopwords(nil)), shards)
	r := &lcg{s: seed}
	for i := 0; i < ndocs; i++ {
		length := 20 + r.intn(120)
		words := make([]string, 0, length)
		for j := 0; j < length; j++ {
			// Cubing a uniform draw skews hard toward rank 0.
			u := r.intn(vocabSize)
			k := u * u / vocabSize * u / vocabSize
			words = append(words, vocab[k])
		}
		if _, err := ix.Add(fmt.Sprintf("doc%05d", i), strings.Join(words, " "), nil); err != nil {
			panic(err)
		}
	}
	return ix
}

// benchTopKQuery mixes common terms (matched by most documents) with
// rare ones (matched by few, but carrying most of the score mass) —
// the typical shape of a free-text query after idf weighting.
const benchTopKQuery = "#sum(w000 w002 w010 w040 w080 w120 w160 w200)"

var (
	benchTopKOnce sync.Once
	benchTopKColl *Collection

	benchTopKSkewOnce sync.Once
	benchTopKSkewColl *Collection

	benchTopKBMOnce sync.Once
	benchTopKBMColl *Collection
)

func benchTopKCollection() *Collection {
	benchTopKOnce.Do(func() {
		benchTopKColl = &Collection{name: "bench", ix: buildZipfIndex(4, 4000, 260, 99), model: InferenceNet{}}
	})
	return benchTopKColl
}

// benchTopKSkewCollection is the zipf corpus plus a hot-topic block
// pinned (via the placement hash) to shard 0 — the shard-skew profile
// cross-shard threshold sharing exploits.
func benchTopKSkewCollection() *Collection {
	benchTopKSkewOnce.Do(func() {
		ix := buildZipfIndex(4, 4000, 260, 99)
		hot := strings.Repeat("w000 w040 w120 w200 ", 10)
		for i, added := 0, 0; added < 64; i++ {
			name := fmt.Sprintf("hot%05d", i)
			if ShardForExtID(name, 4) != 0 {
				continue
			}
			if _, err := ix.Add(name, hot, nil); err != nil {
				panic(err)
			}
			added++
		}
		benchTopKSkewColl = &Collection{name: "benchskew", ix: ix, model: InferenceNet{}}
	})
	return benchTopKSkewColl
}

// benchTopKBlockMaxCollection is the skew corpus tuned for block-max
// pruning and compacted so every posting run is sealed: the hot
// documents are padded to corpus-typical length (otherwise the
// baseline's document-length term discriminates just as well) and
// their hot-term tf ramps far above the corpus blocks' own max-tf —
// the list-bound/block-bound gap block-max evaluation exploits.
func benchTopKBlockMaxCollection() *Collection {
	benchTopKBMOnce.Do(func() {
		ix := buildZipfIndex(4, 4000, 260, 99)
		pad := strings.Repeat("p00 p01 p02 p03 p04 p05 p06 p07 p08 p09 ", 10)
		for i, added := 0, 0; added < 256; i++ {
			name := fmt.Sprintf("hot%05d", i)
			if ShardForExtID(name, 4) != 0 {
				continue
			}
			hot := strings.Repeat("w000 w040 w120 w200 ", 10+added%11) + pad
			if _, err := ix.Add(name, hot, nil); err != nil {
				panic(err)
			}
			added++
		}
		ix.Compact()
		benchTopKBMColl = &Collection{name: "benchblockmax", ix: ix, model: InferenceNet{}}
	})
	return benchTopKBMColl
}

// BenchmarkTopK compares the serving path's exhaustive evaluation
// (score every candidate, sort, truncate) against the streaming
// top-k engine at k = 10 and k = 100, per retrieval model. CI logs it
// next to the serving benchmarks so the latency trajectory of the hot
// read path accumulates in history.
func BenchmarkTopK(b *testing.B) {
	c := benchTopKCollection()
	snap := c.Snapshot()
	n, err := ParseQuery(benchTopKQuery)
	if err != nil {
		b.Fatal(err)
	}
	models := []Model{InferenceNet{}, NewVectorSpace(), PassageModel{}}
	for _, m := range models {
		c.SetModel(m)
		if vs, ok := m.(*VectorSpace); ok {
			vs.docNorms(snap) // warm the norm cache outside the timer
		}
		b.Run(m.Name()+"/exhaustive", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rs := c.SearchNodeAt(snap, n)
				if len(rs) == 0 {
					b.Fatal("no results")
				}
			}
		})
		for _, k := range []int{10, 100} {
			b.Run(fmt.Sprintf("%s/k=%d", m.Name(), k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rs := c.SearchNodeTopKAt(snap, n, k)
					if len(rs) != k {
						b.Fatalf("got %d hits", len(rs))
					}
				}
			})
		}
	}
}

// BenchmarkTopKGlobal measures cross-shard threshold sharing against
// the per-shard-only baseline on the skewed corpus (hot shard 0), for
// the cheap-scorer (inference net) and expensive-scorer (passage)
// profiles at k = 10. CI logs it next to BenchmarkTopK so the gain of
// the two-phase scheduler accumulates in history alongside the base
// engine's trajectory.
func BenchmarkTopKGlobal(b *testing.B) {
	c := benchTopKSkewCollection()
	snap := c.Snapshot()
	n, err := ParseQuery(benchTopKQuery)
	if err != nil {
		b.Fatal(err)
	}
	defer SetTopKThresholdSharing(true)
	for _, m := range []Model{InferenceNet{}, PassageModel{}} {
		c.SetModel(m)
		for _, sharing := range []bool{false, true} {
			name := fmt.Sprintf("%s/per-shard", m.Name())
			if sharing {
				name = fmt.Sprintf("%s/shared", m.Name())
			}
			b.Run(name, func(b *testing.B) {
				SetTopKThresholdSharing(sharing)
				for i := 0; i < b.N; i++ {
					rs := c.SearchNodeTopKAt(snap, n, 10)
					if len(rs) != 10 {
						b.Fatalf("got %d hits", len(rs))
					}
				}
			})
		}
	}
}

// BenchmarkTopKBlockMax measures block-max bound refinement against
// the whole-list-bound baseline on the compacted skew corpus, for the
// cheap-scorer (inference net) and expensive-scorer (passage)
// profiles at k = 10. CI logs it next to BenchmarkTopKGlobal so the
// intra-list skipping gain accumulates in history alongside the
// cross-shard scheduler's.
func BenchmarkTopKBlockMax(b *testing.B) {
	c := benchTopKBlockMaxCollection()
	snap := c.Snapshot()
	n, err := ParseQuery(benchTopKQuery)
	if err != nil {
		b.Fatal(err)
	}
	defer SetTopKBlockMax(true)
	for _, m := range []Model{InferenceNet{}, PassageModel{}} {
		c.SetModel(m)
		for _, blockmax := range []bool{false, true} {
			name := fmt.Sprintf("%s/whole-list", m.Name())
			if blockmax {
				name = fmt.Sprintf("%s/block-max", m.Name())
			}
			b.Run(name, func(b *testing.B) {
				SetTopKBlockMax(blockmax)
				for i := 0; i < b.N; i++ {
					rs := c.SearchNodeTopKAt(snap, n, 10)
					if len(rs) != 10 {
						b.Fatalf("got %d hits", len(rs))
					}
				}
			})
		}
	}
}
