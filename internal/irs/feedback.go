package irs

import (
	"math"
	"sort"
)

// Relevance feedback — the paper lists it among the open
// "application independent facets" (Section 6). This implements the
// classic Rocchio-style formulation adapted to the operator query
// language: terms are scored over the judged-relevant documents by
// relative frequency times idf, the best expansion terms are
// appended to the original query under a #wsum that keeps the
// original terms dominant.

// FeedbackOptions tunes query expansion.
type FeedbackOptions struct {
	// AddTerms is the number of expansion terms to add (default 5).
	AddTerms int
	// OriginalWeight is the #wsum weight of the original query
	// (default 2; expansion terms weigh 1 each).
	OriginalWeight float64
}

// ExpandQuery builds an expanded query from the original and the
// external ids of documents the user judged relevant. The expansion
// selects the AddTerms highest-scoring terms (relative term
// frequency in the relevant set × idf over the collection),
// excluding terms already present in the query.
//
// The statistics are computed against one snapshot of the index, so
// a concurrent propagation flush cannot skew the expansion.
//
// The result is a #wsum combining the original query with the
// expansion terms, parseable by ParseQuery as usual; callers route
// it through the coupling like any other query (it gets its own
// buffer entry).
func (c *Collection) ExpandQuery(original string, relevant []string, opts FeedbackOptions) (string, error) {
	node, err := ParseQuery(original)
	if err != nil {
		return "", err
	}
	addTerms := opts.AddTerms
	if addTerms <= 0 {
		addTerms = 5
	}
	origWeight := opts.OriginalWeight
	if origWeight == 0 {
		origWeight = 2
	}
	snap := c.ix.Snapshot()
	present := make(map[string]bool)
	for _, t := range node.Terms() {
		present[snap.analyzer.AnalyzeTerm(t)] = true
	}

	// Resolve the judged-relevant ids within the snapshot (the live
	// index may have renumbered them by the time we get here) and
	// total their indexed length.
	relSet := make(map[DocID]bool, len(relevant))
	totalLen := 0
	for _, ext := range relevant {
		if id, ok := snap.DocID(ext); ok {
			relSet[id] = true
			totalLen += snap.DocLen(id)
		}
	}

	// Candidate terms come from the relevant documents' forward
	// index, so only their (small) vocabulary is touched — never the
	// whole dictionary. Frequencies within the relevant set and
	// global document frequencies are then read per term from the
	// snapshot's posting lists.
	nsh := snap.ShardCount()
	tf := make(map[string]int)
	for id := range relSet {
		if d := snap.doc(id); d != nil {
			for _, term := range d.terms {
				tf[term] = 0
			}
		}
	}
	for term := range tf {
		for si := 0; si < nsh; si++ {
			for _, p := range snap.postingsShard(si, term) {
				if relSet[p.Doc] {
					tf[term] += p.TF()
				}
			}
		}
	}

	type cand struct {
		term  string
		score float64
	}
	n := snap.DocCount()
	var cands []cand
	for term, freq := range tf {
		if present[term] || freq == 0 {
			continue
		}
		df := 0
		for si := 0; si < nsh; si++ {
			df += snap.dfShardRaw(si, term)
		}
		if df == 0 {
			continue
		}
		idf := math.Log(1 + float64(n)/float64(df))
		cands = append(cands, cand{term: term, score: float64(freq) / float64(totalLen+1) * idf})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].term < cands[j].term
	})
	if len(cands) > addTerms {
		cands = cands[:addTerms]
	}
	if len(cands) == 0 {
		return node.String(), nil
	}
	expanded := &Node{Kind: NodeWSum}
	expanded.Weights = append(expanded.Weights, origWeight)
	expanded.Children = append(expanded.Children, node)
	for _, cd := range cands {
		expanded.Weights = append(expanded.Weights, 1)
		expanded.Children = append(expanded.Children, Term(cd.term))
	}
	return expanded.String(), nil
}
