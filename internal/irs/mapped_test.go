package irs

import (
	"fmt"
	"math/rand"
	"testing"
)

// mappedTestQueries cross every evaluation path (term, weighted sum,
// phrase, boolean structure, negation) so the zero-copy decode route
// is exercised by each model.
var mappedTestQueries = []string{
	"www nii sgml",
	"#sum(www nii video codec markup)",
	"#wsum(3 www 2 nii 1 codec)",
	"#and(www #or(nii sgml))",
	"#and(www #not(video))",
	"#phrase(www nii)",
	"#or(markup #and(gopher telnet))",
}

var mappedTestModels = []Model{InferenceNet{}, NewVectorSpace(), Boolean{}, PassageModel{Window: 6}}

// assertRankingsEqual compares heap vs mapped rankings exactly —
// struct equality, so scores must match bit for bit — under every
// model, exhaustively and at two top-k depths.
func assertRankingsEqual(t *testing.T, hc, mc *Collection, stage string) {
	t.Helper()
	for _, model := range mappedTestModels {
		hc.SetModel(model)
		mc.SetModel(model)
		for _, q := range mappedTestQueries {
			hf, err := hc.Search(q)
			if err != nil {
				t.Fatalf("%s: heap %s %q: %v", stage, model.Name(), q, err)
			}
			mf, err := mc.Search(q)
			if err != nil {
				t.Fatalf("%s: mapped %s %q: %v", stage, model.Name(), q, err)
			}
			if len(hf) != len(mf) {
				t.Fatalf("%s: %s %q: %d heap vs %d mapped results", stage, model.Name(), q, len(hf), len(mf))
			}
			for i := range hf {
				if hf[i] != mf[i] {
					t.Fatalf("%s: %s %q rank %d: heap %v vs mapped %v", stage, model.Name(), q, i, hf[i], mf[i])
				}
			}
			for _, k := range []int{3, 10} {
				ht, err := hc.SearchTopK(q, k)
				if err != nil {
					t.Fatalf("%s: heap topk %s %q: %v", stage, model.Name(), q, err)
				}
				mt, err := mc.SearchTopK(q, k)
				if err != nil {
					t.Fatalf("%s: mapped topk %s %q: %v", stage, model.Name(), q, err)
				}
				if len(ht) != len(mt) {
					t.Fatalf("%s: %s %q k=%d: %d heap vs %d mapped", stage, model.Name(), q, k, len(ht), len(mt))
				}
				for i := range ht {
					if ht[i] != mt[i] {
						t.Fatalf("%s: %s %q k=%d rank %d: heap %v vs mapped %v",
							stage, model.Name(), q, k, i, ht[i], mt[i])
					}
				}
			}
		}
	}
}

// mappedRandomOps drives one collection through a random add/update/
// delete/compact interleaving. Both residencies replay the same seed,
// so the mapped overlay must stay observably identical to the heap
// index at every point.
func mappedRandomOps(t *testing.T, c *Collection, rng *rand.Rand, ops int) {
	t.Helper()
	words := []string{"www", "nii", "sgml", "video", "codec", "markup", "gopher", "telnet", "library", "highway"}
	text := func() string {
		s := ""
		for j := 0; j < 2+rng.Intn(12); j++ {
			s += words[rng.Intn(len(words))] + " "
		}
		return s
	}
	for i := 0; i < ops; i++ {
		id := fmt.Sprintf("d%d", rng.Intn(120))
		switch {
		case rng.Intn(20) == 0:
			c.Index().Compact()
		case !c.HasDoc(id):
			if err := c.AddDocument(id, text(), map[string]string{"oid": id}); err != nil {
				t.Fatal(err)
			}
		case rng.Intn(3) == 0:
			if err := c.DeleteDocument(id); err != nil {
				t.Fatal(err)
			}
		default:
			if err := c.UpdateDocument(id, text(), map[string]string{"oid": id}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestMappedHeapEquivalenceProperty: for both shard counts, a
// randomly built collection saved as v5 must answer identically when
// reopened on the heap and memory-mapped — after the fresh load,
// after identical random mutations overlaid on both (mutating mapped
// blocks via the in-memory tail), after Compact folds the mapping out
// of the live index, and after saving the mapped engine and reopening
// the folded file mapped again. Runs race-enabled in CI.
func TestMappedHeapEquivalenceProperty(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(911 + shards)))
			dir := t.TempDir()
			build, err := NewEngineAt(dir, Options{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			c, err := build.CreateCollection("prop", nil)
			if err != nil {
				t.Fatal(err)
			}
			// Enough docs over a small vocabulary that posting lists seal
			// compressed blocks, so the mapped path serves real block
			// decodes, not just tails.
			for i := 0; i < 400; i++ {
				id := fmt.Sprintf("seed%d", i)
				if err := c.AddDocument(id, fmt.Sprintf("www nii base%d codec video ", i%17), nil); err != nil {
					t.Fatal(err)
				}
			}
			mappedRandomOps(t, c, rng, 200)
			if err := build.Save(); err != nil {
				t.Fatal(err)
			}

			heapEng, err := NewEngineAt(dir)
			if err != nil {
				t.Fatal(err)
			}
			mapEng, err := NewEngineAt(dir, Options{Mapped: true})
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := mapEng.Close(); err != nil {
					t.Errorf("close mapped engine: %v", err)
				}
			}()
			hc, err := heapEng.Collection("prop")
			if err != nil {
				t.Fatal(err)
			}
			mc, err := mapEng.Collection("prop")
			if err != nil {
				t.Fatal(err)
			}

			if got := mc.Index().MappedBytes(); got <= 0 {
				t.Errorf("mapped collection MappedBytes = %d, want > 0", got)
			}
			if got := hc.Index().MappedBytes(); got != 0 {
				t.Errorf("heap collection MappedBytes = %d, want 0", got)
			}
			assertRankingsEqual(t, hc, mc, "fresh load")

			// Same random mutations against both residencies: the mapped
			// collection layers them as in-memory tails over mapped blocks
			// and must keep matching the all-heap index exactly.
			seed := rng.Int63()
			mappedRandomOps(t, hc, rand.New(rand.NewSource(seed)), 150)
			mappedRandomOps(t, mc, rand.New(rand.NewSource(seed)), 150)
			assertRankingsEqual(t, hc, mc, "mutation overlay")

			// Compact rebuilds both into heap postings (the mapped blocks
			// fold out of the live index; the mapping itself stays open
			// until Close).
			hc.Index().Compact()
			mc.Index().Compact()
			assertRankingsEqual(t, hc, mc, "post-compact")

			// Saving the mapped engine writes overlay + mapped base into
			// one fresh v5 file; reopening it mapped must reproduce the
			// heap engine's live state.
			if err := mapEng.Save(); err != nil {
				t.Fatal(err)
			}
			reEng, err := NewEngineAt(dir, Options{Mapped: true})
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := reEng.Close(); err != nil {
					t.Errorf("close reopened engine: %v", err)
				}
			}()
			rc, err := reEng.Collection("prop")
			if err != nil {
				t.Fatal(err)
			}
			assertRankingsEqual(t, hc, rc, "save/reopen fold")
		})
	}
}

// TestMappedPreV5FallsBackToHeap: a legacy (pre-v5) file opened with
// Mapped still loads — on the heap, reporting no mapped bytes — and
// migrates to v5 on the next save, after which the mapping engages.
func TestMappedPreV5FallsBackToHeap(t *testing.T) {
	dir := t.TempDir()
	writeV1File(t, dir+"/legacy"+collExt)
	e, err := NewEngineAt(dir, Options{Mapped: true})
	if err != nil {
		t.Fatalf("v1 file rejected under Mapped: %v", err)
	}
	c, err := e.Collection("legacy")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Index().MappedBytes(); got != 0 {
		t.Errorf("pre-v5 load MappedBytes = %d, want 0 (heap fallback)", got)
	}
	if got := c.DocCount(); got != 5 {
		t.Errorf("pre-v5 DocCount = %d, want 5", got)
	}
	if err := e.Save(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngineAt(dir, Options{Mapped: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	c2, err := e2.Collection("legacy")
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Index().MappedBytes(); got <= 0 {
		t.Errorf("post-migration MappedBytes = %d, want > 0", got)
	}
	rs, err := c2.Search("structured text")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Error("migrated mapped collection answers nothing")
	}
}
