package irs

import (
	"strings"
	"testing"

	"repro/internal/irs/analysis"
)

// passageFixture: two long documents containing both query terms —
// co-located in one, far apart in the other — plus a single-term
// document.
func passageFixture(t *testing.T) *Index {
	t.Helper()
	ix := NewIndex(analysis.NewAnalyzer(analysis.WithoutStemming(), analysis.WithStopwords(nil)))
	pad := func(n int, tag string) string {
		return strings.Repeat("pad"+tag+" ", n)
	}
	// Both terms within a 10-token neighbourhood.
	ix.Add("colocated", pad(60, "a")+"www nii together here "+pad(60, "b"), nil)
	// Terms ~120 tokens apart.
	ix.Add("dispersed", "www opening statement "+pad(120, "c")+" nii closing statement", nil)
	// Only one term.
	ix.Add("single", pad(30, "d")+"www alone "+pad(30, "e"), nil)
	return ix
}

func passageScores(t *testing.T, ix *Index, m Model, q string) map[string]float64 {
	t.Helper()
	n, err := ParseQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for d, v := range m.Eval(ix.Snapshot(), n) {
		ext, _ := ix.ExtID(d)
		out[ext] = v
	}
	return out
}

func TestPassagePrefersColocation(t *testing.T) {
	ix := passageFixture(t)
	pm := PassageModel{Window: 50}
	s := passageScores(t, ix, pm, "#and(www nii)")
	if s["colocated"] <= s["dispersed"] {
		t.Errorf("passage model: colocated %v <= dispersed %v", s["colocated"], s["dispersed"])
	}
	if s["dispersed"] <= s["single"] {
		// Both windows only ever see one term, but dispersed at
		// least contains both terms somewhere; with #and semantics
		// the best single-term window ties the single doc — allow
		// equality but not inversion.
		if s["dispersed"] < s["single"]-1e-9 {
			t.Errorf("dispersed %v < single %v", s["dispersed"], s["single"])
		}
	}
	// Whole-document inference net cannot tell colocated from
	// dispersed apart anywhere near as sharply: its ratio is bounded
	// by length effects only.
	inf := passageScores(t, ix, InferenceNet{}, "#and(www nii)")
	passageGap := s["colocated"] - s["dispersed"]
	wholeGap := inf["colocated"] - inf["dispersed"]
	if passageGap <= wholeGap {
		t.Errorf("passage gap %v <= whole-doc gap %v", passageGap, wholeGap)
	}
}

func TestPassageSingleTermMatchesOrdering(t *testing.T) {
	ix := passageFixture(t)
	pm := PassageModel{Window: 50}
	s := passageScores(t, ix, pm, "www")
	if len(s) != 3 {
		t.Fatalf("www matched %d docs, want 3", len(s))
	}
	for d, v := range s {
		if v <= 0.4 || v >= 1 {
			t.Errorf("belief(%s) = %v out of range", d, v)
		}
	}
}

func TestPassageOperators(t *testing.T) {
	ix := passageFixture(t)
	pm := PassageModel{Window: 50}
	and := passageScores(t, ix, pm, "#and(www nii)")
	or := passageScores(t, ix, pm, "#or(www nii)")
	mx := passageScores(t, ix, pm, "#max(www nii)")
	sum := passageScores(t, ix, pm, "#sum(www nii)")
	for _, d := range []string{"colocated", "dispersed", "single"} {
		if or[d] < and[d]-1e-9 {
			t.Errorf("%s: or %v < and %v", d, or[d], and[d])
		}
		if mx[d] < sum[d]-1e-9 {
			t.Errorf("%s: max %v < sum %v", d, mx[d], sum[d])
		}
	}
	// #wsum and #not degrade gracefully.
	ws := passageScores(t, ix, pm, "#wsum(3 www 1 nii)")
	if len(ws) != 3 {
		t.Errorf("wsum matched %d", len(ws))
	}
	// Negation: both docs have a www-only window, so a tie is the
	// correct best-passage outcome; only an inversion is a bug.
	not := passageScores(t, ix, pm, "#and(www #not(nii))")
	if not["single"] < not["colocated"]-1e-9 {
		t.Errorf("negation inside passage: single %v < colocated %v", not["single"], not["colocated"])
	}
}

func TestPassageModelRegisteredByName(t *testing.T) {
	m, err := ModelByName("passage")
	if err != nil || m.Name() != "passage" {
		t.Fatalf("ModelByName(passage) = %v, %v", m, err)
	}
	// Usable as a collection model, surviving persistence.
	dir := t.TempDir()
	e, err := NewEngineAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := e.CreateCollection("p", PassageModel{Window: 20})
	if err != nil {
		t.Fatal(err)
	}
	c.AddDocument("d", "alpha beta gamma", nil)
	if err := e.Save(); err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngineAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := e2.Collection("p")
	if err != nil {
		t.Fatal(err)
	}
	if c2.Model().Name() != "passage" {
		t.Errorf("model after reload = %q", c2.Model().Name())
	}
	if rs, err := c2.Search("beta"); err != nil || len(rs) != 1 {
		t.Errorf("passage search after reload: %v, %v", rs, err)
	}
}

func TestPassageEmptyAndUnknown(t *testing.T) {
	ix := passageFixture(t)
	pm := PassageModel{}
	if got := pm.Eval(ix.Snapshot(), nil); got != nil {
		t.Error("Eval(nil) != nil")
	}
	s := passageScores(t, ix, pm, "zzznothing")
	if len(s) != 0 {
		t.Errorf("unknown term matched %v", s)
	}
}
