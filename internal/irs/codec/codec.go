// Package codec implements the block storage format behind the IRS
// posting lists: document-ordered blocks of up to BlockSize postings,
// doc IDs delta-encoded + varint, term frequencies varint, and
// positions delta+varint per document, with per-block metadata (first
// and last doc ID, max within-block tf) kept alongside so top-k
// evaluation can skip whole blocks without decoding them.
//
// Delta arithmetic is modular (uint32 wraparound), so Encode→Decode
// round-trips exactly for arbitrary input sequences — including
// non-ascending ones — which keeps the codec honest under fuzzing.
// The engine itself only ever encodes strictly ascending local doc
// IDs and ascending position lists.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// BlockSize is the number of postings a full block holds. Posting
// lists buffer appends in an uncompressed tail and seal it into a
// block each time it reaches this size.
const BlockSize = 128

// MaxBlockPostings caps the posting count a decoded block may claim;
// it exists to bound allocations when reading untrusted bytes (the
// engine never exceeds BlockSize).
const MaxBlockPostings = 1 << 16

// MaxTFLimit caps a single term frequency read from untrusted bytes.
const MaxTFLimit = 1 << 26

// ErrCorrupt reports a malformed block stream.
var ErrCorrupt = errors.New("codec: corrupt block")

// Block is one sealed run of postings for a single term. Docs, TFs
// and Pos are independent byte streams so doc IDs can be decoded for
// candidate discovery without touching frequencies or positions.
//
// A Block is immutable after Encode; readers share it freely.
type Block struct {
	FirstDoc uint32 // first (local) doc ID in the block
	LastDoc  uint32 // last (local) doc ID in the block
	MaxTF    uint32 // max term frequency within the block
	N        int    // number of postings

	Docs []byte // doc IDs: first absolute, then gaps, uvarint
	TFs  []byte // term frequencies, uvarint
	Pos  []byte // per doc: first position absolute, then gaps, uvarint
}

// Encode seals docs[i] with positions[i] (tf = len(positions[i]))
// into a Block. len(docs) must equal len(positions) and be ≥ 1.
func Encode(docs []uint32, positions [][]uint32) Block {
	if len(docs) == 0 || len(docs) != len(positions) {
		panic(fmt.Sprintf("codec: Encode(%d docs, %d position lists)", len(docs), len(positions)))
	}
	b := Block{
		FirstDoc: docs[0],
		LastDoc:  docs[len(docs)-1],
		N:        len(docs),
	}
	b.Docs = make([]byte, 0, len(docs)+binary.MaxVarintLen32)
	prev := uint32(0)
	for i, d := range docs {
		if i == 0 {
			b.Docs = binary.AppendUvarint(b.Docs, uint64(d))
		} else {
			b.Docs = binary.AppendUvarint(b.Docs, uint64(d-prev))
		}
		prev = d
	}
	b.TFs = make([]byte, 0, len(docs))
	npos := 0
	for _, ps := range positions {
		tf := uint32(len(ps))
		b.TFs = binary.AppendUvarint(b.TFs, uint64(tf))
		if tf > b.MaxTF {
			b.MaxTF = tf
		}
		npos += len(ps)
	}
	b.Pos = make([]byte, 0, npos+len(docs))
	for _, ps := range positions {
		pp := uint32(0)
		for i, p := range ps {
			if i == 0 {
				b.Pos = binary.AppendUvarint(b.Pos, uint64(p))
			} else {
				b.Pos = binary.AppendUvarint(b.Pos, uint64(p-pp))
			}
			pp = p
		}
	}
	return b
}

// uvarint32 reads one uvarint that must fit uint32.
func uvarint32(buf []byte) (uint32, int, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 || v > 0xFFFFFFFF {
		return 0, 0, ErrCorrupt
	}
	return uint32(v), n, nil
}

// DecodeDocs appends the block's doc IDs to dst and returns it.
func (b *Block) DecodeDocs(dst []uint32) ([]uint32, error) {
	if b.N < 0 || b.N > MaxBlockPostings {
		return dst, ErrCorrupt
	}
	buf := b.Docs
	prev := uint32(0)
	for i := 0; i < b.N; i++ {
		v, n, err := uvarint32(buf)
		if err != nil {
			return dst, err
		}
		buf = buf[n:]
		if i == 0 {
			prev = v
		} else {
			prev += v
		}
		dst = append(dst, prev)
	}
	if len(buf) != 0 {
		return dst, ErrCorrupt
	}
	return dst, nil
}

// DecodeTFs appends the block's term frequencies to dst and returns
// it.
func (b *Block) DecodeTFs(dst []uint32) ([]uint32, error) {
	if b.N < 0 || b.N > MaxBlockPostings {
		return dst, ErrCorrupt
	}
	buf := b.TFs
	for i := 0; i < b.N; i++ {
		v, n, err := uvarint32(buf)
		if err != nil || v > MaxTFLimit {
			return dst, ErrCorrupt
		}
		buf = buf[n:]
		dst = append(dst, v)
	}
	if len(buf) != 0 {
		return dst, ErrCorrupt
	}
	return dst, nil
}

// DecodePositions decodes every document's position list. tfs must
// be the block's decoded term frequencies (it determines how many
// positions belong to each document). The returned lists share one
// flat backing array.
func (b *Block) DecodePositions(tfs []uint32) ([][]uint32, error) {
	if len(tfs) != b.N {
		return nil, ErrCorrupt
	}
	total := 0
	for _, tf := range tfs {
		if tf > MaxTFLimit {
			return nil, ErrCorrupt
		}
		total += int(tf)
	}
	flat := make([]uint32, 0, total)
	out := make([][]uint32, b.N)
	buf := b.Pos
	for i, tf := range tfs {
		start := len(flat)
		prev := uint32(0)
		for j := uint32(0); j < tf; j++ {
			v, n, err := uvarint32(buf)
			if err != nil {
				return nil, err
			}
			buf = buf[n:]
			if j == 0 {
				prev = v
			} else {
				prev += v
			}
			flat = append(flat, prev)
		}
		out[i] = flat[start:len(flat):len(flat)]
	}
	if len(buf) != 0 {
		return nil, ErrCorrupt
	}
	return out, nil
}

// SizeBytes reports the compressed in-memory footprint of the block:
// the three byte streams plus the fixed metadata.
func (b *Block) SizeBytes() int {
	return len(b.Docs) + len(b.TFs) + len(b.Pos) + 16
}

// Validate fully decodes the block and checks that the metadata
// (FirstDoc, LastDoc, MaxTF, N) matches the streams. Used by the
// persistence layer after reading untrusted bytes.
func (b *Block) Validate() error {
	if b.N <= 0 || b.N > MaxBlockPostings {
		return ErrCorrupt
	}
	docs, err := b.DecodeDocs(nil)
	if err != nil {
		return err
	}
	if docs[0] != b.FirstDoc || docs[len(docs)-1] != b.LastDoc {
		return ErrCorrupt
	}
	tfs, err := b.DecodeTFs(nil)
	if err != nil {
		return err
	}
	maxTF := uint32(0)
	for _, tf := range tfs {
		if tf > maxTF {
			maxTF = tf
		}
	}
	if maxTF != b.MaxTF {
		return ErrCorrupt
	}
	if _, err := b.DecodePositions(tfs); err != nil {
		return err
	}
	return nil
}
