package codec

import (
	"reflect"
	"testing"
)

func roundTrip(t *testing.T, docs []uint32, positions [][]uint32) Block {
	t.Helper()
	b := Encode(docs, positions)
	if b.N != len(docs) || b.FirstDoc != docs[0] || b.LastDoc != docs[len(docs)-1] {
		t.Fatalf("metadata mismatch: %+v for %v", b, docs)
	}
	gotDocs, err := b.DecodeDocs(nil)
	if err != nil {
		t.Fatalf("DecodeDocs: %v", err)
	}
	if !reflect.DeepEqual(gotDocs, docs) {
		t.Fatalf("docs: got %v want %v", gotDocs, docs)
	}
	tfs, err := b.DecodeTFs(nil)
	if err != nil {
		t.Fatalf("DecodeTFs: %v", err)
	}
	for i, tf := range tfs {
		if int(tf) != len(positions[i]) {
			t.Fatalf("tf[%d]: got %d want %d", i, tf, len(positions[i]))
		}
	}
	gotPos, err := b.DecodePositions(tfs)
	if err != nil {
		t.Fatalf("DecodePositions: %v", err)
	}
	for i := range positions {
		if len(positions[i]) == 0 && len(gotPos[i]) == 0 {
			continue
		}
		if !reflect.DeepEqual(gotPos[i], positions[i]) {
			t.Fatalf("positions[%d]: got %v want %v", i, gotPos[i], positions[i])
		}
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return b
}

func TestRoundTripBasic(t *testing.T) {
	docs := []uint32{3, 7, 8, 100, 1 << 20}
	positions := [][]uint32{
		{0, 1, 2},
		{5},
		{9, 4000},
		{},
		{1, 2, 3, 4, 5, 6, 7},
	}
	b := roundTrip(t, docs, positions)
	if b.MaxTF != 7 {
		t.Fatalf("MaxTF: got %d want 7", b.MaxTF)
	}
}

func TestRoundTripSingleDoc(t *testing.T) {
	roundTrip(t, []uint32{0}, [][]uint32{{0}})
	roundTrip(t, []uint32{0xFFFFFFFF}, [][]uint32{nil})
}

func TestRoundTripPathologicalGaps(t *testing.T) {
	// Maximal doc and position gaps, plus non-ascending sequences
	// (wraparound deltas must still round-trip exactly).
	roundTrip(t, []uint32{0, 0xFFFFFFFF}, [][]uint32{{0xFFFFFFFF}, {0xFFFFFFFF, 0, 0xFFFFFFFF}})
	roundTrip(t, []uint32{10, 3, 10, 2}, [][]uint32{{7, 1}, {}, {5, 5, 5}, {0}})
}

func TestRoundTripFullBlock(t *testing.T) {
	docs := make([]uint32, BlockSize)
	positions := make([][]uint32, BlockSize)
	for i := range docs {
		docs[i] = uint32(i * 3)
		positions[i] = []uint32{uint32(i), uint32(i + 100)}
	}
	b := roundTrip(t, docs, positions)
	if b.SizeBytes() >= 8*BlockSize+4*2*BlockSize {
		t.Fatalf("compressed block (%d bytes) not smaller than flat representation", b.SizeBytes())
	}
}

func TestDecodeCorrupt(t *testing.T) {
	b := Encode([]uint32{1, 2, 3}, [][]uint32{{1}, {2}, {3}})
	for _, bad := range []Block{
		{N: 3, Docs: b.Docs[:1], TFs: b.TFs, Pos: b.Pos},
		{N: 4, Docs: b.Docs, TFs: b.TFs, Pos: b.Pos},
		{N: 2, Docs: b.Docs, TFs: b.TFs, Pos: b.Pos}, // trailing bytes
		{N: MaxBlockPostings + 1},
		{N: -1},
	} {
		if _, err := bad.DecodeDocs(nil); err == nil {
			if _, err := bad.DecodeTFs(nil); err == nil {
				t.Fatalf("corrupt block %+v decoded cleanly", bad)
			}
		}
	}
	bad := b
	bad.MaxTF = 99
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted wrong MaxTF")
	}
	bad = b
	bad.LastDoc = 99
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted wrong LastDoc")
	}
}
