package codec

import (
	"reflect"
	"testing"
)

// FuzzBlockRoundTrip derives an arbitrary posting run from the fuzz
// input and checks Encode→Decode is the exact identity. Deltas are
// modular, so even non-ascending doc IDs and positions (which the
// engine never produces) must round-trip bit-for-bit.
func FuzzBlockRoundTrip(f *testing.F) {
	f.Add([]byte{1, 1, 5})
	f.Add([]byte{0, 0})
	f.Add([]byte{255, 3, 255, 0, 128, 7, 2, 9, 9})
	f.Add([]byte{1, 7, 1, 2, 3, 4, 5, 6, 7, 200, 1, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		var docs []uint32
		var positions [][]uint32
		doc := uint32(0)
		for len(data) >= 2 && len(docs) < BlockSize {
			// Wide gaps via byte-cubing so single-byte inputs reach
			// pathological multi-byte varint territory.
			doc += uint32(data[0]) * uint32(data[0]) * uint32(data[0])
			tf := int(data[1] % 9)
			data = data[2:]
			ps := make([]uint32, 0, tf)
			pos := uint32(0)
			for j := 0; j < tf && len(data) > 0; j++ {
				pos += uint32(data[0]) << (data[0] % 17)
				ps = append(ps, pos)
				data = data[1:]
			}
			docs = append(docs, doc)
			positions = append(positions, ps)
		}
		if len(docs) == 0 {
			return
		}
		b := Encode(docs, positions)
		gotDocs, err := b.DecodeDocs(nil)
		if err != nil {
			t.Fatalf("DecodeDocs: %v", err)
		}
		if !reflect.DeepEqual(gotDocs, docs) {
			t.Fatalf("docs: got %v want %v", gotDocs, docs)
		}
		tfs, err := b.DecodeTFs(nil)
		if err != nil {
			t.Fatalf("DecodeTFs: %v", err)
		}
		gotPos, err := b.DecodePositions(tfs)
		if err != nil {
			t.Fatalf("DecodePositions: %v", err)
		}
		for i := range positions {
			if int(tfs[i]) != len(positions[i]) {
				t.Fatalf("tf[%d]: got %d want %d", i, tfs[i], len(positions[i]))
			}
			if len(positions[i]) == 0 {
				continue
			}
			if !reflect.DeepEqual(gotPos[i], positions[i]) {
				t.Fatalf("positions[%d]: got %v want %v", i, gotPos[i], positions[i])
			}
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
	})
}

// FuzzBlockDecode throws arbitrary bytes at the decoders as if they
// came from a hostile .irsc file: they must return an error or a
// consistent result, never panic or over-allocate.
func FuzzBlockDecode(f *testing.F) {
	f.Add(uint16(3), []byte{1, 1, 1}, []byte{1, 1, 1}, []byte{0, 0, 0})
	f.Add(uint16(1), []byte{200}, []byte{}, []byte{})
	f.Fuzz(func(t *testing.T, n uint16, docs, tfs, pos []byte) {
		b := Block{N: int(n), Docs: docs, TFs: tfs, Pos: pos}
		if ds, err := b.DecodeDocs(nil); err == nil {
			if len(ds) != b.N {
				t.Fatalf("DecodeDocs returned %d docs for N=%d", len(ds), b.N)
			}
		}
		if ts, err := b.DecodeTFs(nil); err == nil {
			if len(ts) != b.N {
				t.Fatalf("DecodeTFs returned %d tfs for N=%d", len(ts), b.N)
			}
			if ps, err := b.DecodePositions(ts); err == nil {
				for i, tf := range ts {
					if len(ps[i]) != int(tf) {
						t.Fatalf("positions[%d] has %d entries, tf %d", i, len(ps[i]), tf)
					}
				}
			}
		}
		_ = b.Validate()
		_ = b.SizeBytes()
	})
}
