package irs

import "math"

// Compiled block-max bounds. The per-candidate bound of the baseline
// (whole-list) mode re-derives every leaf's belief cap from scratch on
// each probe — a dictionary lookup, a containment search and the
// belief float expression per leaf per candidate. Block storage makes
// almost all of that hoistable: a leaf's cap belief depends only on
// its block's MaxTF (the shard-minimum document length and the leaf's
// idf are evaluation constants), so the interval every block can
// contribute is computable once per (leaf, block) — ~1/BlockSize of
// the candidate count — and bound construction degenerates into
// membership resolution plus the operator fold. Membership itself is
// amortized O(1): shard candidates are probed in ascending DocID
// order (newShardScan walks ctx.candidates[si], which newEvalContext
// sorts), so a merge-join cursor over each leaf's doc streams replaces
// the per-probe binary searches.
//
// The compiled closures compute bit-for-bit the same intervals as the
// generic nodeBoundAt walk: leaves yield either the default-belief
// point interval or the exact expression the per-candidate path used,
// and every operator folds its children in the same sequential order.

// leafProbe resolves ascending membership probes against one leafView
// without binary searches: the block/offset/tail cursors only ever
// move forward. Out-of-order probes (none today — newShardScan is the
// only caller and it ascends) fall back to the view's full lookup.
type leafProbe struct {
	lv         *leafView
	bi, pi, ti int
	last       uint32
}

// blockAt returns the index of the block containing the local doc id
// (len(blocks) for the tail); ok is false when the leaf has no
// posting for it.
func (p *leafProbe) blockAt(local uint32) (int, bool) {
	lv := p.lv
	if local < p.last {
		return lv.findBlock(local) // defensive: out-of-order probe
	}
	p.last = local
	for p.bi < len(lv.blocks) {
		bv := &lv.blocks[p.bi]
		if bv.bl.LastDoc < local {
			p.bi++
			p.pi = 0
			continue
		}
		docs := bv.docs
		for p.pi < len(docs) && docs[p.pi] < local {
			p.pi++
		}
		if p.pi < len(docs) && docs[p.pi] == local {
			return p.bi, true
		}
		return 0, false
	}
	n := len(lv.s.shards)
	for p.ti < len(lv.tail) && uint32(int(lv.tail[p.ti].Doc)/n) < local {
		p.ti++
	}
	if p.ti < len(lv.tail) && uint32(int(lv.tail[p.ti].Doc)/n) == local {
		return len(lv.blocks), true
	}
	return 0, false
}

// find is the slow-path lookup shared with leafView.find, returning
// only the block index.
func (lv *leafView) findBlock(local uint32) (int, bool) {
	bi, _, ok := lv.find(local)
	return bi, ok
}

// boundFn evaluates a candidate's score interval; compiled once per
// (evaluation, shard).
type boundFn func(DocID) interval

// compileBoundAt builds the operator fold over compiled leaf
// functions, mirroring nodeBoundAt case for case (identical float
// sequences, no per-candidate tree dispatch on maps).
func compileBoundAt(n *Node, b float64, leafFn func(*Node) boundFn) boundFn {
	switch n.Kind {
	case NodeTerm, NodePhrase, NodeSyn:
		return leafFn(n)
	}
	kids := make([]boundFn, len(n.Children))
	for i, c := range n.Children {
		kids[i] = compileBoundAt(c, b, leafFn)
	}
	switch n.Kind {
	case NodeAnd:
		return func(d DocID) interval {
			iv := pointIv(1)
			for _, kf := range kids {
				iv = mulIv(iv, kf(d))
			}
			return iv
		}
	case NodeOr:
		return func(d DocID) interval {
			q := pointIv(1)
			for _, kf := range kids {
				k := kf(d)
				q = mulIv(q, interval{1 - k.hi, 1 - k.lo})
			}
			return interval{1 - q.hi, 1 - q.lo}
		}
	case NodeNot:
		return func(d DocID) interval {
			k := kids[0](d)
			return interval{1 - k.hi, 1 - k.lo}
		}
	case NodeSum:
		m := float64(len(n.Children))
		return func(d DocID) interval {
			var lo, hi float64
			for _, kf := range kids {
				k := kf(d)
				lo += k.lo
				hi += k.hi
			}
			return interval{lo / m, hi / m}
		}
	case NodeWSum:
		weights := n.Weights
		return func(d DocID) interval {
			var lo, hi, w float64
			for i, kf := range kids {
				k := kf(d)
				if weights[i] >= 0 {
					lo += weights[i] * k.lo
					hi += weights[i] * k.hi
				} else {
					lo += weights[i] * k.hi
					hi += weights[i] * k.lo
				}
				w += weights[i]
			}
			if w == 0 {
				return pointIv(b)
			}
			if w < 0 {
				return interval{hi / w, lo / w}
			}
			return interval{lo / w, hi / w}
		}
	case NodeMax:
		return func(d DocID) interval {
			iv := pointIv(0)
			for i, kf := range kids {
				k := kf(d)
				if i == 0 {
					iv = interval{math.Max(0, k.lo), math.Max(0, k.hi)}
					continue
				}
				iv = interval{math.Max(iv.lo, k.lo), math.Max(iv.hi, k.hi)}
			}
			return iv
		}
	}
	dflt := pointIv(b)
	return func(DocID) interval { return dflt }
}

// compileInfBound builds the inference net's compiled per-shard bound.
// Every leaf resolves its statistics once (instead of a map lookup per
// candidate), term leaves precompute the belief interval each block
// can contribute from its MaxTF metadata (the shard-minimum length,
// avgdl and the leaf idf are evaluation constants, so the interval is
// a pure function of the block), and membership runs through ascending
// leafProbes. The intervals are computed by the very expressions the
// per-candidate path evaluates, in the same order, so the compiled
// bound is bit-identical to nodeBoundAt over capTFAt(…, blockmax).
func (m InferenceNet) compileInfBound(ctx *evalContext, root *Node, b float64, si int, dl, avg float64, idf map[*termStat]float64) boundFn {
	nsh := len(ctx.s.shards)
	dflt := pointIv(b)
	return compileBoundAt(root, b, func(leaf *Node) boundFn {
		st := ctx.leafStat(leaf)
		if st == nil || st.df == 0 {
			return func(DocID) interval { return dflt }
		}
		w := idf[st]
		ivOf := func(capTF int) interval {
			if capTF == 0 {
				return dflt
			}
			// Mirrors termBelief exactly (see EvalTopK's per-candidate
			// bound): same expression, same operand order.
			ti := float64(capTF) / (float64(capTF) + 0.5 + 1.5*dl/avg)
			return interval{b, b + (1-b)*ti*w}
		}
		switch {
		case st.views != nil:
			lv := st.views[si]
			// One interval per block plus the tail's, indexed by what
			// leafProbe.blockAt returns.
			ivs := make([]interval, len(lv.blocks)+1)
			for bi := range lv.blocks {
				ivs[bi] = ivOf(int(lv.blocks[bi].bl.MaxTF))
			}
			ivs[len(lv.blocks)] = ivOf(lv.tailMaxTF)
			p := leafProbe{lv: lv}
			return func(d DocID) interval {
				bi, ok := p.blockAt(uint32(int(d) / nsh))
				if !ok {
					return dflt
				}
				return ivs[bi]
			}
		case st.members != nil:
			mvs := st.members[si]
			probes := make([]leafProbe, len(mvs))
			for i := range mvs {
				probes[i] = leafProbe{lv: mvs[i]}
			}
			return func(d DocID) interval {
				local := uint32(int(d) / nsh)
				sum := 0
				for i := range probes {
					if bi, ok := probes[i].blockAt(local); ok {
						mv := probes[i].lv
						if bi == len(mv.blocks) {
							sum += mv.tailMaxTF
						} else {
							sum += int(mv.blocks[bi].bl.MaxTF)
						}
					}
				}
				return ivOf(sum)
			}
		default:
			tfm := st.tf[si]
			if tfm == nil {
				return func(DocID) interval { return dflt }
			}
			return func(d DocID) interval { return ivOf(tfm[d]) }
		}
	})
}
