package irs

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseQueryForms(t *testing.T) {
	tests := []struct {
		in   string
		want string // canonical String()
	}{
		{"WWW", "WWW"},
		{"WWW NII", "#sum(WWW NII)"},
		{"#and(WWW NII)", "#and(WWW NII)"},
		{"#and( WWW , NII )", "#and(WWW NII)"},
		{"#or(#and(a b) c)", "#or(#and(a b) c)"},
		{"#not(spam)", "#not(spam)"},
		{"#max(a b c)", "#max(a b c)"},
		{"#wsum(2 WWW 1 NII)", "#wsum(2 WWW 1 NII)"},
		{"#wsum(0.5 a 1.5 #and(b c))", "#wsum(0.5 a 1.5 #and(b c))"},
		{"#phrase(digital library)", "#phrase(digital library)"},
		{"#syn(www web)", "#syn(www web)"},
		{"#AND(a b)", "#and(a b)"},
		{"#band(a b)", "#and(a b)"},
	}
	for _, tt := range tests {
		n, err := ParseQuery(tt.in)
		if err != nil {
			t.Errorf("ParseQuery(%q): %v", tt.in, err)
			continue
		}
		if got := n.String(); got != tt.want {
			t.Errorf("ParseQuery(%q).String() = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestParseQueryErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"#and",
		"#and(",
		"#and()",
		"#bogus(a)",
		"#not(a b)",
		"#wsum(x a)",
		"#phrase(#and(a b))",
		"(a)",
		"#and(a))",
	}
	for _, q := range bad {
		if _, err := ParseQuery(q); err == nil {
			t.Errorf("ParseQuery(%q) succeeded, want error", q)
		}
	}
}

func TestNodeTerms(t *testing.T) {
	n, err := ParseQuery("#and(WWW #or(NII WWW) #phrase(world wide web))")
	if err != nil {
		t.Fatal(err)
	}
	got := n.Terms()
	want := []string{"WWW", "NII", "world", "wide", "web"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestNodeSubqueries(t *testing.T) {
	n, _ := ParseQuery("#and(WWW NII)")
	subs := n.Subqueries()
	if len(subs) != 2 {
		t.Fatalf("Subqueries(#and) = %d, want 2", len(subs))
	}
	if subs[0].String() != "WWW" || subs[1].String() != "NII" {
		t.Errorf("Subqueries = %v %v", subs[0], subs[1])
	}
	leaf, _ := ParseQuery("WWW")
	if subs := leaf.Subqueries(); len(subs) != 1 || subs[0] != leaf {
		t.Error("Subqueries(term) should be the term itself")
	}
	ph, _ := ParseQuery("#phrase(a b)")
	if subs := ph.Subqueries(); len(subs) != 1 || subs[0] != ph {
		t.Error("Subqueries(#phrase) should be the phrase itself")
	}
}

// Property: parsing the canonical form reproduces the canonical form
// (round-trip stability), for randomly generated trees.
func TestParseQueryRoundTripProperty(t *testing.T) {
	terms := []string{"www", "nii", "telnet", "protocol", "journal"}
	var gen func(rng *quickRand, depth int) *Node
	gen = func(rng *quickRand, depth int) *Node {
		if depth <= 0 || rng.intn(3) == 0 {
			return Term(terms[rng.intn(len(terms))])
		}
		kinds := []NodeKind{NodeAnd, NodeOr, NodeSum, NodeMax, NodeWSum, NodeNot, NodePhrase, NodeSyn}
		k := kinds[rng.intn(len(kinds))]
		n := &Node{Kind: k}
		cnt := 1 + rng.intn(3)
		if k == NodeNot {
			cnt = 1
		}
		for i := 0; i < cnt; i++ {
			var c *Node
			if k == NodePhrase || k == NodeSyn {
				c = Term(terms[rng.intn(len(terms))])
			} else {
				c = gen(rng, depth-1)
			}
			n.Children = append(n.Children, c)
			if k == NodeWSum {
				n.Weights = append(n.Weights, float64(1+rng.intn(5)))
			}
		}
		return n
	}
	f := func(seed int64) bool {
		rng := &quickRand{state: uint64(seed)*2654435761 + 1}
		n := gen(rng, 3)
		s := n.String()
		n2, err := ParseQuery(s)
		if err != nil {
			t.Logf("reparse of %q failed: %v", s, err)
			return false
		}
		return n2.String() == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// quickRand is a tiny deterministic generator for property tests.
type quickRand struct{ state uint64 }

func (r *quickRand) intn(n int) int {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return int((r.state >> 33) % uint64(n))
}

func TestParseErrorMessage(t *testing.T) {
	_, err := ParseQuery("#bogus(a)")
	if err == nil {
		t.Fatal("expected error")
	}
	var pe *ParseError
	if !asParseError(err, &pe) {
		t.Fatalf("error type = %T, want *ParseError", err)
	}
	if !strings.Contains(pe.Error(), "bogus") {
		t.Errorf("error message %q does not name the operator", pe.Error())
	}
}

func asParseError(err error, target **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*target = pe
	}
	return ok
}
