package irs

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/irs/analysis"
)

// newTestIndex returns an index with stemming and stopping disabled
// so test expectations stay literal.
func newTestIndex() *Index {
	return NewIndex(analysis.NewAnalyzer(analysis.WithoutStemming(), analysis.WithStopwords(nil)))
}

func TestIndexAddAndPostings(t *testing.T) {
	ix := newTestIndex()
	if _, err := ix.Add("d1", "telnet is a protocol telnet", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Add("d2", "telnet enables remote login", nil); err != nil {
		t.Fatal(err)
	}
	ps := ix.Postings("telnet")
	if len(ps) != 2 {
		t.Fatalf("postings(telnet) = %d entries, want 2", len(ps))
	}
	if ps[0].TF() != 2 {
		t.Errorf("tf(telnet, d1) = %d, want 2", ps[0].TF())
	}
	if got := ix.DF("telnet"); got != 2 {
		t.Errorf("DF(telnet) = %d, want 2", got)
	}
	if got := ix.DF("gopher"); got != 0 {
		t.Errorf("DF(gopher) = %d, want 0", got)
	}
	if got := ix.DocCount(); got != 2 {
		t.Errorf("DocCount = %d, want 2", got)
	}
}

func TestIndexDuplicateAdd(t *testing.T) {
	ix := newTestIndex()
	if _, err := ix.Add("d1", "x", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Add("d1", "y", nil); err == nil {
		t.Fatal("second Add(d1) succeeded, want ErrDuplicateDoc")
	}
}

func TestIndexDeleteAndDF(t *testing.T) {
	ix := newTestIndex()
	ix.Add("d1", "www nii", nil)
	ix.Add("d2", "www", nil)
	if err := ix.Delete("d1"); err != nil {
		t.Fatal(err)
	}
	if got := ix.DF("www"); got != 1 {
		t.Errorf("DF(www) after delete = %d, want 1", got)
	}
	if got := ix.DF("nii"); got != 0 {
		t.Errorf("DF(nii) after delete = %d, want 0", got)
	}
	if ix.HasDoc("d1") {
		t.Error("HasDoc(d1) = true after delete")
	}
	if err := ix.Delete("d1"); err == nil {
		t.Error("double delete succeeded, want error")
	}
	// d1's extID is free again.
	if _, err := ix.Add("d1", "fresh text", nil); err != nil {
		t.Errorf("re-add after delete failed: %v", err)
	}
}

func TestIndexUpdate(t *testing.T) {
	ix := newTestIndex()
	ix.Add("d1", "old content", nil)
	if _, err := ix.Update("d1", "new content entirely", nil); err != nil {
		t.Fatal(err)
	}
	if got := ix.DF("old"); got != 0 {
		t.Errorf("DF(old) = %d, want 0", got)
	}
	if got := ix.DF("entirely"); got != 1 {
		t.Errorf("DF(entirely) = %d, want 1", got)
	}
	if _, err := ix.Update("ghost", "x", nil); err == nil {
		t.Error("Update(ghost) succeeded, want error")
	}
}

func TestIndexMeta(t *testing.T) {
	ix := newTestIndex()
	id, _ := ix.Add("d1", "x", map[string]string{"oid": "42", "mode": "0"})
	if v, ok := ix.Meta(id, "oid"); !ok || v != "42" {
		t.Errorf("Meta(oid) = %q,%v want 42,true", v, ok)
	}
	if _, ok := ix.Meta(id, "missing"); ok {
		t.Error("Meta(missing) reported ok")
	}
}

func TestIndexAvgDocLen(t *testing.T) {
	ix := newTestIndex()
	ix.Add("d1", "one two three four", nil) // 4 terms
	ix.Add("d2", "one two", nil)            // 2 terms
	if got := ix.AvgDocLen(); got != 3 {
		t.Errorf("AvgDocLen = %v, want 3", got)
	}
	ix.Delete("d2")
	if got := ix.AvgDocLen(); got != 4 {
		t.Errorf("AvgDocLen after delete = %v, want 4", got)
	}
}

func TestIndexCompact(t *testing.T) {
	ix := newTestIndex()
	ix.Add("d1", "aa bb", nil)
	ix.Add("d2", "bb cc", nil)
	ix.Add("d3", "cc dd", nil)
	ix.Delete("d2")
	sizeBefore := ix.SizeBytes()
	ix.Compact()
	if got := ix.DocCount(); got != 2 {
		t.Fatalf("DocCount after compact = %d, want 2", got)
	}
	if ix.SizeBytes() >= sizeBefore {
		t.Errorf("SizeBytes did not shrink: %d >= %d", ix.SizeBytes(), sizeBefore)
	}
	// Data still reachable under external ids.
	if len(ix.Postings("aa")) != 1 || len(ix.Postings("dd")) != 1 {
		t.Error("postings lost by Compact")
	}
	if got := ix.DF("bb"); got != 1 {
		t.Errorf("DF(bb) after compact = %d, want 1", got)
	}
	if got := ix.TermCount(); got != 4 {
		t.Errorf("TermCount = %d, want 4 (aa bb cc dd)", got)
	}
}

// Compact must reclaim storage, not just drop tombstoned postings:
// incremental adds grow Positions arrays by doubling (a term with
// tf=5 retains capacity 8) and leave sub-block runs as flat tails;
// Compact reseals everything into compressed blocks. SizeBytes
// counts tail capacity and block bytes, so the reclaim is observable
// even with no deletions at all.
func TestCompactTightensPositions(t *testing.T) {
	ix := newTestIndex()
	// 5 occurrences -> positions slice grows 1,2,4,8: cap 8, len 5.
	ix.Add("d1", "echo echo echo echo echo", nil)
	ix.Add("d2", "other words", nil)
	before := ix.SizeBytes()
	ix.Compact()
	after := ix.SizeBytes()
	if after >= before {
		t.Errorf("Compact reclaimed nothing: SizeBytes %d -> %d", before, after)
	}
	ps := ix.Postings("echo")
	if len(ps) != 1 || ps[0].TF() != 5 {
		t.Fatalf("postings damaged by Compact: %v", ps)
	}
	if cap(ps[0].Positions) != len(ps[0].Positions) {
		t.Errorf("positions still over-allocated after Compact: len %d cap %d",
			len(ps[0].Positions), cap(ps[0].Positions))
	}
	// Reclaimed bytes: 3 unused position slots x 4 bytes at least
	// (these sub-compactSealMin runs stay flat, merely trimmed).
	if before-after < 12 {
		t.Errorf("reclaimed only %d bytes, want >= 12", before-after)
	}
}

func TestIndexPositions(t *testing.T) {
	ix := newTestIndex()
	ix.Add("d1", "digital library of digital documents", nil)
	ps := ix.Postings("digital")
	if len(ps) != 1 {
		t.Fatal("missing postings")
	}
	want := []uint32{0, 3}
	if len(ps[0].Positions) != 2 || ps[0].Positions[0] != want[0] || ps[0].Positions[1] != want[1] {
		t.Errorf("positions = %v, want %v", ps[0].Positions, want)
	}
}

func TestIndexVersionBumps(t *testing.T) {
	ix := newTestIndex()
	v0 := ix.Version()
	ix.Add("d1", "x", nil)
	v1 := ix.Version()
	if v1 == v0 {
		t.Error("Add did not bump version")
	}
	ix.Delete("d1")
	if ix.Version() == v1 {
		t.Error("Delete did not bump version")
	}
}

// Property: any interleaving of adds and deletes keeps DF(term)
// equal to the number of live documents containing the term.
func TestIndexDFInvariantProperty(t *testing.T) {
	type op struct {
		Add   bool
		Doc   uint8
		Terms []uint8
	}
	f := func(ops []op) bool {
		ix := newTestIndex()
		live := make(map[string]map[string]bool) // doc -> term set
		for _, o := range ops {
			doc := fmt.Sprintf("d%d", o.Doc%8)
			if o.Add {
				if _, exists := live[doc]; exists {
					continue
				}
				text := ""
				terms := make(map[string]bool)
				for _, tn := range o.Terms {
					term := fmt.Sprintf("t%d", tn%16)
					text += term + " "
					terms[term] = true
				}
				if _, err := ix.Add(doc, text, nil); err != nil {
					return false
				}
				live[doc] = terms
			} else {
				if _, exists := live[doc]; !exists {
					continue
				}
				if err := ix.Delete(doc); err != nil {
					return false
				}
				delete(live, doc)
			}
		}
		// Verify DF for all terms.
		for i := 0; i < 16; i++ {
			term := fmt.Sprintf("t%d", i)
			want := 0
			for _, terms := range live {
				if terms[term] {
					want++
				}
			}
			if got := ix.DF(term); got != want {
				return false
			}
		}
		if got := ix.DocCount(); got != len(live) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Compact preserves the observable index state (live doc
// count, DFs, postings per live doc).
func TestIndexCompactEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ix := newTestIndex()
		docs := make(map[string]string)
		for i := 0; i < 30; i++ {
			doc := fmt.Sprintf("d%d", rng.Intn(12))
			if _, ok := docs[doc]; ok {
				if rng.Intn(2) == 0 {
					ix.Delete(doc)
					delete(docs, doc)
				}
				continue
			}
			text := ""
			for j := 0; j < 1+rng.Intn(6); j++ {
				text += fmt.Sprintf("t%d ", rng.Intn(10))
			}
			docs[doc] = text
			ix.Add(doc, text, nil)
		}
		type stat struct {
			docCount int
			dfs      map[string]int
		}
		snap := func() stat {
			s := stat{docCount: ix.DocCount(), dfs: make(map[string]int)}
			for i := 0; i < 10; i++ {
				term := fmt.Sprintf("t%d", i)
				s.dfs[term] = ix.DF(term)
			}
			return s
		}
		before := snap()
		ix.Compact()
		after := snap()
		if before.docCount != after.docCount {
			return false
		}
		for k, v := range before.dfs {
			if after.dfs[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestIndexConcurrentReaders(t *testing.T) {
	ix := newTestIndex()
	for i := 0; i < 50; i++ {
		ix.Add(fmt.Sprintf("d%d", i), "shared term plus unique"+fmt.Sprint(i), nil)
	}
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 100; i++ {
				ix.Postings("shared")
				ix.DocCount()
				ix.AvgDocLen()
			}
			done <- true
		}()
	}
	go func() {
		for i := 50; i < 80; i++ {
			ix.Add(fmt.Sprintf("d%d", i), "shared more", nil)
		}
		done <- true
	}()
	for i := 0; i < 9; i++ {
		<-done
	}
}
