//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package irs

import "syscall"

// Paging advice for mapped collections. Narrower build tags than
// mmap_unix.go: syscall.Madvise and the MADV_* constants are missing
// on some unix platforms (solaris, aix), where the fallback no-ops —
// the hints are purely advisory, so serving is correct either way.
//
// Errors are dropped by design. The v5 layout starts every section
// on a pageAlign boundary inside a page-aligned mapping, so the
// kernel's start-address alignment requirement holds; if a future
// layout change broke that, madvise would answer EINVAL and the open
// path must not care.

// adviseRandom tells the kernel the span will be touched in random
// order: posting-block streams (the BLOB section) are entered at
// dictionary-directed offsets, so sequential readahead would only
// drag in neighbouring queries' blocks.
func adviseRandom(b []byte) {
	if len(b) > 0 {
		_ = syscall.Madvise(b, syscall.MADV_RANDOM)
	}
}

// adviseWillNeed asks for asynchronous pre-fault of the span: the
// dictionary and document tables are walked eagerly at open and on
// every query's term lookups, so paying their page faults up front —
// off the first queries' critical path — is the point of mapped mode.
func adviseWillNeed(b []byte) {
	if len(b) > 0 {
		_ = syscall.Madvise(b, syscall.MADV_WILLNEED)
	}
}
