package irs

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/irs/analysis"
	"repro/internal/obs"
	"repro/internal/wal"
)

// Engine manages named collections — the unit of retrieval context
// in the paper ("Each document set is called 'collection'",
// Section 1.1). The number of collections in use is arbitrary and
// they may overlap freely (Section 1.3).
//
// If constructed with NewEngineAt, collections are persisted to one
// file per collection below the directory; Save/Load use the binary
// format in persist.go.
type Engine struct {
	mu        sync.RWMutex
	colls     map[string]*Collection
	dir       string
	defShards int
	mapped    bool

	walOn    bool
	walDir   string
	walFsync wal.SyncPolicy
	recovery []RecoveryReport
}

// Options configures an Engine.
type Options struct {
	// Shards is the default shard count for newly created
	// collections (values < 1 select one shard). Collections loaded
	// from disk keep their persisted shard count.
	Shards int

	// Mapped serves v5 collection files from read-only memory mappings
	// instead of loading posting blocks onto the heap (see OpenMapped):
	// open time and heap footprint become proportional to the tables,
	// and the OS page cache keeps only the working set resident. Rank
	// output is identical either way. Call Close on the engine when
	// done so the mappings are released. Pre-v5 files still load on
	// heap (and are served mapped after their next Save rewrites them).
	Mapped bool

	// WAL attaches a per-collection write-ahead log to persistent
	// engines: flush batches append analyzed-op records before the
	// commit, open replays the committed log tail onto the snapshot, and
	// Save rotates each log behind a barrier. Memory-only engines ignore
	// it.
	WAL bool

	// WALDir overrides where the .wal files live (default: the engine
	// directory, next to the .irsc snapshots).
	WALDir string

	// WALFsync selects when log appends reach the disk (default
	// SyncGroup: one fsync per commit-coalescing window).
	WALFsync wal.SyncPolicy
}

// NewEngine returns a memory-only engine.
func NewEngine(opts ...Options) *Engine {
	e := &Engine{colls: make(map[string]*Collection), defShards: 1}
	e.applyOptions(opts)
	return e
}

// NewEngineAt returns an engine whose collections persist under dir,
// loading any collections already stored there.
func NewEngineAt(dir string, opts ...Options) (*Engine, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("irs: create engine dir: %w", err)
	}
	e := &Engine{colls: make(map[string]*Collection), dir: dir, defShards: 1}
	e.applyOptions(opts)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("irs: read engine dir: %w", err)
	}
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), collExt) {
			continue
		}
		c, err := loadCollectionMode(filepath.Join(dir, ent.Name()), e.mapped)
		if err != nil {
			e.closeColls()
			return nil, err
		}
		e.colls[c.name] = c
	}
	if e.walOn {
		for _, c := range e.colls {
			if err := e.attachWAL(c); err != nil {
				e.closeColls()
				return nil, err
			}
		}
	}
	return e, nil
}

// attachWAL opens (recovering and replaying) the collection's log.
// Called with e.mu held or before the engine is published.
func (e *Engine) attachWAL(c *Collection) error {
	lg, rec, err := wal.Open(filepath.Join(e.walDir, c.name+walExt), wal.Options{
		Name: c.name,
		Sync: e.walFsync,
	})
	if err != nil {
		return err
	}
	replayed, err := c.replayWAL(rec.Records)
	if err != nil {
		lg.Close()
		return err
	}
	c.wl = lg
	if len(rec.Records) > 0 || rec.TornBytes > 0 || rec.Uncommitted > 0 {
		report := RecoveryReport{
			Collection:  c.name,
			Records:     len(rec.Records),
			Replayed:    replayed,
			TornBytes:   rec.TornBytes,
			Uncommitted: rec.Uncommitted,
			Watermark:   rec.Watermark,
			Epoch:       rec.Epoch,
		}
		c.walRecovered = &report
		e.recovery = append(e.recovery, report)
	}
	return nil
}

// RecoveryReports returns what each collection's open recovered from
// its write-ahead log, in open order; empty when every log was empty
// (clean shutdown) or the engine carries no WAL.
func (e *Engine) RecoveryReports() []RecoveryReport {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]RecoveryReport(nil), e.recovery...)
}

func (e *Engine) applyOptions(opts []Options) {
	for _, o := range opts {
		if o.Shards > 0 {
			e.defShards = o.Shards
		}
		if o.Mapped {
			e.mapped = true
		}
		if o.WAL && e.dir != "" {
			e.walOn = true
			e.walDir = e.dir
			if o.WALDir != "" {
				e.walDir = o.WALDir
			}
			e.walFsync = o.WALFsync
		}
	}
	if e.walOn {
		if err := os.MkdirAll(e.walDir, 0o755); err != nil {
			// Surface through the first attach; MkdirAll failing here
			// almost always means wal.Open fails identically.
			e.walDir = e.dir
		}
	}
}

// closeColls releases every collection's file mapping (no-ops for
// heap collections), keeping the first error.
func (e *Engine) closeColls() error {
	var first error
	for _, c := range e.colls {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close releases the file mappings of a mapped engine's collections.
// Heap-only engines need not call it (it is a cheap no-op). The caller
// must ensure no queries are in flight — see Index.Close.
func (e *Engine) Close() error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.closeColls()
}

// DefaultShards returns the shard count used for new collections.
func (e *Engine) DefaultShards() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.defShards
}

// SetDefaultShards changes the shard count used for collections
// created afterwards (clamped to [1, 65536]). Existing collections
// are unaffected; use Index().Reshard to migrate them.
func (e *Engine) SetDefaultShards(n int) {
	e.mu.Lock()
	e.defShards = clampShards(n)
	e.mu.Unlock()
}

const (
	collExt = ".irsc"
	walExt  = ".wal"
)

// ErrBadCollectionName rejects names that cannot serve as file names
// in the persistent engine.
var ErrBadCollectionName = errors.New("irs: collection name must be non-empty letters, digits, '-', '_' or '.'")

func validCollectionName(name string) bool {
	if name == "" || name == "." || name == ".." {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// CreateCollection creates a new collection using the given model
// (nil selects the inference-net model, as in INQUERY) and the
// engine's default shard count. Collection names double as file
// names under persistent engines and are restricted accordingly.
func (e *Engine) CreateCollection(name string, model Model) (*Collection, error) {
	return e.CreateCollectionShards(name, model, 0)
}

// CreateCollectionShards creates a collection whose index is
// partitioned into the given number of shards (0 selects the
// engine's default).
func (e *Engine) CreateCollectionShards(name string, model Model, shards int) (*Collection, error) {
	if !validCollectionName(name) {
		return nil, fmt.Errorf("%w: %q", ErrBadCollectionName, name)
	}
	if model == nil {
		model = InferenceNet{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if shards <= 0 {
		shards = e.defShards
	}
	if _, ok := e.colls[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateColl, name)
	}
	c := &Collection{
		name:  name,
		ix:    NewIndexShards(analysis.NewAnalyzer(), shards),
		model: model,
	}
	if e.walOn {
		// An existing log under this name is an orphan: the collection
		// crashed before its first snapshot. Attaching replays it into
		// the fresh index, so create-then-replay recovers it.
		if err := e.attachWAL(c); err != nil {
			return nil, err
		}
	}
	e.colls[name] = c
	return c, nil
}

// Collection returns the named collection.
func (e *Engine) Collection(name string) (*Collection, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	c, ok := e.colls[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchCollection, name)
	}
	return c, nil
}

// DropCollection removes the named collection (and its file, when
// the engine is persistent).
func (e *Engine) DropCollection(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.colls[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchCollection, name)
	}
	c := e.colls[name]
	delete(e.colls, name)
	if c.wl != nil {
		c.closeWAL()
		// Remove the log before the snapshot: a crash between the two
		// must not leave an orphan log that a later collection of the
		// same name would replay.
		if err := os.Remove(filepath.Join(e.walDir, name+walExt)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("irs: drop collection wal: %w", err)
		}
	}
	if e.dir != "" {
		if err := os.Remove(filepath.Join(e.dir, name+collExt)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("irs: drop collection file: %w", err)
		}
	}
	// Release a mapped collection's file mapping (the unlinked inode
	// lives until then). In-flight queries against an old snapshot are
	// the caller's responsibility, as with Close.
	return c.Close()
}

// Collections returns the names of all collections, sorted.
func (e *Engine) Collections() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.colls))
	for n := range e.colls {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Save writes every collection to the engine directory. It is a
// no-op for memory-only engines.
func (e *Engine) Save() error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.dir == "" {
		return nil
	}
	for name, c := range e.colls {
		if err := c.saveTo(filepath.Join(e.dir, name+collExt)); err != nil {
			return err
		}
		// The snapshot covers everything the log held; truncate it
		// behind a barrier so recovery replays only post-save operations.
		if err := c.rotateWAL(); err != nil {
			return err
		}
	}
	return nil
}

// Collection is one IRS collection: an index plus the retrieval
// model used to score queries against it. Collections are safe for
// concurrent use: the index carries its own lock and the model slot
// is guarded here (SetModel may race with searches under the serving
// layer).
type Collection struct {
	name string
	ix   *Index

	modelMu  sync.RWMutex
	model    Model
	modelGen uint64 // bumped by SetModel; folded into serving-layer epochs

	// Top-k evaluation counters (serving-layer statistics): queries
	// answered through EvalTopK, candidates actually scored, candidates
	// skipped because their score upper bound could not reach the k-th
	// best, and whole shards skipped by the cross-shard threshold.
	topkQueries       atomic.Int64
	topkScored        atomic.Int64
	topkPruned        atomic.Int64
	topkSkipped       atomic.Int64
	topkBlocksSkipped atomic.Int64
	topkDecoded       atomic.Int64

	// wl is the collection's write-ahead log (nil when the engine runs
	// without one); walRecovered is what this process's open replayed.
	wl           *wal.Log
	walRecovered *RecoveryReport
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// Model returns the retrieval model in use.
func (c *Collection) Model() Model {
	c.modelMu.RLock()
	defer c.modelMu.RUnlock()
	return c.model
}

// SetModel exchanges the retrieval paradigm without touching the
// index — the loose-coupling exchangeability claim made concrete.
func (c *Collection) SetModel(m Model) {
	c.modelMu.Lock()
	defer c.modelMu.Unlock()
	c.model = m
	c.modelGen++
}

// ModelGeneration counts model exchanges; scores cached across a
// SetModel must be invalidated, so epoch computations fold this in.
func (c *Collection) ModelGeneration() uint64 {
	c.modelMu.RLock()
	defer c.modelMu.RUnlock()
	return c.modelGen
}

// Index exposes the underlying inverted file (read-mostly use by
// experiments; the coupling layer goes through the typed methods).
func (c *Collection) Index() *Index { return c.ix }

// AddDocument indexes text under extID with optional metadata. In
// the coupling, extID is the owning object's OID and the metadata
// records the textMode used (Section 4.3: "storing the according
// object identifier (OID) with each IRS document").
func (c *Collection) AddDocument(extID, text string, meta map[string]string) error {
	_, err := c.ix.Add(extID, text, meta)
	return err
}

// DeleteDocument removes the document registered under extID.
func (c *Collection) DeleteDocument(extID string) error {
	return c.ix.Delete(extID)
}

// UpdateDocument replaces the text registered under extID.
func (c *Collection) UpdateDocument(extID, text string, meta map[string]string) error {
	_, err := c.ix.Update(extID, text, meta)
	return err
}

// Analyze pre-tokenizes a document outside every index lock; the
// result commits via Batch.AddAnalyzed / Batch.UpdateAnalyzed.
func (c *Collection) Analyze(extID, text string, meta map[string]string) *AnalyzedDoc {
	return c.ix.Analyze(extID, text, meta)
}

// SetAutoCompact configures the index's background compaction policy
// (see Index.SetAutoCompact).
func (c *Collection) SetAutoCompact(ratio float64, minTombstones int) {
	c.ix.SetAutoCompact(ratio, minTombstones)
}

// HasDoc reports whether extID is represented in the collection.
func (c *Collection) HasDoc(extID string) bool { return c.ix.HasDoc(extID) }

// DocCount returns the number of live documents.
func (c *Collection) DocCount() int { return c.ix.DocCount() }

// SizeBytes estimates the inverted-file size (block-compressed form).
func (c *Collection) SizeBytes() int64 { return c.ix.SizeBytes() }

// CompressionRatio reports how much smaller the block-compressed
// posting storage is than the flat-posting representation would be
// (1 for an empty index).
func (c *Collection) CompressionRatio() float64 { return c.ix.CompressionRatio() }

// Search parses and evaluates query, returning results sorted by
// descending score (ties broken by ExtID for determinism).
func (c *Collection) Search(query string) ([]Result, error) {
	n, err := ParseQuery(query)
	if err != nil {
		return nil, err
	}
	return c.SearchNode(n), nil
}

// Snapshot acquires a point-in-time read view of the collection's
// index; SearchNodeAt evaluates against it.
func (c *Collection) Snapshot() *Snapshot { return c.ix.Snapshot() }

// SearchNode evaluates a pre-parsed query against a fresh snapshot.
func (c *Collection) SearchNode(n *Node) []Result {
	return c.SearchNodeAt(c.ix.Snapshot(), n)
}

// SearchNodeAt evaluates a pre-parsed query against a previously
// acquired snapshot, so callers can pin the index state a query (or
// a set of queries) observes — the coupling layer acquires the
// snapshot only after a policy-forced propagation flush commits.
func (c *Collection) SearchNodeAt(snap *Snapshot, n *Node) []Result {
	scores := c.Model().Eval(snap, n)
	out := make([]Result, 0, len(scores))
	for d, s := range scores {
		ext, ok := snap.ExtID(d)
		if !ok {
			continue
		}
		out = append(out, Result{ExtID: ext, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ExtID < out[j].ExtID
	})
	return out
}

// SearchTopK parses and evaluates query, returning only the k best
// results in canonical order (score descending, ties by ExtID). The
// result is exactly the first k entries of Search's ranking — bit-
// identical scores — but evaluation streams through bounded per-shard
// heaps with MaxScore-style pruning instead of materializing and
// sorting the full candidate set. k <= 0 degrades to the exhaustive
// Search.
func (c *Collection) SearchTopK(query string, k int) ([]Result, error) {
	n, err := ParseQuery(query)
	if err != nil {
		return nil, err
	}
	return c.SearchNodeTopKAt(c.ix.Snapshot(), n, k), nil
}

// SearchNodeTopKAt evaluates a pre-parsed query against a previously
// acquired snapshot, returning the k best results (see SearchTopK).
func (c *Collection) SearchNodeTopKAt(snap *Snapshot, n *Node, k int) []Result {
	return c.SearchNodeTopKTracedAt(snap, n, k, nil)
}

// Stage histograms of the top-k scheduler, shared across collections
// (obs.Default is the process registry /metrics scrapes). Package
// vars so the hot path skips the registry map on every query.
var (
	topkSeedHist   = obs.Default.Histogram("mmf_stage_seconds", "stage", "topk_seed")
	topkFinishHist = obs.Default.Histogram("mmf_stage_seconds", "stage", "topk_finish")
	topkMergeHist  = obs.Default.Histogram("mmf_stage_seconds", "stage", "topk_merge")
)

// SearchNodeTopKTracedAt is SearchNodeTopKAt carrying a per-request
// trace context (nil is a valid no-op trace): the scheduler's phase
// timings become stage spans, and the pruning outcome (candidates
// scored and pruned, shards skipped by the cross-shard threshold)
// becomes trace annotations. Phase durations are also recorded onto
// the obs stage histograms regardless of tracing, so /metrics sees
// every evaluation. In per-shard-only mode (single shard, or sharing
// toggled off) seed and finish collapse into one parallel pass whose
// whole duration is attributed to the seed stage.
func (c *Collection) SearchNodeTopKTracedAt(snap *Snapshot, n *Node, k int, tr *obs.Trace) []Result {
	if k <= 0 {
		defer tr.StartSpan("exhaustive")()
		return c.SearchNodeAt(snap, n)
	}
	res := c.Model().EvalTopK(snap, n, k)
	c.topkQueries.Add(1)
	c.topkScored.Add(res.Scored)
	c.topkPruned.Add(res.Pruned)
	c.topkSkipped.Add(res.ShardsSkipped)
	c.topkBlocksSkipped.Add(res.BlocksSkipped)
	c.topkDecoded.Add(res.PostingsDecoded)
	if obs.Enabled() {
		topkSeedHist.ObserveNanos(res.SeedNanos)
		topkFinishHist.ObserveNanos(res.FinishNanos)
		topkMergeHist.ObserveNanos(res.MergeNanos)
	}
	if tr != nil {
		merge := time.Duration(res.MergeNanos)
		finish := time.Duration(res.FinishNanos)
		tr.SpanEnded("topk_seed", time.Duration(res.SeedNanos), finish+merge)
		tr.SpanEnded("topk_finish", finish, merge)
		tr.SpanEnded("topk_merge", merge, 0)
		tr.Attr("shards", snap.ShardCount())
		tr.Attr("shards_skipped", res.ShardsSkipped)
		tr.Attr("candidates_scored", res.Scored)
		tr.Attr("candidates_pruned", res.Pruned)
		tr.Attr("blocks_skipped", res.BlocksSkipped)
		tr.Attr("postings_decoded", res.PostingsDecoded)
	}
	out := make([]Result, len(res.Hits))
	for i, h := range res.Hits {
		out[i] = Result{ExtID: h.Ext, Score: h.Score}
	}
	return out
}

// TopKStats aggregates a collection's top-k evaluation counters:
// queries served through the streaming engine, candidates scored,
// candidates pruned by the score upper bounds, shards whose
// remaining scan was skipped wholesale by the cross-shard threshold
// (zero with sharing off or single-shard indexes), compressed posting
// blocks whose payloads stayed unexpanded through an evaluation, and
// postings whose payloads were decoded (see TopKResult).
type TopKStats struct {
	Queries         int64
	Scored          int64
	Pruned          int64
	ShardsSkipped   int64
	BlocksSkipped   int64
	PostingsDecoded int64
}

// TopKStats reports the collection's top-k evaluation counters.
func (c *Collection) TopKStats() TopKStats {
	return TopKStats{
		Queries:         c.topkQueries.Load(),
		Scored:          c.topkScored.Load(),
		Pruned:          c.topkPruned.Load(),
		ShardsSkipped:   c.topkSkipped.Load(),
		BlocksSkipped:   c.topkBlocksSkipped.Load(),
		PostingsDecoded: c.topkDecoded.Load(),
	}
}

// Batch groups document mutations into one atomic commit (see
// Index.Batch); concurrent snapshots observe all of the batch or
// none of it.
func (c *Collection) Batch(fn func(b *Batch) error) error {
	return c.ix.Batch(fn)
}

// SearchToFile evaluates query and writes the result to path in the
// line format "extID score\n" — the file-exchange mechanism the
// paper describes ("Currently the IRS writes the result to a file
// which is parsed afterwards", Section 4.5). Use ParseResultFile to
// read it back. EXP-T6 measures the cost of this detour against the
// direct API.
func (c *Collection) SearchToFile(query, path string) error {
	rs, err := c.Search(query)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("irs: create result file: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, r := range rs {
		fmt.Fprintf(w, "%s %.9f\n", r.ExtID, r.Score)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("irs: write result file: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("irs: close result file: %w", err)
	}
	return nil
}

// ParseResultFile reads a result file written by SearchToFile.
func ParseResultFile(path string) ([]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("irs: open result file: %w", err)
	}
	defer f.Close()
	var out []Result
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("irs: malformed result line %q", line)
		}
		score, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("irs: malformed score in %q: %w", line, err)
		}
		out = append(out, Result{ExtID: line[:i], Score: score})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("irs: read result file: %w", err)
	}
	return out, nil
}

// ModelByName constructs a retrieval model from its persisted name.
func ModelByName(name string) (Model, error) {
	switch name {
	case "inference-net", "":
		return InferenceNet{}, nil
	case "vector":
		return NewVectorSpace(), nil
	case "boolean":
		return Boolean{}, nil
	case "passage":
		return PassageModel{}, nil
	}
	return nil, fmt.Errorf("irs: unknown retrieval model %q", name)
}
