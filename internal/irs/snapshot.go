package irs

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/irs/analysis"
	"repro/internal/irs/codec"
)

// Snapshot is an immutable point-in-time read view of an Index.
// Queries, relevance feedback and passage retrieval evaluate against
// a Snapshot instead of the live index, so a long-running query
// never blocks update propagation and a propagation flush never
// skews a half-read ranking: everything the snapshot exposes
// reflects exactly the committed state at acquisition time.
//
// The implementation leans on the index's append-only discipline:
// documents and postings are only ever appended (a document added
// after acquisition has an id beyond the captured high-water mark
// and is filtered out), position slices are never mutated in place,
// and deletions flip bits in a tombstone bitmap of which the
// snapshot keeps its own copy. Acquisition therefore copies a few
// slice headers and one small bitmap per shard — no posting data.
type Snapshot struct {
	analyzer *analysis.Analyzer
	version  uint64
	shards   []snapShard
	docCount int
	totalLen int64
}

// snapShard is the captured state of one shard.
type snapShard struct {
	sh       *shard // for the brief dictionary-lookup lock only
	dict     map[string]*postingList
	docs     []docInfo
	deleted  []uint64 // private copy
	docsLen  int
	liveDocs int
	totalLen int64
	minLen   int // lower bound on live doc length at acquisition
}

// isDeleted tests the captured tombstone bitmap (the snapshot-side
// mirror of shard.isDeleted).
func (ss *snapShard) isDeleted(local int) bool {
	return ss.deleted[local/64]&(1<<(uint(local)%64)) != 0
}

// docTerms returns a captured document's distinct terms: the heap
// forward list when the captured docInfo carries one, else a decode
// from the captured shard's mapped forward-index blob. The fallback
// stays valid even after a concurrent Compact/Reshard swaps the live
// shard set — ss.sh is the shard object captured at acquisition, and
// its mapped fields are immutable after load.
func (ss *snapShard) docTerms(local int) []string {
	if local < 0 || local >= len(ss.docs) {
		return nil
	}
	if t := ss.docs[local].terms; t != nil {
		return t
	}
	return ss.sh.fwdDocTerms(local)
}

// Snapshot acquires a consistent read view. Acquisition holds the
// commit lock shared and captures each shard under its own read
// lock, so the view is atomic with respect to every batch commit
// (batches hold the commit lock exclusively) and to every
// single-document operation (each lives entirely in one shard).
// Independent single-document operations racing on different shards
// may be observed in either order — each is still all-or-nothing —
// which is the per-shard snapshot-isolation contract the coupling's
// flush path relies on: a flush is a batch, so no query ever ranks
// against half of one.
//
// Acquisition cost is a few slice headers and one small tombstone
// bitmap per shard; no posting data is copied and no retry loop
// runs, so writers cannot starve readers (or vice versa).
func (ix *Index) Snapshot() *Snapshot {
	ix.snaps.Add(1)
	ix.commitMu.RLock()
	defer ix.commitMu.RUnlock()
	s := &Snapshot{
		analyzer: ix.analyzer,
		shards:   make([]snapShard, len(ix.shards)),
	}
	// The snapshot's cache key folds the per-shard versions (read
	// under the same lock as the shard's content) and the rebuild
	// generation into one value, so two snapshots share derived
	// caches (e.g. vector-space norms) only when they captured the
	// same state.
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(ix.rebuildGen)
	mix(uint64(len(ix.shards)))
	for i, sh := range ix.shards {
		sh.mu.RLock()
		ss := snapShard{
			sh:       sh,
			dict:     sh.dict,
			docs:     sh.docs,
			deleted:  append([]uint64(nil), sh.deleted...),
			docsLen:  len(sh.docs),
			liveDocs: sh.liveDocs,
			totalLen: sh.totalLen,
			minLen:   sh.minLen,
		}
		mix(sh.version)
		sh.mu.RUnlock()
		s.shards[i] = ss
		s.docCount += ss.liveDocs
		s.totalLen += ss.totalLen
	}
	s.version = h
	return s
}

// ShardCount returns the number of captured shards.
func (s *Snapshot) ShardCount() int { return len(s.shards) }

// Version identifies the index state the snapshot reflects; model
// caches (e.g. vector-space document norms) key on it.
func (s *Snapshot) Version() uint64 { return s.version }

// DocCount returns the number of live documents in the snapshot.
func (s *Snapshot) DocCount() int { return s.docCount }

// AvgDocLen returns the mean indexed length of live documents.
func (s *Snapshot) AvgDocLen() float64 {
	if s.docCount == 0 {
		return 0
	}
	return float64(s.totalLen) / float64(s.docCount)
}

// live reports whether id refers to a document live in the snapshot.
func (s *Snapshot) live(id DocID) bool {
	n := len(s.shards)
	ss := &s.shards[int(id)%n]
	local := int(id) / n
	return local < ss.docsLen && !ss.isDeleted(local)
}

// doc resolves id to its metadata record (nil if not live).
func (s *Snapshot) doc(id DocID) *docInfo {
	if !s.live(id) {
		return nil
	}
	n := len(s.shards)
	return &s.shards[int(id)%n].docs[int(id)/n]
}

// DocLen returns the indexed length of document id (0 if deleted or
// out of range).
func (s *Snapshot) DocLen(id DocID) int {
	if d := s.doc(id); d != nil {
		return d.length
	}
	return 0
}

// ExtID returns the external id of a live document.
func (s *Snapshot) ExtID(id DocID) (string, bool) {
	if d := s.doc(id); d != nil {
		return d.extID, true
	}
	return "", false
}

// Meta returns a metadata value of a live document.
func (s *Snapshot) Meta(id DocID, key string) (string, bool) {
	if d := s.doc(id); d != nil {
		v, ok := d.meta[key]
		return v, ok
	}
	return "", false
}

// DocID resolves an external id to the document live under it in
// the snapshot. The live byExt map cannot be consulted (it moves
// with the index), so the extID's shard is scanned newest-first —
// the highest live local id carrying the extID is the version the
// snapshot sees. O(shard docs); meant for occasional resolution
// (relevance feedback), not hot paths.
func (s *Snapshot) DocID(extID string) (DocID, bool) {
	n := len(s.shards)
	si := shardIndex(extID, n)
	ss := &s.shards[si]
	for local := ss.docsLen - 1; local >= 0; local-- {
		if ss.isDeleted(local) {
			continue
		}
		if ss.docs[local].extID == extID {
			return globalID(uint32(local), si, n), true
		}
	}
	return 0, false
}

// plView is a captured posting-list header: the sealed blocks and
// the uncompressed tail a snapshot saw under the shard lock. Sealed
// blocks are immutable; the tail's backing array is never truncated
// (seal replaces it), so decoding and filtering run lock-free.
type plView struct {
	blocks []codec.Block
	tail   []Posting
	maxTF  int
}

// view captures the posting-list header of an already-normalized
// term; the shard lock is held only for the dictionary lookup and
// header copy.
func (ss *snapShard) view(term string) plView {
	ss.sh.mu.RLock()
	var v plView
	if pl := ss.dict[term]; pl != nil {
		v = plView{blocks: pl.blocks, tail: pl.tail, maxTF: pl.maxTF}
	}
	ss.sh.mu.RUnlock()
	return v
}

// blockInHorizon reports whether the block can contain documents the
// snapshot sees. Blocks are doc-ordered, so the first block starting
// at or past the captured doc-count high-water mark ends the walk.
func (ss *snapShard) blockInHorizon(bl *codec.Block) bool {
	return int(bl.FirstDoc) < ss.docsLen
}

// postingsShard returns the live postings of an already-normalized
// term within one shard, ascending by DocID. The shard lock is held
// only for the dictionary lookup; decoding and filtering run
// lock-free against captured state. Decode errors cannot occur on
// engine-built blocks and persisted blocks are validated at load, so
// a corrupt block is skipped.
func (s *Snapshot) postingsShard(si int, term string) []Posting {
	ss := &s.shards[si]
	v := ss.view(term)
	if len(v.blocks) == 0 && len(v.tail) == 0 {
		return nil
	}
	n := len(s.shards)
	var out []Posting
	var docs, tfs []uint32
	for bi := range v.blocks {
		bl := &v.blocks[bi]
		if !ss.blockInHorizon(bl) {
			break
		}
		var err error
		if docs, err = bl.DecodeDocs(docs[:0]); err != nil {
			continue
		}
		if tfs, err = bl.DecodeTFs(tfs[:0]); err != nil {
			continue
		}
		poss, err := bl.DecodePositions(tfs)
		if err != nil {
			continue
		}
		for i, local := range docs {
			id := globalID(local, si, n)
			if s.live(id) {
				out = append(out, Posting{Doc: id, Positions: poss[i]})
			}
		}
	}
	for _, p := range v.tail {
		if s.live(p.Doc) {
			out = append(out, p)
		}
	}
	return out
}

// Postings returns the live postings of term across all shards,
// ascending by DocID; term is passed through the analyzer's term
// normalization.
func (s *Snapshot) Postings(term string) []Posting {
	t := s.analyzer.AnalyzeTerm(term)
	if len(s.shards) == 1 {
		return s.postingsShard(0, t)
	}
	var out []Posting
	for si := range s.shards {
		out = append(out, s.postingsShard(si, t)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Doc < out[j].Doc })
	return out
}

// DF returns the live document frequency of term in the snapshot.
func (s *Snapshot) DF(term string) int {
	t := s.analyzer.AnalyzeTerm(term)
	df := 0
	for si := range s.shards {
		df += s.dfShardRaw(si, t)
	}
	return df
}

// dfShardRaw counts one shard's live postings of an already-
// normalized term, decoding only the blocks' doc-id streams.
func (s *Snapshot) dfShardRaw(si int, term string) int {
	ss := &s.shards[si]
	v := ss.view(term)
	n := len(s.shards)
	df := 0
	var docs []uint32
	for bi := range v.blocks {
		bl := &v.blocks[bi]
		if !ss.blockInHorizon(bl) {
			break
		}
		var err error
		if docs, err = bl.DecodeDocs(docs[:0]); err != nil {
			continue
		}
		for _, local := range docs {
			if s.live(globalID(local, si, n)) {
				df++
			}
		}
	}
	for _, p := range v.tail {
		if s.live(p.Doc) {
			df++
		}
	}
	return df
}

// termMaxTFShard returns the shard's upper bound on the live
// within-document frequency of an already-normalized term (0 when the
// term has no posting list). The bound is read from the live posting
// list under the shard lock: within one shard generation it only ever
// grows, so it dominates every tf the snapshot can observe; rebuilds
// (Compact/Reshard) install fresh shard objects, and the snapshot
// keeps reading the generation it captured.
func (s *Snapshot) termMaxTFShard(si int, term string) int {
	ss := &s.shards[si]
	ss.sh.mu.RLock()
	m := 0
	if pl := ss.dict[term]; pl != nil {
		m = pl.maxTF
	}
	ss.sh.mu.RUnlock()
	return m
}

// minDocLenShard returns the captured lower bound on the indexed
// length of the shard's live documents (0 when the shard was empty —
// still a sound lower bound).
func (s *Snapshot) minDocLenShard(si int) int {
	return s.shards[si].minLen
}

// liveDocIDsShard returns the live document ids of one shard,
// ascending.
func (s *Snapshot) liveDocIDsShard(si int) []DocID {
	ss := &s.shards[si]
	out := make([]DocID, 0, ss.liveDocs)
	for local := 0; local < ss.docsLen; local++ {
		if !ss.isDeleted(local) {
			out = append(out, globalID(uint32(local), si, len(s.shards)))
		}
	}
	return out
}

// LiveDocIDs returns the ids of all live documents, ascending.
func (s *Snapshot) LiveDocIDs() []DocID {
	var out []DocID
	for si := range s.shards {
		out = append(out, s.liveDocIDsShard(si)...)
	}
	if len(s.shards) > 1 {
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	return out
}

// termCounts pairs a dictionary term with its live (doc, tf) pairs in
// one shard, ascending by DocID. Positions stay compressed — the only
// dictionary-wide consumer (vector-space document norms) never needs
// them.
type termCounts struct {
	term string
	docs []DocID
	tfs  []int32
}

// termsShard returns one shard's dictionary sorted by term, with live
// (doc, tf) pairs. The shard lock is held only while posting-list
// headers are copied; decoding runs lock-free. Callers iterate terms
// in sorted order so floating-point accumulation (e.g. document
// norms) is deterministic and independent of the shard count.
func (s *Snapshot) termsShard(si int) []termCounts {
	ss := &s.shards[si]
	ss.sh.mu.RLock()
	views := make([]struct {
		term string
		v    plView
	}, 0, len(ss.dict))
	for t, pl := range ss.dict {
		views = append(views, struct {
			term string
			v    plView
		}{t, plView{blocks: pl.blocks, tail: pl.tail, maxTF: pl.maxTF}})
	}
	ss.sh.mu.RUnlock()
	n := len(s.shards)
	out := make([]termCounts, 0, len(views))
	var docs, tfs []uint32
	for _, tv := range views {
		tc := termCounts{term: tv.term}
		for bi := range tv.v.blocks {
			bl := &tv.v.blocks[bi]
			if !ss.blockInHorizon(bl) {
				break
			}
			var err error
			if docs, err = bl.DecodeDocs(docs[:0]); err != nil {
				continue
			}
			if tfs, err = bl.DecodeTFs(tfs[:0]); err != nil {
				continue
			}
			for i, local := range docs {
				id := globalID(local, si, n)
				if s.live(id) {
					tc.docs = append(tc.docs, id)
					tc.tfs = append(tc.tfs, int32(tfs[i]))
				}
			}
		}
		for _, p := range tv.v.tail {
			if s.live(p.Doc) {
				tc.docs = append(tc.docs, p.Doc)
				tc.tfs = append(tc.tfs, int32(p.TF()))
			}
		}
		if len(tc.docs) > 0 {
			out = append(out, tc)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].term < out[j].term })
	return out
}

// termRaw is one term's captured storage — sealed blocks plus tail —
// handed to the persistence layer so in-horizon blocks can be written
// to disk verbatim, without a decode/re-encode round trip.
type termRaw struct {
	term  string
	v     plView
	maxTF int
}

// termsShardRaw returns one shard's dictionary sorted by term with
// raw posting-list headers (persistence only).
func (s *Snapshot) termsShardRaw(si int) []termRaw {
	ss := &s.shards[si]
	ss.sh.mu.RLock()
	out := make([]termRaw, 0, len(ss.dict))
	for t, pl := range ss.dict {
		out = append(out, termRaw{term: t, v: plView{blocks: pl.blocks, tail: pl.tail}, maxTF: pl.maxTF})
	}
	ss.sh.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].term < out[j].term })
	return out
}

// parShards runs fn once per shard — the fan-out behind per-shard
// parallel query scoring. On a single-CPU process (or a single-shard
// index) the fan-out is pure scheduling overhead, so it runs inline.
func (s *Snapshot) parShards(fn func(si int)) {
	if len(s.shards) == 1 || runtime.GOMAXPROCS(0) == 1 {
		for si := range s.shards {
			fn(si)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(s.shards))
	for si := range s.shards {
		go func(si int) {
			defer wg.Done()
			fn(si)
		}(si)
	}
	wg.Wait()
}

// shardOf returns the shard index a document id belongs to.
func (s *Snapshot) shardOf(id DocID) int { return int(id) % len(s.shards) }
