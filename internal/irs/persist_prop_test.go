package irs

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

var osStat = os.Stat

// Property: an arbitrary sequence of adds/updates/deletes, saved and
// reloaded, preserves every observable: live doc count, DFs, average
// length, metadata, and the scores of queries under every model.
func TestPersistenceObservableEquivalenceProperty(t *testing.T) {
	words := []string{"www", "nii", "sgml", "video", "codec", "markup", "gopher", "telnet"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		e, err := NewEngineAt(dir)
		if err != nil {
			t.Fatal(err)
		}
		c, err := e.CreateCollection("prop", nil)
		if err != nil {
			t.Fatal(err)
		}
		live := make(map[string]bool)
		for i := 0; i < 40; i++ {
			id := fmt.Sprintf("d%d", rng.Intn(15))
			text := ""
			for j := 0; j < 1+rng.Intn(8); j++ {
				text += words[rng.Intn(len(words))] + " "
			}
			switch {
			case !live[id]:
				if err := c.AddDocument(id, text, map[string]string{"oid": id}); err != nil {
					t.Fatal(err)
				}
				live[id] = true
			case rng.Intn(3) == 0:
				if err := c.DeleteDocument(id); err != nil {
					t.Fatal(err)
				}
				delete(live, id)
			default:
				if err := c.UpdateDocument(id, text, map[string]string{"oid": id}); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := e.Save(); err != nil {
			t.Fatal(err)
		}
		e2, err := NewEngineAt(dir)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := e2.Collection("prop")
		if err != nil {
			t.Fatal(err)
		}
		if c.DocCount() != c2.DocCount() {
			t.Logf("seed %d: doc count %d vs %d", seed, c.DocCount(), c2.DocCount())
			return false
		}
		if math.Abs(c.Index().AvgDocLen()-c2.Index().AvgDocLen()) > 1e-12 {
			return false
		}
		for _, w := range words {
			if c.Index().DF(w) != c2.Index().DF(w) {
				t.Logf("seed %d: DF(%s) %d vs %d", seed, w, c.Index().DF(w), c2.Index().DF(w))
				return false
			}
		}
		// Scores identical under all models for a composite query.
		for _, model := range []Model{InferenceNet{}, NewVectorSpace(), Boolean{}, PassageModel{Window: 6}} {
			c.SetModel(model)
			c2.SetModel(model)
			r1, err := c.Search("#and(www #or(nii sgml))")
			if err != nil {
				t.Fatal(err)
			}
			r2, err := c2.Search("#and(www #or(nii sgml))")
			if err != nil {
				t.Fatal(err)
			}
			if len(r1) != len(r2) {
				t.Logf("seed %d model %s: %d vs %d results", seed, model.Name(), len(r1), len(r2))
				return false
			}
			for i := range r1 {
				if r1[i].ExtID != r2[i].ExtID || math.Abs(r1[i].Score-r2[i].Score) > 1e-12 {
					t.Logf("seed %d model %s: rank %d differs", seed, model.Name(), i)
					return false
				}
			}
		}
		// Deleting the live docs in the reloaded engine empties it
		// (forward index rebuilt correctly).
		for id := range live {
			if err := c2.DeleteDocument(id); err != nil {
				t.Fatal(err)
			}
		}
		for _, w := range words {
			if c2.Index().DF(w) != 0 {
				t.Logf("seed %d: DF(%s) = %d after deleting everything", seed, w, c2.Index().DF(w))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Compact before save sheds tombstones from the file.
func TestCompactShrinksPersistedFile(t *testing.T) {
	dir := t.TempDir()
	e, err := NewEngineAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := e.CreateCollection("z", nil)
	for i := 0; i < 30; i++ {
		c.AddDocument(fmt.Sprintf("d%d", i), "some repeated content here", nil)
	}
	for i := 0; i < 25; i++ {
		c.DeleteDocument(fmt.Sprintf("d%d", i))
	}
	if err := e.Save(); err != nil {
		t.Fatal(err)
	}
	before := fileSize(t, filepath.Join(dir, "z"+collExt))
	c.Index().Compact()
	if err := e.Save(); err != nil {
		t.Fatal(err)
	}
	after := fileSize(t, filepath.Join(dir, "z"+collExt))
	if after >= before {
		t.Errorf("compacted file %d >= uncompacted %d", after, before)
	}
	// And it still loads with the right content.
	e2, err := NewEngineAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := e2.Collection("z")
	if c2.DocCount() != 5 {
		t.Errorf("DocCount after compacted reload = %d", c2.DocCount())
	}
}

// fileSize is a small stat helper.
func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := osStat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
