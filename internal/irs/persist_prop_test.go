package irs

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

var osStat = os.Stat

// Property: an arbitrary sequence of adds/updates/deletes, saved and
// reloaded, preserves every observable: live doc count, DFs, average
// length, metadata, and the scores of queries under every model.
func TestPersistenceObservableEquivalenceProperty(t *testing.T) {
	words := []string{"www", "nii", "sgml", "video", "codec", "markup", "gopher", "telnet"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		e, err := NewEngineAt(dir)
		if err != nil {
			t.Fatal(err)
		}
		c, err := e.CreateCollection("prop", nil)
		if err != nil {
			t.Fatal(err)
		}
		live := make(map[string]bool)
		for i := 0; i < 40; i++ {
			id := fmt.Sprintf("d%d", rng.Intn(15))
			text := ""
			for j := 0; j < 1+rng.Intn(8); j++ {
				text += words[rng.Intn(len(words))] + " "
			}
			switch {
			case !live[id]:
				if err := c.AddDocument(id, text, map[string]string{"oid": id}); err != nil {
					t.Fatal(err)
				}
				live[id] = true
			case rng.Intn(3) == 0:
				if err := c.DeleteDocument(id); err != nil {
					t.Fatal(err)
				}
				delete(live, id)
			default:
				if err := c.UpdateDocument(id, text, map[string]string{"oid": id}); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := e.Save(); err != nil {
			t.Fatal(err)
		}
		e2, err := NewEngineAt(dir)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := e2.Collection("prop")
		if err != nil {
			t.Fatal(err)
		}
		if c.DocCount() != c2.DocCount() {
			t.Logf("seed %d: doc count %d vs %d", seed, c.DocCount(), c2.DocCount())
			return false
		}
		if math.Abs(c.Index().AvgDocLen()-c2.Index().AvgDocLen()) > 1e-12 {
			return false
		}
		for _, w := range words {
			if c.Index().DF(w) != c2.Index().DF(w) {
				t.Logf("seed %d: DF(%s) %d vs %d", seed, w, c.Index().DF(w), c2.Index().DF(w))
				return false
			}
		}
		// Scores identical under all models for a composite query.
		for _, model := range []Model{InferenceNet{}, NewVectorSpace(), Boolean{}, PassageModel{Window: 6}} {
			c.SetModel(model)
			c2.SetModel(model)
			r1, err := c.Search("#and(www #or(nii sgml))")
			if err != nil {
				t.Fatal(err)
			}
			r2, err := c2.Search("#and(www #or(nii sgml))")
			if err != nil {
				t.Fatal(err)
			}
			if len(r1) != len(r2) {
				t.Logf("seed %d model %s: %d vs %d results", seed, model.Name(), len(r1), len(r2))
				return false
			}
			for i := range r1 {
				if r1[i].ExtID != r2[i].ExtID || math.Abs(r1[i].Score-r2[i].Score) > 1e-12 {
					t.Logf("seed %d model %s: rank %d differs", seed, model.Name(), i)
					return false
				}
			}
		}
		// Deleting the live docs in the reloaded engine empties it
		// (forward index rebuilt correctly).
		for id := range live {
			if err := c2.DeleteDocument(id); err != nil {
				t.Fatal(err)
			}
		}
		for _, w := range words {
			if c2.Index().DF(w) != 0 {
				t.Logf("seed %d: DF(%s) = %d after deleting everything", seed, w, c2.Index().DF(w))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Compact before save sheds tombstones from the file.
func TestCompactShrinksPersistedFile(t *testing.T) {
	dir := t.TempDir()
	e, err := NewEngineAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := e.CreateCollection("z", nil)
	for i := 0; i < 30; i++ {
		c.AddDocument(fmt.Sprintf("d%d", i), "some repeated content here", nil)
	}
	for i := 0; i < 25; i++ {
		c.DeleteDocument(fmt.Sprintf("d%d", i))
	}
	if err := e.Save(); err != nil {
		t.Fatal(err)
	}
	before := fileSize(t, filepath.Join(dir, "z"+collExt))
	c.Index().Compact()
	if err := e.Save(); err != nil {
		t.Fatal(err)
	}
	after := fileSize(t, filepath.Join(dir, "z"+collExt))
	if after >= before {
		t.Errorf("compacted file %d >= uncompacted %d", after, before)
	}
	// And it still loads with the right content.
	e2, err := NewEngineAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := e2.Collection("z")
	if c2.DocCount() != 5 {
		t.Errorf("DocCount after compacted reload = %d", c2.DocCount())
	}
}

// TestLoadV1Format: a collection file written in the pre-sharding
// v1 layout still loads (as a single-shard index) and answers
// queries; saving rewrites it as v2 and the reload is equivalent.
func TestLoadV1Format(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "legacy"+collExt)
	// Hand-write a v1 file: magic, version 1, model, doc table with a
	// tombstone, dictionary with positional postings (global == local
	// ids in v1).
	var buf bytes.Buffer
	w := func(v any) {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	ws := func(s string) {
		w(uint32(len(s)))
		buf.WriteString(s)
	}
	buf.WriteString(persistMagic)
	w(uint32(persistVersionV1))
	ws("inference-net")
	w(uint32(3)) // doc count
	// doc 0: live, one meta pair
	ws("o1")
	w(uint32(2))
	w(uint8(0))
	w(uint32(1))
	ws("oid")
	ws("o1")
	// doc 1: tombstoned
	ws("gone")
	w(uint32(1))
	w(uint8(1))
	w(uint32(0))
	// doc 2: live
	ws("o2")
	w(uint32(2))
	w(uint8(0))
	w(uint32(0))
	// dictionary: structur -> docs 0,1,2; text -> doc 2
	w(uint32(2))
	ws("structur")
	w(uint32(3))
	w(uint32(0))
	w(uint32(1))
	w(uint32(0))
	w(uint32(1))
	w(uint32(1))
	w(uint32(0))
	w(uint32(2))
	w(uint32(1))
	w(uint32(0))
	ws("text")
	w(uint32(1))
	w(uint32(2))
	w(uint32(1))
	w(uint32(1))
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	e, err := NewEngineAt(dir)
	if err != nil {
		t.Fatalf("v1 file rejected: %v", err)
	}
	c, err := e.Collection("legacy")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Index().ShardCount(); got != 1 {
		t.Errorf("v1 load ShardCount = %d, want 1", got)
	}
	if got := c.DocCount(); got != 2 {
		t.Errorf("v1 load DocCount = %d, want 2", got)
	}
	if c.HasDoc("gone") {
		t.Error("tombstoned v1 doc resurrected")
	}
	if got := c.Index().DF("structured"); got != 2 {
		t.Errorf("DF(structured) = %d, want 2 (analyzer stems to the stored stem)", got)
	}
	rs, err := c.Search("structured text")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].ExtID != "o2" {
		t.Fatalf("v1 search = %v, want o2 first of 2", rs)
	}
	if m, ok := c.Index().Meta(mustDocID(t, c.Index(), "o1"), "oid"); !ok || m != "o1" {
		t.Errorf("v1 meta lost: %q %v", m, ok)
	}

	// Re-save: the file is rewritten as v2 and stays equivalent.
	if err := e.Save(); err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngineAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := e2.Collection("legacy")
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := c2.Search("structured text")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs2) != len(rs) {
		t.Fatalf("v2 rewrite changed results: %v vs %v", rs2, rs)
	}
	for i := range rs {
		if rs[i] != rs2[i] {
			t.Errorf("rank %d differs after v2 rewrite: %v vs %v", i, rs[i], rs2[i])
		}
	}
}

func mustDocID(t *testing.T, ix *Index, ext string) DocID {
	t.Helper()
	id, ok := ix.DocID(ext)
	if !ok {
		t.Fatalf("DocID(%q) missing", ext)
	}
	return id
}

// TestSaveLoadSharded: a sharded collection round-trips through the
// v2 format with shard count and rankings intact.
func TestSaveLoadSharded(t *testing.T) {
	dir := t.TempDir()
	e, err := NewEngineAt(dir, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	c, err := e.CreateCollection("sh", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		c.AddDocument(fmt.Sprintf("d%d", i), fmt.Sprintf("structured retrieval item%d", i), map[string]string{"n": fmt.Sprint(i)})
	}
	c.DeleteDocument("d3")
	c.UpdateDocument("d4", "replacement content entirely", nil)
	before, _ := c.Search("#and(structured retrieval)")
	if err := e.Save(); err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngineAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := e2.Collection("sh")
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Index().ShardCount(); got != 3 {
		t.Errorf("reloaded ShardCount = %d, want 3", got)
	}
	if got := c2.DocCount(); got != 24 {
		t.Errorf("reloaded DocCount = %d, want 24", got)
	}
	after, _ := c2.Search("#and(structured retrieval)")
	if len(before) != len(after) {
		t.Fatalf("result counts differ: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Errorf("rank %d: %v vs %v", i, before[i], after[i])
		}
	}
}

// fileSize is a small stat helper.
func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := osStat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// writeV1File hand-writes a collection file in the pre-sharding v1
// layout: five documents over three stored stems with varying term
// frequencies (positions ascending, doc lengths consistent with the
// position counts).
func writeV1File(t *testing.T, path string) {
	t.Helper()
	var buf bytes.Buffer
	w := func(v any) {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	ws := func(s string) {
		w(uint32(len(s)))
		buf.WriteString(s)
	}
	buf.WriteString(persistMagic)
	w(uint32(persistVersionV1))
	ws("inference-net")
	type doc struct {
		ext string
		len int
	}
	docs := []doc{{"o1", 3}, {"o2", 3}, {"o3", 2}, {"o4", 3}, {"o5", 3}}
	w(uint32(len(docs)))
	for _, d := range docs {
		ws(d.ext)
		w(uint32(d.len))
		w(uint8(0))  // live
		w(uint32(0)) // no meta
	}
	type posting struct {
		doc       uint32
		positions []uint32
	}
	dict := []struct {
		term     string
		postings []posting
	}{
		{"structur", []posting{{0, []uint32{0, 3}}, {2, []uint32{0}}, {4, []uint32{0}}}},
		{"text", []posting{{1, []uint32{0}}, {2, []uint32{1}}, {3, []uint32{0, 1, 2}}}},
		{"web", []posting{{0, []uint32{1}}, {1, []uint32{1, 2}}, {4, []uint32{1, 2}}}},
	}
	w(uint32(len(dict)))
	for _, te := range dict {
		ws(te.term)
		w(uint32(len(te.postings)))
		for _, p := range te.postings {
			w(p.doc)
			w(uint32(len(p.positions)))
			for _, pos := range p.positions {
				w(pos)
			}
		}
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestV1MigrationReshardRanking is the full migration path for
// pre-sharding collection files: load the v1 file, Reshard(n) (which
// compacts and renumbers), save (now v2), load again — rankings must
// be bit-identical at every step.
func TestV1MigrationReshardRanking(t *testing.T) {
	dir := t.TempDir()
	writeV1File(t, filepath.Join(dir, "legacy"+collExt))
	queries := []string{
		"structured text",
		"#and(web text)",
		"#or(structured #and(web text))",
		"#sum(structured text web)",
		"#phrase(structured web)",
	}

	e, err := NewEngineAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := e.Collection("legacy")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Index().ShardCount(); got != 1 {
		t.Fatalf("v1 ShardCount = %d, want 1", got)
	}
	baseline := make([][]Result, len(queries))
	for qi, q := range queries {
		if baseline[qi], err = c.Search(q); err != nil {
			t.Fatal(err)
		}
	}
	if len(baseline[0]) == 0 {
		t.Fatal("baseline search empty — fixture broken")
	}

	// Migrate: Reshard (compacting rebuild into 3 shards) + Save
	// rewrites the file in the v2 sharded layout.
	c.Index().Reshard(3)
	for qi, q := range queries {
		rs, err := c.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != len(baseline[qi]) {
			t.Fatalf("query %q: reshard changed result count %d -> %d", q, len(baseline[qi]), len(rs))
		}
		for i := range rs {
			if rs[i] != baseline[qi][i] {
				t.Fatalf("query %q rank %d: reshard changed ranking %v -> %v", q, i, baseline[qi][i], rs[i])
			}
		}
	}
	if err := e.Save(); err != nil {
		t.Fatal(err)
	}

	e2, err := NewEngineAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := e2.Collection("legacy")
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Index().ShardCount(); got != 3 {
		t.Fatalf("migrated ShardCount = %d, want 3", got)
	}
	if got := c2.DocCount(); got != 5 {
		t.Fatalf("migrated DocCount = %d, want 5", got)
	}
	if live, dead := c2.Index().TombstoneStats(); live != 5 || dead != 0 {
		t.Fatalf("migrated tombstone stats = %d live, %d dead", live, dead)
	}
	for qi, q := range queries {
		rs, err := c2.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != len(baseline[qi]) {
			t.Fatalf("query %q: migration changed result count %d -> %d", q, len(baseline[qi]), len(rs))
		}
		for i := range rs {
			if rs[i] != baseline[qi][i] {
				t.Errorf("query %q rank %d: migration changed ranking %v -> %v", q, i, baseline[qi][i], rs[i])
			}
		}
	}
}
