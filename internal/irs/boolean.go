package irs

// Boolean is a strict boolean retrieval model: a document either
// satisfies the query (score 1) or is not returned at all. #sum,
// #wsum, #max and #syn degrade to union, matching how boolean
// engines of the period mapped soft operators. #not complements
// within the set of live documents.
//
// The paper's Section 2 criticizes DBMS-oriented approaches for
// offering exactly this ("results are combined with boolean
// operators only, uncertainty is not considered") — having the model
// available makes that comparison measurable (EXP-T7).
//
// Set operations distribute over the disjoint per-shard document
// partitions, so the tree is evaluated once per shard in parallel
// and the results unioned.
type Boolean struct{}

// Name implements Model.
func (Boolean) Name() string { return "boolean" }

// Eval implements Model.
func (Boolean) Eval(s *Snapshot, root *Node) map[DocID]float64 {
	if root == nil {
		return nil
	}
	perShard := make([]map[DocID]bool, s.ShardCount())
	s.parShards(func(si int) {
		perShard[si] = booleanEvalShard(s, si, root)
	})
	total := 0
	for _, set := range perShard {
		total += len(set)
	}
	out := make(map[DocID]float64, total)
	for _, set := range perShard {
		for d := range set {
			out[d] = 1.0
		}
	}
	return out
}

// EvalTopK implements Model. Boolean scores are all 1.0, so the top
// k under the canonical order are simply the k smallest external ids
// of the match set; each shard streams its matches through a bounded
// heap and the shard winners merge. Set construction is the scoring,
// so there are no usable bounds (boundOf nil) and nothing is pruned —
// the saving over Eval is the avoided full materialization and sort.
func (Boolean) EvalTopK(s *Snapshot, root *Node, k int) TopKResult {
	if root == nil || k <= 0 {
		return TopKResult{}
	}
	return runTopK(s, k, func(si int) shardTask {
		set := booleanEvalShard(s, si, root)
		ids := make([]DocID, 0, len(set))
		for d := range set {
			ids = append(ids, d)
		}
		return shardTask{ids: ids, scoreOf: func(DocID) float64 { return 1.0 }}
	}, snapExt(s))
}

func booleanEvalShard(s *Snapshot, si int, n *Node) map[DocID]bool {
	switch n.Kind {
	case NodeTerm:
		lv := s.leafViewShard(si, s.analyzer.AnalyzeTerm(n.Term))
		set := make(map[DocID]bool, len(lv.live))
		for _, d := range lv.live {
			set[d] = true
		}
		return set
	case NodePhrase:
		tf := phraseStatShard(s, si, n)
		set := make(map[DocID]bool, len(tf))
		for d := range tf {
			set[d] = true
		}
		return set
	case NodeAnd:
		if set, ok := booleanAndTermsShard(s, si, n); ok {
			return set
		}
		var acc map[DocID]bool
		for _, c := range n.Children {
			sub := booleanEvalShard(s, si, c)
			if acc == nil {
				acc = sub
				continue
			}
			for d := range acc {
				if !sub[d] {
					delete(acc, d)
				}
			}
		}
		return acc
	case NodeOr, NodeSum, NodeWSum, NodeMax, NodeSyn:
		acc := make(map[DocID]bool)
		for _, c := range n.Children {
			for d := range booleanEvalShard(s, si, c) {
				acc[d] = true
			}
		}
		return acc
	case NodeNot:
		inner := booleanEvalShard(s, si, n.Children[0])
		out := make(map[DocID]bool)
		for _, d := range s.liveDocIDsShard(si) {
			if !inner[d] {
				out[d] = true
			}
		}
		return out
	}
	return nil
}

// booleanAndTermsShard intersects an all-term conjunction by
// leapfrogging block cursors: each round the first cursor's document
// is probed in the others via skipTo, whose block-metadata binary
// search jumps whole compressed blocks without expanding their
// frequency or position bytes. Returns ok=false when any child is not
// a plain term, falling back to the generic set evaluation.
func booleanAndTermsShard(s *Snapshot, si int, n *Node) (map[DocID]bool, bool) {
	if len(n.Children) == 0 {
		return nil, false
	}
	for _, c := range n.Children {
		if c.Kind != NodeTerm {
			return nil, false
		}
	}
	set := make(map[DocID]bool)
	cursors := make([]*termCursor, len(n.Children))
	for i, c := range n.Children {
		cursors[i] = s.leafViewShard(si, s.analyzer.AnalyzeTerm(c.Term)).newCursor()
		if !cursors[i].valid() {
			return set, true
		}
	}
	for {
		d := cursors[0].doc()
		max := d
		aligned := true
		for i := 1; i < len(cursors); i++ {
			cursors[i].skipTo(d)
			if !cursors[i].valid() {
				return set, true
			}
			if cursors[i].doc() > max {
				max = cursors[i].doc()
				aligned = false
			}
		}
		if !aligned {
			cursors[0].skipTo(max)
			if !cursors[0].valid() {
				return set, true
			}
			continue
		}
		set[d] = true
		cursors[0].next()
		if !cursors[0].valid() {
			return set, true
		}
	}
}
