package irs

// Boolean is a strict boolean retrieval model: a document either
// satisfies the query (score 1) or is not returned at all. #sum,
// #wsum, #max and #syn degrade to union, matching how boolean
// engines of the period mapped soft operators. #not complements
// within the set of live documents.
//
// The paper's Section 2 criticizes DBMS-oriented approaches for
// offering exactly this ("results are combined with boolean
// operators only, uncertainty is not considered") — having the model
// available makes that comparison measurable (EXP-T7).
type Boolean struct{}

// Name implements Model.
func (Boolean) Name() string { return "boolean" }

// Eval implements Model.
func (Boolean) Eval(ix *Index, root *Node) map[DocID]float64 {
	if root == nil {
		return nil
	}
	set := booleanEval(ix, root)
	out := make(map[DocID]float64, len(set))
	for d := range set {
		out[d] = 1.0
	}
	return out
}

func booleanEval(ix *Index, n *Node) map[DocID]bool {
	switch n.Kind {
	case NodeTerm:
		set := make(map[DocID]bool)
		for _, p := range ix.Postings(n.Term) {
			set[p.Doc] = true
		}
		return set
	case NodePhrase:
		st := phraseStat(ix, n)
		set := make(map[DocID]bool, len(st.tf))
		for d := range st.tf {
			set[d] = true
		}
		return set
	case NodeAnd:
		var acc map[DocID]bool
		for _, c := range n.Children {
			s := booleanEval(ix, c)
			if acc == nil {
				acc = s
				continue
			}
			for d := range acc {
				if !s[d] {
					delete(acc, d)
				}
			}
		}
		return acc
	case NodeOr, NodeSum, NodeWSum, NodeMax, NodeSyn:
		acc := make(map[DocID]bool)
		for _, c := range n.Children {
			for d := range booleanEval(ix, c) {
				acc[d] = true
			}
		}
		return acc
	case NodeNot:
		inner := booleanEval(ix, n.Children[0])
		out := make(map[DocID]bool)
		for _, d := range ix.LiveDocIDs() {
			if !inner[d] {
				out[d] = true
			}
		}
		return out
	}
	return nil
}
