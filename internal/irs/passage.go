package irs

import (
	"math"
	"sort"
)

// Passage retrieval ([SAB93], Salton/Allan/Buckley) — the paper's
// Section 6 names it as "an interesting candidate" for computing
// composite values without redundant indexing: "[SAB93] give up the
// assumption that complete documents should be retrieved by the IRS.
// Instead, their system identifies relevant passages of any length
// and granularity."
//
// PassageModel scores a document by its best fixed-width passage: a
// sliding window of Window token positions. Term beliefs inside a
// window use the inference-net formula with the window as the
// document (dl = avgdl = Window, so the length normalization is
// constant) and corpus-level idf; windows combine under the query's
// operator tree and the document's value is the maximum over its
// windows. Co-occurrence within a window therefore scores higher
// than the same terms dispersed across a long document — exactly the
// property whole-document scoring lacks.
//
// A document's positions live entirely in its shard, so the sliding
// windows evaluate shard by shard in parallel (with corpus-global
// idf), keeping scores independent of the shard count.
type PassageModel struct {
	// Window is the passage width in token positions (default 50).
	Window int
	// DefaultBelief for absent evidence; nil selects INQUERY's 0.4.
	// A pointer, like InferenceNet.DefaultBelief, so an explicit 0.0
	// is expressible: PassageModel{DefaultBelief: irs.Belief(0)}.
	DefaultBelief *float64
}

// Name implements Model.
func (m PassageModel) Name() string { return "passage" }

func (m PassageModel) window() int {
	if m.Window <= 0 {
		return 50
	}
	return m.Window
}

func (m PassageModel) defaultBelief() float64 {
	if m.DefaultBelief == nil {
		return 0.4
	}
	return *m.DefaultBelief
}

// preparePassage gathers per-term positional postings (partitioned by
// shard), per-shard candidate lists and corpus idfs — the shared
// front half of Eval and EvalTopK.
func (m PassageModel) preparePassage(s *Snapshot, root *Node) (map[string]*termInfo, [][]DocID) {
	terms := root.Terms()
	if len(terms) == 0 {
		return nil, nil
	}
	nsh := s.ShardCount()
	n := s.DocCount()
	infos := make(map[string]*termInfo, len(terms))
	for _, t := range terms {
		infos[t] = &termInfo{postings: make([]map[DocID][]uint32, nsh)}
	}
	candidates := make([][]DocID, nsh)
	s.parShards(func(si int) {
		cands := make(map[DocID]bool)
		for _, t := range terms {
			mp := make(map[DocID][]uint32)
			for _, p := range s.postingsShard(si, s.analyzer.AnalyzeTerm(t)) {
				mp[p.Doc] = p.Positions
				cands[p.Doc] = true
			}
			infos[t].postings[si] = mp
		}
		ids := make([]DocID, 0, len(cands))
		for d := range cands {
			ids = append(ids, d)
		}
		candidates[si] = ids
	})
	for _, ti := range infos {
		df := 0
		for _, mp := range ti.postings {
			df += len(mp)
		}
		if df > 0 {
			ti.idf = math.Log((float64(n)+0.5)/float64(df)) / math.Log(float64(n)+1)
		}
	}
	return infos, candidates
}

// Eval implements Model.
func (m PassageModel) Eval(s *Snapshot, root *Node) map[DocID]float64 {
	if root == nil {
		return nil
	}
	infos, candidates := m.preparePassage(s, root)
	if infos == nil {
		return nil
	}
	nsh := s.ShardCount()
	perShard := make([]map[DocID]float64, nsh)
	s.parShards(func(si int) {
		out := make(map[DocID]float64, len(candidates[si]))
		for _, d := range candidates[si] {
			out[d] = m.bestPassage(root, infos, si, d)
		}
		perShard[si] = out
	})
	return mergeShardScores(perShard)
}

// EvalTopK implements Model. Passage scoring is the most expensive of
// the four paradigms (a sliding window over every query-term
// occurrence per document), so skipping unpromising candidates pays
// the most here: no window of a document can beat the operator tree
// evaluated with every leaf at its shard-level count cap (window
// counts are bounded by document tf, which the index's max-tf bound
// dominates), so the same interval-arithmetic super-leaf bound used
// by the inference net prunes documents before any window slides.
func (m PassageModel) EvalTopK(s *Snapshot, root *Node, k int) TopKResult {
	if root == nil || k <= 0 {
		return TopKResult{}
	}
	infos, candidates := m.preparePassage(s, root)
	if infos == nil {
		return TopKResult{}
	}
	b := m.defaultBelief()
	plan := newBoundPlan(root, b)
	return runTopK(s, k, func(si int) shardTask {
		t := shardTask{
			ids:     candidates[si],
			scoreOf: func(d DocID) float64 { return m.bestPassage(root, infos, si, d) },
		}
		if len(candidates[si]) > k {
			sb := newShardBounds(plan, b, func(leaf *Node) interval {
				return m.passageLeafCap(s, si, infos, leaf, b)
			})
			masks := plan.evidenceMasks(func(leaf *Node, emit func(DocID)) {
				for _, t := range leafTermNames(leaf) {
					if ti := infos[t]; ti != nil {
						for d := range ti.postings[si] {
							emit(d)
						}
					}
				}
			})
			// bestPassage floors at zero (best starts at 0.0), so the
			// tree bound must too.
			t.boundOf = func(d DocID) float64 { return math.Max(0, sb.bound(masks[d])) }
		}
		return t
	}, snapExt(s))
}

// leafTermNames lists the raw terms a leaf draws counts from.
func leafTermNames(leaf *Node) []string {
	if leaf.Kind == NodeTerm {
		return []string{leaf.Term}
	}
	out := make([]string, 0, len(leaf.Children))
	for _, c := range leaf.Children {
		if c.Kind == NodeTerm {
			out = append(out, c.Term)
		}
	}
	return out
}

// passageLeafCap bounds a leaf's within-window belief for documents
// of shard si. Window counts cannot exceed document counts, which the
// shard's max-tf bound dominates; combine sums member counts for
// phrase/syn leaves under the rarest member's idf, so the cap mirrors
// exactly that computation at the summed tf bound.
func (m PassageModel) passageLeafCap(s *Snapshot, si int, infos map[string]*termInfo, leaf *Node, b float64) interval {
	switch leaf.Kind {
	case NodeTerm:
		ti := infos[leaf.Term]
		capTF := s.termMaxTFShard(si, s.analyzer.AnalyzeTerm(leaf.Term))
		if ti == nil || capTF == 0 {
			return pointIv(b)
		}
		return interval{b, m.termBelief(ti, capTF)}
	case NodePhrase, NodeSyn:
		capTF := 0
		var ti *termInfo
		for _, c := range leaf.Children {
			if c.Kind != NodeTerm {
				continue
			}
			capTF += s.termMaxTFShard(si, s.analyzer.AnalyzeTerm(c.Term))
			if cti := infos[c.Term]; cti != nil && (ti == nil || cti.idf > ti.idf) {
				ti = cti
			}
		}
		if ti == nil || capTF == 0 {
			return pointIv(b)
		}
		return interval{b, m.termBelief(ti, capTF)}
	}
	return pointIv(b)
}

// termInfo carries per-term postings (positions, partitioned by
// shard) and idf for passage evaluation.
type termInfo struct {
	postings []map[DocID][]uint32 // indexed by shard
	idf      float64
}

// event is one query-term occurrence in a document.
type event struct {
	pos  uint32
	term string
}

// bestPassage slides the window over the document's query-term
// occurrences and returns the best window's combined belief.
func (m PassageModel) bestPassage(root *Node, infos map[string]*termInfo, si int, d DocID) float64 {
	var events []event
	for term, ti := range infos {
		for _, pos := range ti.postings[si][d] {
			events = append(events, event{pos: pos, term: term})
		}
	}
	if len(events) == 0 {
		return m.defaultBelief()
	}
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	w := uint32(m.window())
	counts := make(map[string]int)
	best := 0.0
	lo := 0
	for hi := 0; hi < len(events); hi++ {
		counts[events[hi].term]++
		for events[hi].pos-events[lo].pos >= w {
			counts[events[lo].term]--
			lo++
		}
		if v := m.combine(root, infos, counts); v > best {
			best = v
		}
	}
	return best
}

// combine evaluates the query tree over a window's term counts.
func (m PassageModel) combine(n *Node, infos map[string]*termInfo, counts map[string]int) float64 {
	b := m.defaultBelief()
	switch n.Kind {
	case NodeTerm:
		return m.termBelief(infos[n.Term], counts[n.Term])
	case NodePhrase, NodeSyn:
		// Within-window approximation: treat as the sum of member
		// term counts under the rarest member's idf.
		tf := 0
		var ti *termInfo
		for _, c := range n.Children {
			tf += counts[c.Term]
			if cti := infos[c.Term]; cti != nil && (ti == nil || cti.idf > ti.idf) {
				ti = cti
			}
		}
		return m.termBelief(ti, tf)
	case NodeAnd:
		p := 1.0
		for _, c := range n.Children {
			p *= m.combine(c, infos, counts)
		}
		return p
	case NodeOr:
		q := 1.0
		for _, c := range n.Children {
			q *= 1 - m.combine(c, infos, counts)
		}
		return 1 - q
	case NodeNot:
		return 1 - m.combine(n.Children[0], infos, counts)
	case NodeSum:
		s := 0.0
		for _, c := range n.Children {
			s += m.combine(c, infos, counts)
		}
		return s / float64(len(n.Children))
	case NodeWSum:
		s, wsum := 0.0, 0.0
		for i, c := range n.Children {
			s += n.Weights[i] * m.combine(c, infos, counts)
			wsum += n.Weights[i]
		}
		if wsum == 0 {
			return b
		}
		return s / wsum
	case NodeMax:
		best := 0.0
		for _, c := range n.Children {
			if v := m.combine(c, infos, counts); v > best {
				best = v
			}
		}
		return best
	}
	return b
}

// termBelief computes the inference-net belief of a term inside a
// window: dl = avgdl = Window makes the length factor constant.
func (m PassageModel) termBelief(ti *termInfo, tf int) float64 {
	b := m.defaultBelief()
	if ti == nil || tf == 0 {
		return b
	}
	t := float64(tf) / (float64(tf) + 2.0) // tf/(tf + 0.5 + 1.5·1)
	return b + (1-b)*t*ti.idf
}
