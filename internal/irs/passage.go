package irs

import (
	"math"
	"sort"
)

// Passage retrieval ([SAB93], Salton/Allan/Buckley) — the paper's
// Section 6 names it as "an interesting candidate" for computing
// composite values without redundant indexing: "[SAB93] give up the
// assumption that complete documents should be retrieved by the IRS.
// Instead, their system identifies relevant passages of any length
// and granularity."
//
// PassageModel scores a document by its best fixed-width passage: a
// sliding window of Window token positions. Term beliefs inside a
// window use the inference-net formula with the window as the
// document (dl = avgdl = Window, so the length normalization is
// constant) and corpus-level idf; windows combine under the query's
// operator tree and the document's value is the maximum over its
// windows. Co-occurrence within a window therefore scores higher
// than the same terms dispersed across a long document — exactly the
// property whole-document scoring lacks.
//
// A document's positions live entirely in its shard, so the sliding
// windows evaluate shard by shard in parallel (with corpus-global
// idf), keeping scores independent of the shard count.
type PassageModel struct {
	// Window is the passage width in token positions (default 50).
	Window int
	// DefaultBelief for absent evidence; nil selects INQUERY's 0.4.
	// A pointer, like InferenceNet.DefaultBelief, so an explicit 0.0
	// is expressible: PassageModel{DefaultBelief: irs.Belief(0)}.
	DefaultBelief *float64
}

// Name implements Model.
func (m PassageModel) Name() string { return "passage" }

func (m PassageModel) window() int {
	if m.Window <= 0 {
		return 50
	}
	return m.Window
}

func (m PassageModel) defaultBelief() float64 {
	if m.DefaultBelief == nil {
		return 0.4
	}
	return *m.DefaultBelief
}

// preparePassage gathers per-term posting views (partitioned by
// shard), per-shard candidate lists and corpus idfs — the shared
// front half of Eval and EvalTopK. Candidate discovery decodes only
// doc-id streams; a document's positions are expanded block-by-block
// when a window actually slides over it.
func (m PassageModel) preparePassage(s *Snapshot, root *Node) (map[string]*termInfo, [][]DocID) {
	terms := root.Terms()
	if len(terms) == 0 {
		return nil, nil
	}
	nsh := s.ShardCount()
	n := s.DocCount()
	infos := make(map[string]*termInfo, len(terms))
	for _, t := range terms {
		infos[t] = &termInfo{views: make([]*leafView, nsh)}
	}
	candidates := make([][]DocID, nsh)
	s.parShards(func(si int) {
		cands := make(map[DocID]bool)
		for _, t := range terms {
			lv := s.leafViewShard(si, s.analyzer.AnalyzeTerm(t))
			infos[t].views[si] = lv
			for _, d := range lv.live {
				cands[d] = true
			}
		}
		ids := make([]DocID, 0, len(cands))
		for d := range cands {
			ids = append(ids, d)
		}
		candidates[si] = ids
	})
	for _, ti := range infos {
		df := 0
		for _, lv := range ti.views {
			df += len(lv.live)
		}
		if df > 0 {
			ti.idf = math.Log((float64(n)+0.5)/float64(df)) / math.Log(float64(n)+1)
		}
	}
	return infos, candidates
}

// passageDecodeStats folds one shard's decode counters over every
// term view.
func passageDecodeStats(infos map[string]*termInfo, si int) (blocksSkipped, postingsDecoded int64) {
	for _, ti := range infos {
		bs, pd := ti.views[si].decodeStats()
		blocksSkipped += bs
		postingsDecoded += pd
	}
	return blocksSkipped, postingsDecoded
}

// Eval implements Model.
func (m PassageModel) Eval(s *Snapshot, root *Node) map[DocID]float64 {
	if root == nil {
		return nil
	}
	infos, candidates := m.preparePassage(s, root)
	if infos == nil {
		return nil
	}
	nsh := s.ShardCount()
	perShard := make([]map[DocID]float64, nsh)
	s.parShards(func(si int) {
		out := make(map[DocID]float64, len(candidates[si]))
		for _, d := range candidates[si] {
			out[d] = m.bestPassage(root, infos, si, d)
		}
		perShard[si] = out
	})
	return mergeShardScores(perShard)
}

// EvalTopK implements Model. Passage scoring is the most expensive of
// the four paradigms (a sliding window over every query-term
// occurrence per document), so skipping unpromising candidates pays
// the most here: no window of a document can beat the operator tree
// evaluated with every leaf at its count cap (window counts are
// bounded by document tf). Caps are refined per candidate from the
// max tf of the candidate's containing block (Block-Max-MaxScore), so
// a pruned document's position blocks are never decoded before any
// window slides.
func (m PassageModel) EvalTopK(s *Snapshot, root *Node, k int) TopKResult {
	if root == nil || k <= 0 {
		return TopKResult{}
	}
	infos, candidates := m.preparePassage(s, root)
	if infos == nil {
		return TopKResult{}
	}
	b := m.defaultBelief()
	blockmax := TopKBlockMax()
	return runTopK(s, k, func(si int) shardTask {
		t := shardTask{
			ids:     candidates[si],
			scoreOf: func(d DocID) float64 { return m.bestPassage(root, infos, si, d) },
		}
		if len(candidates[si]) > k {
			// bestPassage floors at zero (best starts at 0.0), so the
			// tree bound must too.
			t.boundOf = func(d DocID) float64 {
				return math.Max(0, nodeBoundAt(root, b, d, func(leaf *Node, d DocID) interval {
					return m.passageLeafCap(si, infos, leaf, d, blockmax)
				}).hi)
			}
			t.stats = func() (int64, int64) { return passageDecodeStats(infos, si) }
		}
		return t
	}, snapExt(s))
}

// passageLeafCap bounds a leaf's within-window belief for candidate d
// in shard si. Window counts cannot exceed document counts, which the
// max tf of d's containing block dominates (whole-list bound when
// block refinement is toggled off); combine sums member counts for
// phrase/syn leaves under the rarest member's idf, so the cap mirrors
// exactly that computation at the summed tf bound.
func (m PassageModel) passageLeafCap(si int, infos map[string]*termInfo, leaf *Node, d DocID, blockmax bool) interval {
	b := m.defaultBelief()
	capOf := func(ti *termInfo) int {
		lv := ti.views[si]
		if blockmax {
			return lv.blockMaxTFOf(d)
		}
		if lv.contains(d) {
			return lv.maxTF
		}
		return 0
	}
	switch leaf.Kind {
	case NodeTerm:
		ti := infos[leaf.Term]
		if ti == nil {
			return pointIv(b)
		}
		capTF := capOf(ti)
		if capTF == 0 {
			return pointIv(b)
		}
		return interval{b, m.termBelief(ti, capTF)}
	case NodePhrase, NodeSyn:
		capTF := 0
		var ti *termInfo
		for _, c := range leaf.Children {
			if c.Kind != NodeTerm {
				continue
			}
			cti := infos[c.Term]
			if cti == nil {
				continue
			}
			capTF += capOf(cti)
			if ti == nil || cti.idf > ti.idf {
				ti = cti
			}
		}
		if ti == nil || capTF == 0 {
			return pointIv(b)
		}
		return interval{b, m.termBelief(ti, capTF)}
	}
	return pointIv(b)
}

// termInfo carries per-term posting views (partitioned by shard) and
// idf for passage evaluation.
type termInfo struct {
	views []*leafView // indexed by shard
	idf   float64
}

// event is one query-term occurrence in a document.
type event struct {
	pos  uint32
	term string
}

// bestPassage slides the window over the document's query-term
// occurrences and returns the best window's combined belief.
func (m PassageModel) bestPassage(root *Node, infos map[string]*termInfo, si int, d DocID) float64 {
	var events []event
	for term, ti := range infos {
		for _, pos := range ti.views[si].positionsOf(d) {
			events = append(events, event{pos: pos, term: term})
		}
	}
	if len(events) == 0 {
		return m.defaultBelief()
	}
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	w := uint32(m.window())
	counts := make(map[string]int)
	best := 0.0
	lo := 0
	for hi := 0; hi < len(events); hi++ {
		counts[events[hi].term]++
		for events[hi].pos-events[lo].pos >= w {
			counts[events[lo].term]--
			lo++
		}
		if v := m.combine(root, infos, counts); v > best {
			best = v
		}
	}
	return best
}

// combine evaluates the query tree over a window's term counts.
func (m PassageModel) combine(n *Node, infos map[string]*termInfo, counts map[string]int) float64 {
	b := m.defaultBelief()
	switch n.Kind {
	case NodeTerm:
		return m.termBelief(infos[n.Term], counts[n.Term])
	case NodePhrase, NodeSyn:
		// Within-window approximation: treat as the sum of member
		// term counts under the rarest member's idf.
		tf := 0
		var ti *termInfo
		for _, c := range n.Children {
			tf += counts[c.Term]
			if cti := infos[c.Term]; cti != nil && (ti == nil || cti.idf > ti.idf) {
				ti = cti
			}
		}
		return m.termBelief(ti, tf)
	case NodeAnd:
		p := 1.0
		for _, c := range n.Children {
			p *= m.combine(c, infos, counts)
		}
		return p
	case NodeOr:
		q := 1.0
		for _, c := range n.Children {
			q *= 1 - m.combine(c, infos, counts)
		}
		return 1 - q
	case NodeNot:
		return 1 - m.combine(n.Children[0], infos, counts)
	case NodeSum:
		s := 0.0
		for _, c := range n.Children {
			s += m.combine(c, infos, counts)
		}
		return s / float64(len(n.Children))
	case NodeWSum:
		s, wsum := 0.0, 0.0
		for i, c := range n.Children {
			s += n.Weights[i] * m.combine(c, infos, counts)
			wsum += n.Weights[i]
		}
		if wsum == 0 {
			return b
		}
		return s / wsum
	case NodeMax:
		best := 0.0
		for _, c := range n.Children {
			if v := m.combine(c, infos, counts); v > best {
				best = v
			}
		}
		return best
	}
	return b
}

// termBelief computes the inference-net belief of a term inside a
// window: dl = avgdl = Window makes the length factor constant.
func (m PassageModel) termBelief(ti *termInfo, tf int) float64 {
	b := m.defaultBelief()
	if ti == nil || tf == 0 {
		return b
	}
	t := float64(tf) / (float64(tf) + 2.0) // tf/(tf + 0.5 + 1.5·1)
	return b + (1-b)*t*ti.idf
}
