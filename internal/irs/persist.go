package irs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// Binary collection file format (little endian).
//
// Version 3 (written by this code) is the sharded layout with the
// top-k bounds section:
//
//	magic "IRSC" | version u32 = 3 | model name string
//	shard count u32
//	  per shard:
//	    doc count u32
//	      per doc: extID string | length u32 | deleted u8 |
//	               meta count u32 | (key string, value string)*
//	    term count u32
//	      per term: term string | max tf u32 | posting count u32 |
//	                (local doc u32, position count u32, positions u32*)*
//
// The per-term "max tf" is the incrementally maintained score
// upper-bound statistic of topk.go; persisting it preserves the exact
// in-memory bound state across a save/load cycle. Version 2 is the
// same layout without the max-tf field, version 1 the pre-sharding
// layout (exactly a version-2 file with an implicit single shard and
// no shard-count field); NewEngineAt still reads both, rebuilding the
// bounds from the postings on load (which in fact tightens them —
// loaded bounds are always max'ed with the computed ones, so a stale
// or corrupted stored bound can never under-state). The per-shard
// minimum live document length is never persisted: it is always
// recomputed from the document table.
//
// After the last shard an optional trailer persists the collection's
// background auto-compaction policy:
//
//	tag "ACPL" | ratio float64 bits u64 | min tombstones u32
//
// The trailer is only written when the policy is armed, which keeps
// the extension v3-compatible in both directions: files written
// before the trailer existed (or with the policy off) simply end at
// the last shard, and a reader hitting clean EOF leaves the policy
// off. Loading a file with the trailer re-arms the policy, so a
// restarted engine resumes tombstone-ratio-triggered compaction
// without the serving layer re-configuring it.
//
// Strings are u32 length + bytes. Tombstoned documents are written
// too so local ids stay stable across a save/load cycle; Compact
// before saving to shed them.

const (
	persistMagic     = "IRSC"
	persistVersionV1 = 1
	persistVersionV2 = 2
	persistVersion   = 3

	// autoCompactTag introduces the optional auto-compaction policy
	// trailer after the last shard.
	autoCompactTag = "ACPL"
)

// saveTo writes the collection to path atomically (write to a temp
// file in the same directory, then rename).
func (c *Collection) saveTo(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".irsc-*")
	if err != nil {
		return fmt.Errorf("irs: save collection: %w", err)
	}
	tmpName := tmp.Name()
	w := bufio.NewWriter(tmp)
	err = writeCollection(w, c)
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("irs: save collection %q: %w", c.name, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("irs: save collection %q: %w", c.name, err)
	}
	return nil
}

func loadCollection(path string) (*Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("irs: load collection: %w", err)
	}
	defer f.Close()
	name := filepath.Base(path)
	name = name[:len(name)-len(collExt)]
	c, err := readCollection(bufio.NewReader(f), name)
	if err != nil {
		return nil, fmt.Errorf("irs: load collection %q: %w", name, err)
	}
	return c, nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<28 {
		return "", fmt.Errorf("string length %d exceeds sanity bound", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// writeCollection serializes a consistent snapshot of the
// collection, so Save can run while writers proceed.
func writeCollection(w io.Writer, c *Collection) error {
	snap := c.ix.Snapshot()
	if _, err := io.WriteString(w, persistMagic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(persistVersion)); err != nil {
		return err
	}
	if err := writeString(w, c.Model().Name()); err != nil {
		return err
	}
	nsh := snap.ShardCount()
	if err := binary.Write(w, binary.LittleEndian, uint32(nsh)); err != nil {
		return err
	}
	for si := 0; si < nsh; si++ {
		ss := &snap.shards[si]
		if err := binary.Write(w, binary.LittleEndian, uint32(ss.docsLen)); err != nil {
			return err
		}
		for local := 0; local < ss.docsLen; local++ {
			d := &ss.docs[local]
			if err := writeString(w, d.extID); err != nil {
				return err
			}
			if err := binary.Write(w, binary.LittleEndian, uint32(d.length)); err != nil {
				return err
			}
			del := uint8(0)
			if ss.isDeleted(local) {
				del = 1
			}
			if err := binary.Write(w, binary.LittleEndian, del); err != nil {
				return err
			}
			if err := binary.Write(w, binary.LittleEndian, uint32(len(d.meta))); err != nil {
				return err
			}
			keys := make([]string, 0, len(d.meta))
			for k := range d.meta {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if err := writeString(w, k); err != nil {
					return err
				}
				if err := writeString(w, d.meta[k]); err != nil {
					return err
				}
			}
		}
		// termsShard returns raw headers captured after acquisition;
		// cap postings to documents inside the snapshot so the file
		// never references a doc beyond its own table. Tombstoned
		// postings are written (as in v1) — Compact sheds them.
		terms := snap.termsShard(si)
		filtered := make([]termPostings, 0, len(terms))
		for _, tp := range terms {
			ps := make([]Posting, 0, len(tp.ps))
			for _, p := range tp.ps {
				if int(p.Doc)/nsh < ss.docsLen {
					ps = append(ps, p)
				}
			}
			if len(ps) > 0 {
				filtered = append(filtered, termPostings{term: tp.term, ps: ps})
			}
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(filtered))); err != nil {
			return err
		}
		for _, tp := range filtered {
			if err := writeString(w, tp.term); err != nil {
				return err
			}
			if err := binary.Write(w, binary.LittleEndian, uint32(tp.maxTF)); err != nil {
				return err
			}
			if err := binary.Write(w, binary.LittleEndian, uint32(len(tp.ps))); err != nil {
				return err
			}
			for _, p := range tp.ps {
				local := uint32(int(p.Doc) / nsh)
				if err := binary.Write(w, binary.LittleEndian, local); err != nil {
					return err
				}
				if err := binary.Write(w, binary.LittleEndian, uint32(len(p.Positions))); err != nil {
					return err
				}
				for _, pos := range p.Positions {
					if err := binary.Write(w, binary.LittleEndian, pos); err != nil {
						return err
					}
				}
			}
		}
	}
	// Auto-compaction policy trailer (see the format comment): written
	// only when the policy is armed, so policy-off files stay
	// byte-identical to the pre-trailer format.
	if ratio, min := c.ix.AutoCompact(); ratio > 0 {
		if _, err := io.WriteString(w, autoCompactTag); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, math.Float64bits(ratio)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(min)); err != nil {
			return err
		}
	}
	return nil
}

func readCollection(r io.Reader, name string) (*Collection, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, err
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("bad magic %q", magic)
	}
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	modelName, err := readString(r)
	if err != nil {
		return nil, err
	}
	model, err := ModelByName(modelName)
	if err != nil {
		return nil, err
	}
	var ix *Index
	switch version {
	case persistVersionV1:
		// Pre-sharding layout: the body is exactly one shard.
		ix = NewIndexShards(nil, 1)
		if err := readShardInto(r, ix, 0, version); err != nil {
			return nil, err
		}
	case persistVersionV2, persistVersion:
		var shardCount uint32
		if err := binary.Read(r, binary.LittleEndian, &shardCount); err != nil {
			return nil, err
		}
		if shardCount < 1 || shardCount > maxShards {
			return nil, fmt.Errorf("shard count %d exceeds sanity bound", shardCount)
		}
		ix = NewIndexShards(nil, int(shardCount))
		for si := 0; si < int(shardCount); si++ {
			if err := readShardInto(r, ix, si, version); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("unsupported version %d", version)
	}
	if err := readAutoCompactTrailer(r, ix); err != nil {
		return nil, err
	}
	return &Collection{name: name, ix: ix, model: model}, nil
}

// readAutoCompactTrailer reads the optional policy trailer and re-arms
// the index's background compaction. Clean EOF — every file written
// before the trailer existed, and every file saved with the policy
// off — leaves the policy disabled.
func readAutoCompactTrailer(r io.Reader, ix *Index) error {
	tag := make([]byte, len(autoCompactTag))
	if _, err := io.ReadFull(r, tag); err != nil {
		if err == io.EOF {
			return nil
		}
		return fmt.Errorf("auto-compact trailer: %w", err)
	}
	if string(tag) != autoCompactTag {
		return fmt.Errorf("bad trailer tag %q", tag)
	}
	var ratioBits uint64
	if err := binary.Read(r, binary.LittleEndian, &ratioBits); err != nil {
		return fmt.Errorf("auto-compact trailer: %w", err)
	}
	var min uint32
	if err := binary.Read(r, binary.LittleEndian, &min); err != nil {
		return fmt.Errorf("auto-compact trailer: %w", err)
	}
	ratio := math.Float64frombits(ratioBits)
	if math.IsNaN(ratio) || ratio < 0 || ratio > 1 {
		return fmt.Errorf("auto-compact trailer: ratio %v out of range", ratio)
	}
	ix.SetAutoCompact(ratio, int(min))
	return nil
}

// readShardInto deserializes one shard body into shard si of ix
// (which must be freshly constructed; no locking). version selects
// whether the per-term bounds section is present (v3); older files
// rebuild the bounds from the postings.
func readShardInto(r io.Reader, ix *Index, si int, version uint32) error {
	sh := ix.shards[si]
	nsh := len(ix.shards)
	var docCount uint32
	if err := binary.Read(r, binary.LittleEndian, &docCount); err != nil {
		return err
	}
	sh.docs = make([]docInfo, docCount)
	sh.deleted = make([]uint64, (int(docCount)+63)/64)
	var err error
	for local := range sh.docs {
		d := &sh.docs[local]
		if d.extID, err = readString(r); err != nil {
			return err
		}
		var length uint32
		if err := binary.Read(r, binary.LittleEndian, &length); err != nil {
			return err
		}
		d.length = int(length)
		var del uint8
		if err := binary.Read(r, binary.LittleEndian, &del); err != nil {
			return err
		}
		var metaCount uint32
		if err := binary.Read(r, binary.LittleEndian, &metaCount); err != nil {
			return err
		}
		if metaCount > 0 {
			d.meta = make(map[string]string, metaCount)
			for j := uint32(0); j < metaCount; j++ {
				k, err := readString(r)
				if err != nil {
					return err
				}
				v, err := readString(r)
				if err != nil {
					return err
				}
				d.meta[k] = v
			}
		}
		if del != 0 {
			sh.setDeleted(uint32(local))
			ix.deadCount.Add(1)
		} else {
			ix.liveCount.Add(1)
			sh.byExt[d.extID] = uint32(local)
			if sh.liveDocs == 0 || d.length < sh.minLen {
				sh.minLen = d.length
			}
			sh.liveDocs++
			sh.totalLen += int64(d.length)
		}
	}
	var termCount uint32
	if err := binary.Read(r, binary.LittleEndian, &termCount); err != nil {
		return err
	}
	for i := uint32(0); i < termCount; i++ {
		term, err := readString(r)
		if err != nil {
			return err
		}
		var storedMaxTF uint32
		if version >= persistVersion {
			if err := binary.Read(r, binary.LittleEndian, &storedMaxTF); err != nil {
				return err
			}
		}
		var postingCount uint32
		if err := binary.Read(r, binary.LittleEndian, &postingCount); err != nil {
			return err
		}
		pl := &postingList{postings: make([]Posting, postingCount), maxTF: int(storedMaxTF)}
		for j := uint32(0); j < postingCount; j++ {
			var local, posCount uint32
			if err := binary.Read(r, binary.LittleEndian, &local); err != nil {
				return err
			}
			if err := binary.Read(r, binary.LittleEndian, &posCount); err != nil {
				return err
			}
			if posCount > 1<<26 {
				return fmt.Errorf("position count %d exceeds sanity bound", posCount)
			}
			positions := make([]uint32, posCount)
			for k := range positions {
				if err := binary.Read(r, binary.LittleEndian, &positions[k]); err != nil {
					return err
				}
			}
			if int(local) >= len(sh.docs) {
				return fmt.Errorf("posting references doc %d beyond table", local)
			}
			pl.postings[j] = Posting{Doc: globalID(local, si, nsh), Positions: positions}
			if !sh.isDeleted(local) {
				pl.df++
			}
			// Rebuild the tf bound from the postings (v1/v2 files carry
			// none; a v3 file's stored bound is max'ed in so a corrupted
			// or stale value can never under-state).
			if len(positions) > pl.maxTF {
				pl.maxTF = len(positions)
			}
			// Rebuild the forward index (not stored on disk).
			sh.docs[local].terms = append(sh.docs[local].terms, term)
		}
		sh.dict[term] = pl
	}
	return nil
}
