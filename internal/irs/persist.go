package irs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Binary collection file format (little endian):
//
//	magic "IRSC" | version u32 | model name string
//	doc count u32
//	  per doc: extID string | length u32 | deleted u8 |
//	           meta count u32 | (key string, value string)*
//	term count u32
//	  per term: term string | posting count u32 |
//	            (doc u32, position count u32, positions u32*)*
//
// Strings are u32 length + bytes. Tombstoned documents are written
// too so DocIDs stay stable across a save/load cycle; Compact before
// saving to shed them.

const (
	persistMagic   = "IRSC"
	persistVersion = 1
)

// saveTo writes the collection to path atomically (write to a temp
// file in the same directory, then rename).
func (c *Collection) saveTo(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".irsc-*")
	if err != nil {
		return fmt.Errorf("irs: save collection: %w", err)
	}
	tmpName := tmp.Name()
	w := bufio.NewWriter(tmp)
	err = writeCollection(w, c)
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("irs: save collection %q: %w", c.name, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("irs: save collection %q: %w", c.name, err)
	}
	return nil
}

func loadCollection(path string) (*Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("irs: load collection: %w", err)
	}
	defer f.Close()
	name := filepath.Base(path)
	name = name[:len(name)-len(collExt)]
	c, err := readCollection(bufio.NewReader(f), name)
	if err != nil {
		return nil, fmt.Errorf("irs: load collection %q: %w", name, err)
	}
	return c, nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<28 {
		return "", fmt.Errorf("string length %d exceeds sanity bound", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeCollection(w io.Writer, c *Collection) error {
	c.ix.mu.RLock()
	defer c.ix.mu.RUnlock()
	if _, err := io.WriteString(w, persistMagic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(persistVersion)); err != nil {
		return err
	}
	if err := writeString(w, c.Model().Name()); err != nil {
		return err
	}
	ix := c.ix
	if err := binary.Write(w, binary.LittleEndian, uint32(len(ix.docs))); err != nil {
		return err
	}
	for i := range ix.docs {
		d := &ix.docs[i]
		if err := writeString(w, d.extID); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(d.length)); err != nil {
			return err
		}
		del := uint8(0)
		if d.deleted {
			del = 1
		}
		if err := binary.Write(w, binary.LittleEndian, del); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(d.meta))); err != nil {
			return err
		}
		keys := make([]string, 0, len(d.meta))
		for k := range d.meta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := writeString(w, k); err != nil {
				return err
			}
			if err := writeString(w, d.meta[k]); err != nil {
				return err
			}
		}
	}
	terms := make([]string, 0, len(ix.dict))
	for t := range ix.dict {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	if err := binary.Write(w, binary.LittleEndian, uint32(len(terms))); err != nil {
		return err
	}
	for _, t := range terms {
		if err := writeString(w, t); err != nil {
			return err
		}
		pl := ix.dict[t]
		if err := binary.Write(w, binary.LittleEndian, uint32(len(pl.postings))); err != nil {
			return err
		}
		for _, p := range pl.postings {
			if err := binary.Write(w, binary.LittleEndian, uint32(p.Doc)); err != nil {
				return err
			}
			if err := binary.Write(w, binary.LittleEndian, uint32(len(p.Positions))); err != nil {
				return err
			}
			for _, pos := range p.Positions {
				if err := binary.Write(w, binary.LittleEndian, pos); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func readCollection(r io.Reader, name string) (*Collection, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, err
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("bad magic %q", magic)
	}
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != persistVersion {
		return nil, fmt.Errorf("unsupported version %d", version)
	}
	modelName, err := readString(r)
	if err != nil {
		return nil, err
	}
	model, err := ModelByName(modelName)
	if err != nil {
		return nil, err
	}
	ix := NewIndex(nil)
	var docCount uint32
	if err := binary.Read(r, binary.LittleEndian, &docCount); err != nil {
		return nil, err
	}
	ix.docs = make([]docInfo, docCount)
	for i := range ix.docs {
		d := &ix.docs[i]
		if d.extID, err = readString(r); err != nil {
			return nil, err
		}
		var length uint32
		if err := binary.Read(r, binary.LittleEndian, &length); err != nil {
			return nil, err
		}
		d.length = int(length)
		var del uint8
		if err := binary.Read(r, binary.LittleEndian, &del); err != nil {
			return nil, err
		}
		d.deleted = del != 0
		var metaCount uint32
		if err := binary.Read(r, binary.LittleEndian, &metaCount); err != nil {
			return nil, err
		}
		if metaCount > 0 {
			d.meta = make(map[string]string, metaCount)
			for j := uint32(0); j < metaCount; j++ {
				k, err := readString(r)
				if err != nil {
					return nil, err
				}
				v, err := readString(r)
				if err != nil {
					return nil, err
				}
				d.meta[k] = v
			}
		}
		if !d.deleted {
			ix.byExt[d.extID] = DocID(i)
			ix.liveDocs++
			ix.totalLen += int64(d.length)
		}
	}
	var termCount uint32
	if err := binary.Read(r, binary.LittleEndian, &termCount); err != nil {
		return nil, err
	}
	for i := uint32(0); i < termCount; i++ {
		term, err := readString(r)
		if err != nil {
			return nil, err
		}
		var postingCount uint32
		if err := binary.Read(r, binary.LittleEndian, &postingCount); err != nil {
			return nil, err
		}
		pl := &postingList{postings: make([]Posting, postingCount)}
		for j := uint32(0); j < postingCount; j++ {
			var doc, posCount uint32
			if err := binary.Read(r, binary.LittleEndian, &doc); err != nil {
				return nil, err
			}
			if err := binary.Read(r, binary.LittleEndian, &posCount); err != nil {
				return nil, err
			}
			if posCount > 1<<26 {
				return nil, fmt.Errorf("position count %d exceeds sanity bound", posCount)
			}
			positions := make([]uint32, posCount)
			for k := range positions {
				if err := binary.Read(r, binary.LittleEndian, &positions[k]); err != nil {
					return nil, err
				}
			}
			if int(doc) >= len(ix.docs) {
				return nil, fmt.Errorf("posting references doc %d beyond table", doc)
			}
			pl.postings[j] = Posting{Doc: DocID(doc), Positions: positions}
			if !ix.docs[doc].deleted {
				pl.df++
			}
			// Rebuild the forward index (not stored on disk).
			ix.docs[doc].terms = append(ix.docs[doc].terms, term)
		}
		ix.dict[term] = pl
	}
	return &Collection{name: name, ix: ix, model: model}, nil
}
