package irs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/irs/codec"
)

// Binary collection file format (little endian).
//
// Version 4 (written by this code) persists posting lists in the
// in-memory block-compressed form — sealed delta+varint blocks are
// written verbatim, so saving never decompresses them and loading
// never re-encodes:
//
//	magic "IRSC" | version u32 = 4 | model name string
//	shard count u32
//	  per shard:
//	    doc count u32
//	      per doc: extID string | length u32 | deleted u8 |
//	               meta count u32 | (key string, value string)*
//	    term count u32
//	      per term: term string | max tf u32 | block count u32 |
//	        per block: posting count u32 | first doc u32 | last doc u32 |
//	                   block max tf u32 |
//	                   doc stream  (u32 length + bytes) |
//	                   tf stream   (u32 length + bytes) |
//	                   pos stream  (u32 length + bytes)
//
// Block streams are the codec package's delta+varint encodings (local
// doc IDs and per-document positions gap-encoded, frequencies plain
// uvarint). The uncompressed in-memory tail is sealed into trailing
// (possibly short) blocks at save time, so a file is always purely
// blocks; the reader fully decodes each block once to rebuild the
// derived statistics (df, tf bounds, forward index) and validate the
// metadata against the streams, then keeps the compressed form.
//
// The per-term "max tf" is the incrementally maintained score
// upper-bound statistic of topk.go; persisting it preserves the exact
// in-memory bound state across a save/load cycle. Version 3 is the
// flat-posting sharded layout with the same max-tf field
// (per term: term | max tf u32 | posting count u32 |
// (local doc u32, position count u32, positions u32*)*), version 2
// that layout without the max-tf field, version 1 the pre-sharding
// layout (exactly a version-2 file with an implicit single shard and
// no shard-count field). NewEngineAt still reads all three, migrating
// flat postings into blocks on load and rebuilding the bounds from
// the postings (which in fact tightens them — loaded bounds are
// always max'ed with the computed ones, so a stale or corrupted
// stored bound can never under-state). The per-shard minimum live
// document length is never persisted: it is always recomputed from
// the document table.
//
// After the last shard an optional trailer persists the collection's
// background auto-compaction policy:
//
//	tag "ACPL" | ratio float64 bits u64 | min tombstones u32
//
// The trailer is only written when the policy is armed, which keeps
// the extension v3-compatible in both directions: files written
// before the trailer existed (or with the policy off) simply end at
// the last shard, and a reader hitting clean EOF leaves the policy
// off. Loading a file with the trailer re-arms the policy, so a
// restarted engine resumes tombstone-ratio-triggered compaction
// without the serving layer re-configuring it.
//
// Strings are u32 length + bytes. Tombstoned documents are written
// too so local ids stay stable across a save/load cycle; Compact
// before saving to shed them.

const (
	persistMagic     = "IRSC"
	persistVersionV1 = 1
	persistVersionV2 = 2
	persistVersionV3 = 3
	persistVersion   = 4

	// autoCompactTag introduces the optional auto-compaction policy
	// trailer after the last shard.
	autoCompactTag = "ACPL"
)

// saveTo writes the collection to path atomically (write to a temp
// file in the same directory, then rename).
func (c *Collection) saveTo(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".irsc-*")
	if err != nil {
		return fmt.Errorf("irs: save collection: %w", err)
	}
	tmpName := tmp.Name()
	w := bufio.NewWriter(tmp)
	err = writeCollection(w, c)
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("irs: save collection %q: %w", c.name, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("irs: save collection %q: %w", c.name, err)
	}
	return nil
}

func loadCollection(path string) (*Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("irs: load collection: %w", err)
	}
	defer f.Close()
	name := filepath.Base(path)
	name = name[:len(name)-len(collExt)]
	c, err := readCollection(bufio.NewReader(f), name)
	if err != nil {
		return nil, fmt.Errorf("irs: load collection %q: %w", name, err)
	}
	return c, nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<28 {
		return "", fmt.Errorf("string length %d exceeds sanity bound", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// writeCollection serializes a consistent snapshot of the
// collection, so Save can run while writers proceed.
func writeCollection(w io.Writer, c *Collection) error {
	snap := c.ix.Snapshot()
	if _, err := io.WriteString(w, persistMagic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(persistVersion)); err != nil {
		return err
	}
	if err := writeString(w, c.Model().Name()); err != nil {
		return err
	}
	nsh := snap.ShardCount()
	if err := binary.Write(w, binary.LittleEndian, uint32(nsh)); err != nil {
		return err
	}
	for si := 0; si < nsh; si++ {
		ss := &snap.shards[si]
		if err := binary.Write(w, binary.LittleEndian, uint32(ss.docsLen)); err != nil {
			return err
		}
		for local := 0; local < ss.docsLen; local++ {
			d := &ss.docs[local]
			if err := writeString(w, d.extID); err != nil {
				return err
			}
			if err := binary.Write(w, binary.LittleEndian, uint32(d.length)); err != nil {
				return err
			}
			del := uint8(0)
			if ss.isDeleted(local) {
				del = 1
			}
			if err := binary.Write(w, binary.LittleEndian, del); err != nil {
				return err
			}
			if err := binary.Write(w, binary.LittleEndian, uint32(len(d.meta))); err != nil {
				return err
			}
			keys := make([]string, 0, len(d.meta))
			for k := range d.meta {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if err := writeString(w, k); err != nil {
					return err
				}
				if err := writeString(w, d.meta[k]); err != nil {
					return err
				}
			}
		}
		// termsShardRaw returns raw block headers captured after
		// acquisition; cap storage to documents inside the snapshot's
		// doc table so the file never references a doc beyond it.
		// Blocks wholly inside the horizon are written verbatim —
		// save never expands their streams. A block straddling the
		// horizon and the uncompressed tail are filtered and
		// re-encoded into trailing blocks. Tombstoned postings are
		// written (as in v1) — Compact sheds them.
		type diskTerm struct {
			term   string
			maxTF  int
			blocks []codec.Block
		}
		raws := snap.termsShardRaw(si)
		terms := make([]diskTerm, 0, len(raws))
		for _, tr := range raws {
			dt := diskTerm{term: tr.term, maxTF: tr.maxTF}
			var spill []Posting // in-horizon postings needing re-encoding
			for bi := range tr.v.blocks {
				bl := &tr.v.blocks[bi]
				if int(bl.FirstDoc) >= ss.docsLen {
					break // doc-ordered: everything after is past the horizon
				}
				if int(bl.LastDoc) < ss.docsLen {
					dt.blocks = append(dt.blocks, *bl)
					continue
				}
				// Straddling block (sealed after acquisition): keep
				// the in-horizon prefix.
				docs, err := bl.DecodeDocs(nil)
				if err != nil {
					continue
				}
				tfs, err := bl.DecodeTFs(nil)
				if err != nil {
					continue
				}
				poss, err := bl.DecodePositions(tfs)
				if err != nil {
					continue
				}
				for i, local := range docs {
					if int(local) >= ss.docsLen {
						break
					}
					spill = append(spill, Posting{Doc: globalID(local, si, nsh), Positions: poss[i]})
				}
				break
			}
			for _, p := range tr.v.tail {
				if int(p.Doc)/nsh < ss.docsLen {
					spill = append(spill, p)
				}
			}
			for start := 0; start < len(spill); start += codec.BlockSize {
				end := min(start+codec.BlockSize, len(spill))
				chunk := spill[start:end]
				docs := make([]uint32, len(chunk))
				poss := make([][]uint32, len(chunk))
				for i, p := range chunk {
					docs[i] = uint32(int(p.Doc) / nsh)
					poss[i] = p.Positions
				}
				dt.blocks = append(dt.blocks, codec.Encode(docs, poss))
			}
			if len(dt.blocks) > 0 {
				terms = append(terms, dt)
			}
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(terms))); err != nil {
			return err
		}
		for _, dt := range terms {
			if err := writeString(w, dt.term); err != nil {
				return err
			}
			if err := binary.Write(w, binary.LittleEndian, uint32(dt.maxTF)); err != nil {
				return err
			}
			if err := binary.Write(w, binary.LittleEndian, uint32(len(dt.blocks))); err != nil {
				return err
			}
			for bi := range dt.blocks {
				if err := writeBlock(w, &dt.blocks[bi]); err != nil {
					return err
				}
			}
		}
	}
	// Auto-compaction policy trailer (see the format comment): written
	// only when the policy is armed, so policy-off files stay
	// byte-identical to the pre-trailer format.
	if ratio, min := c.ix.AutoCompact(); ratio > 0 {
		if _, err := io.WriteString(w, autoCompactTag); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, math.Float64bits(ratio)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(min)); err != nil {
			return err
		}
	}
	return nil
}

func readCollection(r io.Reader, name string) (*Collection, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, err
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("bad magic %q", magic)
	}
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	modelName, err := readString(r)
	if err != nil {
		return nil, err
	}
	model, err := ModelByName(modelName)
	if err != nil {
		return nil, err
	}
	var ix *Index
	switch version {
	case persistVersionV1:
		// Pre-sharding layout: the body is exactly one shard.
		ix = NewIndexShards(nil, 1)
		if err := readShardInto(r, ix, 0, version); err != nil {
			return nil, err
		}
	case persistVersionV2, persistVersionV3, persistVersion:
		var shardCount uint32
		if err := binary.Read(r, binary.LittleEndian, &shardCount); err != nil {
			return nil, err
		}
		if shardCount < 1 || shardCount > maxShards {
			return nil, fmt.Errorf("shard count %d exceeds sanity bound", shardCount)
		}
		ix = NewIndexShards(nil, int(shardCount))
		for si := 0; si < int(shardCount); si++ {
			if err := readShardInto(r, ix, si, version); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("unsupported version %d", version)
	}
	if err := readAutoCompactTrailer(r, ix); err != nil {
		return nil, err
	}
	return &Collection{name: name, ix: ix, model: model}, nil
}

// readAutoCompactTrailer reads the optional policy trailer and re-arms
// the index's background compaction. Clean EOF — every file written
// before the trailer existed, and every file saved with the policy
// off — leaves the policy disabled.
func readAutoCompactTrailer(r io.Reader, ix *Index) error {
	tag := make([]byte, len(autoCompactTag))
	if _, err := io.ReadFull(r, tag); err != nil {
		if err == io.EOF {
			return nil
		}
		return fmt.Errorf("auto-compact trailer: %w", err)
	}
	if string(tag) != autoCompactTag {
		return fmt.Errorf("bad trailer tag %q", tag)
	}
	var ratioBits uint64
	if err := binary.Read(r, binary.LittleEndian, &ratioBits); err != nil {
		return fmt.Errorf("auto-compact trailer: %w", err)
	}
	var min uint32
	if err := binary.Read(r, binary.LittleEndian, &min); err != nil {
		return fmt.Errorf("auto-compact trailer: %w", err)
	}
	ratio := math.Float64frombits(ratioBits)
	if math.IsNaN(ratio) || ratio < 0 || ratio > 1 {
		return fmt.Errorf("auto-compact trailer: ratio %v out of range", ratio)
	}
	ix.SetAutoCompact(ratio, int(min))
	return nil
}

// writeBlock serializes one sealed block: fixed metadata, then the
// three length-prefixed compressed streams, verbatim.
func writeBlock(w io.Writer, bl *codec.Block) error {
	for _, v := range []uint32{uint32(bl.N), bl.FirstDoc, bl.LastDoc, bl.MaxTF} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, stream := range [][]byte{bl.Docs, bl.TFs, bl.Pos} {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(stream))); err != nil {
			return err
		}
		if _, err := w.Write(stream); err != nil {
			return err
		}
	}
	return nil
}

// readBlock deserializes one block's metadata and streams. The caller
// validates the streams against the metadata (codec.Block.Validate)
// before trusting them.
func readBlock(r io.Reader) (codec.Block, error) {
	var n, first, last, maxTF uint32
	for _, p := range []*uint32{&n, &first, &last, &maxTF} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return codec.Block{}, err
		}
	}
	if n == 0 || n > codec.MaxBlockPostings {
		return codec.Block{}, fmt.Errorf("block posting count %d exceeds sanity bound", n)
	}
	bl := codec.Block{FirstDoc: first, LastDoc: last, MaxTF: maxTF, N: int(n)}
	for _, stream := range []*[]byte{&bl.Docs, &bl.TFs, &bl.Pos} {
		var sz uint32
		if err := binary.Read(r, binary.LittleEndian, &sz); err != nil {
			return codec.Block{}, err
		}
		if sz > 1<<28 {
			return codec.Block{}, fmt.Errorf("block stream length %d exceeds sanity bound", sz)
		}
		buf := make([]byte, sz)
		if _, err := io.ReadFull(r, buf); err != nil {
			return codec.Block{}, err
		}
		*stream = buf
	}
	return bl, nil
}

// readShardInto deserializes one shard body into shard si of ix
// (which must be freshly constructed; no locking). version selects
// the posting layout: v4 reads compressed blocks verbatim (validating
// each against its metadata), v1–v3 read flat postings and migrate
// them into blocks; v3+ carry the per-term bounds field, older files
// rebuild the bounds from the postings.
func readShardInto(r io.Reader, ix *Index, si int, version uint32) error {
	sh := ix.shards[si]
	nsh := len(ix.shards)
	var docCount uint32
	if err := binary.Read(r, binary.LittleEndian, &docCount); err != nil {
		return err
	}
	sh.docs = make([]docInfo, docCount)
	sh.deleted = make([]uint64, (int(docCount)+63)/64)
	var err error
	for local := range sh.docs {
		d := &sh.docs[local]
		if d.extID, err = readString(r); err != nil {
			return err
		}
		var length uint32
		if err := binary.Read(r, binary.LittleEndian, &length); err != nil {
			return err
		}
		d.length = int(length)
		var del uint8
		if err := binary.Read(r, binary.LittleEndian, &del); err != nil {
			return err
		}
		var metaCount uint32
		if err := binary.Read(r, binary.LittleEndian, &metaCount); err != nil {
			return err
		}
		if metaCount > 0 {
			d.meta = make(map[string]string, metaCount)
			for j := uint32(0); j < metaCount; j++ {
				k, err := readString(r)
				if err != nil {
					return err
				}
				v, err := readString(r)
				if err != nil {
					return err
				}
				d.meta[k] = v
			}
		}
		if del != 0 {
			sh.setDeleted(uint32(local))
			ix.deadCount.Add(1)
		} else {
			ix.liveCount.Add(1)
			sh.byExt[d.extID] = uint32(local)
			if sh.liveDocs == 0 || d.length < sh.minLen {
				sh.minLen = d.length
			}
			sh.liveDocs++
			sh.totalLen += int64(d.length)
		}
	}
	var termCount uint32
	if err := binary.Read(r, binary.LittleEndian, &termCount); err != nil {
		return err
	}
	var docs, tfs []uint32
	for i := uint32(0); i < termCount; i++ {
		term, err := readString(r)
		if err != nil {
			return err
		}
		var storedMaxTF uint32
		if version >= persistVersionV3 {
			if err := binary.Read(r, binary.LittleEndian, &storedMaxTF); err != nil {
				return err
			}
		}
		pl := &postingList{maxTF: int(storedMaxTF)}
		if version >= persistVersion {
			// v4: compressed blocks, kept verbatim. Each block is fully
			// decoded once to validate its metadata and rebuild the
			// derived state (df, tf bound, forward index) that is never
			// stored on disk.
			var blockCount uint32
			if err := binary.Read(r, binary.LittleEndian, &blockCount); err != nil {
				return err
			}
			if blockCount > 1<<24 {
				return fmt.Errorf("block count %d exceeds sanity bound", blockCount)
			}
			pl.blocks = make([]codec.Block, 0, blockCount)
			for bi := uint32(0); bi < blockCount; bi++ {
				bl, err := readBlock(r)
				if err != nil {
					return err
				}
				if err := bl.Validate(); err != nil {
					return fmt.Errorf("term %q block %d: %w", term, bi, err)
				}
				if docs, err = bl.DecodeDocs(docs[:0]); err != nil {
					return err
				}
				if tfs, err = bl.DecodeTFs(tfs[:0]); err != nil {
					return err
				}
				for j, local := range docs {
					if int(local) >= len(sh.docs) {
						return fmt.Errorf("posting references doc %d beyond table", local)
					}
					if !sh.isDeleted(local) {
						pl.df++
					}
					// A v4 file's stored bound is max'ed with the computed
					// one so a corrupted or stale value can never
					// under-state.
					if int(tfs[j]) > pl.maxTF {
						pl.maxTF = int(tfs[j])
					}
					pl.posCount += int64(tfs[j])
					// Rebuild the forward index (not stored on disk).
					sh.docs[local].terms = append(sh.docs[local].terms, term)
				}
				pl.count += bl.N
				pl.blocks = append(pl.blocks, bl)
			}
		} else {
			// v1–v3: flat postings, migrated into blocks on load.
			var postingCount uint32
			if err := binary.Read(r, binary.LittleEndian, &postingCount); err != nil {
				return err
			}
			for j := uint32(0); j < postingCount; j++ {
				var local, posCount uint32
				if err := binary.Read(r, binary.LittleEndian, &local); err != nil {
					return err
				}
				if err := binary.Read(r, binary.LittleEndian, &posCount); err != nil {
					return err
				}
				if posCount > 1<<26 {
					return fmt.Errorf("position count %d exceeds sanity bound", posCount)
				}
				positions := make([]uint32, posCount)
				for k := range positions {
					if err := binary.Read(r, binary.LittleEndian, &positions[k]); err != nil {
						return err
					}
				}
				if int(local) >= len(sh.docs) {
					return fmt.Errorf("posting references doc %d beyond table", local)
				}
				pl.appendPosting(globalID(local, si, nsh), positions, nsh)
				if !sh.isDeleted(local) {
					pl.df++
				}
				// Rebuild the tf bound from the postings (v1/v2 files carry
				// none; a v3 file's stored bound is max'ed in so a corrupted
				// or stale value can never under-state).
				if len(positions) > pl.maxTF {
					pl.maxTF = len(positions)
				}
				// Rebuild the forward index (not stored on disk).
				sh.docs[local].terms = append(sh.docs[local].terms, term)
			}
		}
		sh.dict[term] = pl
	}
	return nil
}
