package irs

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/irs/codec"
	"repro/internal/wal"
)

// Binary collection file format (little endian).
//
// Version 5 — the page-aligned, mmap-servable layout — is what this
// code writes; its format and writer/reader live in persist_v5.go.
// This file keeps the save plumbing and the legacy stream readers for
// versions 1–4, which load heap-resident and migrate to v5 on the
// next Save.
//
// Version 4 persists posting lists in the in-memory block-compressed
// form — sealed delta+varint blocks are written verbatim, so loading
// never re-encodes:
//
//	magic "IRSC" | version u32 = 4 | model name string
//	shard count u32
//	  per shard:
//	    doc count u32
//	      per doc: extID string | length u32 | deleted u8 |
//	               meta count u32 | (key string, value string)*
//	    term count u32
//	      per term: term string | max tf u32 | block count u32 |
//	        per block: posting count u32 | first doc u32 | last doc u32 |
//	                   block max tf u32 |
//	                   doc stream  (u32 length + bytes) |
//	                   tf stream   (u32 length + bytes) |
//	                   pos stream  (u32 length + bytes)
//
// Block streams are the codec package's delta+varint encodings (local
// doc IDs and per-document positions gap-encoded, frequencies plain
// uvarint). A file is always purely blocks; the v4 reader fully
// decodes each block once to rebuild the derived statistics (df, tf
// bounds, forward index) and validate the metadata against the
// streams, then keeps the compressed form. (v5 stores those derived
// statistics explicitly, which is what makes its open O(tables).)
//
// The per-term "max tf" is the incrementally maintained score
// upper-bound statistic of topk.go; persisting it preserves the exact
// in-memory bound state across a save/load cycle. Version 3 is the
// flat-posting sharded layout with the same max-tf field
// (per term: term | max tf u32 | posting count u32 |
// (local doc u32, position count u32, positions u32*)*), version 2
// that layout without the max-tf field, version 1 the pre-sharding
// layout (exactly a version-2 file with an implicit single shard and
// no shard-count field). NewEngineAt still reads all three, migrating
// flat postings into blocks on load and rebuilding the bounds from
// the postings (which in fact tightens them — loaded bounds are
// always max'ed with the computed ones, so a stale or corrupted
// stored bound can never under-state). The per-shard minimum live
// document length is never persisted: it is always recomputed from
// the document table.
//
// After the last shard an optional trailer persists the collection's
// background auto-compaction policy:
//
//	tag "ACPL" | ratio float64 bits u64 | min tombstones u32
//
// The trailer is only written when the policy is armed, which keeps
// the extension v3-compatible in both directions: files written
// before the trailer existed (or with the policy off) simply end at
// the last shard, and a reader hitting clean EOF leaves the policy
// off. Loading a file with the trailer re-arms the policy, so a
// restarted engine resumes tombstone-ratio-triggered compaction
// without the serving layer re-configuring it.
//
// Strings are u32 length + bytes. Tombstoned documents are written
// too so local ids stay stable across a save/load cycle; Compact
// before saving to shed them.

const (
	persistMagic     = "IRSC"
	persistVersionV1 = 1
	persistVersionV2 = 2
	persistVersionV3 = 3
	persistVersionV4 = 4
	persistVersion   = 5

	// autoCompactTag introduces the optional auto-compaction policy
	// trailer after the last shard.
	autoCompactTag = "ACPL"
)

// saveTo writes the collection to path atomically (write to a temp
// file in the same directory, then rename).
func (c *Collection) saveTo(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".irsc-*")
	if err != nil {
		return fmt.Errorf("irs: save collection: %w", err)
	}
	tmpName := tmp.Name()
	err = writeCollectionV5(tmp, c)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		// Kill-point boundary for crash-recovery tests: the snapshot is
		// durable in its temp file but not yet visible under path.
		err = wal.Fire("snapshot.written")
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("irs: save collection %q: %w", c.name, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("irs: save collection %q: %w", c.name, err)
	}
	// Boundary between the snapshot landing and the log rotating behind
	// it (Engine.Save): recovery must tolerate a new snapshot with the
	// old, now-redundant log.
	return wal.Fire("snapshot.renamed")
}

func loadCollection(path string) (*Collection, error) {
	return loadCollectionMode(path, false)
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<28 {
		return "", fmt.Errorf("string length %d exceeds sanity bound", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func readCollection(r io.Reader, name string) (*Collection, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, err
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("bad magic %q", magic)
	}
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	modelName, err := readString(r)
	if err != nil {
		return nil, err
	}
	model, err := ModelByName(modelName)
	if err != nil {
		return nil, err
	}
	var ix *Index
	switch version {
	case persistVersionV1:
		// Pre-sharding layout: the body is exactly one shard.
		ix = NewIndexShards(nil, 1)
		if err := readShardInto(r, ix, 0, version); err != nil {
			return nil, err
		}
	case persistVersionV2, persistVersionV3, persistVersionV4:
		var shardCount uint32
		if err := binary.Read(r, binary.LittleEndian, &shardCount); err != nil {
			return nil, err
		}
		if shardCount < 1 || shardCount > maxShards {
			return nil, fmt.Errorf("shard count %d exceeds sanity bound", shardCount)
		}
		ix = NewIndexShards(nil, int(shardCount))
		for si := 0; si < int(shardCount); si++ {
			if err := readShardInto(r, ix, si, version); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("unsupported version %d", version)
	}
	if err := readAutoCompactTrailer(r, ix); err != nil {
		return nil, err
	}
	return &Collection{name: name, ix: ix, model: model}, nil
}

// readAutoCompactTrailer reads the optional policy trailer and re-arms
// the index's background compaction. Clean EOF — every file written
// before the trailer existed, and every file saved with the policy
// off — leaves the policy disabled.
func readAutoCompactTrailer(r io.Reader, ix *Index) error {
	tag := make([]byte, len(autoCompactTag))
	if _, err := io.ReadFull(r, tag); err != nil {
		if err == io.EOF {
			return nil
		}
		return fmt.Errorf("auto-compact trailer: %w", err)
	}
	if string(tag) != autoCompactTag {
		return fmt.Errorf("bad trailer tag %q", tag)
	}
	var ratioBits uint64
	if err := binary.Read(r, binary.LittleEndian, &ratioBits); err != nil {
		return fmt.Errorf("auto-compact trailer: %w", err)
	}
	var min uint32
	if err := binary.Read(r, binary.LittleEndian, &min); err != nil {
		return fmt.Errorf("auto-compact trailer: %w", err)
	}
	ratio := math.Float64frombits(ratioBits)
	if math.IsNaN(ratio) || ratio < 0 || ratio > 1 {
		return fmt.Errorf("auto-compact trailer: ratio %v out of range", ratio)
	}
	ix.SetAutoCompact(ratio, int(min))
	return nil
}

// readBlock deserializes one block's metadata and streams. The caller
// validates the streams against the metadata (codec.Block.Validate)
// before trusting them.
func readBlock(r io.Reader) (codec.Block, error) {
	var n, first, last, maxTF uint32
	for _, p := range []*uint32{&n, &first, &last, &maxTF} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return codec.Block{}, err
		}
	}
	if n == 0 || n > codec.MaxBlockPostings {
		return codec.Block{}, fmt.Errorf("block posting count %d exceeds sanity bound", n)
	}
	bl := codec.Block{FirstDoc: first, LastDoc: last, MaxTF: maxTF, N: int(n)}
	for _, stream := range []*[]byte{&bl.Docs, &bl.TFs, &bl.Pos} {
		var sz uint32
		if err := binary.Read(r, binary.LittleEndian, &sz); err != nil {
			return codec.Block{}, err
		}
		if sz > 1<<28 {
			return codec.Block{}, fmt.Errorf("block stream length %d exceeds sanity bound", sz)
		}
		buf := make([]byte, sz)
		if _, err := io.ReadFull(r, buf); err != nil {
			return codec.Block{}, err
		}
		*stream = buf
	}
	return bl, nil
}

// readShardInto deserializes one shard body into shard si of ix
// (which must be freshly constructed; no locking). version selects
// the posting layout: v4 reads compressed blocks verbatim (validating
// each against its metadata), v1–v3 read flat postings and migrate
// them into blocks; v3+ carry the per-term bounds field, older files
// rebuild the bounds from the postings.
func readShardInto(r io.Reader, ix *Index, si int, version uint32) error {
	sh := ix.shards[si]
	nsh := len(ix.shards)
	var docCount uint32
	if err := binary.Read(r, binary.LittleEndian, &docCount); err != nil {
		return err
	}
	sh.docs = make([]docInfo, docCount)
	sh.deleted = make([]uint64, (int(docCount)+63)/64)
	var err error
	for local := range sh.docs {
		d := &sh.docs[local]
		if d.extID, err = readString(r); err != nil {
			return err
		}
		var length uint32
		if err := binary.Read(r, binary.LittleEndian, &length); err != nil {
			return err
		}
		d.length = int(length)
		var del uint8
		if err := binary.Read(r, binary.LittleEndian, &del); err != nil {
			return err
		}
		var metaCount uint32
		if err := binary.Read(r, binary.LittleEndian, &metaCount); err != nil {
			return err
		}
		if metaCount > 0 {
			d.meta = make(map[string]string, metaCount)
			for j := uint32(0); j < metaCount; j++ {
				k, err := readString(r)
				if err != nil {
					return err
				}
				v, err := readString(r)
				if err != nil {
					return err
				}
				d.meta[k] = v
			}
		}
		if del != 0 {
			sh.setDeleted(uint32(local))
			ix.deadCount.Add(1)
		} else {
			ix.liveCount.Add(1)
			sh.byExt[d.extID] = uint32(local)
			if sh.liveDocs == 0 || d.length < sh.minLen {
				sh.minLen = d.length
			}
			sh.liveDocs++
			sh.totalLen += int64(d.length)
		}
	}
	var termCount uint32
	if err := binary.Read(r, binary.LittleEndian, &termCount); err != nil {
		return err
	}
	var docs, tfs []uint32
	for i := uint32(0); i < termCount; i++ {
		term, err := readString(r)
		if err != nil {
			return err
		}
		var storedMaxTF uint32
		if version >= persistVersionV3 {
			if err := binary.Read(r, binary.LittleEndian, &storedMaxTF); err != nil {
				return err
			}
		}
		pl := &postingList{maxTF: int(storedMaxTF)}
		if version >= persistVersionV4 {
			// v4: compressed blocks, kept verbatim. Each block is fully
			// decoded once to validate its metadata and rebuild the
			// derived state (df, tf bound, forward index) that is never
			// stored on disk.
			var blockCount uint32
			if err := binary.Read(r, binary.LittleEndian, &blockCount); err != nil {
				return err
			}
			if blockCount > 1<<24 {
				return fmt.Errorf("block count %d exceeds sanity bound", blockCount)
			}
			pl.blocks = make([]codec.Block, 0, blockCount)
			for bi := uint32(0); bi < blockCount; bi++ {
				bl, err := readBlock(r)
				if err != nil {
					return err
				}
				if err := bl.Validate(); err != nil {
					return fmt.Errorf("term %q block %d: %w", term, bi, err)
				}
				if docs, err = bl.DecodeDocs(docs[:0]); err != nil {
					return err
				}
				if tfs, err = bl.DecodeTFs(tfs[:0]); err != nil {
					return err
				}
				for j, local := range docs {
					if int(local) >= len(sh.docs) {
						return fmt.Errorf("posting references doc %d beyond table", local)
					}
					if !sh.isDeleted(local) {
						pl.df++
					}
					// A v4 file's stored bound is max'ed with the computed
					// one so a corrupted or stale value can never
					// under-state.
					if int(tfs[j]) > pl.maxTF {
						pl.maxTF = int(tfs[j])
					}
					pl.posCount += int64(tfs[j])
					// Rebuild the forward index (not stored on disk).
					sh.docs[local].terms = append(sh.docs[local].terms, term)
				}
				pl.count += bl.N
				pl.blocks = append(pl.blocks, bl)
			}
		} else {
			// v1–v3: flat postings, migrated into blocks on load.
			var postingCount uint32
			if err := binary.Read(r, binary.LittleEndian, &postingCount); err != nil {
				return err
			}
			for j := uint32(0); j < postingCount; j++ {
				var local, posCount uint32
				if err := binary.Read(r, binary.LittleEndian, &local); err != nil {
					return err
				}
				if err := binary.Read(r, binary.LittleEndian, &posCount); err != nil {
					return err
				}
				if posCount > 1<<26 {
					return fmt.Errorf("position count %d exceeds sanity bound", posCount)
				}
				positions := make([]uint32, posCount)
				for k := range positions {
					if err := binary.Read(r, binary.LittleEndian, &positions[k]); err != nil {
						return err
					}
				}
				if int(local) >= len(sh.docs) {
					return fmt.Errorf("posting references doc %d beyond table", local)
				}
				pl.appendPosting(globalID(local, si, nsh), positions, nsh)
				if !sh.isDeleted(local) {
					pl.df++
				}
				// Rebuild the tf bound from the postings (v1/v2 files carry
				// none; a v3 file's stored bound is max'ed in so a corrupted
				// or stale value can never under-state).
				if len(positions) > pl.maxTF {
					pl.maxTF = len(positions)
				}
				// Rebuild the forward index (not stored on disk).
				sh.docs[local].terms = append(sh.docs[local].terms, term)
			}
		}
		sh.dict[term] = pl
	}
	return nil
}
