package irs

import (
	"strings"
	"testing"

	"repro/internal/irs/analysis"
)

func feedbackFixture(t *testing.T) *Collection {
	t.Helper()
	e := NewEngine()
	c, err := e.CreateCollection("fb", nil)
	if err != nil {
		t.Fatal(err)
	}
	// "www" documents consistently co-occur with "mosaic" and
	// "browser"; unrelated documents talk about cooking.
	docs := map[string]string{
		"r1": "the www needs a mosaic browser to render hypertext pages",
		"r2": "mosaic was the first popular www browser for the desktop",
		"r3": "a www browser like mosaic fetches pages over http",
		"u1": "soup recipes require fresh vegetables and slow cooking",
		"u2": "baking bread needs flour water salt and patience",
		"u3": "the cooking class covers knife skills and sauces",
	}
	for id, text := range docs {
		if err := c.AddDocument(id, text, nil); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestExpandQueryAddsCooccurringTerms(t *testing.T) {
	c := feedbackFixture(t)
	expanded, err := c.ExpandQuery("www", []string{"r1", "r2"}, FeedbackOptions{AddTerms: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(expanded, "#wsum(") {
		t.Fatalf("expanded = %q, want #wsum form", expanded)
	}
	// The strongest co-occurring stems must appear.
	if !strings.Contains(expanded, "mosaic") && !strings.Contains(expanded, "browser") {
		t.Errorf("expansion lacks co-occurring terms: %q", expanded)
	}
	// Terms already in the query are never re-added.
	if strings.Count(expanded, "www") != 1 {
		t.Errorf("original term duplicated: %q", expanded)
	}
	// The expansion parses and evaluates.
	if _, err := c.Search(expanded); err != nil {
		t.Fatalf("expanded query does not run: %v", err)
	}
}

func TestExpandQueryImprovesRecallForVocabularyMismatch(t *testing.T) {
	c := feedbackFixture(t)
	// r3 is relevant but the bare query "mosaic" ranks it below the
	// docs with higher mosaic tf; after feedback on r1/r2 the query
	// also carries "www"/"browser"/"page" vocabulary.
	expanded, err := c.ExpandQuery("mosaic", []string{"r1", "r2"}, FeedbackOptions{AddTerms: 3})
	if err != nil {
		t.Fatal(err)
	}
	before, _ := c.Search("mosaic")
	after, _ := c.Search(expanded)
	if len(after) < len(before) {
		t.Errorf("feedback shrank the result set: %d -> %d", len(before), len(after))
	}
	// No cooking document may enter the results.
	for _, r := range after {
		if strings.HasPrefix(r.ExtID, "u") && r.Score > 0.45 {
			t.Errorf("unrelated doc %s scored %v after feedback", r.ExtID, r.Score)
		}
	}
}

func TestExpandQueryEdgeCases(t *testing.T) {
	c := feedbackFixture(t)
	// No relevant docs: query unchanged (canonicalized).
	out, err := c.ExpandQuery("www", nil, FeedbackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out != "www" {
		t.Errorf("no-feedback expansion = %q", out)
	}
	// Unknown relevant ids are ignored.
	out, err = c.ExpandQuery("www", []string{"ghost"}, FeedbackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out != "www" {
		t.Errorf("ghost-feedback expansion = %q", out)
	}
	// Malformed query errors.
	if _, err := c.ExpandQuery("#broken(", []string{"r1"}, FeedbackOptions{}); err == nil {
		t.Error("malformed query accepted")
	}
}

func TestExpandQueryRespectsAnalyzer(t *testing.T) {
	// Expansion terms come from the dictionary, i.e. they are
	// already stemmed; feeding them back through ParseQuery +
	// AnalyzeTerm must not change them (symmetry with the paper's
	// requirement that buffer keys be canonical).
	c := feedbackFixture(t)
	expanded, err := c.ExpandQuery("www", []string{"r1", "r2", "r3"}, FeedbackOptions{AddTerms: 4})
	if err != nil {
		t.Fatal(err)
	}
	node, err := ParseQuery(expanded)
	if err != nil {
		t.Fatal(err)
	}
	a := analysis.NewAnalyzer()
	for _, term := range node.Terms() {
		restemmed := a.AnalyzeTerm(term)
		if c.ix.DF(term) == 0 && c.ix.DF(restemmed) == 0 {
			t.Errorf("expansion term %q matches nothing in the index", term)
		}
	}
}
