package irs

import (
	"sort"

	"repro/internal/irs/codec"
)

// This file is the read side of the block storage: leafView wraps one
// term's captured posting list in one shard with lazy per-block
// payload decoding, and termCursor walks it document-at-a-time with
// block-level skipping (next / skipTo / blockMaxTF — the Block-Max
// WAND cursor interface).
//
// Doc-id streams are decoded eagerly at view construction: candidate
// discovery, document frequencies and liveness filtering all need
// them, and they are the cheapest stream. Term frequencies and
// positions decode lazily, a whole block at a time, only when a
// document in that block is actually scored — so when the refined
// block-max bound rules a block's documents out, its tf and position
// bytes are never touched. TopKStats.BlocksSkipped counts blocks
// whose payloads stayed compressed through an evaluation;
// PostingsDecoded counts the postings whose payloads were expanded.

// blockView is one sealed block plus its decode state.
type blockView struct {
	bl   *codec.Block
	docs []uint32   // local doc ids, decoded at construction
	tfs  []uint32   // lazy: decoded on first score in this block
	poss [][]uint32 // lazy: decoded on first position use in this block
}

// leafView is one (shard, term) posting list prepared for evaluation.
// It is used by exactly one goroutine at a time (per-shard evaluation
// state), so lazy decoding needs no synchronization; the aggregate
// decode counters are read after evaluation completes.
type leafView struct {
	s         *Snapshot
	si        int
	maxTF     int // whole-list live-tf upper bound (termMaxTFShard)
	blocks    []blockView
	tail      []Posting
	tailMaxTF int
	live      []DocID // live global doc ids, ascending
}

// leafViewShard builds the view of an already-normalized term in one
// shard. Blocks wholly past the snapshot's doc horizon are dropped
// (they can only hold post-acquisition documents) and never counted
// in the decode stats. Always returns a non-nil view; a term missing
// from the shard dictionary yields an empty one.
func (s *Snapshot) leafViewShard(si int, term string) *leafView {
	ss := &s.shards[si]
	v := ss.view(term)
	lv := &leafView{s: s, si: si, maxTF: v.maxTF}
	n := len(s.shards)
	for bi := range v.blocks {
		bl := &v.blocks[bi]
		if !ss.blockInHorizon(bl) {
			break
		}
		docs, err := bl.DecodeDocs(make([]uint32, 0, bl.N))
		if err != nil {
			continue
		}
		lv.blocks = append(lv.blocks, blockView{bl: bl, docs: docs})
		for _, local := range docs {
			if id := globalID(local, si, n); s.live(id) {
				lv.live = append(lv.live, id)
			}
		}
	}
	lv.tail = v.tail
	for _, p := range v.tail {
		if tf := p.TF(); tf > lv.tailMaxTF {
			lv.tailMaxTF = tf
		}
		if s.live(p.Doc) {
			lv.live = append(lv.live, p.Doc)
		}
	}
	return lv
}

// find locates the local doc id: the containing block index (or
// len(blocks) for the tail) and the offset within it.
func (lv *leafView) find(local uint32) (bi, i int, ok bool) {
	bi = sort.Search(len(lv.blocks), func(j int) bool {
		return lv.blocks[j].bl.LastDoc >= local
	})
	if bi < len(lv.blocks) {
		bv := &lv.blocks[bi]
		i = sort.Search(len(bv.docs), func(j int) bool { return bv.docs[j] >= local })
		if i < len(bv.docs) && bv.docs[i] == local {
			return bi, i, true
		}
		return 0, 0, false
	}
	n := len(lv.s.shards)
	i = sort.Search(len(lv.tail), func(j int) bool {
		return uint32(int(lv.tail[j].Doc)/n) >= local
	})
	if i < len(lv.tail) && uint32(int(lv.tail[i].Doc)/n) == local {
		return len(lv.blocks), i, true
	}
	return 0, 0, false
}

// decodeTFs expands a block's frequency stream (idempotent).
func (bv *blockView) decodeTFs() {
	if bv.tfs != nil {
		return
	}
	tfs, err := bv.bl.DecodeTFs(make([]uint32, 0, bv.bl.N))
	if err != nil {
		tfs = make([]uint32, len(bv.docs)) // validated at load; unreachable
	}
	bv.tfs = tfs
}

// decodePositions expands a block's position stream (idempotent).
func (bv *blockView) decodePositions() {
	if bv.poss != nil {
		return
	}
	bv.decodeTFs()
	poss, err := bv.bl.DecodePositions(bv.tfs)
	if err != nil {
		poss = make([][]uint32, len(bv.docs))
	}
	bv.poss = poss
}

// tfOf returns the term frequency of d in this leaf (0 when absent),
// decoding the containing block's frequencies on first use.
func (lv *leafView) tfOf(d DocID) int {
	local := uint32(int(d) / len(lv.s.shards))
	bi, i, ok := lv.find(local)
	if !ok {
		return 0
	}
	if bi == len(lv.blocks) {
		return lv.tail[i].TF()
	}
	bv := &lv.blocks[bi]
	bv.decodeTFs()
	return int(bv.tfs[i])
}

// positionsOf returns the ascending positions of d in this leaf (nil
// when absent), decoding the containing block's positions on first
// use.
func (lv *leafView) positionsOf(d DocID) []uint32 {
	local := uint32(int(d) / len(lv.s.shards))
	bi, i, ok := lv.find(local)
	if !ok {
		return nil
	}
	if bi == len(lv.blocks) {
		return lv.tail[i].Positions
	}
	bv := &lv.blocks[bi]
	bv.decodePositions()
	return bv.poss[i]
}

// contains reports whether d has a posting in this leaf.
func (lv *leafView) contains(d DocID) bool {
	_, _, ok := lv.find(uint32(int(d) / len(lv.s.shards)))
	return ok
}

// blockOf returns the index of the block containing d (len(blocks)
// for the tail); ok is false when d has no posting in this leaf.
func (lv *leafView) blockOf(d DocID) (int, bool) {
	bi, _, ok := lv.find(uint32(int(d) / len(lv.s.shards)))
	return bi, ok
}

// blockMaxTFOf returns the max within-block term frequency of the
// block containing d — the refinement Block-Max pruning substitutes
// for the whole-list maxTF bound. Reads only metadata, never decodes.
// 0 when d is not in the leaf.
func (lv *leafView) blockMaxTFOf(d DocID) int {
	local := uint32(int(d) / len(lv.s.shards))
	bi, _, ok := lv.find(local)
	if !ok {
		return 0
	}
	if bi == len(lv.blocks) {
		return lv.tailMaxTF
	}
	return int(lv.blocks[bi].bl.MaxTF)
}

// decodeStats reports how evaluation treated the view's blocks: how
// many kept their payload compressed end-to-end (skipped) and how
// many postings had payloads expanded (decoded). The uncompressed
// tail is excluded from both counts.
func (lv *leafView) decodeStats() (blocksSkipped, postingsDecoded int64) {
	for i := range lv.blocks {
		if lv.blocks[i].tfs == nil {
			blocksSkipped++
		} else {
			postingsDecoded += int64(len(lv.blocks[i].docs))
		}
	}
	return blocksSkipped, postingsDecoded
}

// termCursor iterates a leafView's live postings in ascending DocID
// order: the document-at-a-time cursor API over block storage.
// skipTo seeks with a binary search over block boundaries, so
// advancing past whole blocks never touches their payload bytes.
type termCursor struct {
	v   *leafView
	bi  int // current block; len(v.blocks) = tail
	pi  int // next offset within the current block (or tail)
	cur DocID
	ok  bool
}

// newCursor returns a cursor positioned on the leaf's first live
// posting.
func (lv *leafView) newCursor() *termCursor {
	c := &termCursor{v: lv}
	c.advance()
	return c
}

// doc returns the current document; valid() reports whether the
// cursor is positioned on one.
func (c *termCursor) doc() DocID  { return c.cur }
func (c *termCursor) valid() bool { return c.ok }

// advance moves to the next live posting at or after (c.bi, c.pi).
func (c *termCursor) advance() {
	n := len(c.v.s.shards)
	for c.bi < len(c.v.blocks) {
		bv := &c.v.blocks[c.bi]
		for c.pi < len(bv.docs) {
			id := globalID(bv.docs[c.pi], c.v.si, n)
			c.pi++
			if c.v.s.live(id) {
				c.cur, c.ok = id, true
				return
			}
		}
		c.bi++
		c.pi = 0
	}
	for c.pi < len(c.v.tail) {
		p := c.v.tail[c.pi]
		c.pi++
		if c.v.s.live(p.Doc) {
			c.cur, c.ok = p.Doc, true
			return
		}
	}
	c.ok = false
}

// next moves to the following live posting.
func (c *termCursor) next() { c.advance() }

// skipTo positions the cursor on the first live posting with DocID ≥
// d, skipping whole blocks by their LastDoc metadata. A cursor
// already at or past d does not move.
func (c *termCursor) skipTo(d DocID) {
	if !c.ok || c.cur >= d {
		return
	}
	local := uint32(int(d) / len(c.v.s.shards))
	bi := sort.Search(len(c.v.blocks), func(j int) bool {
		return c.v.blocks[j].bl.LastDoc >= local
	})
	if bi > c.bi {
		c.bi, c.pi = bi, 0
	}
	if c.bi < len(c.v.blocks) {
		bv := &c.v.blocks[c.bi]
		i := sort.Search(len(bv.docs), func(j int) bool { return bv.docs[j] >= local })
		if i > c.pi {
			c.pi = i
		}
	} else {
		i := sort.Search(len(c.v.tail), func(j int) bool { return c.v.tail[j].Doc >= d })
		if i > c.pi {
			c.pi = i
		}
	}
	c.advance()
}

// blockMaxTF returns the max term frequency of the current block —
// the cursor-local score ceiling Block-Max evaluation compares with
// the global threshold before deciding to decode.
func (c *termCursor) blockMaxTF() int {
	if c.bi < len(c.v.blocks) {
		return int(c.v.blocks[c.bi].bl.MaxTF)
	}
	return c.v.tailMaxTF
}

// tf returns the current posting's term frequency (payload decode of
// the current block).
func (c *termCursor) tf() int { return c.v.tfOf(c.cur) }

// positions returns the current posting's positions.
func (c *termCursor) positions() []uint32 { return c.v.positionsOf(c.cur) }
