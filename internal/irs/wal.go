package irs

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/wal"
)

// The coupling layer spells WAL operation kinds in wal's vocabulary
// so its flush pipeline can build records without importing wal
// directly.
type WALOpKind = wal.Type

// WAL operation kinds a flush batch logs.
const (
	WALAdd    = wal.TypeAdd
	WALUpdate = wal.TypeUpdate
	WALDelete = wal.TypeDelete
)

// WALOp is one logged index operation: an analyzed document for
// add/update, an external id for delete.
type WALOp struct {
	Kind  WALOpKind
	ExtID string       // delete only
	Doc   *AnalyzedDoc // add/update only
}

// RecoveryReport summarizes one collection's crash recovery: what the
// log contributed on top of the last snapshot and what had to be
// discarded from its tail.
type RecoveryReport struct {
	Collection string `json:"collection"`
	// Records is the committed record count recovered from the log
	// (operations + commit/barrier markers); Replayed counts the
	// operations actually applied onto the snapshot.
	Records  int `json:"records"`
	Replayed int `json:"replayed"`
	// TornBytes and Uncommitted describe the discarded tail: torn bytes
	// from an interrupted write, intact records no commit covered.
	TornBytes   int64  `json:"torn_bytes,omitempty"`
	Uncommitted int    `json:"uncommitted,omitempty"`
	Watermark   uint64 `json:"watermark"`
	Epoch       uint64 `json:"epoch"`
}

// WALEnabled reports whether the collection carries a write-ahead log.
func (c *Collection) WALEnabled() bool { return c.wl != nil }

// WALAppend logs one flush batch — the ops followed by a commit
// record carrying the batch's ingest watermark — and applies the
// log's fsync policy. A nil-WAL collection accepts silently, so the
// coupling calls this unconditionally.
func (c *Collection) WALAppend(ops []WALOp, watermark uint64) error {
	if c.wl == nil {
		return nil
	}
	recs := make([]wal.Record, 0, len(ops)+1)
	for _, op := range ops {
		r := wal.Record{Type: op.Kind, Watermark: watermark}
		if op.Kind == WALDelete {
			r.Payload = []byte(op.ExtID)
		} else {
			r.Payload = encodeAnalyzedDoc(op.Doc)
		}
		recs = append(recs, r)
	}
	recs = append(recs, wal.Record{Type: wal.TypeCommit, Watermark: watermark})
	return c.wl.Append(recs)
}

// WALReapply applies a just-logged batch directly, mirroring the
// commit batch's semantics op for op (adds skip existing docs,
// updates and deletes skip missing ones). The coupling calls it when
// the commit batch failed partway: every op is already durable in the
// log, and reapplying idempotently converges the index on the same
// state the batch would have produced — which is also the state
// replay reconstructs after a crash.
func (c *Collection) WALReapply(ops []WALOp) error {
	for _, op := range ops {
		switch op.Kind {
		case WALAdd:
			if c.ix.HasDoc(op.Doc.extID) {
				continue
			}
			if _, err := c.ix.AddAnalyzed(op.Doc); err != nil {
				return err
			}
		case WALUpdate:
			if !c.ix.HasDoc(op.Doc.extID) {
				continue
			}
			if _, err := c.ix.UpdateAnalyzed(op.Doc); err != nil {
				return err
			}
		case WALDelete:
			if !c.ix.HasDoc(op.ExtID) {
				continue
			}
			if err := c.ix.Delete(op.ExtID); err != nil {
				return err
			}
		}
	}
	return nil
}

// WALSync forces unsynced log appends to disk — the durability
// barrier behind Drain and shutdown.
func (c *Collection) WALSync() error {
	if c.wl == nil {
		return nil
	}
	return c.wl.Sync()
}

// WALStats snapshots the log (ok=false without a WAL).
func (c *Collection) WALStats() (wal.Stats, bool) {
	if c.wl == nil {
		return wal.Stats{}, false
	}
	return c.wl.Stats(), true
}

// WALWatermark returns the last committed ingest watermark in the
// log; the coupling seeds its update sequence from it on restart so
// post-recovery operations sequence after the replayed ones.
func (c *Collection) WALWatermark() uint64 {
	if c.wl == nil {
		return 0
	}
	return c.wl.Watermark()
}

// WALRecovery returns what this collection's open recovered
// (ok=false without a WAL or when nothing preceded the open).
func (c *Collection) WALRecovery() (RecoveryReport, bool) {
	if c.wl == nil || c.walRecovered == nil {
		return RecoveryReport{}, false
	}
	return *c.walRecovered, true
}

// SetWALGroupWindow wires the group-fsync batching window — the
// coupling points it at the collection's adaptive commit-coalescing
// window so one fsync covers a coalesced flush group.
func (c *Collection) SetWALGroupWindow(fn func() time.Duration) {
	if c.wl != nil {
		c.wl.SetWindow(fn)
	}
}

// SetWALSyncErrorHook observes failed background group fsyncs (the
// coupling flips the collection into degraded mode from here).
func (c *Collection) SetWALSyncErrorHook(fn func(error)) {
	if c.wl != nil {
		c.wl.SetOnSyncError(fn)
	}
}

// WALReset rotates the log behind a barrier at watermark — called
// after the index state covering the log was rebuilt or snapshotted
// by other means (Reindex, bulk IndexObjects + Save).
func (c *Collection) WALReset(watermark uint64) error {
	if c.wl == nil {
		return nil
	}
	return c.wl.Rotate(watermark)
}

// rotateWAL truncates the log behind a barrier after a successful
// snapshot save, keeping the current watermark.
func (c *Collection) rotateWAL() error {
	if c.wl == nil {
		return nil
	}
	return c.wl.Rotate(c.wl.Watermark())
}

// closeWAL closes the log (nil-safe; idempotent).
func (c *Collection) closeWAL() error {
	if c.wl == nil {
		return nil
	}
	return c.wl.Close()
}

// replayWAL applies recovered records onto the freshly loaded
// snapshot. Replay is idempotent against the snapshot state — an add
// whose document already made it into the snapshot re-applies as an
// update, an update of a missing document applies as an add, a delete
// of a missing document is a no-op — so any committed log prefix
// lands on the exact state the live system had at that flush
// boundary. Runs single-threaded at open, before the collection is
// published.
func (c *Collection) replayWAL(recs []wal.Record) (int, error) {
	applied := 0
	for _, r := range recs {
		switch r.Type {
		case wal.TypeAdd, wal.TypeUpdate:
			d, err := decodeAnalyzedDoc(r.Payload)
			if err != nil {
				return applied, fmt.Errorf("irs: wal replay %q seq %d: %w", c.name, r.Seq, err)
			}
			if c.ix.HasDoc(d.extID) {
				_, err = c.ix.UpdateAnalyzed(d)
			} else {
				_, err = c.ix.AddAnalyzed(d)
			}
			if err != nil {
				return applied, fmt.Errorf("irs: wal replay %q seq %d: %w", c.name, r.Seq, err)
			}
			applied++
		case wal.TypeDelete:
			ext := string(r.Payload)
			if c.ix.HasDoc(ext) {
				if err := c.ix.Delete(ext); err != nil {
					return applied, fmt.Errorf("irs: wal replay %q seq %d: %w", c.name, r.Seq, err)
				}
			}
			applied++
		}
	}
	return applied, nil
}

// encodeAnalyzedDoc serializes an analyzed document as the payload of
// an add/update record: varint-framed strings and delta-varint
// positions, the same basic dialect the posting blocks use.
func encodeAnalyzedDoc(d *AnalyzedDoc) []byte {
	buf := make([]byte, 0, 64+16*len(d.terms))
	buf = appendUvarintStr(buf, d.extID)
	buf = binary.AppendUvarint(buf, uint64(d.length))
	buf = binary.AppendUvarint(buf, uint64(len(d.meta)))
	for k, v := range d.meta {
		buf = appendUvarintStr(buf, k)
		buf = appendUvarintStr(buf, v)
	}
	buf = binary.AppendUvarint(buf, uint64(len(d.terms)))
	for i, term := range d.terms {
		buf = appendUvarintStr(buf, term)
		pos := d.positions[i]
		buf = binary.AppendUvarint(buf, uint64(len(pos)))
		prev := uint32(0)
		for _, p := range pos {
			buf = binary.AppendUvarint(buf, uint64(p-prev))
			prev = p
		}
	}
	return buf
}

// decodeAnalyzedDoc is encodeAnalyzedDoc's inverse, validating every
// bound (record payloads are CRC-protected, but a codec bug must not
// become an allocation bomb).
func decodeAnalyzedDoc(buf []byte) (*AnalyzedDoc, error) {
	d := &AnalyzedDoc{}
	var err error
	if d.extID, buf, err = cutUvarintStr(buf); err != nil {
		return nil, err
	}
	length, buf, err := cutUvarint(buf)
	if err != nil {
		return nil, err
	}
	d.length = int(length)
	nmeta, buf, err := cutUvarint(buf)
	if err != nil {
		return nil, err
	}
	if nmeta > uint64(len(buf)) {
		return nil, errDocTruncated
	}
	if nmeta > 0 {
		d.meta = make(map[string]string, nmeta)
	}
	for i := uint64(0); i < nmeta; i++ {
		var k, v string
		if k, buf, err = cutUvarintStr(buf); err != nil {
			return nil, err
		}
		if v, buf, err = cutUvarintStr(buf); err != nil {
			return nil, err
		}
		d.meta[k] = v
	}
	nterms, buf, err := cutUvarint(buf)
	if err != nil {
		return nil, err
	}
	if nterms > uint64(len(buf)) {
		return nil, errDocTruncated
	}
	d.terms = make([]string, 0, nterms)
	d.positions = make([][]uint32, 0, nterms)
	for i := uint64(0); i < nterms; i++ {
		var term string
		if term, buf, err = cutUvarintStr(buf); err != nil {
			return nil, err
		}
		npos, rest, err := cutUvarint(buf)
		if err != nil {
			return nil, err
		}
		buf = rest
		if npos > uint64(len(buf)) {
			return nil, errDocTruncated
		}
		pos := make([]uint32, 0, npos)
		prev := uint32(0)
		for j := uint64(0); j < npos; j++ {
			delta, rest, err := cutUvarint(buf)
			if err != nil {
				return nil, err
			}
			buf = rest
			prev += uint32(delta)
			pos = append(pos, prev)
		}
		d.terms = append(d.terms, term)
		d.positions = append(d.positions, pos)
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("irs: analyzed-doc payload has %d trailing bytes", len(buf))
	}
	return d, nil
}

var errDocTruncated = fmt.Errorf("irs: truncated analyzed-doc payload")

func appendUvarintStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func cutUvarint(buf []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, errDocTruncated
	}
	return v, buf[n:], nil
}

func cutUvarintStr(buf []byte) (string, []byte, error) {
	n, buf, err := cutUvarint(buf)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(buf)) {
		return "", nil, errDocTruncated
	}
	return string(buf[:n]), buf[n:], nil
}
