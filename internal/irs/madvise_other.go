//go:build !linux && !darwin && !freebsd && !netbsd && !openbsd && !dragonfly

package irs

// No-op paging advice for platforms without a usable madvise (plus
// windows' plain file-read path). See madvise_unix.go.

func adviseRandom(b []byte)   {}
func adviseWillNeed(b []byte) {}
