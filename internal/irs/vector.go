package irs

import (
	"math"
	"sync"
)

// VectorSpace is a SMART-style tf.idf cosine model. The query tree
// is flattened to a weighted bag of leaves (#wsum weights carry
// through, other operators contribute weight 1); document and query
// vectors use ltc-style weighting:
//
//	w(t,d) = (1 + ln tf) · ln(1 + N/df)
//
// and scores are cosine-normalized by the true document norm, which
// is cached and invalidated via the snapshot version.
//
// Boolean structure (#and/#or/#not) is ignored beyond leaf
// collection — the classic behaviour of vector engines, and exactly
// the kind of paradigm difference EXP-T7 surfaces.
//
// Scoring fans out across shards: each shard accumulates partial
// scores for its own documents (using corpus-global df and N) and
// the ranker merges the disjoint partitions, so rankings are
// independent of the shard count.
type VectorSpace struct {
	mu       sync.Mutex
	normsVer uint64
	norms    map[DocID]float64
}

// NewVectorSpace returns a vector-space model instance. Instances
// cache per-index document norms; use one instance per collection.
func NewVectorSpace() *VectorSpace { return &VectorSpace{} }

// Name implements Model.
func (m *VectorSpace) Name() string { return "vector" }

// Eval implements Model.
func (m *VectorSpace) Eval(s *Snapshot, root *Node) map[DocID]float64 {
	if root == nil {
		return nil
	}
	leaves := flattenLeaves(root, 1.0)
	if len(leaves) == 0 {
		return nil
	}
	nsh := s.ShardCount()
	n := float64(s.DocCount())

	// Gather per-leaf, per-shard term frequencies in parallel; each
	// goroutine fills disjoint slots.
	stats := make([]*termStat, len(leaves))
	for i := range stats {
		stats[i] = newTermStat(nsh)
	}
	s.parShards(func(si int) {
		for li, lf := range leaves {
			switch lf.node.Kind {
			case NodeTerm:
				tf := make(map[DocID]int)
				for _, p := range s.postingsShard(si, s.analyzer.AnalyzeTerm(lf.node.Term)) {
					tf[p.Doc] = p.TF()
				}
				stats[li].tf[si] = tf
			case NodePhrase:
				stats[li].tf[si] = phraseStatShard(s, si, lf.node)
			default:
				stats[li].tf[si] = nil
			}
		}
	})
	// Query weights accumulate in leaf order — deterministic and
	// shard-count-independent.
	var qnorm float64
	qws := make([]float64, len(leaves))
	idfs := make([]float64, len(leaves))
	any := false
	for li, lf := range leaves {
		stats[li].sumDF()
		if stats[li].df == 0 {
			continue
		}
		any = true
		idfs[li] = math.Log(1 + n/float64(stats[li].df))
		qws[li] = lf.weight * idfs[li]
		qnorm += qws[li] * qws[li]
	}
	if !any {
		return make(map[DocID]float64)
	}
	qn := math.Sqrt(qnorm)
	if qn == 0 {
		qn = 1
	}
	norms := m.docNorms(s)
	perShard := make([]map[DocID]float64, nsh)
	s.parShards(func(si int) {
		scores := make(map[DocID]float64)
		for li := range leaves {
			if stats[li].df == 0 {
				continue
			}
			for d, tf := range stats[li].tf[si] {
				dw := (1 + math.Log(float64(tf))) * idfs[li]
				scores[d] += qws[li] * dw
			}
		}
		for d := range scores {
			dn := norms[d]
			if dn == 0 {
				dn = 1
			}
			scores[d] /= qn * dn
		}
		perShard[si] = scores
	})
	return mergeShardScores(perShard)
}

type weightedLeaf struct {
	node   *Node
	weight float64
}

// flattenLeaves collects term/phrase leaves with multiplied #wsum
// weights. #not subtrees are skipped: negative evidence has no
// natural place in a pure vector model.
func flattenLeaves(n *Node, w float64) []weightedLeaf {
	switch n.Kind {
	case NodeTerm, NodePhrase:
		return []weightedLeaf{{node: n, weight: w}}
	case NodeNot:
		return nil
	case NodeSyn:
		var out []weightedLeaf
		for _, c := range n.Children {
			out = append(out, flattenLeaves(c, w)...)
		}
		return out
	case NodeWSum:
		var out []weightedLeaf
		for i, c := range n.Children {
			out = append(out, flattenLeaves(c, w*n.Weights[i])...)
		}
		return out
	default:
		var out []weightedLeaf
		for _, c := range n.Children {
			out = append(out, flattenLeaves(c, w)...)
		}
		return out
	}
}

// docNorms returns the cached full document norms, rebuilding them
// when the snapshot reflects a newer index state than the cache.
// The rebuild runs in two parallel passes: per-shard live document
// frequencies are folded into global ones, then every shard
// accumulates its own documents' norms over its dictionary in
// sorted-term order (so the floating-point sums are deterministic
// and identical for any shard count).
func (m *VectorSpace) docNorms(s *Snapshot) map[DocID]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := s.Version()
	if m.norms != nil && m.normsVer == v {
		return m.norms
	}
	nsh := s.ShardCount()
	liveTerms := make([][]termPostings, nsh)
	dfs := make([]map[string]int, nsh)
	s.parShards(func(si int) {
		tps := s.termsShard(si)
		out := make([]termPostings, 0, len(tps))
		df := make(map[string]int, len(tps))
		for _, tp := range tps {
			live := s.filterLive(tp.ps)
			if len(live) == 0 {
				continue
			}
			out = append(out, termPostings{term: tp.term, ps: live})
			df[tp.term] = len(live)
		}
		liveTerms[si] = out
		dfs[si] = df
	})
	globalDF := make(map[string]int)
	for _, df := range dfs {
		for t, c := range df {
			globalDF[t] += c
		}
	}
	n := float64(s.DocCount())
	perShard := make([]map[DocID]float64, nsh)
	s.parShards(func(si int) {
		acc := make(map[DocID]float64)
		for _, tp := range liveTerms[si] {
			idf := math.Log(1 + n/float64(globalDF[tp.term]))
			for _, p := range tp.ps {
				dw := (1 + math.Log(float64(p.TF()))) * idf
				acc[p.Doc] += dw * dw
			}
		}
		for d, sum := range acc {
			acc[d] = math.Sqrt(sum)
		}
		perShard[si] = acc
	})
	m.norms = mergeShardScores(perShard)
	m.normsVer = v
	return m.norms
}
