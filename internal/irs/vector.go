package irs

import (
	"math"
	"sync"
)

// VectorSpace is a SMART-style tf.idf cosine model. The query tree
// is flattened to a weighted bag of leaves (#wsum weights carry
// through, other operators contribute weight 1); document and query
// vectors use ltc-style weighting:
//
//	w(t,d) = (1 + ln tf) · ln(1 + N/df)
//
// and scores are cosine-normalized by the true document norm, which
// is cached and invalidated via the snapshot version.
//
// Boolean structure (#and/#or/#not) is ignored beyond leaf
// collection — the classic behaviour of vector engines, and exactly
// the kind of paradigm difference EXP-T7 surfaces.
//
// Scoring fans out across shards: each shard accumulates partial
// scores for its own documents (using corpus-global df and N) and
// the ranker merges the disjoint partitions, so rankings are
// independent of the shard count.
type VectorSpace struct {
	mu       sync.Mutex
	normsVer uint64
	norms    map[DocID]float64
	// minNorms[si] is the smallest live document norm of shard si for
	// the cached version — the denominator bound MaxScore pruning
	// divides per-term numerator caps by.
	minNorms []float64
}

// NewVectorSpace returns a vector-space model instance. Instances
// cache per-index document norms; use one instance per collection.
func NewVectorSpace() *VectorSpace { return &VectorSpace{} }

// Name implements Model.
func (m *VectorSpace) Name() string { return "vector" }

// vectorQuery is the shared per-query state of Eval and EvalTopK:
// flattened leaves, their per-shard term frequencies, query weights
// and idfs accumulated in leaf order (deterministic and independent
// of the shard count).
type vectorQuery struct {
	leaves []weightedLeaf
	stats  []*termStat
	qws    []float64
	idfs   []float64
	qn     float64
	any    bool
}

func (m *VectorSpace) prepare(s *Snapshot, root *Node) *vectorQuery {
	leaves := flattenLeaves(root, 1.0)
	if len(leaves) == 0 {
		return nil
	}
	nsh := s.ShardCount()
	n := float64(s.DocCount())

	// Gather per-leaf, per-shard term frequencies in parallel; each
	// goroutine fills disjoint slots.
	q := &vectorQuery{leaves: leaves, stats: make([]*termStat, len(leaves))}
	for i := range q.stats {
		q.stats[i] = newTermStat(nsh)
	}
	s.parShards(func(si int) {
		for li, lf := range leaves {
			switch lf.node.Kind {
			case NodeTerm:
				tf := make(map[DocID]int)
				for _, p := range s.postingsShard(si, s.analyzer.AnalyzeTerm(lf.node.Term)) {
					tf[p.Doc] = p.TF()
				}
				q.stats[li].tf[si] = tf
			case NodePhrase:
				q.stats[li].tf[si] = phraseStatShard(s, si, lf.node)
			default:
				q.stats[li].tf[si] = nil
			}
		}
	})
	// Query weights accumulate in leaf order — deterministic and
	// shard-count-independent.
	var qnorm float64
	q.qws = make([]float64, len(leaves))
	q.idfs = make([]float64, len(leaves))
	for li, lf := range leaves {
		q.stats[li].sumDF()
		if q.stats[li].df == 0 {
			continue
		}
		q.any = true
		q.idfs[li] = math.Log(1 + n/float64(q.stats[li].df))
		q.qws[li] = lf.weight * q.idfs[li]
		qnorm += q.qws[li] * q.qws[li]
	}
	q.qn = math.Sqrt(qnorm)
	if q.qn == 0 {
		q.qn = 1
	}
	return q
}

// Eval implements Model.
func (m *VectorSpace) Eval(s *Snapshot, root *Node) map[DocID]float64 {
	if root == nil {
		return nil
	}
	q := m.prepare(s, root)
	if q == nil {
		return nil
	}
	if !q.any {
		return make(map[DocID]float64)
	}
	norms, _ := m.docNorms(s)
	nsh := s.ShardCount()
	perShard := make([]map[DocID]float64, nsh)
	s.parShards(func(si int) {
		scores := make(map[DocID]float64)
		for li := range q.leaves {
			if q.stats[li].df == 0 {
				continue
			}
			for d, tf := range q.stats[li].tf[si] {
				dw := (1 + math.Log(float64(tf))) * q.idfs[li]
				scores[d] += q.qws[li] * dw
			}
		}
		for d := range scores {
			dn := norms[d]
			if dn == 0 {
				dn = 1
			}
			scores[d] /= q.qn * dn
		}
		perShard[si] = scores
	})
	return mergeShardScores(perShard)
}

// EvalTopK implements Model. The cosine score is a weighted sum over
// query leaves divided by the document norm, so the classic MaxScore
// bound applies directly: per shard, each leaf's contribution is
// capped by its query weight times the maximum document weight the
// shard's max-tf bound admits, and a candidate's numerator cap —
// summed over the leaves it actually matches — divided by the shard's
// minimum live document norm bounds its score. runTopK drives the
// two-phase, threshold-sharing scan over the bounded candidates;
// survivors are scored with the same leaf-order accumulation Eval
// uses.
func (m *VectorSpace) EvalTopK(s *Snapshot, root *Node, k int) TopKResult {
	if root == nil || k <= 0 {
		return TopKResult{}
	}
	q := m.prepare(s, root)
	if q == nil || !q.any {
		return TopKResult{}
	}
	norms, minNorms := m.docNorms(s)
	useMask := len(q.leaves) <= maxSuperLeaves
	return runTopK(s, k, func(si int) shardTask {
		// Candidate discovery doubles as evidence-mask construction.
		masks := make(map[DocID]uint64)
		for li := range q.leaves {
			bit := uint64(1) << uint(li%maxSuperLeaves)
			for d := range q.stats[li].tf[si] {
				masks[d] |= bit
			}
		}
		ids := make([]DocID, 0, len(masks))
		for d := range masks {
			ids = append(ids, d)
		}
		var boundOf func(DocID) float64
		minNorm := 0.0
		if si < len(minNorms) {
			minNorm = minNorms[si]
		}
		if len(ids) > k && useMask && minNorm > 0 {
			// Per-leaf contribution caps in this shard. A negative
			// query weight (negative #wsum weight) caps at tf = 1,
			// where the negative contribution is largest.
			caps := make([]float64, len(q.leaves))
			for li := range q.leaves {
				if q.stats[li].df == 0 {
					continue
				}
				capTF := leafMaxTFShard(s, si, q.leaves[li].node)
				if capTF == 0 {
					continue
				}
				if q.qws[li] >= 0 {
					caps[li] = q.qws[li] * ((1 + math.Log(float64(capTF))) * q.idfs[li])
				} else {
					caps[li] = q.qws[li] * q.idfs[li]
				}
			}
			memo := make(map[uint64]float64)
			boundOf = func(d DocID) float64 {
				mask := masks[d]
				if v, ok := memo[mask]; ok {
					return v
				}
				num := 0.0
				for li := range q.leaves {
					if mask&(1<<uint(li)) != 0 {
						num += caps[li]
					}
				}
				v := 0.0
				if num > 0 {
					v = num / (q.qn * minNorm)
				}
				memo[mask] = v
				return v
			}
		}
		scoreOf := func(d DocID) float64 {
			var sum float64
			for li := range q.leaves {
				if q.stats[li].df == 0 {
					continue
				}
				if tf, ok := q.stats[li].tf[si][d]; ok {
					dw := (1 + math.Log(float64(tf))) * q.idfs[li]
					sum += q.qws[li] * dw
				}
			}
			dn := norms[d]
			if dn == 0 {
				dn = 1
			}
			return sum / (q.qn * dn)
		}
		return shardTask{ids: ids, boundOf: boundOf, scoreOf: scoreOf}
	}, snapExt(s))
}

type weightedLeaf struct {
	node   *Node
	weight float64
}

// flattenLeaves collects term/phrase leaves with multiplied #wsum
// weights. #not subtrees are skipped: negative evidence has no
// natural place in a pure vector model.
func flattenLeaves(n *Node, w float64) []weightedLeaf {
	switch n.Kind {
	case NodeTerm, NodePhrase:
		return []weightedLeaf{{node: n, weight: w}}
	case NodeNot:
		return nil
	case NodeSyn:
		var out []weightedLeaf
		for _, c := range n.Children {
			out = append(out, flattenLeaves(c, w)...)
		}
		return out
	case NodeWSum:
		var out []weightedLeaf
		for i, c := range n.Children {
			out = append(out, flattenLeaves(c, w*n.Weights[i])...)
		}
		return out
	default:
		var out []weightedLeaf
		for _, c := range n.Children {
			out = append(out, flattenLeaves(c, w)...)
		}
		return out
	}
}

// docNorms returns the cached full document norms (plus the per-shard
// minimum live norm), rebuilding them when the snapshot reflects a
// newer index state than the cache. The rebuild runs in two parallel
// passes: per-shard live document frequencies are folded into global
// ones, then every shard accumulates its own documents' norms over
// its dictionary in sorted-term order (so the floating-point sums are
// deterministic and identical for any shard count).
func (m *VectorSpace) docNorms(s *Snapshot) (map[DocID]float64, []float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := s.Version()
	if m.norms != nil && m.normsVer == v && len(m.minNorms) == s.ShardCount() {
		return m.norms, m.minNorms
	}
	nsh := s.ShardCount()
	liveTerms := make([][]termPostings, nsh)
	dfs := make([]map[string]int, nsh)
	s.parShards(func(si int) {
		tps := s.termsShard(si)
		out := make([]termPostings, 0, len(tps))
		df := make(map[string]int, len(tps))
		for _, tp := range tps {
			live := s.filterLive(tp.ps)
			if len(live) == 0 {
				continue
			}
			out = append(out, termPostings{term: tp.term, ps: live})
			df[tp.term] = len(live)
		}
		liveTerms[si] = out
		dfs[si] = df
	})
	globalDF := make(map[string]int)
	for _, df := range dfs {
		for t, c := range df {
			globalDF[t] += c
		}
	}
	n := float64(s.DocCount())
	perShard := make([]map[DocID]float64, nsh)
	minNorms := make([]float64, nsh)
	s.parShards(func(si int) {
		acc := make(map[DocID]float64)
		for _, tp := range liveTerms[si] {
			idf := math.Log(1 + n/float64(globalDF[tp.term]))
			for _, p := range tp.ps {
				dw := (1 + math.Log(float64(p.TF()))) * idf
				acc[p.Doc] += dw * dw
			}
		}
		min := 0.0
		for d, sum := range acc {
			norm := math.Sqrt(sum)
			acc[d] = norm
			if min == 0 || norm < min {
				min = norm
			}
		}
		perShard[si] = acc
		minNorms[si] = min
	})
	m.norms = mergeShardScores(perShard)
	m.minNorms = minNorms
	m.normsVer = v
	return m.norms, m.minNorms
}
