package irs

import (
	"math"
	"sort"
	"sync"
)

// VectorSpace is a SMART-style tf.idf cosine model. The query tree
// is flattened to a weighted bag of leaves (#wsum weights carry
// through, other operators contribute weight 1); document and query
// vectors use ltc-style weighting:
//
//	w(t,d) = (1 + ln tf) · ln(1 + N/df)
//
// and scores are cosine-normalized by the true document norm, which
// is cached and invalidated via the snapshot version.
//
// Boolean structure (#and/#or/#not) is ignored beyond leaf
// collection — the classic behaviour of vector engines, and exactly
// the kind of paradigm difference EXP-T7 surfaces.
//
// Scoring fans out across shards: each shard accumulates partial
// scores for its own documents (using corpus-global df and N) and
// the ranker merges the disjoint partitions, so rankings are
// independent of the shard count.
type VectorSpace struct {
	mu       sync.Mutex
	normsVer uint64
	norms    map[DocID]float64
	// minNorms[si] is the smallest live document norm of shard si for
	// the cached version — the denominator bound MaxScore pruning
	// divides per-term numerator caps by.
	minNorms []float64
}

// NewVectorSpace returns a vector-space model instance. Instances
// cache per-index document norms; use one instance per collection.
func NewVectorSpace() *VectorSpace { return &VectorSpace{} }

// Name implements Model.
func (m *VectorSpace) Name() string { return "vector" }

// vectorQuery is the shared per-query state of Eval and EvalTopK:
// flattened leaves, their per-shard posting views, query weights and
// idfs accumulated in leaf order (deterministic and independent of
// the shard count). Term leaves stay block-compressed — frequencies
// decode per block when a document is scored; phrase leaves carry
// eager per-shard frequency maps (positional intersection decodes up
// front anyway).
type vectorQuery struct {
	leaves []weightedLeaf
	stats  []*termStat
	views  [][]*leafView // per shard: distinct term-leaf views (decode stats)
	qws    []float64
	idfs   []float64
	qn     float64
	any    bool
}

func (m *VectorSpace) prepare(s *Snapshot, root *Node) *vectorQuery {
	leaves := flattenLeaves(root, 1.0)
	if len(leaves) == 0 {
		return nil
	}
	nsh := s.ShardCount()
	n := float64(s.DocCount())

	// Gather per-leaf, per-shard evidence in parallel; each goroutine
	// fills disjoint slots.
	q := &vectorQuery{
		leaves: leaves,
		stats:  make([]*termStat, len(leaves)),
		views:  make([][]*leafView, nsh),
	}
	for li, lf := range leaves {
		if lf.node.Kind == NodeTerm {
			q.stats[li] = &termStat{views: make([]*leafView, nsh)}
		} else {
			q.stats[li] = &termStat{tf: make([]map[DocID]int, nsh)}
		}
	}
	s.parShards(func(si int) {
		seen := make(map[string]*leafView)
		for li, lf := range leaves {
			switch lf.node.Kind {
			case NodeTerm:
				term := s.analyzer.AnalyzeTerm(lf.node.Term)
				lv := seen[term]
				if lv == nil {
					lv = s.leafViewShard(si, term)
					seen[term] = lv
					q.views[si] = append(q.views[si], lv)
				}
				q.stats[li].views[si] = lv
			case NodePhrase:
				q.stats[li].tf[si] = phraseStatShard(s, si, lf.node)
			}
		}
	})
	// Query weights accumulate in leaf order — deterministic and
	// shard-count-independent.
	var qnorm float64
	q.qws = make([]float64, len(leaves))
	q.idfs = make([]float64, len(leaves))
	for li, lf := range leaves {
		st := q.stats[li]
		if st.views != nil {
			for _, lv := range st.views {
				st.df += len(lv.live)
			}
		} else {
			for _, m := range st.tf {
				st.df += len(m)
			}
		}
		if st.df == 0 {
			continue
		}
		q.any = true
		q.idfs[li] = math.Log(1 + n/float64(st.df))
		q.qws[li] = lf.weight * q.idfs[li]
		qnorm += q.qws[li] * q.qws[li]
	}
	q.qn = math.Sqrt(qnorm)
	if q.qn == 0 {
		q.qn = 1
	}
	return q
}

// leafTF returns leaf li's within-document frequency for d in shard
// si (0 when absent), decoding d's block payload on first use.
func (q *vectorQuery) leafTF(li, si int, d DocID) int {
	st := q.stats[li]
	if st.views != nil {
		return st.views[si].tfOf(d)
	}
	return st.tf[si][d]
}

// Eval implements Model.
func (m *VectorSpace) Eval(s *Snapshot, root *Node) map[DocID]float64 {
	if root == nil {
		return nil
	}
	q := m.prepare(s, root)
	if q == nil {
		return nil
	}
	if !q.any {
		return make(map[DocID]float64)
	}
	norms, _ := m.docNorms(s)
	nsh := s.ShardCount()
	perShard := make([]map[DocID]float64, nsh)
	s.parShards(func(si int) {
		scores := make(map[DocID]float64)
		for li := range q.leaves {
			st := q.stats[li]
			if st.df == 0 {
				continue
			}
			if st.views != nil {
				lv := st.views[si]
				for _, d := range lv.live {
					dw := (1 + math.Log(float64(lv.tfOf(d)))) * q.idfs[li]
					scores[d] += q.qws[li] * dw
				}
			} else {
				for d, tf := range st.tf[si] {
					dw := (1 + math.Log(float64(tf))) * q.idfs[li]
					scores[d] += q.qws[li] * dw
				}
			}
		}
		for d := range scores {
			dn := norms[d]
			if dn == 0 {
				dn = 1
			}
			scores[d] /= q.qn * dn
		}
		perShard[si] = scores
	})
	return mergeShardScores(perShard)
}

// EvalTopK implements Model. The cosine score is a weighted sum over
// query leaves divided by the document norm, so the classic MaxScore
// bound applies directly — refined per candidate Block-Max style: a
// term leaf's contribution is capped by its query weight times the
// maximum document weight admitted by the max tf of the candidate's
// containing block (pure block metadata; per-block caps are
// precomputed so the per-candidate walk does no logarithms), and a
// candidate's numerator cap — summed over the leaves it actually
// matches — divided by the shard's minimum live document norm bounds
// its score. runTopK drives the two-phase, threshold-sharing scan
// over the bounded candidates; survivors are scored with the same
// leaf-order accumulation Eval uses, so blocks whose documents all
// bound below the shared threshold never have their frequency bytes
// expanded.
func (m *VectorSpace) EvalTopK(s *Snapshot, root *Node, k int) TopKResult {
	if root == nil || k <= 0 {
		return TopKResult{}
	}
	q := m.prepare(s, root)
	if q == nil || !q.any {
		return TopKResult{}
	}
	norms, minNorms := m.docNorms(s)
	blockmax := TopKBlockMax()
	return runTopK(s, k, func(si int) shardTask {
		cands := make(map[DocID]bool)
		for li := range q.leaves {
			st := q.stats[li]
			if st.views != nil {
				for _, d := range st.views[si].live {
					cands[d] = true
				}
			} else {
				for d := range st.tf[si] {
					cands[d] = true
				}
			}
		}
		ids := make([]DocID, 0, len(cands))
		for d := range cands {
			ids = append(ids, d)
		}
		// Ascending order lets the compiled bound below resolve
		// membership with forward-only merge-join probes instead of a
		// binary search per (leaf, candidate). Rankings are unaffected:
		// the scan sorts by bound with an ascending-DocID tie-break, so
		// its order never depends on the order ids arrive in.
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		t := shardTask{ids: ids}
		t.scoreOf = func(d DocID) float64 {
			var sum float64
			for li := range q.leaves {
				st := q.stats[li]
				if st.df == 0 {
					continue
				}
				if tf := q.leafTF(li, si, d); tf > 0 {
					dw := (1 + math.Log(float64(tf))) * q.idfs[li]
					sum += q.qws[li] * dw
				}
			}
			dn := norms[d]
			if dn == 0 {
				dn = 1
			}
			return sum / (q.qn * dn)
		}
		minNorm := 0.0
		if si < len(minNorms) {
			minNorm = minNorms[si]
		}
		if len(ids) > k && minNorm > 0 {
			// Precompute every term leaf's contribution cap per block
			// (plus tail and whole-list fallbacks) so the per-candidate
			// bound is a metadata lookup, not a logarithm. A negative
			// query weight (negative #wsum weight) caps at tf = 1,
			// where the negative contribution is largest.
			// Each term leaf also gets an ascending merge-join probe
			// (the compiled-bound pattern of compileInfBound): because
			// ids are sorted, membership resolution walks each leaf's
			// doc streams forward exactly once per shard instead of
			// binary-searching per candidate.
			caps := make([]leafBlockCaps, len(q.leaves))
			probes := make([]leafProbe, len(q.leaves))
			for li := range q.leaves {
				st := q.stats[li]
				if st.df == 0 || st.views == nil {
					continue
				}
				lv := st.views[si]
				lc := leafBlockCaps{blocks: make([]float64, len(lv.blocks))}
				for bi := range lv.blocks {
					lc.blocks[bi] = q.capContrib(li, int(lv.blocks[bi].bl.MaxTF))
				}
				lc.tail = q.capContrib(li, lv.tailMaxTF)
				lc.list = q.capContrib(li, lv.maxTF)
				caps[li] = lc
				probes[li] = leafProbe{lv: lv}
			}
			nsh := len(s.shards)
			t.boundOf = func(d DocID) float64 {
				num := 0.0
				for li := range q.leaves {
					st := q.stats[li]
					if st.df == 0 {
						continue
					}
					if st.views != nil {
						bi, ok := probes[li].blockAt(uint32(int(d) / nsh))
						if !ok {
							continue
						}
						if blockmax {
							if bi < len(probes[li].lv.blocks) {
								num += caps[li].blocks[bi]
							} else {
								num += caps[li].tail
							}
						} else {
							num += caps[li].list
						}
					} else if tf := st.tf[si][d]; tf > 0 {
						// Phrase frequency is exact and already
						// computed — the tightest sound cap.
						num += q.capContrib(li, tf)
					}
				}
				if num <= 0 {
					return 0
				}
				return num / (q.qn * minNorm)
			}
			t.stats = func() (blocksSkipped, postingsDecoded int64) {
				for _, lv := range q.views[si] {
					bs, pd := lv.decodeStats()
					blocksSkipped += bs
					postingsDecoded += pd
				}
				return blocksSkipped, postingsDecoded
			}
		}
		return t
	}, snapExt(s))
}

// leafBlockCaps is one term leaf's precomputed per-block contribution
// ceilings in one shard.
type leafBlockCaps struct {
	blocks []float64
	tail   float64
	list   float64
}

// capContrib is leaf li's largest possible numerator contribution for
// a document whose tf is bounded by capTF — the exact expression
// shape scoring uses, evaluated at the cap (or at tf = 1 for negative
// weights, where the negative contribution is largest).
func (q *vectorQuery) capContrib(li, capTF int) float64 {
	if capTF == 0 {
		return 0
	}
	if q.qws[li] >= 0 {
		return q.qws[li] * ((1 + math.Log(float64(capTF))) * q.idfs[li])
	}
	return q.qws[li] * q.idfs[li]
}

type weightedLeaf struct {
	node   *Node
	weight float64
}

// flattenLeaves collects term/phrase leaves with multiplied #wsum
// weights. #not subtrees are skipped: negative evidence has no
// natural place in a pure vector model.
func flattenLeaves(n *Node, w float64) []weightedLeaf {
	switch n.Kind {
	case NodeTerm, NodePhrase:
		return []weightedLeaf{{node: n, weight: w}}
	case NodeNot:
		return nil
	case NodeSyn:
		var out []weightedLeaf
		for _, c := range n.Children {
			out = append(out, flattenLeaves(c, w)...)
		}
		return out
	case NodeWSum:
		var out []weightedLeaf
		for i, c := range n.Children {
			out = append(out, flattenLeaves(c, w*n.Weights[i])...)
		}
		return out
	default:
		var out []weightedLeaf
		for _, c := range n.Children {
			out = append(out, flattenLeaves(c, w)...)
		}
		return out
	}
}

// docNorms returns the cached full document norms (plus the per-shard
// minimum live norm), rebuilding them when the snapshot reflects a
// newer index state than the cache. The rebuild runs in two parallel
// passes: per-shard live document frequencies are folded into global
// ones, then every shard accumulates its own documents' norms over
// its dictionary in sorted-term order (so the floating-point sums are
// deterministic and identical for any shard count). The dictionary
// walk decodes doc and frequency streams only — positions stay
// compressed.
func (m *VectorSpace) docNorms(s *Snapshot) (map[DocID]float64, []float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := s.Version()
	if m.norms != nil && m.normsVer == v && len(m.minNorms) == s.ShardCount() {
		return m.norms, m.minNorms
	}
	nsh := s.ShardCount()
	liveTerms := make([][]termCounts, nsh)
	dfs := make([]map[string]int, nsh)
	s.parShards(func(si int) {
		tcs := s.termsShard(si)
		df := make(map[string]int, len(tcs))
		for _, tc := range tcs {
			df[tc.term] = len(tc.docs)
		}
		liveTerms[si] = tcs
		dfs[si] = df
	})
	globalDF := make(map[string]int)
	for _, df := range dfs {
		for t, c := range df {
			globalDF[t] += c
		}
	}
	n := float64(s.DocCount())
	perShard := make([]map[DocID]float64, nsh)
	minNorms := make([]float64, nsh)
	s.parShards(func(si int) {
		acc := make(map[DocID]float64)
		for _, tc := range liveTerms[si] {
			idf := math.Log(1 + n/float64(globalDF[tc.term]))
			for i, d := range tc.docs {
				dw := (1 + math.Log(float64(tc.tfs[i]))) * idf
				acc[d] += dw * dw
			}
		}
		min := 0.0
		for d, sum := range acc {
			norm := math.Sqrt(sum)
			acc[d] = norm
			if min == 0 || norm < min {
				min = norm
			}
		}
		perShard[si] = acc
		minNorms[si] = min
	})
	m.norms = mergeShardScores(perShard)
	m.minNorms = minNorms
	m.normsVer = v
	return m.norms, m.minNorms
}
